(* Property tests for the physical planner (qcheck): the fast paths —
   index probes, hash equi-joins, memoized unions — must be
   indistinguishable from the naive pipeline, tuple-for-tuple and
   support-for-support.

   Two layers:
   - Ops-level: [Erm.Ops.join_indexed] against the nested-loop join it
     replaces, and an [Erm.Index] probe + residual selection against the
     full selection (the two rewrites the planner is allowed to make);
   - planner-level: [Query.Physical.execute]/[eval_fast] against
     [Query.Eval.eval] on randomly generated queries, plus Theorem 1
     (closure and boundedness) on every planner output.

   One execution context is shared across all generated cases, so the
   index cache sees a stream of distinct relations under the same names —
   any staleness bug (serving an index built for an earlier case) breaks
   the equivalence property immediately. *)

module R = Workload.Rng
module G = Workload.Gen
module S = Dst.Support

let prop ?(count = 500) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

let seed_arb = QCheck.int_range 0 1_000_000
let rel_equal = Erm.Relation.equal

(* --- generators ----------------------------------------------------- *)

(* k (key, string), a0 (definite string), e0/e1 (evidential over 8-value
   frames) — every planner access path has an eligible attribute. *)
let schema = G.schema "q"

let make_env seed =
  let rng = R.create seed in
  let ra, rb = G.source_pair rng ~size:10 ~overlap:0.5 schema in
  [ ("ra", ra); ("rb", rb) ]

(* The a0 value of a random stored tuple — so definite-equality probes
   actually hit (Gen's a0 cells are drawn from a 1000-value space, a
   fresh random value would nearly always miss). *)
let some_a0 rng r =
  let ts = Erm.Relation.tuples r in
  let t = List.nth ts (R.int rng (List.length ts)) in
  match Erm.Etuple.cells t with
  | Erm.Etuple.Definite v :: _ -> v
  | _ -> Dst.Value.string "a0-0"

let gen_vset rng =
  List.init
    (1 + R.int rng 3)
    (fun _ -> Dst.Value.string (Printf.sprintf "v%d" (R.int rng 8)))

let gen_cmp rng =
  match R.int rng 4 with
  | 0 -> Erm.Predicate.Eq
  | 1 -> Erm.Predicate.Ne
  | 2 -> Erm.Predicate.Le
  | _ -> Erm.Predicate.Gt

(* Predicates over the base schema, biased toward conjunctions holding a
   probe-eligible definite equality next to evidential residuals. *)
let gen_pred rng env =
  let ra = List.assoc "ra" env in
  let atom () =
    match R.int rng 6 with
    | 0 -> Query.Ast.Is ("a0", [ some_a0 rng ra ])
    | 1 ->
        Query.Ast.Cmp
          ( Erm.Predicate.Eq,
            Query.Ast.Attr "k",
            Query.Ast.Scalar
              (Dst.Value.string (Printf.sprintf "key%d" (R.int rng 15))) )
    | 2 -> Query.Ast.Is ("e0", gen_vset rng)
    | 3 -> Query.Ast.Is ("e1", gen_vset rng)
    | 4 ->
        Query.Ast.Cmp
          (gen_cmp rng, Query.Ast.Attr "e0", Query.Ast.Set_lit (gen_vset rng))
    | _ ->
        Query.Ast.Cmp
          (Erm.Predicate.Eq, Query.Ast.Attr "a0",
           Query.Ast.Scalar (some_a0 rng ra))
  in
  match R.int rng 5 with
  | 0 -> atom ()
  | 1 | 2 -> Query.Ast.And (atom (), atom ())
  | 3 -> Query.Ast.And (atom (), Query.Ast.And (atom (), atom ()))
  | _ -> (
      match R.int rng 3 with
      | 0 -> Query.Ast.Or (atom (), atom ())
      | 1 -> Query.Ast.Not (atom ())
      | _ -> Query.Ast.True)

let gen_threshold rng =
  match R.int rng 4 with
  | 0 -> Erm.Threshold.always
  | 1 -> Erm.Threshold.sn_gt (R.float rng 0.8)
  | 2 -> Erm.Threshold.sp_ge (R.float rng 0.8)
  | _ -> Erm.Threshold.(sn_gt 0.1 &&& sp_ge 0.3)

let gen_query rng env =
  let base () = Query.Ast.Rel (if R.bool rng then "ra" else "rb") in
  let cols () =
    match R.int rng 3 with
    | 0 -> None
    | 1 -> Some [ "k"; "e0" ]
    | _ -> Some [ "k"; "a0"; "e1" ]
  in
  let select from =
    Query.Ast.Select
      { cols = cols (); from; where = gen_pred rng env;
        threshold = gen_threshold rng }
  in
  let setop a b =
    match R.int rng 3 with
    | 0 -> Query.Ast.Union (a, b)
    | 1 -> Query.Ast.Intersect (a, b)
    | _ -> Query.Ast.Except (a, b)
  in
  let join () =
    let right = Query.Ast.Prefixed { from = base (); prefix = "r_" } in
    let eq =
      match R.int rng 3 with
      | 0 ->
          (* definite key equality — hash-join eligible *)
          Query.Ast.Cmp
            (Erm.Predicate.Eq, Query.Ast.Attr "k", Query.Ast.Attr "r_k")
      | 1 ->
          Query.Ast.Cmp
            (Erm.Predicate.Eq, Query.Ast.Attr "a0", Query.Ast.Attr "r_a0")
      | _ ->
          (* evidential equality — must stay a nested loop *)
          Query.Ast.Cmp
            (Erm.Predicate.Eq, Query.Ast.Attr "e0", Query.Ast.Attr "r_e0")
    in
    let on =
      if R.bool rng then eq else Query.Ast.And (eq, gen_pred rng env)
    in
    Query.Ast.Join
      { left = base (); right; on; threshold = gen_threshold rng }
  in
  match R.int rng 8 with
  | 0 -> base ()
  | 1 | 2 -> select (base ())
  | 3 -> select (setop (base ()) (base ()))
  | 4 -> setop (base ()) (base ())
  | 5 -> join ()
  | 6 ->
      Query.Ast.Product
        (base (), Query.Ast.Prefixed { from = base (); prefix = "p_" })
  | _ ->
      (* ranked only over set operations of stored relations: those are
         bit-identical between the two pipelines, so LIMIT can never cut
         at a value that differs in the last ulp between them. *)
      Query.Ast.Ranked
        { from = setop (base ()) (base ());
          by = (if R.bool rng then Erm.Threshold.Sn else Erm.Threshold.Sp);
          ascending = R.bool rng;
          limit = Some (1 + R.int rng 8) }

(* --- Ops-level: the two rewrites, in isolation ----------------------- *)

let eq_pred attr value =
  Erm.Predicate.theta Erm.Predicate.Eq (Erm.Predicate.Field attr)
    (Erm.Predicate.Const (Erm.Etuple.Definite value))

let gen_residual rng =
  match R.int rng 3 with
  | 0 -> Erm.Predicate.Const_true
  | 1 -> Erm.Predicate.is_ "e0" (Dst.Vset.of_list (gen_vset rng))
  | _ ->
      Erm.Predicate.(
        is_ "e0" (Dst.Vset.of_list (gen_vset rng))
        &&& is_ "e1" (Dst.Vset.of_list (gen_vset rng)))

let ops_props =
  [ prop "join_indexed = nested-loop join on And(eq, residual)" seed_arb
      (fun s ->
        let rng = R.create s in
        let a = G.relation rng ~size:8 schema in
        let b =
          Erm.Ops.rename_attrs (fun n -> "r_" ^ n)
            (G.relation rng ~size:8 schema)
        in
        let attr = if R.bool rng then "k" else "a0" in
        let residual = gen_residual rng in
        let threshold = gen_threshold rng in
        let naive =
          Erm.Ops.join ~threshold
            Erm.Predicate.(
              Theta (Eq, Field attr, Field ("r_" ^ attr)) &&& residual)
            a b
        in
        let fast =
          Erm.Ops.join_indexed ~threshold ~residual ~left_attr:attr
            ~right_attr:("r_" ^ attr) a b
        in
        rel_equal naive fast);
    prop "join_indexed joins shared keys exactly" seed_arb (fun s ->
        let rng = R.create s in
        let a, b0 = G.source_pair rng ~size:10 ~overlap:0.6 schema in
        let b = Erm.Ops.rename_attrs (fun n -> "r_" ^ n) b0 in
        rel_equal
          (Erm.Ops.join
             (Erm.Predicate.theta Erm.Predicate.Eq (Erm.Predicate.Field "k")
                (Erm.Predicate.Field "r_k"))
             a b)
          (Erm.Ops.join_indexed ~left_attr:"k" ~right_attr:"r_k" a b));
    prop "index probe + residual select = full select" seed_arb (fun s ->
        let rng = R.create s in
        let r = G.relation rng ~size:12 schema in
        let attr = if R.bool rng then "k" else "a0" in
        let value =
          if R.bool rng then
            (* stored value: probe hits *)
            let t =
              List.nth (Erm.Relation.tuples r)
                (R.int rng (Erm.Relation.cardinal r))
            in
            if attr = "k" then List.hd (Erm.Etuple.key t)
            else
              (match Erm.Etuple.cells t with
              | Erm.Etuple.Definite v :: _ -> v
              | _ -> Dst.Value.string "a0-0")
          else Dst.Value.string "absent" (* probe misses *)
        in
        let residual = gen_residual rng in
        let threshold = gen_threshold rng in
        let naive =
          Erm.Ops.select ~threshold
            Erm.Predicate.(eq_pred attr value &&& residual)
            r
        in
        let idx = Erm.Index.build r attr in
        let fast =
          Erm.Ops.select ~threshold residual
            (Erm.Index.select_eq idx r value)
        in
        rel_equal naive fast) ]

(* --- planner-level: physical execution = naive evaluation ------------ *)

(* Shared across every generated case (see the header comment). *)
let ctx = Query.Physical.create_ctx ()

let planner_props =
  [ prop "execute (plan q) = eval q" seed_arb (fun s ->
        let env = make_env s in
        let q = gen_query (R.create (s + 7919)) env in
        rel_equal
          (Query.Eval.eval env q)
          (Query.Physical.execute ~ctx env (Query.Physical.plan env q)));
    prop "eval_fast (optimized physical) = eval q" seed_arb (fun s ->
        let env = make_env s in
        let q = gen_query (R.create (s + 104729)) env in
        rel_equal (Query.Eval.eval env q)
          (Query.Physical.eval_fast ~ctx env q)) ]

(* --- Theorem 1 over planner outputs ---------------------------------- *)

let cwa = Erm.Relation.satisfies_cwa

(* Ghost tuples: fresh keys, sn = 0 — the complement CWA_ER leaves
   unstored. Boundedness says no operator output may change when they
   are materialized. Ghost keys carry the relation's name so the two
   sources never ghost the same key — a key-matched pair of ghosts would
   test union's merge of invalid inputs, not boundedness. *)
let with_complement tag seed r =
  let rng = R.create (seed + 15485863) in
  let complements =
    List.init 5 (fun i ->
        let t =
          List.nth (Erm.Relation.tuples r)
            (R.int rng (Erm.Relation.cardinal r))
        in
        Erm.Etuple.make schema
          ~key:[ Dst.Value.string (Printf.sprintf "ghost-%s%d" tag i) ]
          ~cells:(Erm.Etuple.cells t)
          ~tm:(S.make ~sn:0.0 ~sp:(R.float rng 1.0)))
  in
  List.fold_left Erm.Relation.add_unchecked r complements

let theorem1_props =
  [ prop "closure: every physical result satisfies CWA_ER" seed_arb
      (fun s ->
        let env = make_env s in
        let q = gen_query (R.create (s + 1299709)) env in
        cwa (Query.Physical.eval_fast ~ctx env q));
    prop "boundedness: ghost tuples never change a physical result"
      seed_arb
      (fun s ->
        let env = make_env s in
        let q =
          match gen_query (R.create (s + 32452843)) env with
          (* a bare scan returns the stored relation, ghosts included —
             boundedness is a property of the operators, so give the
             scan one (threshold-free, predicate-free) selection. *)
          | Query.Ast.Rel _ as leaf ->
              Query.Ast.Select
                { cols = None; from = leaf; where = Query.Ast.True;
                  threshold = Erm.Threshold.always }
          | q -> q
        in
        let env' =
          List.map (fun (n, r) -> (n, with_complement n s r)) env
        in
        rel_equal
          (Query.Physical.eval_fast ~ctx env q)
          (Query.Physical.eval_fast ~ctx env' q)) ]

let () =
  Alcotest.run "plan_equiv"
    [ ("ops", ops_props);
      ("planner", planner_props);
      ("theorem1", theorem1_props) ]
