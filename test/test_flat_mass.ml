(* The packed (flat) mass representation must be unobservable: map↔flat
   round-trips are the identity, and every flat kernel agrees with the
   map kernel BIT FOR BIT (Mass.F.compare = 0 and Float.equal, not the
   tolerance Mass.F.equal uses). The sharded engine substitutes the flat
   kernels for the hottest arithmetic in the repo on the strength of
   exactly this suite — see DESIGN.md §7.

   Both interner regimes are exercised: an 8-value frame (int-bitmask
   fast path) and a 70-value frame (|Ω| > 62, set-walk fallback).

   Seeds: qcheck honours QCHECK_SEED, which CI pins. *)

module R = Workload.Rng
module G = Workload.Gen
module F = Dst.Mass.F
module Fm = Dst.Flat_mass

let count = 300

let prop name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

let seed_arb = QCheck.int_range 0 1_000_000

let small_dom = G.domain ~size:8 "flat8"
let big_dom = G.domain ~size:70 "flat70"

(* One interner per frame for the whole run: every property then also
   stresses id allocation against a long-lived, growing table. *)
let interner_of =
  let small = Dst.Interner.create small_dom in
  let big = Dst.Interner.create big_dom in
  fun dom -> if Dst.Domain.equal dom small_dom then small else big

let exact_opt o1 o2 =
  match (o1, o2) with
  | None, None -> true
  | Some (m, k), Some (m', k') -> F.compare m m' = 0 && Float.equal k k'
  | Some _, None | None, Some _ -> false

(* Masses with an Ω floor never totally conflict; masses without one
   can. Both regimes matter: the None/None agreement is part of the
   contract. *)
let mass_pair ?omega_floor dom seed =
  let rng = R.create seed in
  (G.evidence rng ?omega_floor dom, G.evidence rng ?omega_floor dom)

let flat_pair ?omega_floor dom seed =
  let m1, m2 = mass_pair ?omega_floor dom seed in
  let it = interner_of dom in
  (m1, m2, Fm.of_mass it m1, Fm.of_mass it m2)

let suite_for label dom =
  [ prop (label ^ ": to_mass (of_mass m) = m (bit-exact)") seed_arb (fun s ->
        let m = G.evidence (R.create s) dom in
        F.compare (Fm.to_mass (Fm.of_mass (interner_of dom) m)) m = 0);
    prop (label ^ ": flat combine_opt = map combine_opt") seed_arb (fun s ->
        let m1, m2, f1, f2 = flat_pair dom s in
        let flat =
          Option.map (fun (m, k) -> (Fm.to_mass m, k)) (Fm.combine_opt f1 f2)
        in
        exact_opt (F.combine_opt m1 m2) flat);
    prop (label ^ ": flat combine_opt = map combine_opt (no Ω floor)")
      seed_arb
      (fun s ->
        let m1, m2, f1, f2 = flat_pair ~omega_floor:0.0 dom s in
        let flat =
          Option.map (fun (m, k) -> (Fm.to_mass m, k)) (Fm.combine_opt f1 f2)
        in
        exact_opt (F.combine_opt m1 m2) flat);
    prop (label ^ ": flat conflict = map conflict") seed_arb (fun s ->
        let m1, m2, f1, f2 = flat_pair ~omega_floor:0.0 dom s in
        Float.equal (F.conflict m1 m2) (Fm.conflict f1 f2));
    prop (label ^ ": flat bel/pls = map bel/pls") seed_arb (fun s ->
        let rng = R.create s in
        let m = G.evidence rng dom in
        let a = G.vset rng dom ~max_size:4 in
        let f = Fm.of_mass (interner_of dom) m in
        Float.equal (F.bel m a) (Fm.bel f a)
        && Float.equal (F.pls m a) (Fm.pls f a));
    prop (label ^ ": interned ids are stable under re-interning") seed_arb
      (fun s ->
        let rng = R.create s in
        let it = interner_of dom in
        let sets =
          List.init 5 (fun _ -> G.vset rng dom ~max_size:3)
        in
        let ids = List.map (Dst.Interner.intern it) sets in
        (* Interleave fresh interning pressure, then re-intern. *)
        let m = G.evidence rng dom in
        ignore (Fm.combine_opt (Fm.of_mass it m) (Fm.of_mass it m));
        let again = List.map (Dst.Interner.intern it) sets in
        List.equal Int.equal ids again
        && List.for_all2
             (fun id set -> Dst.Vset.equal (Dst.Interner.set_of it id) set)
             ids sets) ]

(* --- Combine_cache representation invariance ------------------------- *)

(* Drive a map-kernel cache and a flat-kernel cache through the same
   request sequence drawn from a small pool (so hits actually occur):
   every reply must be bit-identical and the hit/miss tallies must
   match step for step. *)
let cache_invariance =
  prop "Combine_cache: flat kernel is hit/miss- and result-invariant"
    seed_arb
    (fun s ->
      let rng = R.create s in
      let pool =
        Array.init 4 (fun _ -> G.evidence rng small_dom)
      in
      let plain = Dst.Combine_cache.create () in
      let resolve =
        let it = Dst.Interner.create small_dom in
        fun _frame -> it
      in
      let flat =
        Dst.Combine_cache.create ~kernel:(Dst.Flat_mass.kernel resolve) ()
      in
      let steps =
        List.init 20 (fun _ ->
            (pool.(R.int rng 4), pool.(R.int rng 4)))
      in
      List.for_all
        (fun (m1, m2) ->
          exact_opt
            (Dst.Combine_cache.combine_opt plain m1 m2)
            (Dst.Combine_cache.combine_opt flat m1 m2)
          && Dst.Combine_cache.hits plain = Dst.Combine_cache.hits flat
          && Dst.Combine_cache.misses plain = Dst.Combine_cache.misses flat)
        steps)

(* --- deterministic corner cases -------------------------------------- *)

let total_conflict_unit () =
  let v s = Dst.Value.string s in
  let m1 = F.certain small_dom (v "v0") and m2 = F.certain small_dom (v "v1") in
  let it = interner_of small_dom in
  Alcotest.(check bool)
    "map kernel reports total conflict" true
    (Option.is_none (F.combine_opt m1 m2));
  Alcotest.(check bool)
    "flat kernel reports total conflict" true
    (Option.is_none (Fm.combine_opt (Fm.of_mass it m1) (Fm.of_mass it m2)))

let frame_mismatch_unit () =
  let m1 = F.vacuous small_dom and m2 = F.vacuous big_dom in
  let f1 = Fm.of_mass (interner_of small_dom) m1
  and f2 = Fm.of_mass (interner_of big_dom) m2 in
  Alcotest.check_raises "flat combine rejects mixed frames"
    (F.Frame_mismatch (small_dom, big_dom))
    (fun () -> ignore (Fm.combine_opt f1 f2))

let () =
  Alcotest.run "flat_mass"
    [ ("small-frame (bitmask path)", suite_for "Ω=8" small_dom);
      ("large-frame (set path)", suite_for "Ω=70" big_dom);
      ("cache", [ cache_invariance ]);
      ( "corners",
        [ Alcotest.test_case "total conflict" `Quick total_conflict_unit;
          Alcotest.test_case "frame mismatch" `Quick frame_mismatch_unit ] )
    ]
