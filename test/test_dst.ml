(* Core DS theory: Value, Vset, Domain, and the Mass functor's
   constructors, measures, classification and transformations. The
   combination rules have their own suite (test_combine.ml). *)

module V = Dst.Value
module Vs = Dst.Vset
module D = Dst.Domain
module M = Dst.Mass.F

let feq = Alcotest.float 1e-9
let vset = Alcotest.testable Vs.pp Vs.equal
let value = Alcotest.testable V.pp V.equal
let mass_t = Alcotest.testable M.pp M.equal

(* --- Value --------------------------------------------------------- *)

let test_value_compare () =
  Alcotest.(check bool) "ints order" true (V.compare (V.int 1) (V.int 2) < 0);
  Alcotest.(check bool)
    "strings order" true
    (V.compare (V.string "a") (V.string "b") < 0);
  Alcotest.(check bool)
    "kinds separate" true
    (V.compare (V.int 1) (V.string "1") <> 0);
  Alcotest.(check bool) "equal ints" true (V.equal (V.int 3) (V.int 3));
  Alcotest.(check bool)
    "same kind check" true
    (V.same_kind (V.float 1.0) (V.float 2.0));
  Alcotest.(check string) "kind names" "string" (V.kind_name (V.string "x"))

let test_value_ordered_mismatch () =
  Alcotest.check_raises "int vs string raises"
    (V.Type_mismatch (V.int 1, V.string "a"))
    (fun () -> ignore (V.compare_ordered (V.int 1) (V.string "a")))

let test_value_literals () =
  Alcotest.check value "int literal" (V.int 42) (V.of_literal "42");
  Alcotest.check value "negative int" (V.int (-7)) (V.of_literal "-7");
  Alcotest.check value "float literal" (V.float 2.5) (V.of_literal "2.5");
  Alcotest.check value "bool literal" (V.bool true) (V.of_literal "true");
  Alcotest.check value "bare identifier" (V.string "hunan")
    (V.of_literal "hunan");
  Alcotest.check value "quoted string" (V.string "two words")
    (V.of_literal "\"two words\"");
  Alcotest.check value "identifier with dash" (V.string "nine-th")
    (V.of_literal "nine-th");
  Alcotest.check_raises "empty literal"
    (Invalid_argument "Value.of_literal: empty literal") (fun () ->
      ignore (V.of_literal "  "))

let test_value_pp_roundtrip () =
  let cases =
    [ V.int 5; V.int (-3); V.float 1.25; V.float 2.0; V.bool false;
      V.string "si"; V.string "9th-street"; V.string "has space" ]
  in
  List.iter
    (fun v ->
      Alcotest.check value
        ("roundtrip " ^ V.to_string v)
        v
        (V.of_literal (V.to_string v)))
    cases

(* --- Vset ---------------------------------------------------------- *)

let abc = Vs.of_strings [ "a"; "b"; "c" ]
let bc = Vs.of_strings [ "b"; "c" ]
let de = Vs.of_strings [ "d"; "e" ]

let test_vset_ops () =
  Alcotest.(check int) "cardinal" 3 (Vs.cardinal abc);
  Alcotest.(check bool) "subset" true (Vs.subset bc abc);
  Alcotest.(check bool) "not subset" false (Vs.subset abc bc);
  Alcotest.(check bool) "disjoint" true (Vs.disjoint bc de);
  Alcotest.check vset "inter" bc (Vs.inter abc bc);
  Alcotest.check vset "diff" (Vs.of_strings [ "a" ]) (Vs.diff abc bc);
  Alcotest.check vset "union"
    (Vs.of_strings [ "a"; "b"; "c"; "d"; "e" ])
    (Vs.union abc de);
  Alcotest.(check bool) "mem" true (Vs.mem (V.string "b") abc);
  Alcotest.check_raises "choose empty" Not_found (fun () ->
      ignore (Vs.choose Vs.empty))

let test_vset_pairs () =
  let lt a b = V.compare a b < 0 in
  Alcotest.(check bool)
    "forall_pairs: {a,b} all-less-than {c,d}" true
    (Vs.forall_pairs lt
       (Vs.of_strings [ "a"; "b" ])
       (Vs.of_strings [ "c"; "d" ]));
  Alcotest.(check bool)
    "forall_pairs fails when one pair fails" false
    (Vs.forall_pairs lt (Vs.of_strings [ "a"; "d" ]) (Vs.of_strings [ "c" ]));
  Alcotest.(check bool)
    "exists_pair finds the one pair" true
    (Vs.exists_pair lt (Vs.of_strings [ "a"; "d" ]) (Vs.of_strings [ "c" ]));
  Alcotest.(check bool)
    "exists_pair on disjoint failure" false
    (Vs.exists_pair (fun a b -> V.equal a b) bc de);
  Alcotest.(check bool)
    "forall_pairs vacuous on empty" true
    (Vs.forall_pairs lt Vs.empty abc)

let test_vset_pp () =
  Alcotest.(check string) "braced" "{a, b, c}" (Vs.to_string abc);
  Alcotest.(check string)
    "compact singleton drops braces" "a"
    (Format.asprintf "%a" Vs.pp_compact (Vs.of_strings [ "a" ]));
  Alcotest.(check string)
    "compact pair keeps braces" "{b, c}"
    (Format.asprintf "%a" Vs.pp_compact bc)

(* --- Domain -------------------------------------------------------- *)

let colors = D.of_strings "colors" [ "red"; "green"; "blue" ]

let test_domain () =
  Alcotest.(check int) "size" 3 (D.size colors);
  Alcotest.(check bool) "mem" true (D.mem (V.string "red") colors);
  Alcotest.(check bool)
    "subset" true
    (D.subset (Vs.of_strings [ "red"; "blue" ]) colors);
  Alcotest.(check bool)
    "equality ignores names" true
    (D.equal colors (D.of_strings "other" [ "blue"; "green"; "red" ]));
  Alcotest.(check int) "boolean frame has two values" 2 (D.size D.boolean);
  Alcotest.check_raises "empty domain rejected" (D.Empty_domain "void")
    (fun () -> ignore (D.make "void" Vs.empty))

(* --- Mass: constructors and validation ----------------------------- *)

let red = Vs.of_strings [ "red" ]
let green = Vs.of_strings [ "green" ]
let blue = Vs.of_strings [ "blue" ]
let red_green = Vs.of_strings [ "red"; "green" ]

let test_mass_make () =
  let m = M.make colors [ (red, 0.6); (red_green, 0.4) ] in
  Alcotest.check feq "mass red" 0.6 (M.mass m red);
  Alcotest.check feq "mass {red,green}" 0.4 (M.mass m red_green);
  Alcotest.check feq "absent focal is 0" 0.0 (M.mass m green);
  Alcotest.(check int) "two focals" 2 (M.focal_count m)

let test_mass_make_merges_duplicates () =
  let m = M.make colors [ (red, 0.3); (red, 0.3); (red_green, 0.4) ] in
  Alcotest.check feq "duplicates summed" 0.6 (M.mass m red);
  Alcotest.(check int) "focal count after merge" 2 (M.focal_count m)

let test_mass_make_drops_zeros () =
  let m = M.make colors [ (red, 1.0); (green, 0.0) ] in
  Alcotest.(check int) "zero-mass focal dropped" 1 (M.focal_count m)

let invalid f =
  Alcotest.(check bool)
    "raises Invalid_mass" true
    (match f () with _ -> false | exception M.Invalid_mass _ -> true)

let test_mass_validation () =
  invalid (fun () -> M.make colors [ (red, 0.5) ]);
  invalid (fun () -> M.make colors [ (red, 1.2) ]);
  invalid (fun () -> M.make colors [ (red, 1.5); (green, -0.5) ]);
  invalid (fun () -> M.make colors [ (Vs.empty, 1.0) ]);
  invalid (fun () -> M.make colors [ (Vs.of_strings [ "puce" ], 1.0) ]);
  invalid (fun () -> M.make_normalized colors []);
  invalid (fun () -> M.combine_many [])

let test_mass_normalized () =
  let m = M.make_normalized colors [ (red, 3.0); (green, 1.0) ] in
  Alcotest.check feq "3:1 normalizes to 0.75" 0.75 (M.mass m red);
  Alcotest.check feq "and 0.25" 0.25 (M.mass m green)

let test_mass_special_constructors () =
  Alcotest.(check bool) "vacuous" true (M.is_vacuous (M.vacuous colors));
  let c = M.certain colors (V.string "red") in
  Alcotest.(check bool) "certain is definite" true (M.is_definite c);
  Alcotest.check
    (Alcotest.option value)
    "definite_value"
    (Some (V.string "red"))
    (M.definite_value c);
  let s = M.simple_support colors red 0.7 in
  Alcotest.check feq "simple support focal" 0.7 (M.mass s red);
  Alcotest.check feq "simple support omega" 0.3 (M.mass s (D.values colors));
  let b =
    M.bayesian colors [ (V.string "red", 0.5); (V.string "green", 0.5) ]
  in
  Alcotest.(check bool) "bayesian" true (M.is_bayesian b);
  Alcotest.(check bool) "bayesian but not definite" false (M.is_definite b)

(* --- Mass: belief measures ----------------------------------------- *)

let wok = Paperdata.wok_m1
(* [ca^1/2; {hu,si}^1/3; ~^1/6] over six cuisines *)

let test_bel_pls () =
  let ca = Vs.of_strings [ "ca" ] in
  let hu_si = Vs.of_strings [ "hu"; "si" ] in
  let hu = Vs.of_strings [ "hu" ] in
  Alcotest.check feq "Bel({ca})" 0.5 (M.bel wok ca);
  Alcotest.check feq "Pls({ca}) = 1/2 + 1/6" (2.0 /. 3.0) (M.pls wok ca);
  Alcotest.check feq "Bel({hu}) = 0 (focal supersets do not count)" 0.0
    (M.bel wok hu);
  Alcotest.check feq "Pls({hu}) = 1/3 + 1/6" 0.5 (M.pls wok hu);
  Alcotest.check feq "Bel({hu,si})" (1.0 /. 3.0) (M.bel wok hu_si);
  Alcotest.check feq "Bel(omega) = 1" 1.0 (M.bel wok (D.values (M.frame wok)));
  Alcotest.check feq "Pls(omega) = 1" 1.0 (M.pls wok (D.values (M.frame wok)));
  Alcotest.check feq "doubt({ca}) = Bel(complement)" (1.0 /. 3.0)
    (M.doubt wok ca);
  Alcotest.check feq "ignorance = Pls - Bel" (1.0 /. 6.0) (M.ignorance wok ca)

let test_commonality () =
  Alcotest.check feq "Q({hu}) counts {hu,si} and omega" 0.5
    (M.commonality wok (Vs.of_strings [ "hu" ]));
  Alcotest.check feq "Q(omega) = m(omega)" (1.0 /. 6.0)
    (M.commonality wok (D.values (M.frame wok)))

let test_interval_invariant () =
  let check_set s =
    let bel, pls = M.interval wok (Vs.of_strings s) in
    Alcotest.(check bool) "Bel <= Pls" true (bel <= pls +. 1e-12)
  in
  List.iter check_set [ [ "ca" ]; [ "hu" ]; [ "ca"; "hu" ]; [ "it" ] ]

(* --- Mass: classification ------------------------------------------ *)

let test_consonant () =
  let nested =
    M.make colors [ (red, 0.5); (red_green, 0.3); (D.values colors, 0.2) ]
  in
  Alcotest.(check bool)
    "nested focals are consonant" true (M.is_consonant nested);
  let split = M.make colors [ (red, 0.5); (green, 0.5) ] in
  Alcotest.(check bool)
    "disjoint singletons are not" false (M.is_consonant split);
  Alcotest.(check bool)
    "vacuous is consonant" true
    (M.is_consonant (M.vacuous colors))

(* --- Mass: transformations ----------------------------------------- *)

let test_pignistic () =
  let m =
    M.make colors [ (red_green, 0.6); (D.values colors, 0.3); (red, 0.1) ]
  in
  let betp = M.pignistic m in
  let get v = List.assoc (V.string v) betp in
  Alcotest.check feq "BetP(red) = 0.6/2 + 0.3/3 + 0.1" 0.5 (get "red");
  Alcotest.check feq "BetP(green) = 0.6/2 + 0.3/3" 0.4 (get "green");
  Alcotest.check feq "BetP(blue) = 0.3/3" 0.1 (get "blue");
  Alcotest.check feq "BetP sums to one" 1.0
    (List.fold_left (fun acc (_, p) -> acc +. p) 0.0 betp)

let test_discount () =
  let m = M.make colors [ (red, 0.8); (green, 0.2) ] in
  let d = M.discount 0.5 m in
  Alcotest.check feq "red halved" 0.4 (M.mass d red);
  Alcotest.check feq "omega absorbs the rest" 0.5 (M.mass d (D.values colors));
  Alcotest.check mass_t "discount 1.0 is identity" m (M.discount 1.0 m);
  Alcotest.(check bool)
    "discount 0.0 is vacuous" true
    (M.is_vacuous (M.discount 0.0 m));
  Alcotest.check_raises "alpha out of range"
    (Invalid_argument "Mass.discount: reliability outside [0,1]") (fun () ->
      ignore (M.discount 1.5 m))

let test_condition () =
  let m = M.make colors [ (red, 0.5); (red_green, 0.3); (green, 0.2) ] in
  let c = M.condition m red in
  Alcotest.check feq "conditioning on {red}" 1.0 (M.mass c red);
  Alcotest.check_raises "conditioning on an impossible set" M.Total_conflict
    (fun () -> ignore (M.condition (M.certain colors (V.string "red")) green))

let test_decisions () =
  Alcotest.check value "max_bel of the wok evidence" (V.string "ca")
    (M.max_bel wok);
  (* Pls(ca) = 2/3 vs Pls(hu) = Pls(si) = 1/2: ca still wins. *)
  Alcotest.check value "max_pls" (V.string "ca") (M.max_pls wok)

let test_approximate () =
  let m =
    M.make colors
      [ (red, 0.5); (green, 0.3); (red_green, 0.15); (blue, 0.05) ]
  in
  let a = M.approximate ~max_focals:3 m in
  Alcotest.(check int) "at most 3 focals" 3 (M.focal_count a);
  (* The two heaviest focals survive; the rest moves to omega. *)
  Alcotest.check feq "red kept" 0.5 (M.mass a red);
  Alcotest.check feq "green kept" 0.3 (M.mass a green);
  Alcotest.check feq "rest on omega" 0.2 (M.mass a (D.values colors));
  (* Conservative: Bel shrinks, Pls grows, on every set. *)
  List.iter
    (fun set ->
      Alcotest.(check bool) "Bel' <= Bel" true (M.bel a set <= M.bel m set +. 1e-12);
      Alcotest.(check bool) "Pls' >= Pls" true (M.pls a set >= M.pls m set -. 1e-12))
    [ red; green; blue; red_green ];
  Alcotest.check mass_t "identity when under budget" m
    (M.approximate ~max_focals:4 m);
  Alcotest.(check bool) "max_focals 1 is vacuous" true
    (M.is_vacuous (M.approximate ~max_focals:1 m));
  Alcotest.check_raises "max_focals 0 rejected"
    (Invalid_argument "Mass.approximate: max_focals < 1") (fun () ->
      ignore (M.approximate ~max_focals:0 m))

let test_approximate_omega_budget () =
  (* Omega never counts against the budget: with an omega focal present
     and budget 2, one non-omega focal survives. *)
  let m = M.make colors [ (red, 0.6); (green, 0.3); (D.values colors, 0.1) ] in
  let a = M.approximate ~max_focals:2 m in
  Alcotest.check feq "red survives" 0.6 (M.mass a red);
  Alcotest.check feq "omega absorbs green" 0.4 (M.mass a (D.values colors))

(* --- Measures ------------------------------------------------------- *)

let test_measures_anchors () =
  let vac = M.vacuous colors in
  let cert = M.certain colors (V.string "red") in
  Alcotest.check feq "vacuous nonspecificity = log2 |Omega|"
    (Float.log 3.0 /. Float.log 2.0)
    (Dst.Measures.nonspecificity vac);
  Alcotest.check feq "certain nonspecificity = 0" 0.0
    (Dst.Measures.nonspecificity cert);
  Alcotest.check feq "vacuous dissonance = 0" 0.0
    (Dst.Measures.dissonance vac);
  Alcotest.check feq "certain dissonance = 0" 0.0
    (Dst.Measures.dissonance cert);
  Alcotest.check feq "certain pignistic entropy = 0" 0.0
    (Dst.Measures.pignistic_entropy cert);
  let uniform =
    M.bayesian colors
      [ (V.string "red", 1.0 /. 3.0); (V.string "green", 1.0 /. 3.0);
        (V.string "blue", 1.0 /. 3.0) ]
  in
  Alcotest.check feq "uniform pignistic entropy = log2 3"
    (Float.log 3.0 /. Float.log 2.0)
    (Dst.Measures.pignistic_entropy uniform)

let test_measures_dissonance () =
  (* Bayesian 0.5/0.5: each singleton has Pls = 0.5, so E = 1 bit. *)
  let split =
    M.bayesian colors [ (V.string "red", 0.5); (V.string "green", 0.5) ]
  in
  Alcotest.check feq "split dissonance = 1 bit" 1.0
    (Dst.Measures.dissonance split);
  (* The paper's §2.2 combination reduces nonspecificity: focal
     elements only shrink under intersection. *)
  let combined = M.combine Paperdata.wok_m1 Paperdata.wok_m2 in
  Alcotest.(check bool) "combination reduces nonspecificity" true
    (Dst.Measures.nonspecificity combined
    < Dst.Measures.nonspecificity Paperdata.wok_m1);
  Alcotest.(check bool) "total uncertainty is the sum" true
    (Float.abs
       (Dst.Measures.total_uncertainty combined
       -. (Dst.Measures.nonspecificity combined
          +. Dst.Measures.dissonance combined))
    < 1e-12)

let test_measures_distance () =
  let a = M.certain colors (V.string "red") in
  let b = M.certain colors (V.string "green") in
  Alcotest.check feq "opposite certainties are distance 1" 1.0
    (Dst.Measures.pignistic_distance a b);
  Alcotest.check feq "self distance 0" 0.0 (Dst.Measures.pignistic_distance a a);
  Alcotest.(check bool)
    "frame mismatch" true
    (match
       Dst.Measures.pignistic_distance a (M.vacuous D.boolean)
     with
    | _ -> false
    | exception M.Frame_mismatch _ -> true)

let test_pp_notation () =
  let m = M.make colors [ (red, 0.5); (D.values colors, 0.5) ] in
  Alcotest.(check string)
    "paper notation with ~ for omega" "[~^0.5; red^0.5]" (M.to_string m)

(* --- metamorphic combination properties ----------------------------- *)

(* Dempster's rule probed through the production paths: the memo-cache
   wrapper, the metrics-instrumented combine_opt, and the tracer. The
   generated evidence keeps Gen's default Ω floor, so κ < 1 and
   combination never throws Total_conflict. *)

let meta_prop name law =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:200 (QCheck.int_range 0 1_000_000) law)

let meta_dom = Workload.Gen.domain ~size:8 "meta"

let gen_pair seed =
  let rng = Workload.Rng.create seed in
  ( Workload.Gen.evidence rng ~focals:4 ~max_focal_size:3 meta_dom,
    Workload.Gen.evidence rng ~focals:4 ~max_focal_size:3 meta_dom )

let gen_triple seed =
  let rng = Workload.Rng.create (seed + 31) in
  let e () = Workload.Gen.evidence rng ~focals:3 ~max_focal_size:3 meta_dom in
  (e (), e (), e ())

let with_default_metrics f =
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.disable ();
      Obs.Metrics.reset ())
    f

let metamorphic_props =
  [ meta_prop "combination is commutative under the memo-cache" (fun s ->
        let m1, m2 = gen_pair s in
        let cache = Dst.Combine_cache.create () in
        let a = Dst.Combine_cache.combine cache m1 m2 in
        let b = Dst.Combine_cache.combine cache m2 m1 in
        (* The canonical pair ordering makes the swapped call a hit. *)
        M.equal a b && Dst.Combine_cache.hits cache = 1);
    meta_prop "combination is associative (within float tolerance)" (fun s ->
        let m1, m2, m3 = gen_triple s in
        M.equal (M.combine (M.combine m1 m2) m3)
          (M.combine m1 (M.combine m2 m3)));
    meta_prop "metric kappa = kappa recomputed from first principles"
      (fun s ->
        let m1, m2 = gen_pair s in
        with_default_metrics (fun () ->
            ignore (M.combine_opt m1 m2);
            match Obs.Metrics.last "dst.combine.conflict_kappa" with
            | Some reported -> Float.equal reported (M.conflict m1 m2)
            | None -> false));
    meta_prop "observability never changes a combination (observer effect)"
      (fun s ->
        let m1, m2 = gen_pair s in
        let plain = M.combine m1 m2 in
        let observed =
          with_default_metrics (fun () ->
              Obs.Trace.clear Obs.Trace.default;
              Obs.Trace.enable Obs.Trace.default;
              Fun.protect
                ~finally:(fun () ->
                  Obs.Trace.disable Obs.Trace.default;
                  Obs.Trace.clear Obs.Trace.default)
                (fun () -> M.combine m1 m2))
        in
        (* Bit-exact focal-by-focal agreement, not tolerance equality. *)
        List.for_all2
          (fun (s1, x1) (s2, x2) -> Vs.equal s1 s2 && Float.equal x1 x2)
          (M.focals plain) (M.focals observed)) ]

let () =
  Alcotest.run "dst"
    [ ( "value",
        [ Alcotest.test_case "compare" `Quick test_value_compare;
          Alcotest.test_case "ordered mismatch" `Quick
            test_value_ordered_mismatch;
          Alcotest.test_case "literals" `Quick test_value_literals;
          Alcotest.test_case "pp roundtrip" `Quick test_value_pp_roundtrip ] );
      ( "vset",
        [ Alcotest.test_case "set operations" `Quick test_vset_ops;
          Alcotest.test_case "pair quantifiers" `Quick test_vset_pairs;
          Alcotest.test_case "printing" `Quick test_vset_pp ] );
      ("domain", [ Alcotest.test_case "basics" `Quick test_domain ]);
      ( "mass-construct",
        [ Alcotest.test_case "make" `Quick test_mass_make;
          Alcotest.test_case "duplicate focals merge" `Quick
            test_mass_make_merges_duplicates;
          Alcotest.test_case "zeros dropped" `Quick test_mass_make_drops_zeros;
          Alcotest.test_case "validation" `Quick test_mass_validation;
          Alcotest.test_case "normalized" `Quick test_mass_normalized;
          Alcotest.test_case "special constructors" `Quick
            test_mass_special_constructors ] );
      ( "mass-measures",
        [ Alcotest.test_case "bel/pls/doubt" `Quick test_bel_pls;
          Alcotest.test_case "commonality" `Quick test_commonality;
          Alcotest.test_case "interval invariant" `Quick
            test_interval_invariant;
          Alcotest.test_case "consonance" `Quick test_consonant ] );
      ( "mass-transform",
        [ Alcotest.test_case "pignistic" `Quick test_pignistic;
          Alcotest.test_case "discount" `Quick test_discount;
          Alcotest.test_case "condition" `Quick test_condition;
          Alcotest.test_case "decisions" `Quick test_decisions;
          Alcotest.test_case "approximate" `Quick test_approximate;
          Alcotest.test_case "approximate omega budget" `Quick
            test_approximate_omega_budget;
          Alcotest.test_case "pp" `Quick test_pp_notation ] );
      ( "measures",
        [ Alcotest.test_case "anchors" `Quick test_measures_anchors;
          Alcotest.test_case "dissonance and combination" `Quick
            test_measures_dissonance;
          Alcotest.test_case "pignistic distance" `Quick
            test_measures_distance ] );
      ("metamorphic", metamorphic_props) ]
