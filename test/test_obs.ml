(* Unit tests for the observability layer (lib/obs): the metrics
   registry, the span tracer, both exporters, and the two acceptance
   properties of the instrumentation — the span tree of a physical
   execution matches the plan shape, and a high-conflict Dempster merge
   reports its κ through the metrics registry. *)

module M = Obs.Metrics
module T = Obs.Trace
module L = Obs.Log

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* Every test that touches the process-wide defaults restores them. *)
let with_default_metrics f =
  M.reset ();
  M.enable ();
  Fun.protect
    ~finally:(fun () ->
      M.disable ();
      M.reset ())
    f

let with_default_tracing ?clock f =
  let saved = T.clock T.default in
  (match clock with Some c -> T.set_clock T.default c | None -> ());
  T.clear T.default;
  T.enable T.default;
  Fun.protect
    ~finally:(fun () ->
      T.disable T.default;
      T.clear T.default;
      T.set_clock T.default saved)
    f

(* --- metrics registry ------------------------------------------------ *)

let test_counters () =
  let r = M.create () in
  M.incr ~registry:r "a";
  M.incr ~registry:r ~by:4 "a";
  M.incr ~registry:r "b";
  check_int "a accumulated" 5 (M.counter ~registry:r "a");
  check_int "b accumulated" 1 (M.counter ~registry:r "b");
  check_int "unbound counter reads 0" 0 (M.counter ~registry:r "zzz")

let test_gauges_histograms () =
  let r = M.create () in
  M.gauge ~registry:r "g" 1.5;
  M.gauge ~registry:r "g" 2.5;
  M.observe ~registry:r "h" 3.0;
  M.observe ~registry:r "h" 1.0;
  M.observe ~registry:r "h" 2.0;
  (match M.last ~registry:r "g" with
  | Some v -> check "gauge keeps last" true (Float.equal v 2.5)
  | None -> Alcotest.fail "gauge missing");
  (match M.last ~registry:r "h" with
  | Some v -> check "histogram last" true (Float.equal v 2.0)
  | None -> Alcotest.fail "histogram missing");
  match M.snapshot ~registry:r () with
  | [ ("g", M.Gauge _); ("h", M.Histogram { count; sum; min; max; last; _ }) ]
    ->
      check_int "histogram count" 3 count;
      check "histogram sum" true (Float.equal sum 6.0);
      check "histogram min" true (Float.equal min 1.0);
      check "histogram max" true (Float.equal max 3.0);
      check "histogram last" true (Float.equal last 2.0)
  | _ -> Alcotest.fail "snapshot shape (should be name-sorted g, h)"

let test_kind_collision () =
  let r = M.create () in
  M.incr ~registry:r "x";
  Alcotest.check_raises "observe on a counter name"
    (Invalid_argument "Obs.Metrics: x is already bound to another kind")
    (fun () -> M.observe ~registry:r "x" 1.0)

let test_disabled_default_noops () =
  M.reset ();
  check "default starts disabled" false (M.on ());
  M.incr "should.not.appear";
  M.observe "nor.this" 1.0;
  check_int "nothing recorded while disabled" 0
    (List.length (M.snapshot ()))

(* --- tracer ---------------------------------------------------------- *)

let test_span_nesting () =
  let t = T.create ~clock:(Obs.Clock.simulated ()) () in
  let v =
    T.with_span ~tracer:t "outer" (fun () ->
        T.with_span ~tracer:t "inner-1" (fun () -> ());
        T.with_span ~tracer:t "inner-2" (fun () -> ());
        42)
  in
  check_int "with_span returns the thunk's value" 42 v;
  (match T.events t with
  | [ outer; i1; i2 ] ->
      check_str "start order" "outer" outer.T.name;
      check "outer is a root" true (outer.T.parent = None);
      check "inner-1 parented" true (i1.T.parent = Some outer.T.id);
      check "inner-2 parented" true (i2.T.parent = Some outer.T.id);
      check_int "inner depth" 1 i1.T.depth
  | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs));
  match T.forest t with
  | [ { T.event; children = [ _; _ ] } ] ->
      check_str "forest root" "outer" event.T.name
  | _ -> Alcotest.fail "forest shape"

let test_span_on_raise () =
  let t = T.create ~clock:(Obs.Clock.simulated ()) () in
  (try T.with_span ~tracer:t "boom" (fun () -> failwith "x")
   with Failure _ -> ());
  check_int "span recorded despite raise" 1 (List.length (T.events t))

let test_disabled_tracer_passthrough () =
  let t = T.create () in
  T.disable t;
  let before = T.count t in
  let v = T.with_span ~tracer:t "ghost" (fun () -> 7) in
  check_int "value passes through" 7 v;
  check_int "no span started" before (T.count t);
  check_int "no span recorded" 0 (List.length (T.events t))

let test_forest_from_slicing () =
  let t = T.create ~clock:(Obs.Clock.simulated ()) () in
  T.with_span ~tracer:t "first" (fun () -> ());
  let mark = T.count t in
  T.with_span ~tracer:t "second" (fun () ->
      T.with_span ~tracer:t "child" (fun () -> ()));
  match T.forest ~from:mark t with
  | [ { T.event; children = [ _ ] } ] ->
      check_str "only the second tree survives the cut" "second" event.T.name
  | f -> Alcotest.failf "expected 1 sliced tree, got %d" (List.length f)

let test_summary () =
  let t = T.create ~clock:(Obs.Clock.simulated ()) () in
  T.with_span ~tracer:t "a" (fun () -> ());
  T.with_span ~tracer:t "b" (fun () -> ());
  T.with_span ~tracer:t "a" (fun () -> ());
  match T.summary t with
  | [ ("a", 2, _); ("b", 1, _) ] -> ()
  | _ -> Alcotest.fail "summary aggregation (name-sorted, counted)"

(* --- flight recorder ------------------------------------------------- *)

let with_default_log ?capacity f =
  L.set_clock (Obs.Clock.simulated ());
  L.clear ();
  L.enable ?capacity ();
  Fun.protect
    ~finally:(fun () ->
      L.disable ();
      L.clear ();
      L.set_capacity 256;
      L.set_min_severity L.Debug)
    f

let test_log_disabled_noop () =
  L.clear ();
  check "default starts disabled" false (L.on ());
  L.record L.Retry "ghost";
  check_int "nothing recorded while disabled" 0 (List.length (L.events ()))

let test_log_ordering () =
  with_default_log (fun () ->
      L.record ~severity:L.Warn ~fields:[ ("source", "ra") ] L.Retry "r1";
      L.record L.Store_commit "c1";
      L.record ~severity:L.Error L.Quarantine "q1";
      match L.events () with
      | [ e0; e1; e2 ] ->
          check_int "dense seqs from 0" 0 e0.L.seq;
          check_int "seq 1" 1 e1.L.seq;
          check_int "seq 2" 2 e2.L.seq;
          check "oldest first" true
            (e0.L.message = "r1" && e2.L.message = "q1");
          check "default severity is Info" true (e1.L.severity = L.Info);
          check "fields preserved in order" true
            (e0.L.fields = [ ("source", "ra") ]);
          check "simulated clock stamps 0" true (Float.equal e0.L.ts_ms 0.0)
      | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs))

let test_log_wraparound () =
  with_default_log ~capacity:4 (fun () ->
      for i = 0 to 5 do
        L.record L.Shard_spawn (Printf.sprintf "e%d" i)
      done;
      let evs = L.events () in
      check_int "ring keeps capacity events" 4 (List.length evs);
      check "most recent survive, in sequence order" true
        (List.map (fun e -> (e.L.seq, e.L.message)) evs
        = [ (2, "e2"); (3, "e3"); (4, "e4"); (5, "e5") ]);
      check "last slices the tail" true
        (List.map (fun e -> e.L.seq) (L.events ~last:2 ()) = [ 4; 5 ]))

let test_log_severity_filter () =
  with_default_log (fun () ->
      L.set_min_severity L.Warn;
      L.record ~severity:L.Debug L.Cache_evict "drop-me";
      L.record L.Store_commit "drop-me-too" (* Info < Warn *);
      L.record ~severity:L.Warn L.Degrade "keep";
      L.record ~severity:L.Error L.Recovery_error "keep-too";
      check "below-threshold events never take a sequence number" true
        (List.map (fun e -> (e.L.seq, e.L.message)) (L.events ())
        = [ (0, "keep"); (1, "keep-too") ]))

let test_log_capacity_resize () =
  with_default_log ~capacity:8 (fun () ->
      for i = 0 to 4 do
        L.record L.Shard_merge (Printf.sprintf "e%d" i)
      done;
      L.set_capacity 2;
      check_int "resize reports" 2 (L.capacity ());
      check "resize keeps the most recent fitting events" true
        (List.map (fun e -> (e.L.seq, e.L.message)) (L.events ())
        = [ (3, "e3"); (4, "e4") ]);
      L.record L.Shard_merge "e5";
      check "sequence numbering survives the resize" true
        (List.map (fun e -> e.L.seq) (L.events ()) = [ 4; 5 ]);
      Alcotest.check_raises "capacity must be positive"
        (Invalid_argument "Obs.Log.set_capacity: capacity must be > 0")
        (fun () -> L.set_capacity 0))

let test_log_fork_merge () =
  with_default_log (fun () ->
      L.record L.Store_commit "before";
      let buf = L.fork () in
      check "fork yields a buffer while live" true (buf <> None);
      L.with_buffer buf (fun () ->
          L.record ~severity:L.Warn L.Retry "buffered-1";
          L.record L.Degrade "buffered-2");
      check_int "buffered events invisible before merge" 1
        (List.length (L.events ()));
      L.merge buf;
      check "merge replays in order with fresh seqs" true
        (List.map (fun e -> (e.L.seq, e.L.message)) (L.events ())
        = [ (0, "before"); (1, "buffered-1"); (2, "buffered-2") ]));
  check "fork while disabled is free" true (L.fork () = None)

let test_log_pp_and_jsonl () =
  with_default_log (fun () ->
      L.record ~severity:L.Warn
        ~fields:[ ("source", "ra"); ("attempt", "2") ]
        L.Retry "fetch failed";
      L.record L.Store_commit "committed";
      (match L.events () with
      | e :: _ ->
          check_str "pp_event line"
            "#0 warn  retry          fetch failed (source=ra, attempt=2)"
            (Format.asprintf "%a" L.pp_event e)
      | [] -> Alcotest.fail "no events");
      check_str "events_jsonl lines"
        ("{\"seq\":0,\"ts_ms\":0.000,\"severity\":\"warn\",\"kind\":\"retry\",\"message\":\"fetch \
          failed\",\"fields\":{\"source\":\"ra\",\"attempt\":\"2\"}}\n"
        ^ "{\"seq\":1,\"ts_ms\":0.000,\"severity\":\"info\",\"kind\":\"store_commit\",\"message\":\"committed\"}\n")
        (Obs.Export.events_jsonl ()))

(* --- exporters ------------------------------------------------------- *)

let test_json_escape () =
  check_str "plain" {|"abc"|} (Obs.Export.json_escape "abc");
  check_str "quote and backslash" {|"a\"b\\c"|}
    (Obs.Export.json_escape {|a"b\c|});
  check_str "newline" {|"a\nb"|} (Obs.Export.json_escape "a\nb");
  check_str "control char" {|"a\u0001b"|} (Obs.Export.json_escape "a\x01b")

let test_chrome_export () =
  let t = T.create ~clock:(Obs.Clock.simulated ()) () in
  T.with_span ~tracer:t ~cat:"test" ~args:[ ("detail", "d") ] "op" (fun () ->
      ());
  let json = Obs.Export.chrome t in
  check "array brackets" true
    (String.length json > 4
    && json.[0] = '['
    && String.sub json (String.length json - 2) 2 = "]\n");
  let has s sub =
    let n = String.length sub and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check "complete event" true (has json {|"ph":"X"|});
  check "name" true (has json {|"name":"op"|});
  check "category" true (has json {|"cat":"test"|});
  check "args" true (has json {|"args":{"detail":"d"}|})

let test_metrics_export () =
  let r = M.create () in
  M.incr ~registry:r ~by:3 "c";
  M.observe ~registry:r "h" 1.5;
  let json = Obs.Export.metrics_json ~registry:r () in
  check_str "metrics json" "{\n  \"c\": 3,\n  \"h\": \
                            {\"count\":1,\"sum\":1.5,\"min\":1.5,\"max\":1.5,\"last\":1.5,\"quantiles\":{\"p50\":1.5,\"p95\":1.5,\"p99\":1.5}}\n}\n"
    json;
  let text = Obs.Export.metrics_text ~registry:r () in
  check "text mentions counter" true
    (String.length text > 0 && text.[0] = 'c');
  check_str "empty registry text" "(no metrics recorded)\n"
    (Obs.Export.metrics_text ~registry:(M.create ()) ());
  check_str "empty registry json" "{}\n"
    (Obs.Export.metrics_json ~registry:(M.create ()) ())

(* Pins the quantile estimator: samples 1..10 land in the {1,2,5}
   log-grid as 1→le1, 2→le2, {3,4,5}→le5, {6..10}→le10, and linear
   interpolation inside the crossing bucket gives exact rank
   estimates for this evenly-spread workload. *)
let test_quantile_interpolation () =
  let r = M.create () in
  for i = 1 to 10 do
    M.observe ~registry:r "q" (float_of_int i)
  done;
  match M.snapshot ~registry:r () with
  | [ ("q", M.Histogram { p50; p95; p99; buckets; _ }) ] ->
      check "p50 interpolates to 5" true (Float.equal p50 5.0);
      check "p95 interpolates to 9.5" true (Float.equal p95 9.5);
      check "p99 interpolates to 9.9" true (Float.equal p99 9.9);
      (match List.rev buckets with
      | (inf, total) :: _ ->
          check "overflow bound is +Inf" true (inf = Float.infinity);
          check_int "cumulative reaches count" 10 total
      | [] -> Alcotest.fail "no buckets");
      check "cumulative counts are monotone" true
        (let rec mono prev = function
           | [] -> true
           | (_, c) :: rest -> c >= prev && mono c rest
         in
         mono 0 buckets)
  | _ -> Alcotest.fail "snapshot shape"

let test_prometheus_export () =
  let r = M.create () in
  M.incr ~registry:r ~by:3 "dst.combine.calls";
  M.gauge ~registry:r "provenance.nodes" 7.0;
  M.observe ~registry:r "h" 1.5;
  let prom = Obs.Export.metrics_prom ~registry:r () in
  let has sub =
    let n = String.length sub and h = String.length prom in
    let rec go i = i + n <= h && (String.sub prom i n = sub || go (i + 1)) in
    go 0
  in
  check "help precedes type for known names" true
    (has
       "# HELP eridb_dst_combine_calls Evidence combinations performed.\n\
        # TYPE eridb_dst_combine_calls counter");
  check "unknown names get the fallback help, still before TYPE" true
    (has "# HELP eridb_h eridb metric.\n# TYPE eridb_h histogram");
  check "counter type line" true (has "# TYPE eridb_dst_combine_calls counter");
  check "counter sample" true (has "eridb_dst_combine_calls 3");
  check "gauge mangled name" true (has "eridb_provenance_nodes 7");
  check "histogram type" true (has "# TYPE eridb_h histogram");
  check "bucket line" true (has "eridb_h_bucket{le=\"2\"} 1");
  check "inf bucket" true (has "eridb_h_bucket{le=\"+Inf\"} 1");
  check "sum line" true (has "eridb_h_sum 1.5");
  check "count line" true (has "eridb_h_count 1")

(* --- acceptance: span tree = plan shape ------------------------------ *)

let make_env seed =
  Workload.Qgen.env (Workload.Rng.create seed) ()

let test_span_tree_matches_plan () =
  let env = make_env 11 in
  let q = Query.Parser.parse "ra JOIN (rb PREFIX r_) ON k = r_k" in
  with_default_tracing ~clock:(Obs.Clock.simulated ()) (fun () ->
      ignore (Query.Physical.eval_fast env q);
      match T.forest T.default with
      | [ { T.event = root;
            children =
              [ { T.event = l; children = [] };
                { T.event = r; children = right_children } ] } ] ->
          check_str "root is the join" "hash-join" root.T.name;
          check_str "left child scans" "seq-scan" l.T.name;
          check_str "right child prefixes" "prefix" r.T.name;
          check "prefix wraps one scan" true
            (match right_children with
            | [ { T.event = inner; _ } ] -> inner.T.name = "seq-scan"
            | _ -> false)
      | f ->
          Alcotest.failf "span forest does not match plan shape (%d roots)"
            (List.length f))

let test_span_tree_matches_union_plan () =
  let env = make_env 12 in
  let q = Query.Parser.parse "ra UNION rb" in
  with_default_tracing ~clock:(Obs.Clock.simulated ()) (fun () ->
      ignore (Query.Physical.eval_fast env q);
      match T.forest T.default with
      | [ { T.event = root;
            children = [ { T.event = l; _ }; { T.event = r; _ } ] } ] ->
          check_str "root is the union" "union" root.T.name;
          check_str "left scan" "seq-scan" l.T.name;
          check_str "right scan" "seq-scan" r.T.name
      | _ -> Alcotest.fail "union span forest shape")

(* --- acceptance: high-conflict merge reports kappa -------------------- *)

let test_high_conflict_kappa_reported () =
  let rng = Workload.Rng.create 99 in
  let dom = Workload.Gen.domain ~size:8 "kappa" in
  let a, b = Workload.Gen.conflicting_pair rng ~conflict:0.9 dom in
  let expected = Dst.Mass.F.conflict a b in
  with_default_metrics (fun () ->
      ignore (Dst.Mass.F.combine a b);
      check_int "one combination counted" 1 (M.counter "dst.combine.calls");
      match M.last "dst.combine.conflict_kappa" with
      | Some kappa ->
          check "metric kappa = recomputed kappa" true
            (Float.equal kappa expected);
          check "the merge really is high-conflict" true (kappa > 0.5)
      | None -> Alcotest.fail "conflict_kappa not recorded")

let () =
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "obs"
    [ ( "metrics",
        [ t "counters" test_counters;
          t "gauges and histograms" test_gauges_histograms;
          t "kind collision" test_kind_collision;
          t "disabled default no-ops" test_disabled_default_noops;
          t "quantile interpolation" test_quantile_interpolation ] );
      ( "trace",
        [ t "nesting" test_span_nesting;
          t "span recorded on raise" test_span_on_raise;
          t "disabled passthrough" test_disabled_tracer_passthrough;
          t "forest ~from slicing" test_forest_from_slicing;
          t "summary" test_summary ] );
      ( "log",
        [ t "disabled no-op" test_log_disabled_noop;
          t "ordering and defaults" test_log_ordering;
          t "ring wrap-around" test_log_wraparound;
          t "severity filter" test_log_severity_filter;
          t "capacity resize" test_log_capacity_resize;
          t "fork and merge" test_log_fork_merge;
          t "pp and jsonl export" test_log_pp_and_jsonl ] );
      ( "export",
        [ t "json escaping" test_json_escape;
          t "chrome trace" test_chrome_export;
          t "metrics dumps" test_metrics_export;
          t "prometheus exposition" test_prometheus_export ] );
      ( "acceptance",
        [ t "span tree matches join plan" test_span_tree_matches_plan;
          t "span tree matches union plan" test_span_tree_matches_union_plan;
          t "high-conflict kappa reported" test_high_conflict_kappa_reported
        ] ) ]
