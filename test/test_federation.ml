(* The fault-tolerant federation runtime: typed source errors,
   deterministic fault injection, retry/backoff/deadline mechanics, and
   the evidential degradation guarantees — the qcheck fault matrix
   proves that for any seeded fault plan the degraded result satisfies
   Theorem-1 closure, that runs are deterministic given the seed, and
   that a zero-fault run is tuple-for-tuple Multi.integrate. *)

module R = Workload.Rng
module G = Workload.Gen
module S = Dst.Support
module F = Federation

let prop ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

let seed_arb = QCheck.int_range 0 1_000_000

(* --- fixtures --------------------------------------------------------- *)

let fed_schema = G.schema "fed"

(* Three union-compatible sources observing overlapping entities. *)
let mk_relations seed =
  let rng = R.create seed in
  let a, b = G.source_pair rng ~size:25 ~overlap:0.6 fed_schema in
  let c = G.reobserve rng a in
  [ ("sa", a); ("sb", b); ("sc", c) ]

let plain_sources rels =
  List.map (fun (n, r) -> F.Source.of_relation ~name:n r) rels

let chaos_spec rng =
  { F.Fault.fail_rate = R.float rng 0.5;
    timeout_rate = R.float rng 0.3;
    corrupt_rate = R.float rng 0.6;
    drop_rate = R.float rng 0.5;
    latency_ms = R.float rng 30.0;
    hang_ms = R.float rng 100.0 }

let chaos_config seed =
  { F.Degrade.default with
    policy =
      { F.Retry.default with
        retries = 3;
        base_delay_ms = 10.0;
        deadline_ms = Some 250.0 };
    min_sources = 1;
    budget_ms = Some 2000.0;
    conflict_discount = seed mod 2 = 0 }

let chaos_run seed =
  let clock = F.Clock.simulated () in
  let rng = R.create (seed + 31) in
  let sources =
    List.map
      (fun (n, r) ->
        F.Fault.wrap ~seed ~clock (chaos_spec rng)
          (F.Source.of_relation ~name:n r))
      (mk_relations seed)
  in
  F.Degrade.integrate ~config:(chaos_config seed) ~seed ~clock sources

(* --- source adapters -------------------------------------------------- *)

let write_tmp content =
  let path = Filename.temp_file "federation" ".erd" in
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  path

let test_source_of_relation () =
  let rels = mk_relations 1 in
  let s = F.Source.of_relation ~name:"x" (List.assoc "sa" rels) in
  Alcotest.(check string) "name" "x" s.F.Source.name;
  match s.F.Source.fetch () with
  | Ok r ->
      Alcotest.(check bool) "same relation" true
        (Erm.Relation.equal r (List.assoc "sa" rels))
  | Error _ -> Alcotest.fail "in-memory source failed"

let test_source_missing_file () =
  let s = F.Source.of_erd_file "/nonexistent/x.erd" in
  match s.F.Source.fetch () with
  | Error (F.Source.Unavailable _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Unavailable"

let test_source_malformed_file () =
  let path = write_tmp "relation broken\nkey k : string\ntuple\n" in
  let s = F.Source.of_erd_file path in
  (match s.F.Source.fetch () with
  | Error (F.Source.Malformed { path = p; line; _ }) ->
      Alcotest.(check string) "path carried" path p;
      Alcotest.(check bool) "line number carried" true (line > 0)
  | Ok _ | Error _ -> Alcotest.fail "expected Malformed");
  Sys.remove path

let test_source_missing_relation () =
  let path =
    write_tmp
      "relation only\nkey k : string\nattr c : evidence {a, b}\ntuple x | \
       [a^1] | (1, 1)\n"
  in
  let s = F.Source.of_erd_file ~relation:"other" path in
  (match s.F.Source.fetch () with
  | Error (F.Source.Missing_relation { name; _ }) ->
      Alcotest.(check string) "asked-for name" "other" name
  | Ok _ | Error _ -> Alcotest.fail "expected Missing_relation");
  let ok = F.Source.of_erd_file ~relation:"only" path in
  (match ok.F.Source.fetch () with
  | Ok r -> Alcotest.(check int) "one tuple" 1 (Erm.Relation.cardinal r)
  | Error _ -> Alcotest.fail "named relation should load");
  Sys.remove path

let test_retryable_classification () =
  Alcotest.(check bool) "unavailable retries" true
    (F.Source.retryable (F.Source.Unavailable "x"));
  Alcotest.(check bool) "timeout retries" true
    (F.Source.retryable (F.Source.Timeout { after_ms = 1.0 }));
  Alcotest.(check bool) "malformed is permanent" false
    (F.Source.retryable
       (F.Source.Malformed { path = "p"; line = 1; message = "m" }));
  Alcotest.(check bool) "schema mismatch is permanent" false
    (F.Source.retryable (F.Source.Schema_mismatch "m"));
  Alcotest.(check bool) "blown budget is permanent" false
    (F.Source.retryable (F.Source.Budget_exhausted { budget_ms = 1.0 }))

(* --- fault plans ------------------------------------------------------ *)

let test_plan_parse () =
  match F.Fault.plan_of_string "ra:fail=0.5,latency=20;*:timeout=0.1" with
  | Error m -> Alcotest.fail m
  | Ok plan ->
      let ra = F.Fault.spec_for plan "ra" in
      Alcotest.(check (float 0.0)) "ra fail" 0.5 ra.F.Fault.fail_rate;
      Alcotest.(check (float 0.0)) "ra latency" 20.0 ra.F.Fault.latency_ms;
      Alcotest.(check (float 0.0)) "ra timeout comes from its own entry"
        0.0 ra.F.Fault.timeout_rate;
      let other = F.Fault.spec_for plan "rb" in
      Alcotest.(check (float 0.0)) "wildcard timeout" 0.1
        other.F.Fault.timeout_rate;
      Alcotest.(check (float 0.0)) "wildcard fail" 0.0 other.F.Fault.fail_rate

let test_plan_parse_errors () =
  let bad text =
    match F.Fault.plan_of_string text with
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" text)
    | Error _ -> ()
  in
  bad "";
  bad "ra";
  bad "ra:bogus=1";
  bad "ra:fail=oops";
  bad "ra:fail=1.5";
  bad "ra:latency=-3";
  bad "ra:fail=0.1;ra:fail=0.2";
  bad ":fail=0.1"

let test_fault_determinism () =
  let rels = mk_relations 5 in
  let fetch_once seed =
    let clock = F.Clock.simulated () in
    let spec =
      { F.Fault.none with
        corrupt_rate = 1.0;
        drop_rate = 0.3;
        latency_ms = 7.0 }
    in
    let s =
      F.Fault.wrap ~seed ~clock spec
        (F.Source.of_relation ~name:"sa" (List.assoc "sa" rels))
    in
    let result = s.F.Source.fetch () in
    (result, clock.F.Clock.now_ms ())
  in
  match (fetch_once 11, fetch_once 11, fetch_once 12) with
  | (Ok r1, t1), (Ok r2, t2), (Ok r3, _) ->
      Alcotest.(check bool) "same seed, same corruption" true
        (Erm.Relation.equal r1 r2);
      Alcotest.(check (float 0.0)) "latency advanced the virtual clock" 7.0 t1;
      Alcotest.(check (float 0.0)) "deterministic latency" t1 t2;
      Alcotest.(check bool) "different seed, different corruption" false
        (Erm.Relation.equal r1 r3);
      Alcotest.(check bool) "corruption preserves CWA" true
        (Erm.Relation.satisfies_cwa r1)
  | _ -> Alcotest.fail "corrupt deliveries should still be Ok"

let test_fault_none_is_transparent () =
  let rels = mk_relations 9 in
  let clock = F.Clock.simulated () in
  let s =
    F.Fault.wrap ~seed:3 ~clock F.Fault.none
      (F.Source.of_relation ~name:"sa" (List.assoc "sa" rels))
  in
  match s.F.Source.fetch () with
  | Ok r ->
      Alcotest.(check bool) "payload untouched" true
        (Erm.Relation.equal r (List.assoc "sa" rels));
      Alcotest.(check (float 0.0)) "no latency" 0.0 (clock.F.Clock.now_ms ())
  | Error _ -> Alcotest.fail "none spec must not fail"

(* --- retry ------------------------------------------------------------ *)

let flaky_source ~failures_before_ok rels =
  let calls = ref 0 in
  F.Source.make "flaky" (fun () ->
      incr calls;
      if !calls <= failures_before_ok then
        Error (F.Source.Unavailable "down")
      else Ok (List.assoc "sa" rels))

let no_jitter =
  { F.Retry.default with
    retries = 3;
    base_delay_ms = 10.0;
    multiplier = 2.0;
    max_delay_ms = 25.0;
    jitter = 0.0 }

let test_retry_recovers () =
  let rels = mk_relations 21 in
  let clock = F.Clock.simulated () in
  match
    F.Retry.fetch ~rng:(R.create 1) ~clock no_jitter
      (flaky_source ~failures_before_ok:2 rels)
  with
  | Ok (_, trace) ->
      Alcotest.(check int) "three attempts" 3 trace.F.Retry.attempts;
      Alcotest.(check int) "two recorded failures" 2
        (List.length trace.F.Retry.failures);
      let backoffs =
        List.map (fun f -> f.F.Retry.backoff_ms) trace.F.Retry.failures
      in
      (* Exponential, capped: 10, then 20 (25 would cap the third). *)
      Alcotest.(check (list (float 0.0))) "backoff schedule" [ 10.0; 20.0 ]
        backoffs;
      Alcotest.(check (float 0.0)) "clock advanced by the backoffs" 30.0
        trace.F.Retry.total_ms
  | Error _ -> Alcotest.fail "should recover within the retry budget"

let test_retry_exhausts () =
  let rels = mk_relations 22 in
  let clock = F.Clock.simulated () in
  match
    F.Retry.fetch ~rng:(R.create 1) ~clock no_jitter
      (flaky_source ~failures_before_ok:10 rels)
  with
  | Ok _ -> Alcotest.fail "cannot succeed"
  | Error (F.Source.Unavailable _, trace) ->
      Alcotest.(check int) "1 + retries attempts" 4 trace.F.Retry.attempts;
      (* 10 + 20 + 25(capped); the final failure schedules no backoff. *)
      Alcotest.(check (float 0.0)) "capped backoff total" 55.0
        trace.F.Retry.total_ms
  | Error _ -> Alcotest.fail "last error should surface"

let test_retry_permanent_fails_fast () =
  let calls = ref 0 in
  let s =
    F.Source.make "broken" (fun () ->
        incr calls;
        Error (F.Source.Malformed { path = "p"; line = 3; message = "bad" }))
  in
  let clock = F.Clock.simulated () in
  (match F.Retry.fetch ~rng:(R.create 1) ~clock no_jitter s with
  | Error (F.Source.Malformed _, trace) ->
      Alcotest.(check int) "single attempt" 1 trace.F.Retry.attempts
  | _ -> Alcotest.fail "expected the malformed error");
  Alcotest.(check int) "no useless retries" 1 !calls

let test_retry_deadline () =
  let rels = mk_relations 23 in
  let clock = F.Clock.simulated () in
  let policy = { no_jitter with F.Retry.deadline_ms = Some 15.0 } in
  match
    F.Retry.fetch ~rng:(R.create 1) ~clock policy
      (flaky_source ~failures_before_ok:10 rels)
  with
  | Error (F.Source.Timeout { after_ms }, trace) ->
      (* Attempt 1 fails at t=0, backs off 10 ms; attempt 2 fails at
         t=10, backs off 20 ms; t=30 ≥ 15 stops attempt 3. *)
      Alcotest.(check int) "attempts until the deadline" 2
        trace.F.Retry.attempts;
      Alcotest.(check bool) "deadline respected" true (after_ms >= 15.0)
  | _ -> Alcotest.fail "expected a deadline timeout"

(* --- degrade ---------------------------------------------------------- *)

let test_degrade_zero_fault_identity () =
  let rels = mk_relations 41 in
  let clock = F.Clock.simulated () in
  match
    F.Degrade.integrate ~clock (plain_sources rels)
  with
  | Error _ -> Alcotest.fail "healthy sources cannot fail"
  | Ok report ->
      let reference =
        Integration.Multi.integrate
          (List.map
             (fun (n, r) ->
               { Integration.Multi.source_name = n; source_relation = r })
             rels)
      in
      Alcotest.(check bool) "tuple-for-tuple identical" true
        (Erm.Relation.equal report.F.Degrade.multi.integrated
           reference.Integration.Multi.integrated);
      Alcotest.(check bool) "same reliabilities" true
        (report.F.Degrade.multi.reliabilities
        = reference.Integration.Multi.reliabilities);
      List.iter
        (fun o ->
          Alcotest.(check bool) "all pristine" true
            (o.F.Degrade.status = F.Degrade.Delivered);
          Alcotest.(check (float 0.0)) "no discount" 1.0 o.F.Degrade.alpha)
        report.F.Degrade.outcomes

let test_degrade_quorum () =
  let rels = mk_relations 42 in
  let clock = F.Clock.simulated () in
  let down =
    F.Source.make "down" (fun () -> Error (F.Source.Unavailable "gone"))
  in
  let sources = plain_sources rels @ [ down ] in
  (match
     F.Degrade.integrate
       ~config:{ F.Degrade.default with min_sources = 0 }
       ~clock sources
   with
  | Error (F.Degrade.Quorum_not_met { delivered; required; outcomes }) ->
      Alcotest.(check int) "three delivered" 3 delivered;
      Alcotest.(check int) "all four required" 4 required;
      Alcotest.(check int) "outcome per requested source" 4
        (List.length outcomes);
      Alcotest.(check bool) "failure outcome reported" true
        (List.exists
           (fun o ->
             match o.F.Degrade.status with
             | F.Degrade.Failed (F.Source.Unavailable _) -> true
             | _ -> false)
           outcomes)
  | _ -> Alcotest.fail "strict quorum must fail");
  match
    F.Degrade.integrate
      ~config:{ F.Degrade.default with min_sources = 3 }
      ~clock sources
  with
  | Ok report ->
      Alcotest.(check int) "integrated the survivors" 3
        (List.length report.F.Degrade.multi.reliabilities)
  | Error _ -> Alcotest.fail "relaxed quorum must succeed"

let test_degrade_discounts_recovered () =
  let rels = mk_relations 43 in
  let clock = F.Clock.simulated () in
  let sources =
    [ F.Source.of_relation ~name:"steady" (List.assoc "sa" rels);
      (let calls = ref 0 in
       F.Source.make "flaky" (fun () ->
           incr calls;
           if !calls <= 2 then Error (F.Source.Unavailable "down")
           else Ok (List.assoc "sc" rels))) ]
  in
  match F.Degrade.integrate ~clock sources with
  | Error _ -> Alcotest.fail "flaky source recovers"
  | Ok report ->
      let by name =
        List.find (fun o -> o.F.Degrade.source = name)
          report.F.Degrade.outcomes
      in
      Alcotest.(check bool) "steady untouched" true
        ((by "steady").F.Degrade.alpha = 1.0);
      let flaky = by "flaky" in
      Alcotest.(check bool) "recovered status" true
        (flaky.F.Degrade.status = F.Degrade.Recovered 2);
      Alcotest.(check (float 1e-9)) "alpha decays per failure" (0.8 *. 0.8)
        flaky.F.Degrade.alpha;
      Alcotest.(check (float 1e-9)) "merge used the discounted alpha"
        flaky.F.Degrade.alpha
        (List.assoc "flaky" report.F.Degrade.multi.reliabilities);
      Alcotest.(check bool) "closure survives discounting" true
        (Erm.Relation.satisfies_cwa report.F.Degrade.multi.integrated)

let test_degrade_stale_delivery () =
  let rels = mk_relations 44 in
  let clock = F.Clock.simulated () in
  let slow =
    F.Fault.wrap ~seed:0 ~clock
      { F.Fault.none with latency_ms = 20.0 }
      (F.Source.of_relation ~name:"slow" (List.assoc "sa" rels))
  in
  let config =
    { F.Degrade.default with
      policy = { F.Retry.default with deadline_ms = Some 10.0 } }
  in
  match F.Degrade.integrate ~config ~clock [ slow ] with
  | Error _ -> Alcotest.fail "stale delivery still delivers"
  | Ok report -> (
      match report.F.Degrade.outcomes with
      | [ o ] ->
          Alcotest.(check bool) "stale status" true
            (o.F.Degrade.status = F.Degrade.Stale);
          Alcotest.(check (float 1e-9)) "stale discount applied" 0.8
            o.F.Degrade.alpha
      | _ -> Alcotest.fail "one outcome")

let test_degrade_budget () =
  let rels = mk_relations 45 in
  let clock = F.Clock.simulated () in
  let slow name r =
    F.Fault.wrap ~seed:0 ~clock
      { F.Fault.none with latency_ms = 50.0 }
      (F.Source.of_relation ~name r)
  in
  let sources =
    [ slow "s1" (List.assoc "sa" rels);
      slow "s2" (List.assoc "sb" rels);
      slow "s3" (List.assoc "sc" rels) ]
  in
  let config = { F.Degrade.default with budget_ms = Some 80.0 } in
  match F.Degrade.integrate ~config ~clock sources with
  | Error _ -> Alcotest.fail "two sources fit the budget"
  | Ok report -> (
      match List.rev report.F.Degrade.outcomes with
      | last :: _ -> (
          match last.F.Degrade.status with
          | F.Degrade.Failed (F.Source.Budget_exhausted _) -> ()
          | _ -> Alcotest.fail "third source should be cut by the budget")
      | [] -> Alcotest.fail "outcomes missing")

let test_degrade_schema_mismatch_is_typed () =
  let rels = mk_relations 46 in
  let other_schema = G.schema ~definite:2 ~evidential:1 "other" in
  let odd =
    F.Source.of_relation ~name:"odd"
      (G.relation (R.create 7) ~size:5 other_schema)
  in
  let clock = F.Clock.simulated () in
  match
    F.Degrade.integrate ~clock (plain_sources rels @ [ odd ])
  with
  | Error _ -> Alcotest.fail "mismatch must degrade, not abort"
  | Ok report ->
      Alcotest.(check bool) "mismatch reported through the typed channel"
        true
        (List.exists
           (fun o ->
             match o.F.Degrade.status with
             | F.Degrade.Failed (F.Source.Schema_mismatch _) -> true
             | _ -> false)
           report.F.Degrade.outcomes);
      Alcotest.(check int) "survivors merged" 3
        (List.length report.F.Degrade.multi.reliabilities)

let test_degrade_no_sources () =
  let clock = F.Clock.simulated () in
  match F.Degrade.integrate ~clock [] with
  | Error F.Degrade.No_sources -> ()
  | _ -> Alcotest.fail "empty federation"

(* --- the qcheck fault matrix ------------------------------------------ *)

let closure_prop =
  prop "degraded results satisfy Theorem-1 closure" seed_arb (fun seed ->
      match chaos_run seed with
      | Ok report ->
          Erm.Relation.satisfies_cwa report.F.Degrade.multi.integrated
      | Error (F.Degrade.Quorum_not_met _) | Error F.Degrade.No_sources ->
          true)

let determinism_prop =
  prop "chaos runs are deterministic given the seed" seed_arb (fun seed ->
      match (chaos_run seed, chaos_run seed) with
      | Ok a, Ok b ->
          Erm.Relation.equal a.F.Degrade.multi.integrated
            b.F.Degrade.multi.integrated
          && a.F.Degrade.outcomes = b.F.Degrade.outcomes
          && a.F.Degrade.elapsed_ms = b.F.Degrade.elapsed_ms
      | ( Error (F.Degrade.Quorum_not_met { delivered = da; required = ra; outcomes = oa }),
          Error (F.Degrade.Quorum_not_met { delivered = db; required = rb; outcomes = ob }) ) ->
          da = db && ra = rb && oa = ob
      | Error F.Degrade.No_sources, Error F.Degrade.No_sources -> true
      | _ -> false)

let zero_fault_prop =
  prop "a zero-fault plan is exactly Multi.integrate" seed_arb (fun seed ->
      let rels = mk_relations seed in
      let clock = F.Clock.simulated () in
      let sources =
        (* Wrapped with the empty plan: the chaos layer must be
           transparent when every rate is zero. *)
        List.map
          (fun (n, r) ->
            F.Fault.wrap ~seed ~clock
              (F.Fault.spec_for F.Fault.empty_plan n)
              (F.Source.of_relation ~name:n r))
          rels
      in
      match F.Degrade.integrate ~seed ~clock sources with
      | Error _ -> false
      | Ok report ->
          let reference =
            Integration.Multi.integrate
              (List.map
                 (fun (n, r) ->
                   { Integration.Multi.source_name = n; source_relation = r })
                 rels)
          in
          Erm.Relation.equal report.F.Degrade.multi.integrated
            reference.Integration.Multi.integrated
          && report.F.Degrade.multi.reliabilities
             = reference.Integration.Multi.reliabilities
          && report.F.Degrade.multi.conflict_matrix
             = reference.Integration.Multi.conflict_matrix)

let alpha_floor_prop =
  prop "every applied discount respects the floor" seed_arb (fun seed ->
      match chaos_run seed with
      | Ok report ->
          List.for_all
            (fun o ->
              match o.F.Degrade.status with
              | F.Degrade.Failed _ -> true
              | _ ->
                  o.F.Degrade.alpha >= F.Degrade.default.F.Degrade.alpha_floor
                  && o.F.Degrade.alpha <= 1.0)
            report.F.Degrade.outcomes
      | Error _ -> true)

let () =
  Alcotest.run "federation"
    [ ( "source",
        [ Alcotest.test_case "in-memory adapter" `Quick
            test_source_of_relation;
          Alcotest.test_case "missing file is Unavailable" `Quick
            test_source_missing_file;
          Alcotest.test_case "parse failure is Malformed" `Quick
            test_source_malformed_file;
          Alcotest.test_case "missing relation name" `Quick
            test_source_missing_relation;
          Alcotest.test_case "retryable classification" `Quick
            test_retryable_classification ] );
      ( "fault",
        [ Alcotest.test_case "plan parsing" `Quick test_plan_parse;
          Alcotest.test_case "plan parse errors" `Quick
            test_plan_parse_errors;
          Alcotest.test_case "seeded determinism" `Quick
            test_fault_determinism;
          Alcotest.test_case "none spec is transparent" `Quick
            test_fault_none_is_transparent ] );
      ( "retry",
        [ Alcotest.test_case "recovers after transient failures" `Quick
            test_retry_recovers;
          Alcotest.test_case "exhausts the attempt budget" `Quick
            test_retry_exhausts;
          Alcotest.test_case "permanent errors fail fast" `Quick
            test_retry_permanent_fails_fast;
          Alcotest.test_case "deadline stops retrying" `Quick
            test_retry_deadline ] );
      ( "degrade",
        [ Alcotest.test_case "zero faults = Multi.integrate" `Quick
            test_degrade_zero_fault_identity;
          Alcotest.test_case "quorum enforcement" `Quick test_degrade_quorum;
          Alcotest.test_case "recovered sources are discounted" `Quick
            test_degrade_discounts_recovered;
          Alcotest.test_case "stale deliveries are discounted" `Quick
            test_degrade_stale_delivery;
          Alcotest.test_case "total budget cuts the tail" `Quick
            test_degrade_budget;
          Alcotest.test_case "schema mismatch via the typed channel" `Quick
            test_degrade_schema_mismatch_is_typed;
          Alcotest.test_case "no sources" `Quick test_degrade_no_sources ] );
      ( "fault-matrix",
        [ closure_prop; determinism_prop; zero_fault_prop; alpha_floor_prop ]
      ) ]
