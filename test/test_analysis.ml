(* The static analyzer: plan checker (Analysis.Check), .erd linter
   (Analysis.Erd_lint) and the support-interval domain (Analysis.Interval).

   Three layers:
   - unit: each diagnostic code fires on a minimal trigger and stays
     silent on the clean sample;
   - agreement (qcheck): serialized generated relations lint clean and
     load; textually mutated corpora both lint dirty and fail to load —
     the linter and Erm.Io agree on validity in both directions;
   - soundness (qcheck): a plan the checker proves statically empty
     evaluates to the empty relation. *)

module R = Workload.Rng
module G = Workload.Gen
module D = Analysis.Diagnostic

let prop ?(count = 300) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

let seed_arb = QCheck.int_range 0 1_000_000

let sample =
  {|relation ra
key rname : string
attr street : string
attr bldg-no : int
attr speciality : evidence {am, ca, hu, it, mu, si, ta}
tuple garden | univ.ave. | 2011 | [si^0.5; hu^0.25; ~^0.25] | (1, 1)
tuple wok | wash.ave. | 600 | [si^1] | (1, 1)

relation rb
key rname : string
attr street : string
attr bldg-no : int
attr speciality : evidence {am, ca, hu, it, mu, si, ta}
tuple wok | wash.ave. | 600 | [si^0.5; ~^0.5] | (0.8, 1)

relation rc
key rname : string
attr city : string
tuple wok | sf | (1, 1)

relation hollow
key rname : string
attr street : string
|}

let env =
  List.map
    (fun r -> (Erm.Schema.name (Erm.Relation.schema r), r))
    (Erm.Io.relations_of_string sample)

let codes diags = List.map (fun d -> d.D.code) diags

let check q = Analysis.Check.check_string env q

let assert_code q code =
  let found = codes (check q) in
  Alcotest.(check bool)
    (Printf.sprintf "%s on %S (got %s)" code q (String.concat "," found))
    true (List.mem code found)

let assert_clean q =
  let diags = List.filter D.is_error (check q) in
  Alcotest.(check (list string))
    (Printf.sprintf "no errors on %S" q)
    [] (codes diags)

(* --- plan checker: one trigger per code ----------------------------- *)

let test_check_codes () =
  assert_code "SELECT" "Q000";
  assert_code "SELECT rname FROM nosuch" "Q001";
  assert_code "SELECT rname FROM ra WHERE bogus IS {am}" "Q002";
  assert_code "SELECT rname FROM ra WHERE street > bldg-no" "Q003";
  assert_code "SELECT rname FROM ra WHERE street = bldg-no" "Q004";
  assert_code "SELECT rname FROM ra WHERE speciality IS {zz}" "Q005";
  assert_code "SELECT rname FROM ra WHERE speciality IS {am, ca, hu, it, mu, si, ta}"
    "Q006";
  assert_code "SELECT rname FROM ra WITH SN > 0.5 AND SN < 0.2" "Q007";
  assert_code "SELECT street FROM ra" "Q008";
  assert_code "SELECT rname FROM ra WHERE street = bldg-no" "Q010";
  assert_code "ra JOIN (rb PREFIX r_) ON street = r_bldg-no" "Q011";
  assert_code "ra UNION rc" "Q012";
  assert_code "ra JOIN rb ON rname = rname" "Q013";
  assert_code "SELECT rname FROM ra WHERE speciality = [am^2]" "Q015";
  assert_code "SELECT rname FROM ra WITH SN > 1.5" "Q016";
  assert_code "SELECT rname FROM ra LIMIT 0" "Q017";
  assert_code "SELECT rname FROM hollow" "Q018"

let test_check_clean () =
  assert_clean "SELECT rname, speciality FROM ra WHERE speciality IS {si} WITH SN > 0.5";
  assert_clean "ra UNION rb";
  assert_clean "ra JOIN (rb PREFIX r_) ON rname = r_rname";
  assert_clean "SELECT rname FROM ra WHERE bldg-no > 500 ORDER BY SN DESC LIMIT 3"

(* Error-level findings gate execution; warnings do not. *)
let test_guard () =
  let errs = Analysis.Check.errors env in
  Alcotest.(check bool)
    "statically-empty IS is rejected" true
    (errs (Query.Parser.parse "SELECT rname FROM ra WHERE speciality IS {zz}")
    <> []);
  Alcotest.(check (list string))
    "clean query passes" []
    (errs (Query.Parser.parse "SELECT rname FROM ra"));
  Alcotest.(check bool) "physical refuses under guard" true
    (match
       Query.Physical.run ~guard:Analysis.Check.errors env
         "SELECT rname FROM ra WHERE speciality IS {zz}"
     with
    | _ -> false
    | exception Query.Physical.Rejected (_ :: _) -> true)

(* --- the interval domain -------------------------------------------- *)

let test_intervals () =
  let open Analysis.Interval in
  Alcotest.(check bool) "top is satisfiable" false (is_empty top);
  Alcotest.(check bool) "impossible is never positive" true
    (never_positive impossible);
  Alcotest.(check bool) "mul by impossible is never positive" true
    (never_positive (mul top impossible));
  Alcotest.(check bool) "disj keeps possibility" false
    (never_positive (disj impossible certain));
  Alcotest.(check bool) "neg certain is impossible" true
    (never_positive (neg certain));
  Alcotest.(check bool) "sn>0.5 && sn<0.2 infeasible" true
    (constrain_threshold
       Erm.Threshold.(sn_gt 0.5 &&& Cmp (Sn, Lt, 0.2))
       top
    = None);
  Alcotest.(check bool) "sn>0.5 feasible on top" true
    (constrain_threshold (Erm.Threshold.sn_gt 0.5) top <> None);
  Alcotest.(check bool) "sn>0.5 infeasible after select sp<=0.3" true
    (constrain_threshold (Erm.Threshold.sn_gt 0.5)
       (make ~sn_lo:0.0 ~sn_hi:0.3 ~sp_lo:0.0 ~sp_hi:0.3)
    = None)

(* --- linter: one trigger per code ----------------------------------- *)

let lint_codes s = codes (Analysis.Erd_lint.lint_string s)

let assert_lint s code =
  let found = lint_codes s in
  Alcotest.(check bool)
    (Printf.sprintf "%s (got %s)" code (String.concat "," found))
    true (List.mem code found)

let rel_wrap tuple_line =
  Printf.sprintf
    "relation r\nkey name : string\nattr rating : evidence {a, b}\n%s\n"
    tuple_line

let test_lint_codes () =
  assert_lint "tuple x | y | (1, 1)\n" "E001";
  assert_lint "relation r\nkey grade : evidence {a, b}\n" "E003";
  assert_lint "relation r\nkey n : string\nattr n : int\n" "E004";
  assert_lint "relation r\nkey n : decimal\n" "E005";
  assert_lint (rel_wrap "tuple x | [a^1]") "E006";
  assert_lint
    "relation r\nkey n : int\ntuple twelve | (1, 1)\n" "E007";
  assert_lint (rel_wrap "tuple x | [a^0.5 b^0.5] | (1, 1)") "E008";
  assert_lint (rel_wrap "tuple x | [a^0.7; b^0.5] | (1, 1)") "E009";
  assert_lint (rel_wrap "tuple x | [{}^0.5; a^0.5] | (1, 1)") "E010";
  assert_lint (rel_wrap "tuple x | [a^1.5; b^-0.5] | (1, 1)") "E011";
  assert_lint (rel_wrap "tuple x | [zz^1] | (1, 1)") "E012";
  assert_lint
    (rel_wrap "tuple x | [a^1] | (1, 1)\ntuple x | [b^1] | (1, 1)")
    "E013";
  assert_lint (rel_wrap "tuple x | [a^1] | (1 1)") "E014";
  assert_lint (rel_wrap "tuple x | [a^1] | (0.9, 0.4)") "E015";
  assert_lint (rel_wrap "tuple x | [a^1] | (0, 1)") "E016";
  assert_lint (rel_wrap "tuple x | [a^0; b^1] | (1, 1)") "E019";
  assert_lint (rel_wrap "tuple x | [a^0.5; a^0.5] | (1, 1)") "E020";
  Alcotest.(check (list string))
    "clean sample lints clean" [] (lint_codes sample);
  Alcotest.(check int) "error exit code" 2
    (Analysis.Report.exit_code (Analysis.Erd_lint.lint_string (rel_wrap "tuple x | [zz^1] | (1, 1)")));
  Alcotest.(check int) "clean exit code" 0
    (Analysis.Report.exit_code (Analysis.Erd_lint.lint_string sample))

let test_json () =
  let diags =
    Analysis.Erd_lint.lint_string ~file:"f.erd" (rel_wrap "tuple x | [zz^1] | (1, 1)")
  in
  let json = Analysis.Report.to_json diags in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "json mentions %s" needle)
        true
        (let n = String.length needle and h = String.length json in
         let rec go i =
           i + n <= h && (String.sub json i n = needle || go (i + 1))
         in
         go 0))
    [ "\"code\": \"E012\""; "\"severity\": \"error\""; "\"file\": \"f.erd\"" ];
  Alcotest.(check string) "empty list is []" "[]" (Analysis.Report.to_json [])

(* --- agreement: linter vs loader (qcheck) --------------------------- *)

let gen_relation seed =
  let rng = R.create seed in
  G.relation rng ~size:(1 + R.int rng 8) (G.schema "g")

let lint_accepts_iff_loads =
  prop "lint-clean serialized relations load" seed_arb (fun seed ->
      let text = Erm.Io.to_string (gen_relation seed) in
      let errors = List.filter D.is_error (Analysis.Erd_lint.lint_string text) in
      let loads =
        match Erm.Io.relations_of_string text with
        | _ -> true
        | exception _ -> false
      in
      errors = [] && loads)

(* Seeded textual corruptions, each violating one invariant the loader
   also enforces: duplicated key row, inverted membership pair, dropped
   field. Lint must go dirty and load must raise — on the same input. *)
let mutate seed text =
  let lines = String.split_on_char '\n' text in
  let tuples, rest =
    List.partition
      (fun l -> String.length l >= 6 && String.sub l 0 6 = "tuple ")
      lines
  in
  match tuples with
  | [] -> None
  | first :: _ ->
      let broken =
        match seed mod 3 with
        | 0 -> tuples @ [ first ]
        | 1 -> (
            match String.rindex_opt first '(' with
            | Some i -> (String.sub first 0 i ^ "(0.9, 0.4)") :: List.tl tuples
            | None -> tuples)
        | _ -> (
            match String.rindex_opt first '|' with
            | Some i -> String.sub first 0 i :: List.tl tuples
            | None -> tuples)
      in
      Some (String.concat "\n" (List.filter (fun l -> l <> "") rest @ broken))

let mutations_rejected_twice =
  prop "mutated corpora lint dirty and fail to load" seed_arb (fun seed ->
      match mutate seed (Erm.Io.to_string (gen_relation seed)) with
      | None -> true
      | Some text ->
          let lint_dirty =
            List.exists D.is_error (Analysis.Erd_lint.lint_string text)
          in
          let load_fails =
            match Erm.Io.relations_of_string text with
            | _ -> false
            | exception _ -> true
          in
          lint_dirty && load_fails)

(* --- soundness: statically empty ⇒ evaluates empty (qcheck) --------- *)

(* Queries with a taste for dead atoms: out-of-frame IS sets and
   contradictory thresholds alongside live ones. *)
let gen_dead_query rng =
  let dead_set = [ Dst.Value.string (Printf.sprintf "zz%d" (R.int rng 4)) ] in
  let live_set =
    List.init (1 + R.int rng 2) (fun _ ->
        Dst.Value.string (Printf.sprintf "v%d" (R.int rng 8)))
  in
  let atom () =
    match R.int rng 4 with
    | 0 -> Query.Ast.Is ("e0", dead_set)
    | 1 -> Query.Ast.Is ("e0", live_set)
    | 2 -> Query.Ast.Is ("e1", live_set)
    | _ ->
        Query.Ast.Cmp
          ( Erm.Predicate.Eq,
            Query.Ast.Attr "k",
            Query.Ast.Scalar (Dst.Value.string (Printf.sprintf "key%d" (R.int rng 6))) )
  in
  let pred =
    match R.int rng 4 with
    | 0 -> atom ()
    | 1 -> Query.Ast.And (atom (), atom ())
    | 2 -> Query.Ast.Or (atom (), atom ())
    | _ -> Query.Ast.Not (Query.Ast.True)
  in
  let threshold =
    match R.int rng 4 with
    | 0 -> Erm.Threshold.always
    | 1 -> Erm.Threshold.sn_gt (R.float rng 1.0)
    | 2 -> Erm.Threshold.(sn_gt 0.6 &&& Cmp (Sn, Lt, 0.2))
    | _ -> Erm.Threshold.sp_ge (R.float rng 1.0)
  in
  Query.Ast.Select
    { cols = None;
      from = Query.Ast.Rel (if R.bool rng then "ga" else "gb");
      where = pred;
      threshold }

let static_empty_sound =
  prop "statically-empty plans evaluate to the empty relation" seed_arb
    (fun seed ->
      let rng = R.create seed in
      let schema = G.schema "g" in
      let ga, gb = G.source_pair rng ~size:8 ~overlap:0.5 schema in
      let genv = [ ("ga", ga); ("gb", gb) ] in
      let q = gen_dead_query rng in
      let r = Analysis.Check.analyze genv q in
      if not r.Analysis.Check.empty then true
      else
        match Query.Eval.eval genv q with
        | rel -> Erm.Relation.is_empty rel
        | exception _ -> true)

(* --- the check catalog ---------------------------------------------- *)

module C = Analysis.Catalog
module K = Analysis.Checkdef

let test_catalog_registry () =
  let codes_of cs = List.map (fun c -> c.K.code) cs in
  let all = codes_of C.checks in
  Alcotest.(check bool) "codes are unique" true
    (List.sort_uniq String.compare all = List.sort String.compare all);
  (* Every diagnostic code the two legacy front ends emit is registered,
     and the S-family is present. *)
  List.iter
    (fun code ->
      Alcotest.(check bool)
        (Printf.sprintf "%s registered" code)
        true (C.find code <> None))
    [ "E001"; "E009"; "E017"; "E099"; "Q000"; "Q008"; "Q018"; "S001"; "S010" ];
  Alcotest.(check (option int)) "E016 priority" (Some 3)
    (Option.map K.priority_rank (C.priority_for "E016"));
  Alcotest.(check (option int)) "unknown code has no priority" None
    (Option.map K.priority_rank (C.priority_for "X123"));
  (* Severity derivation is the documented table. *)
  Alcotest.(check bool) "Blocker is an error" true
    (K.severity_of_priority K.Blocker = D.Error);
  Alcotest.(check bool) "Low is a warning" true
    (K.severity_of_priority K.Low = D.Warning);
  (* Round-trip the priority spellings, case-insensitively. *)
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (K.priority_to_string p ^ " round-trips")
        true
        (K.priority_of_string
           (String.lowercase_ascii (K.priority_to_string p))
        = Some p))
    [ K.Blocker; K.High; K.Medium; K.Low; K.Info ]

let test_catalog_export () =
  let tsv = C.to_tsv () in
  let lines = String.split_on_char '\n' tsv in
  Alcotest.(check string) "TSV header"
    "Display Name\tPriority\tDescription" (List.hd lines);
  Alcotest.(check int) "one row per check (plus header and trailing \\n)"
    (List.length C.checks + 2)
    (List.length lines);
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "TSV names S001" true
    (contains "S001 Dangling_Key_Reference\tHigh" tsv);
  let json = C.to_json () in
  Alcotest.(check bool) "JSON names E012" true
    (contains {|"code": "E012", "name": "Value_Outside_Domain"|} json);
  Alcotest.(check bool) "JSON spells scope" true
    (contains {|"scope": "store"|} json)

(* --- store sweeps ---------------------------------------------------- *)

(* Fixture root relative to cwd: the dune test runner runs from test/,
   `dune exec test/test_analysis.exe` (CI's sweep job) from the repo
   root. *)
let fixture_dir =
  if Sys.file_exists "fixtures/sweep/bad_catalog" then "fixtures/sweep/bad_catalog"
  else "test/fixtures/sweep/bad_catalog"

let sweep_env files =
  List.concat_map
    (fun f ->
      List.map
        (fun r -> (Erm.Schema.name (Erm.Relation.schema r), r))
        (Erm.Io.load (fixture_dir ^ "/" ^ f)))
    files

let sweep_codes ?thresholds env =
  codes (Analysis.Sweep.run (Analysis.Sweep.subject ?thresholds ~telemetry:false env))

let test_sweep_bad_catalog () =
  let env = sweep_env [ "hotels.erd"; "bookings.erd"; "empty_rel.erd" ] in
  let found = sweep_codes env in
  List.iter
    (fun code ->
      Alcotest.(check bool)
        (Printf.sprintf "%s fires on the bad catalog (got %s)" code
           (String.concat "," found))
        true (List.mem code found))
    [ "S001"; "S002"; "S006"; "S007"; "S010" ];
  (* Each planted defect is singular: exactly one dangling reference,
     one dormant value, one clone group. *)
  let count c = List.length (List.filter (String.equal c) found) in
  Alcotest.(check int) "one dangling reference" 1 (count "S001");
  Alcotest.(check int) "one dormant domain value" 1 (count "S002");
  Alcotest.(check int) "two duplicate-entity groups" 2 (count "S006");
  Alcotest.(check int) "one clone group" 1 (count "S007")

let test_sweep_clean_env () =
  (* The paper's restaurant sample: referentially irrelevant (no shared
     attribute names across keys), live evidence everywhere. *)
  Alcotest.(check (list string))
    "clean sample relations sweep clean (bar the declared-empty one)"
    [ "S010" ] (sweep_codes env)

let test_sweep_cwa () =
  let schema =
    Erm.Schema.make ~name:"u"
      ~key:[ Erm.Attr.definite "k" "string" ]
      ~nonkey:[ Erm.Attr.definite "v" "string" ]
  in
  let tuple sn sp key =
    Erm.Etuple.make schema
      ~key:[ Dst.Value.string key ]
      ~cells:[ Erm.Etuple.Definite (Dst.Value.string "x") ]
      ~tm:(Dst.Support.make ~sn ~sp)
  in
  let bad =
    Erm.Relation.of_tuples_unchecked schema [ tuple 0.0 0.4 "dead" ]
  in
  Alcotest.(check bool) "S003 fires on an sn = 0 tuple" true
    (List.mem "S003" (sweep_codes [ ("u", bad) ]));
  let ok = Erm.Relation.of_tuples schema [ tuple 0.5 1.0 "live" ] in
  Alcotest.(check bool) "S003 silent on an admissible tuple" false
    (List.mem "S003" (sweep_codes [ ("u", ok) ]))

(* S008/S009 read the committed segment history; drive them through a
   hand-built store_meta rather than disk. *)
let test_sweep_segments () =
  let upsert d = Store.Segment.Upsert { digest = d; row = "row" } in
  let delete d = Store.Segment.Delete { digest = d } in
  let meta segs =
    { K.store_name = "s";
      store_dir = "dir";
      store_version = 1;
      store_segments = segs }
  in
  let subject segs relations =
    { K.relations;
      store = Some (meta segs);
      rollups = [];
      merges = [];
      thresholds = K.default_thresholds }
  in
  let run s = codes (Analysis.Sweep.run s) in
  let dangling =
    subject [ ("000001.seg", [ upsert "aa"; delete "bb" ]) ] []
  in
  Alcotest.(check bool) "S008 fires on a never-upserted delete" true
    (List.mem "S008" (run dangling));
  let ordered =
    subject
      [ ("000001.seg", [ upsert "aa" ]); ("000002.seg", [ delete "aa" ]) ]
      []
  in
  Alcotest.(check bool) "S008 silent when the upsert precedes" false
    (List.mem "S008" (run ordered));
  let bloated =
    subject
      [ ("000001.seg",
         [ upsert "aa"; upsert "aa"; upsert "aa"; upsert "bb"; delete "bb" ])
      ]
      []
  in
  Alcotest.(check bool) "S009 fires on 4 dead vs 1 live" true
    (List.mem "S009" (run bloated));
  let fresh =
    subject [ ("000001.seg", [ upsert "aa"; upsert "bb" ]) ] []
  in
  Alcotest.(check bool) "S009 silent on an all-live history" false
    (List.mem "S009" (run fresh))

(* S004/S005 come from the ambient κ telemetry a real absorption
   records. *)
let test_sweep_telemetry () =
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  Obs.Provenance.enable ();
  Obs.Provenance.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.reset ();
      Obs.Metrics.disable ();
      Obs.Provenance.reset ();
      Obs.Provenance.disable ())
    (fun () ->
      (* Three heavily conflicting evidential cells (κ ≈ 0.96 each)
         against one agreeing membership combine (κ = 0) keep the
         source's mean κ well above the 0.6 disagreement threshold. *)
      let load text = List.hd (Erm.Io.relations_of_string text) in
      let base =
        load
          {|relation base
key k : string
attr grade : evidence {a, b}
attr food : evidence {a, b}
attr view : evidence {a, b}
tuple x | [a^0.98; ~^0.02] | [a^0.98; ~^0.02] | [a^0.98; ~^0.02] | (1, 1)
|}
      and noisy =
        load
          {|relation noisy
key k : string
attr grade : evidence {a, b}
attr food : evidence {a, b}
attr view : evidence {a, b}
tuple x | [b^0.98; ~^0.02] | [b^0.98; ~^0.02] | [b^0.98; ~^0.02] | (1, 1)
|}
      in
      let merged, _, _ =
        Integration.Multi.absorb_delta ~into:base
          { Integration.Multi.source_name = "noisy";
            source_relation = noisy }
      in
      let found =
        codes (Analysis.Sweep.run (Analysis.Sweep.subject [ ("base", merged) ]))
      in
      Alcotest.(check bool)
        (Printf.sprintf "S004 fires on the conflicting source (got %s)"
           (String.concat "," found))
        true (List.mem "S004" found);
      Alcotest.(check bool) "S005 fires on the κ = 0.96 merges" true
        (List.mem "S005" found);
      let rollups = Analysis.Sweep.kappa_rollups () in
      Alcotest.(check int) "one source rolled up" 1 (List.length rollups);
      let r = List.hd rollups in
      Alcotest.(check string) "rollup names the source" "noisy"
        r.K.rollup_source)

let test_sweep_report_order () =
  let env = sweep_env [ "hotels.erd"; "bookings.erd"; "empty_rel.erd" ] in
  let diags =
    Analysis.Sweep.run (Analysis.Sweep.subject ~telemetry:false env)
  in
  let rendered = Analysis.Report.to_json diags in
  (* Priority order in the rendered report: High before Medium before
     Low before Info. *)
  let pos needle =
    let n = String.length needle and h = String.length rendered in
    let rec go i =
      if i + n > h then -1
      else if String.sub rendered i n = needle then i
      else go (i + 1)
    in
    go 0
  in
  let s001 = pos {|"code": "S001"|}
  and s006 = pos {|"code": "S006"|}
  and s002 = pos {|"code": "S002"|}
  and s010 = pos {|"code": "S010"|} in
  Alcotest.(check bool) "all four codes rendered" true
    (s001 >= 0 && s006 >= 0 && s002 >= 0 && s010 >= 0);
  Alcotest.(check bool) "High < Medium < Low < Info positions" true
    (s001 < s006 && s006 < s002 && s002 < s010);
  Alcotest.(check bool) "JSON carries the priority field" true
    (pos {|"priority": "High"|} >= 0)

(* Metrics the sweep itself records. *)
let test_sweep_metrics () =
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.reset ();
      Obs.Metrics.disable ())
    (fun () ->
      let env = sweep_env [ "hotels.erd"; "bookings.erd" ] in
      ignore (Analysis.Sweep.run (Analysis.Sweep.subject ~telemetry:false env));
      Alcotest.(check int) "analysis.sweep.runs" 1
        (Obs.Metrics.counter "analysis.sweep.runs");
      Alcotest.(check int) "analysis.sweep.relations" 2
        (Obs.Metrics.counter "analysis.sweep.relations");
      Alcotest.(check int) "analysis.sweep.tuples" 7
        (Obs.Metrics.counter "analysis.sweep.tuples");
      Alcotest.(check bool) "analysis.sweep.findings > 0" true
        (Obs.Metrics.counter "analysis.sweep.findings" > 0))

(* Clean generated workloads carry no Blocker/High pathologies: the
   generator keeps Ω mass ≥ its floor (no dormant evidence beyond Low),
   satisfies CWA, and never fabricates cross-relation references. *)
let sweep_clean_generated =
  prop "generated workload stores sweep without Blocker/High findings"
    seed_arb (fun seed ->
      let rng = R.create seed in
      let schema = G.schema "g" in
      let ga, gb = G.source_pair rng ~size:(1 + R.int rng 12) ~overlap:0.5 schema in
      let diags =
        Analysis.Sweep.run
          (Analysis.Sweep.subject ~telemetry:false
             [ ("ga", ga); ("gb", gb) ])
      in
      List.for_all
        (fun d ->
          match C.priority_for d.D.code with
          | Some p -> K.priority_rank p < K.priority_rank K.High
          | None -> false)
        diags)

let () =
  Alcotest.run "analysis"
    [ ( "check",
        [ Alcotest.test_case "diagnostic codes" `Quick test_check_codes;
          Alcotest.test_case "clean queries" `Quick test_check_clean;
          Alcotest.test_case "execution guard" `Quick test_guard;
          Alcotest.test_case "interval domain" `Quick test_intervals ] );
      ( "erd-lint",
        [ Alcotest.test_case "diagnostic codes" `Quick test_lint_codes;
          Alcotest.test_case "json rendering" `Quick test_json ] );
      ( "catalog",
        [ Alcotest.test_case "registry" `Quick test_catalog_registry;
          Alcotest.test_case "tsv/json export" `Quick test_catalog_export ] );
      ( "sweep",
        [ Alcotest.test_case "bad catalog fires" `Quick test_sweep_bad_catalog;
          Alcotest.test_case "clean env is quiet" `Quick test_sweep_clean_env;
          Alcotest.test_case "CWA violations" `Quick test_sweep_cwa;
          Alcotest.test_case "segment history" `Quick test_sweep_segments;
          Alcotest.test_case "κ telemetry" `Quick test_sweep_telemetry;
          Alcotest.test_case "report order" `Quick test_sweep_report_order;
          Alcotest.test_case "sweep metrics" `Quick test_sweep_metrics ] );
      ( "properties",
        [ lint_accepts_iff_loads; mutations_rejected_twice;
          static_empty_sound; sweep_clean_generated ] ) ]
