(* The static analyzer: plan checker (Analysis.Check), .erd linter
   (Analysis.Erd_lint) and the support-interval domain (Analysis.Interval).

   Three layers:
   - unit: each diagnostic code fires on a minimal trigger and stays
     silent on the clean sample;
   - agreement (qcheck): serialized generated relations lint clean and
     load; textually mutated corpora both lint dirty and fail to load —
     the linter and Erm.Io agree on validity in both directions;
   - soundness (qcheck): a plan the checker proves statically empty
     evaluates to the empty relation. *)

module R = Workload.Rng
module G = Workload.Gen
module D = Analysis.Diagnostic

let prop ?(count = 300) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

let seed_arb = QCheck.int_range 0 1_000_000

let sample =
  {|relation ra
key rname : string
attr street : string
attr bldg-no : int
attr speciality : evidence {am, ca, hu, it, mu, si, ta}
tuple garden | univ.ave. | 2011 | [si^0.5; hu^0.25; ~^0.25] | (1, 1)
tuple wok | wash.ave. | 600 | [si^1] | (1, 1)

relation rb
key rname : string
attr street : string
attr bldg-no : int
attr speciality : evidence {am, ca, hu, it, mu, si, ta}
tuple wok | wash.ave. | 600 | [si^0.5; ~^0.5] | (0.8, 1)

relation rc
key rname : string
attr city : string
tuple wok | sf | (1, 1)

relation hollow
key rname : string
attr street : string
|}

let env =
  List.map
    (fun r -> (Erm.Schema.name (Erm.Relation.schema r), r))
    (Erm.Io.relations_of_string sample)

let codes diags = List.map (fun d -> d.D.code) diags

let check q = Analysis.Check.check_string env q

let assert_code q code =
  let found = codes (check q) in
  Alcotest.(check bool)
    (Printf.sprintf "%s on %S (got %s)" code q (String.concat "," found))
    true (List.mem code found)

let assert_clean q =
  let diags = List.filter D.is_error (check q) in
  Alcotest.(check (list string))
    (Printf.sprintf "no errors on %S" q)
    [] (codes diags)

(* --- plan checker: one trigger per code ----------------------------- *)

let test_check_codes () =
  assert_code "SELECT" "Q000";
  assert_code "SELECT rname FROM nosuch" "Q001";
  assert_code "SELECT rname FROM ra WHERE bogus IS {am}" "Q002";
  assert_code "SELECT rname FROM ra WHERE street > bldg-no" "Q003";
  assert_code "SELECT rname FROM ra WHERE street = bldg-no" "Q004";
  assert_code "SELECT rname FROM ra WHERE speciality IS {zz}" "Q005";
  assert_code "SELECT rname FROM ra WHERE speciality IS {am, ca, hu, it, mu, si, ta}"
    "Q006";
  assert_code "SELECT rname FROM ra WITH SN > 0.5 AND SN < 0.2" "Q007";
  assert_code "SELECT street FROM ra" "Q008";
  assert_code "SELECT rname FROM ra WHERE street = bldg-no" "Q010";
  assert_code "ra JOIN (rb PREFIX r_) ON street = r_bldg-no" "Q011";
  assert_code "ra UNION rc" "Q012";
  assert_code "ra JOIN rb ON rname = rname" "Q013";
  assert_code "SELECT rname FROM ra WHERE speciality = [am^2]" "Q015";
  assert_code "SELECT rname FROM ra WITH SN > 1.5" "Q016";
  assert_code "SELECT rname FROM ra LIMIT 0" "Q017";
  assert_code "SELECT rname FROM hollow" "Q018"

let test_check_clean () =
  assert_clean "SELECT rname, speciality FROM ra WHERE speciality IS {si} WITH SN > 0.5";
  assert_clean "ra UNION rb";
  assert_clean "ra JOIN (rb PREFIX r_) ON rname = r_rname";
  assert_clean "SELECT rname FROM ra WHERE bldg-no > 500 ORDER BY SN DESC LIMIT 3"

(* Error-level findings gate execution; warnings do not. *)
let test_guard () =
  let errs = Analysis.Check.errors env in
  Alcotest.(check bool)
    "statically-empty IS is rejected" true
    (errs (Query.Parser.parse "SELECT rname FROM ra WHERE speciality IS {zz}")
    <> []);
  Alcotest.(check (list string))
    "clean query passes" []
    (errs (Query.Parser.parse "SELECT rname FROM ra"));
  Alcotest.(check bool) "physical refuses under guard" true
    (match
       Query.Physical.run ~guard:Analysis.Check.errors env
         "SELECT rname FROM ra WHERE speciality IS {zz}"
     with
    | _ -> false
    | exception Query.Physical.Rejected (_ :: _) -> true)

(* --- the interval domain -------------------------------------------- *)

let test_intervals () =
  let open Analysis.Interval in
  Alcotest.(check bool) "top is satisfiable" false (is_empty top);
  Alcotest.(check bool) "impossible is never positive" true
    (never_positive impossible);
  Alcotest.(check bool) "mul by impossible is never positive" true
    (never_positive (mul top impossible));
  Alcotest.(check bool) "disj keeps possibility" false
    (never_positive (disj impossible certain));
  Alcotest.(check bool) "neg certain is impossible" true
    (never_positive (neg certain));
  Alcotest.(check bool) "sn>0.5 && sn<0.2 infeasible" true
    (constrain_threshold
       Erm.Threshold.(sn_gt 0.5 &&& Cmp (Sn, Lt, 0.2))
       top
    = None);
  Alcotest.(check bool) "sn>0.5 feasible on top" true
    (constrain_threshold (Erm.Threshold.sn_gt 0.5) top <> None);
  Alcotest.(check bool) "sn>0.5 infeasible after select sp<=0.3" true
    (constrain_threshold (Erm.Threshold.sn_gt 0.5)
       (make ~sn_lo:0.0 ~sn_hi:0.3 ~sp_lo:0.0 ~sp_hi:0.3)
    = None)

(* --- linter: one trigger per code ----------------------------------- *)

let lint_codes s = codes (Analysis.Erd_lint.lint_string s)

let assert_lint s code =
  let found = lint_codes s in
  Alcotest.(check bool)
    (Printf.sprintf "%s (got %s)" code (String.concat "," found))
    true (List.mem code found)

let rel_wrap tuple_line =
  Printf.sprintf
    "relation r\nkey name : string\nattr rating : evidence {a, b}\n%s\n"
    tuple_line

let test_lint_codes () =
  assert_lint "tuple x | y | (1, 1)\n" "E001";
  assert_lint "relation r\nkey grade : evidence {a, b}\n" "E003";
  assert_lint "relation r\nkey n : string\nattr n : int\n" "E004";
  assert_lint "relation r\nkey n : decimal\n" "E005";
  assert_lint (rel_wrap "tuple x | [a^1]") "E006";
  assert_lint
    "relation r\nkey n : int\ntuple twelve | (1, 1)\n" "E007";
  assert_lint (rel_wrap "tuple x | [a^0.5 b^0.5] | (1, 1)") "E008";
  assert_lint (rel_wrap "tuple x | [a^0.7; b^0.5] | (1, 1)") "E009";
  assert_lint (rel_wrap "tuple x | [{}^0.5; a^0.5] | (1, 1)") "E010";
  assert_lint (rel_wrap "tuple x | [a^1.5; b^-0.5] | (1, 1)") "E011";
  assert_lint (rel_wrap "tuple x | [zz^1] | (1, 1)") "E012";
  assert_lint
    (rel_wrap "tuple x | [a^1] | (1, 1)\ntuple x | [b^1] | (1, 1)")
    "E013";
  assert_lint (rel_wrap "tuple x | [a^1] | (1 1)") "E014";
  assert_lint (rel_wrap "tuple x | [a^1] | (0.9, 0.4)") "E015";
  assert_lint (rel_wrap "tuple x | [a^1] | (0, 1)") "E016";
  assert_lint (rel_wrap "tuple x | [a^0; b^1] | (1, 1)") "E019";
  assert_lint (rel_wrap "tuple x | [a^0.5; a^0.5] | (1, 1)") "E020";
  Alcotest.(check (list string))
    "clean sample lints clean" [] (lint_codes sample);
  Alcotest.(check int) "error exit code" 2
    (Analysis.Report.exit_code (Analysis.Erd_lint.lint_string (rel_wrap "tuple x | [zz^1] | (1, 1)")));
  Alcotest.(check int) "clean exit code" 0
    (Analysis.Report.exit_code (Analysis.Erd_lint.lint_string sample))

let test_json () =
  let diags =
    Analysis.Erd_lint.lint_string ~file:"f.erd" (rel_wrap "tuple x | [zz^1] | (1, 1)")
  in
  let json = Analysis.Report.to_json diags in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "json mentions %s" needle)
        true
        (let n = String.length needle and h = String.length json in
         let rec go i =
           i + n <= h && (String.sub json i n = needle || go (i + 1))
         in
         go 0))
    [ "\"code\": \"E012\""; "\"severity\": \"error\""; "\"file\": \"f.erd\"" ];
  Alcotest.(check string) "empty list is []" "[]" (Analysis.Report.to_json [])

(* --- agreement: linter vs loader (qcheck) --------------------------- *)

let gen_relation seed =
  let rng = R.create seed in
  G.relation rng ~size:(1 + R.int rng 8) (G.schema "g")

let lint_accepts_iff_loads =
  prop "lint-clean serialized relations load" seed_arb (fun seed ->
      let text = Erm.Io.to_string (gen_relation seed) in
      let errors = List.filter D.is_error (Analysis.Erd_lint.lint_string text) in
      let loads =
        match Erm.Io.relations_of_string text with
        | _ -> true
        | exception _ -> false
      in
      errors = [] && loads)

(* Seeded textual corruptions, each violating one invariant the loader
   also enforces: duplicated key row, inverted membership pair, dropped
   field. Lint must go dirty and load must raise — on the same input. *)
let mutate seed text =
  let lines = String.split_on_char '\n' text in
  let tuples, rest =
    List.partition
      (fun l -> String.length l >= 6 && String.sub l 0 6 = "tuple ")
      lines
  in
  match tuples with
  | [] -> None
  | first :: _ ->
      let broken =
        match seed mod 3 with
        | 0 -> tuples @ [ first ]
        | 1 -> (
            match String.rindex_opt first '(' with
            | Some i -> (String.sub first 0 i ^ "(0.9, 0.4)") :: List.tl tuples
            | None -> tuples)
        | _ -> (
            match String.rindex_opt first '|' with
            | Some i -> String.sub first 0 i :: List.tl tuples
            | None -> tuples)
      in
      Some (String.concat "\n" (List.filter (fun l -> l <> "") rest @ broken))

let mutations_rejected_twice =
  prop "mutated corpora lint dirty and fail to load" seed_arb (fun seed ->
      match mutate seed (Erm.Io.to_string (gen_relation seed)) with
      | None -> true
      | Some text ->
          let lint_dirty =
            List.exists D.is_error (Analysis.Erd_lint.lint_string text)
          in
          let load_fails =
            match Erm.Io.relations_of_string text with
            | _ -> false
            | exception _ -> true
          in
          lint_dirty && load_fails)

(* --- soundness: statically empty ⇒ evaluates empty (qcheck) --------- *)

(* Queries with a taste for dead atoms: out-of-frame IS sets and
   contradictory thresholds alongside live ones. *)
let gen_dead_query rng =
  let dead_set = [ Dst.Value.string (Printf.sprintf "zz%d" (R.int rng 4)) ] in
  let live_set =
    List.init (1 + R.int rng 2) (fun _ ->
        Dst.Value.string (Printf.sprintf "v%d" (R.int rng 8)))
  in
  let atom () =
    match R.int rng 4 with
    | 0 -> Query.Ast.Is ("e0", dead_set)
    | 1 -> Query.Ast.Is ("e0", live_set)
    | 2 -> Query.Ast.Is ("e1", live_set)
    | _ ->
        Query.Ast.Cmp
          ( Erm.Predicate.Eq,
            Query.Ast.Attr "k",
            Query.Ast.Scalar (Dst.Value.string (Printf.sprintf "key%d" (R.int rng 6))) )
  in
  let pred =
    match R.int rng 4 with
    | 0 -> atom ()
    | 1 -> Query.Ast.And (atom (), atom ())
    | 2 -> Query.Ast.Or (atom (), atom ())
    | _ -> Query.Ast.Not (Query.Ast.True)
  in
  let threshold =
    match R.int rng 4 with
    | 0 -> Erm.Threshold.always
    | 1 -> Erm.Threshold.sn_gt (R.float rng 1.0)
    | 2 -> Erm.Threshold.(sn_gt 0.6 &&& Cmp (Sn, Lt, 0.2))
    | _ -> Erm.Threshold.sp_ge (R.float rng 1.0)
  in
  Query.Ast.Select
    { cols = None;
      from = Query.Ast.Rel (if R.bool rng then "ga" else "gb");
      where = pred;
      threshold }

let static_empty_sound =
  prop "statically-empty plans evaluate to the empty relation" seed_arb
    (fun seed ->
      let rng = R.create seed in
      let schema = G.schema "g" in
      let ga, gb = G.source_pair rng ~size:8 ~overlap:0.5 schema in
      let genv = [ ("ga", ga); ("gb", gb) ] in
      let q = gen_dead_query rng in
      let r = Analysis.Check.analyze genv q in
      if not r.Analysis.Check.empty then true
      else
        match Query.Eval.eval genv q with
        | rel -> Erm.Relation.is_empty rel
        | exception _ -> true)

let () =
  Alcotest.run "analysis"
    [ ( "check",
        [ Alcotest.test_case "diagnostic codes" `Quick test_check_codes;
          Alcotest.test_case "clean queries" `Quick test_check_clean;
          Alcotest.test_case "execution guard" `Quick test_guard;
          Alcotest.test_case "interval domain" `Quick test_intervals ] );
      ( "erd-lint",
        [ Alcotest.test_case "diagnostic codes" `Quick test_lint_codes;
          Alcotest.test_case "json rendering" `Quick test_json ] );
      ( "properties",
        [ lint_accepts_iff_loads; mutations_rejected_twice;
          static_empty_sound ] ) ]
