(* Crash-safety of the append-only evidence store.

   Two layers:

   - a deterministic fault matrix: every fault class the injector can
     produce (short write, torn write at a byte offset, bit flip,
     EIO/ENOSPC on write, EIO on fsync, rename failure) plus manual
     on-disk damage (tail garbage, truncation into the committed
     prefix, manifest corruption, version skew). Each case asserts the
     store either recovers prefix-consistently — bit-exact relation of
     a previously committed version, with the matching
     store.recovery.* metric incremented — or fails with a typed error
     (Store_error / Io.Fault). Never an uncaught exception, never a
     silently wrong relation.

   - a qcheck crash-recovery fuzz: build a random write history
     (create + up to 3 deltas), then truncate, bit-flip or append
     garbage to any file of the store at any offset. Reopening must
     either recover some committed version exactly or raise
     Store_error. QCHECK_SEED reproduces CI failures locally. *)

module R = Workload.Rng
module G = Workload.Gen
module S = Dst.Support
module Rec = Store.Recovery

(* --- exact relation equality (same discipline as test_conformance) --- *)

let exact_support s1 s2 =
  Float.equal (S.sn s1) (S.sn s2) && Float.equal (S.sp s1) (S.sp s2)

let exact_evidence e1 e2 =
  let f1 = Dst.Mass.F.focals e1 and f2 = Dst.Mass.F.focals e2 in
  List.length f1 = List.length f2
  && List.for_all2
       (fun (set1, m1) (set2, m2) ->
         Dst.Vset.equal set1 set2 && Float.equal m1 m2)
       f1 f2

let exact_cell c1 c2 =
  match (c1, c2) with
  | Erm.Etuple.Definite v1, Erm.Etuple.Definite v2 ->
      Dst.Value.compare v1 v2 = 0
  | Erm.Etuple.Evidence e1, Erm.Etuple.Evidence e2 -> exact_evidence e1 e2
  | Erm.Etuple.Definite _, Erm.Etuple.Evidence _
  | Erm.Etuple.Evidence _, Erm.Etuple.Definite _ ->
      false

let exact_tuple t1 t2 =
  List.compare Dst.Value.compare (Erm.Etuple.key t1) (Erm.Etuple.key t2) = 0
  && List.length (Erm.Etuple.cells t1) = List.length (Erm.Etuple.cells t2)
  && List.for_all2 exact_cell (Erm.Etuple.cells t1) (Erm.Etuple.cells t2)
  && exact_support (Erm.Etuple.tm t1) (Erm.Etuple.tm t2)

let exact_rel_equal r1 r2 =
  Erm.Relation.cardinal r1 = Erm.Relation.cardinal r2
  && List.for_all
       (fun t1 ->
         match Erm.Relation.find_opt r2 (Erm.Etuple.key t1) with
         | Some t2 -> exact_tuple t1 t2
         | None -> false)
       (Erm.Relation.tuples r1)

(* --- fixtures --------------------------------------------------------- *)

let schema = G.schema "st"
let rel seed ~size = G.relation (R.create seed) ~size schema

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "eridb_store_%d_%d" (Unix.getpid ()) (Random.int 100000))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun file -> Sys.remove (Filename.concat dir file))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let with_metrics f =
  Obs.Metrics.enable ();
  Obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.disable ();
      Obs.Metrics.reset ())
    f

let counter = Obs.Metrics.counter

let plan s =
  match Store.Io.plan_of_string s with Ok p -> p | Error m -> failwith m

let faulty seed spec = Store.Io.faulty ~seed ~plan:(plan spec) Store.Io.real

(* Classify an attempt: success, typed recovery error, typed i/o fault.
   Anything else propagates and fails the test — that is the point. *)
let attempt f =
  match f () with
  | v -> `Ok v
  | exception Rec.Store_error e -> `Err e
  | exception (Store.Io.Fault _ as e) ->
      `Fault (Option.value ~default:"fault" (Store.Io.fault_message e))

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let flip_byte path k =
  let b = Bytes.of_string (read_file path) in
  Bytes.set b k (Char.chr (Char.code (Bytes.get b k) lxor 1));
  write_file path (Bytes.to_string b)

let check_err name pred = function
  | `Err e ->
      Alcotest.(check bool)
        (name ^ ": " ^ Rec.error_to_string e)
        true (pred e)
  | `Ok _ -> Alcotest.fail (name ^ ": unexpected success")
  | `Fault m -> Alcotest.fail (name ^ ": i/o fault instead of error: " ^ m)

let check_fault name = function
  | `Fault _ -> ()
  | `Ok _ -> Alcotest.fail (name ^ ": unexpected success")
  | `Err e ->
      Alcotest.fail (name ^ ": store error instead of fault: "
                     ^ Rec.error_to_string e)

(* Reopen [dir] and assert it recovered exactly relation [expect] at
   [version], with store.recovery.opens counted. *)
let check_recovers ?(events = 0) name dir ~version ~expect =
  with_metrics (fun () ->
      let t, report = Store.Estore.open_store dir in
      Alcotest.(check int) (name ^ ": version") version (Store.Estore.version t);
      Alcotest.(check bool)
        (name ^ ": relation bit-exact")
        true
        (exact_rel_equal expect (Store.Estore.relation t));
      Alcotest.(check bool)
        (name ^ ": opens counted")
        true
        (counter "store.recovery.opens" >= 1);
      if events > 0 then
        Alcotest.(check int)
          (name ^ ": recovery events")
          events
          (List.length report.Rec.events))

(* --- round-trip and delta semantics ----------------------------------- *)

let test_roundtrip () =
  with_temp_dir (fun dir ->
      let r = rel 11 ~size:8 in
      let t = Store.Estore.create ~dir ~name:"base" r in
      Alcotest.(check int) "fresh version" 1 (Store.Estore.version t);
      check_recovers "roundtrip" dir ~version:1 ~expect:r)

let test_delta_equals_full_rebuild () =
  with_temp_dir (fun dir ->
      let r1 = rel 21 ~size:10 in
      let d = G.reobserve (R.create 22) r1 in
      let t = Store.Estore.create ~dir ~name:"m" r1 in
      let o = Store.Delta.apply t ~name:"d" d in
      let full =
        (Integration.Multi.integrate
           [ { Integration.Multi.source_name = "m"; source_relation = r1 };
             { Integration.Multi.source_name = "d"; source_relation = d } ])
          .Integration.Multi.integrated
      in
      Alcotest.(check bool)
        "delta fold = full rebuild (bit-exact)" true
        (exact_rel_equal full o.Store.Delta.relation);
      check_recovers "delta reopen" dir ~version:o.Store.Delta.version
        ~expect:full)

let test_empty_delta_is_noop () =
  with_temp_dir (fun dir ->
      let r = rel 31 ~size:4 in
      let t = Store.Estore.create ~dir ~name:"m" r in
      let empty = Erm.Relation.of_tuples schema [] in
      let o = Store.Delta.apply t ~name:"nothing" empty in
      Alcotest.(check int) "version unchanged" 1 o.Store.Delta.version;
      Alcotest.(check int) "no upserts" 0 o.Store.Delta.upserts;
      Alcotest.(check bool)
        "no second segment" false
        (Sys.file_exists (Filename.concat dir "000002.seg")))

(* --- injected fault matrix -------------------------------------------- *)

(* Shared shape: create v1, attempt a delta through a faulty Io, then
   reopen with the real Io and require v1 back, bit-exact. *)
let delta_under_fault ~spec ~seed dir =
  let r1 = rel 41 ~size:6 in
  let d = G.reobserve (R.create 42) r1 in
  let t = Store.Estore.create ~dir ~name:"m" r1 in
  ignore t;
  let outcome =
    attempt (fun () ->
        let tf, _ = Store.Estore.open_store ~io:(faulty seed spec) dir in
        Store.Delta.apply tf ~name:"d" d)
  in
  (r1, outcome)

let test_torn_write () =
  with_temp_dir (fun dir ->
      let r1, outcome = delta_under_fault ~spec:"segment:torn_at=40" ~seed:7 dir in
      check_err "torn write"
        (function Rec.Torn_tail _ -> true | _ -> false)
        outcome;
      (* The torn segment was never acknowledged: recovery drops it as a
         stray and v1 survives. *)
      check_recovers "after torn write" dir ~version:1 ~expect:r1 ~events:1)

let test_short_write () =
  with_temp_dir (fun dir ->
      let r1, outcome = delta_under_fault ~spec:"segment:short=1" ~seed:3 dir in
      check_err "short write"
        (function Rec.Torn_tail _ -> true | _ -> false)
        outcome;
      check_recovers "after short write" dir ~version:1 ~expect:r1 ~events:1)

let test_write_eio () =
  with_temp_dir (fun dir ->
      let r1, outcome = delta_under_fault ~spec:"segment:eio=1" ~seed:5 dir in
      check_fault "write EIO" outcome;
      (* EIO raises before any byte lands: nothing to clean up. *)
      check_recovers "after write EIO" dir ~version:1 ~expect:r1 ~events:0)

let test_write_enospc () =
  with_temp_dir (fun dir ->
      let r1, outcome = delta_under_fault ~spec:"segment:enospc=1" ~seed:5 dir in
      check_fault "write ENOSPC" outcome;
      (* ENOSPC leaves a prefix behind — recovery removes the stray. *)
      check_recovers "after ENOSPC" dir ~version:1 ~expect:r1 ~events:1)

let test_fsync_eio () =
  with_temp_dir (fun dir ->
      let r1, outcome = delta_under_fault ~spec:"segment:fsync_eio=1" ~seed:9 dir in
      check_fault "fsync EIO" outcome;
      check_recovers "after fsync EIO" dir ~version:1 ~expect:r1 ~events:1)

let test_manifest_rename_failure () =
  with_temp_dir (fun dir ->
      let r1, outcome = delta_under_fault ~spec:"manifest:rename=1" ~seed:13 dir in
      check_fault "manifest rename" outcome;
      (* Both the orphan segment and MANIFEST.tmp are strays. *)
      check_recovers "after rename failure" dir ~version:1 ~expect:r1
        ~events:2)

let test_create_under_rename_failure () =
  with_temp_dir (fun dir ->
      let r = rel 51 ~size:4 in
      let outcome =
        attempt (fun () ->
            Store.Estore.create
              ~io:(faulty 3 "manifest:rename=1")
              ~dir ~name:"m" r)
      in
      check_fault "create rename" outcome;
      (* The manifest never landed: there is no store to recover. *)
      check_err "reopen after failed create"
        (function Rec.No_store _ -> true | _ -> false)
        (attempt (fun () -> Store.Estore.open_store dir)))

(* --- manual on-disk damage -------------------------------------------- *)

let test_bit_flip_in_committed_data () =
  with_temp_dir (fun dir ->
      let r = rel 61 ~size:6 in
      ignore (Store.Estore.create ~dir ~name:"m" r);
      let seg = Filename.concat dir "000001.seg" in
      (* Inside a record payload: CRC catches it. *)
      flip_byte seg (String.length Store.Segment.header + 12);
      with_metrics (fun () ->
          check_err "flip in payload"
            (function Rec.Bad_checksum _ -> true | _ -> false)
            (attempt (fun () -> Store.Estore.open_store dir));
          Alcotest.(check bool)
            "errors counted" true
            (counter "store.recovery.errors" >= 1)))

let test_bit_flip_in_record_magic () =
  with_temp_dir (fun dir ->
      let r = rel 62 ~size:6 in
      ignore (Store.Estore.create ~dir ~name:"m" r);
      let seg = Filename.concat dir "000001.seg" in
      flip_byte seg (String.length Store.Segment.header);
      check_err "flip in record magic"
        (function Rec.Bad_magic _ -> true | _ -> false)
        (attempt (fun () -> Store.Estore.open_store dir)))

let test_tail_garbage_truncated () =
  with_temp_dir (fun dir ->
      let r = rel 63 ~size:6 in
      ignore (Store.Estore.create ~dir ~name:"m" r);
      let seg = Filename.concat dir "000001.seg" in
      write_file seg (read_file seg ^ "\xde\xad\xbe\xef");
      (* Garbage past the committed length is an interrupted append:
         recoverable by truncation, and counted as such. *)
      with_metrics (fun () ->
          let t, report = Store.Estore.open_store dir in
          Alcotest.(check bool)
            "tail truncated" true
            (List.exists
               (function Rec.Truncated_tail _ -> true | _ -> false)
               report.Rec.events);
          Alcotest.(check bool)
            "truncation counted" true
            (counter "store.recovery.truncated_tails" >= 1);
          Alcotest.(check bool)
            "relation intact" true
            (exact_rel_equal r (Store.Estore.relation t))))

let test_truncation_into_committed_prefix () =
  with_temp_dir (fun dir ->
      let r = rel 64 ~size:6 in
      ignore (Store.Estore.create ~dir ~name:"m" r);
      let seg = Filename.concat dir "000001.seg" in
      let content = read_file seg in
      write_file seg (String.sub content 0 (String.length content - 3));
      (* Committed bytes are gone: that is data loss, not a torn append —
         typed error, never a silent shorter relation. *)
      check_err "committed bytes lost"
        (function Rec.Torn_tail _ -> true | _ -> false)
        (attempt (fun () -> Store.Estore.open_store dir)))

let test_manifest_corruption_falls_back () =
  with_temp_dir (fun dir ->
      let r1 = rel 65 ~size:6 in
      let d = G.reobserve (R.create 66) r1 in
      let t = Store.Estore.create ~dir ~name:"m" r1 in
      ignore (Store.Delta.apply t ~name:"d" d);
      flip_byte (Filename.concat dir "MANIFEST") 3;
      (* MANIFEST.bak still holds v1; the v2 segment it does not list is
         removed as a stray. Fallback is loud: an event and a metric. *)
      with_metrics (fun () ->
          let t2, report = Store.Estore.open_store dir in
          Alcotest.(check int) "fell back to v1" 1 (Store.Estore.version t2);
          Alcotest.(check bool)
            "fallback event" true
            (List.exists
               (function Rec.Manifest_fallback -> true | _ -> false)
               report.Rec.events);
          Alcotest.(check bool)
            "fallback counted" true
            (counter "store.recovery.manifest_fallback" >= 1);
          Alcotest.(check bool)
            "v1 relation bit-exact" true
            (exact_rel_equal r1 (Store.Estore.relation t2))))

let test_version_skew_never_falls_back () =
  with_temp_dir (fun dir ->
      let r = rel 67 ~size:4 in
      ignore (Store.Estore.create ~dir ~name:"m" r);
      let mpath = Filename.concat dir "MANIFEST" in
      let content = read_file mpath in
      (* Rewrite the format line and re-sign with a valid CRC: the file
         is well-formed, just from the future. *)
      let body =
        match String.index_opt content '\n' with
        | Some i ->
            "eridb-store 99"
            ^ String.sub content i (String.length content - i)
        | None -> Alcotest.fail "manifest has no lines"
      in
      let body_no_crc =
        match String.rindex_opt (String.trim body) '\n' with
        | Some i -> String.sub body 0 (i + 1)
        | None -> Alcotest.fail "manifest has no crc line"
      in
      let signed =
        body_no_crc ^ "crc "
        ^ Store.Crc32.to_hex (Store.Crc32.digest body_no_crc)
        ^ "\n"
      in
      write_file mpath signed;
      check_err "future format"
        (function
          | Rec.Version_skew { found; _ } -> found = 99
          | _ -> false)
        (attempt (fun () -> Store.Estore.open_store dir)))

let test_open_missing_store () =
  check_err "missing directory"
    (function Rec.No_store _ -> true | _ -> false)
    (attempt (fun () -> Store.Estore.open_store "/nonexistent/eridb_store"))

let test_create_over_existing_store () =
  with_temp_dir (fun dir ->
      let r = rel 68 ~size:3 in
      ignore (Store.Estore.create ~dir ~name:"m" r);
      check_err "double create"
        (function Rec.Bad_manifest _ -> true | _ -> false)
        (attempt (fun () -> Store.Estore.create ~dir ~name:"m" r)))

(* --- qcheck crash-recovery fuzz --------------------------------------- *)

let fuzz_count = 150

let prop name arb law =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:fuzz_count arb law)

let seed_arb = QCheck.int_range 0 1_000_000

(* Build a random write history; return every committed (version,
   relation) pair, newest first. *)
let build_history dir seed =
  let rng = R.create (seed + 17) in
  let r0 = rel seed ~size:5 in
  let t = Store.Estore.create ~dir ~name:"fuzz" r0 in
  let hist = ref [ (1, Store.Estore.relation t) ] in
  for i = 1 to R.int rng 4 do
    let d = G.reobserve (R.create (seed + (i * 101))) (Store.Estore.relation t) in
    let o = Store.Delta.apply t ~name:(Printf.sprintf "d%d" i) d in
    hist := (o.Store.Delta.version, o.Store.Delta.relation) :: !hist
  done;
  !hist

(* Damage one file of the store at a random offset: truncate, flip one
   bit, or append garbage. *)
let corrupt rng dir =
  let files = List.sort compare (Array.to_list (Sys.readdir dir)) in
  let file = List.nth files (R.int rng (List.length files)) in
  let path = Filename.concat dir file in
  let content = read_file path in
  let n = String.length content in
  match R.int rng 3 with
  | 0 -> write_file path (String.sub content 0 (R.int rng (n + 1)))
  | 1 when n > 0 ->
      let k = R.int rng n in
      let b = Bytes.of_string content in
      Bytes.set b k
        (Char.chr (Char.code (Bytes.get b k) lxor (1 lsl R.int rng 8)));
      write_file path (Bytes.to_string b)
  | _ ->
      write_file path
        (content
        ^ String.init
            (1 + R.int rng 16)
            (fun _ -> Char.chr (R.int rng 256)))

let fuzz_props =
  [ prop "any single corruption: recover a committed version or fail typed"
      seed_arb
      (fun seed ->
        with_temp_dir (fun dir ->
            let hist = build_history dir seed in
            corrupt (R.create (seed + 31)) dir;
            match
              attempt (fun () -> Store.Estore.open_store dir)
            with
            | `Ok (t, _) -> (
                (* Prefix consistency: whatever survives must be some
                   version that was actually committed, bit for bit. *)
                match List.assoc_opt (Store.Estore.version t) hist with
                | Some r -> exact_rel_equal r (Store.Estore.relation t)
                | None -> false)
            | `Err _ -> true
            | `Fault _ -> false));
    prop "delta after recovery = full rebuild (bit-exact)" seed_arb
      (fun seed ->
        with_temp_dir (fun dir ->
            let r1 = rel seed ~size:6 in
            let d1 = G.reobserve (R.create (seed + 1)) r1 in
            let d2 = G.reobserve (R.create (seed + 2)) r1 in
            let t = Store.Estore.create ~dir ~name:"m" r1 in
            ignore (Store.Delta.apply t ~name:"d1" d1);
            (* Tear the next append, recover, then retry it. *)
            (match
               attempt (fun () ->
                   let tf, _ =
                     Store.Estore.open_store
                       ~io:(faulty seed "segment:torn_at=23")
                       dir
                   in
                   Store.Delta.apply tf ~name:"d2" d2)
             with
            | `Err _ | `Fault _ | `Ok _ -> ());
            let t2, _ = Store.Estore.open_store dir in
            let o = Store.Delta.apply t2 ~name:"d2" d2 in
            let full =
              (Integration.Multi.integrate
                 [ { Integration.Multi.source_name = "m";
                     source_relation = r1 };
                   { Integration.Multi.source_name = "d1";
                     source_relation = d1 };
                   { Integration.Multi.source_name = "d2";
                     source_relation = d2 } ])
                .Integration.Multi.integrated
            in
            exact_rel_equal full o.Store.Delta.relation)) ]

let () =
  Random.self_init ();
  Alcotest.run "store"
    [ ("roundtrip",
       [ Alcotest.test_case "create/open round-trip" `Quick test_roundtrip;
         Alcotest.test_case "delta = full rebuild" `Quick
           test_delta_equals_full_rebuild;
         Alcotest.test_case "empty delta is a no-op" `Quick
           test_empty_delta_is_noop ]);
      ("fault-matrix",
       [ Alcotest.test_case "torn segment write" `Quick test_torn_write;
         Alcotest.test_case "short segment write" `Quick test_short_write;
         Alcotest.test_case "EIO on segment write" `Quick test_write_eio;
         Alcotest.test_case "ENOSPC on segment write" `Quick
           test_write_enospc;
         Alcotest.test_case "EIO on fsync" `Quick test_fsync_eio;
         Alcotest.test_case "manifest rename failure" `Quick
           test_manifest_rename_failure;
         Alcotest.test_case "rename failure during create" `Quick
           test_create_under_rename_failure ]);
      ("on-disk damage",
       [ Alcotest.test_case "bit flip in committed payload" `Quick
           test_bit_flip_in_committed_data;
         Alcotest.test_case "bit flip in record magic" `Quick
           test_bit_flip_in_record_magic;
         Alcotest.test_case "tail garbage is truncated" `Quick
           test_tail_garbage_truncated;
         Alcotest.test_case "truncation into committed prefix" `Quick
           test_truncation_into_committed_prefix;
         Alcotest.test_case "manifest corruption falls back" `Quick
           test_manifest_corruption_falls_back;
         Alcotest.test_case "version skew never falls back" `Quick
           test_version_skew_never_falls_back;
         Alcotest.test_case "open a missing store" `Quick
           test_open_missing_store;
         Alcotest.test_case "create over an existing store" `Quick
           test_create_over_existing_store ]);
      ("fuzz", fuzz_props) ]
