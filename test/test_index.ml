(* Unit tests for secondary indexes and the machinery the physical
   planner builds on them: duplicate indexed values, empty relations,
   Not_definite on evidential attributes, snapshot staleness after
   Relation.replace (both at the Index level and through the Physical
   execution context), and the Dempster memo-cache. *)

module M = Dst.Mass.F
module V = Dst.Value

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- fixture -------------------------------------------------------- *)

let rating_dom = Dst.Domain.of_strings "rating" [ "avg"; "ex"; "gd" ]

let schema =
  Erm.Schema.make ~name:"r"
    ~key:[ Erm.Attr.definite "k" "string" ]
    ~nonkey:
      [ Erm.Attr.definite "city" "string";
        Erm.Attr.evidential "rating" rating_dom ]

let tup k city rating_atom ~sn ~sp =
  Erm.Etuple.make schema
    ~key:[ V.string k ]
    ~cells:
      [ Erm.Etuple.Definite (V.string city);
        Erm.Etuple.Evidence
          (M.certain_set rating_dom (Dst.Vset.singleton (V.string rating_atom)))
      ]
    ~tm:(Dst.Support.make ~sn ~sp)

let r =
  Erm.Relation.of_tuples schema
    [ tup "ashiana" "sf" "ex" ~sn:1.0 ~sp:1.0;
      tup "country" "sf" "gd" ~sn:0.8 ~sp:1.0;
      tup "garden" "la" "ex" ~sn:1.0 ~sp:1.0;
      tup "mehl" "ny" "avg" ~sn:0.5 ~sp:0.5 ]

(* --- index ---------------------------------------------------------- *)

let index_tests =
  [ Alcotest.test_case "duplicate indexed values bucket together" `Quick
      (fun () ->
        let idx = Erm.Index.build r "city" in
        check_int "distinct cities" 3 (Erm.Index.distinct_values idx);
        let keys = Erm.Index.lookup idx (V.string "sf") in
        check_int "sf bucket" 2 (List.length keys);
        (* key order, like Relation.tuples *)
        check "bucket in key order" true
          (keys = [ [ V.string "ashiana" ] ; [ V.string "country" ] ]));
    Alcotest.test_case "lookup miss is empty, not an error" `Quick (fun () ->
        let idx = Erm.Index.build r "city" in
        check_int "no tokyo" 0 (List.length (Erm.Index.lookup idx (V.string "tokyo")));
        check "select_eq miss" true
          (Erm.Relation.is_empty (Erm.Index.select_eq idx r (V.string "tokyo"))));
    Alcotest.test_case "select_eq = select on equality" `Quick (fun () ->
        let idx = Erm.Index.build r "city" in
        let naive =
          Erm.Ops.select
            (Erm.Predicate.theta Erm.Predicate.Eq
               (Erm.Predicate.Field "city")
               (Erm.Predicate.Const (Erm.Etuple.Definite (V.string "sf"))))
            r
        in
        check "same relation" true
          (Erm.Relation.equal naive (Erm.Index.select_eq idx r (V.string "sf"))));
    Alcotest.test_case "empty relation indexes fine" `Quick (fun () ->
        let empty = Erm.Relation.empty schema in
        let idx = Erm.Index.build empty "city" in
        check_int "no values" 0 (Erm.Index.distinct_values idx);
        check "empty probe" true
          (Erm.Relation.is_empty
             (Erm.Index.select_eq idx empty (V.string "sf"))));
    Alcotest.test_case "key attributes are indexable" `Quick (fun () ->
        let idx = Erm.Index.build r "k" in
        check_int "one bucket per tuple" 4 (Erm.Index.distinct_values idx);
        check_int "singleton bucket" 1
          (List.length (Erm.Index.lookup idx (V.string "mehl"))));
    Alcotest.test_case "Not_definite on evidential attributes" `Quick
      (fun () ->
        Alcotest.check_raises "build" (Erm.Index.Not_definite "rating")
          (fun () -> ignore (Erm.Index.build r "rating")));
    Alcotest.test_case "join_indexed refuses evidential join attrs" `Quick
      (fun () ->
        let b = Erm.Ops.rename_attrs (fun n -> "r_" ^ n) r in
        Alcotest.check_raises "join" (Erm.Index.Not_definite "rating")
          (fun () ->
            ignore
              (Erm.Ops.join_indexed ~left_attr:"rating" ~right_attr:"r_rating"
                 r b)));
    Alcotest.test_case "index is a snapshot: stale after replace" `Quick
      (fun () ->
        let idx = Erm.Index.build r "city" in
        let r' = Erm.Relation.replace r (tup "ashiana" "la" "ex" ~sn:1.0 ~sp:1.0) in
        (* the old snapshot still files ashiana under sf … *)
        check_int "stale bucket" 2
          (List.length (Erm.Index.lookup idx (V.string "sf")));
        (* … a rebuild sees the move. *)
        let idx' = Erm.Index.build r' "city" in
        check_int "fresh sf" 1 (List.length (Erm.Index.lookup idx' (V.string "sf")));
        check_int "fresh la" 2 (List.length (Erm.Index.lookup idx' (V.string "la")))) ]

(* --- physical execution context ------------------------------------- *)

let probe_query =
  Query.Ast.Select
    { cols = Some [ "k" ];
      from = Query.Ast.Rel "r";
      where =
        Query.Ast.Cmp
          (Erm.Predicate.Eq, Query.Ast.Attr "city",
           Query.Ast.Scalar (V.string "sf"));
      threshold = Erm.Threshold.always }

let ctx_tests =
  [ Alcotest.test_case "probe plan is chosen" `Quick (fun () ->
        match Query.Physical.plan [ ("r", r) ] probe_query with
        | Query.Physical.Scan
            { access = Query.Physical.Index_eq { attr = "city"; _ }; _ } ->
            ()
        | p -> Alcotest.failf "expected index scan, got %s" (Query.Physical.to_string p));
    Alcotest.test_case "ctx never serves a stale index after replace" `Quick
      (fun () ->
        let ctx = Query.Physical.create_ctx () in
        let run env =
          Erm.Relation.cardinal (Query.Physical.eval_fast ~ctx env probe_query)
        in
        check_int "before" 2 (run [ ("r", r) ]);
        (* same name, updated relation: the cached index must not answer *)
        let r' =
          Erm.Relation.replace r (tup "ashiana" "la" "ex" ~sn:1.0 ~sp:1.0)
        in
        check_int "after replace" 1 (run [ ("r", r') ]);
        (* and the original binding still answers as before *)
        check_int "back to original" 2 (run [ ("r", r) ])) ]

(* --- dempster memo-cache -------------------------------------------- *)

let ev atoms =
  M.make rating_dom
    (List.map
       (fun (a, w) -> (Dst.Vset.singleton (V.string a), w))
       atoms)

let cache_tests =
  [ Alcotest.test_case "cached combine equals plain combine" `Quick
      (fun () ->
        let c = Dst.Combine_cache.create () in
        let a = ev [ ("ex", 0.6); ("gd", 0.4) ]
        and b = ev [ ("ex", 0.7); ("avg", 0.3) ] in
        check "equal" true
          (M.equal (M.combine a b) (Dst.Combine_cache.combine c a b));
        check_int "one miss" 1 (Dst.Combine_cache.misses c);
        ignore (Dst.Combine_cache.combine c a b);
        check_int "then a hit" 1 (Dst.Combine_cache.hits c));
    Alcotest.test_case "cache key is order-canonical" `Quick (fun () ->
        let c = Dst.Combine_cache.create () in
        let a = ev [ ("ex", 0.6); ("gd", 0.4) ]
        and b = ev [ ("ex", 0.7); ("avg", 0.3) ] in
        ignore (Dst.Combine_cache.combine c a b);
        (* commutativity: the swapped pair is the same entry *)
        ignore (Dst.Combine_cache.combine c b a);
        check_int "hit on swap" 1 (Dst.Combine_cache.hits c);
        check_int "single entry" 1 (Dst.Combine_cache.size c));
    Alcotest.test_case "total conflict is cached too" `Quick (fun () ->
        let c = Dst.Combine_cache.create () in
        let a = ev [ ("ex", 1.0) ] and b = ev [ ("avg", 1.0) ] in
        let boom () =
          Alcotest.check_raises "kappa = 1" M.Total_conflict (fun () ->
              ignore (Dst.Combine_cache.combine c a b))
        in
        boom ();
        boom ();
        check_int "second raise from cache" 1 (Dst.Combine_cache.hits c)) ]

let () =
  Alcotest.run "index"
    [ ("index", index_tests); ("ctx", ctx_tests); ("cache", cache_tests) ]
