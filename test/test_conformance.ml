(* Differential conformance harness: the execution surfaces must
   agree EXACTLY — same tuples, same evidence, bit-identical (sn, sp)
   supports — on randomly generated workloads:

   - the naive evaluator (Query.Eval), the reference semantics;
   - the physical planner (Query.Physical), with tracing off and on and
     with provenance recording on — observability must have no observer
     effect;
   - the sharded engine (Exec.Engine behind Query.Physical.Sharded),
     for every tested shard count × worker (domain) count, including
     with tracing or provenance recording live — partitioning and
     parallelism must have no representational effect either (the
     per-shard fast paths run Dst.Flat_mass kernels);
   - the single-source integration surface (Integration.Multi), which
     must be the identity on any query result;
   - the persistent store's delta path (Store.Estore + Store.Delta):
     creating a store from the integration of a source prefix, folding
     the remaining source in as an on-disk delta, and reopening the
     store through recovery must reproduce Integration.Multi.integrate
     over all sources — persistence, incremental absorption and crash
     recovery together must have no representational effect.

   Equality here is stricter than Erm.Relation.equal: supports and
   masses are compared with Float.equal, not a tolerance. A double IS a
   dyadic rational, so bit-exact float comparison is exact-rational
   comparison of the values both pipelines actually computed — any
   reordering of Dempster combinations that changes even the last ulp
   is a divergence, and tolerance would mask it.

   Seeds: qcheck honours QCHECK_SEED, which CI pins, so a divergence
   found there reproduces locally with the same seed. *)

module R = Workload.Rng
module Q = Workload.Qgen
module G = Workload.Gen
module S = Dst.Support

let count = 250

let prop name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

let seed_arb = QCheck.int_range 0 1_000_000

(* --- exact relation equality ----------------------------------------- *)

let exact_support s1 s2 =
  Float.equal (S.sn s1) (S.sn s2) && Float.equal (S.sp s1) (S.sp s2)

let exact_evidence e1 e2 =
  let f1 = Dst.Mass.F.focals e1 and f2 = Dst.Mass.F.focals e2 in
  List.length f1 = List.length f2
  && List.for_all2
       (fun (set1, m1) (set2, m2) ->
         Dst.Vset.equal set1 set2 && Float.equal m1 m2)
       f1 f2

let exact_cell c1 c2 =
  match (c1, c2) with
  | Erm.Etuple.Definite v1, Erm.Etuple.Definite v2 ->
      Dst.Value.compare v1 v2 = 0
  | Erm.Etuple.Evidence e1, Erm.Etuple.Evidence e2 -> exact_evidence e1 e2
  | Erm.Etuple.Definite _, Erm.Etuple.Evidence _
  | Erm.Etuple.Evidence _, Erm.Etuple.Definite _ ->
      false

let exact_tuple t1 t2 =
  List.compare Dst.Value.compare (Erm.Etuple.key t1) (Erm.Etuple.key t2) = 0
  && List.length (Erm.Etuple.cells t1) = List.length (Erm.Etuple.cells t2)
  && List.for_all2 exact_cell (Erm.Etuple.cells t1) (Erm.Etuple.cells t2)
  && exact_support (Erm.Etuple.tm t1) (Erm.Etuple.tm t2)

let exact_rel_equal r1 r2 =
  Erm.Relation.cardinal r1 = Erm.Relation.cardinal r2
  && List.for_all
       (fun t1 ->
         match Erm.Relation.find_opt r2 (Erm.Etuple.key t1) with
         | Some t2 -> exact_tuple t1 t2
         | None -> false)
       (Erm.Relation.tuples r1)

(* --- shared fixtures ------------------------------------------------- *)

(* One execution context across all cases: the index cache sees a stream
   of distinct relations under the same names, so staleness bugs break
   conformance immediately (same construction as test_plan_equiv). *)
let ctx = Query.Physical.create_ctx ()

let () = Exec.Engine.install ()

(* CI's obs job sets ERIDB_OBS=1: the whole grid then runs with the
   default metrics registry, tracer and flight recorder live, proving
   recording has no representational effect at any shard × worker
   point. Virtual clocks keep the ambient recording deterministic. *)
let () =
  match Sys.getenv_opt "ERIDB_OBS" with
  | Some ("1" | "true" | "on") ->
      Obs.Metrics.enable ();
      Obs.Trace.set_clock Obs.Trace.default (Obs.Clock.simulated ());
      Obs.Trace.enable Obs.Trace.default;
      Obs.Log.set_clock (Obs.Clock.simulated ());
      Obs.Log.enable ()
  | Some _ | None -> ()

(* The sharded grid: every shard count × worker count combination the
   issue pins, plus whatever ERIDB_DOMAINS the environment supplies
   (CI's sharded job sets it), so the same binary sweeps a larger grid
   there without a rebuild. *)
let shard_counts = [ 1; 3; 8 ]

let domain_counts =
  let pinned = [ 1; 2; 4 ] in
  match Sys.getenv_opt "ERIDB_DOMAINS" with
  | None -> pinned
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 && not (List.mem n pinned) -> pinned @ [ n ]
      | _ -> pinned)

let sharded_grid ~ctx env q check =
  List.for_all
    (fun shards ->
      List.for_all
        (fun domains ->
          check
            (Query.Physical.eval_fast ~ctx
               ~strategy:(Query.Physical.Sharded { shards; domains })
               env q))
        domain_counts)
    shard_counts

let make_case seed =
  let env = Q.env (R.create seed) () in
  let q = Q.query (R.create (seed + 7919)) env in
  (env, q)

(* A fresh private tracer would not exercise the compiled-in guards —
   the observer-effect test must flip the DEFAULT tracer the hot paths
   consult, and restore it whatever happens. *)
let with_default_tracing f =
  (* Restore, don't force off: under ERIDB_OBS the ambient tracer must
     stay live for the legs that run after this one. *)
  let was_live = Obs.Trace.on () in
  Obs.Trace.clear Obs.Trace.default;
  Obs.Trace.enable Obs.Trace.default;
  Fun.protect
    ~finally:(fun () ->
      if not was_live then Obs.Trace.disable Obs.Trace.default;
      Obs.Trace.clear Obs.Trace.default)
    f

(* Same discipline for the lineage arena: the provenance legs must flip
   the default store the recording hooks consult. *)
let with_default_provenance f =
  Obs.Provenance.reset ();
  Obs.Provenance.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Provenance.disable ();
      Obs.Provenance.reset ())
    f

(* The store leg needs real files: each case builds, deltas and reopens
   a store in a throwaway directory. *)
let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "eridb_conf_%d_%d" (Unix.getpid ()) (Random.int 100000))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun file -> Sys.remove (Filename.concat dir file))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let store_schema = G.schema "conf_store"

(* Persist a two-source integration incrementally — create from the
   first source, fold the second in as an on-disk delta, reopen through
   recovery — and return what the store then holds. *)
let via_store dir r1 d =
  let t = Store.Estore.create ~dir ~name:"m" r1 in
  ignore (Store.Delta.apply t ~name:"d" d);
  let t2, _ = Store.Estore.open_store dir in
  Store.Estore.relation t2

let store_case s =
  let r1 = G.relation (R.create s) ~size:8 store_schema in
  let d = G.reobserve (R.create (s + 104729)) r1 in
  let sources =
    [ { Integration.Multi.source_name = "m"; source_relation = r1 };
      { Integration.Multi.source_name = "d"; source_relation = d } ]
  in
  (r1, d, sources)

(* --- properties ------------------------------------------------------ *)

let conformance_props =
  [ prop "physical = naive (exact tuples, exact supports)" seed_arb (fun s ->
        let env, q = make_case s in
        exact_rel_equal
          (Query.Eval.eval env q)
          (Query.Physical.eval_fast ~ctx env q));
    prop "tracing never changes a physical result" seed_arb (fun s ->
        let env, q = make_case s in
        let plain = Query.Physical.eval_fast ~ctx env q in
        let traced =
          with_default_tracing (fun () -> Query.Physical.eval_fast ~ctx env q)
        in
        exact_rel_equal plain traced);
    prop "traced physical = naive (no observer effect vs reference)"
      seed_arb
      (fun s ->
        let env, q = make_case s in
        let naive = Query.Eval.eval env q in
        let traced =
          with_default_tracing (fun () -> Query.Physical.eval_fast ~ctx env q)
        in
        exact_rel_equal naive traced);
    prop "provenance never changes a physical result" seed_arb (fun s ->
        let env, q = make_case s in
        let plain = Query.Physical.eval_fast ~ctx env q in
        let recorded =
          with_default_provenance (fun () ->
            Query.Physical.eval_fast ~ctx env q)
        in
        exact_rel_equal plain recorded);
    prop "provenance-on physical = naive (no observer effect vs reference)"
      seed_arb
      (fun s ->
        let env, q = make_case s in
        let naive = Query.Eval.eval env q in
        let recorded =
          with_default_provenance (fun () ->
            Query.Physical.eval_fast ~ctx env q)
        in
        exact_rel_equal naive recorded);
    prop "sharded = naive for every shard count x domain count" seed_arb
      (fun s ->
        let env, q = make_case s in
        let naive = Query.Eval.eval env q in
        sharded_grid ~ctx env q (exact_rel_equal naive));
    prop "sharded under tracing = naive (no observer effect)" seed_arb
      (fun s ->
        let env, q = make_case s in
        let naive = Query.Eval.eval env q in
        with_default_tracing (fun () ->
            sharded_grid ~ctx env q (exact_rel_equal naive)));
    prop "sharded under provenance = naive (no observer effect)" seed_arb
      (fun s ->
        let env, q = make_case s in
        let naive = Query.Eval.eval env q in
        with_default_provenance (fun () ->
            sharded_grid ~ctx env q (exact_rel_equal naive)));
    prop "single-source integration is the identity on query results"
      seed_arb
      (fun s ->
        let env, q = make_case s in
        let r = Query.Eval.eval env q in
        let report =
          Integration.Multi.integrate
            [ { Integration.Multi.source_name = "only"; source_relation = r } ]
        in
        exact_rel_equal r report.Integration.Multi.integrated);
    prop "store delta + recovery = integrate (sharded grid)" seed_arb
      (fun s ->
        let r1, d, sources = store_case s in
        let stored = with_temp_dir (fun dir -> via_store dir r1 d) in
        exact_rel_equal stored
          (Integration.Multi.integrate sources).Integration.Multi.integrated
        && List.for_all
             (fun shards ->
               List.for_all
                 (fun domains ->
                   exact_rel_equal stored
                     (Exec.Engine.integrate
                        { Query.Physical.shards; domains }
                        sources)
                       .Integration.Multi.integrated)
                 domain_counts)
             shard_counts);
    prop "store delta under provenance = integrate (no observer effect)"
      seed_arb
      (fun s ->
        let r1, d, sources = store_case s in
        let plain =
          (Integration.Multi.integrate sources).Integration.Multi.integrated
        in
        let stored =
          with_default_provenance (fun () ->
              with_temp_dir (fun dir -> via_store dir r1 d))
        in
        exact_rel_equal plain stored) ]

(* --- leg 7: rule-parameterized conformance --------------------------- *)

(* The combination rule is a session-global strategy: under EVERY rule
   (and under an escalation policy) naive, physical and sharded
   execution must still agree bit-exactly, shard count x domain count
   across the same grid. The fast paths dispatch to per-rule flat
   kernels, so this leg is what licenses them. *)

let rule_policies =
  List.map Dst.Rule.make
    (Dst.Rule.all @ [ Dst.Rule.discount_then_combine 0.9 ])
  @ [ Dst.Rule.make
        ~escalation:
          (Dst.Rule.escalate ~kappa0:0.6
             (Dst.Rule.Fallback Dst.Rule.Averaging))
        Dst.Rule.Dempster ]

(* The policy sweep multiplies the grid, so these run at a lower count;
   QCHECK_SEED still pins the cases. *)
let rule_prop name law =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:40 seed_arb law)

let rule_props =
  [ rule_prop "every rule: physical = naive and sharded = naive (grid)"
      (fun s ->
        let env, q = make_case s in
        List.for_all
          (fun policy ->
            Dst.Rule.with_policy policy (fun () ->
                let naive = Query.Eval.eval env q in
                exact_rel_equal naive (Query.Physical.eval_fast ~ctx env q)
                && sharded_grid ~ctx env q (exact_rel_equal naive)))
          rule_policies);
    rule_prop "every rule: sharded integrate = naive integrate (grid)"
      (fun s ->
        let _, _, sources = store_case s in
        List.for_all
          (fun policy ->
            Dst.Rule.with_policy policy (fun () ->
                let naive =
                  (Integration.Multi.integrate sources)
                    .Integration.Multi.integrated
                in
                List.for_all
                  (fun shards ->
                    List.for_all
                      (fun domains ->
                        exact_rel_equal naive
                          (Exec.Engine.integrate
                             { Query.Physical.shards; domains }
                             sources)
                            .Integration.Multi.integrated)
                      domain_counts)
                  shard_counts))
          rule_policies) ]

let () =
  Alcotest.run "conformance"
    [ ("surfaces", conformance_props); ("rules", rule_props) ]
