(* Query language: lexer tokens, parser ASTs and error reporting,
   evaluation against the paper data (checked against direct operator
   calls), and the optimizer's rewrites and soundness. *)

module L = Query.Lexer
module Ast = Query.Ast
module T = Erm.Threshold

let env = [ ("ra", Paperdata.r_a); ("rb", Paperdata.r_b) ]

let rel_eq what expected actual =
  Alcotest.(check bool) what true (Erm.Relation.equal expected actual)

(* --- Lexer ---------------------------------------------------------- *)

let token = Alcotest.testable (fun ppf t ->
    Format.pp_print_string ppf (L.token_to_string t))
    (fun a b -> a = b)

let test_lexer_basics () =
  Alcotest.(check (list token))
    "keywords and symbols"
    [ L.SELECT; L.STAR; L.FROM; L.IDENT "ra"; L.WHERE; L.IDENT "x"; L.IS;
      L.LBRACE; L.IDENT "si"; L.COMMA; L.IDENT "hu"; L.RBRACE; L.WITH; L.SN;
      L.GT; L.FLOAT 0.5 ]
    (L.tokenize "SELECT * FROM ra WHERE x IS {si, hu} WITH SN > 0.5");
  Alcotest.(check (list token))
    "keywords are case-insensitive"
    [ L.SELECT; L.FROM; L.UNION; L.JOIN ]
    (L.tokenize "select FROM Union jOiN");
  Alcotest.(check (list token))
    "comparison operators"
    [ L.EQ; L.NE; L.LT; L.LE; L.GT; L.GE ]
    (L.tokenize "= <> < <= > >=");
  Alcotest.(check (list token))
    "numbers and strings"
    [ L.INT 42; L.FLOAT 1.5; L.INT (-7); L.STRING "hi there" ]
    (L.tokenize "42 1.5 -7 \"hi there\"");
  Alcotest.(check (list token))
    "evidence literal is one token"
    [ L.IDENT "x"; L.EQ; L.EVIDENCE "[si^0.5; ~^0.5]" ]
    (L.tokenize "x = [si^0.5; ~^0.5]");
  Alcotest.(check (list token))
    "identifiers may contain dashes and dots"
    [ L.IDENT "best-dish"; L.IDENT "univ.ave." ]
    (L.tokenize "best-dish univ.ave.")

let test_lexer_errors () =
  let lex_error input =
    Alcotest.(check bool)
      ("rejects " ^ input)
      true
      (match L.tokenize input with
      | _ -> false
      | exception L.Lex_error _ -> true)
  in
  lex_error "\"unterminated";
  lex_error "[unterminated evidence";
  lex_error "§"

(* --- Parser --------------------------------------------------------- *)

let parses input =
  match Query.Parser.parse input with
  | q -> q
  | exception Query.Parser.Parse_error m ->
      Alcotest.failf "should parse %s: %s" input m

let test_parser_shapes () =
  (match parses "ra" with
  | Ast.Rel "ra" -> ()
  | q -> Alcotest.failf "bare relation: %s" (Ast.to_string q));
  (match parses "ra UNION rb" with
  | Ast.Union (Ast.Rel "ra", Ast.Rel "rb") -> ()
  | q -> Alcotest.failf "union: %s" (Ast.to_string q));
  (match parses "SELECT a, b FROM ra" with
  | Ast.Select { cols = Some [ "a"; "b" ]; from = Ast.Rel "ra";
                 where = Ast.True; threshold = T.Always } -> ()
  | q -> Alcotest.failf "select: %s" (Ast.to_string q));
  (match parses "SELECT * FROM ra WHERE x IS {a} WITH SN > 0.5 AND SP <= 0.9" with
  | Ast.Select { cols = None; where = Ast.Is ("x", [ _ ]);
                 threshold = T.Both (T.Cmp (T.Sn, T.Gt, _), T.Cmp (T.Sp, T.Le, _));
                 _ } -> ()
  | q -> Alcotest.failf "threshold: %s" (Ast.to_string q));
  (match parses "ra JOIN rb ON a = b" with
  | Ast.Join { on = Ast.Cmp (Erm.Predicate.Eq, Ast.Attr "a", Ast.Attr "b"); _ }
    -> ()
  | q -> Alcotest.failf "join: %s" (Ast.to_string q));
  (match parses "ra TIMES rb" with
  | Ast.Product (Ast.Rel "ra", Ast.Rel "rb") -> ()
  | q -> Alcotest.failf "product: %s" (Ast.to_string q));
  (match parses "SELECT * FROM (ra UNION rb)" with
  | Ast.Select { from = Ast.Union _; _ } -> ()
  | q -> Alcotest.failf "parenthesized: %s" (Ast.to_string q))

let test_parser_predicates () =
  (match Query.Parser.parse_pred "x IS {a, b} AND NOT y = 3 OR TRUE" with
  | Ast.Or (Ast.And (Ast.Is _, Ast.Not (Ast.Cmp _)), Ast.True) -> ()
  | p -> Alcotest.failf "precedence: %s" (Format.asprintf "%a" Ast.pp_pred p));
  (match Query.Parser.parse_pred "x = [v^1]" with
  | Ast.Cmp (Erm.Predicate.Eq, Ast.Attr "x", Ast.Evidence_lit "[v^1]") -> ()
  | _ -> Alcotest.fail "evidence literal operand");
  match Query.Parser.parse_pred "{1, 2} <= x" with
  | Ast.Cmp (Erm.Predicate.Le, Ast.Set_lit [ _; _ ], Ast.Attr "x") -> ()
  | _ -> Alcotest.fail "set literal operand"

let test_parser_errors () =
  let parse_error input =
    Alcotest.(check bool)
      ("rejects " ^ input)
      true
      (match Query.Parser.parse input with
      | _ -> false
      | exception Query.Parser.Parse_error _ -> true)
  in
  List.iter parse_error
    [ "SELECT"; "SELECT * FROM"; "SELECT FROM ra"; "ra UNION"; "ra JOIN rb";
      "ra JOIN rb ON"; "SELECT * FROM ra WHERE"; "SELECT * FROM ra WITH SN";
      "SELECT * FROM ra WITH SN > x"; "ra rb"; "(ra"; "SELECT * FROM ra WHERE IS {a}" ]

let test_parser_roundtrip () =
  (* to_string of a parse reparses to the same AST. *)
  List.iter
    (fun input ->
      let q = parses input in
      let q' = parses (Ast.to_string q) in
      Alcotest.(check bool) ("roundtrip " ^ input) true (Ast.equal q q'))
    [ "ra";
      "ra UNION rb";
      "SELECT a, b FROM ra WHERE x IS {a, b} WITH SN >= 0.25";
      "SELECT * FROM (ra UNION rb) WHERE x = 3 AND y IS {c}";
      "ra JOIN rb ON a = b WITH SP > 0.1";
      "(ra TIMES rb) UNION (ra TIMES rb)";
      "ra INTERSECT (rb EXCEPT ra)";
      "(ra PREFIX l_) JOIN (ra PREFIX r_) ON l_rname = r_rname";
      "SELECT * FROM ra WHERE x IS {a} ORDER BY SP ASC LIMIT 7";
      "ra ORDER BY SN DESC" ]

(* --- Evaluation ----------------------------------------------------- *)

let test_eval_matches_direct_ops () =
  rel_eq "union = Ops.union"
    (Erm.Ops.union Paperdata.r_a Paperdata.r_b)
    (Query.Eval.run env "ra UNION rb");
  rel_eq "select = Ops.select (Table 2)" Paperdata.table2
    (Query.Eval.run env
       "SELECT * FROM ra WHERE speciality IS {si} WITH SN > 0")

let test_eval_projection_cols () =
  rel_eq "projection via cols (Table 5)" Paperdata.table5
    (Query.Eval.run env "SELECT rname, phone, speciality, rating FROM ra")

let test_eval_evidence_literal () =
  (* speciality = [mu^1] needs a frame: taken from the peer attribute. *)
  let r =
    Query.Eval.run env "SELECT * FROM ra WHERE speciality = [mu^0.5; ta^0.5]"
  in
  (* mehl's speciality [mu^.8; ta^.2]: equality of singleton focals:
     mu=mu .4, ta=ta .1 -> sn = sp = 0.5. ashiana: mu focal .9·.5 -> .45. *)
  Alcotest.(check int) "mehl and ashiana match" 2 (Erm.Relation.cardinal r)

let test_eval_theta_scalar () =
  let r = Query.Eval.run env "SELECT rname FROM ra WHERE bldg-no < 600" in
  (* definite bldg-no: 2011,600,12,514,820,353 -> 12, 514, 353. *)
  Alcotest.(check int) "three buildings below 600" 3 (Erm.Relation.cardinal r)

let test_eval_join () =
  let rb_renamed =
    Erm.Ops.rename_attrs
      (fun n -> if n = "rname" then "r_rname" else "r_" ^ n)
      Paperdata.r_b
  in
  let env = ("rbr", rb_renamed) :: env in
  let r = Query.Eval.run env "ra JOIN rbr ON rname = r_rname" in
  Alcotest.(check int) "five key-equal pairs" 5 (Erm.Relation.cardinal r)

let test_eval_errors () =
  let eval_error input =
    Alcotest.(check bool)
      ("rejects " ^ input)
      true
      (match Query.Eval.run env input with
      | _ -> false
      | exception Query.Eval.Eval_error _ -> true)
  in
  List.iter eval_error
    [ "nosuch";
      "SELECT * FROM ra WHERE nosuch IS {a}";
      "SELECT nosuch FROM ra";
      "SELECT street FROM ra" (* drops the key *);
      "SELECT * FROM ra WHERE street = [a^1]" (* literal vs definite attr *);
      "SELECT * FROM ra WHERE [a^1] = [b^1]" (* no attribute side *);
      "ra UNION (SELECT rname FROM ra)" (* incompatible *) ]

let test_eval_intersect_except () =
  rel_eq "INTERSECT = Ops.intersection"
    (Erm.Ops.intersection Paperdata.r_a Paperdata.r_b)
    (Query.Eval.run env "ra INTERSECT rb");
  rel_eq "EXCEPT = Ops.difference"
    (Erm.Ops.difference Paperdata.r_a Paperdata.r_b)
    (Query.Eval.run env "ra EXCEPT rb");
  (* ashiana is the only R_A tuple without an R_B counterpart. *)
  let only_a = Query.Eval.run env "ra EXCEPT rb" in
  Alcotest.(check int) "one A-only tuple" 1 (Erm.Relation.cardinal only_a);
  Alcotest.(check bool) "it is ashiana" true
    (Erm.Relation.mem only_a [ Dst.Value.string "ashiana" ]);
  (* Set identity on key sets: (A INTERSECT B) UNION (A EXCEPT B) covers
     exactly A's keys. *)
  let recombined =
    Query.Eval.run env "(ra INTERSECT rb) UNION (ra EXCEPT rb)"
  in
  Alcotest.(check int) "covers A's keys" (Erm.Relation.cardinal Paperdata.r_a)
    (Erm.Relation.cardinal recombined);
  (* And the AST pretty-printer round-trips the new forms. *)
  let q = parses "(ra INTERSECT rb) EXCEPT (SELECT * FROM ra)" in
  Alcotest.(check bool) "pp roundtrip" true
    (Ast.equal q (parses (Ast.to_string q)))

let test_eval_prefix_self_join () =
  (* Self-join without pre-renamed relations: restaurants on the same
     street as garden. *)
  let r =
    Query.Eval.run env
      "SELECT rname, r_rname FROM (ra JOIN (ra PREFIX r_) ON street = \
       r_street) WHERE rname = \"garden\""
  in
  (* garden pairs with itself and with ashiana (both univ.ave.). *)
  Alcotest.(check int) "two street-mates" 2 (Erm.Relation.cardinal r);
  (* Prefixed relations work in any operand position. *)
  let p = Query.Eval.run env "(ra PREFIX x_) TIMES rb" in
  Alcotest.(check int) "prefixed product" 30 (Erm.Relation.cardinal p);
  (* pp roundtrip. *)
  let q = parses "ra JOIN (ra PREFIX r_) ON rname = r_rname" in
  Alcotest.(check bool) "prefix pp roundtrip" true
    (Ast.equal q (parses (Ast.to_string q)));
  (* And the optimizer passes through it soundly. *)
  let q2 =
    parses
      "SELECT * FROM (ra JOIN (ra PREFIX r_) ON rname = r_rname) WHERE \
       rating IS {ex} AND r_rating IS {ex} WITH SN > 0.5"
  in
  rel_eq "optimizer sound across PREFIX" (Query.Eval.eval env q2)
    (Query.Plan.eval_optimized env q2)

(* --- Optimizer ------------------------------------------------------ *)

let test_infer_schema () =
  let s = Query.Plan.infer_schema env (Query.Parser.parse "ra UNION rb") in
  Alcotest.(check bool) "union keeps the schema" true
    (Erm.Schema.union_compatible s (Erm.Relation.schema Paperdata.r_a));
  let p =
    Query.Plan.infer_schema env (Query.Parser.parse "SELECT rname, rating FROM ra")
  in
  Alcotest.(check int) "projection narrows" 2 (Erm.Schema.arity p)

let test_optimize_cascade () =
  let q =
    Query.Parser.parse
      "SELECT * FROM (SELECT * FROM ra WHERE rating IS {ex}) WHERE \
       speciality IS {mu} WITH SN > 0.5"
  in
  match Query.Plan.optimize env q with
  | Ast.Select { from = Ast.Rel "ra"; where = Ast.And _; threshold = T.Cmp _; _ }
    -> ()
  | q' -> Alcotest.failf "expected a fused select, got %s" (Ast.to_string q')

let test_optimize_product_fusion () =
  let rb2 =
    Erm.Ops.rename_attrs (fun n -> "r_" ^ n) Paperdata.r_b
  in
  let env = ("rb2", rb2) :: env in
  let q = Query.Parser.parse "SELECT * FROM (ra TIMES rb2) WHERE rname = r_rname" in
  (match Query.Plan.optimize env q with
  | Ast.Join _ -> ()
  | q' -> Alcotest.failf "expected a join, got %s" (Ast.to_string q'));
  (* And the rewrite must not change the result. *)
  rel_eq "fusion sound"
    (Query.Eval.eval env q)
    (Query.Plan.eval_optimized env q)

let test_optimize_join_pushdown () =
  let rb2 = Erm.Ops.rename_attrs (fun n -> "r_" ^ n) Paperdata.r_b in
  let env = ("rb2", rb2) :: env in
  let q =
    Query.Parser.parse
      "SELECT * FROM (ra JOIN rb2 ON rname = r_rname) WHERE rating IS {ex} \
       AND r_rating IS {gd}"
  in
  let optimized = Query.Plan.optimize env q in
  (* Both conjuncts are single-side: they must move inside the join. *)
  (match optimized with
  | Ast.Join { left = Ast.Select _; right = Ast.Select _; _ } -> ()
  | q' -> Alcotest.failf "expected pushdown, got %s" (Ast.to_string q'));
  rel_eq "pushdown sound" (Query.Eval.eval env q)
    (Query.Eval.eval env optimized)

let test_optimize_no_pushdown_through_union () =
  (* σ over ∪ must NOT be rewritten: Dempster's rule does not commute
     with membership revision. *)
  let q =
    Query.Parser.parse "SELECT * FROM (ra UNION rb) WHERE rating IS {ex}"
  in
  match Query.Plan.optimize env q with
  | Ast.Select { from = Ast.Union _; _ } -> ()
  | q' -> Alcotest.failf "union must stay put, got %s" (Ast.to_string q')

let test_optimize_preserves_results () =
  List.iter
    (fun input ->
      let q = Query.Parser.parse input in
      rel_eq ("optimize preserves " ^ input) (Query.Eval.eval env q)
        (Query.Plan.eval_optimized env q))
    [ "SELECT * FROM (SELECT * FROM ra WHERE rating IS {ex}) WHERE \
       speciality IS {mu}";
      "SELECT rname, rating FROM (ra UNION rb) WHERE rating IS {gd} WITH SP \
       >= 0.5";
      "SELECT * FROM ra WHERE bldg-no >= 500 AND rating IS {ex} WITH SN > 0.1" ]

(* --- fuzz and differential ------------------------------------------- *)

let qprop name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:300 arb law)

(* The parser must reject garbage with Parse_error, never anything else
   (no assertion failures, no Invalid_argument leaks from the lexer). *)
let fuzz_fragments =
  [| "SELECT"; "FROM"; "WHERE"; "WITH"; "UNION"; "JOIN"; "ON"; "TIMES";
     "AND"; "OR"; "NOT"; "IS"; "SN"; "SP"; "ORDER"; "BY"; "LIMIT"; "*";
     "INTERSECT"; "EXCEPT"; "PREFIX"; "ASC"; "DESC"; "TRUE";
     "("; ")"; "{"; "}"; ","; "="; "<>"; "<"; "<="; ">"; ">="; "ra"; "x";
     "0.5"; "42"; "-1"; "{a, b}"; "[v^1]"; "\"str\""; "best-dish"; ";";
     "~" |]

let fuzz_arb =
  QCheck.make
    ~print:(fun words -> String.concat " " words)
    QCheck.Gen.(
      list_size (int_range 0 12)
        (map (fun i -> fuzz_fragments.(i mod Array.length fuzz_fragments))
           (int_bound (Array.length fuzz_fragments - 1))))

let fuzz_tests =
  [ qprop "parser total: Parse_error or success, never anything else"
      fuzz_arb
      (fun words ->
        let input = String.concat " " words in
        match Query.Parser.parse input with
        | _ -> true
        | exception Query.Parser.Parse_error _ -> true
        | exception _ -> false);
    qprop "evaluator total on parsed garbage" fuzz_arb (fun words ->
        let input = String.concat " " words in
        match Query.Parser.parse input with
        | exception Query.Parser.Parse_error _ -> true
        | q -> (
            (* Anything that parses must evaluate or fail with a typed
               error — never a crash. *)
            match Query.Eval.eval env q with
            | _ -> true
            | exception Query.Eval.Eval_error _ -> true
            | exception Erm.Predicate.Predicate_error _ -> true
            | exception Dst.Value.Type_mismatch _ -> true
            | exception Dst.Mass.F.Total_conflict -> true
            | exception Erm.Ops.Incompatible_schemas _ -> true
            | exception Erm.Schema.Schema_error _ -> true
            | exception _ -> false));
    (* Differential: pretty-printed queries evaluate to the same result
       after a reparse. *)
    qprop "pp/parse/eval differential"
      (QCheck.make
         ~print:(fun i -> string_of_int i)
         (QCheck.Gen.int_bound 10000))
      (fun seed ->
        let rng = Workload.Rng.create seed in
        let v () = "v" ^ string_of_int (Workload.Rng.int rng 8) in
        let texts =
          [ Printf.sprintf
              "SELECT * FROM ra WHERE speciality IS {si} WITH SN > 0.%d"
              (Workload.Rng.int rng 9);
            Printf.sprintf "SELECT rname, rating FROM (ra UNION rb) WHERE \
                            rating IS {ex, gd} ORDER BY SN DESC LIMIT %d"
              (1 + Workload.Rng.int rng 5);
            Printf.sprintf "SELECT * FROM ra WHERE bldg-no >= %d"
              (Workload.Rng.int rng 2000) ]
        in
        ignore (v ());
        List.for_all
          (fun text ->
            let q = Query.Parser.parse text in
            let q' = Query.Parser.parse (Ast.to_string q) in
            Erm.Relation.equal (Query.Eval.eval env q)
              (Query.Eval.eval env q'))
          texts) ]

(* --- physical planner ------------------------------------------------ *)

let test_physical_picks_hash_join () =
  let rb2 = Erm.Ops.rename_attrs (fun n -> "r_" ^ n) Paperdata.r_b in
  let env = ("rb2", rb2) :: env in
  let q = Query.Parser.parse "ra JOIN rb2 ON rname = r_rname" in
  (match Query.Physical.plan env q with
  | Query.Physical.Hash_join { left_attr = "rname"; right_attr = "r_rname"; _ }
    ->
      ()
  | p ->
      Alcotest.failf "expected hash join, got %s" (Query.Physical.to_string p));
  (* … and an evidential equality must stay a nested loop. *)
  let q' = Query.Parser.parse "ra JOIN rb2 ON rating = r_rating" in
  match Query.Physical.plan env q' with
  | Query.Physical.Loop_join _ -> ()
  | p ->
      Alcotest.failf "expected loop join, got %s" (Query.Physical.to_string p)

let test_physical_picks_index_probe () =
  let q =
    Query.Parser.parse
      "SELECT rname, rating FROM ra WHERE street = \"univ.ave.\" AND rating \
       IS {ex}"
  in
  match Query.Physical.plan env q with
  | Query.Physical.Scan
      { access = Query.Physical.Index_eq { attr = "street"; _ };
        residual = Ast.Is ("rating", _); _ } ->
      ()
  | p ->
      Alcotest.failf "expected street probe, got %s"
        (Query.Physical.to_string p)

let test_physical_matches_eval_on_paper_queries () =
  let rb2 = Erm.Ops.rename_attrs (fun n -> "r_" ^ n) Paperdata.r_b in
  let env = ("rb2", rb2) :: env in
  let ctx = Query.Physical.create_ctx () in
  List.iter
    (fun input ->
      let q = Query.Parser.parse input in
      rel_eq ("physical = naive on " ^ input) (Query.Eval.eval env q)
        (Query.Physical.eval_fast ~ctx env q))
    [ "SELECT rname, rating FROM ra WHERE street = \"univ.ave.\"";
      "SELECT * FROM ra WHERE rname IS {mehl} AND rating IS {ex} WITH SN > 0.1";
      "ra JOIN rb2 ON rname = r_rname";
      "ra JOIN rb2 ON rname = r_rname AND rating IS {ex}";
      "SELECT * FROM (ra UNION rb) WHERE rating IS {ex}";
      "ra JOIN (ra PREFIX r_) ON rname = r_rname";
      "SELECT rname FROM (ra INTERSECT rb) WHERE speciality IS {mu} WITH SP \
       >= 0.5" ]

let test_analyze_reports_stats () =
  let ctx = Query.Physical.create_ctx () in
  let q = Query.Parser.parse "ra UNION rb" in
  let r1, rep = Query.Explain.analyze ~ctx env q in
  Alcotest.(check string) "root op" "union" rep.Query.Physical.r_op;
  Alcotest.(check int) "rows_out measured"
    (Erm.Relation.cardinal r1)
    rep.Query.Physical.r_stats.Query.Stats.rows_out;
  Alcotest.(check int) "two children" 2
    (List.length rep.Query.Physical.r_children);
  let misses = rep.Query.Physical.r_stats.Query.Stats.cache_misses in
  Alcotest.(check bool) "first run misses the memo-cache" true (misses > 0);
  (* Same union again through the same ctx: all combinations replay. *)
  let _, rep2 = Query.Explain.analyze ~ctx env q in
  Alcotest.(check int) "second run fully memoized" misses
    rep2.Query.Physical.r_stats.Query.Stats.cache_hits;
  Alcotest.(check int) "no new misses" 0
    rep2.Query.Physical.r_stats.Query.Stats.cache_misses

let () =
  Alcotest.run "query"
    [ ( "lexer",
        [ Alcotest.test_case "tokens" `Quick test_lexer_basics;
          Alcotest.test_case "errors" `Quick test_lexer_errors ] );
      ( "parser",
        [ Alcotest.test_case "query shapes" `Quick test_parser_shapes;
          Alcotest.test_case "predicates" `Quick test_parser_predicates;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "pp roundtrip" `Quick test_parser_roundtrip ] );
      ( "eval",
        [ Alcotest.test_case "matches direct ops" `Quick
            test_eval_matches_direct_ops;
          Alcotest.test_case "projection" `Quick test_eval_projection_cols;
          Alcotest.test_case "evidence literals" `Quick
            test_eval_evidence_literal;
          Alcotest.test_case "θ on definite attrs" `Quick
            test_eval_theta_scalar;
          Alcotest.test_case "join" `Quick test_eval_join;
          Alcotest.test_case "errors" `Quick test_eval_errors;
          Alcotest.test_case "INTERSECT and EXCEPT" `Quick
            test_eval_intersect_except;
          Alcotest.test_case "PREFIX self-join" `Quick
            test_eval_prefix_self_join ] );
      ( "plan",
        [ Alcotest.test_case "infer_schema" `Quick test_infer_schema;
          Alcotest.test_case "selection cascade" `Quick test_optimize_cascade;
          Alcotest.test_case "product fusion" `Quick
            test_optimize_product_fusion;
          Alcotest.test_case "join pushdown" `Quick
            test_optimize_join_pushdown;
          Alcotest.test_case "no pushdown through union" `Quick
            test_optimize_no_pushdown_through_union;
          Alcotest.test_case "rewrites preserve results" `Quick
            test_optimize_preserves_results ] );
      ( "physical",
        [ Alcotest.test_case "hash join for definite equi-keys" `Quick
            test_physical_picks_hash_join;
          Alcotest.test_case "index probe for definite equality" `Quick
            test_physical_picks_index_probe;
          Alcotest.test_case "physical = naive on paper queries" `Quick
            test_physical_matches_eval_on_paper_queries;
          Alcotest.test_case "analyze reports measured stats" `Quick
            test_analyze_reports_stats ] );
      ("fuzz", fuzz_tests) ]
