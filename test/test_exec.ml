(* The sharded engine's determinism contract, tested directly (the
   result-conformance legs live in test_conformance.ml):

   - Pool: results indexed by task, lowest-index exception wins, worker
     counts beyond the core count are fine (CI runs on 1 core — every
     count here must pass there);
   - Shard: partitions are deterministic disjoint covers;
   - Engine: for a fixed query and seed, the rendered result is
     byte-identical for every worker count; metrics rollups (under a
     virtual clock) and the lineage DOT export are byte-identical too;
     and the dst.*/combine_cache.* counter families are invariant
     across SHARD counts, not just worker counts. *)

module R = Workload.Rng
module G = Workload.Gen
module Q = Workload.Qgen
module P = Query.Physical

let () = Exec.Engine.install ()

let render r = Format.asprintf "%a" Erm.Relation.pp r

let strategy shards domains = P.Sharded { P.shards; domains }

(* A workload with guaranteed key overlap, so unions actually combine
   evidence (and the combine caches see traffic). *)
let env_of seed =
  let rng = R.create seed in
  let ra, rb = G.source_pair rng ~size:40 ~overlap:0.5 Q.schema in
  [ ("ra", ra); ("rb", rb) ]

let union_q = Query.Ast.Union (Query.Ast.Rel "ra", Query.Ast.Rel "rb")

let queries seed =
  let env = env_of seed in
  let qs =
    union_q
    :: List.init 4 (fun i -> Q.query (R.create (seed + (7919 * (i + 1)))) env)
  in
  (env, qs)

(* --- pool ------------------------------------------------------------ *)

let pool_indexes_results () =
  List.iter
    (fun domains ->
      let out = Exec.Pool.run ~domains ~tasks:23 (fun i -> i * i) in
      Alcotest.(check (array int))
        (Printf.sprintf "task i slot holds f i (domains=%d)" domains)
        (Array.init 23 (fun i -> i * i))
        out)
    [ 1; 2; 4; 8 ]

let pool_lowest_exception_wins () =
  List.iter
    (fun domains ->
      Alcotest.check_raises
        (Printf.sprintf "lowest failing task wins (domains=%d)" domains)
        (Failure "task 3")
        (fun () ->
          ignore
            (Exec.Pool.run ~domains ~tasks:16 (fun i ->
                 if i mod 3 = 0 && i > 0 then
                   failwith (Printf.sprintf "task %d" i)
                 else i))))
    [ 1; 2; 4; 8 ]

let pool_edges () =
  Alcotest.(check (array int)) "zero tasks" [||]
    (Exec.Pool.run ~domains:4 ~tasks:0 (fun i -> i));
  Alcotest.(check (array int)) "one task" [| 7 |]
    (Exec.Pool.run ~domains:4 ~tasks:1 (fun _ -> 7));
  Alcotest.(check (array int)) "more domains than tasks"
    (Array.init 3 (fun i -> i))
    (Exec.Pool.run ~domains:16 ~tasks:3 (fun i -> i))

(* --- shard ----------------------------------------------------------- *)

let shard_disjoint_cover () =
  let rel = G.relation (R.create 11) ~size:100 Q.schema in
  List.iter
    (fun shards ->
      let parts = Exec.Shard.by_key ~shards rel in
      Alcotest.(check int)
        (Printf.sprintf "%d shards" shards)
        shards (Array.length parts);
      let total =
        Array.fold_left (fun n p -> n + Erm.Relation.cardinal p) 0 parts
      in
      Alcotest.(check int) "tuples covered exactly once"
        (Erm.Relation.cardinal rel)
        total;
      Erm.Relation.iter
        (fun t ->
          let key = Erm.Etuple.key t in
          let holders =
            Array.to_list parts
            |> List.filter (fun p -> Erm.Relation.mem p key)
          in
          Alcotest.(check int) "exactly one shard holds each key" 1
            (List.length holders))
        rel)
    [ 1; 3; 8 ]

let shard_deterministic () =
  let rel = G.relation (R.create 12) ~size:60 Q.schema in
  let show parts =
    String.concat "\n---\n" (Array.to_list (Array.map render parts))
  in
  Alcotest.(check string) "same partition on re-run"
    (show (Exec.Shard.by_key ~shards:5 rel))
    (show (Exec.Shard.by_key ~shards:5 rel))

(* --- engine: worker-count and shard-count independence --------------- *)

let worker_counts = [ 1; 2; 4; 8 ]

let results_byte_identical () =
  let env, qs = queries 101 in
  List.iteri
    (fun qi q ->
      let reference = P.eval_fast ~ctx:(P.create_ctx ()) env q in
      List.iter
        (fun domains ->
          let sharded =
            P.eval_fast ~ctx:(P.create_ctx ())
              ~strategy:(strategy 8 domains) env q
          in
          Alcotest.(check string)
            (Printf.sprintf "query %d, 8 shards, %d domains" qi domains)
            (render reference) (render sharded))
        worker_counts)
    qs

let with_metrics f =
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.disable ();
      Obs.Metrics.reset ())
    f

(* Swap in a virtual clock so exec.merge.ns & friends are deterministic
   across runs — the binaries do the same under ERIDB_CLOCK=virtual. *)
let with_virtual_clock f =
  let saved = Obs.Trace.clock Obs.Trace.default in
  Obs.Trace.set_clock Obs.Trace.default (Obs.Clock.simulated ());
  Fun.protect
    ~finally:(fun () -> Obs.Trace.set_clock Obs.Trace.default saved)
    f

(* The exec.workers gauge reports the worker count itself — the one
   value that must differ across worker counts (bench --obs-gate
   asserts it). Everything else in the dump has to match byte for
   byte, so strip exactly that line before comparing. *)
let strip_worker_gauge text =
  String.split_on_char '\n' text
  |> List.filter (fun line ->
         not
           (String.length line >= 5
           && String.sub line 0 5 = "gauge"
           && String.length line >= 22
           && String.sub line 10 12 = "exec.workers"))
  |> String.concat "\n"

let metrics_rollup_for ~shards ~domains env qs =
  (* Cold scan cache per rollup, so exec.index.build/reuse counts are a
     function of the batch alone, not of which rollup ran first. *)
  Exec.Engine.reset_scan_cache ();
  with_virtual_clock (fun () ->
      with_metrics (fun () ->
          let ctx = P.create_ctx () in
          List.iter
            (fun q ->
              ignore (P.eval_fast ~ctx ~strategy:(strategy shards domains) env q))
            qs;
          strip_worker_gauge (Obs.Export.metrics_text ())))

(* Spans under a fork merge back renumbered but content- and
   order-identical, so every id-free rendering (forest, Chrome export,
   summary) must be byte-equal to the inline run's. *)
let trace_rollup_for ~shards ~domains env qs =
  Exec.Engine.reset_scan_cache ();
  with_virtual_clock (fun () ->
      let t = Obs.Trace.default in
      Obs.Trace.enable t;
      Fun.protect
        ~finally:(fun () ->
          Obs.Trace.disable t;
          Obs.Trace.clear t)
        (fun () ->
          let from = Obs.Trace.count t in
          let ctx = P.create_ctx () in
          List.iter
            (fun q ->
              ignore (P.eval_fast ~ctx ~strategy:(strategy shards domains) env q))
            qs;
          Format.asprintf "%a@.%s%s" Obs.Trace.pp_forest
            (Obs.Trace.forest ~from t)
            (Obs.Export.chrome ~from t)
            (String.concat ""
               (List.map
                  (fun (n, c, d) -> Printf.sprintf "%s %d %g\n" n c d)
                  (Obs.Trace.summary t)))))

let metrics_byte_identical_across_workers () =
  let env, qs = queries 202 in
  let reference = metrics_rollup_for ~shards:8 ~domains:1 env qs in
  List.iter
    (fun domains ->
      Alcotest.(check string)
        (Printf.sprintf "metrics rollup, 8 shards, %d domains" domains)
        reference
        (metrics_rollup_for ~shards:8 ~domains env qs))
    worker_counts

let traces_byte_identical_across_workers () =
  let env, qs = queries 505 in
  let reference = trace_rollup_for ~shards:8 ~domains:1 env qs in
  List.iter
    (fun domains ->
      Alcotest.(check string)
        (Printf.sprintf "trace rollup, 8 shards, %d domains" domains)
        reference
        (trace_rollup_for ~shards:8 ~domains env qs))
    worker_counts

(* The qcheck form of the tentpole guarantee: for random workloads the
   merged per-worker metric and trace rollups at workers ∈ {2,4,8} are
   byte-identical to workers=1. *)
let qcheck_merged_telemetry =
  QCheck.Test.make ~count:10
    ~name:"merged per-worker telemetry = inline run (metrics + traces)"
    QCheck.(int_range 0 1000)
    (fun n ->
      let seed = 606 + n in
      let env, qs = queries seed in
      let m_ref = metrics_rollup_for ~shards:8 ~domains:1 env qs in
      let t_ref = trace_rollup_for ~shards:8 ~domains:1 env qs in
      List.for_all
        (fun domains ->
          String.equal m_ref (metrics_rollup_for ~shards:8 ~domains env qs)
          && String.equal t_ref (trace_rollup_for ~shards:8 ~domains env qs))
        [ 2; 4; 8 ])

(* Counter families owned by the evidential arithmetic must not depend
   on how many shards the engine used. (exec.* diagnostics and
   histogram float sums are configuration-dependent by design —
   DESIGN.md §7 scopes the invariance claim.) *)
let counters_invariant_across_shard_counts () =
  let env, qs = queries 303 in
  let counters_for shards =
    with_virtual_clock (fun () ->
        with_metrics (fun () ->
            let ctx = P.create_ctx () in
            List.iter
              (fun q ->
                ignore (P.eval_fast ~ctx ~strategy:(strategy shards 1) env q))
              qs;
            List.map
              (fun name -> (name, Obs.Metrics.counter name))
              [ "dst.combine.calls";
                "dst.combine.total_conflict";
                "combine_cache.hit";
                "combine_cache.miss" ]))
  in
  let reference = counters_for 1 in
  List.iter
    (fun shards ->
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "%d shards" shards)
        reference (counters_for shards))
    [ 3; 8 ]

let lineage_dot_byte_identical () =
  let env, qs = queries 404 in
  let dot_for domains =
    Obs.Provenance.reset ();
    Obs.Provenance.enable ();
    Fun.protect
      ~finally:(fun () ->
        Obs.Provenance.disable ();
        Obs.Provenance.reset ())
      (fun () ->
        let ctx = P.create_ctx () in
        List.iter
          (fun q ->
            ignore (P.eval_fast ~ctx ~strategy:(strategy 8 domains) env q))
          qs;
        Obs.Export.provenance_dot ())
  in
  let reference = dot_for 1 in
  List.iter
    (fun domains ->
      Alcotest.(check string)
        (Printf.sprintf "lineage DOT, %d domains" domains)
        reference (dot_for domains))
    worker_counts

(* --- scan cache: per-shard partitions and indexes -------------------- *)

(* An Index_eq probe over ra's definite attribute: the planner picks the
   index access path, and the engine serves it from the scan cache. *)
let index_probe_q value =
  Query.Ast.Select
    { cols = None;
      from = Query.Ast.Rel "ra";
      where =
        Query.Ast.Cmp
          ( Erm.Predicate.Eq,
            Query.Ast.Attr "a0",
            Query.Ast.Scalar (Dst.Value.string value) );
      threshold = Erm.Threshold.always }

let index_reuse_across_queries () =
  let env = env_of 77 in
  Exec.Engine.reset_scan_cache ();
  with_metrics (fun () ->
      let ctx = P.create_ctx () in
      let run v =
        ignore (P.eval_fast ~ctx ~strategy:(strategy 4 1) env (index_probe_q v))
      in
      run "a0-1";
      Alcotest.(check int) "first probe builds" 1
        (Obs.Metrics.counter "exec.index.build");
      Alcotest.(check int) "no reuse yet" 0
        (Obs.Metrics.counter "exec.index.reuse");
      run "a0-2";
      Alcotest.(check int) "second probe reuses" 1
        (Obs.Metrics.counter "exec.index.reuse");
      Alcotest.(check int) "no rebuild" 1
        (Obs.Metrics.counter "exec.index.build"))

let index_cache_invalidated_by_store_commit () =
  let env = env_of 78 in
  Exec.Engine.reset_scan_cache ();
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "eridb_exec_%d" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      with_metrics (fun () ->
          let ctx = P.create_ctx () in
          let run () =
            ignore
              (P.eval_fast ~ctx ~strategy:(strategy 4 1) env
                 (index_probe_q "a0-1"))
          in
          run ();
          run ();
          let reuse = Obs.Metrics.counter "exec.index.reuse" in
          Alcotest.(check int) "warm before commit" 1 reuse;
          (* Any store commit bumps the process-wide store generation;
             the cache must drop its partitions and rebuild, because the
             committed relation may be the one being scanned. *)
          ignore
            (Store.Estore.create ~dir ~name:"g"
               (G.relation (R.create 79) ~size:3 Q.schema));
          run ();
          Alcotest.(check int) "no reuse right after a commit" reuse
            (Obs.Metrics.counter "exec.index.reuse");
          Alcotest.(check int) "rebuilt" 2
            (Obs.Metrics.counter "exec.index.build");
          run ();
          Alcotest.(check int) "warm again" (reuse + 1)
            (Obs.Metrics.counter "exec.index.reuse")))

let () =
  Alcotest.run "exec"
    [ ( "pool",
        [ Alcotest.test_case "results are task-indexed" `Quick
            pool_indexes_results;
          Alcotest.test_case "lowest-index exception wins" `Quick
            pool_lowest_exception_wins;
          Alcotest.test_case "edge sizes" `Quick pool_edges ] );
      ( "shard",
        [ Alcotest.test_case "disjoint cover" `Quick shard_disjoint_cover;
          Alcotest.test_case "deterministic" `Quick shard_deterministic ] );
      ( "determinism",
        [ Alcotest.test_case "results byte-identical across worker counts"
            `Quick results_byte_identical;
          Alcotest.test_case "metrics byte-identical across worker counts"
            `Quick metrics_byte_identical_across_workers;
          Alcotest.test_case "traces byte-identical across worker counts"
            `Quick traces_byte_identical_across_workers;
          QCheck_alcotest.to_alcotest qcheck_merged_telemetry;
          Alcotest.test_case "dst/cache counters shard-count-invariant"
            `Quick counters_invariant_across_shard_counts;
          Alcotest.test_case "lineage DOT byte-identical across worker counts"
            `Quick lineage_dot_byte_identical ] );
      ( "scan-cache",
        [ Alcotest.test_case "per-shard indexes reused across queries" `Quick
            index_reuse_across_queries;
          Alcotest.test_case "store commit invalidates the cache" `Quick
            index_cache_invalidated_by_store_commit ] ) ]
