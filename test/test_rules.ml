(* The pluggable combination rules and the κ-escalation policy.

   Three layers of proof, mirroring DESIGN.md's rule-selection table:

   - algebraic laws per rule (qcheck): closure, commutativity, the
     documented NON-associativity of averaging (asserted, not hidden),
     and the κ₀ = 1 degeneracy — an escalation policy with threshold 1
     is observationally pure Dempster wherever Dempster is defined;
   - the escalation boundary itself: κ = κ₀ exactly MUST fire, one ulp
     above must not, κ₀ = 0 always fires, and both fallback shapes
     (rule switch vs quarantine) produce the advertised outcome and
     counters;
   - bit-exactness of every flat kernel against its map kernel over the
     adversarial scenario corpus (Zadeh, near-total, one-against-many,
     dissenter) — the same contract test_flat_mass.ml enforces for
     Dempster, extended to all rule families.

   Seeds: qcheck honours QCHECK_SEED, which CI pins. *)

module R = Workload.Rng
module G = Workload.Gen
module Sc = Workload.Scenario
module F = Dst.Mass.F
module Fm = Dst.Flat_mass
module Rule = Dst.Rule

let count = 200

let prop name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

let seed_arb = QCheck.int_range 0 1_000_000
let dom = G.domain ~size:6 "rules6"

(* All five families; discount at two alphas so the parameter is
   exercised, not just the constructor. *)
let rules =
  Rule.all
  @ [ Rule.discount_then_combine 0.9; Rule.discount_then_combine 0.5 ]

let mass_pair ?omega_floor seed =
  let rng = R.create seed in
  (G.evidence rng ?omega_floor dom, G.evidence rng ?omega_floor dom)

let exact_opt o1 o2 =
  match (o1, o2) with
  | None, None -> true
  | Some (m, k), Some (m', k') -> F.compare m m' = 0 && Float.equal k k'
  | Some _, None | None, Some _ -> false

let close a b = Float.abs (a -. b) < 1e-9

(* A fixed Zadeh pair with a known conflict, for the boundary units. *)
let a3, b3, c3 =
  match Dst.Vset.to_list (Dst.Domain.values dom) with
  | a :: b :: c :: _ -> (a, b, c)
  | _ -> assert false

let mk entries =
  F.make dom (List.map (fun (vs, w) -> (Dst.Vset.of_list vs, w)) entries)

let zadeh_l = mk [ ([ a3 ], 0.99); ([ c3 ], 0.01) ]
let zadeh_r = mk [ ([ b3 ], 0.99); ([ c3 ], 0.01) ]
let total_l = mk [ ([ a3 ], 1.0) ]
let total_r = mk [ ([ b3 ], 1.0) ]
let agree_l = mk [ ([ a3 ], 0.6); (Dst.Vset.to_list (Dst.Domain.values dom), 0.4) ]

(* --- Algebraic laws, per rule ---------------------------------------- *)

let algebra_suite =
  List.concat_map
    (fun rule ->
      let label = Rule.to_string rule in
      [ prop (label ^ ": closure (frame kept, masses positive, sum 1)")
          seed_arb
          (fun s ->
            let m1, m2 = mass_pair ~omega_floor:0.05 s in
            match F.combine_rule_opt ~rule m1 m2 with
            | None -> false (* Ω floor rules out total conflict *)
            | Some (m, kappa) ->
                Dst.Domain.equal (F.frame m) dom
                && (0.0 <= kappa && kappa <= 1.0)
                && List.for_all (fun (_, w) -> w > 0.0) (F.focals m)
                && close
                     (List.fold_left
                        (fun acc (_, w) -> acc +. w)
                        0.0 (F.focals m))
                     1.0);
        prop (label ^ ": commutativity") seed_arb (fun s ->
            let m1, m2 = mass_pair ~omega_floor:0.05 s in
            match
              (F.combine_rule_opt ~rule m1 m2, F.combine_rule_opt ~rule m2 m1)
            with
            | Some (m, k), Some (m', k') -> F.equal m m' && close k k'
            | None, None -> true
            | _ -> false);
        prop (label ^ ": reported kappa is the conjunctive conflict")
          seed_arb
          (fun s ->
            let m1, m2 = mass_pair ~omega_floor:0.05 s in
            match F.combine_rule_opt ~rule m1 m2 with
            | None -> false
            | Some (_, kappa) ->
                (* Discount measures κ between the discounted operands;
                   every other rule between the originals. *)
                let expect =
                  match rule with
                  | Rule.Discount_then_combine alpha ->
                      F.conflict (F.discount alpha m1) (F.discount alpha m2)
                  | _ -> F.conflict m1 m2
                in
                Float.equal kappa expect) ])
    rules

let totality_suite =
  [ Alcotest.test_case "yager: total conflict goes to ignorance" `Quick
      (fun () ->
        let m = F.combine_yager total_l total_r in
        Alcotest.(check bool) "vacuous" true (F.is_vacuous m));
    Alcotest.test_case "dubois-prade: conflict lands on the union" `Quick
      (fun () ->
        let m = F.combine_dubois_prade total_l total_r in
        Alcotest.(check (float 1e-12))
          "m({a,b}) = 1"
          1.0
          (F.mass m (Dst.Vset.of_list [ a3; b3 ])));
    Alcotest.test_case "averaging: idempotent" `Quick (fun () ->
        let m = F.combine_average zadeh_l zadeh_l in
        Alcotest.(check int) "m avg m = m" 0 (F.compare m zadeh_l));
    Alcotest.test_case "dempster: total conflict is None/Total_conflict"
      `Quick
      (fun () ->
        Alcotest.(check bool)
          "combine_opt" true
          (F.combine_opt total_l total_r = None));
    Alcotest.test_case
      "discount alpha<1: total conflict becomes combinable" `Quick
      (fun () ->
        match
          F.combine_rule_opt
            ~rule:(Rule.discount_then_combine 0.9)
            total_l total_r
        with
        | None -> Alcotest.fail "discounted operands cannot totally conflict"
        | Some (m, kappa) ->
            Alcotest.(check bool) "kappa < 1" true (kappa < 1.0);
            Alcotest.(check bool)
              "some mass survives on each side" true
              (F.mass m (Dst.Vset.of_list [ a3 ]) > 0.0
              && F.mass m (Dst.Vset.of_list [ b3 ]) > 0.0)) ]

(* Averaging is NOT associative; the pairwise fold would weight source i
   by 2^-(n-i). The three categorical masses make the failure vivid:
   (a avg b) avg c = (1/4, 1/4, 1/2) but a avg (b avg c) = (1/2, 1/4,
   1/4), while the uniform mixture gives each 1/3. *)
let averaging_nonassoc =
  [ Alcotest.test_case "averaging: non-associativity (documented)" `Quick
      (fun () ->
        let ca = F.certain dom a3
        and cb = F.certain dom b3
        and cc = F.certain dom c3 in
        let left = F.combine_average (F.combine_average ca cb) cc in
        let right = F.combine_average ca (F.combine_average cb cc) in
        Alcotest.(check bool)
          "(a avg b) avg c <> a avg (b avg c)" false
          (F.equal left right);
        Alcotest.(check (float 1e-12))
          "left puts 1/2 on c" 0.5
          (F.mass left (Dst.Vset.of_list [ c3 ]));
        Alcotest.(check (float 1e-12))
          "right puts 1/2 on a" 0.5
          (F.mass right (Dst.Vset.of_list [ a3 ]))) ]

(* κ₀ = 1 degenerates to pure Dempster wherever Dempster is defined. *)
let kappa1_policy =
  Rule.make ~escalation:(Rule.escalate ~kappa0:1.0 Rule.Quarantine)
    Rule.Dempster

let degeneracy_suite =
  [ prop "kappa0=1 policy = plain Dempster on kappa<1 inputs" seed_arb
      (fun s ->
        let m1, m2 = mass_pair ~omega_floor:0.05 s in
        match (F.combine_policy ~policy:kappa1_policy m1 m2, F.combine_opt m1 m2)
        with
        | F.Combined { result; kappa; rule; escalated }, Some (m, k) ->
            F.compare result m = 0 && Float.equal kappa k
            && Rule.equal rule Rule.Dempster
            && not escalated
        | _ -> false);
    Alcotest.test_case "kappa0=1 quarantines exactly kappa=1" `Quick
      (fun () ->
        match F.combine_policy ~policy:kappa1_policy total_l total_r with
        | F.Quarantined { kappa } ->
            Alcotest.(check (float 0.0)) "kappa" 1.0 kappa
        | _ -> Alcotest.fail "expected Quarantined at total conflict") ]

(* --- The escalation boundary ----------------------------------------- *)

let policy ?(primary = Rule.Dempster) kappa0 fallback =
  Rule.make ~escalation:(Rule.escalate ~kappa0 fallback) primary

let escalation_suite =
  let kz = F.conflict zadeh_l zadeh_r in
  [ Alcotest.test_case "kappa = kappa0 exactly fires" `Quick (fun () ->
        match
          F.combine_policy ~policy:(policy kz Rule.Quarantine) zadeh_l zadeh_r
        with
        | F.Quarantined { kappa } ->
            Alcotest.(check bool) "kappa = threshold" true (Float.equal kappa kz)
        | _ -> Alcotest.fail "kappa >= kappa0 must escalate");
    Alcotest.test_case "one ulp above kappa does not fire" `Quick (fun () ->
        match
          F.combine_policy
            ~policy:(policy (Float.succ kz) Rule.Quarantine)
            zadeh_l zadeh_r
        with
        | F.Combined { escalated; rule; _ } ->
            Alcotest.(check bool) "not escalated" false escalated;
            Alcotest.(check bool) "primary ran" true
              (Rule.equal rule Rule.Dempster)
        | _ -> Alcotest.fail "kappa < kappa0 must not escalate");
    Alcotest.test_case "kappa0 = 0 escalates even agreeing operands" `Quick
      (fun () ->
        match
          F.combine_policy
            ~policy:(policy 0.0 (Rule.Fallback Rule.Averaging))
            agree_l agree_l
        with
        | F.Combined { escalated; rule; _ } ->
            Alcotest.(check bool) "escalated" true escalated;
            Alcotest.(check bool) "fallback ran" true
              (Rule.equal rule Rule.Averaging)
        | _ -> Alcotest.fail "kappa0 = 0 must always escalate");
    Alcotest.test_case "fallback rule result = running it directly" `Quick
      (fun () ->
        match
          F.combine_policy
            ~policy:(policy 0.5 (Rule.Fallback Rule.Yager))
            zadeh_l zadeh_r
        with
        | F.Combined { result; escalated = true; _ } ->
            Alcotest.(check int) "bit-equal to Yager" 0
              (F.compare result (F.combine_yager zadeh_l zadeh_r))
        | _ -> Alcotest.fail "expected escalated Combined");
    Alcotest.test_case "escalation counters tick" `Quick (fun () ->
        Obs.Metrics.enable ();
        Obs.Metrics.reset ();
        (match
           F.combine_policy
             ~policy:(policy 0.5 (Rule.Fallback Rule.Yager))
             zadeh_l zadeh_r
         with
        | F.Combined _ -> ()
        | _ -> Alcotest.fail "expected Combined");
        ignore
          (F.combine_policy ~policy:(policy 0.5 Rule.Quarantine) zadeh_l
             zadeh_r);
        Alcotest.(check int) "dst.combine.escalations" 2
          (Obs.Metrics.counter "dst.combine.escalations");
        Alcotest.(check int) "fallback family counter" 1
          (Obs.Metrics.counter "dst.combine.rule.yager");
        Obs.Metrics.reset ();
        Obs.Metrics.disable ());
    Alcotest.test_case "combine_policy_exn raises the typed exceptions"
      `Quick
      (fun () ->
        (match
           F.combine_policy_exn ~policy:(policy 0.5 Rule.Quarantine) zadeh_l
             zadeh_r
         with
        | exception F.Quarantined_cell kappa ->
            Alcotest.(check bool) "carries kappa" true (Float.equal kappa kz)
        | _ -> Alcotest.fail "expected Quarantined_cell");
        match F.combine_policy_exn ~policy:Rule.dempster total_l total_r with
        | exception F.Total_conflict -> ()
        | _ -> Alcotest.fail "expected Total_conflict");
    Alcotest.test_case "escalate rejects kappa0 outside [0,1]" `Quick
      (fun () ->
        let bad k () = ignore (Rule.escalate ~kappa0:k Rule.Quarantine) in
        Alcotest.check_raises "1.5"
          (Invalid_argument "Rule.escalate: kappa0 outside [0,1]")
          (bad 1.5);
        Alcotest.check_raises "-0.1"
          (Invalid_argument "Rule.escalate: kappa0 outside [0,1]")
          (bad (-0.1))) ]

(* --- combine_many, per rule (satellite: the n-ary folds) ------------- *)

let many_suite =
  let raises_invalid f =
    match f () with exception F.Invalid_mass _ -> true | _ -> false
  in
  [ Alcotest.test_case "empty list raises Invalid_mass for every rule"
      `Quick
      (fun () ->
        List.iter
          (fun rule ->
            Alcotest.(check bool)
              (Rule.to_string rule) true
              (raises_invalid (fun () -> F.combine_many ~rule [])))
          rules);
    Alcotest.test_case "singleton is the identity for every rule" `Quick
      (fun () ->
        List.iter
          (fun rule ->
            Alcotest.(check int)
              (Rule.to_string rule) 0
              (F.compare (F.combine_many ~rule [ zadeh_l ]) zadeh_l))
          rules);
    Alcotest.test_case "dempster fold = pairwise combine" `Quick (fun () ->
        let m1, m2 = mass_pair ~omega_floor:0.1 7 in
        let m3 = G.evidence (R.create 8) ~omega_floor:0.1 dom in
        Alcotest.(check int) "3-way" 0
          (F.compare
             (F.combine_many [ m1; m2; m3 ])
             (F.combine (F.combine m1 m2) m3)));
    Alcotest.test_case "yager fold is the (documented) left fold" `Quick
      (fun () ->
        let m1, m2 = mass_pair ~omega_floor:0.1 9 in
        let m3 = G.evidence (R.create 10) ~omega_floor:0.1 dom in
        Alcotest.(check int) "left fold" 0
          (F.compare
             (F.combine_many ~rule:Rule.Yager [ m1; m2; m3 ])
             (F.combine_yager (F.combine_yager m1 m2) m3)));
    Alcotest.test_case "averaging is the uniform 1/n mixture" `Quick
      (fun () ->
        let ca = F.certain dom a3
        and cb = F.certain dom b3
        and cc = F.certain dom c3 in
        let m = F.combine_many ~rule:Rule.Averaging [ ca; cb; cc ] in
        List.iter
          (fun v ->
            Alcotest.(check (float 1e-12))
              "each source weighs 1/3" (1.0 /. 3.0)
              (F.mass m (Dst.Vset.of_list [ v ])))
          [ a3; b3; c3 ];
        (* ...which the pairwise fold would NOT give. *)
        let folded = F.combine_average (F.combine_average ca cb) cc in
        Alcotest.(check bool) "differs from the pairwise fold" false
          (F.equal m folded));
    prop "averaging combine_many: mass(A) = mean of operand masses"
      seed_arb
      (fun s ->
        let rng = R.create s in
        let ms = List.init 4 (fun _ -> G.evidence rng dom) in
        let m = F.combine_many ~rule:Rule.Averaging ms in
        List.for_all
          (fun (a, w) ->
            let mean =
              List.fold_left (fun acc mi -> acc +. F.mass mi a) 0.0 ms /. 4.0
            in
            close w mean)
          (F.focals m)) ]

(* --- Flat kernels, bit-exact per rule over the adversarial corpus ---- *)

let corpus_dom = G.domain ~size:8 "rules-corpus"

let flat_kernel =
  let it = Dst.Interner.create corpus_dom in
  Fm.kernel (fun _frame -> it)

let corpus_pairs =
  (* All adjacent pairs of every scenario group: 20 groups x pairs. *)
  List.concat_map
    (fun (_kind, group) ->
      let rec adj = function
        | m1 :: (m2 :: _ as rest) -> (m1, m2) :: adj rest
        | _ -> []
      in
      adj group)
    (Sc.corpus ~seed:424242 corpus_dom)

let conformance_suite =
  List.map
    (fun rule ->
      Alcotest.test_case
        (Printf.sprintf "flat %s kernel = map kernel over the corpus"
           (Rule.to_string rule))
        `Quick
        (fun () ->
          List.iteri
            (fun i (m1, m2) ->
              let map_r = F.combine_rule_opt ~rule m1 m2 in
              let flat_r = flat_kernel ~rule ~prov:[] m1 m2 in
              Alcotest.(check bool)
                (Printf.sprintf "pair %d bit-exact" i)
                true (exact_opt map_r flat_r))
            corpus_pairs))
    rules

let corpus_shape =
  [ Alcotest.test_case "corpus covers all four scenario kinds" `Quick
      (fun () ->
        let c = Sc.corpus ~seed:1 ~per_kind:3 corpus_dom in
        Alcotest.(check int) "4 kinds x 3" 12 (List.length c);
        List.iter
          (fun kind ->
            Alcotest.(check int)
              (Sc.kind_name kind) 3
              (List.length (List.filter (fun (k, _) -> k = kind) c)))
          Sc.all_kinds);
    Alcotest.test_case "zadeh scenario: the paradox is present" `Quick
      (fun () ->
        let m1, m2 = Sc.pair (R.create 5) Sc.Zadeh corpus_dom in
        Alcotest.(check (float 1e-9)) "kappa" 0.9999 (F.conflict m1 m2);
        match F.combine_opt m1 m2 with
        | Some (m, _) ->
            Alcotest.(check bool)
              "dempster concludes the shared hypothesis with certainty" true
              (F.is_definite m)
        | None -> Alcotest.fail "kappa < 1 here");
    Alcotest.test_case "near-total scenario: defined but fragile" `Quick
      (fun () ->
        let m1, m2 = Sc.pair (R.create 6) Sc.Near_total corpus_dom in
        let k = F.conflict m1 m2 in
        Alcotest.(check bool) "0.9 < kappa < 1" true (k > 0.9 && k < 1.0));
    Alcotest.test_case "group scenarios outnumber the dissenter" `Quick
      (fun () ->
        List.iter
          (fun kind ->
            let g = Sc.group (R.create 7) kind corpus_dom in
            Alcotest.(check bool)
              (Sc.kind_name kind ^ ": at least 3 sources")
              true
              (List.length g >= 3))
          [ Sc.One_against_many; Sc.Dissenter ]) ]

(* --- Rule parsing and keys ------------------------------------------- *)

let parsing_suite =
  [ Alcotest.test_case "of_string inverts to_string" `Quick (fun () ->
        List.iter
          (fun rule ->
            match Rule.of_string (Rule.to_string rule) with
            | Ok r ->
                Alcotest.(check bool) (Rule.to_string rule) true
                  (Rule.equal r rule)
            | Error e -> Alcotest.fail e)
          rules);
    Alcotest.test_case "aliases parse" `Quick (fun () ->
        let ok spec rule =
          match Rule.of_string spec with
          | Ok r -> Alcotest.(check bool) spec true (Rule.equal r rule)
          | Error e -> Alcotest.fail e
        in
        ok "dp" Rule.Dubois_prade;
        ok "dubois_prade" Rule.Dubois_prade;
        ok "average" Rule.Averaging;
        ok "mixing" Rule.Averaging;
        ok "discount"
          (Rule.discount_then_combine Rule.default_discount_alpha);
        ok "Yager" Rule.Yager);
    Alcotest.test_case "unknown rule is a parse error" `Quick (fun () ->
        match Rule.of_string "bogus" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "bogus parsed");
    Alcotest.test_case "fallback_of_string: quarantine and rules" `Quick
      (fun () ->
        (match Rule.fallback_of_string "quarantine" with
        | Ok Rule.Quarantine -> ()
        | _ -> Alcotest.fail "quarantine");
        match Rule.fallback_of_string "yager" with
        | Ok (Rule.Fallback Rule.Yager) -> ()
        | _ -> Alcotest.fail "yager fallback");
    Alcotest.test_case "policy_key separates every distinct policy" `Quick
      (fun () ->
        let policies =
          List.map Rule.make rules
          @ [ policy 0.9 Rule.Quarantine;
              policy 0.9 (Rule.Fallback Rule.Yager);
              policy 0.8 Rule.Quarantine;
              policy ~primary:Rule.Yager 0.9 Rule.Quarantine;
              Rule.make
                ~escalation:
                  (Rule.escalate ~kappa0:0.9 (Rule.Fallback Rule.Yager))
                (Rule.discount_then_combine 0.5) ]
        in
        let keys = List.map Rule.policy_key policies in
        let distinct = List.sort_uniq String.compare keys in
        Alcotest.(check int) "all keys distinct" (List.length policies)
          (List.length distinct));
    Alcotest.test_case "with_policy restores on exception" `Quick (fun () ->
        let before = Rule.current () in
        (try
           Rule.with_policy (Rule.make Rule.Yager) (fun () ->
               failwith "boom")
         with Failure _ -> ());
        Alcotest.(check bool) "restored" true
          (Rule.equal_policy before (Rule.current ()))) ]

let () =
  Alcotest.run "rules"
    [ ("algebra", algebra_suite);
      ("totality", totality_suite);
      ("averaging-nonassoc", averaging_nonassoc);
      ("kappa0-degeneracy", degeneracy_suite);
      ("escalation", escalation_suite);
      ("combine-many", many_suite);
      ("flat-conformance", conformance_suite);
      ("corpus", corpus_shape);
      ("parsing", parsing_suite) ]
