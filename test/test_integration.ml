(* The Figure 1 integration framework: surveys, domain mappings,
   attribute preprocessing, entity identification, tuple merging, and
   the end-to-end pipeline against the paper's data. *)

module V = Dst.Value
module Vs = Dst.Vset
module D = Dst.Domain
module M = Dst.Mass.F
module S = Dst.Support
module Sv = Integration.Survey

let feq = Alcotest.float 1e-9
let sup = Alcotest.testable S.pp S.equal
let ev_t = Alcotest.testable M.pp M.equal

let dishes = D.of_strings "dishes" [ "d1"; "d2"; "d3" ]

(* --- Survey --------------------------------------------------------- *)

let test_survey_paper_tally () =
  (* §1.2: votes d1:3, d2:2, d3:1 -> [d1^0.5; d2^0.33; d3^0.17]. *)
  let t =
    Sv.of_votes dishes
      (List.init 3 (fun _ -> Sv.For (V.string "d1"))
      @ List.init 2 (fun _ -> Sv.For (V.string "d2"))
      @ [ Sv.For (V.string "d3") ])
  in
  Alcotest.(check int) "six votes" 6 (Sv.total t);
  Alcotest.(check int) "three for d1" 3 (Sv.count t (Sv.For (V.string "d1")));
  let e = Sv.to_evidence t in
  Alcotest.check feq "d1" 0.5 (M.mass e (Vs.of_strings [ "d1" ]));
  Alcotest.check feq "d2" (1.0 /. 3.0) (M.mass e (Vs.of_strings [ "d2" ]));
  Alcotest.check feq "d3" (1.0 /. 6.0) (M.mass e (Vs.of_strings [ "d3" ]))

let test_survey_set_votes_and_abstentions () =
  let t =
    Sv.of_votes dishes
      [ Sv.For (V.string "d1");
        Sv.For_any (Vs.of_strings [ "d2"; "d3" ]);
        Sv.Abstain;
        Sv.Abstain ]
  in
  let e = Sv.to_evidence t in
  Alcotest.check feq "set vote" 0.25 (M.mass e (Vs.of_strings [ "d2"; "d3" ]));
  Alcotest.check feq "abstentions to omega" 0.5 (M.mass e (D.values dishes))

let test_survey_consensus () =
  let unanimous =
    Sv.of_votes dishes [ Sv.For (V.string "d1"); Sv.For (V.string "d1"); Sv.Abstain ]
  in
  Alcotest.(check bool) "consensus on d1" true
    (Sv.consensus unanimous = Some (V.string "d1"));
  let split =
    Sv.of_votes dishes [ Sv.For (V.string "d1"); Sv.For (V.string "d2") ]
  in
  Alcotest.(check bool) "no consensus" true (Sv.consensus split = None)

let test_survey_errors () =
  let fails f =
    Alcotest.(check bool)
      "raises Survey_error" true
      (match f () with _ -> false | exception Sv.Survey_error _ -> true)
  in
  fails (fun () -> Sv.cast (Sv.create dishes) (Sv.For (V.string "d99")));
  fails (fun () -> Sv.cast (Sv.create dishes) (Sv.For_any Vs.empty));
  fails (fun () -> Sv.to_evidence (Sv.create dishes))

(* --- Mapping -------------------------------------------------------- *)

let stars = D.of_strings "stars" [ "low"; "mid"; "high" ]

let test_mapping_exact () =
  let m =
    Integration.Mapping.exact stars (fun v ->
        match v with
        | V.Int n when n <= 2 -> V.string "low"
        | V.Int n when n <= 4 -> V.string "mid"
        | _ -> V.string "high")
  in
  let e = Integration.Mapping.apply m (V.int 3) in
  Alcotest.(check bool) "definite image" true (M.is_definite e);
  Alcotest.check feq "mid" 1.0 (M.mass e (Vs.of_strings [ "mid" ]))

let test_mapping_ambiguous () =
  (* A DeMichiel partial value: "B+" maps to mid-or-high. *)
  let m =
    Integration.Mapping.ambiguous stars (fun v ->
        if V.equal v (V.string "B+") then Vs.of_strings [ "mid"; "high" ]
        else Vs.empty)
  in
  let e = Integration.Mapping.apply m (V.string "B+") in
  Alcotest.check feq "categorical evidence on the image set" 1.0
    (M.mass e (Vs.of_strings [ "mid"; "high" ]));
  Alcotest.(check bool)
    "unmapped raises" true
    (match Integration.Mapping.apply m (V.string "zzz") with
    | _ -> false
    | exception Integration.Mapping.Unmapped _ -> true)

let test_mapping_weighted () =
  let m =
    Integration.Mapping.weighted stars (fun _ ->
        [ (Vs.of_strings [ "mid" ], 3.0); (Vs.of_strings [ "high" ], 1.0) ])
  in
  let e = Integration.Mapping.apply m (V.int 1) in
  Alcotest.check feq "weights normalize 3:1" 0.75
    (M.mass e (Vs.of_strings [ "mid" ]))

let test_mapping_table () =
  let m =
    Integration.Mapping.table stars
      [ (V.string "ok", [ (Vs.of_strings [ "mid" ], 1.0) ]) ]
  in
  Alcotest.check feq "table hit" 1.0
    (M.mass (Integration.Mapping.apply m (V.string "ok")) (Vs.of_strings [ "mid" ]));
  Alcotest.(check bool)
    "table miss raises" true
    (match Integration.Mapping.apply m (V.string "??") with
    | _ -> false
    | exception Integration.Mapping.Unmapped _ -> true);
  let lenient =
    Integration.Mapping.table ~default_to_omega:true stars
      [ (V.string "ok", [ (Vs.of_strings [ "mid" ], 1.0) ]) ]
  in
  Alcotest.(check bool)
    "lenient miss is ignorance" true
    (M.is_vacuous (Integration.Mapping.apply lenient (V.string "??")))

let test_mapping_identity_and_compose () =
  let id = Integration.Mapping.identity stars in
  Alcotest.check ev_t "identity passes through"
    (M.certain stars (V.string "mid"))
    (Integration.Mapping.apply id (V.string "mid"));
  (* grades -> {low,mid,high} -> coarse {bad,good} *)
  let coarse = D.of_strings "coarse" [ "bad"; "good" ] in
  let f =
    Integration.Mapping.exact coarse (fun v ->
        if V.equal v (V.string "low") then V.string "bad" else V.string "good")
  in
  let g =
    Integration.Mapping.ambiguous stars (fun v ->
        match v with
        | V.Int 1 -> Vs.of_strings [ "low" ]
        | V.Int 2 -> Vs.of_strings [ "low"; "mid" ]
        | _ -> Vs.of_strings [ "high" ])
  in
  let fg = Integration.Mapping.compose f g in
  Alcotest.check feq "1 -> low -> bad" 1.0
    (M.mass (Integration.Mapping.apply fg (V.int 1)) (Vs.of_strings [ "bad" ]));
  Alcotest.check feq "2 -> {low,mid} -> {bad,good}" 1.0
    (M.mass
       (Integration.Mapping.apply fg (V.int 2))
       (Vs.of_strings [ "bad"; "good" ]))

(* --- Preprocess ----------------------------------------------------- *)

let raw_schema =
  Erm.Schema.make ~name:"raw"
    ~key:[ Erm.Attr.definite "id" "string" ]
    ~nonkey:
      [ Erm.Attr.definite "city" "string"; Erm.Attr.definite "grade" "int" ]

let raw =
  Erm.Relation.of_tuples raw_schema
    [ Erm.Etuple.make raw_schema ~key:[ V.string "a" ]
        ~cells:
          [ Erm.Etuple.Definite (V.string "oslo");
            Erm.Etuple.Definite (V.int 2) ]
        ~tm:S.certain;
      Erm.Etuple.make raw_schema ~key:[ V.string "b" ]
        ~cells:
          [ Erm.Etuple.Definite (V.string "bergen");
            Erm.Etuple.Definite (V.int 5) ]
        ~tm:S.certain ]

let target_schema =
  Erm.Schema.make ~name:"virtual"
    ~key:[ Erm.Attr.definite "id" "string" ]
    ~nonkey:
      [ Erm.Attr.definite "city" "string"; Erm.Attr.evidential "stars" stars ]

let grade_mapping =
  Integration.Mapping.ambiguous stars (fun v ->
      match v with
      | V.Int n when n <= 2 -> Vs.of_strings [ "low"; "mid" ]
      | _ -> Vs.of_strings [ "high" ])

let spec =
  { Integration.Preprocess.target = target_schema;
    rules =
      [ ("city", Integration.Preprocess.Copy "city");
        ("stars", Integration.Preprocess.Mapped ("grade", grade_mapping)) ];
    membership = (fun _ -> S.make ~sn:0.9 ~sp:1.0) }

let test_preprocess_run () =
  let out = Integration.Preprocess.run spec raw in
  Alcotest.(check int) "all tuples preprocessed" 2 (Erm.Relation.cardinal out);
  let a = Erm.Relation.find out [ V.string "a" ] in
  Alcotest.check feq "grade 2 -> {low,mid}" 1.0
    (M.mass
       (Erm.Etuple.evidence target_schema a "stars")
       (Vs.of_strings [ "low"; "mid" ]));
  Alcotest.check sup "membership from the spec" (S.make ~sn:0.9 ~sp:1.0)
    (Erm.Etuple.tm a);
  Alcotest.check (Alcotest.testable V.pp V.equal) "city copied"
    (V.string "oslo")
    (Erm.Etuple.definite_value target_schema a "city")

let test_preprocess_errors () =
  let fails spec' =
    Alcotest.(check bool)
      "raises Preprocess_error" true
      (match Integration.Preprocess.run spec' raw with
      | _ -> false
      | exception Integration.Preprocess.Preprocess_error _ -> true)
  in
  fails { spec with rules = List.tl spec.rules } (* missing rule *);
  fails
    { spec with
      rules = ("bogus", Integration.Preprocess.Copy "city") :: spec.rules };
  fails
    { spec with
      rules =
        [ ("city", Integration.Preprocess.Copy "nope");
          List.nth spec.rules 1 ] }

let test_preprocess_survey_rule () =
  let votes = function
    | [ V.String "a" ] ->
        Sv.of_votes stars [ Sv.For (V.string "low"); Sv.For (V.string "mid") ]
    | _ -> Sv.of_votes stars [ Sv.For (V.string "high") ]
  in
  let spec' =
    { spec with
      rules =
        [ ("city", Integration.Preprocess.Copy "city");
          ("stars", Integration.Preprocess.From_survey votes) ] }
  in
  let out = Integration.Preprocess.run spec' raw in
  let a = Erm.Relation.find out [ V.string "a" ] in
  Alcotest.check feq "survey consolidated" 0.5
    (M.mass (Erm.Etuple.evidence target_schema a "stars")
       (Vs.of_strings [ "low" ]))

(* --- Entity identification ------------------------------------------ *)

let test_entity_id_by_key () =
  let m = Integration.Entity_id.by_key Paperdata.r_a Paperdata.r_b in
  Alcotest.(check int) "five matches" 5 (List.length m.matched);
  Alcotest.(check int) "ashiana only in A" 1 (List.length m.only_left);
  Alcotest.(check int) "nothing only in B" 0 (List.length m.only_right)

let witness_schema =
  Erm.Schema.make ~name:"w"
    ~key:[ Erm.Attr.definite "id" "string" ]
    ~nonkey:
      [ Erm.Attr.definite "phone" "string";
        Erm.Attr.definite "street" "string" ]

let w_tuple id phone street =
  Erm.Etuple.make witness_schema ~key:[ V.string id ]
    ~cells:
      [ Erm.Etuple.Definite (V.string phone);
        Erm.Etuple.Definite (V.string street) ]
    ~tm:S.certain

let witnesses =
  [ Integration.Entity_id.exact_witness ~reliability:0.9 "phone";
    Integration.Entity_id.exact_witness ~reliability:0.5 "street" ]

let test_match_support () =
  let a = w_tuple "x1" "555" "main" in
  let b = w_tuple "y1" "555" "main" in
  let s_agree =
    Integration.Entity_id.match_support witness_schema witnesses a b
  in
  (* Two agreeing simple supports: sn = 1 - (1-.9)(1-.5) = 0.95. *)
  Alcotest.check feq "agreement combines" 0.95 (S.sn s_agree);
  let c = w_tuple "y2" "666" "main" in
  let s_mixed =
    Integration.Entity_id.match_support witness_schema witnesses a c
  in
  Alcotest.(check bool) "disagreement lowers support" true
    (S.sn s_mixed < 0.5)

let test_by_similarity () =
  let left =
    Erm.Relation.of_tuples witness_schema
      [ w_tuple "a1" "555" "main"; w_tuple "a2" "777" "oak" ]
  in
  let right =
    Erm.Relation.of_tuples witness_schema
      [ w_tuple "b1" "555" "main"; w_tuple "b2" "888" "elm" ]
  in
  let m =
    Integration.Entity_id.by_similarity ~threshold:0.9 ~witnesses left right
  in
  Alcotest.(check int) "a1-b1 matched" 1 (List.length m.matched);
  Alcotest.(check int) "a2 unmatched" 1 (List.length m.only_left);
  Alcotest.(check int) "b2 unmatched" 1 (List.length m.only_right)

let test_levenshtein () =
  let module E = Integration.Entity_id in
  Alcotest.(check int) "identical" 0 (E.levenshtein "kitten" "kitten");
  Alcotest.(check int) "classic kitten/sitting" 3
    (E.levenshtein "kitten" "sitting");
  Alcotest.(check int) "empty vs word" 4 (E.levenshtein "" "word");
  Alcotest.(check int) "single substitution" 1
    (E.levenshtein "371-2155" "371-2156")

let test_fuzzy_witness () =
  let module E = Integration.Entity_id in
  (* One digit of the phone differs; a fuzzy witness still supports the
     match (scaled), an exact witness speaks against it. *)
  let a = w_tuple "x" "371-2155" "main" in
  let b = w_tuple "y" "371-2156" "main" in
  let fuzzy =
    [ E.fuzzy_witness ~reliability:0.9 "phone";
      E.exact_witness ~reliability:0.5 "street" ]
  in
  let exact =
    [ E.exact_witness ~reliability:0.9 "phone";
      E.exact_witness ~reliability:0.5 "street" ]
  in
  let s_fuzzy = E.match_support witness_schema fuzzy a b in
  let s_exact = E.match_support witness_schema exact a b in
  Alcotest.(check bool) "fuzzy supports the match" true
    (S.sn s_fuzzy > 0.8);
  Alcotest.(check bool) "exact is much weaker" true
    (S.sn s_exact < S.sn s_fuzzy -. 0.3);
  (* Far-apart strings fall below the floor and count as disagreement. *)
  let c = w_tuple "z" "999-0000" "main" in
  let s_far = E.match_support witness_schema fuzzy a c in
  Alcotest.(check bool) "distant strings disagree" true
    (S.sn s_far < 0.5)

(* --- Merge and pipeline --------------------------------------------- *)

let test_merge_by_key_paper () =
  let report = Integration.Merge.by_key Paperdata.r_a Paperdata.r_b in
  Alcotest.(check bool) "integrated = Table 4" true
    (Erm.Relation.equal report.integrated Paperdata.table4);
  Alcotest.(check int) "five merged" 5 report.merged_count;
  Alcotest.(check int) "one left-only" 1 report.left_only;
  Alcotest.(check int) "no conflicts" 0 (List.length report.conflicts)

let test_merge_of_matching_rekeys () =
  let left = Erm.Relation.of_tuples witness_schema [ w_tuple "a1" "555" "main" ] in
  let right = Erm.Relation.of_tuples witness_schema [ w_tuple "b1" "555" "main" ] in
  let matching =
    Integration.Entity_id.by_similarity ~threshold:0.9 ~witnesses left right
  in
  let report = Integration.Merge.of_matching witness_schema matching in
  Alcotest.(check int) "one merged tuple" 1
    (Erm.Relation.cardinal report.integrated);
  Alcotest.(check bool) "under the left key" true
    (Erm.Relation.mem report.integrated [ V.string "a1" ])

let test_pipeline_end_to_end () =
  (* Raw relations with survey-derived stars, preprocessed and merged. *)
  let raw_b_schema = Erm.Schema.rename_relation "raw_b" raw_schema in
  let raw_b =
    Erm.Relation.of_tuples raw_b_schema
      [ Erm.Etuple.make raw_b_schema ~key:[ V.string "a" ]
          ~cells:
            [ Erm.Etuple.Definite (V.string "oslo");
              Erm.Etuple.Definite (V.int 4) ]
          ~tm:S.certain ]
  in
  let source_a = { Integration.Pipeline.relation = raw; spec } in
  let source_b =
    { Integration.Pipeline.relation = raw_b;
      spec = { spec with membership = (fun _ -> S.certain) } }
  in
  let report = Integration.Pipeline.integrate source_a source_b in
  (* a: {low,mid} ⊕ {high} = total conflict -> reported, tuple dropped;
     only b survives. *)
  Alcotest.(check int) "b passes through, a dropped" 1
    (Erm.Relation.cardinal report.integrated);
  Alcotest.(check int) "conflict reported" 1 (List.length report.conflicts);
  let answers =
    Integration.Pipeline.query report
      ~threshold:(Erm.Threshold.sn_gt 0.5)
      (Erm.Predicate.is_values "stars" [ "high" ])
  in
  Alcotest.(check int) "query over the merge" 1 (Erm.Relation.cardinal answers)

(* --- multi-source integration ---------------------------------------- *)

let test_multi_two_sources_match_union () =
  let report =
    Integration.Multi.integrate
      [ { Integration.Multi.source_name = "a"; source_relation = Paperdata.r_a };
        { Integration.Multi.source_name = "b"; source_relation = Paperdata.r_b } ]
  in
  Alcotest.(check bool) "two-source fold = Table 4" true
    (Erm.Relation.equal report.integrated Paperdata.table4);
  Alcotest.(check int) "one matrix entry" 1
    (List.length report.conflict_matrix);
  Alcotest.(check bool) "undiscounted reliabilities are 1" true
    (List.for_all (fun (_, a) -> a = 1.0) report.reliabilities)

let test_multi_three_sources_order_independent () =
  let rng = Workload.Rng.create 99 in
  let schema3 = Workload.Gen.schema "tri" in
  let a, b = Workload.Gen.source_pair rng ~size:10 ~overlap:0.6 schema3 in
  let c = Workload.Gen.reobserve (Workload.Rng.create 7) a in
  let src n r = { Integration.Multi.source_name = n; source_relation = r } in
  let fwd = Integration.Multi.integrate [ src "a" a; src "b" b; src "c" c ] in
  let rev = Integration.Multi.integrate [ src "c" c; src "b" b; src "a" a ] in
  Alcotest.(check bool) "order-independent result" true
    (Erm.Relation.equal fwd.integrated rev.integrated);
  Alcotest.(check int) "three pairwise kappas" 3
    (List.length fwd.conflict_matrix)

let test_multi_discounted_keeps_conflicting_tuple () =
  let schema1 =
    Erm.Schema.make ~name:"s"
      ~key:[ Erm.Attr.definite "k" "string" ]
      ~nonkey:[ Erm.Attr.evidential "c" stars ]
  in
  let mk name ev =
    ( name,
      Erm.Relation.of_tuples schema1
        [ Erm.Etuple.make schema1
            ~key:[ V.string "x" ]
            ~cells:[ Erm.Etuple.Evidence (Dst.Evidence.of_string stars ev) ]
            ~tm:S.certain ] )
  in
  (* Total contradiction would estimate reliability 0 for both sources
     (α-discounting then erases them — the right degenerate behaviour);
     heavy-but-partial conflict is the interesting case. *)
  let _, low = mk "low" "[low^1]" in
  let _, high = mk "high" "[high^0.9; ~^0.1]" in
  let src n r = { Integration.Multi.source_name = n; source_relation = r } in
  let plain = Integration.Multi.integrate [ src "low" low; src "high" high ] in
  Alcotest.(check int) "plain integration keeps it via the omega sliver" 1
    (Erm.Relation.cardinal plain.integrated);
  (* Plain Dempster normalizes the 0.9 conflict away and ends up certain
     of "low" — overconfident. Discounting keeps the tuple but hedged. *)
  let plain_cell =
    Erm.Etuple.evidence schema1
      (Erm.Relation.find plain.integrated [ V.string "x" ])
      "c"
  in
  Alcotest.(check bool) "plain result is (over)certain" true
    (M.is_definite plain_cell);
  let soft =
    Integration.Multi.integrate ~discount:true
      [ src "low" low; src "high" high ]
  in
  Alcotest.(check int) "discounted integration keeps it too" 1
    (Erm.Relation.cardinal soft.integrated);
  Alcotest.(check bool) "reliabilities dropped below 1" true
    (List.for_all (fun (_, a) -> a < 1.0) soft.reliabilities);
  let soft_cell =
    Erm.Etuple.evidence schema1
      (Erm.Relation.find soft.integrated [ V.string "x" ])
      "c"
  in
  Alcotest.(check bool) "discounted result keeps ignorance" true
    (M.mass soft_cell (D.values stars) > 0.1)

let test_multi_no_sources () =
  Alcotest.check_raises "empty list" Integration.Multi.No_sources (fun () ->
      ignore (Integration.Multi.integrate []))

(* --- Multi / Reliability edge cases ---------------------------------- *)

let edge_schema =
  Erm.Schema.make ~name:"edge"
    ~key:[ Erm.Attr.definite "k" "string" ]
    ~nonkey:[ Erm.Attr.evidential "c" stars ]

let edge_tup ?(tm = S.certain) k ev =
  Erm.Etuple.make edge_schema
    ~key:[ V.string k ]
    ~cells:[ Erm.Etuple.Evidence (Dst.Evidence.of_string stars ev) ]
    ~tm

let edge_src n tuples =
  { Integration.Multi.source_name = n;
    source_relation = Erm.Relation.of_tuples edge_schema tuples }

let test_multi_single_source () =
  let r = Erm.Relation.of_tuples edge_schema [ edge_tup "x" "[low^1]" ] in
  let report =
    Integration.Multi.integrate ~discount:true
      [ { Integration.Multi.source_name = "solo"; source_relation = r } ]
  in
  Alcotest.(check bool) "integrated is the source itself" true
    (Erm.Relation.equal report.integrated r);
  Alcotest.(check int) "no pairs, no matrix" 0
    (List.length report.conflict_matrix);
  Alcotest.check feq "no peers means full trust" 1.0
    (List.assoc "solo" report.reliabilities)

let test_multi_empty_relations () =
  let report =
    Integration.Multi.integrate ~discount:true
      [ edge_src "ea" []; edge_src "eb" [] ]
  in
  Alcotest.(check int) "empty in, empty out" 0
    (Erm.Relation.cardinal report.integrated);
  Alcotest.(check int) "no conflicts" 0 (List.length report.conflicts);
  (* No key-matched pairs to compare: assess has no ground to distrust. *)
  List.iter
    (fun (_, a) -> Alcotest.check feq "reliability stays 1" 1.0 a)
    report.reliabilities;
  let a = Integration.Reliability.assess (Erm.Relation.empty edge_schema)
      (Erm.Relation.empty edge_schema) in
  Alcotest.(check int) "nothing compared" 0 a.Integration.Reliability.pairs_compared;
  Alcotest.check feq "vacuous assessment is trusted" 1.0
    (Integration.Reliability.reliability_of_assessment a)

let test_multi_all_conflicting () =
  (* Certain, disjoint evidence on every shared key: mean κ = 1, so each
     source estimates reliability 0 and α-discounting erases both — the
     sn = 0 tuples are dropped by closure, not stored. *)
  let low = edge_src "low" [ edge_tup "x" "[low^1]" ] in
  let high = edge_src "high" [ edge_tup "x" "[high^1]" ] in
  let a =
    Integration.Reliability.assess low.Integration.Multi.source_relation
      high.Integration.Multi.source_relation
  in
  Alcotest.check feq "mean kappa is 1" 1.0 a.Integration.Reliability.mean_conflict;
  Alcotest.check feq "reliability collapses to 0" 0.0
    (Integration.Reliability.reliability_of_assessment a);
  let report = Integration.Multi.integrate ~discount:true [ low; high ] in
  List.iter
    (fun (_, alpha) -> Alcotest.check feq "alpha 0" 0.0 alpha)
    report.reliabilities;
  Alcotest.(check int) "total distrust erases the federation" 0
    (Erm.Relation.cardinal report.integrated);
  Alcotest.(check bool) "closure still holds (vacuously)" true
    (Erm.Relation.satisfies_cwa report.integrated);
  (* An alpha floor keeps the tuple, maximally hedged but present. *)
  let floored =
    Integration.Multi.integrate ~discount:true ~alpha_floor:0.05 [ low; high ]
  in
  Alcotest.(check int) "floored run keeps the entity" 1
    (Erm.Relation.cardinal floored.integrated);
  Alcotest.(check bool) "and satisfies closure non-vacuously" true
    (Erm.Relation.satisfies_cwa floored.integrated)

let test_discount_boundaries () =
  let r =
    Erm.Relation.of_tuples edge_schema
      [ edge_tup ~tm:(S.make ~sn:0.4 ~sp:0.9) "x" "[low^0.7; ~^0.3]" ]
  in
  Alcotest.(check bool) "alpha 1 is the identity" true
    (Erm.Relation.equal (Integration.Reliability.discount_relation 1.0 r) r);
  let vacuous = Integration.Reliability.discount_relation 0.0 r in
  Alcotest.(check int) "alpha 0 discounts membership to sn 0, closure drops all"
    0
    (Erm.Relation.cardinal vacuous);
  let half = Integration.Reliability.discount_relation 0.5 r in
  let t = Erm.Relation.find half [ V.string "x" ] in
  Alcotest.check feq "sn scales by alpha" 0.2 (S.sn (Erm.Etuple.tm t));
  Alcotest.check feq "sp moves toward full plausibility" 0.95
    (S.sp (Erm.Etuple.tm t));
  let invalid a () = ignore (Integration.Reliability.discount_relation a r) in
  Alcotest.check_raises "negative alpha rejected"
    (Invalid_argument "Reliability.discount_relation: alpha outside [0,1]")
    (invalid (-0.1));
  Alcotest.check_raises "alpha above 1 rejected"
    (Invalid_argument "Reliability.discount_relation: alpha outside [0,1]")
    (invalid 1.1)

let test_multi_prior_validation () =
  let low = edge_src "low" [ edge_tup "x" "[low^1]" ] in
  let high = edge_src "high" [ edge_tup "x" "[high^0.5; ~^0.5]" ] in
  let report =
    Integration.Multi.integrate ~prior:[ ("low", 0.5) ] [ low; high ]
  in
  Alcotest.check feq "prior flows into the reported reliability" 0.5
    (List.assoc "low" report.reliabilities);
  Alcotest.check feq "unlisted sources default to 1" 1.0
    (List.assoc "high" report.reliabilities);
  Alcotest.check_raises "prior outside [0,1]"
    (Invalid_argument "Multi.integrate: prior for low outside [0,1]")
    (fun () ->
      ignore (Integration.Multi.integrate ~prior:[ ("low", 1.5) ] [ low; high ]));
  Alcotest.check_raises "floor outside [0,1]"
    (Invalid_argument "Multi.integrate: alpha_floor outside [0,1]")
    (fun () ->
      ignore (Integration.Multi.integrate ~alpha_floor:(-1.0) [ low; high ]))

let () =
  Alcotest.run "integration"
    [ ( "survey",
        [ Alcotest.test_case "paper tally" `Quick test_survey_paper_tally;
          Alcotest.test_case "set votes and abstentions" `Quick
            test_survey_set_votes_and_abstentions;
          Alcotest.test_case "consensus" `Quick test_survey_consensus;
          Alcotest.test_case "errors" `Quick test_survey_errors ] );
      ( "mapping",
        [ Alcotest.test_case "exact" `Quick test_mapping_exact;
          Alcotest.test_case "ambiguous" `Quick test_mapping_ambiguous;
          Alcotest.test_case "weighted" `Quick test_mapping_weighted;
          Alcotest.test_case "table" `Quick test_mapping_table;
          Alcotest.test_case "identity and compose" `Quick
            test_mapping_identity_and_compose ] );
      ( "preprocess",
        [ Alcotest.test_case "run" `Quick test_preprocess_run;
          Alcotest.test_case "errors" `Quick test_preprocess_errors;
          Alcotest.test_case "survey rule" `Quick test_preprocess_survey_rule
        ] );
      ( "entity-id",
        [ Alcotest.test_case "by key (paper data)" `Quick
            test_entity_id_by_key;
          Alcotest.test_case "match support" `Quick test_match_support;
          Alcotest.test_case "by similarity" `Quick test_by_similarity;
          Alcotest.test_case "levenshtein" `Quick test_levenshtein;
          Alcotest.test_case "fuzzy witnesses" `Quick test_fuzzy_witness ] );
      ( "merge-pipeline",
        [ Alcotest.test_case "merge reproduces Table 4" `Quick
            test_merge_by_key_paper;
          Alcotest.test_case "similarity merge rekeys" `Quick
            test_merge_of_matching_rekeys;
          Alcotest.test_case "pipeline end to end" `Quick
            test_pipeline_end_to_end ] );
      ( "multi",
        [ Alcotest.test_case "two sources = Table 4" `Quick
            test_multi_two_sources_match_union;
          Alcotest.test_case "order independence" `Quick
            test_multi_three_sources_order_independent;
          Alcotest.test_case "discounting keeps conflicting tuples" `Quick
            test_multi_discounted_keeps_conflicting_tuple;
          Alcotest.test_case "no sources" `Quick test_multi_no_sources ] );
      ( "multi-edges",
        [ Alcotest.test_case "single source" `Quick test_multi_single_source;
          Alcotest.test_case "empty relations" `Quick
            test_multi_empty_relations;
          Alcotest.test_case "all-conflicting sources" `Quick
            test_multi_all_conflicting;
          Alcotest.test_case "discount boundaries" `Quick
            test_discount_boundaries;
          Alcotest.test_case "prior and floor validation" `Quick
            test_multi_prior_validation ] ) ]
