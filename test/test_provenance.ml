(* Lineage DAG invariants (qcheck + unit):

   - every derivation recorded during multi-source integration bottoms
     out in Source leaves — the stored tuples of the federated inputs;
   - the κ stored on a Dempster combination node equals
     Dst.Measures.conflict recomputed on the operands, bit-exactly;
   - a Combine_cache hit adds no nodes within one arena lifetime and,
     across arenas (warm cache, fresh store), reconstructs a lineage
     structurally identical to the cold derivation;
   - the physical planner attaches the same evidence lineage as naive
     evaluation (value-digest keyed, so plan rewrites cannot hide);
   - the DOT and JSON exporters agree on node/edge counts and the DOT
     text is structurally well-formed (checked without a dot binary).

   Seeds: qcheck honours QCHECK_SEED, which CI pins. *)

module M = Dst.Mass.F
module P = Obs.Provenance
module W = Obs.Why
module R = Workload.Rng
module G = Workload.Gen
module Q = Workload.Qgen

let prop ?(count = 150) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

let seed_arb = QCheck.int_range 0 1_000_000
let dom8 = G.domain ~size:8 "d"

let gen_evidence seed =
  G.evidence (R.create seed) ~focals:4 ~max_focal_size:3 dom8

let schema = G.schema "prov"

(* The hooks consult the process-wide default store, so properties flip
   it — and restore it whatever happens. *)
let with_provenance f =
  P.reset ();
  P.enable ();
  Fun.protect
    ~finally:(fun () ->
      P.disable ();
      P.reset ())
    f

(* --- leaves are sources ---------------------------------------------- *)

let derivation_roots t =
  (match P.find (Erm.Lineage.tm_digest t) with
  | Some id -> [ id ]
  | None -> [])
  @ List.filter_map
      (function
        | Erm.Etuple.Evidence e -> P.find (M.digest e)
        | Erm.Etuple.Definite _ -> None)
      (Erm.Etuple.cells t)

let all_leaves_are_sources id =
  List.for_all (fun (n : P.node) -> n.P.kind = P.Source) (P.leaves id)

let leaf_props =
  [ prop "integration lineage bottoms out in stored source tuples"
      ~count:75 seed_arb
      (fun s ->
        with_provenance (fun () ->
          let ra, rb =
            G.source_pair (R.create s) ~size:10 ~overlap:0.6 schema
          in
          let rc = G.reobserve (R.create (s + 17)) ra in
          let report =
            Integration.Multi.integrate
              [ { Integration.Multi.source_name = "ra";
                  source_relation = ra };
                { Integration.Multi.source_name = "rb";
                  source_relation = rb };
                { Integration.Multi.source_name = "rc";
                  source_relation = rc } ]
          in
          Erm.Relation.tuples report.Integration.Multi.integrated
          |> List.for_all (fun t ->
                 let roots = derivation_roots t in
                 roots <> [] && List.for_all all_leaves_are_sources roots)))
  ]

(* --- recorded kappa -------------------------------------------------- *)

let kappa_props =
  [ prop "recorded kappa equals Measures.conflict recomputed" seed_arb
      (fun s ->
        with_provenance (fun () ->
          let a = gen_evidence s and b = gen_evidence (s + 1) in
          match M.combine_opt a b with
          | None -> true
          | Some (_, k) ->
              (* record_combine appends the Combine node last *)
              let n = P.node (P.count () - 1) in
              n.P.kind = P.Combine
              && n.P.kappa = Some k
              && Float.equal k (Dst.Measures.conflict a b))) ]

(* --- cache-hit lineage ----------------------------------------------- *)

let cache_props =
  [ prop "within one arena a cache hit adds nothing and keeps the node"
      seed_arb
      (fun s ->
        with_provenance (fun () ->
          let a = gen_evidence s and b = gen_evidence (s + 1) in
          let cache = Dst.Combine_cache.create () in
          let m1 = Dst.Combine_cache.combine cache a b in
          let id1 = P.find (M.digest m1) in
          let before = P.count () in
          let m2 = Dst.Combine_cache.combine cache a b in
          let id2 = P.find (M.digest m2) in
          Option.is_some id1 && id1 = id2 && P.count () = before));
    prop "warm-cache lineage is identical to the cold derivation" seed_arb
      (fun s ->
        let a = gen_evidence s and b = gen_evidence (s + 1) in
        let cache = Dst.Combine_cache.create () in
        let leg () =
          with_provenance (fun () ->
            let m = Dst.Combine_cache.combine cache a b in
            match P.find (M.digest m) with
            | Some id -> Some (W.tree id)
            | None -> None)
        in
        let cold = leg () in
        (* same pair again: the cache is warm but the arena is fresh *)
        let warm = leg () in
        match (cold, warm) with
        | Some t1, Some t2 -> W.equal t1 t2
        | _ -> false) ]

(* --- policy-keyed cache ---------------------------------------------- *)

(* The cache key includes Rule.policy_key: the same operand pair under a
   different rule or κ-threshold is a different entry, never a cross-rule
   hit — and for every policy the warm-hit lineage (relink) must be
   indistinguishable from the cold derivation. *)

let policies_under_test =
  List.map Dst.Rule.make
    (Dst.Rule.all
    @ [ Dst.Rule.discount_then_combine 0.9;
        Dst.Rule.discount_then_combine 0.5 ])
  @ [ Dst.Rule.make
        ~escalation:
          (Dst.Rule.escalate ~kappa0:0.0 (Dst.Rule.Fallback Dst.Rule.Yager))
        Dst.Rule.Dempster ]

let outcome_equal o1 o2 =
  match (o1, o2) with
  | ( M.Combined { result = r1; kappa = k1; rule = u1; escalated = e1 },
      M.Combined { result = r2; kappa = k2; rule = u2; escalated = e2 } ) ->
      M.compare r1 r2 = 0 && Float.equal k1 k2 && Dst.Rule.equal u1 u2
      && e1 = e2
  | M.Quarantined { kappa = k1 }, M.Quarantined { kappa = k2 } ->
      Float.equal k1 k2
  | M.Conflicted, M.Conflicted -> true
  | _ -> false

let rule_cache_props =
  [ prop "a hit never crosses policies; within one it always hits"
      seed_arb
      (fun s ->
        let a = gen_evidence s and b = gen_evidence (s + 1) in
        let cache = Dst.Combine_cache.create () in
        List.for_all
          (fun policy ->
            (* The pair is already cached under every previous policy;
               this policy must still start with a miss. *)
            let misses = Dst.Combine_cache.misses cache in
            let hits = Dst.Combine_cache.hits cache in
            let o1 = Dst.Combine_cache.combine_policy ~policy cache a b in
            let o2 = Dst.Combine_cache.combine_policy ~policy cache a b in
            Dst.Combine_cache.misses cache = misses + 1
            && Dst.Combine_cache.hits cache = hits + 1
            && outcome_equal o1 o2
            && outcome_equal o1 (M.combine_policy ~policy a b))
          policies_under_test);
    prop "warm-hit lineage = cold derivation for every policy" ~count:50
      seed_arb
      (fun s ->
        let a = gen_evidence s and b = gen_evidence (s + 1) in
        List.for_all
          (fun policy ->
            let cache = Dst.Combine_cache.create () in
            let leg () =
              with_provenance (fun () ->
                match
                  Dst.Combine_cache.combine_policy ~policy cache a b
                with
                | M.Combined { result; _ } -> (
                    match P.find (M.digest result) with
                    | Some id -> Some (W.tree id)
                    | None -> None)
                | M.Quarantined _ | M.Conflicted -> None)
            in
            let cold = leg () in
            (* warm cache, fresh arena: the hit path relinks *)
            let warm = leg () in
            match (cold, warm) with
            | Some t1, Some t2 -> W.equal t1 t2
            | _ -> false)
          policies_under_test) ]

(* --- plan invariance ------------------------------------------------- *)

let ctx = Query.Physical.create_ctx ()

module Smap = Map.Make (String)

let evidence_lineage r =
  Erm.Relation.tuples r
  |> List.fold_left
       (fun acc t ->
         List.fold_left
           (fun acc c ->
             match c with
             | Erm.Etuple.Evidence e -> (
                 let d = M.digest e in
                 match P.find d with
                 | Some id -> Smap.add d (W.tree id) acc
                 | None -> acc)
             | Erm.Etuple.Definite _ -> acc)
           acc (Erm.Etuple.cells t))
       Smap.empty

let plan_props =
  [ prop "physical evidence lineage = naive evidence lineage" ~count:100
      seed_arb
      (fun s ->
        let env = Q.env (R.create s) () in
        let q = Q.query (R.create (s + 7919)) env in
        let naive =
          with_provenance (fun () ->
            evidence_lineage (Query.Eval.eval env q))
        in
        let physical =
          with_provenance (fun () ->
            evidence_lineage (Query.Physical.eval_fast ~ctx env q))
        in
        Smap.equal W.equal naive physical) ]

(* --- exporter agreement ---------------------------------------------- *)

let count_substr hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i acc =
    if i + nn > nh then acc
    else if String.equal (String.sub hay i nn) needle then
      go (i + nn) (acc + 1)
    else go (i + 1) acc
  in
  if nn = 0 then 0 else go 0 0

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let record_fixture () =
  let ra, rb = G.source_pair (R.create 42) ~size:8 ~overlap:0.5 schema in
  Erm.Lineage.register_relation ~name:"ra" ra;
  Erm.Lineage.register_relation ~name:"rb" rb;
  ignore (Erm.Ops.union ra rb)

let test_export_counts () =
  with_provenance (fun () ->
    record_fixture ();
    let nodes = P.count () in
    let edges =
      List.fold_left
        (fun acc (n : P.node) -> acc + Array.length n.P.inputs)
        0 (P.nodes ())
    in
    Alcotest.(check bool) "fixture recorded nodes" true (nodes > 0);
    Alcotest.(check bool) "fixture recorded edges" true (edges > 0);
    let json = Obs.Export.provenance_json () in
    let dot = Obs.Export.provenance_dot () in
    Alcotest.(check int) "json node count" nodes
      (count_substr json "\"kind\":");
    let json_edges =
      (* "edges":[[0,2],[1,2]]: one inner '[' per edge *)
      match String.index_opt json ']' with
      | _ -> (
          let marker = "\"edges\":" in
          match count_substr json marker with
          | 1 ->
              let at =
                let rec find i =
                  if
                    String.equal
                      (String.sub json i (String.length marker))
                      marker
                  then i
                  else find (i + 1)
                in
                find 0
              in
              let tail =
                String.sub json at (String.length json - at)
              in
              count_substr tail "[" - 1
          | _ -> -1)
    in
    Alcotest.(check int) "json edge count" edges json_edges;
    Alcotest.(check int) "dot node count" nodes (count_substr dot "[shape=");
    Alcotest.(check int) "dot edge count" edges (count_substr dot " -> "))

let test_dot_structure () =
  with_provenance (fun () ->
    record_fixture ();
    let dot = Obs.Export.provenance_dot () in
    let lines =
      String.split_on_char '\n' dot |> List.filter (fun l -> l <> "")
    in
    (match lines with
    | first :: _ ->
        Alcotest.(check string) "header" "digraph provenance {" first
    | [] -> Alcotest.fail "empty dot");
    Alcotest.(check string) "closes" "}" (List.nth lines (List.length lines - 1));
    let declared = Hashtbl.create 64 in
    List.iter
      (fun line ->
        if starts_with "  n" line && count_substr line "[shape=" = 1 then
          let name =
            String.sub line 2 (String.index_from line 2 ' ' - 2)
          in
          Hashtbl.replace declared name ())
      lines;
    let undeclared_endpoint =
      List.exists
        (fun line ->
          match count_substr line " -> " with
          | 1 ->
              let line = String.trim line in
              let line =
                (* drop trailing ";" *)
                if String.length line > 0 && line.[String.length line - 1] = ';'
                then String.sub line 0 (String.length line - 1)
                else line
              in
              (match String.split_on_char ' ' line with
              | [ a; "->"; b ] ->
                  not (Hashtbl.mem declared a && Hashtbl.mem declared b)
              | _ -> true)
          | _ -> false)
        lines
    in
    Alcotest.(check bool) "every edge endpoint is declared" false
      undeclared_endpoint)

let unit_tests =
  [ Alcotest.test_case "DOT and JSON exporters agree on counts" `Quick
      test_export_counts;
    Alcotest.test_case "DOT output is structurally well-formed" `Quick
      test_dot_structure ]

let () =
  Alcotest.run "provenance"
    [ ("leaves", leaf_props);
      ("kappa", kappa_props);
      ("cache", cache_props);
      ("rule-cache", rule_cache_props);
      ("plans", plan_props);
      ("export", unit_tests) ]
