(* Fuzz-ish corpus of malformed inputs: every file under
   fixtures/malformed/ must be rejected through the TYPED error channel
   of its layer — [Erm.Io.Io_error] with a positive line number for
   .erd sources, [Query.Parser.Parse_error] for .query sources — and
   never through any other exception (Failure, Match_failure,
   Invalid_argument, Not_found, ...). A generic exception escaping the
   parser is itself the bug these fixtures exist to catch. *)

(* dune runtest runs with cwd = the test build dir; `dune exec` from the
   project root needs the test/ prefix. *)
let corpus_dir =
  let local = Filename.concat "fixtures" "malformed" in
  if Sys.file_exists local then local else Filename.concat "test" local

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus ext =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ext)
  |> List.sort String.compare

(* --- .erd corpus ------------------------------------------------------ *)

let check_erd name =
  let path = Filename.concat corpus_dir name in
  let text = read_file path in
  match Erm.Io.relations_of_string text with
  | _ -> Alcotest.failf "%s: malformed input was accepted" name
  | exception Erm.Io.Io_error { line; message; _ } ->
      if line < 1 then
        Alcotest.failf "%s: Io_error carries non-positive line %d (%s)" name
          line message
  | exception e ->
      Alcotest.failf "%s: escaped through %s, not Io_error" name
        (Printexc.to_string e)

(* [load] must report through the same channel as [relations_of_string]
   — a file-based caller sees the identical positioned error. *)
let check_erd_load name =
  let path = Filename.concat corpus_dir name in
  match Erm.Io.load path with
  | _ -> Alcotest.failf "%s: load accepted malformed input" name
  | exception Erm.Io.Io_error { line; _ } ->
      if line < 1 then
        Alcotest.failf "%s: load's Io_error has line %d" name line
  | exception e ->
      Alcotest.failf "%s: load escaped through %s" name
        (Printexc.to_string e)

(* --- .query corpus ---------------------------------------------------- *)

let check_query name =
  let path = Filename.concat corpus_dir name in
  let text = String.trim (read_file path) in
  match Query.Parser.parse text with
  | _ -> Alcotest.failf "%s: malformed query was accepted" name
  | exception Query.Parser.Parse_error msg ->
      if String.length msg = 0 then
        Alcotest.failf "%s: Parse_error with empty message" name
  | exception e ->
      Alcotest.failf "%s: escaped through %s, not Parse_error" name
        (Printexc.to_string e)

(* --- registration ----------------------------------------------------- *)

let () =
  let t check name = Alcotest.test_case name `Quick (fun () -> check name) in
  let erds = corpus ".erd" and queries = corpus ".query" in
  if List.length erds < 7 then
    failwith "malformed corpus lost .erd fixtures (expected at least 7)";
  if List.length queries < 5 then
    failwith "malformed corpus lost .query fixtures (expected at least 5)";
  Alcotest.run "corpus"
    [ ("erd string channel", List.map (t check_erd) erds);
      ("erd load channel", List.map (t check_erd_load) erds);
      ("query channel", List.map (t check_query) queries) ]
