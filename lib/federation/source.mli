(** A federated source: an effectful fetch with a typed error channel.

    The integration layer so far assumed every source is an in-memory
    relation that answers instantly and correctly; anything else escaped
    as [failwith]/[Sys_error]/[Io_error] soup. A {!t} abstracts a source
    as [unit -> (relation, error) result] so the retry and degradation
    layers can reason about {e which kind} of failure occurred:
    transient ones ({!Unavailable}, {!Timeout}) are worth retrying,
    permanent ones ({!Malformed}, {!Schema_mismatch},
    {!Missing_relation}) are not, and {!Budget_exhausted} means the
    integration as a whole ran out of time before this source was even
    tried. *)

type error =
  | Unavailable of string  (** Transient: the source did not answer. *)
  | Timeout of { after_ms : float }
      (** Transient: no answer within the deadline. *)
  | Malformed of { path : string; line : int; message : string }
      (** Permanent: the payload does not parse ([Erm.Io.Io_error] with
          the file path attached). *)
  | Schema_mismatch of string
      (** Permanent: parsed, but not union-compatible with its peers. *)
  | Missing_relation of { path : string; name : string }
      (** Permanent: the file loads but holds no relation of that
          name. *)
  | Budget_exhausted of { budget_ms : float }
      (** The total integration budget was spent before this fetch. *)

type t = {
  name : string;
  fetch : unit -> (Erm.Relation.t, error) result;
      (** Each call is one delivery attempt; adapters may be wrapped
          ({!Fault.wrap}) so repeated calls can behave differently. *)
}

val make : string -> (unit -> (Erm.Relation.t, error) result) -> t

val of_relation : ?name:string -> Erm.Relation.t -> t
(** An always-available in-memory source (default name: the relation's
    schema name). *)

val of_erd_file : ?relation:string -> string -> t
(** Fetching loads the [.erd] file on every attempt. [?relation] picks a
    block by name (default: the file must hold exactly one). IO failures
    map to {!Unavailable}, parse failures to {!Malformed}, a missing or
    ambiguous block to {!Missing_relation}. *)

val retryable : error -> bool
(** [true] for {!Unavailable} and {!Timeout} only — retrying a parse
    error or a blown budget cannot help. *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string
