(** Evidential graceful degradation: integrate the survivors, discount
    the shaky ones, and say exactly what happened to each source.

    The runtime fetches every source under a {!Retry.policy} (and an
    optional total [budget_ms] across all sources), then integrates the
    delivered relations with {!Integration.Multi.integrate}. A source
    that misbehaved is neither dropped nor trusted: its evidence is
    α-discounted (Shafer) before Dempster combination —

    - a source that {e recovered} after [f] failed attempts gets
      [α = alpha_per_failure^f];
    - a delivery that arrived {e past its deadline} is stale and is
      further scaled by [stale_alpha];
    - every α is clamped to [alpha_floor > 0], which preserves
      Theorem-1 closure: discounting by any α > 0 maps [sn ↦ α·sn], so
      stored tuples keep [sn > 0].

    A pristine first-attempt delivery gets α = 1 exactly, so a run with
    an empty fault plan is tuple-for-tuple identical to
    [Multi.integrate]. If fewer than [min_sources] sources deliver, the
    run fails with {!Quorum_not_met} rather than returning an answer
    built on too little evidence — the per-source {!outcome}s are still
    reported so the operator can see who failed and why. *)

type status =
  | Delivered  (** First attempt, on time. *)
  | Recovered of int  (** Delivered after that many failed attempts. *)
  | Stale  (** Delivered, but past the per-source deadline. *)
  | Failed of Source.error

type outcome = {
  source : string;
  attempts : int;
  latency_ms : float;  (** Total simulated time spent on this source. *)
  alpha : float;
      (** Final discount applied before combination (1 = trusted;
          meaningless for failed sources, reported as 1). *)
  status : status;
}

type config = {
  policy : Retry.policy;
  min_sources : int;
      (** Quorum: least delivered sources for a result; 0 means {e all}
          requested sources must deliver. *)
  budget_ms : float option;
      (** Total integration budget across all fetches. *)
  alpha_per_failure : float;
      (** Reliability decay per failed attempt, in (0,1]. *)
  stale_alpha : float;  (** Extra discount for past-deadline deliveries. *)
  alpha_floor : float;  (** Least final α; must be > 0 for closure. *)
  conflict_discount : bool;
      (** Also apply {!Integration.Multi}'s conflict-based discounting. *)
}

val default : config
(** {!Retry.default} policy, quorum 1, no budget, decay 0.8, stale 0.8,
    floor 0.05, no conflict discounting. *)

type report = {
  multi : Integration.Multi.report;
      (** The merged relation plus conflict matrix and the final
          per-source α (delivery-based prior × conflict-based rate). *)
  outcomes : outcome list;  (** In request order, failures included. *)
  elapsed_ms : float;
}

type failure =
  | No_sources
  | Quorum_not_met of {
      delivered : int;
      required : int;
      outcomes : outcome list;
    }

val integrate :
  ?config:config ->
  ?seed:int ->
  ?integrate:
    (?policy:Dst.Rule.policy ->
    ?discount:bool ->
    ?alpha_floor:float ->
    ?prior:(string * float) list ->
    Integration.Multi.source list ->
    Integration.Multi.report) ->
  clock:Clock.t ->
  Source.t list ->
  (report, failure) result
(** Fetch all sources and integrate the survivors. [seed] (default 0)
    drives the backoff jitter; given the same seed, clock start, config
    and sources, the result is deterministic. [integrate] substitutes
    the merge itself (default {!Integration.Multi.integrate}) — the
    federate binary passes the sharded engine's drop-in here; any
    substitute must be report-identical to the default, which the
    sharded one is by the conformance harness's contract. Evidence
    combines under the session rule ({!Dst.Rule.current}): [?policy] is
    left to its default, so set the session rule before calling.
    @raise Invalid_argument on a malformed config. *)

val pp_outcome : Format.formatter -> outcome -> unit
val pp_outcomes : Format.formatter -> outcome list -> unit
val pp_failure : Format.formatter -> failure -> unit
