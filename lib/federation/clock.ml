type t = { now_ms : unit -> float; sleep_ms : float -> unit }

let simulated ?(start_ms = 0.0) () =
  let t = ref start_ms in
  { now_ms = (fun () -> !t);
    sleep_ms = (fun d -> if d > 0.0 then t := !t +. d) }
