type t = Obs.Clock.t = { now_ms : unit -> float; sleep_ms : float -> unit }

let simulated = Obs.Clock.simulated
