(** Bounded retries with exponential backoff, jitter and deadlines.

    Transient failures ({!Source.retryable}) are retried up to
    [retries] extra attempts, sleeping
    [min max_delay (base · multiplier^(attempt-1))] between attempts
    with a symmetric jitter fraction drawn from the caller's RNG
    (seeded ⇒ deterministic). A per-source [deadline_ms] bounds the
    whole fetch: once the clock passes it, no further attempts run and
    the failure is reported as a {!Source.Timeout}. Permanent errors
    fail fast on the first attempt. *)

type policy = {
  retries : int;  (** Extra attempts after the first; ≥ 0. *)
  base_delay_ms : float;  (** First backoff. *)
  multiplier : float;  (** Backoff growth per failure (≥ 1). *)
  max_delay_ms : float;  (** Backoff cap. *)
  jitter : float;
      (** Each backoff is scaled by a uniform draw from
          [1 ± jitter]; in [0,1]. *)
  deadline_ms : float option;  (** Per-source fetch deadline. *)
}

val default : policy
(** 2 retries, 50 ms base, ×2 growth capped at 2 s, 0.1 jitter, no
    deadline. *)

type failure = {
  error : Source.error;
  at_ms : float;  (** Elapsed when the attempt failed. *)
  backoff_ms : float;  (** Sleep scheduled after it (0 if final). *)
}

type trace = {
  attempts : int;  (** Attempts actually made (≥ 1 unless pre-empted). *)
  total_ms : float;  (** Elapsed over the whole fetch, backoffs included. *)
  failures : failure list;  (** In attempt order. *)
}

val fetch :
  rng:Workload.Rng.t ->
  clock:Clock.t ->
  policy ->
  Source.t ->
  (Erm.Relation.t * trace, Source.error * trace) result
(** Run the source's fetch under the policy. [Ok] carries the delivered
    relation and the trace (a trace with [attempts > 1] means the source
    recovered after failures — the degradation layer discounts it);
    [Error] carries the last error and the trace.
    @raise Invalid_argument on a malformed policy. *)
