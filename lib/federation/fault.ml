module R = Workload.Rng

type spec = {
  fail_rate : float;
  timeout_rate : float;
  corrupt_rate : float;
  drop_rate : float;
  latency_ms : float;
  hang_ms : float;
}

let none =
  { fail_rate = 0.0;
    timeout_rate = 0.0;
    corrupt_rate = 0.0;
    drop_rate = 0.0;
    latency_ms = 0.0;
    hang_ms = 0.0 }

type plan = (string option * spec) list

let empty_plan = []

let spec_for plan name =
  match List.assoc_opt (Some name) plan with
  | Some s -> s
  | None -> ( match List.assoc_opt None plan with Some s -> s | None -> none)

let set_field spec key value =
  let rate what v =
    if v < 0.0 || v > 1.0 then
      Error (Printf.sprintf "%s must be in [0,1], got %g" what v)
    else Ok v
  in
  let millis what v =
    if v < 0.0 then Error (Printf.sprintf "%s must be >= 0, got %g" what v)
    else Ok v
  in
  match key with
  | "fail" -> Result.map (fun v -> { spec with fail_rate = v }) (rate key value)
  | "timeout" ->
      Result.map (fun v -> { spec with timeout_rate = v }) (rate key value)
  | "corrupt" ->
      Result.map (fun v -> { spec with corrupt_rate = v }) (rate key value)
  | "drop" -> Result.map (fun v -> { spec with drop_rate = v }) (rate key value)
  | "latency" ->
      Result.map (fun v -> { spec with latency_ms = v }) (millis key value)
  | "hang" -> Result.map (fun v -> { spec with hang_ms = v }) (millis key value)
  | _ ->
      Error
        (Printf.sprintf
           "unknown fault setting %s (expected fail, timeout, corrupt, drop, \
            latency or hang)"
           key)

let spec_of_settings text =
  let settings =
    String.split_on_char ',' text
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  List.fold_left
    (fun acc setting ->
      Result.bind acc (fun spec ->
          match String.index_opt setting '=' with
          | None ->
              Error
                (Printf.sprintf "expected key=value in fault plan, got %s"
                   setting)
          | Some i ->
              let key = String.trim (String.sub setting 0 i) in
              let raw =
                String.trim
                  (String.sub setting (i + 1)
                     (String.length setting - i - 1))
              in
              (match float_of_string_opt raw with
              | None ->
                  Error
                    (Printf.sprintf "%s needs a numeric value, got %s" key raw)
              | Some v -> set_field spec key v)))
    (Ok none) settings

let plan_of_string text =
  let entries =
    String.split_on_char ';' text
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if entries = [] then Error "empty fault plan"
  else
    List.fold_left
      (fun acc entry ->
        Result.bind acc (fun plan ->
            match String.index_opt entry ':' with
            | None ->
                Error
                  (Printf.sprintf
                     "expected name:settings in fault plan, got %s" entry)
            | Some i ->
                let name = String.trim (String.sub entry 0 i) in
                let rest =
                  String.sub entry (i + 1) (String.length entry - i - 1)
                in
                if name = "" then Error "fault plan entry needs a source name"
                else
                  let key = if name = "*" then None else Some name in
                  if List.mem_assoc key plan then
                    Error
                      (Printf.sprintf "duplicate fault plan entry for %s" name)
                  else
                    Result.map
                      (fun spec -> plan @ [ (key, spec) ])
                      (spec_of_settings rest)))
      (Ok []) entries

(* Corruption damages content, never well-formedness: tuples vanish
   (partial delivery) and evidence cells are replaced with random — but
   valid, Ω-floored — evidence over the same domain. Definite cells and
   membership pairs are untouched, so the result still satisfies CWA_ER
   and stays union-compatible; the damage shows up as conflict against
   peer sources. *)
let corrupt rng ~drop_rate r =
  let schema = Erm.Relation.schema r in
  Erm.Relation.map_tuples
    (fun t ->
      if R.float rng 1.0 < drop_rate then None
      else
        let cells =
          List.map2
            (fun attr cell ->
              match (Erm.Attr.kind attr, cell) with
              | Erm.Attr.Evidential domain, Erm.Etuple.Evidence _
                when R.float rng 1.0 < 0.5 ->
                  Erm.Etuple.Evidence (Workload.Gen.evidence rng domain)
              | _ -> cell)
            (Erm.Schema.nonkey schema) (Erm.Etuple.cells t)
        in
        Some
          (Erm.Etuple.make schema ~key:(Erm.Etuple.key t) ~cells
             ~tm:(Erm.Etuple.tm t)))
    schema r

let wrap ~seed ~clock spec source =
  let rng = R.create (seed lxor Hashtbl.hash source.Source.name) in
  let fetch () =
    clock.Clock.sleep_ms spec.latency_ms;
    let u = R.float rng 1.0 in
    if u < spec.fail_rate then Error (Source.Unavailable "injected fault")
    else if u < spec.fail_rate +. spec.timeout_rate then begin
      clock.Clock.sleep_ms spec.hang_ms;
      Error (Source.Timeout { after_ms = spec.hang_ms })
    end
    else
      match source.Source.fetch () with
      | Error _ as e -> e
      | Ok r ->
          if R.float rng 1.0 < spec.corrupt_rate then
            Ok (corrupt rng ~drop_rate:spec.drop_rate r)
          else Ok r
  in
  { Source.name = source.Source.name; fetch }
