(** Deterministic fault injection — the test harness for the runtime.

    {!wrap} turns any {!Source.t} into a misbehaving one: each fetch
    first pays a simulated latency, then may fail ({!Source.Unavailable}),
    hang until a timeout fires ({!Source.Timeout}), or deliver a
    {e corrupted} payload — a random fraction of tuples dropped (partial
    delivery) and random evidence substituted into surviving cells.
    Corruption never touches definite cells or membership pairs, so a
    corrupted relation is still CWA-admissible; what it damages is
    {e agreement with its peers}, which is exactly the signal
    conflict-based discounting ({!Integration.Multi.integrate}
    [~discount]) responds to.

    All draws come from a {!Workload.Rng} seeded by [seed ⊕ hash name],
    so a chaos run is a pure function of [(seed, fault plan, sources)]:
    rerunning it reproduces every failure, every latency and every
    corrupted cell. *)

type spec = {
  fail_rate : float;  (** P(attempt returns [Unavailable]), in [0,1]. *)
  timeout_rate : float;  (** P(attempt hangs then returns [Timeout]). *)
  corrupt_rate : float;  (** P(a successful delivery is corrupted). *)
  drop_rate : float;
      (** Within a corrupted delivery, P(each tuple is lost). *)
  latency_ms : float;  (** Simulated latency paid by every attempt. *)
  hang_ms : float;  (** Simulated stall before an injected timeout. *)
}

val none : spec
(** All rates 0, no latency: wrapping with [none] is behaviourally the
    identity (it draws from the RNG but never alters an outcome). *)

type plan = (string option * spec) list
(** Per-source specs; [None] is the default entry matching any source
    ([*] in the concrete syntax). *)

val spec_for : plan -> string -> spec
(** The spec for a source name: exact entry, else the [*] entry, else
    {!none}. *)

val plan_of_string : string -> (plan, string) result
(** Parse [name:k=v,k=v;name:…] where [name] is a source name or [*] and
    keys are [fail], [timeout], [corrupt], [drop] (probabilities in
    [0,1]), [latency], [hang] (milliseconds ≥ 0). Example:
    [ra:fail=0.5,latency=20;*:timeout=0.1]. *)

val empty_plan : plan
(** No entries: every source gets {!none}. *)

val wrap : seed:int -> clock:Clock.t -> spec -> Source.t -> Source.t
(** Wrap one source. The wrapper owns its own RNG derived from [seed]
    and the source name, so wrapping order and sibling activity cannot
    perturb a source's fault stream. *)
