(** Virtual time for the federation runtime.

    Retry backoff, per-source deadlines and the total integration budget
    are all expressed against a clock; making the clock a value keeps
    every chaos run deterministic and instant — a simulated [sleep_ms]
    advances a counter instead of stalling the process. Tests, benches
    and the [federate] CLI all use {!simulated}; a wall clock is just
    another record should a caller need one.

    The abstraction now lives in {!Obs.Clock} so the observability layer
    (which sits below every library) can share it; this module re-exports
    it under its historical name. The type equality means a federation
    clock can be handed straight to a tracer and vice versa. *)

type t = Obs.Clock.t = {
  now_ms : unit -> float;  (** Monotonic milliseconds. *)
  sleep_ms : float -> unit;
      (** Blocks (or pretends to) for that many milliseconds; negative
          durations are ignored. *)
}

val simulated : ?start_ms:float -> unit -> t
(** A fresh virtual clock starting at [start_ms] (default 0). Sleeping
    advances it; nothing else does, so elapsed time measures exactly the
    latency the fault layer and backoff injected. *)
