module R = Workload.Rng

type status =
  | Delivered
  | Recovered of int
  | Stale
  | Failed of Source.error

type outcome = {
  source : string;
  attempts : int;
  latency_ms : float;
  alpha : float;
  status : status;
}

type config = {
  policy : Retry.policy;
  min_sources : int;
  budget_ms : float option;
  alpha_per_failure : float;
  stale_alpha : float;
  alpha_floor : float;
  conflict_discount : bool;
}

let default =
  { policy = Retry.default;
    min_sources = 1;
    budget_ms = None;
    alpha_per_failure = 0.8;
    stale_alpha = 0.8;
    alpha_floor = 0.05;
    conflict_discount = false }

type report = {
  multi : Integration.Multi.report;
  outcomes : outcome list;
  elapsed_ms : float;
}

type failure =
  | No_sources
  | Quorum_not_met of {
      delivered : int;
      required : int;
      outcomes : outcome list;
    }

let validate cfg =
  if cfg.min_sources < 0 then
    invalid_arg "Degrade.integrate: min_sources must be >= 0";
  if cfg.alpha_per_failure <= 0.0 || cfg.alpha_per_failure > 1.0 then
    invalid_arg "Degrade.integrate: alpha_per_failure must be in (0,1]";
  if cfg.stale_alpha <= 0.0 || cfg.stale_alpha > 1.0 then
    invalid_arg "Degrade.integrate: stale_alpha must be in (0,1]";
  if cfg.alpha_floor <= 0.0 || cfg.alpha_floor > 1.0 then
    invalid_arg "Degrade.integrate: alpha_floor must be in (0,1]";
  match cfg.budget_ms with
  | Some b when b <= 0.0 -> invalid_arg "Degrade.integrate: budget must be > 0"
  | _ -> ()

(* Delivery-behaviour prior: each failed attempt is evidence against the
   source, staleness more so. Floored so discounting can never zero out
   sn (Theorem-1 closure). *)
let prior_alpha cfg ~failures ~stale =
  let decay = cfg.alpha_per_failure ** float_of_int failures in
  let stale_factor = if stale then cfg.stale_alpha else 1.0 in
  Float.max cfg.alpha_floor (decay *. stale_factor)

type fetched =
  | Got of { relation : Erm.Relation.t; trace : Retry.trace; stale : bool }
  | Lost of { error : Source.error; trace : Retry.trace }

let fetch_all cfg ~seed ~clock sources =
  let start = clock.Clock.now_ms () in
  List.map
    (fun (s : Source.t) ->
      let rng = R.create (seed lxor Hashtbl.hash ("retry:" ^ s.name)) in
      let elapsed = clock.Clock.now_ms () -. start in
      let remaining =
        match cfg.budget_ms with
        | Some b -> Some (b -. elapsed)
        | None -> None
      in
      match remaining with
      | Some r when r <= 0.0 ->
          let budget = Option.get cfg.budget_ms in
          ( s.name,
            Lost
              { error = Source.Budget_exhausted { budget_ms = budget };
                trace = { Retry.attempts = 0; total_ms = 0.0; failures = [] }
              } )
      | _ ->
          let deadline_ms =
            match (cfg.policy.Retry.deadline_ms, remaining) with
            | None, None -> None
            | Some d, None -> Some d
            | None, Some r -> Some r
            | Some d, Some r -> Some (Float.min d r)
          in
          let policy = { cfg.policy with Retry.deadline_ms } in
          let stale_from trace =
            match cfg.policy.Retry.deadline_ms with
            | Some d -> trace.Retry.total_ms > d
            | None -> false
          in
          let attempt () =
            match Retry.fetch ~rng ~clock policy s with
            | Ok (relation, trace) ->
                Obs.Metrics.incr "federation.fetch.delivered";
                (s.name, Got { relation; trace; stale = stale_from trace })
            | Error (error, trace) ->
                Obs.Metrics.incr "federation.fetch.lost";
                (s.name, Lost { error; trace })
          in
          if Obs.Trace.on () then
            Obs.Trace.with_span ~cat:"federation"
              ~args:[ ("detail", s.name) ]
              "federation.fetch" attempt
          else attempt ())
    sources

let pp_status ppf = function
  | Delivered -> Format.pp_print_string ppf "delivered"
  | Recovered n -> Format.fprintf ppf "recovered after %d failure(s)" n
  | Stale -> Format.pp_print_string ppf "delivered stale (past deadline)"
  | Failed e -> Format.fprintf ppf "failed: %a" Source.pp_error e

let integrate ?(config = default) ?(seed = 0)
    ?(integrate = Integration.Multi.integrate) ~clock sources =
  validate config;
  match sources with
  | [] -> Error No_sources
  | _ ->
      let start = clock.Clock.now_ms () in
      let fetched = fetch_all config ~seed ~clock sources in
      (* Survivors must be union-compatible with the first delivered
         relation; the rest fail through the typed channel instead of an
         Incompatible_schemas escape from the merge fold. *)
      let reference =
        List.find_map
          (function
            | _, Got { relation; _ } ->
                Some (Erm.Relation.schema relation)
            | _, Lost _ -> None)
          fetched
      in
      let fetched =
        List.map
          (fun (name, f) ->
            match (f, reference) with
            | Got { relation; trace; _ }, Some ref_schema
              when not
                     (Erm.Schema.union_compatible ref_schema
                        (Erm.Relation.schema relation)) ->
                ( name,
                  Lost
                    { error =
                        Source.Schema_mismatch
                          (Printf.sprintf
                             "%s is not union-compatible with the first \
                              delivered source"
                             name);
                      trace } )
            | _ -> (name, f))
          fetched
      in
      let delivered =
        List.filter_map
          (function
            | name, Got { relation; trace; stale } ->
                Some (name, relation, trace, stale)
            | _, Lost _ -> None)
          fetched
      in
      let outcome_of (name, f) =
        match f with
        | Got { trace; stale; _ } ->
            let failures = trace.Retry.attempts - 1 in
            { source = name;
              attempts = trace.Retry.attempts;
              latency_ms = trace.Retry.total_ms;
              alpha = prior_alpha config ~failures ~stale;
              status =
                (if stale then Stale
                 else if failures > 0 then Recovered failures
                 else Delivered) }
        | Lost { error; trace } ->
            { source = name;
              attempts = trace.Retry.attempts;
              latency_ms = trace.Retry.total_ms;
              alpha = 1.0;
              status = Failed error }
      in
      let outcomes = List.map outcome_of fetched in
      if Obs.Log.on () then
        List.iter
          (fun o ->
            match o.status with
            | Delivered -> ()
            | status ->
                let severity =
                  match status with
                  | Failed _ -> Obs.Log.Error
                  | _ -> Obs.Log.Warn
                in
                Obs.Log.record ~severity
                  ~fields:
                    [ ("source", o.source);
                      ("attempts", string_of_int o.attempts) ]
                  Obs.Log.Degrade
                  (Format.asprintf "%a" pp_status status))
          outcomes;
      let required =
        if config.min_sources = 0 then List.length sources
        else config.min_sources
      in
      if List.length delivered < required then
        Error
          (Quorum_not_met
             { delivered = List.length delivered; required; outcomes })
      else
        let prior =
          List.map
            (fun (name, _, trace, stale) ->
              (name, prior_alpha config ~failures:(trace.Retry.attempts - 1) ~stale))
            delivered
        in
        let multi_sources =
          List.map
            (fun (name, relation, _, _) ->
              { Integration.Multi.source_name = name;
                source_relation = relation })
            delivered
        in
        let multi =
          integrate ~discount:config.conflict_discount
            ~alpha_floor:config.alpha_floor ~prior multi_sources
        in
        (* Report the α the merge actually used (prior × conflict rate),
           not just the delivery prior. *)
        let outcomes =
          List.map
            (fun o ->
              match
                List.assoc_opt o.source multi.Integration.Multi.reliabilities
              with
              | Some a when not (match o.status with Failed _ -> true | _ -> false) ->
                  { o with alpha = a }
              | _ -> o)
            outcomes
        in
        Ok { multi; outcomes; elapsed_ms = clock.Clock.now_ms () -. start }

let pp_outcome ppf o =
  match o.status with
  | Failed _ ->
      Format.fprintf ppf "source %s: %a [%d attempt(s), %.0f ms]" o.source
        pp_status o.status o.attempts o.latency_ms
  | _ ->
      Format.fprintf ppf
        "source %s: %a [%d attempt(s), %.0f ms, alpha %.3f]" o.source
        pp_status o.status o.attempts o.latency_ms o.alpha

let pp_outcomes ppf outcomes =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_outcome)
    outcomes

let pp_failure ppf = function
  | No_sources -> Format.pp_print_string ppf "no sources selected"
  | Quorum_not_met { delivered; required; _ } ->
      Format.fprintf ppf "quorum not met: %d of %d required source(s) delivered"
        delivered required
