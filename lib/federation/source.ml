type error =
  | Unavailable of string
  | Timeout of { after_ms : float }
  | Malformed of { path : string; line : int; message : string }
  | Schema_mismatch of string
  | Missing_relation of { path : string; name : string }
  | Budget_exhausted of { budget_ms : float }

type t = { name : string; fetch : unit -> (Erm.Relation.t, error) result }

let make name fetch = { name; fetch }

let of_relation ?name r =
  let name =
    match name with
    | Some n -> n
    | None -> Erm.Schema.name (Erm.Relation.schema r)
  in
  { name; fetch = (fun () -> Ok r) }

let of_erd_file ?relation path =
  let name =
    match relation with
    | Some n -> n
    | None -> Filename.remove_extension (Filename.basename path)
  in
  let read () =
    let ic = open_in path in
    let n = in_channel_length ic in
    let content = really_input_string ic n in
    close_in ic;
    content
  in
  (* Parses the content directly (rather than via Erm.Io.load) so the
     Malformed fields stay structured: path and line live in the
     variant, not re-prefixed into the message. *)
  let fetch () =
    match Erm.Io.relations_of_string (read ()) with
    | exception Sys_error m -> Error (Unavailable m)
    | exception Erm.Io.Io_error { line; message; _ } ->
        Error (Malformed { path; line; message })
    | rels -> (
        match relation with
        | Some n -> (
            match
              List.find_opt
                (fun r -> String.equal (Erm.Schema.name (Erm.Relation.schema r)) n)
                rels
            with
            | Some r -> Ok r
            | None -> Error (Missing_relation { path; name = n }))
        | None -> (
            match rels with
            | [ r ] -> Ok r
            | [] -> Error (Missing_relation { path; name })
            | _ :: _ :: _ ->
                Error
                  (Malformed
                     { path;
                       line = 0;
                       message =
                         "file holds several relations; name one \
                          explicitly" })))
  in
  { name; fetch }

let retryable = function
  | Unavailable _ | Timeout _ -> true
  | Malformed _ | Schema_mismatch _ | Missing_relation _
  | Budget_exhausted _ ->
      false

let pp_error ppf = function
  | Unavailable m -> Format.fprintf ppf "unavailable (%s)" m
  | Timeout { after_ms } ->
      Format.fprintf ppf "timed out after %.0f ms" after_ms
  | Malformed { path; line; message } ->
      if line > 0 then
        Format.fprintf ppf "malformed %s (line %d: %s)" path line message
      else Format.fprintf ppf "malformed %s (%s)" path message
  | Schema_mismatch m -> Format.fprintf ppf "schema mismatch (%s)" m
  | Missing_relation { path; name } ->
      Format.fprintf ppf "no relation named %s in %s" name path
  | Budget_exhausted { budget_ms } ->
      Format.fprintf ppf "integration budget (%.0f ms) exhausted" budget_ms

let error_to_string e = Format.asprintf "%a" pp_error e
