module R = Workload.Rng

type policy = {
  retries : int;
  base_delay_ms : float;
  multiplier : float;
  max_delay_ms : float;
  jitter : float;
  deadline_ms : float option;
}

let default =
  { retries = 2;
    base_delay_ms = 50.0;
    multiplier = 2.0;
    max_delay_ms = 2000.0;
    jitter = 0.1;
    deadline_ms = None }

type failure = { error : Source.error; at_ms : float; backoff_ms : float }
type trace = { attempts : int; total_ms : float; failures : failure list }

let validate p =
  if p.retries < 0 then invalid_arg "Retry.fetch: retries must be >= 0";
  if p.base_delay_ms < 0.0 then
    invalid_arg "Retry.fetch: base_delay_ms must be >= 0";
  if p.multiplier < 1.0 then
    invalid_arg "Retry.fetch: multiplier must be >= 1";
  if p.jitter < 0.0 || p.jitter > 1.0 then
    invalid_arg "Retry.fetch: jitter must be in [0,1]";
  match p.deadline_ms with
  | Some d when d <= 0.0 -> invalid_arg "Retry.fetch: deadline must be > 0"
  | _ -> ()

let backoff_delay ~rng policy failures_so_far =
  let raw =
    policy.base_delay_ms
    *. (policy.multiplier ** float_of_int (failures_so_far - 1))
  in
  let capped = Float.min policy.max_delay_ms raw in
  let scale = 1.0 +. (policy.jitter *. ((2.0 *. R.float rng 1.0) -. 1.0)) in
  Float.max 0.0 (capped *. scale)

let fetch ~rng ~clock policy source =
  validate policy;
  let start = clock.Clock.now_ms () in
  let elapsed () = clock.Clock.now_ms () -. start in
  let past_deadline () =
    match policy.deadline_ms with
    | Some d -> elapsed () >= d
    | None -> false
  in
  let trace attempts failures =
    { attempts; total_ms = elapsed (); failures = List.rev failures }
  in
  let rec go attempt failures =
    if past_deadline () then
      Error
        ( Source.Timeout { after_ms = elapsed () },
          trace (attempt - 1) failures )
    else
      match
        Obs.Metrics.incr "federation.retry.attempts";
        source.Source.fetch ()
      with
      | Ok r -> Ok (r, trace attempt failures)
      | Error e ->
          let can_retry =
            attempt <= policy.retries
            && Source.retryable e
            && not (past_deadline ())
          in
          if not can_retry then
            Error
              (e, trace attempt ({ error = e; at_ms = elapsed (); backoff_ms = 0.0 } :: failures))
          else begin
            let backoff = backoff_delay ~rng policy attempt in
            let f = { error = e; at_ms = elapsed (); backoff_ms = backoff } in
            Obs.Metrics.observe "federation.retry.backoff_ms" backoff;
            if Obs.Log.on () then
              Obs.Log.record ~severity:Obs.Log.Warn
                ~fields:
                  [ ("source", source.Source.name);
                    ("error", Format.asprintf "%a" Source.pp_error e);
                    ("attempt", string_of_int attempt);
                    ("backoff_ms", Printf.sprintf "%.0f" backoff) ]
                Obs.Log.Retry "source fetch failed; retrying";
            clock.Clock.sleep_ms backoff;
            go (attempt + 1) (f :: failures)
          end
  in
  go 1 []
