(** Whole-store data-quality sweeps: the S-check family.

    Where {!Erd_lint} audits one [.erd] source file and {!Check} one
    query plan, the sweep audits the {e stored, merged} state the
    integration pipeline actually leaves behind — the pathologies
    PAPERS.md's high-conflict literature (Zadeh, Yen) warns accumulate
    silently in a merged store:

    - {b S001} dangling cross-relation key references;
    - {b S002} dormant domain values ([Bel = 0] ∧ [Pls ≤ ε] in every
      stored tuple, computed on the {!Dst.Flat_mass} kernels);
    - {b S003} CWA_ER violations in stored tuples;
    - {b S004} per-source disagreement from the
      [dst.combine.kappa_by_source.*] rollups;
    - {b S005} individual high-κ cell merges, read from provenance
      [Step] ranges;
    - {b S006}/{b S007} duplicate-entity suspicion (normalized-key
      collisions; bit-identical value digests under distinct keys);
    - {b S008} deletes of never-upserted digests in committed segments;
    - {b S009} segment bloat (dead records worth compacting);
    - {b S010} empty relations.

    Every finding is an ordinary {!Diagnostic} whose severity derives
    from the check's {!Checkdef.priority}, so the whole report pipeline
    (text, JSON, exit codes) applies unchanged. *)

val checks : Checkdef.check list
(** The S-checks, ascending by code. *)

val kappa_rollups :
  ?registry:Obs.Metrics.registry -> unit -> Checkdef.kappa_rollup list
(** Read the [dst.combine.kappa_by_source.*] histograms back from the
    metrics registry (default: the ambient one), sorted by source. *)

val merge_records : unit -> Checkdef.merge_record list
(** Every [Combine] node inside an absorption [Step] range of the
    default provenance arena, attributed to the absorbed source. Empty
    when provenance is off. *)

val subject :
  ?thresholds:Checkdef.thresholds ->
  ?telemetry:bool ->
  ?store:Store.Estore.t ->
  (string * Erm.Relation.t) list ->
  Checkdef.store_subject
(** Assemble a sweep subject. [telemetry] (default [true]) harvests
    {!kappa_rollups} and {!merge_records} from the ambient
    observability layer; the store's committed segments are re-read
    through its I/O seam ({!Store.Estore.fold_segments}).
    @raise Store.Recovery.Store_error if a committed segment fails
    re-verification. *)

val run : Checkdef.store_subject -> Diagnostic.t list
(** Run every S-check over the subject, under an [analysis.sweep] span
    with [analysis.sweep.*] metrics (runs, checks, relations, tuples,
    findings) when recording is enabled. Findings are sorted with
    {!Diagnostic.compare}; {!Report} re-sorts by priority. *)
