(** The named data-quality check catalog.

    Every check the analyzer knows — the per-file E-lints
    ({!Erd_lint}), the per-query Q-checks ({!Check}) and the
    whole-store S-sweeps ({!Sweep}) — registered as one first-class
    {!Checkdef.check} value with a stable code, a reactome-style
    display name, a priority (Blocker → Info) and a one-line
    description. The catalog is what [eridb-lint --list-checks]
    exports and what {!Report} consults to order findings by
    priority. *)

val checks : Checkdef.check list
(** The full registry, ascending by code (E…, Q…, S…). Codes are
    unique. *)

val find : string -> Checkdef.check option
(** Look a check up by its code. *)

val priority_for : string -> Checkdef.priority option
(** The registered priority of a diagnostic code; [None] for codes
    outside the catalog (reports sort those last). *)

val run_all : Checkdef.subject -> Diagnostic.t list
(** Run every check that applies to the subject's scope, through the
    underlying engine once (not once per check), sorted with
    {!Diagnostic.compare}. *)

val to_tsv : unit -> string
(** The catalog as a [descriptions.tsv]-style table:
    a [Display Name\tPriority\tDescription] header line followed by
    one row per check in code order, each prefixed by its code —
    [CODE Display_Name\tPriority\tDescription]. *)

val to_json : unit -> string
(** The catalog as a JSON array of
    [{"code", "name", "priority", "scope", "description"}] objects in
    code order. *)
