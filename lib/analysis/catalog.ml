(* The registry: every E/Q/S check as a first-class value. The E and Q
   runners delegate to the existing engines and keep only their own
   code's findings, so a single registered check is independently
   runnable; batch consumers use run_all, which invokes each engine
   once. *)

let keep code diags =
  List.filter (fun d -> String.equal d.Diagnostic.code code) diags

let file_check ~code ~name ~priority ~description =
  {
    Checkdef.code;
    name;
    priority;
    scope = Checkdef.File;
    description;
    run =
      (function
      | Checkdef.File_subject { path; content } ->
          keep code (Erd_lint.lint_string ~file:path content)
      | Checkdef.Query_subject _ | Checkdef.Store_subject _ -> []);
  }

let query_check ~code ~name ~priority ~description =
  {
    Checkdef.code;
    name;
    priority;
    scope = Checkdef.Query;
    description;
    run =
      (function
      | Checkdef.Query_subject { env; file; text } ->
          keep code (Check.check_string ?file env text)
      | Checkdef.File_subject _ | Checkdef.Store_subject _ -> []);
  }

let file_checks =
  [
    file_check ~code:"E001" ~name:"Malformed_Declaration"
      ~priority:Checkdef.Blocker
      ~description:
        "Structurally unparseable lines: missing `name : kind`, unnamed \
         relations, unknown directives.";
    file_check ~code:"E002" ~name:"Duplicate_Relation_Name"
      ~priority:Checkdef.Medium
      ~description:
        "Two relation blocks sharing one name; queries silently see only \
         one of them.";
    file_check ~code:"E003" ~name:"Invalid_Key" ~priority:Checkdef.High
      ~description:
        "Evidential or empty relation keys; the paper requires definite, \
         non-empty keys.";
    file_check ~code:"E004" ~name:"Duplicate_Attribute"
      ~priority:Checkdef.Blocker
      ~description:"One attribute name declared twice in a relation block.";
    file_check ~code:"E005" ~name:"Malformed_Domain"
      ~priority:Checkdef.Blocker
      ~description:
        "Empty or malformed evidence domains, or unknown attribute kinds.";
    file_check ~code:"E006" ~name:"Arity_Mismatch" ~priority:Checkdef.Blocker
      ~description:
        "Tuple rows whose field count disagrees with the declared schema.";
    file_check ~code:"E007" ~name:"Bad_Definite_Value"
      ~priority:Checkdef.High
      ~description:
        "Key or definite cell values that do not parse at the declared \
         kind.";
    file_check ~code:"E008" ~name:"Malformed_Evidence"
      ~priority:Checkdef.Blocker
      ~description:
        "Evidence cells that do not parse as [member^mass; ...].";
    file_check ~code:"E009" ~name:"Mass_Not_Normalized"
      ~priority:Checkdef.High
      ~description:
        "Evidence masses that do not sum to 1 within the float tolerance.";
    file_check ~code:"E010" ~name:"Mass_On_Empty_Set" ~priority:Checkdef.High
      ~description:
        "Mass assigned to the empty set, violating the mass-function \
         axioms.";
    file_check ~code:"E011" ~name:"Mass_Out_Of_Range" ~priority:Checkdef.High
      ~description:"Negative masses, or masses exceeding 1.";
    file_check ~code:"E012" ~name:"Value_Outside_Domain"
      ~priority:Checkdef.High
      ~description:
        "Focal elements containing values outside the attribute's \
         declared frame.";
    file_check ~code:"E013" ~name:"Duplicate_Key" ~priority:Checkdef.High
      ~description:"Two tuples of one relation sharing a key.";
    file_check ~code:"E014" ~name:"Malformed_Membership"
      ~priority:Checkdef.Blocker
      ~description:"Membership pairs that do not parse as (sn, sp).";
    file_check ~code:"E015" ~name:"Membership_Out_Of_Range"
      ~priority:Checkdef.High
      ~description:"Membership pairs violating 0 <= sn <= sp <= 1.";
    file_check ~code:"E016" ~name:"CWA_Inadmissible_Tuple"
      ~priority:Checkdef.High
      ~description:
        "Stored tuples with sn <= 0 — inadmissible under CWA_ER.";
    file_check ~code:"E017" ~name:"Unreadable_File"
      ~priority:Checkdef.Blocker
      ~description:"The file cannot be read at all.";
    file_check ~code:"E019" ~name:"Zero_Mass_Focal" ~priority:Checkdef.Low
      ~description:"Zero-mass focal elements the loader silently drops.";
    file_check ~code:"E020" ~name:"Duplicate_Focal_Element"
      ~priority:Checkdef.Low
      ~description:
        "Repeated focal elements whose masses the loader sums together.";
    file_check ~code:"E099" ~name:"Loader_Rejection"
      ~priority:Checkdef.Blocker
      ~description:
        "The strict loader rejects the file for a reason the linter does \
         not model — always a bug worth reporting.";
  ]

let query_checks =
  [
    query_check ~code:"Q000" ~name:"Parse_Error" ~priority:Checkdef.Blocker
      ~description:"The query text does not parse.";
    query_check ~code:"Q001" ~name:"Unknown_Relation"
      ~priority:Checkdef.Blocker
      ~description:
        "A referenced relation is not bound in the environment.";
    query_check ~code:"Q002" ~name:"Unknown_Attribute"
      ~priority:Checkdef.Blocker
      ~description:
        "A referenced attribute does not exist in the operand schema.";
    query_check ~code:"Q003" ~name:"Theta_Type_Mismatch"
      ~priority:Checkdef.High
      ~description:
        "Theta-predicate operands with no common value kind — raises at \
         runtime.";
    query_check ~code:"Q004" ~name:"Statically_False_Predicate"
      ~priority:Checkdef.Medium
      ~description:
        "Predicates that can never yield definitely-true mass: disjoint \
         kinds or out-of-domain constants.";
    query_check ~code:"Q005" ~name:"Empty_IS_Selection"
      ~priority:Checkdef.High
      ~description:
        "IS selections statically empty under CWA_ER: the constant set is \
         disjoint from the attribute's domain or kind.";
    query_check ~code:"Q006" ~name:"Vacuous_Predicate"
      ~priority:Checkdef.Medium
      ~description:
        "IS constant sets covering the whole domain — the predicate always \
         holds with certainty.";
    query_check ~code:"Q007" ~name:"Unsatisfiable_Threshold"
      ~priority:Checkdef.High
      ~description:
        "Membership thresholds no derived (sn, sp) interval can meet, \
         including contradictory AND-ed bounds.";
    query_check ~code:"Q008" ~name:"Key_Dropping_Projection"
      ~priority:Checkdef.High
      ~description:
        "Projections dropping key attributes, forcing unsound merges of \
         distinct entities.";
    query_check ~code:"Q010" ~name:"Statically_Empty_Selection"
      ~priority:Checkdef.Medium
      ~description:
        "Selections guaranteed empty under CWA_ER closure of the \
         membership bounds.";
    query_check ~code:"Q011" ~name:"Total_Conflict_Join"
      ~priority:Checkdef.Medium
      ~description:
        "Theta-joins whose predicate can never yield definitely-true mass \
         — Zadeh's total-conflict case; every joined tuple is dropped.";
    query_check ~code:"Q012" ~name:"Union_Incompatible"
      ~priority:Checkdef.Blocker
      ~description:
        "Extended union or difference over non-union-compatible operands.";
    query_check ~code:"Q013" ~name:"Product_Name_Collision"
      ~priority:Checkdef.High
      ~description:
        "Products whose operand schemas collide on attribute names \
         (PREFIX one side first).";
    query_check ~code:"Q015" ~name:"Bad_Evidence_Literal"
      ~priority:Checkdef.High
      ~description:
        "Evidence literals that are malformed or compared against \
         definite attributes.";
    query_check ~code:"Q016" ~name:"Threshold_Out_Of_Range"
      ~priority:Checkdef.Medium
      ~description:"Threshold bounds lying outside [0, 1].";
    query_check ~code:"Q017" ~name:"Nonpositive_Limit"
      ~priority:Checkdef.Medium
      ~description:"LIMIT clauses that statically yield an empty result.";
    query_check ~code:"Q018" ~name:"Empty_Relation_Scan"
      ~priority:Checkdef.Info
      ~description:"Scanning a relation that currently holds no tuples.";
  ]

let checks =
  List.sort
    (fun a b -> String.compare a.Checkdef.code b.Checkdef.code)
    (file_checks @ query_checks @ Sweep.checks)

let () =
  (* Codes are the catalog's primary key; a collision is a programming
     error worth failing fast on at module init. *)
  ignore
    (List.fold_left
       (fun prev c ->
         (match prev with
         | Some p when String.equal p c.Checkdef.code ->
             invalid_arg ("Catalog: duplicate check code " ^ p)
         | _ -> ());
         Some c.Checkdef.code)
       None checks)

let find code =
  List.find_opt (fun c -> String.equal c.Checkdef.code code) checks

let priority_for code =
  Option.map (fun c -> c.Checkdef.priority) (find code)

let run_all subject =
  let diags =
    match subject with
    | Checkdef.File_subject { path; content } ->
        Erd_lint.lint_string ~file:path content
    | Checkdef.Query_subject { env; file; text } ->
        Check.check_string ?file env text
    | Checkdef.Store_subject s -> Sweep.run s
  in
  List.sort Diagnostic.compare diags

let to_tsv () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "Display Name\tPriority\tDescription\n";
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s\t%s\t%s\n" c.Checkdef.code c.Checkdef.name
           (Checkdef.priority_to_string c.Checkdef.priority)
           c.Checkdef.description))
    checks;
  Buffer.contents buf

let to_json () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n  ";
      Buffer.add_string buf
        (Printf.sprintf
           {|{"code": "%s", "name": "%s", "priority": "%s", "scope": "%s", "description": "%s"}|}
           c.Checkdef.code c.Checkdef.name
           (Checkdef.priority_to_string c.Checkdef.priority)
           (Checkdef.scope_to_string c.Checkdef.scope)
           (Diagnostic.json_escape c.Checkdef.description)))
    checks;
  if checks <> [] then Buffer.add_string buf "\n";
  Buffer.add_string buf "]";
  Buffer.contents buf
