(** Static plan checker: abstract interpretation over {!Query.Ast}.

    [check] walks a query bottom-up, propagating an inferred schema and
    an {!Interval.t} over-approximating the membership support of any
    tuple the operator can emit. Against those two facts it reports the
    statically decidable violations of the paper's invariants:

    - unknown relations/attributes and θ-operand type mismatches that
      would raise at runtime (Q001–Q003, Q015);
    - predicates that are statically false — [IS] constant sets disjoint
      from the attribute's domain or kind, equalities across disjoint
      kinds or frames — which make the result empty under CWA_ER
      (Q004–Q005, Q010);
    - vacuous predicates whose constant set covers the whole domain
      (Q006);
    - membership thresholds unsatisfiable given the derived [(sn, sp)]
      bounds, including contradictory [AND]-ed bounds (Q007);
    - key-dropping projections that would force unsound merges (Q008);
    - products/joins whose θ-predicate can never yield definitely-true
      mass — the total-conflict combinations Zadeh's critique warns
      about (Q011);
    - union-incompatible or name-colliding operand schemas (Q012–Q013).

    The checker never evaluates the query and never raises on analysable
    input: every defect becomes a diagnostic. *)

type result = {
  schema : Erm.Schema.t option;
      (** [None] when inference failed (a diagnostic explains why). *)
  tm : Interval.t;
      (** Bounds on the membership support of any output tuple. *)
  empty : bool;
      (** The result is statically guaranteed to be the empty relation. *)
  diagnostics : Diagnostic.t list;
}

val analyze : Query.Eval.env -> Query.Ast.query -> result

val check : Query.Eval.env -> Query.Ast.query -> Diagnostic.t list
(** [analyze]'s diagnostics, sorted for reporting. *)

val check_string : ?file:string -> Query.Eval.env -> string -> Diagnostic.t list
(** Parses and checks; parse failures become a [Q000] error diagnostic
    rather than an exception. *)

val errors : Query.Eval.env -> Query.Ast.query -> string list
(** Error-level findings rendered as strings — the guard hook for
    {!Query.Physical.eval_fast}, empty when the plan is executable. *)
