(** Typed diagnostics shared by the plan checker and the [.erd] linter.

    A diagnostic pins a severity, a stable machine-readable code (["Q…"]
    for query/plan findings, ["E…"] for [.erd] findings), an optional
    source position, and a human-readable message. Both front ends of
    the analyzer produce values of this type; every consumer (CLI, REPL,
    [federate --validate], CI) renders or filters them uniformly. *)

type severity = Info | Warning | Error

type t = {
  severity : severity;
  code : string;  (** Stable identifier, e.g. ["Q005"], ["E012"]. *)
  file : string option;
  line : int;  (** 1-based; [0] = unknown. *)
  col : int;  (** 1-based; [0] = unknown. *)
  message : string;
}

val error :
  ?file:string -> ?line:int -> ?col:int -> code:string ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val warning :
  ?file:string -> ?line:int -> ?col:int -> code:string ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val info :
  ?file:string -> ?line:int -> ?col:int -> code:string ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val severity_to_string : severity -> string

val compare : t -> t -> int
(** Position order (file, line, col), then decreasing severity, then
    code — the order reports are printed in. *)

val is_error : t -> bool

val max_severity : t list -> severity option
(** [None] on an empty list. *)

val pp : Format.formatter -> t -> unit
(** [file:line:col: error[Q005]: message], omitting unknown parts. *)

val to_string : t -> string

val json_escape : string -> string
(** Minimal JSON string escaping (quotes, backslashes, control
    characters) shared by every JSON emitter in the analyzer. *)

val to_json : ?priority:string -> t -> string
(** One JSON object with fields [severity], [code], [file], [line],
    [col], [message] — plus a [priority] field (the catalog's
    capitalized spelling, e.g. ["High"]) when one is supplied.
    Deterministic field order. *)
