type t = { sn_lo : float; sn_hi : float; sp_lo : float; sp_hi : float }

let tol = Dst.Num.float_tolerance
let clamp x = Float.min 1.0 (Float.max 0.0 x)

let make ~sn_lo ~sn_hi ~sp_lo ~sp_hi =
  { sn_lo = clamp sn_lo;
    sn_hi = clamp sn_hi;
    sp_lo = clamp sp_lo;
    sp_hi = clamp sp_hi }

let top = { sn_lo = 0.0; sn_hi = 1.0; sp_lo = 0.0; sp_hi = 1.0 }
let certain = { sn_lo = 1.0; sn_hi = 1.0; sp_lo = 1.0; sp_hi = 1.0 }
let impossible = { sn_lo = 0.0; sn_hi = 0.0; sp_lo = 0.0; sp_hi = 0.0 }

let exact s =
  let sn = Dst.Support.sn s and sp = Dst.Support.sp s in
  { sn_lo = sn; sn_hi = sn; sp_lo = sp; sp_hi = sp }

(* The feasible set is the rectangle cut by sn ≤ sp. It is empty when a
   coordinate interval is inverted or when even the smallest sn exceeds
   the largest sp. *)
let is_empty t =
  t.sn_lo > t.sn_hi +. tol
  || t.sp_lo > t.sp_hi +. tol
  || t.sn_lo > t.sp_hi +. tol

let never_positive t = is_empty t || t.sn_hi <= tol

(* All transfer functions below are monotone in each coordinate on
   [0, 1], so evaluating at the interval ends is exact (for the
   rectangle abstraction). *)
let mul a b =
  { sn_lo = a.sn_lo *. b.sn_lo;
    sn_hi = a.sn_hi *. b.sn_hi;
    sp_lo = a.sp_lo *. b.sp_lo;
    sp_hi = a.sp_hi *. b.sp_hi }

let dj x y = x +. y -. (x *. y)

let disj a b =
  { sn_lo = dj a.sn_lo b.sn_lo;
    sn_hi = dj a.sn_hi b.sn_hi;
    sp_lo = dj a.sp_lo b.sp_lo;
    sp_hi = dj a.sp_hi b.sp_hi }

let neg a =
  { sn_lo = 1.0 -. a.sp_hi;
    sn_hi = 1.0 -. a.sp_lo;
    sp_lo = 1.0 -. a.sn_hi;
    sp_hi = 1.0 -. a.sn_lo }

let hull a b =
  { sn_lo = Float.min a.sn_lo b.sn_lo;
    sn_hi = Float.max a.sn_hi b.sn_hi;
    sp_lo = Float.min a.sp_lo b.sp_lo;
    sp_hi = Float.max a.sp_hi b.sp_hi }

(* Dempster on the boolean frame renormalizes conflict away, which can
   push sn up to 1 even from modest operands (and never below the
   smaller operand's floor once the other side concedes possibility).
   The sound cheap bound: lower ends come from the operands' minima,
   upper ends reach 1 unless both operands are identically impossible. *)
let combine_upper a b =
  if is_empty a then b
  else if is_empty b then a
  else if a.sp_hi <= tol && b.sp_hi <= tol then impossible
  else
    { sn_lo = Float.min a.sn_lo b.sn_lo;
      sn_hi = 1.0;
      sp_lo = Float.min a.sp_lo b.sp_lo;
      sp_hi = 1.0 }

(* Mirrors Erm.Threshold.satisfies: Gt means v > bound + tol, Ge means
   v ≥ bound − tol, and so on. The threshold constrains one field at a
   time, so the feasible region stays a rectangle. *)
let constrain_field op bound (lo, hi) =
  match op with
  | Erm.Threshold.Gt -> (Float.max lo (bound +. tol), hi)
  | Erm.Threshold.Ge -> (Float.max lo (bound -. tol), hi)
  | Erm.Threshold.Lt -> (lo, Float.min hi (bound -. tol))
  | Erm.Threshold.Le -> (lo, Float.min hi (bound +. tol))
  | Erm.Threshold.Eq ->
      (Float.max lo (bound -. tol), Float.min hi (bound +. tol))

let rec constrain_threshold q t =
  match q with
  | Erm.Threshold.Always -> if is_empty t then None else Some t
  | Erm.Threshold.Both (a, b) ->
      Option.bind (constrain_threshold a t) (constrain_threshold b)
  | Erm.Threshold.Cmp (field, op, bound) ->
      let t =
        match field with
        | Erm.Threshold.Sn ->
            let lo, hi = constrain_field op bound (t.sn_lo, t.sn_hi) in
            { t with sn_lo = lo; sn_hi = hi }
        | Erm.Threshold.Sp ->
            let lo, hi = constrain_field op bound (t.sp_lo, t.sp_hi) in
            { t with sp_lo = lo; sp_hi = hi }
      in
      if is_empty t then None else Some t

let pp ppf t =
  Format.fprintf ppf "sn ∈ [%g, %g], sp ∈ [%g, %g]" t.sn_lo t.sn_hi t.sp_lo
    t.sp_hi
