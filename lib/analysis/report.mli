(** Rendering a batch of diagnostics for humans, machines and shells. *)

val print : ?out:Format.formatter -> Diagnostic.t list -> unit
(** Human-readable report: one [file:line:col: severity[CODE]: message]
    line per diagnostic (sorted), then a one-line summary. Prints
    nothing for an empty list. *)

val to_json : Diagnostic.t list -> string
(** The diagnostics (sorted) as a JSON array, one object per finding. *)

val exit_code : Diagnostic.t list -> int
(** [0] when clean (info notes allowed), [1] when the worst finding is a
    warning, [2] when any error is present — the contract of the
    [eridb-lint] executable. *)
