(** Rendering a batch of diagnostics for humans, machines and shells.

    Reports are ordered by catalog priority (Blocker first, Info last;
    codes outside the {!Catalog} sort after Info), with
    {!Diagnostic.compare}'s position order stable within each
    priority. *)

val print : ?out:Format.formatter -> Diagnostic.t list -> unit
(** Human-readable report: one
    [[Priority] file:line:col: severity[CODE]: message] line per
    diagnostic (priority-sorted; the prefix is omitted for codes the
    catalog does not know), then a one-line summary. Prints nothing
    for an empty list. *)

val to_json : Diagnostic.t list -> string
(** The diagnostics (priority-sorted) as a JSON array, one object per
    finding, each carrying a ["priority"] field when its code is in
    the catalog. *)

val exit_code : Diagnostic.t list -> int
(** [0] when clean (info notes allowed), [1] when the worst finding is a
    warning, [2] when any error is present — the contract of the
    [eridb-lint] executable's file/query modes. *)
