(** The [.erd] relation linter: validates source files without loading
    them into the runtime.

    Where {!Erm.Io.load} aborts at the first defect, the linter scans the
    whole file and reports every finding as a positioned
    {!Diagnostic.t} — mass functions that do not normalize within the
    float tolerance (E009), mass on the empty set (E010), negative
    masses (E011), focal values outside the declared domain (E012),
    duplicate keys (E013), malformed or out-of-range membership pairs
    (E014–E015), CWA_ER-inadmissible [sn ≤ 0] tuples (E016), plus the
    structural defects (arity, declarations, keys, syntax; E001–E008).
    Zero masses and duplicate focal members, which the runtime silently
    folds away, are reported as warnings (E019–E020).

    Guarantee (property-tested): a file the linter reports no errors for
    loads through {!Erm.Io.relations_of_string} without raising. *)

val lint_string : ?file:string -> string -> Diagnostic.t list
(** Lints [.erd] source text. [file] tags the diagnostics' positions. *)

val lint_file : string -> Diagnostic.t list
(** Reads and lints a file; an unreadable file yields a single [E017]
    error rather than an exception. *)
