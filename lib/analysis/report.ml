let print ?(out = Format.std_formatter) diags =
  match List.sort Diagnostic.compare diags with
  | [] -> ()
  | diags ->
      List.iter (fun d -> Format.fprintf out "%a@." Diagnostic.pp d) diags;
      let count sev =
        List.length (List.filter (fun d -> d.Diagnostic.severity = sev) diags)
      in
      let errors = count Diagnostic.Error
      and warnings = count Diagnostic.Warning in
      Format.fprintf out "%d error%s, %d warning%s@." errors
        (if errors = 1 then "" else "s")
        warnings
        (if warnings = 1 then "" else "s")

let to_json diags =
  let diags = List.sort Diagnostic.compare diags in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n  ";
      Buffer.add_string buf (Diagnostic.to_json d))
    diags;
  if diags <> [] then Buffer.add_string buf "\n";
  Buffer.add_string buf "]";
  Buffer.contents buf

let exit_code diags =
  match Diagnostic.max_severity diags with
  | Some Diagnostic.Error -> 2
  | Some Diagnostic.Warning -> 1
  | Some Diagnostic.Info | None -> 0
