(* Findings are presented most-severe-first by catalog priority, with
   the position-based Diagnostic.compare order stable inside each
   priority band. Codes the catalog does not know rank below Info —
   they still print, just last and without a priority tag. *)

let priority_key d =
  match Catalog.priority_for d.Diagnostic.code with
  | Some p -> Checkdef.priority_rank p
  | None -> -1

let compare_prioritized a b =
  let c = Int.compare (priority_key b) (priority_key a) in
  if c <> 0 then c else Diagnostic.compare a b

let sort diags = List.sort compare_prioritized diags

let print ?(out = Format.std_formatter) diags =
  match sort diags with
  | [] -> ()
  | diags ->
      List.iter
        (fun d ->
          (match Catalog.priority_for d.Diagnostic.code with
          | Some p ->
              Format.fprintf out "[%s] " (Checkdef.priority_to_string p)
          | None -> ());
          Format.fprintf out "%a@." Diagnostic.pp d)
        diags;
      let count sev =
        List.length (List.filter (fun d -> d.Diagnostic.severity = sev) diags)
      in
      let errors = count Diagnostic.Error
      and warnings = count Diagnostic.Warning in
      Format.fprintf out "%d error%s, %d warning%s@." errors
        (if errors = 1 then "" else "s")
        warnings
        (if warnings = 1 then "" else "s")

let to_json diags =
  let diags = sort diags in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n  ";
      let priority =
        Option.map Checkdef.priority_to_string
          (Catalog.priority_for d.Diagnostic.code)
      in
      Buffer.add_string buf (Diagnostic.to_json ?priority d))
    diags;
  if diags <> [] then Buffer.add_string buf "\n";
  Buffer.add_string buf "]";
  Buffer.contents buf

let exit_code diags =
  match Diagnostic.max_severity diags with
  | Some Diagnostic.Error -> 2
  | Some Diagnostic.Warning -> 1
  | Some Diagnostic.Info | None -> 0
