let tol = Dst.Num.float_tolerance

(* Build a diagnostic whose severity follows the check's priority, so
   Blocker/High sweeps gate like errors and Info sweeps stay advisory. *)
let finding priority ?file ~code fmt =
  match Checkdef.severity_of_priority priority with
  | Diagnostic.Error -> Diagnostic.error ?file ~code fmt
  | Diagnostic.Warning -> Diagnostic.warning ?file ~code fmt
  | Diagnostic.Info -> Diagnostic.info ?file ~code fmt

let key_label t = String.concat ", " (List.map Dst.Value.to_string (Erm.Etuple.key t))

(* ------------------------------------------------------------------ *)
(* Telemetry harvest                                                   *)

let rollup_prefix = "dst.combine.kappa_by_source."

let kappa_rollups ?registry () =
  List.filter_map
    (fun (name, stat) ->
      match stat with
      | Obs.Metrics.Histogram { count; sum; max; _ } when count > 0 ->
          Some
            {
              Checkdef.rollup_source =
                String.sub name
                  (String.length rollup_prefix)
                  (String.length name - String.length rollup_prefix);
              rollup_count = count;
              rollup_mean = sum /. float_of_int count;
              rollup_max = max;
            }
      | _ -> None)
    (Obs.Metrics.with_prefix ?registry rollup_prefix)

(* Combine nodes inside an absorption Step's [from, to) range carry the
   per-cell merge κ values; the Step's args name the absorbed source. *)
let merge_records () =
  if not (Obs.Provenance.on ()) then []
  else begin
    let out = ref [] in
    let n = Obs.Provenance.count () in
    for i = 0 to n - 1 do
      let node = Obs.Provenance.node i in
      if node.Obs.Provenance.kind = Obs.Provenance.Step then
        match
          ( List.assoc_opt "source" node.Obs.Provenance.args,
            List.assoc_opt "from" node.Obs.Provenance.args,
            List.assoc_opt "to" node.Obs.Provenance.args )
        with
        | Some source, Some from_s, Some to_s -> (
            match (int_of_string_opt from_s, int_of_string_opt to_s) with
            | Some lo, Some hi ->
                for j = lo to Int.min hi n - 1 do
                  let m = Obs.Provenance.node j in
                  match (m.Obs.Provenance.kind, m.Obs.Provenance.kappa) with
                  | Obs.Provenance.Combine, Some k ->
                      out :=
                        {
                          Checkdef.merge_source = source;
                          merge_label = m.Obs.Provenance.label;
                          merge_kappa = k;
                        }
                        :: !out
                  | _ -> ()
                done
            | _ -> ())
        | _ -> ()
    done;
    List.rev !out
  end

let subject ?(thresholds = Checkdef.default_thresholds) ?(telemetry = true)
    ?store relations =
  let store =
    Option.map
      (fun t ->
        {
          Checkdef.store_name = Store.Estore.name t;
          store_dir = Store.Estore.dir t;
          store_version = Store.Estore.version t;
          store_segments =
            List.rev
              (Store.Estore.fold_segments t ~init:[] ~f:(fun acc seg records ->
                   (seg, records) :: acc));
        })
      store
  in
  {
    Checkdef.relations;
    store;
    rollups = (if telemetry then kappa_rollups () else []);
    merges = (if telemetry then merge_records () else []);
    thresholds;
  }

(* ------------------------------------------------------------------ *)
(* S001 — dangling cross-relation key references                       *)

(* A definite non-key attribute that shares its name (and value kind)
   with another relation's single definite key attribute is treated as
   a foreign key; values that resolve to no key there dangle. *)
let s001 (s : Checkdef.store_subject) =
  let targets =
    List.filter_map
      (fun (rname, r) ->
        let schema = Erm.Relation.schema r in
        match Erm.Schema.key schema with
        | [ k ] -> (
            match Erm.Attr.kind k with
            | Erm.Attr.Definite value_kind ->
                let keys = Hashtbl.create (Erm.Relation.cardinal r) in
                Erm.Relation.iter
                  (fun t ->
                    match Erm.Etuple.key t with
                    | [ v ] -> Hashtbl.replace keys (Dst.Value.to_string v) ()
                    | _ -> ())
                  r;
                Some (rname, Erm.Attr.name k, value_kind, keys)
            | Erm.Attr.Evidential _ -> None)
        | _ -> None)
      s.Checkdef.relations
  in
  List.concat_map
    (fun (rname, r) ->
      let schema = Erm.Relation.schema r in
      List.concat_map
        (fun attr ->
          match Erm.Attr.kind attr with
          | Erm.Attr.Evidential _ -> []
          | Erm.Attr.Definite kind ->
              let aname = Erm.Attr.name attr in
              List.concat_map
                (fun (tname, kname, tkind, keys) ->
                  if
                    String.equal tname rname
                    || (not (String.equal kname aname))
                    || not (String.equal kind tkind)
                  then []
                  else begin
                    let missing = ref [] in
                    let seen = Hashtbl.create 16 in
                    Erm.Relation.iter
                      (fun t ->
                        let v = Erm.Etuple.definite_value schema t aname in
                        let vs = Dst.Value.to_string v in
                        if
                          (not (Hashtbl.mem keys vs))
                          && not (Hashtbl.mem seen vs)
                        then begin
                          Hashtbl.add seen vs ();
                          missing := (vs, key_label t) :: !missing
                        end)
                      r;
                    List.rev_map
                      (fun (vs, at) ->
                        finding Checkdef.High ~file:rname ~code:"S001"
                          "dangling reference: %s.%s = %s matches no %s key \
                           (first at key (%s))"
                          rname aname vs tname at)
                      !missing
                  end)
                targets)
        (Erm.Schema.nonkey schema))
    s.Checkdef.relations

(* ------------------------------------------------------------------ *)
(* S002 — dormant domain values (flat-mass Bel/Pls over every tuple)   *)

let s002 (s : Checkdef.store_subject) =
  let eps = s.Checkdef.thresholds.Checkdef.dormant_pls in
  List.concat_map
    (fun (rname, r) ->
      if Erm.Relation.is_empty r then []
      else
        let schema = Erm.Relation.schema r in
        List.concat_map
          (fun attr ->
            match Erm.Attr.domain attr with
            | None -> []
            | Some domain ->
                let aname = Erm.Attr.name attr in
                let interner = Dst.Interner.create domain in
                (* A value stays a dormancy candidate while every cell
                   seen so far keeps Bel = 0 and Pls <= eps. *)
                let candidates =
                  ref (Dst.Vset.to_list (Dst.Domain.values domain))
                in
                Erm.Relation.iter
                  (fun t ->
                    if !candidates <> [] then
                      match Erm.Etuple.cell schema t aname with
                      | Erm.Etuple.Definite _ -> candidates := []
                      | Erm.Etuple.Evidence e ->
                          let fm = Dst.Flat_mass.of_mass interner e in
                          candidates :=
                            List.filter
                              (fun v ->
                                let sv = Dst.Vset.singleton v in
                                Dst.Flat_mass.bel fm sv = 0.0
                                && Dst.Flat_mass.pls fm sv <= eps)
                              !candidates)
                  r;
                List.map
                  (fun v ->
                    finding Checkdef.Low ~file:rname ~code:"S002"
                      "domain value %s of %s.%s is dormant: Bel = 0 and Pls \
                       <= %g in every stored tuple"
                      (Dst.Value.to_string v) rname aname eps)
                  !candidates)
          (Erm.Schema.nonkey schema))
    s.Checkdef.relations

(* ------------------------------------------------------------------ *)
(* S003 — CWA_ER violations in stored tuples                           *)

let s003 (s : Checkdef.store_subject) =
  List.concat_map
    (fun (rname, r) ->
      Erm.Relation.fold
        (fun t acc ->
          let tm = Erm.Etuple.tm t in
          let sn = Dst.Support.sn tm and sp = Dst.Support.sp tm in
          if sn <= 0.0 || sn > sp +. tol || sp > 1.0 +. tol then
            finding Checkdef.Blocker ~file:rname ~code:"S003"
              "stored tuple (%s) violates CWA_ER: membership (sn, sp) = \
               (%g, %g)"
              (key_label t) sn sp
            :: acc
          else acc)
        r []
      |> List.rev)
    s.Checkdef.relations

(* ------------------------------------------------------------------ *)
(* S004 — per-source disagreement from the κ-by-source rollups         *)

let s004 (s : Checkdef.store_subject) =
  let k0 = s.Checkdef.thresholds.Checkdef.source_kappa in
  List.filter_map
    (fun (r : Checkdef.kappa_rollup) ->
      if r.Checkdef.rollup_mean >= k0 then
        Some
          (finding Checkdef.High ~file:r.Checkdef.rollup_source ~code:"S004"
             "source %s disagrees with the consensus: mean merge kappa \
              %.3f over %d combination(s) (max %.3f, threshold %.2f)"
             r.Checkdef.rollup_source r.Checkdef.rollup_mean
             r.Checkdef.rollup_count r.Checkdef.rollup_max k0)
      else None)
    s.Checkdef.rollups

(* ------------------------------------------------------------------ *)
(* S005 — individual high-conflict cell merges                         *)

let truncate_label l =
  if String.length l <= 48 then l else String.sub l 0 45 ^ "..."

let s005 (s : Checkdef.store_subject) =
  let k0 = s.Checkdef.thresholds.Checkdef.merge_kappa in
  List.filter_map
    (fun (m : Checkdef.merge_record) ->
      if m.Checkdef.merge_kappa >= k0 then
        Some
          (finding Checkdef.Medium ~file:m.Checkdef.merge_source ~code:"S005"
             "high-conflict merge absorbing %s: kappa = %.3f on %s"
             m.Checkdef.merge_source m.Checkdef.merge_kappa
             (truncate_label m.Checkdef.merge_label))
      else None)
    s.Checkdef.merges

(* ------------------------------------------------------------------ *)
(* S006 — duplicate-entity suspicion via normalized keys               *)

let normalize_key raw =
  let buf = Buffer.create (String.length raw) in
  String.iter
    (fun c ->
      match c with
      | 'A' .. 'Z' -> Buffer.add_char buf (Char.lowercase_ascii c)
      | 'a' .. 'z' | '0' .. '9' -> Buffer.add_char buf c
      | _ -> ())
    raw;
  Buffer.contents buf

let s006 (s : Checkdef.store_subject) =
  List.concat_map
    (fun (rname, r) ->
      let groups = Hashtbl.create 64 in
      let order = ref [] in
      Erm.Relation.iter
        (fun t ->
          let k = key_label t in
          let norm = normalize_key k in
          match Hashtbl.find_opt groups norm with
          | Some ks -> Hashtbl.replace groups norm (k :: ks)
          | None ->
              Hashtbl.add groups norm [ k ];
              order := norm :: !order)
        r;
      List.filter_map
        (fun norm ->
          match Hashtbl.find groups norm with
          | [] | [ _ ] -> None
          | ks ->
              Some
                (finding Checkdef.Medium ~file:rname ~code:"S006"
                   "keys %s of %s normalize to the same entity '%s' — \
                    suspected duplicates"
                   (String.concat ", "
                      (List.map (Printf.sprintf "(%s)") (List.rev ks)))
                   rname norm))
        (List.rev !order))
    s.Checkdef.relations

(* ------------------------------------------------------------------ *)
(* S007 — value clones: distinct keys, bit-identical non-key cells     *)

let cell_digest schema t =
  let parts =
    List.map
      (fun attr ->
        match Erm.Etuple.cell schema t (Erm.Attr.name attr) with
        | Erm.Etuple.Definite v -> "d:" ^ Dst.Value.to_string v
        | Erm.Etuple.Evidence e -> "e:" ^ Dst.Mass.F.digest e)
      (Erm.Schema.nonkey schema)
  in
  Digest.to_hex (Digest.string (String.concat "|" parts))

let s007 (s : Checkdef.store_subject) =
  List.concat_map
    (fun (rname, r) ->
      let schema = Erm.Relation.schema r in
      if Erm.Schema.nonkey schema = [] then []
      else begin
        let groups = Hashtbl.create 64 in
        let order = ref [] in
        Erm.Relation.iter
          (fun t ->
            let d = cell_digest schema t in
            match Hashtbl.find_opt groups d with
            | Some ks -> Hashtbl.replace groups d (key_label t :: ks)
            | None ->
                Hashtbl.add groups d [ key_label t ];
                order := d :: !order)
          r;
        List.filter_map
          (fun d ->
            match Hashtbl.find groups d with
            | [] | [ _ ] -> None
            | ks ->
                Some
                  (finding Checkdef.Low ~file:rname ~code:"S007"
                     "tuples %s of %s carry bit-identical non-key values \
                      (digest %s) — suspected clones"
                     (String.concat ", "
                        (List.map (Printf.sprintf "(%s)") (List.rev ks)))
                     rname (String.sub d 0 8)))
          (List.rev !order)
      end)
    s.Checkdef.relations

(* ------------------------------------------------------------------ *)
(* S008/S009 — segment-history checks                                  *)

let s008 (s : Checkdef.store_subject) =
  match s.Checkdef.store with
  | None -> []
  | Some meta ->
      let upserted = Hashtbl.create 256 in
      let out = ref [] in
      List.iter
        (fun (seg, records) ->
          List.iter
            (fun record ->
              match record with
              | Store.Segment.Schema_rec _ -> ()
              | Store.Segment.Upsert { digest; _ } ->
                  Hashtbl.replace upserted digest ()
              | Store.Segment.Delete { digest } ->
                  if not (Hashtbl.mem upserted digest) then
                    out :=
                      finding Checkdef.Medium
                        ~file:
                          (Filename.concat meta.Checkdef.store_dir seg)
                        ~code:"S008"
                        "delete of digest %s… has no prior upsert in the \
                         committed history"
                        (String.sub digest 0
                           (Int.min 8 (String.length digest)))
                      :: !out)
            records)
        meta.Checkdef.store_segments;
      List.rev !out

let s009 (s : Checkdef.store_subject) =
  match s.Checkdef.store with
  | None -> []
  | Some meta ->
      let live = Hashtbl.create 256 in
      let records = ref 0 in
      List.iter
        (fun (_, rs) ->
          List.iter
            (fun record ->
              match record with
              | Store.Segment.Schema_rec _ -> ()
              | Store.Segment.Upsert { digest; _ } ->
                  incr records;
                  Hashtbl.replace live digest ()
              | Store.Segment.Delete { digest } ->
                  incr records;
                  Hashtbl.remove live digest)
            rs)
        meta.Checkdef.store_segments;
      let live = Hashtbl.length live in
      let dead = !records - live in
      if
        float_of_int dead
        > s.Checkdef.thresholds.Checkdef.bloat_factor *. float_of_int live
        && dead > 0
      then
        [
          finding Checkdef.Info ~file:meta.Checkdef.store_dir ~code:"S009"
            "store %s v%d holds %d dead record(s) vs %d live across %d \
             segment(s); compaction would shrink it"
            meta.Checkdef.store_name meta.Checkdef.store_version dead live
            (List.length meta.Checkdef.store_segments);
        ]
      else []

(* ------------------------------------------------------------------ *)
(* S010 — empty relations                                              *)

let s010 (s : Checkdef.store_subject) =
  List.filter_map
    (fun (rname, r) ->
      if Erm.Relation.is_empty r then
        Some
          (finding Checkdef.Info ~file:rname ~code:"S010"
             "relation %s holds no tuples" rname)
      else None)
    s.Checkdef.relations

(* ------------------------------------------------------------------ *)
(* The registry slice and the driver                                   *)

let store_check ~code ~name ~priority ~description run =
  {
    Checkdef.code;
    name;
    priority;
    scope = Checkdef.Store;
    description;
    run =
      (function
      | Checkdef.Store_subject s -> run s
      | Checkdef.File_subject _ | Checkdef.Query_subject _ -> []);
  }

let checks =
  [
    store_check ~code:"S001" ~name:"Dangling_Key_Reference"
      ~priority:Checkdef.High
      ~description:
        "Definite attributes sharing a name and kind with another \
         relation's key whose values resolve to no key there — broken \
         cross-relation references after integration."
      s001;
    store_check ~code:"S002" ~name:"Dormant_Domain_Value"
      ~priority:Checkdef.Low
      ~description:
        "Declared domain values with Bel = 0 and Pls below the dormancy \
         threshold in every stored tuple of an attribute — evidence the \
         merged store has effectively ruled out everywhere (flat-mass \
         kernels)."
      s002;
    store_check ~code:"S003" ~name:"CWA_Store_Violation"
      ~priority:Checkdef.Blocker
      ~description:
        "Stored tuples whose membership support violates CWA_ER (sn <= 0) \
         or the 0 <= sn <= sp <= 1 axioms — the store must never hold \
         them."
      s003;
    store_check ~code:"S004" ~name:"Source_Disagreement"
      ~priority:Checkdef.High
      ~description:
        "Sources whose mean merge conflict (dst.combine.kappa_by_source \
         rollup) meets the disagreement threshold — stale or \
         systematically conflicting feeds."
      s004;
    store_check ~code:"S005" ~name:"High_Conflict_Merge"
      ~priority:Checkdef.Medium
      ~description:
        "Individual cell merges whose recorded Dempster kappa meets the \
         high-conflict threshold (provenance Step ranges) — \
         normalization is hiding near-total conflict (Zadeh's critique)."
      s005;
    store_check ~code:"S006" ~name:"Duplicate_Entity_Suspect"
      ~priority:Checkdef.Medium
      ~description:
        "Distinct keys that normalize (case/punctuation-insensitively) to \
         the same entity string — probable duplicate entities the \
         key-based merge could not unify."
      s006;
    store_check ~code:"S007" ~name:"Value_Clone_Suspect"
      ~priority:Checkdef.Low
      ~description:
        "Distinct keys carrying bit-identical non-key cell values \
         (value-digest clustering) — suspected re-keyed copies of one \
         entity."
      s007;
    store_check ~code:"S008" ~name:"Dangling_Delete"
      ~priority:Checkdef.Medium
      ~description:
        "Delete records in the committed segment history whose digest was \
         never upserted — a write-path bug or foreign segment."
      s008;
    store_check ~code:"S009" ~name:"Segment_Bloat" ~priority:Checkdef.Info
      ~description:
        "Dead (superseded) records outnumbering live tuples beyond the \
         bloat factor — the store would benefit from compaction."
      s009;
    store_check ~code:"S010" ~name:"Empty_Relation" ~priority:Checkdef.Info
      ~description:"Stored or bound relations holding no tuples at all."
      s010;
  ]

let run (subject : Checkdef.store_subject) =
  let body () =
    let diags =
      List.concat_map
        (fun c -> c.Checkdef.run (Checkdef.Store_subject subject))
        checks
    in
    if Obs.Metrics.on () then begin
      Obs.Metrics.incr "analysis.sweep.runs";
      Obs.Metrics.incr ~by:(List.length checks) "analysis.sweep.checks";
      Obs.Metrics.incr
        ~by:(List.length subject.Checkdef.relations)
        "analysis.sweep.relations";
      Obs.Metrics.incr
        ~by:
          (List.fold_left
             (fun acc (_, r) -> acc + Erm.Relation.cardinal r)
             0 subject.Checkdef.relations)
        "analysis.sweep.tuples";
      Obs.Metrics.incr ~by:(List.length diags) "analysis.sweep.findings"
    end;
    List.sort Diagnostic.compare diags
  in
  if Obs.Trace.on () then
    Obs.Trace.with_span ~cat:"analysis"
      ~args:
        [
          ("detail",
           Printf.sprintf "%d relation(s)"
             (List.length subject.Checkdef.relations));
        ]
      "analysis.sweep" body
  else body ()
