type priority = Blocker | High | Medium | Low | Info

let priority_rank = function
  | Blocker -> 4
  | High -> 3
  | Medium -> 2
  | Low -> 1
  | Info -> 0

let priority_to_string = function
  | Blocker -> "Blocker"
  | High -> "High"
  | Medium -> "Medium"
  | Low -> "Low"
  | Info -> "Info"

let priority_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "blocker" -> Some Blocker
  | "high" -> Some High
  | "medium" -> Some Medium
  | "low" -> Some Low
  | "info" -> Some Info
  | _ -> None

let severity_of_priority = function
  | Blocker | High -> Diagnostic.Error
  | Medium | Low -> Diagnostic.Warning
  | Info -> Diagnostic.Info

type scope = File | Query | Store

let scope_to_string = function
  | File -> "file"
  | Query -> "query"
  | Store -> "store"

type thresholds = {
  dormant_pls : float;
  source_kappa : float;
  merge_kappa : float;
  bloat_factor : float;
}

let default_thresholds =
  { dormant_pls = 0.02;
    source_kappa = 0.6;
    merge_kappa = 0.9;
    bloat_factor = 1.0 }

type kappa_rollup = {
  rollup_source : string;
  rollup_count : int;
  rollup_mean : float;
  rollup_max : float;
}

type merge_record = {
  merge_source : string;
  merge_label : string;
  merge_kappa : float;
}

type store_subject = {
  relations : (string * Erm.Relation.t) list;
  store : store_meta option;
  rollups : kappa_rollup list;
  merges : merge_record list;
  thresholds : thresholds;
}

and store_meta = {
  store_name : string;
  store_dir : string;
  store_version : int;
  store_segments : (string * Store.Segment.record list) list;
}

type subject =
  | File_subject of { path : string; content : string }
  | Query_subject of {
      env : (string * Erm.Relation.t) list;
      file : string option;
      text : string;
    }
  | Store_subject of store_subject

type check = {
  code : string;
  name : string;
  priority : priority;
  scope : scope;
  description : string;
  run : subject -> Diagnostic.t list;
}
