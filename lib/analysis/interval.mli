(** The abstract domain of the plan checker: rectangular bounds on
    support pairs.

    An element over-approximates the set of [(sn, sp)] support pairs a
    tuple (or a predicate evaluation) can carry at some point of a plan:
    [sn ∈ [sn_lo, sn_hi]], [sp ∈ [sp_lo, sp_hi]], intersected with the
    support invariant [sn ≤ sp]. Every transfer function is sound: if a
    concrete execution can produce a pair, the abstract result contains
    it. The checker derives static emptiness (CWA_ER stores only
    [sn > 0]) and membership-threshold satisfiability from these
    bounds. *)

type t = { sn_lo : float; sn_hi : float; sp_lo : float; sp_hi : float }

val top : t
(** All admissible pairs: [[0,1] × [0,1]]. *)

val certain : t
(** Exactly [(1, 1)]. *)

val impossible : t
(** Exactly [(0, 0)]. *)

val exact : Dst.Support.t -> t

val make : sn_lo:float -> sn_hi:float -> sp_lo:float -> sp_hi:float -> t
(** Clamps each bound into [[0, 1]]. *)

val is_empty : t -> bool
(** No admissible pair satisfies the bounds ([sn_lo > sp_hi] or an
    inverted coordinate interval, beyond the float tolerance). *)

val never_positive : t -> bool
(** [sn_hi ≤ 0]: no concretization has positive necessary support, so
    under CWA_ER every tuple carrying it is dropped by closure. *)

val mul : t -> t -> t
(** Componentwise product — [F_TM] and independent conjunction. *)

val disj : t -> t -> t
(** Independent disjunction [a + b − a·b], componentwise. *)

val neg : t -> t
(** Support-logic negation [(1 − sp, 1 − sn)]. *)

val hull : t -> t -> t
(** Smallest rectangle containing both — the join of the domain. *)

val combine_upper : t -> t -> t
(** Sound over-approximation of Dempster combination on the boolean
    frame: combination can move mass anywhere between the operands'
    extremes and [1], so the result widens towards certainty. *)

val constrain_threshold : Erm.Threshold.t -> t -> t option
(** Intersects the bounds with a membership threshold's feasible region,
    using the same float tolerance as {!Erm.Threshold.satisfies}.
    [None] when no admissible pair can satisfy the threshold — the
    threshold is statically unsatisfiable given the derived bounds. *)

val pp : Format.formatter -> t -> unit
