(** First-class data-quality checks: the vocabulary of the catalog.

    Every check the analyzer can run — the per-file E-lints, the
    per-query Q-checks and the whole-store S-sweeps — is described by
    one {!check} value: a stable code, a display name, a priority in
    the reactome [descriptions.tsv] style (Blocker → Info), the scope
    it runs at and a runner over a {!subject}. {!Catalog} assembles the
    full registry; this module only defines the types so the front
    ends ({!Erd_lint}, {!Check}, {!Sweep}) and the registry can share
    them without cycles. *)

type priority = Blocker | High | Medium | Low | Info

val priority_rank : priority -> int
(** [Blocker] = 4 … [Info] = 0 — reports sort descending on this. *)

val priority_to_string : priority -> string
(** Capitalized, as the TSV export prints it: ["Blocker"], ["High"]… *)

val priority_of_string : string -> priority option
(** Case-insensitive inverse of {!priority_to_string}. *)

val severity_of_priority : priority -> Diagnostic.severity
(** [Blocker]/[High] → [Error], [Medium]/[Low] → [Warning],
    [Info] → [Info] — how sweep findings pick their severity. *)

type scope = File | Query | Store

val scope_to_string : scope -> string
(** Lower-case: ["file"], ["query"], ["store"]. *)

(** Tunable cut-offs of the store sweeps. All are compared with [>=]
    against derived statistics; see each S-check's description. *)
type thresholds = {
  dormant_pls : float;
      (** S002: a domain value with [Bel = 0] and [Pls <=] this in
          every stored tuple is dormant (default 0.02). *)
  source_kappa : float;
      (** S004: a source whose mean merge κ meets this disagrees with
          the consensus (default 0.6). *)
  merge_kappa : float;
      (** S005: one cell merge with κ at or above this is a
          high-conflict combination (default 0.9). *)
  bloat_factor : float;
      (** S009: dead (superseded) records beyond [factor × live]
          suggest compaction (default 1.0). *)
}

val default_thresholds : thresholds

(** Per-source agreement rollup, read back from the
    [dst.combine.kappa_by_source.*] histograms the integration layer
    records. *)
type kappa_rollup = {
  rollup_source : string;
  rollup_count : int;  (** combinations attributed to the source *)
  rollup_mean : float;  (** mean κ over those combinations *)
  rollup_max : float;
}

(** One recorded cell combination, attributed to the absorption Step
    that produced it (from the provenance arena). *)
type merge_record = {
  merge_source : string;  (** the absorbed source's name *)
  merge_label : string;  (** the combine node's value label *)
  merge_kappa : float;
}

(** What a store sweep looks at: the merged/bound relations, optional
    on-disk store metadata (committed segments in manifest order) and
    the merge telemetry harvested from the ambient observability
    layer. *)
type store_subject = {
  relations : (string * Erm.Relation.t) list;
  store : store_meta option;
  rollups : kappa_rollup list;
  merges : merge_record list;
  thresholds : thresholds;
}

and store_meta = {
  store_name : string;
  store_dir : string;
  store_version : int;
  store_segments : (string * Store.Segment.record list) list;
      (** [(file, records)] in manifest (= commit) order. *)
}

type subject =
  | File_subject of { path : string; content : string }
  | Query_subject of {
      env : (string * Erm.Relation.t) list;
      file : string option;
      text : string;
    }
  | Store_subject of store_subject

type check = {
  code : string;  (** stable identifier: ["E012"], ["Q005"], ["S001"] *)
  name : string;  (** reactome-style display name, e.g.
                      ["Dangling_Key_Reference"] *)
  priority : priority;
  scope : scope;
  description : string;  (** one sentence for the TSV/JSON inventory *)
  run : subject -> Diagnostic.t list;
      (** Findings of {e this} check only; [[]] on subjects outside the
          check's scope. *)
}
