type result = {
  schema : Erm.Schema.t option;
  tm : Interval.t;
  empty : bool;
  diagnostics : Diagnostic.t list;
}

(* Diagnostics accumulate in a mutable bag so the traversal can stay a
   plain fold over the AST; [push] records, [count] lets callers detect
   whether a sub-analysis already reported an error (to avoid stacking a
   summary diagnostic on top of a precise one). *)
type bag = { mutable diags : Diagnostic.t list; file : string option }

let push bag d = bag.diags <- d :: bag.diags

let errors_in bag = List.length (List.filter Diagnostic.is_error bag.diags)

let err bag ~code fmt =
  Format.kasprintf
    (fun m -> push bag (Diagnostic.error ?file:bag.file ~code "%s" m))
    fmt

let warn bag ~code fmt =
  Format.kasprintf
    (fun m -> push bag (Diagnostic.warning ?file:bag.file ~code "%s" m))
    fmt

let note bag ~code fmt =
  Format.kasprintf
    (fun m -> push bag (Diagnostic.info ?file:bag.file ~code "%s" m))
    fmt

(* ------------------------------------------------------------------ *)
(* Operand typing                                                      *)

type otype =
  | T_definite of string  (* a definite attribute of this value kind *)
  | T_evidential of Dst.Domain.t
  | T_values of Dst.Value.t list  (* scalar or set literal *)
  | T_unknown  (* unresolvable; a diagnostic was already pushed *)

let kinds_of = function
  | T_definite k -> [ k ]
  | T_evidential d ->
      List.sort_uniq String.compare
        (List.map Dst.Value.kind_name (Dst.Vset.to_list (Dst.Domain.values d)))
  | T_values vs ->
      List.sort_uniq String.compare (List.map Dst.Value.kind_name vs)
  | T_unknown -> []

(* The finite set of values an operand can denote, when one exists.
   Definite attributes are unbounded; literals and evidential domains
   are finite. *)
let value_set = function
  | T_definite _ | T_unknown -> None
  | T_evidential d -> Some (Dst.Domain.values d)
  | T_values vs -> Some (Dst.Vset.of_list vs)

let pp_values ppf vs =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Dst.Value.pp)
    vs

let operand_type bag schema ~peer op =
  let resolve_attr a =
    match Erm.Schema.find_opt schema a with
    | None ->
        err bag ~code:"Q002" "unknown attribute %s" a;
        T_unknown
    | Some attr -> (
        match Erm.Attr.kind attr with
        | Erm.Attr.Definite k -> T_definite k
        | Erm.Attr.Evidential d -> T_evidential d)
  in
  match op with
  | Query.Ast.Attr a -> resolve_attr a
  | Query.Ast.Scalar v -> T_values [ v ]
  | Query.Ast.Set_lit vs -> T_values vs
  | Query.Ast.Evidence_lit raw -> (
      (* An evidence literal binds against its peer attribute's frame;
         Eval fails when the peer is not an evidential attribute, and
         the Dst parser fails on malformed literals or values outside
         the frame. All three become static findings. *)
      let peer_attr =
        match peer with
        | Query.Ast.Attr a -> Erm.Schema.find_opt schema a
        | _ -> None
      in
      match peer_attr with
      | None ->
          err bag ~code:"Q015"
            "evidence literal %s needs an attribute on the other side" raw;
          T_unknown
      | Some attr -> (
          match Erm.Attr.domain attr with
          | None ->
              err bag ~code:"Q015"
                "evidence literal %s compared against definite attribute %s"
                raw (Erm.Attr.name attr);
              T_unknown
          | Some dom -> (
              match Dst.Evidence.of_string dom raw with
              | _ -> T_evidential dom
              | exception Dst.Evidence.Parse_error (_, m) ->
                  err bag ~code:"Q015" "bad evidence literal %s: %s" raw m;
                  T_unknown
              | exception Dst.Mass.F.Invalid_mass m ->
                  err bag ~code:"Q015" "bad evidence literal %s: %s" raw m;
                  T_unknown)))

(* ------------------------------------------------------------------ *)
(* Predicate analysis                                                  *)

let ordered = function
  | Erm.Predicate.Lt | Erm.Predicate.Le | Erm.Predicate.Gt | Erm.Predicate.Ge
    ->
      true
  | Erm.Predicate.Eq | Erm.Predicate.Ne -> false

let pp_operand = Query.Ast.pp_operand

let cmp_interval bag cmp x y tx ty =
  let kx = kinds_of tx and ky = kinds_of ty in
  let common = List.filter (fun k -> List.mem k ky) kx in
  let describe () =
    Format.asprintf "%a %s %a" pp_operand x
      (Erm.Predicate.cmp_to_string cmp)
      pp_operand y
  in
  if tx = T_unknown || ty = T_unknown then Interval.top
  else if common = [] then
    if ordered cmp then begin
      (* compare_ordered raises Type_mismatch at runtime. *)
      err bag ~code:"Q003"
        "type mismatch in θ-predicate %s: no common value kind between %s \
         and %s"
        (describe ())
        (String.concat "/" kx) (String.concat "/" ky);
      Interval.top
    end
    else if cmp = Erm.Predicate.Eq then begin
      warn bag ~code:"Q004"
        "θ-predicate %s is statically false: operands have no common value \
         kind"
        (describe ());
      Interval.impossible
    end
    else (* Ne across kinds is statically true *) Interval.certain
  else
    match (value_set tx, value_set ty) with
    | Some sx, Some sy when cmp = Erm.Predicate.Eq && Dst.Vset.disjoint sx sy
      ->
        warn bag ~code:"Q004"
          "θ-predicate %s is statically false: the operand domains %a and \
           %a are disjoint — equality can never yield definitely-true mass"
          (describe ())
          pp_values (Dst.Vset.to_list sx) pp_values (Dst.Vset.to_list sy);
        Interval.impossible
    | Some sx, Some sy when cmp = Erm.Predicate.Ne && Dst.Vset.disjoint sx sy
      ->
        Interval.certain
    | _ -> Interval.top

let is_interval bag schema a vs =
  match Erm.Schema.find_opt schema a with
  | None ->
      err bag ~code:"Q002" "unknown attribute %s" a;
      Interval.top
  | Some attr -> (
      match Erm.Attr.kind attr with
      | Erm.Attr.Evidential dom ->
          let omega = Dst.Domain.values dom in
          let set = Dst.Vset.of_list vs in
          let live = Dst.Vset.inter set omega in
          let dead = Dst.Vset.diff set omega in
          if Dst.Vset.is_empty live then begin
            err bag ~code:"Q005"
              "%s IS %a is statically empty under CWA_ER: the constant set \
               is disjoint from the domain %a of %s"
              a pp_values vs pp_values (Dst.Vset.to_list omega) a;
            Interval.impossible
          end
          else begin
            if not (Dst.Vset.is_empty dead) then
              warn bag ~code:"Q004"
                "%s IS %a: value(s) %a are outside the domain of %s and can \
                 never match"
                a pp_values vs pp_values (Dst.Vset.to_list dead) a;
            if Dst.Vset.subset omega set then begin
              warn bag ~code:"Q006"
                "%s IS %a is vacuous: the constant set covers the whole \
                 domain of %s, so the predicate always holds with certainty"
                a pp_values vs a;
              Interval.certain
            end
            else Interval.top
          end
      | Erm.Attr.Definite kind ->
          let live, dead =
            List.partition (fun v -> Dst.Value.kind_name v = kind) vs
          in
          if live = [] then begin
            err bag ~code:"Q005"
              "%s IS %a is statically empty under CWA_ER: no value in the \
               constant set has the attribute's kind %s"
              a pp_values vs kind;
            Interval.impossible
          end
          else begin
            if dead <> [] then
              warn bag ~code:"Q004"
                "%s IS %a: value(s) %a do not have kind %s and can never \
                 match"
                a pp_values vs pp_values dead kind;
            Interval.top
          end)

let rec pred_interval bag schema = function
  | Query.Ast.True -> Interval.certain
  | Query.Ast.Is (a, vs) -> is_interval bag schema a vs
  | Query.Ast.Cmp (cmp, x, y) ->
      let tx = operand_type bag schema ~peer:y x in
      let ty = operand_type bag schema ~peer:x y in
      cmp_interval bag cmp x y tx ty
  | Query.Ast.And (a, b) ->
      Interval.mul (pred_interval bag schema a) (pred_interval bag schema b)
  | Query.Ast.Or (a, b) ->
      Interval.disj (pred_interval bag schema a) (pred_interval bag schema b)
  | Query.Ast.Not a -> Interval.neg (pred_interval bag schema a)

(* ------------------------------------------------------------------ *)
(* Thresholds                                                          *)

let check_threshold bag ~context threshold tm =
  let rec bounds_sane = function
    | Erm.Threshold.Always -> ()
    | Erm.Threshold.Both (a, b) ->
        bounds_sane a;
        bounds_sane b
    | Erm.Threshold.Cmp (f, _, b) ->
        if b < 0.0 || b > 1.0 then
          warn bag ~code:"Q016"
            "threshold bound %s %g lies outside [0, 1]"
            (Erm.Threshold.field_to_string f)
            b
  in
  bounds_sane threshold;
  match Interval.constrain_threshold threshold tm with
  | Some tm -> (tm, false)
  | None ->
      err bag ~code:"Q007"
        "membership threshold %a of %s is unsatisfiable: the derived \
         support bounds are %a"
        Erm.Threshold.pp threshold context Interval.pp tm;
      (Interval.impossible, true)

(* ------------------------------------------------------------------ *)
(* Schemas                                                             *)

let union_like bag ~op a b =
  match (a.schema, b.schema) with
  | Some sa, Some sb when not (Erm.Schema.union_compatible sa sb) ->
      err bag ~code:"Q012"
        "%s operands %s and %s are not union-compatible" op
        (Erm.Schema.name sa) (Erm.Schema.name sb);
      None
  | Some sa, Some _ -> Some sa
  | _ -> None

let product_schema bag a b =
  match (a.schema, b.schema) with
  | Some sa, Some sb -> (
      match Erm.Schema.product sa sb with
      | s -> Some s
      | exception Erm.Schema.Schema_error m ->
          err bag ~code:"Q013" "product: %s (PREFIX one operand)" m;
          None)
  | _ -> None

let project_schema bag schema cols =
  match (schema, cols) with
  | None, _ | _, None -> schema
  | Some s, Some names ->
      let unknown = List.filter (fun n -> not (Erm.Schema.mem s n)) names in
      List.iter (fun n -> err bag ~code:"Q002" "unknown attribute %s" n)
        unknown;
      let dropped_keys =
        List.filter
          (fun a -> not (List.mem (Erm.Attr.name a) names))
          (Erm.Schema.key s)
      in
      if dropped_keys <> [] then begin
        err bag ~code:"Q008"
          "key-dropping projection: attribute(s) %s are part of the key of \
           %s; dropping them would force unsound merges of distinct \
           entities"
          (String.concat ", " (List.map Erm.Attr.name dropped_keys))
          (Erm.Schema.name s);
        None
      end
      else if unknown <> [] then None
      else
        match Erm.Schema.project s names with
        | s -> Some s
        | exception Erm.Schema.Schema_error m ->
            err bag ~code:"Q008" "projection: %s" m;
            None

(* ------------------------------------------------------------------ *)
(* The abstract interpreter                                            *)

let rel_bounds r =
  if Erm.Relation.is_empty r then Interval.impossible
  else
    Erm.Relation.fold
      (fun t acc -> Interval.hull acc (Interval.exact (Erm.Etuple.tm t)))
      r
      (let t = Erm.Relation.tuples r |> List.hd in
       Interval.exact (Erm.Etuple.tm t))

let rec analyze_in bag env q =
  match q with
  | Query.Ast.Rel name -> (
      match List.assoc_opt name env with
      | None ->
          err bag ~code:"Q001" "unknown relation %s" name;
          { schema = None; tm = Interval.top; empty = false; diagnostics = [] }
      | Some r ->
          let empty = Erm.Relation.is_empty r in
          if empty then
            note bag ~code:"Q018" "relation %s holds no tuples" name;
          { schema = Some (Erm.Relation.schema r);
            tm = (if empty then Interval.impossible else rel_bounds r);
            empty;
            diagnostics = [] })
  | Query.Ast.Select { cols; from; where; threshold } ->
      let input = analyze_in bag env from in
      let before = errors_in bag in
      let support =
        match input.schema with
        | Some s -> pred_interval bag s where
        | None -> Interval.top
      in
      let pred_reported = errors_in bag > before in
      let tm = Interval.mul input.tm support in
      let selection_empty =
        (not input.empty) && Interval.never_positive tm
      in
      if selection_empty && not pred_reported then
        (if Interval.never_positive support && where <> Query.Ast.True then
           warn bag ~code:"Q010"
             "selection is statically empty under CWA_ER: the WHERE clause \
              can never hold with positive necessity"
         else
           warn bag ~code:"Q010"
             "selection is statically empty under CWA_ER: no input tuple \
              can retain positive necessary support");
      let tm, thr_empty =
        if selection_empty then (Interval.impossible, false)
        else
          check_threshold bag
            ~context:(Format.asprintf "SELECT FROM %a" Query.Ast.pp from)
            threshold tm
      in
      let schema = project_schema bag input.schema cols in
      { schema;
        tm;
        empty = input.empty || selection_empty || thr_empty;
        diagnostics = [] }
  | Query.Ast.Union (a, b) ->
      let ra = analyze_in bag env a and rb = analyze_in bag env b in
      let schema = union_like bag ~op:"UNION" ra rb in
      let tm =
        if ra.empty then rb.tm
        else if rb.empty then ra.tm
        else Interval.combine_upper ra.tm rb.tm
      in
      { schema; tm; empty = ra.empty && rb.empty; diagnostics = [] }
  | Query.Ast.Intersect (a, b) ->
      let ra = analyze_in bag env a and rb = analyze_in bag env b in
      let schema = union_like bag ~op:"INTERSECT" ra rb in
      { schema;
        tm = Interval.combine_upper ra.tm rb.tm;
        empty = ra.empty || rb.empty;
        diagnostics = [] }
  | Query.Ast.Except (a, b) ->
      let ra = analyze_in bag env a and rb = analyze_in bag env b in
      let schema = union_like bag ~op:"EXCEPT" ra rb in
      { schema; tm = ra.tm; empty = ra.empty; diagnostics = [] }
  | Query.Ast.Product (a, b) ->
      let ra = analyze_in bag env a and rb = analyze_in bag env b in
      let schema = product_schema bag ra rb in
      { schema;
        tm = Interval.mul ra.tm rb.tm;
        empty = ra.empty || rb.empty;
        diagnostics = [] }
  | Query.Ast.Join { left; right; on; threshold } ->
      let ra = analyze_in bag env left and rb = analyze_in bag env right in
      let schema = product_schema bag ra rb in
      let support =
        match schema with
        | Some s -> pred_interval bag s on
        | None -> Interval.top
      in
      let paired = Interval.mul ra.tm rb.tm in
      let tm = Interval.mul paired support in
      let conflict_empty =
        (not (ra.empty || rb.empty))
        && Interval.never_positive support
        && on <> Query.Ast.True
      in
      if conflict_empty then
        warn bag ~code:"Q011"
          "total conflict: the θ-join predicate %a can never yield \
           definitely-true mass, so every joined tuple is dropped by \
           CWA_ER closure"
          Query.Ast.pp_pred on;
      let tm, thr_empty =
        if conflict_empty then (Interval.impossible, false)
        else check_threshold bag ~context:"JOIN" threshold tm
      in
      { schema;
        tm;
        empty = ra.empty || rb.empty || conflict_empty || thr_empty;
        diagnostics = [] }
  | Query.Ast.Ranked { from; limit; _ } ->
      let input = analyze_in bag env from in
      (match limit with
      | Some k when k <= 0 ->
          warn bag ~code:"Q017" "LIMIT %d yields an empty result" k
      | _ -> ());
      { input with
        empty =
          (input.empty || match limit with Some k -> k <= 0 | None -> false)
      }
  | Query.Ast.Prefixed { from; prefix } -> (
      let input = analyze_in bag env from in
      match input.schema with
      | None -> input
      | Some s -> (
          match Erm.Schema.rename_attrs (fun n -> prefix ^ n) s with
          | s -> { input with schema = Some s }
          | exception Erm.Schema.Schema_error m ->
              err bag ~code:"Q013" "prefix: %s" m;
              { input with schema = None }))

let analyze env q =
  let bag = { diags = []; file = None } in
  let r = analyze_in bag env q in
  { r with diagnostics = List.sort Diagnostic.compare (List.rev bag.diags) }

let check env q = (analyze env q).diagnostics

let check_string ?file env text =
  match Query.Parser.parse text with
  | q ->
      List.map
        (fun d -> { d with Diagnostic.file })
        (check env q)
  | exception Query.Parser.Parse_error m ->
      [ Diagnostic.error ?file ~code:"Q000" "parse error: %s" m ]

let errors env q =
  check env q
  |> List.filter Diagnostic.is_error
  |> List.map Diagnostic.to_string
