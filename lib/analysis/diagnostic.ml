type severity = Info | Warning | Error

type t = {
  severity : severity;
  code : string;
  file : string option;
  line : int;
  col : int;
  message : string;
}

let make severity ?file ?(line = 0) ?(col = 0) ~code fmt =
  Format.kasprintf
    (fun message -> { severity; code; file; line; col; message })
    fmt

let error ?file ?line ?col ~code fmt = make Error ?file ?line ?col ~code fmt

let warning ?file ?line ?col ~code fmt =
  make Warning ?file ?line ?col ~code fmt

let info ?file ?line ?col ~code fmt = make Info ?file ?line ?col ~code fmt

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Error -> 2 | Warning -> 1 | Info -> 0

let compare a b =
  let c = Option.compare String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = Int.compare (severity_rank b.severity) (severity_rank a.severity) in
        if c <> 0 then c
        else
          let c = String.compare a.code b.code in
          if c <> 0 then c else String.compare a.message b.message

let is_error d = d.severity = Error

let max_severity = function
  | [] -> None
  | ds ->
      Some
        (List.fold_left
           (fun acc d ->
             if severity_rank d.severity > severity_rank acc then d.severity
             else acc)
           Info ds)

let pp ppf d =
  (match d.file with
  | Some f when d.line > 0 && d.col > 0 ->
      Format.fprintf ppf "%s:%d:%d: " f d.line d.col
  | Some f when d.line > 0 -> Format.fprintf ppf "%s:%d: " f d.line
  | Some f -> Format.fprintf ppf "%s: " f
  | None when d.line > 0 -> Format.fprintf ppf "line %d: " d.line
  | None -> ());
  Format.fprintf ppf "%s[%s]: %s" (severity_to_string d.severity) d.code
    d.message

let to_string d = Format.asprintf "%a" pp d

(* Minimal JSON string escaping: quotes, backslashes and control
   characters — everything the diagnostic messages can contain. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ?priority d =
  Printf.sprintf
    {|{"severity": "%s", %s"code": "%s", "file": %s, "line": %d, "col": %d, "message": "%s"}|}
    (severity_to_string d.severity)
    (match priority with
    | Some p -> Printf.sprintf {|"priority": "%s", |} (json_escape p)
    | None -> "")
    (json_escape d.code)
    (match d.file with
    | Some f -> "\"" ^ json_escape f ^ "\""
    | None -> "null")
    d.line d.col (json_escape d.message)
