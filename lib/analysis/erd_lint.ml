let tol = Dst.Num.float_tolerance

(* What the linter knows about a declared attribute. [K_broken] marks a
   declaration that already produced a diagnostic: cells under it get
   structural checks only. *)
type kindinfo =
  | K_definite of string
  | K_evidential of Dst.Vset.t
  | K_broken

type block = {
  b_name : string;
  b_line : int;
  mutable b_keys : (string * kindinfo) list;  (* reversed *)
  mutable b_attrs : (string * kindinfo) list;  (* reversed *)
  mutable b_keyvals : Dst.Value.t list list;
}

(* ------------------------------------------------------------------ *)
(* Small parsers (diagnostic-friendly variants of the runtime's)       *)

let parse_literal raw =
  match Dst.Value.of_literal raw with
  | v -> Ok v
  | exception Invalid_argument m -> Error m

(* Mirrors Io.parse_definite: the value a definite cell of [kind] must
   hold. *)
let check_definite kind raw =
  let raw = String.trim raw in
  match kind with
  | "string" ->
      if String.length raw >= 2 && raw.[0] = '"' then
        Result.map (fun _ -> ()) (parse_literal raw)
      else Ok ()
  | "int" -> (
      match int_of_string_opt raw with
      | Some _ -> Ok ()
      | None -> Error (Printf.sprintf "expected an int, got %s" raw))
  | "float" -> (
      match float_of_string_opt raw with
      | Some _ -> Ok ()
      | None -> Error (Printf.sprintf "expected a float, got %s" raw))
  | "bool" -> (
      match bool_of_string_opt raw with
      | Some _ -> Ok ()
      | None -> Error (Printf.sprintf "expected a bool, got %s" raw))
  | _ -> Error (Printf.sprintf "unknown value kind %s" kind)

let parse_mass raw =
  match String.index_opt raw '/' with
  | Some k -> (
      let a = String.sub raw 0 k
      and b = String.sub raw (k + 1) (String.length raw - k - 1) in
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b when b <> 0 -> Some (float_of_int a /. float_of_int b)
      | _ -> None)
  | None -> float_of_string_opt raw

(* [split_top s sep] splits [s] on [sep] outside quoted strings,
   returning each piece with the offset of its first character. *)
let split_top s sep =
  let n = String.length s in
  let pieces = ref [] in
  let start = ref 0 in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '"' ->
        incr i;
        while !i < n && s.[!i] <> '"' do
          if s.[!i] = '\\' then incr i;
          incr i
        done
    | c when c = sep ->
        pieces := (!start, String.sub s !start (!i - !start)) :: !pieces;
        start := !i + 1
    | _ -> ());
    incr i
  done;
  pieces := (!start, String.sub s !start (n - !start)) :: !pieces;
  List.rev !pieces

(* Offset of the first non-blank character of [s], or 0. *)
let lead s =
  let n = String.length s in
  let rec go i = if i < n && (s.[i] = ' ' || s.[i] = '\t') then go (i + 1) else i in
  go 0

(* ------------------------------------------------------------------ *)
(* The linter                                                          *)

let lint_string ?file input =
  let diags = ref [] in
  let error ~line ?(col = 0) ~code fmt =
    Format.kasprintf
      (fun m -> diags := Diagnostic.error ?file ~line ~col ~code "%s" m :: !diags)
      fmt
  in
  let warning ~line ?(col = 0) ~code fmt =
    Format.kasprintf
      (fun m ->
        diags := Diagnostic.warning ?file ~line ~col ~code "%s" m :: !diags)
      fmt
  in

  (* --- evidence cells ------------------------------------------------ *)
  let lint_evidence ~line ~col domain raw =
    let raw = String.trim raw in
    let n = String.length raw in
    if n < 2 || raw.[0] <> '[' || raw.[n - 1] <> ']' then
      error ~line ~col ~code:"E008" "expected an evidence set [member^mass; …], got %s"
        raw
    else begin
      let body = String.sub raw 1 (n - 2) in
      let total = ref 0.0 in
      let parse_ok = ref true in
      let seen = ref [] in
      List.iter
        (fun (_, focal) ->
          let focal = String.trim focal in
          match String.index_opt focal '^' with
          | None ->
              parse_ok := false;
              error ~line ~col ~code:"E008"
                "focal element %s is missing ^mass" focal
          | Some k ->
              let member = String.trim (String.sub focal 0 k) in
              let mass_raw =
                String.trim (String.sub focal (k + 1) (String.length focal - k - 1))
              in
              let mn = String.length member in
              (* The member: Ω, a set, or a singleton literal. *)
              let values =
                if member = "~" then Some (Dst.Vset.to_list domain)
                else if mn >= 1 && member.[0] = '{' then begin
                  if mn < 2 || member.[mn - 1] <> '}' then begin
                    parse_ok := false;
                    error ~line ~col ~code:"E008" "malformed set %s" member;
                    None
                  end
                  else
                    let inner = String.sub member 1 (mn - 2) in
                    let elems =
                      List.filter_map
                        (fun (_, e) ->
                          let e = String.trim e in
                          if e = "" then None else Some e)
                        (split_top inner ',')
                    in
                    if elems = [] then begin
                      error ~line ~col ~code:"E010"
                        "mass %s assigned to the empty set" mass_raw;
                      None
                    end
                    else
                      let parsed = List.map parse_literal elems in
                      if
                        List.exists (function Error _ -> true | Ok _ -> false)
                          parsed
                      then begin
                        parse_ok := false;
                        error ~line ~col ~code:"E008" "malformed set %s" member;
                        None
                      end
                      else
                        Some
                          (List.filter_map
                             (function Ok v -> Some v | Error _ -> None)
                             parsed)
                end
                else if member = "" then begin
                  parse_ok := false;
                  error ~line ~col ~code:"E008" "empty focal element";
                  None
                end
                else
                  match parse_literal member with
                  | Ok v -> Some [ v ]
                  | Error m ->
                      parse_ok := false;
                      error ~line ~col ~code:"E008" "bad focal element %s: %s"
                        member m;
                      None
              in
              (match values with
              | None -> ()
              | Some vs ->
                  let set = Dst.Vset.of_list vs in
                  let outside =
                    Dst.Vset.filter (fun v -> not (Dst.Vset.mem v domain)) set
                  in
                  if not (Dst.Vset.is_empty outside) then
                    error ~line ~col ~code:"E012"
                      "value(s) %s lie outside the declared domain"
                      (String.concat ", "
                         (List.map Dst.Value.to_string
                            (Dst.Vset.to_list outside)));
                  if List.exists (Dst.Vset.equal set) !seen then
                    warning ~line ~col ~code:"E020"
                      "duplicate focal element %s (the loader sums its masses)"
                      member
                  else seen := set :: !seen);
              (match parse_mass mass_raw with
              | None ->
                  parse_ok := false;
                  error ~line ~col ~code:"E008" "expected a mass, got %s"
                    mass_raw
              | Some m ->
                  if m < 0.0 then
                    error ~line ~col ~code:"E011" "negative mass %g" m
                  else if m > 1.0 +. tol then
                    error ~line ~col ~code:"E011" "mass %g exceeds 1" m
                  else if m = 0.0 then
                    warning ~line ~col ~code:"E019"
                      "zero mass on %s (the loader drops it)" member;
                  total := !total +. m))
        (split_top body ';');
      if !parse_ok && Float.abs (!total -. 1.0) > tol then
        error ~line ~col ~code:"E009"
          "masses sum to %.12g, not 1 (beyond the %.0e tolerance)" !total tol
    end
  in

  (* --- membership pairs ---------------------------------------------- *)
  let lint_membership ~line ~col raw =
    let raw = String.trim raw in
    let n = String.length raw in
    let components =
      if n < 2 || raw.[0] <> '(' || raw.[n - 1] <> ')' then None
      else
        match String.split_on_char ',' (String.sub raw 1 (n - 2)) with
        | [ a; b ] -> (
            match (parse_mass (String.trim a), parse_mass (String.trim b)) with
            | Some sn, Some sp -> Some (sn, sp)
            | _ -> None)
        | _ -> None
    in
    match components with
    | None ->
        error ~line ~col ~code:"E014" "bad membership pair %s" raw
    | Some (sn, sp) ->
        if sn < -.tol || sp > 1.0 +. tol || sn > sp +. tol then
          error ~line ~col ~code:"E015"
            "membership (%g, %g) violates 0 ≤ sn ≤ sp ≤ 1" sn sp
        else if sn <= 0.0 then
          error ~line ~col ~code:"E016"
            "membership (%g, %g) is inadmissible under CWA_ER: stored \
             tuples need sn > 0"
            sn sp
  in

  (* --- attribute declarations ---------------------------------------- *)
  let parse_attr_decl ~line ~col ~is_key block body =
    match String.index_opt body ':' with
    | None ->
        error ~line ~col ~code:"E001"
          "expected `name : kind` in attribute declaration";
        ()
    | Some i ->
        let name = String.trim (String.sub body 0 i) in
        let kind_raw =
          String.trim (String.sub body (i + 1) (String.length body - i - 1))
        in
        if name = "" then error ~line ~col ~code:"E001" "empty attribute name";
        let declared =
          List.map fst (block.b_keys @ block.b_attrs)
        in
        if name <> "" && List.mem name declared then
          error ~line ~col ~code:"E004" "duplicate attribute name %s" name;
        let kind =
          if
            String.length kind_raw >= 8 && String.sub kind_raw 0 8 = "evidence"
          then begin
            let spec =
              String.trim (String.sub kind_raw 8 (String.length kind_raw - 8))
            in
            let sn = String.length spec in
            if sn < 2 || spec.[0] <> '{' || spec.[sn - 1] <> '}' then begin
              error ~line ~col ~code:"E001" "expected evidence {v1, v2, …}";
              K_broken
            end
            else
              let values =
                List.filter_map
                  (fun (_, v) ->
                    let v = String.trim v in
                    if v = "" then None else Some v)
                  (split_top (String.sub spec 1 (sn - 2)) ',')
              in
              if values = [] then begin
                error ~line ~col ~code:"E005" "empty evidence domain";
                K_broken
              end
              else
                let parsed = List.map parse_literal values in
                if List.exists (function Error _ -> true | Ok _ -> false) parsed
                then begin
                  error ~line ~col ~code:"E005" "malformed domain value";
                  K_broken
                end
                else
                  K_evidential
                    (Dst.Vset.of_list
                       (List.filter_map
                          (function Ok v -> Some v | Error _ -> None)
                          parsed))
          end
          else
            match kind_raw with
            | "string" | "int" | "float" | "bool" -> K_definite kind_raw
            | _ ->
                error ~line ~col ~code:"E005" "unknown attribute kind %s"
                  kind_raw;
                K_broken
        in
        if is_key then begin
          (match kind with
          | K_evidential _ ->
              error ~line ~col ~code:"E003"
                "key attribute %s must be definite" name
          | K_definite _ | K_broken -> ());
          block.b_keys <- (name, kind) :: block.b_keys
        end
        else block.b_attrs <- (name, kind) :: block.b_attrs
  in

  (* --- tuples --------------------------------------------------------- *)
  let lint_tuple ~line ~base_col block body =
    let fields = split_top body '|' in
    let nkeys = List.length block.b_keys
    and nattrs = List.length block.b_attrs in
    let expected = nkeys + nattrs + 1 in
    if List.length fields <> expected then
      error ~line ~col:base_col ~code:"E006"
        "expected %d |-separated fields, got %d" expected (List.length fields)
    else begin
      let keys = List.rev block.b_keys and attrs = List.rev block.b_attrs in
      let at i =
        let off, f = List.nth fields i in
        (base_col + off + lead f, String.trim f)
      in
      (* Key fields: definite literals of the declared kinds. *)
      let keyvals =
        List.mapi
          (fun i (name, kind) ->
            let col, raw = at i in
            match kind with
            | K_definite k -> (
                match check_definite k raw with
                | Ok () ->
                    if k = "string" && not (String.length raw >= 2 && raw.[0] = '"')
                    then Some (Dst.Value.string raw)
                    else Result.to_option (parse_literal raw)
                | Error m ->
                    error ~line ~col ~code:"E007" "key %s: %s" name m;
                    None)
            | K_evidential _ | K_broken -> None)
          keys
      in
      (* Non-key cells. *)
      List.iteri
        (fun i (name, kind) ->
          let col, raw = at (nkeys + i) in
          match kind with
          | K_definite k -> (
              match check_definite k raw with
              | Ok () -> ()
              | Error m ->
                  error ~line ~col ~code:"E007" "bad value for %s: %s" name m)
          | K_evidential domain -> lint_evidence ~line ~col domain raw
          | K_broken -> ())
        attrs;
      (* Membership pair. *)
      let col, raw = at (expected - 1) in
      lint_membership ~line ~col raw;
      (* Key uniqueness, on parsed values (matching the runtime's
         comparison, so 353 and "353" collide exactly when load says
         they do). *)
      if List.for_all Option.is_some keyvals && keyvals <> [] then begin
        let kv = List.map Option.get keyvals in
        if
          List.exists
            (fun seen ->
              List.length seen = List.length kv
              && List.for_all2 (fun a b -> Dst.Value.compare a b = 0) seen kv)
            block.b_keyvals
        then
          error ~line ~col:base_col ~code:"E013"
            "duplicate key (%s) in relation %s"
            (String.concat ", " (List.map Dst.Value.to_string kv))
            block.b_name
        else block.b_keyvals <- kv :: block.b_keyvals
      end
    end
  in

  (* --- main loop ------------------------------------------------------ *)
  let current = ref None in
  let seen_relations = ref [] in
  let finish () =
    match !current with
    | None -> ()
    | Some b ->
        if b.b_keys = [] then
          error ~line:b.b_line ~code:"E003" "relation %s has an empty key"
            b.b_name;
        current := None
  in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let indent = lead raw in
      let text = String.trim raw in
      if text = "" || text.[0] = '#' then ()
      else
        let word, body_off =
          match String.index_opt text ' ' with
          | None -> (text, String.length text)
          | Some k -> (String.sub text 0 k, k)
        in
        let rest = String.sub text body_off (String.length text - body_off) in
        let body = String.trim rest in
        (* 1-based column of the body's first character in the raw line. *)
        let base_col = indent + body_off + lead rest + 1 in
        match word with
        | "relation" ->
            finish ();
            if body = "" then
              error ~line ~col:(indent + 1) ~code:"E001"
                "relation needs a name"
            else begin
              if List.mem body !seen_relations then
                warning ~line ~col:base_col ~code:"E002"
                  "duplicate relation name %s" body
              else seen_relations := body :: !seen_relations;
              current :=
                Some
                  { b_name = body;
                    b_line = line;
                    b_keys = [];
                    b_attrs = [];
                    b_keyvals = [] }
            end
        | "key" | "attr" | "tuple" -> (
            match !current with
            | None ->
                error ~line ~col:(indent + 1) ~code:"E001"
                  "expected `relation <name>` first"
            | Some b -> (
                match word with
                | "key" ->
                    parse_attr_decl ~line ~col:base_col ~is_key:true b body
                | "attr" ->
                    parse_attr_decl ~line ~col:base_col ~is_key:false b body
                | _ -> lint_tuple ~line ~base_col b body))
        | other ->
            error ~line ~col:(indent + 1) ~code:"E001"
              "unknown directive %s" other)
    (String.split_on_char '\n' input);
  finish ();

  (* Safety net for the lint/load agreement guarantee: if the structural
     pass found no errors, replay the real loader — any surprise it
     raises (a validation this linter models imperfectly) still becomes
     a diagnostic instead of a silent false acceptance. *)
  if not (List.exists Diagnostic.is_error !diags) then
    (match Erm.Io.relations_of_string input with
    | _ -> ()
    | exception Erm.Io.Io_error { line; col; message } ->
        error ~line ~col ~code:"E099" "%s" message
    | exception e ->
        error ~line:0 ~code:"E099" "loader rejected the file: %s"
          (Printexc.to_string e));
  List.sort Diagnostic.compare !diags

let lint_file path =
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let content = really_input_string ic n in
    close_in ic;
    content
  with
  | content -> lint_string ~file:path content
  | exception Sys_error m ->
      [ Diagnostic.error ~file:path ~code:"E017" "cannot read file: %s" m ]
