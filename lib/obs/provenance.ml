type kind = Source | Operand | Combine | Discount | Support | Merge | Step

type node = {
  id : int;
  kind : kind;
  label : string;
  kappa : float option;
  norm : float option;
  alpha : float option;
  args : (string * string) list;
  inputs : int array;
}

type t = {
  mutable arr : node array;
  mutable len : int;
  index : (string, int) Hashtbl.t;
  mutable live : bool;
}

let dummy =
  { id = -1;
    kind = Operand;
    label = "";
    kappa = None;
    norm = None;
    alpha = None;
    args = [];
    inputs = [||] }

let create () =
  { arr = Array.make 64 dummy; len = 0; index = Hashtbl.create 64; live = true }

let default =
  { arr = Array.make 64 dummy; len = 0; index = Hashtbl.create 64; live = false }

let on () = default.live
let enable () = default.live <- true
let disable () = default.live <- false

let reset ?(store = default) () =
  store.arr <- Array.make 64 dummy;
  store.len <- 0;
  Hashtbl.reset store.index

let count ?(store = default) () = store.len

let grow store =
  if store.len = Array.length store.arr then begin
    let bigger = Array.make (2 * Array.length store.arr) dummy in
    Array.blit store.arr 0 bigger 0 store.len;
    store.arr <- bigger
  end

let add ?(store = default) ?kappa ?norm ?alpha ?(args = []) ?(inputs = [])
    kind label =
  if not store.live then -1
  else begin
    let id = store.len in
    List.iter
      (fun i ->
        if i < 0 || i >= id then
          invalid_arg
            (Printf.sprintf
               "Obs.Provenance.add: input %d is not an earlier node of %d" i id))
      inputs;
    grow store;
    store.arr.(id) <-
      { id; kind; label; kappa; norm; alpha; args;
        inputs = Array.of_list inputs };
    store.len <- id + 1;
    id
  end

let node ?(store = default) id =
  if id < 0 || id >= store.len then
    invalid_arg (Printf.sprintf "Obs.Provenance.node: no node %d" id)
  else store.arr.(id)

let nodes ?(store = default) () =
  List.init store.len (fun i -> store.arr.(i))

let register ?(store = default) digest id =
  if store.live && not (Hashtbl.mem store.index digest) then
    Hashtbl.add store.index digest id

let find ?(store = default) digest = Hashtbl.find_opt store.index digest

let find_or_leaf ?(store = default) ?(kind = Operand) digest ~label =
  if not store.live then -1
  else
    match Hashtbl.find_opt store.index digest with
    | Some id -> id
    | None ->
        let id = add ~store kind label in
        Hashtbl.add store.index digest id;
        id

(* Inputs always reference earlier ids, so one forward pass suffices. *)
let max_depth ?(store = default) () =
  if store.len = 0 then 0
  else begin
    let depth = Array.make store.len 0 in
    let deepest = ref 0 in
    for i = 0 to store.len - 1 do
      let d =
        Array.fold_left
          (fun acc j -> if depth.(j) + 1 > acc then depth.(j) + 1 else acc)
          0 store.arr.(i).inputs
      in
      depth.(i) <- d;
      if d > !deepest then deepest := d
    done;
    !deepest
  end

let leaves ?(store = default) id =
  let root = node ~store id in
  let seen = Hashtbl.create 16 in
  let found = ref [] in
  let rec walk n =
    if not (Hashtbl.mem seen n.id) then begin
      Hashtbl.add seen n.id ();
      if Array.length n.inputs = 0 then found := n :: !found
      else Array.iter (fun i -> walk store.arr.(i)) n.inputs
    end
  in
  walk root;
  List.sort (fun a b -> compare a.id b.id) !found

let kind_name = function
  | Source -> "source"
  | Operand -> "operand"
  | Combine -> "combine"
  | Discount -> "discount"
  | Support -> "support"
  | Merge -> "merge"
  | Step -> "step"

let publish ?(store = default) () =
  Metrics.gauge "provenance.nodes" (float_of_int store.len);
  Metrics.gauge "provenance.max_depth" (float_of_int (max_depth ~store ()))
