(** Named counters, gauges and histograms.

    One process-wide {!default} registry backs the instrumentation
    hooks compiled into the hot paths ([Dst.Mass] combination, the
    combine cache, the physical executor, the federation runtime,
    [Erm.Io] loading). It starts {e disabled}: every hook guards its
    work behind {!on}, so an uninstrumented run pays one boolean load
    per call site and nothing else. [eridb], [federate --metrics-out]
    and the test suites enable it explicitly.

    Metric names are static strings in the source (dot-separated,
    lower-case: [dst.combine.calls], [combine_cache.hit],
    [physical.index_probe.rows], [federation.retry.attempts],
    [io.parse.lines], [exec.index.build] / [exec.index.reuse] for the
    generation-keyed scan cache, and the persistent store's
    [store.commit.*], [store.delta.*] and [store.recovery.*] families —
    opens, replayed records, truncated tails, manifest fallbacks, typed
    errors). A name is bound to one kind for the registry's
    lifetime; re-using it with another kind raises [Invalid_argument]
    — that is a bug in the instrumentation, not a runtime condition. *)

type registry

type stat =
  | Counter of int
  | Gauge of float
  | Histogram of {
      count : int;
      sum : float;
      min : float;
      max : float;
      last : float;
      p50 : float;
      p95 : float;
      p99 : float;
      buckets : (float * int) list;
          (** cumulative [(upper_bound, count <= bound)] over a fixed
              log-spaced grid ({1,2,5} per decade), ending with the
              [+infinity] overflow bucket — the shape a Prometheus
              exposition needs. *)
    }

val create : unit -> registry
(** A fresh, enabled registry (explicit registries are always live). *)

val default : registry
(** The registry the compiled-in hooks write to. Starts disabled. *)

val on : unit -> bool
(** Is the default registry recording? The cheapest possible guard —
    instrumentation sites test this before computing metric values. *)

val enable : unit -> unit
val disable : unit -> unit

val reset : ?registry:registry -> unit -> unit
(** Drop every metric (values and names). *)

val incr : ?registry:registry -> ?by:int -> string -> unit
(** Bump a counter (default 1). No-op while the registry is disabled. *)

val gauge : ?registry:registry -> string -> float -> unit
(** Set a gauge to its latest value. *)

val observe : ?registry:registry -> string -> float -> unit
(** Record one histogram sample. Besides count/sum/min/max/last, the
    sample lands in a fixed log-spaced bucket grid from which
    {!snapshot} estimates p50/p95/p99 by linear interpolation inside
    the crossing bucket (clamped to the observed min/max) — a
    deterministic, bounded-memory estimate. *)

val counter : ?registry:registry -> string -> int
(** Current value of a counter; 0 when the name is unbound. *)

val last : ?registry:registry -> string -> float option
(** Latest sample of a histogram or value of a gauge; [None] when the
    name is unbound. *)

val snapshot : ?registry:registry -> unit -> (string * stat) list
(** Every metric, sorted by name (so dumps are deterministic). *)

(** {2 Per-domain buffers}

    The sharded executor hands each pool task a forked buffer; while it
    is installed (via {!with_buffer}) every unqualified {!incr},
    {!gauge} and {!observe} on that domain appends to the buffer
    instead of touching the shared {!default} registry. The
    coordinating domain then {!merge}s the buffers at the pool barrier
    in task-index order. Merging {e replays} the recorded operation
    sequence rather than adding partial aggregates, so float
    accumulation order — and therefore the resulting dump — is
    byte-identical to a single-worker run. *)

type buffer

val fork : unit -> buffer option
(** A fresh buffer when the default registry is recording, [None]
    otherwise (so disabled runs allocate nothing). *)

val with_buffer : buffer option -> (unit -> 'a) -> 'a
(** Run [f] with the buffer installed as this domain's sink; restores
    the previous sink even on exceptions. [None] runs [f] bare. *)

val merge : buffer option -> unit
(** Replay a forked buffer's operations into {!default}, oldest first.
    Call from the coordinating domain, in task-index order. *)

(** {2 GC sampling}

    The [obs.gc.*] gauge family (minor/major words, compactions) is
    sampled from [Gc.quick_stat] each time a top-level span closes.
    Off by default — enable it for BENCH sweeps that need to correlate
    throughput cliffs with collector pressure. *)

val enable_gc_sampling : unit -> unit
val disable_gc_sampling : unit -> unit

val sample_gc : unit -> unit
(** Record [obs.gc.minor_words] / [obs.gc.major_words] /
    [obs.gc.compactions] gauges now. No-op unless both the registry
    and GC sampling are enabled. *)

val with_prefix : ?registry:registry -> string -> (string * stat) list
(** {!snapshot} restricted to names starting with the prefix, sorted —
    how batch consumers read back a rollup family such as
    [dst.combine.kappa_by_source.*] without scanning everything. *)
