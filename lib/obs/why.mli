(** Derivation trees over the provenance arena.

    A {!tree} is the unfolding of one node's input DAG. Shared
    sub-derivations (the same node reachable along two paths) are
    expanded once; later occurrences are marked [shared] and carry no
    children, so the rendering stays linear in the arena size.

    {!equal} compares trees structurally — kind, label, κ/norm/α,
    args, sharing markers and children, but {e not} node ids — so two
    arenas populated by different evaluation orders can be checked for
    identical derivations. *)

type tree = { root : Provenance.node; children : tree list; shared : bool }

val tree : ?store:Provenance.t -> int -> tree
(** Unfold the derivation rooted at a node id. *)

val pp : Format.formatter -> tree -> unit
(** Indented one-node-per-line rendering:
    [#id kind label (κ=…, norm=…, …)]. *)

val render : ?store:Provenance.t -> int -> string
(** {!tree} then {!pp}, with a trailing newline. *)

val equal : tree -> tree -> bool
(** Structural equality ignoring node ids. *)

val kappa_steps : tree -> float * int
(** [(Σκ, n)] over the distinct Dempster combination nodes in the
    tree (nodes tagged [rule=dempster]; membership-frame support
    combinations are excluded). This is the per-derivation number
    that sum-checks against the [dst.combine.conflict_kappa]
    histogram when the registry was reset at the same time as the
    arena. *)
