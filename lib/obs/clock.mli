(** Time as a value.

    Every duration the observability layer records — span timings,
    retry backoff, fetch deadlines — is read through one of these
    records, never through a bare [Unix.gettimeofday]. Passing a
    {!simulated} clock makes a whole run (spans included) deterministic
    and instant: sleeping advances a counter, nothing else moves time.
    [Federation.Clock] is an alias of this type, so the federation
    runtime and the tracer share one notion of "now". *)

type t = {
  now_ms : unit -> float;  (** Monotonic milliseconds. *)
  sleep_ms : float -> unit;
      (** Blocks (or pretends to) for that many milliseconds; negative
          durations are ignored. *)
}

val simulated : ?start_ms:float -> unit -> t
(** A fresh virtual clock starting at [start_ms] (default 0). Sleeping
    advances it; nothing else does, so elapsed time measures exactly
    the latency that was explicitly injected. *)

val wall : unit -> t
(** The process wall clock ([Unix.gettimeofday], reported in
    milliseconds); [sleep_ms] really sleeps. *)
