type event = {
  id : int;
  parent : int option;
  depth : int;
  name : string;
  cat : string;
  args : (string * string) list;
  ts_ms : float;
  dur_ms : float;
}

type t = {
  mutable t_clock : Clock.t;
  mutable t_live : bool;
  mutable next_id : int;
  mutable stack : int list;  (* open span ids, innermost first *)
  mutable done_ : event list;  (* completed spans, most recent first *)
}

let create ?clock () =
  let clock = match clock with Some c -> c | None -> Clock.wall () in
  { t_clock = clock; t_live = true; next_id = 0; stack = []; done_ = [] }

let default =
  { t_clock = Clock.wall ();
    t_live = false;
    next_id = 0;
    stack = [];
    done_ = [] }

let set_clock t c = t.t_clock <- c
let clock t = t.t_clock
let enable t = t.t_live <- true
let disable t = t.t_live <- false
let live t = t.t_live
let on () = default.t_live

let count t = t.next_id

(* Per-domain buffer mode. A fork captures the enclosing open span (and
   its depth) on the coordinating domain plus the parent's clock; the
   worker then records into a private tracer with ids from 0. Merging
   renumbers ids to [base + id] (base = the default tracer's next_id at
   merge time), reparents local roots under the captured span, and
   offsets depths — so merging forks in task-index order reproduces
   exactly the id sequence a single-worker inline run would have
   allocated. *)
type buffer = { b_tracer : t; b_parent : int option; b_depth : int }

let sink : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let fork () =
  if not default.t_live then None
  else
    Some
      { b_tracer =
          { t_clock = default.t_clock;
            t_live = true;
            next_id = 0;
            stack = [];
            done_ = [] };
        b_parent = (match default.stack with [] -> None | p :: _ -> Some p);
        b_depth = List.length default.stack }

let with_buffer buf f =
  match buf with
  | None -> f ()
  | Some b ->
      let prev = Domain.DLS.get sink in
      Domain.DLS.set sink (Some b.b_tracer);
      Fun.protect ~finally:(fun () -> Domain.DLS.set sink prev) f

let merge = function
  | None -> ()
  | Some b ->
      let local = b.b_tracer in
      let base = default.next_id in
      let remapped =
        List.map
          (fun e ->
            { e with
              id = base + e.id;
              parent =
                (match e.parent with
                | Some p -> Some (base + p)
                | None -> b.b_parent);
              depth = e.depth + b.b_depth })
          local.done_
      in
      default.done_ <- remapped @ default.done_;
      default.next_id <- base + local.next_id

let with_span ?tracer ?(cat = "app") ?(args = []) name f =
  let tracer =
    match tracer with
    | Some t -> t
    | None -> (
        match Domain.DLS.get sink with Some t -> t | None -> default)
  in
  if not tracer.t_live then f ()
  else begin
    let id = tracer.next_id in
    tracer.next_id <- id + 1;
    let parent = match tracer.stack with [] -> None | p :: _ -> Some p in
    let depth = List.length tracer.stack in
    tracer.stack <- id :: tracer.stack;
    let t0 = tracer.t_clock.Clock.now_ms () in
    Fun.protect
      ~finally:(fun () ->
        let dur_ms = tracer.t_clock.Clock.now_ms () -. t0 in
        (match tracer.stack with
        | top :: rest when top = id -> tracer.stack <- rest
        | _ -> ());
        tracer.done_ <-
          { id; parent; depth; name; cat; args; ts_ms = t0; dur_ms }
          :: tracer.done_;
        if tracer == default && tracer.stack = [] then Metrics.sample_gc ())
      f
  end

let events t =
  List.sort (fun a b -> compare a.id b.id) (List.rev t.done_)

let clear t = t.done_ <- []

type tree = { event : event; children : tree list }

let forest ?(from = 0) t =
  let evs = List.filter (fun e -> e.id >= from) (events t) in
  let kept = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace kept e.id ()) evs;
  (* Children are grouped under their nearest kept ancestor; spans whose
     parent was cut off (or never closed) become roots. *)
  let rec build e =
    { event = e;
      children =
        List.filter_map
          (fun c ->
            match c.parent with
            | Some p when p = e.id -> Some (build c)
            | _ -> None)
          evs }
  in
  List.filter_map
    (fun e ->
      match e.parent with
      | Some p when Hashtbl.mem kept p -> None
      | _ -> Some (build e))
    evs

let pp_dur ppf ms =
  if ms >= 1.0 then Format.fprintf ppf "%.1fms" ms
  else Format.fprintf ppf "%.1fus" (ms *. 1e3)

let rec pp_tree indent ppf tr =
  let detail =
    match List.assoc_opt "detail" tr.event.args with
    | Some d when d <> "" -> " [" ^ d ^ "]"
    | _ -> ""
  in
  Format.fprintf ppf "%s%s%s %a" indent tr.event.name detail pp_dur
    tr.event.dur_ms;
  List.iter
    (fun child ->
      Format.pp_print_newline ppf ();
      pp_tree (indent ^ "  ") ppf child)
    tr.children

let pp_forest ppf trees =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_newline ppf ())
    (pp_tree "") ppf trees

let summary t =
  let table = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let n, d =
        match Hashtbl.find_opt table e.name with
        | Some (n, d) -> (n, d)
        | None -> (0, 0.0)
      in
      Hashtbl.replace table e.name (n + 1, d +. e.dur_ms))
    t.done_;
  Hashtbl.fold (fun name (n, d) acc -> (name, n, d) :: acc) table []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
