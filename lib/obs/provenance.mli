(** Arena-allocated lineage DAG for evidential derivations.

    Every value the system derives by Dempster's rule — an attribute's
    combined evidence, a tuple's membership support after selection, a
    merged tuple — can be traced back to the stored source tuples it
    came from. The arena records one {!node} per derivation step;
    edges always point from a node to {e earlier} nodes (inputs), so
    the structure is acyclic by construction and depth is computable
    in one forward pass.

    The store follows the same guard discipline as {!Trace} and
    {!Metrics}: one process-wide {!default} arena that starts
    {e disabled}, with every instrumentation site testing {!on} before
    computing digests or labels. A run that never enables provenance
    pays one boolean load per call site and nothing else.

    Nodes are keyed by {e value digests} (see [Dst.Mass.digest]): two
    derivations producing bit-identical values share one node, which
    is what lets [Dst.Combine_cache] hits link to the original
    derivation instead of re-deriving, and what makes the lineage of a
    physical plan meet the naive evaluator's on every shared value.
    Registration is first-wins: once a digest resolves to a node, later
    derivations of the same value reuse it. *)

type kind =
  | Source  (** a stored source tuple's cell or membership support *)
  | Operand  (** a value first seen as a combination input (no history) *)
  | Combine  (** one Dempster combination: κ, normalization, operands *)
  | Discount  (** α-discounting of a mass function or support pair *)
  | Support  (** a selection/join support evaluation (F_SS then F_TM) *)
  | Merge  (** a key-matched tuple merge (∪̂) grouping its per-cell steps *)
  | Step  (** a pipeline step marker (e.g. one source absorbed) *)

type node = {
  id : int;
  kind : kind;
  label : string;  (** human-readable value or step description *)
  kappa : float option;  (** conflict mass κ for combination nodes *)
  norm : float option;  (** normalization factor 1 − κ *)
  alpha : float option;  (** discount rate for {!Discount} nodes *)
  args : (string * string) list;  (** extra key/value detail *)
  inputs : int array;  (** ids of operand nodes; all strictly [< id] *)
}

type t
(** A lineage arena: a growable node array plus a digest index. *)

val create : unit -> t
(** A fresh, enabled arena (explicit arenas are always live). *)

val default : t
(** The arena the compiled-in hooks write to. Starts disabled. *)

val on : unit -> bool
(** Is the default arena recording? The guard every instrumentation
    site tests before doing any work. *)

val enable : unit -> unit
val disable : unit -> unit

val reset : ?store:t -> unit -> unit
(** Drop every node and digest binding. *)

val count : ?store:t -> unit -> int
(** Number of nodes allocated so far (also the next node id). *)

val add :
  ?store:t ->
  ?kappa:float ->
  ?norm:float ->
  ?alpha:float ->
  ?args:(string * string) list ->
  ?inputs:int list ->
  kind ->
  string ->
  int
(** [add kind label] allocates a node and returns its id. Input ids
    must already be allocated ([Invalid_argument] otherwise — that is
    a bug in the instrumentation, not a runtime condition). Returns
    [-1] without recording when the store is disabled; call sites are
    expected to guard with {!on} first. *)

val node : ?store:t -> int -> node
(** The node with the given id. @raise Invalid_argument if out of
    range. *)

val nodes : ?store:t -> unit -> node list
(** All nodes in allocation (= topological) order. *)

val register : ?store:t -> string -> int -> unit
(** Bind a value digest to the node that derived it. First-wins: a
    digest already bound keeps its original derivation. *)

val find : ?store:t -> string -> int option
(** The node currently bound to a digest, if any. *)

val find_or_leaf : ?store:t -> ?kind:kind -> string -> label:string -> int
(** Resolve a digest to its node, or allocate a leaf (default kind
    {!Operand}) with the given label and bind the digest to it. This
    is how combination hooks pick up operands whose history predates
    provenance being enabled. Returns [-1] when the store is
    disabled. *)

val max_depth : ?store:t -> unit -> int
(** Longest input chain in the arena: leaves have depth 0, a node is
    1 + the deepest of its inputs. 0 for an empty arena. *)

val leaves : ?store:t -> int -> node list
(** The leaf nodes (no inputs) reachable from a node, deduplicated,
    in id order. *)

val kind_name : kind -> string
(** Lower-case name ([source], [combine], …) used by exports. *)

val publish : ?store:t -> unit -> unit
(** Push [provenance.nodes] and [provenance.max_depth] gauges into
    the default {!Metrics} registry. *)
