(** Hierarchical span tracing.

    A tracer records one span per [with_span] call: name, category,
    free-form string arguments, start time and duration (read through
    its {!Clock.t}, so a simulated clock makes traces deterministic),
    and the identity of the enclosing span. The span tree therefore
    mirrors the dynamic call tree — for a physical plan execution it is
    exactly the plan shape.

    Like {!Metrics}, the process-wide {!default} tracer starts
    disabled and every compiled-in site guards on {!on}; a disabled
    [with_span] is a single boolean load and a direct call. *)

type event = {
  id : int;  (** Start-order identity, unique per tracer. *)
  parent : int option;  (** Enclosing span, if any. *)
  depth : int;  (** 0 for roots. *)
  name : string;
  cat : string;
  args : (string * string) list;
  ts_ms : float;  (** Start, in the tracer clock's time base. *)
  dur_ms : float;
}

type t

val create : ?clock:Clock.t -> unit -> t
(** A fresh, enabled tracer (default clock: {!Clock.wall}). *)

val default : t
(** The tracer the compiled-in sites write to. Starts disabled, wall
    clock. *)

val set_clock : t -> Clock.t -> unit
val clock : t -> Clock.t
val enable : t -> unit
val disable : t -> unit
val live : t -> bool

val on : unit -> bool
(** [live default] — the hot-path guard. *)

val with_span :
  ?tracer:t ->
  ?cat:string ->
  ?args:(string * string) list ->
  string ->
  (unit -> 'a) ->
  'a
(** Run the thunk inside a span (default tracer, default category
    ["app"]). The span is recorded even when the thunk raises. When the
    tracer is disabled this is just the call. Without an explicit
    [tracer], the span lands in this domain's installed fork buffer
    when one is active (see {!with_buffer}). Closing a top-level span
    on the default tracer also samples the [obs.gc.*] gauges when
    {!Metrics.enable_gc_sampling} is on. *)

val count : t -> int
(** Spans recorded so far. Remember it before a unit of work to slice
    that unit's spans out afterwards (see [forest]'s [from]). *)

val events : t -> event list
(** Completed spans in start order. *)

val clear : t -> unit
(** Drop recorded spans (open spans, if any, keep their identities). *)

type tree = { event : event; children : tree list }

val forest : ?from:int -> t -> tree list
(** The span trees, in start order. With [from], only spans with
    [id >= from] are kept; spans whose parent falls before the cut
    become roots — this is how per-query trees are carved out of a
    session-long trace. *)

val pp_forest : Format.formatter -> tree list -> unit
(** One line per span: [name [detail] 1.2ms], children indented. Uses
    the ["detail"] argument when present. *)

val summary : t -> (string * int * float) list
(** Per-name aggregation over all recorded spans: (name, count, total
    duration in ms), sorted by name. *)

(** {2 Per-domain buffers}

    Mirror of {!Metrics}'s buffer mode. A fork captures the enclosing
    open span and its depth on the coordinating domain; the worker
    records spans into a private tracer with local ids from 0. Merging
    renumbers local ids to [base + id], reparents local roots under the
    captured span, and offsets depths — merging forks at the pool
    barrier in task-index order reproduces the exact id sequence a
    single-worker inline run would allocate, so span forests are
    byte-identical regardless of worker count. *)

type buffer

val fork : unit -> buffer option
(** A fresh buffer rooted at the currently open default-tracer span, or
    [None] when the default tracer is disabled. *)

val with_buffer : buffer option -> (unit -> 'a) -> 'a
(** Run [f] with the buffer installed as this domain's span sink;
    restores the previous sink even on exceptions. [None] runs [f]
    bare. *)

val merge : buffer option -> unit
(** Splice a forked buffer's spans into {!default}. Call from the
    coordinating domain, in task-index order. *)
