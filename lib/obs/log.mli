(** The flight recorder: a bounded ring of typed, severity-leveled
    events.

    Counters say {e how often}; the journal says {e what happened, in
    order}. Hook sites in the federation runtime (retries, degraded
    merges), the combination kernel (κ-escalations, quarantines), the
    evidence store (commits, recovery anomalies), the sharded executor
    and the combine cache record one event per noteworthy transition.
    The ring keeps the most recent [capacity] events (default 256) and
    overwrites older ones in place — recording is O(1), and a crash
    dump ([--flight-out]) is just the surviving suffix.

    Like {!Metrics} and {!Trace}, the process-wide recorder starts
    disabled; every site guards on {!on}, so an unobserved run pays one
    boolean load per site. *)

type severity = Debug | Info | Warn | Error

val rank : severity -> int
(** [Debug] = 0 … [Error] = 3; used by the min-severity filter. *)

val severity_to_string : severity -> string
val severity_of_string : string -> severity option

(** The closed event vocabulary. Adding a constructor is an API change
    on purpose: consumers (the JSONL export, the REPL, dashboards) get
    to enumerate every kind. *)
type kind =
  | Retry  (** a source fetch failed and will be retried *)
  | Degrade  (** a source delivered late, stale, or not at all *)
  | Escalation  (** combination κ crossed the policy threshold *)
  | Quarantine  (** an escalated combination was quarantined *)
  | Store_commit  (** the evidence store committed a segment/delta *)
  | Recovery_error  (** store recovery hit a typed anomaly *)
  | Shard_spawn  (** the executor fanned a stage out over shards *)
  | Shard_merge  (** the executor merged shard outputs *)
  | Cache_evict  (** the combine cache dropped its entries *)

val kind_to_string : kind -> string

type event = {
  seq : int;  (** Global sequence number; dense, never reused. *)
  ts_ms : float;  (** Recorder clock's time base. *)
  severity : severity;
  kind : kind;
  message : string;
  fields : (string * string) list;  (** Structured detail, in order. *)
}

val on : unit -> bool
(** Is the recorder live? The hot-path guard. *)

val enable : ?capacity:int -> unit -> unit
(** Start recording; with [capacity], resize the ring first. *)

val disable : unit -> unit

val set_clock : Clock.t -> unit
(** Timestamps come from this clock (default: wall). A simulated clock
    makes journals deterministic. *)

val set_capacity : int -> unit
(** Resize the ring, keeping the most recent events that fit. Raises
    [Invalid_argument] when the capacity is not positive. *)

val capacity : unit -> int

val set_min_severity : severity -> unit
(** Events below this rank are dropped at the recording site. *)

val min_severity : unit -> severity

val record :
  ?severity:severity -> ?fields:(string * string) list -> kind -> string -> unit
(** Append one event (default severity [Info]). No-op when disabled or
    below the min severity. Inside a worker fork (see {!with_buffer})
    the event lands in the domain-local buffer instead of the ring. *)

val events : ?last:int -> unit -> event list
(** Surviving events in sequence order (oldest first); with [last],
    only the final [n]. *)

val clear : unit -> unit

(** {2 Per-domain buffers}

    Mirror of {!Metrics}'s buffer mode: workers append sequence-free
    pending events to an unbounded local list; the coordinating domain
    replays them at the pool barrier in task-index order, assigning
    sequence numbers then — so the journal (including ring wrap-around)
    is byte-identical to a single-worker run. *)

type buffer

val fork : unit -> buffer option
val with_buffer : buffer option -> (unit -> 'a) -> 'a
val merge : buffer option -> unit

val pp_event : Format.formatter -> event -> unit
(** [#seq severity kind message (k=v, …)] — the REPL [.events] line. *)

val pp_events : Format.formatter -> event list -> unit
