type tree = { root : Provenance.node; children : tree list; shared : bool }

let tree ?store id =
  let expanded = Hashtbl.create 16 in
  let rec unfold id =
    let n = Provenance.node ?store id in
    if Hashtbl.mem expanded id then { root = n; children = []; shared = true }
    else begin
      Hashtbl.add expanded id ();
      let children =
        Array.to_list (Array.map unfold n.Provenance.inputs)
      in
      { root = n; children; shared = false }
    end
  in
  unfold id

let decoration (n : Provenance.node) =
  let opt name = function
    | Some v -> [ Printf.sprintf "%s=%.6g" name v ]
    | None -> []
  in
  let parts =
    opt "\xce\xba" n.kappa (* κ *)
    @ opt "norm" n.norm
    @ opt "\xce\xb1" n.alpha (* α *)
    @ List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) n.args
  in
  match parts with
  | [] -> ""
  | _ -> " (" ^ String.concat ", " parts ^ ")"

let pp ppf t =
  let rec go indent t =
    let n = t.root in
    Format.fprintf ppf "%s#%d %s %s%s%s@," indent n.Provenance.id
      (Provenance.kind_name n.Provenance.kind)
      n.Provenance.label (decoration n)
      (if t.shared then " [shared, expanded above]" else "");
    List.iter (go (indent ^ "  ")) t.children
  in
  Format.fprintf ppf "@[<v>";
  go "" t;
  Format.fprintf ppf "@]"

let render ?store id = Format.asprintf "%a" pp (tree ?store id)

let rec equal a b =
  let n1 = a.root and n2 = b.root in
  n1.Provenance.kind = n2.Provenance.kind
  && String.equal n1.Provenance.label n2.Provenance.label
  && n1.Provenance.kappa = n2.Provenance.kappa
  && n1.Provenance.norm = n2.Provenance.norm
  && n1.Provenance.alpha = n2.Provenance.alpha
  && n1.Provenance.args = n2.Provenance.args
  && a.shared = b.shared
  && List.length a.children = List.length b.children
  && List.for_all2 equal a.children b.children

let kappa_steps t =
  let seen = Hashtbl.create 16 in
  let sum = ref 0.0 and count = ref 0 in
  let rec go t =
    let n = t.root in
    if not (Hashtbl.mem seen n.Provenance.id) then begin
      Hashtbl.add seen n.Provenance.id ();
      (match (n.Provenance.kind, n.Provenance.kappa) with
      | Provenance.Combine, Some k
        when List.mem_assoc "rule" n.Provenance.args
             && String.equal (List.assoc "rule" n.Provenance.args) "dempster"
        ->
          sum := !sum +. k;
          incr count
      | _ -> ());
      List.iter go t.children
    end
  in
  go t;
  (!sum, !count)
