type t = { now_ms : unit -> float; sleep_ms : float -> unit }

let simulated ?(start_ms = 0.0) () =
  let t = ref start_ms in
  { now_ms = (fun () -> !t);
    sleep_ms = (fun d -> if d > 0.0 then t := !t +. d) }

let wall () =
  { now_ms = (fun () -> Unix.gettimeofday () *. 1e3);
    sleep_ms = (fun d -> if d > 0.0 then Unix.sleepf (d /. 1e3)) }
