type severity = Debug | Info | Warn | Error

let rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let severity_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let severity_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type kind =
  | Retry
  | Degrade
  | Escalation
  | Quarantine
  | Store_commit
  | Recovery_error
  | Shard_spawn
  | Shard_merge
  | Cache_evict

let kind_to_string = function
  | Retry -> "retry"
  | Degrade -> "degrade"
  | Escalation -> "escalation"
  | Quarantine -> "quarantine"
  | Store_commit -> "store_commit"
  | Recovery_error -> "recovery_error"
  | Shard_spawn -> "shard_spawn"
  | Shard_merge -> "shard_merge"
  | Cache_evict -> "cache_evict"

type event = {
  seq : int;
  ts_ms : float;
  severity : severity;
  kind : kind;
  message : string;
  fields : (string * string) list;
}

(* Bounded ring keyed by sequence number: slot [seq mod capacity]. The
   journal keeps the most recent [capacity] surviving events; older
   ones are overwritten in place, never shifted, so recording is O(1)
   and allocation-free apart from the event itself. *)
type t = {
  mutable l_clock : Clock.t;
  mutable l_live : bool;
  mutable l_min : severity;
  mutable ring : event option array;
  mutable next_seq : int;
}

let default_capacity = 256

let default =
  { l_clock = Clock.wall ();
    l_live = false;
    l_min = Debug;
    ring = Array.make default_capacity None;
    next_seq = 0 }

let on () = default.l_live
let set_clock c = default.l_clock <- c
let set_min_severity s = default.l_min <- s
let min_severity () = default.l_min
let capacity () = Array.length default.ring

let events ?last () =
  let cap = Array.length default.ring in
  let lo = max 0 (default.next_seq - cap) in
  let all = ref [] in
  for seq = default.next_seq - 1 downto lo do
    match default.ring.(seq mod cap) with
    | Some e when e.seq = seq -> all := e :: !all
    | _ -> ()
  done;
  let all = !all in
  match last with
  | None -> all
  | Some n when n <= 0 -> []
  | Some n ->
      let len = List.length all in
      if len <= n then all else List.filteri (fun i _ -> i >= len - n) all

let set_capacity cap =
  if cap <= 0 then invalid_arg "Obs.Log.set_capacity: capacity must be > 0";
  let kept = events ~last:cap () in
  let ring = Array.make cap None in
  List.iter (fun e -> ring.(e.seq mod cap) <- Some e) kept;
  default.ring <- ring

let enable ?capacity () =
  (match capacity with Some c -> set_capacity c | None -> ());
  default.l_live <- true

let disable () = default.l_live <- false

let clear () =
  Array.fill default.ring 0 (Array.length default.ring) None;
  default.next_seq <- 0

let admit severity = default.l_live && rank severity >= rank default.l_min

let insert ~ts_ms ~severity ~kind ~fields message =
  let seq = default.next_seq in
  default.next_seq <- seq + 1;
  let cap = Array.length default.ring in
  default.ring.(seq mod cap) <- Some { seq; ts_ms; severity; kind; message; fields }

(* Per-domain buffer mode, mirroring [Metrics]: workers append
   sequence-free pending events to an unbounded local list; the
   coordinating domain replays them at the pool barrier in task-index
   order, assigning sequence numbers then — so the journal (including
   any ring wrap-around) is byte-identical to a single-worker run. *)
type pending = {
  p_ts : float;
  p_severity : severity;
  p_kind : kind;
  p_message : string;
  p_fields : (string * string) list;
}

type buffer = { mutable pend : pending list (* most recent first *) }

let sink : buffer option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let fork () = if default.l_live then Some { pend = [] } else None

let with_buffer buf f =
  match buf with
  | None -> f ()
  | Some _ ->
      let prev = Domain.DLS.get sink in
      Domain.DLS.set sink buf;
      Fun.protect ~finally:(fun () -> Domain.DLS.set sink prev) f

let merge = function
  | None -> ()
  | Some b ->
      List.iter
        (fun p ->
          if admit p.p_severity then
            insert ~ts_ms:p.p_ts ~severity:p.p_severity ~kind:p.p_kind
              ~fields:p.p_fields p.p_message)
        (List.rev b.pend)

let record ?(severity = Info) ?(fields = []) kind message =
  if admit severity then
    let ts = default.l_clock.Clock.now_ms () in
    match Domain.DLS.get sink with
    | Some b ->
        b.pend <-
          { p_ts = ts;
            p_severity = severity;
            p_kind = kind;
            p_message = message;
            p_fields = fields }
          :: b.pend
    | None -> insert ~ts_ms:ts ~severity ~kind ~fields message

let pp_event ppf e =
  let fields =
    match e.fields with
    | [] -> ""
    | fs ->
        " ("
        ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) fs)
        ^ ")"
  in
  Format.fprintf ppf "#%d %-5s %-14s %s%s" e.seq
    (severity_to_string e.severity)
    (kind_to_string e.kind) e.message fields

let pp_events ppf evs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_newline ppf ())
    pp_event ppf evs
