(** Serialization of traces and metric snapshots.

    Two formats: Chrome's Trace Event JSON (load the file in
    [about:tracing] or [ui.perfetto.dev]) and a flat metrics dump
    (text for the REPL, JSON for files). Both are emitted one record
    per line, with keys and names sorted, so the output is diffable
    and golden-testable byte for byte. *)

val json_escape : string -> string
(** Quote and escape per RFC 8259 (handles quotes, backslashes and
    control characters; the result includes the surrounding quotes). *)

val chrome : ?from:int -> Trace.t -> string
(** The trace as a JSON array of Chrome complete events ([ph = "X"],
    timestamps and durations in microseconds), one event per line, in
    start order. With [from], only spans with [id >= from]. *)

val write_chrome : ?from:int -> Trace.t -> string -> unit
(** [write_chrome t path]: {!chrome} to a file. *)

val metrics_text : ?registry:Metrics.registry -> unit -> string
(** One metric per line, name-sorted:
    [counter dst.combine.calls 42]. Histograms show
    [count/sum/min/max/last] plus interpolated [p50/p95/p99]. Empty
    registries produce ["(no metrics recorded)\n"]. *)

val metrics_json : ?registry:Metrics.registry -> unit -> string
(** A JSON object keyed by metric name, one metric per line; counters
    are numbers, gauges [{"gauge": v}], histograms an object with
    [count/sum/min/max/last] and a [quantiles] object holding
    [p50/p95/p99]. *)

val write_metrics_json : ?registry:Metrics.registry -> string -> unit

val metrics_prom : ?registry:Metrics.registry -> unit -> string
(** Prometheus text exposition: [# TYPE] header per metric, names
    prefixed [eridb_] with non-alphanumerics mangled to [_].
    Histograms emit cumulative [_bucket{le="…"}] series (only bounds
    where the count steps, plus [+Inf]), then [_sum] and [_count]. *)

val write_metrics : ?registry:Metrics.registry -> string -> unit
(** Dispatch on extension: [.prom] writes {!metrics_prom}, anything
    else {!metrics_json}. *)

val provenance_json : ?store:Provenance.t -> unit -> string
(** The whole arena as [{"nodes": […], "edges": […]}]; nodes carry
    id/kind/label, optional kappa/norm/alpha, args and input ids;
    edges are [[from, to]] pairs (one per node input), so the edge
    count equals the DOT export's. *)

val provenance_dot : ?store:Provenance.t -> unit -> string
(** Graphviz digraph, one [nN [...]] declaration per node (shape
    encodes the kind) and one [nA -> nB;] line per input edge,
    [rankdir=BT] so sources sit at the bottom. *)

val write_provenance : ?store:Provenance.t -> string -> unit
(** Dispatch on extension: [.dot] writes {!provenance_dot}, anything
    else {!provenance_json}. *)
