(** Serialization of traces and metric snapshots.

    Two formats: Chrome's Trace Event JSON (load the file in
    [about:tracing] or [ui.perfetto.dev]) and a flat metrics dump
    (text for the REPL, JSON for files). Both are emitted one record
    per line, with keys and names sorted, so the output is diffable
    and golden-testable byte for byte. *)

val json_escape : string -> string
(** Quote and escape per RFC 8259 (handles quotes, backslashes and
    control characters; the result includes the surrounding quotes). *)

val chrome : ?from:int -> Trace.t -> string
(** The trace as a JSON array of Chrome complete events ([ph = "X"],
    timestamps and durations in microseconds), one event per line, in
    start order. With [from], only spans with [id >= from]. *)

val write_chrome : ?from:int -> Trace.t -> string -> unit
(** [write_chrome t path]: {!chrome} to a file. *)

val metrics_text : ?registry:Metrics.registry -> unit -> string
(** One metric per line, name-sorted:
    [counter dst.combine.calls 42]. Histograms show
    [count/sum/min/max/last]. Empty registries produce
    ["(no metrics recorded)\n"]. *)

val metrics_json : ?registry:Metrics.registry -> unit -> string
(** A JSON object keyed by metric name, one metric per line; counters
    are numbers, gauges [{"gauge": v}], histograms an object with
    [count/sum/min/max/last]. *)

val write_metrics_json : ?registry:Metrics.registry -> string -> unit
