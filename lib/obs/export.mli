(** Serialization of traces and metric snapshots.

    Two formats: Chrome's Trace Event JSON (load the file in
    [about:tracing] or [ui.perfetto.dev]) and a flat metrics dump
    (text for the REPL, JSON for files). Both are emitted one record
    per line, with keys and names sorted, so the output is diffable
    and golden-testable byte for byte. *)

val json_escape : string -> string
(** Quote and escape per RFC 8259 (handles quotes, backslashes and
    control characters; the result includes the surrounding quotes). *)

val chrome : ?from:int -> Trace.t -> string
(** The trace as a JSON array of Chrome complete events ([ph = "X"],
    timestamps and durations in microseconds), one event per line, in
    start order. With [from], only spans with [id >= from]. *)

val write_chrome : ?from:int -> Trace.t -> string -> unit
(** [write_chrome t path]: {!chrome} to a file. *)

val metrics_text : ?registry:Metrics.registry -> unit -> string
(** One metric per line, name-sorted:
    [counter dst.combine.calls 42]. Histograms show
    [count/sum/min/max/last] plus interpolated [p50/p95/p99]. Empty
    registries produce ["(no metrics recorded)\n"]. *)

val metrics_json : ?registry:Metrics.registry -> unit -> string
(** A JSON object keyed by metric name, one metric per line; counters
    are numbers, gauges [{"gauge": v}], histograms an object with
    [count/sum/min/max/last] and a [quantiles] object holding
    [p50/p95/p99]. *)

val write_metrics_json : ?registry:Metrics.registry -> string -> unit

val help_for : string -> string
(** The [# HELP] text for a metric name: exact table entries first,
    then the longest matching family prefix (per-source and
    per-operator rollups), then a generic fallback. *)

val metrics_prom : ?registry:Metrics.registry -> unit -> string
(** Prometheus text exposition: [# HELP] then [# TYPE] headers per
    metric, names prefixed [eridb_] with non-alphanumerics mangled to
    [_]. Histograms emit cumulative [_bucket{le="…"}] series (only
    bounds where the count steps, plus [+Inf]), then [_sum] and
    [_count]. *)

val write_metrics : ?registry:Metrics.registry -> string -> unit
(** Dispatch on extension: [.prom] writes {!metrics_prom}, anything
    else {!metrics_json}. *)

val provenance_json : ?store:Provenance.t -> unit -> string
(** The whole arena as [{"nodes": […], "edges": […]}]; nodes carry
    id/kind/label, optional kappa/norm/alpha, args and input ids;
    edges are [[from, to]] pairs (one per node input), so the edge
    count equals the DOT export's. *)

val provenance_dot : ?store:Provenance.t -> unit -> string
(** Graphviz digraph, one [nN [...]] declaration per node (shape
    encodes the kind) and one [nA -> nB;] line per input edge,
    [rankdir=BT] so sources sit at the bottom. *)

val write_provenance : ?store:Provenance.t -> string -> unit
(** Dispatch on extension: [.dot] writes {!provenance_dot}, anything
    else {!provenance_json}. *)

val event_jsonl : Log.event -> string
(** One flight-recorder event as a single JSON object (no trailing
    newline): [seq], [ts_ms], [severity], [kind], [message], and
    [fields] when present — keys in that fixed order. *)

val events_jsonl : ?last:int -> unit -> string
(** The surviving journal, one {!event_jsonl} line per event, oldest
    first; with [last], only the final [n]. *)

val flight : ?last:int -> ?registry:Metrics.registry -> unit -> string
(** The crash-dump payload: {!events_jsonl} followed by one compact
    [{"metrics": …}] line holding the metrics snapshot. *)

val write_flight : ?last:int -> ?registry:Metrics.registry -> string -> unit
(** [write_flight path]: {!flight} to a file — the [--flight-out]
    payload. *)

(** {2 Protected output flushing}

    One registration path for every [--*-out] writer. A registered
    writer runs exactly once: at {!flush_now}, when a {!flush_protect}
    body raises, or at process exit (including [exit n] from a typed
    error path) via a single [at_exit] hook — so dumps survive the
    failures they are meant to explain. *)

val on_exit_flush : (unit -> unit) -> unit
(** Register a writer; also installs the [at_exit] hook on first use.
    Writers run in registration order; one failing writer does not
    stop the rest (a warning goes to stderr). *)

val flush_now : unit -> unit
(** Run and clear every registered writer now. Idempotent. *)

val flush_protect : (unit -> 'a) -> 'a
(** Run the body, flushing registered writers even when it raises. *)
