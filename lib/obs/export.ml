let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* %.3f keeps microsecond timestamps stable across platforms (%g would
   switch to scientific notation on long traces). *)
let num f = Printf.sprintf "%.3f" f

let chrome_event (e : Trace.event) =
  let args =
    match e.Trace.args with
    | [] -> ""
    | kvs ->
        let fields =
          List.map
            (fun (k, v) -> json_escape k ^ ":" ^ json_escape v)
            (List.sort compare kvs)
        in
        Printf.sprintf ",\"args\":{%s}" (String.concat "," fields)
  in
  Printf.sprintf
    "{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":1%s}"
    (json_escape e.Trace.name) (json_escape e.Trace.cat)
    (num (e.Trace.ts_ms *. 1e3))
    (num (e.Trace.dur_ms *. 1e3))
    args

let chrome ?(from = 0) t =
  let evs =
    List.filter (fun e -> e.Trace.id >= from) (Trace.events t)
  in
  "[\n" ^ String.concat ",\n" (List.map chrome_event evs) ^ "\n]\n"

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let write_chrome ?from t path = write_file path (chrome ?from t)

let metrics_text ?registry () =
  match Metrics.snapshot ?registry () with
  | [] -> "(no metrics recorded)\n"
  | stats ->
      String.concat ""
        (List.map
           (fun (name, stat) ->
             match stat with
             | Metrics.Counter n ->
                 Printf.sprintf "counter   %-36s %d\n" name n
             | Metrics.Gauge v ->
                 Printf.sprintf "gauge     %-36s %g\n" name v
             | Metrics.Histogram { count; sum; min; max; last } ->
                 Printf.sprintf
                   "histogram %-36s count=%d sum=%g min=%g max=%g last=%g\n"
                   name count sum min max last)
           stats)

let metrics_json ?registry () =
  let field (name, stat) =
    let value =
      match stat with
      | Metrics.Counter n -> string_of_int n
      | Metrics.Gauge v -> Printf.sprintf "{\"gauge\":%g}" v
      | Metrics.Histogram { count; sum; min; max; last } ->
          Printf.sprintf
            "{\"count\":%d,\"sum\":%g,\"min\":%g,\"max\":%g,\"last\":%g}"
            count sum min max last
    in
    Printf.sprintf "  %s: %s" (json_escape name) value
  in
  match Metrics.snapshot ?registry () with
  | [] -> "{}\n"
  | stats ->
      "{\n" ^ String.concat ",\n" (List.map field stats) ^ "\n}\n"

let write_metrics_json ?registry path =
  write_file path (metrics_json ?registry ())
