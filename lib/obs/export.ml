let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* %.3f keeps microsecond timestamps stable across platforms (%g would
   switch to scientific notation on long traces). *)
let num f = Printf.sprintf "%.3f" f

let chrome_event (e : Trace.event) =
  let args =
    match e.Trace.args with
    | [] -> ""
    | kvs ->
        let fields =
          List.map
            (fun (k, v) -> json_escape k ^ ":" ^ json_escape v)
            (List.sort compare kvs)
        in
        Printf.sprintf ",\"args\":{%s}" (String.concat "," fields)
  in
  Printf.sprintf
    "{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":1%s}"
    (json_escape e.Trace.name) (json_escape e.Trace.cat)
    (num (e.Trace.ts_ms *. 1e3))
    (num (e.Trace.dur_ms *. 1e3))
    args

let chrome ?(from = 0) t =
  let evs =
    List.filter (fun e -> e.Trace.id >= from) (Trace.events t)
  in
  "[\n" ^ String.concat ",\n" (List.map chrome_event evs) ^ "\n]\n"

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let write_chrome ?from t path = write_file path (chrome ?from t)

let metrics_text ?registry () =
  match Metrics.snapshot ?registry () with
  | [] -> "(no metrics recorded)\n"
  | stats ->
      String.concat ""
        (List.map
           (fun (name, stat) ->
             match stat with
             | Metrics.Counter n ->
                 Printf.sprintf "counter   %-36s %d\n" name n
             | Metrics.Gauge v ->
                 Printf.sprintf "gauge     %-36s %g\n" name v
             | Metrics.Histogram { count; sum; min; max; last; p50; p95; p99; _ }
               ->
                 Printf.sprintf
                   "histogram %-36s count=%d sum=%g min=%g max=%g last=%g \
                    p50=%g p95=%g p99=%g\n"
                   name count sum min max last p50 p95 p99)
           stats)

let metrics_json ?registry () =
  let field (name, stat) =
    let value =
      match stat with
      | Metrics.Counter n -> string_of_int n
      | Metrics.Gauge v -> Printf.sprintf "{\"gauge\":%g}" v
      | Metrics.Histogram { count; sum; min; max; last; p50; p95; p99; _ } ->
          Printf.sprintf
            "{\"count\":%d,\"sum\":%g,\"min\":%g,\"max\":%g,\"last\":%g,\"quantiles\":{\"p50\":%g,\"p95\":%g,\"p99\":%g}}"
            count sum min max last p50 p95 p99
    in
    Printf.sprintf "  %s: %s" (json_escape name) value
  in
  match Metrics.snapshot ?registry () with
  | [] -> "{}\n"
  | stats ->
      "{\n" ^ String.concat ",\n" (List.map field stats) ^ "\n}\n"

let write_metrics_json ?registry path =
  write_file path (metrics_json ?registry ())

(* ---- Prometheus text exposition ---------------------------------- *)

let prom_name name =
  let mangled =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
      name
  in
  "eridb_" ^ mangled

let prom_le bound =
  if bound = Float.infinity then "+Inf" else Printf.sprintf "%g" bound

(* The name→help table behind [# HELP]. Exact entries first; families
   recorded under computed names (per-source rollups, per-operator
   stats) match by longest prefix. One central table so the exposition
   and the documentation in [metrics.mli] stay in step. *)
let help_exact =
  [ ("dst.combine.calls", "Evidence combinations performed.");
    ( "dst.combine.conflict_kappa",
      "Conflict mass kappa observed per combination." );
    ( "dst.combine.total_conflict",
      "Combinations rejected for total conflict (kappa = 1)." );
    ( "dst.combine.escalations",
      "Combinations whose kappa crossed the escalation threshold." );
    ("combine_cache.hit", "Combination results served from the cache.");
    ("combine_cache.miss", "Combination results computed and cached.");
    ("physical.index_probe.rows", "Rows returned by key-index probes.");
    ("federation.retry.attempts", "Source fetch attempts (including retries).");
    ("federation.retry.backoff_ms", "Backoff delay per retried fetch.");
    ("federation.fetch.delivered", "Sources that delivered a relation.");
    ("federation.fetch.lost", "Sources that failed after retries.");
    ("io.load.files", "Relation files parsed by Erm.Io.");
    ("exec.shards", "Shard count of the latest sharded stage.");
    ("exec.workers", "Worker domains used by the latest sharded stage.");
    ("exec.merge.ns", "Nanoseconds spent merging shard outputs.");
    ("exec.shard.rows", "Rows produced per shard.");
    ("exec.index.build", "Generation-keyed scan indexes built.");
    ("exec.index.reuse", "Generation-keyed scan indexes reused.");
    ("integration.sources", "Source relations consumed by integration.");
    ("integration.conflicts", "Attribute conflicts found during integration.");
    ("integration.mean_kappa", "Mean conflict mass per integrated conflict.");
    ("provenance.nodes", "Live nodes in the provenance arena.");
    ("provenance.max_depth", "Deepest derivation in the provenance arena.");
    ("analysis.sweep.runs", "Data-quality sweeps executed.");
    ("obs.gc.minor_words", "Minor-heap words allocated (Gc.quick_stat).");
    ("obs.gc.major_words", "Major-heap words allocated (Gc.quick_stat).");
    ("obs.gc.compactions", "Heap compactions performed.") ]

let help_prefix =
  [ ( "dst.combine.kappa_by_source.",
      "Conflict mass attributed to one source." );
    ("dst.combine.rule.", "Combinations performed under this rule.");
    ("physical.", "Physical operator rollup (calls, rows, pruning, wall).");
    ("store.commit.", "Evidence-store commit activity.");
    ("store.delta.", "Evidence-store delta-chain activity.");
    ("store.recovery.", "Evidence-store recovery activity.");
    ("analysis.", "Data-quality sweep rollup.");
    ("federation.", "Federation runtime activity.");
    ("exec.", "Sharded executor activity.");
    ("obs.gc.", "Collector pressure sampled at span close.") ]

let help_for name =
  match List.assoc_opt name help_exact with
  | Some h -> h
  | None ->
      let starts p =
        String.length name >= String.length p
        && String.sub name 0 (String.length p) = p
      in
      let best =
        List.fold_left
          (fun acc (p, h) ->
            if starts p then
              match acc with
              | Some (p', _) when String.length p' >= String.length p -> acc
              | _ -> Some (p, h)
            else acc)
          None help_prefix
      in
      (match best with Some (_, h) -> h | None -> "eridb metric.")

let metrics_prom ?registry () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, stat) ->
      let p = prom_name name in
      Buffer.add_string buf
        (Printf.sprintf "# HELP %s %s\n" p (help_for name));
      match stat with
      | Metrics.Counter n ->
          Buffer.add_string buf
            (Printf.sprintf "# TYPE %s counter\n%s %d\n" p p n)
      | Metrics.Gauge v ->
          Buffer.add_string buf
            (Printf.sprintf "# TYPE %s gauge\n%s %g\n" p p v)
      | Metrics.Histogram { count; sum; buckets; _ } ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" p);
          (* The grid is wide; emit only bounds where the cumulative
             count steps (plus +Inf, which exposition requires). The
             series stays monotone, so scrapers reconstruct the same
             distribution. *)
          let prev = ref (-1) in
          List.iter
            (fun (bound, cum) ->
              if cum <> !prev || bound = Float.infinity then begin
                prev := cum;
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" p
                     (prom_le bound) cum)
              end)
            buckets;
          Buffer.add_string buf (Printf.sprintf "%s_sum %g\n" p sum);
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" p count))
    (Metrics.snapshot ?registry ());
  Buffer.contents buf

let write_metrics ?registry path =
  if Filename.check_suffix path ".prom" then
    write_file path (metrics_prom ?registry ())
  else write_metrics_json ?registry path

(* ---- Provenance exports ------------------------------------------ *)

let provenance_json ?store () =
  let buf = Buffer.create 1024 in
  let nodes = Provenance.nodes ?store () in
  Buffer.add_string buf "{\n\"nodes\": [\n";
  let opt_field name = function
    | Some v -> Printf.sprintf ",\"%s\":%g" name v
    | None -> ""
  in
  List.iteri
    (fun i (n : Provenance.node) ->
      if i > 0 then Buffer.add_string buf ",\n";
      let args =
        match n.args with
        | [] -> ""
        | kvs ->
            Printf.sprintf ",\"args\":{%s}"
              (String.concat ","
                 (List.map
                    (fun (k, v) -> json_escape k ^ ":" ^ json_escape v)
                    kvs))
      in
      Buffer.add_string buf
        (Printf.sprintf "{\"id\":%d,\"kind\":%s,\"label\":%s%s%s%s%s,\"inputs\":[%s]}"
           n.id
           (json_escape (Provenance.kind_name n.kind))
           (json_escape n.label) (opt_field "kappa" n.kappa)
           (opt_field "norm" n.norm) (opt_field "alpha" n.alpha) args
           (String.concat ","
              (Array.to_list (Array.map string_of_int n.inputs)))))
    nodes;
  Buffer.add_string buf "\n],\n\"edges\": [\n";
  let first = ref true in
  List.iter
    (fun (n : Provenance.node) ->
      Array.iter
        (fun i ->
          if !first then first := false else Buffer.add_string buf ",\n";
          Buffer.add_string buf (Printf.sprintf "[%d,%d]" i n.id))
        n.inputs)
    nodes;
  Buffer.add_string buf "\n]\n}\n";
  Buffer.contents buf

let dot_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let dot_shape = function
  | Provenance.Source -> "box"
  | Provenance.Operand -> "plaintext"
  | Provenance.Combine -> "ellipse"
  | Provenance.Discount -> "trapezium"
  | Provenance.Support -> "diamond"
  | Provenance.Merge -> "hexagon"
  | Provenance.Step -> "note"

let provenance_dot ?store () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph provenance {\n  rankdir=BT;\n";
  let nodes = Provenance.nodes ?store () in
  List.iter
    (fun (n : Provenance.node) ->
      let deco =
        (match n.kappa with
        | Some k -> Printf.sprintf "\\nkappa=%.6g" k
        | None -> "")
        ^
        match n.alpha with
        | Some a -> Printf.sprintf "\\nalpha=%.6g" a
        | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [shape=%s label=\"%s %s%s\"];\n" n.id
           (dot_shape n.kind)
           (Provenance.kind_name n.kind)
           (dot_escape n.label) deco))
    nodes;
  List.iter
    (fun (n : Provenance.node) ->
      Array.iter
        (fun i ->
          Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" i n.id))
        n.inputs)
    nodes;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_provenance ?store path =
  if Filename.check_suffix path ".dot" then
    write_file path (provenance_dot ?store ())
  else write_file path (provenance_json ?store ())

(* ---- Flight-recorder exports ------------------------------------- *)

let event_jsonl (e : Log.event) =
  let fields =
    match e.Log.fields with
    | [] -> ""
    | kvs ->
        Printf.sprintf ",\"fields\":{%s}"
          (String.concat ","
             (List.map (fun (k, v) -> json_escape k ^ ":" ^ json_escape v) kvs))
  in
  Printf.sprintf
    "{\"seq\":%d,\"ts_ms\":%s,\"severity\":%s,\"kind\":%s,\"message\":%s%s}"
    e.Log.seq (num e.Log.ts_ms)
    (json_escape (Log.severity_to_string e.Log.severity))
    (json_escape (Log.kind_to_string e.Log.kind))
    (json_escape e.Log.message) fields

let events_jsonl ?last () =
  String.concat "" (List.map (fun e -> event_jsonl e ^ "\n") (Log.events ?last ()))

(* One compact line so the flight dump stays greppable line-by-line. *)
let metrics_line ?registry () =
  let field (name, stat) =
    let value =
      match stat with
      | Metrics.Counter n -> string_of_int n
      | Metrics.Gauge v -> Printf.sprintf "{\"gauge\":%g}" v
      | Metrics.Histogram { count; sum; min; max; last; p50; p95; p99; _ } ->
          Printf.sprintf
            "{\"count\":%d,\"sum\":%g,\"min\":%g,\"max\":%g,\"last\":%g,\"quantiles\":{\"p50\":%g,\"p95\":%g,\"p99\":%g}}"
            count sum min max last p50 p95 p99
    in
    json_escape name ^ ":" ^ value
  in
  Printf.sprintf "{\"metrics\":{%s}}\n"
    (String.concat "," (List.map field (Metrics.snapshot ?registry ())))

let flight ?last ?registry () = events_jsonl ?last () ^ metrics_line ?registry ()
let write_flight ?last ?registry path = write_file path (flight ?last ?registry ())

(* ---- Protected output flushing ----------------------------------- *)

(* One registration path for every [--*-out] writer across the three
   binaries. Writers run exactly once — on [flush_now], on a raised
   exception under [flush_protect], or on process exit (including
   [exit n] from a typed error path) via a single [at_exit] hook — so a
   crash dump or trace file survives the same failures it is meant to
   explain. *)
let flushers : (unit -> unit) list ref = ref []
let exit_hook_installed = ref false

let flush_now () =
  let fs = !flushers in
  flushers := [];
  List.iter
    (fun f ->
      try f ()
      with e ->
        Printf.eprintf "warning: output flush failed: %s\n%!"
          (Printexc.to_string e))
    fs

let on_exit_flush f =
  if not !exit_hook_installed then begin
    exit_hook_installed := true;
    at_exit flush_now
  end;
  flushers := !flushers @ [ f ]

let flush_protect body = Fun.protect ~finally:flush_now body
