type histo = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  mutable h_last : float;
}

type metric = M_counter of int ref | M_gauge of float ref | M_histo of histo

type registry = {
  table : (string, metric) Hashtbl.t;
  mutable live : bool;
}

type stat =
  | Counter of int
  | Gauge of float
  | Histogram of {
      count : int;
      sum : float;
      min : float;
      max : float;
      last : float;
    }

let create () = { table = Hashtbl.create 64; live = true }
let default = { table = Hashtbl.create 64; live = false }
let on () = default.live
let enable () = default.live <- true
let disable () = default.live <- false

let reset ?(registry = default) () = Hashtbl.reset registry.table

let kind_error name =
  invalid_arg
    (Printf.sprintf "Obs.Metrics: %s is already bound to another kind" name)

(* Lookup-or-create under a fixed kind; the double branch keeps the
   common path (name already bound, right kind) allocation-free. *)
let incr ?(registry = default) ?(by = 1) name =
  if registry.live then
    match Hashtbl.find_opt registry.table name with
    | Some (M_counter c) -> c := !c + by
    | Some _ -> kind_error name
    | None -> Hashtbl.add registry.table name (M_counter (ref by))

let gauge ?(registry = default) name v =
  if registry.live then
    match Hashtbl.find_opt registry.table name with
    | Some (M_gauge g) -> g := v
    | Some _ -> kind_error name
    | None -> Hashtbl.add registry.table name (M_gauge (ref v))

let observe ?(registry = default) name v =
  if registry.live then
    match Hashtbl.find_opt registry.table name with
    | Some (M_histo h) ->
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum +. v;
        if v < h.h_min then h.h_min <- v;
        if v > h.h_max then h.h_max <- v;
        h.h_last <- v
    | Some _ -> kind_error name
    | None ->
        Hashtbl.add registry.table name
          (M_histo
             { h_count = 1; h_sum = v; h_min = v; h_max = v; h_last = v })

let counter ?(registry = default) name =
  match Hashtbl.find_opt registry.table name with
  | Some (M_counter c) -> !c
  | Some _ | None -> 0

let last ?(registry = default) name =
  match Hashtbl.find_opt registry.table name with
  | Some (M_histo h) -> Some h.h_last
  | Some (M_gauge g) -> Some !g
  | Some (M_counter _) | None -> None

let stat_of = function
  | M_counter c -> Counter !c
  | M_gauge g -> Gauge !g
  | M_histo h ->
      Histogram
        { count = h.h_count;
          sum = h.h_sum;
          min = h.h_min;
          max = h.h_max;
          last = h.h_last }

let snapshot ?(registry = default) () =
  Hashtbl.fold (fun name m acc -> (name, stat_of m) :: acc) registry.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
