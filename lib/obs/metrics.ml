(* Fixed log-spaced bucket upper bounds ({1,2,5} per decade from 1e-9
   to 5e11, with a 0 bucket below and an overflow bucket above). The
   grid is static so quantile estimates are deterministic, memory per
   histogram is bounded, and the Prometheus exposition can reuse the
   same cumulative counts. *)
let bucket_bounds =
  let acc = ref [ 0.0 ] in
  for e = -9 to 11 do
    List.iter
      (fun m -> acc := (m *. (10.0 ** float_of_int e)) :: !acc)
      [ 1.0; 2.0; 5.0 ]
  done;
  Array.of_list (List.sort compare !acc)

let bucket_count = Array.length bucket_bounds + 1 (* + overflow *)

(* First bucket whose upper bound is >= v (overflow past the grid). *)
let bucket_index v =
  let n = Array.length bucket_bounds in
  if v > bucket_bounds.(n - 1) then n
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if v <= bucket_bounds.(mid) then hi := mid else lo := mid + 1
    done;
    !lo
  end

type histo = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  mutable h_last : float;
  h_buckets : int array;
}

type metric = M_counter of int ref | M_gauge of float ref | M_histo of histo

type registry = {
  table : (string, metric) Hashtbl.t;
  mutable live : bool;
}

type stat =
  | Counter of int
  | Gauge of float
  | Histogram of {
      count : int;
      sum : float;
      min : float;
      max : float;
      last : float;
      p50 : float;
      p95 : float;
      p99 : float;
      buckets : (float * int) list;
    }

let create () = { table = Hashtbl.create 64; live = true }
let default = { table = Hashtbl.create 64; live = false }
let on () = default.live
let enable () = default.live <- true
let disable () = default.live <- false

let reset ?(registry = default) () = Hashtbl.reset registry.table

let kind_error name =
  invalid_arg
    (Printf.sprintf "Obs.Metrics: %s is already bound to another kind" name)

(* Lookup-or-create under a fixed kind; the double branch keeps the
   common path (name already bound, right kind) allocation-free. *)
let direct_incr registry by name =
  if registry.live then
    match Hashtbl.find_opt registry.table name with
    | Some (M_counter c) -> c := !c + by
    | Some _ -> kind_error name
    | None -> Hashtbl.add registry.table name (M_counter (ref by))

let direct_gauge registry name v =
  if registry.live then
    match Hashtbl.find_opt registry.table name with
    | Some (M_gauge g) -> g := v
    | Some _ -> kind_error name
    | None -> Hashtbl.add registry.table name (M_gauge (ref v))

let direct_observe registry name v =
  if registry.live then
    match Hashtbl.find_opt registry.table name with
    | Some (M_histo h) ->
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum +. v;
        if v < h.h_min then h.h_min <- v;
        if v > h.h_max then h.h_max <- v;
        h.h_last <- v;
        let i = bucket_index v in
        h.h_buckets.(i) <- h.h_buckets.(i) + 1
    | Some _ -> kind_error name
    | None ->
        let h =
          { h_count = 1;
            h_sum = v;
            h_min = v;
            h_max = v;
            h_last = v;
            h_buckets = Array.make bucket_count 0 }
        in
        h.h_buckets.(bucket_index v) <- 1;
        Hashtbl.add registry.table name (M_histo h)

(* Per-domain buffer mode: a forked buffer logs the exact operation
   sequence a worker performed; merging replays those ops against the
   default registry on the coordinating domain, in task-index order.
   Replaying (rather than adding partial aggregates) reproduces the
   sequential float-accumulation order bit-for-bit, so merged dumps are
   byte-identical to a single-worker run. *)
type op =
  | Op_incr of string * int
  | Op_gauge of string * float
  | Op_observe of string * float

type buffer = { mutable ops : op list (* most recent first *) }

let sink : buffer option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let fork () = if default.live then Some { ops = [] } else None

let with_buffer buf f =
  match buf with
  | None -> f ()
  | Some _ ->
      let prev = Domain.DLS.get sink in
      Domain.DLS.set sink buf;
      Fun.protect ~finally:(fun () -> Domain.DLS.set sink prev) f

let merge = function
  | None -> ()
  | Some b ->
      List.iter
        (function
          | Op_incr (n, by) -> direct_incr default by n
          | Op_gauge (n, v) -> direct_gauge default n v
          | Op_observe (n, v) -> direct_observe default n v)
        (List.rev b.ops)

(* Unqualified writes route through the per-domain sink when one is
   installed; explicit-registry writes always go direct. *)
let incr ?registry ?(by = 1) name =
  match registry with
  | Some r -> direct_incr r by name
  | None -> (
      match Domain.DLS.get sink with
      | Some b -> b.ops <- Op_incr (name, by) :: b.ops
      | None -> direct_incr default by name)

let gauge ?registry name v =
  match registry with
  | Some r -> direct_gauge r name v
  | None -> (
      match Domain.DLS.get sink with
      | Some b -> b.ops <- Op_gauge (name, v) :: b.ops
      | None -> direct_gauge default name v)

let observe ?registry name v =
  match registry with
  | Some r -> direct_observe r name v
  | None -> (
      match Domain.DLS.get sink with
      | Some b -> b.ops <- Op_observe (name, v) :: b.ops
      | None -> direct_observe default name v)

(* GC pressure gauges, sampled at top-level span close (see
   [Trace.with_span]) so BENCH sweeps can correlate throughput cliffs
   with collector activity. Off by default: [Gc.quick_stat] is cheap
   but not free, and the gauges would perturb byte-identity checks that
   do not expect them. *)
let gc_sampling = ref false
let enable_gc_sampling () = gc_sampling := true
let disable_gc_sampling () = gc_sampling := false

let sample_gc () =
  if default.live && !gc_sampling then begin
    let s = Gc.quick_stat () in
    gauge "obs.gc.minor_words" s.Gc.minor_words;
    gauge "obs.gc.major_words" s.Gc.major_words;
    gauge "obs.gc.compactions" (float_of_int s.Gc.compactions)
  end

let counter ?(registry = default) name =
  match Hashtbl.find_opt registry.table name with
  | Some (M_counter c) -> !c
  | Some _ | None -> 0

let last ?(registry = default) name =
  match Hashtbl.find_opt registry.table name with
  | Some (M_histo h) -> Some h.h_last
  | Some (M_gauge g) -> Some !g
  | Some (M_counter _) | None -> None

(* Linear interpolation inside the bucket where the cumulative count
   crosses q·n, clamped to the observed [min, max]. Deterministic
   (same samples, any order → same estimate); exact when the samples
   are evenly spread across the crossing bucket. *)
let quantile h q =
  if h.h_count = 0 then 0.0
  else begin
    let target = q *. float_of_int h.h_count in
    let n = Array.length h.h_buckets in
    let rec walk i cum =
      if i >= n then h.h_max
      else
        let c = h.h_buckets.(i) in
        let cum' = cum + c in
        if c > 0 && float_of_int cum' >= target then begin
          let lo = if i = 0 then h.h_min else bucket_bounds.(i - 1) in
          let hi =
            if i >= Array.length bucket_bounds then h.h_max
            else bucket_bounds.(i)
          in
          let lo = Float.max lo h.h_min and hi = Float.min hi h.h_max in
          let est =
            lo +. ((hi -. lo) *. ((target -. float_of_int cum) /. float_of_int c))
          in
          Float.max h.h_min (Float.min h.h_max est)
        end
        else walk (i + 1) cum'
    in
    walk 0 0
  end

(* Cumulative (bound, count <= bound) pairs, one per grid bound plus
   the +infinity overflow — the shape Prometheus histograms expect. *)
let cumulative_buckets h =
  let cum = ref 0 in
  let grid =
    List.init (Array.length bucket_bounds) (fun i ->
        cum := !cum + h.h_buckets.(i);
        (bucket_bounds.(i), !cum))
  in
  grid @ [ (Float.infinity, h.h_count) ]

let stat_of = function
  | M_counter c -> Counter !c
  | M_gauge g -> Gauge !g
  | M_histo h ->
      Histogram
        { count = h.h_count;
          sum = h.h_sum;
          min = h.h_min;
          max = h.h_max;
          last = h.h_last;
          p50 = quantile h 0.50;
          p95 = quantile h 0.95;
          p99 = quantile h 0.99;
          buckets = cumulative_buckets h }

let snapshot ?(registry = default) () =
  Hashtbl.fold (fun name m acc -> (name, stat_of m) :: acc) registry.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let with_prefix ?(registry = default) prefix =
  let n = String.length prefix in
  Hashtbl.fold
    (fun name m acc ->
      if String.length name >= n && String.sub name 0 n = prefix then
        (name, stat_of m) :: acc
      else acc)
    registry.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
