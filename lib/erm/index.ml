module Vmap = Map.Make (Dst.Value)

type t = {
  indexed_attr : string;
  entries : Dst.Value.t list list Vmap.t;  (** value -> keys, key-ordered *)
}

exception Not_definite of string

let build r attr_name =
  let schema = Relation.schema r in
  (match Attr.kind (Schema.find schema attr_name) with
  | Attr.Definite _ -> ()
  | Attr.Evidential _ -> raise (Not_definite attr_name));
  let entries =
    Relation.fold
      (fun t acc ->
        let v = Etuple.definite_value schema t attr_name in
        Vmap.update v
          (function
            | None -> Some [ Etuple.key t ]
            | Some keys -> Some (Etuple.key t :: keys))
          acc)
      r Vmap.empty
  in
  (* The fold visits tuples in key order and conses, so reverse each
     bucket to restore it. *)
  { indexed_attr = attr_name; entries = Vmap.map List.rev entries }

let attr t = t.indexed_attr
let distinct_values t = Vmap.cardinal t.entries

let lookup t v =
  match Vmap.find_opt v t.entries with Some keys -> keys | None -> []

let select_eq t r v =
  (* Like every operator, emit only sn > 0 tuples: a full scan's σ̂(A = v)
     closure-drops complement tuples, and equivalence with it (Theorem-1
     boundedness over _unchecked relations included) requires the probe
     to drop them too. *)
  List.fold_left
    (fun acc key ->
      match Relation.find_opt r key with
      | Some tuple when Dst.Support.positive (Etuple.tm tuple) ->
          Relation.add acc tuple
      | Some _ | None -> acc)
    (Relation.empty (Relation.schema r))
    (lookup t v)

let usable_for t pred =
  match pred with
  | Predicate.Theta
      (Predicate.Eq, Predicate.Field a, Predicate.Const (Etuple.Definite v))
    when String.equal a t.indexed_attr ->
      Some v
  | Predicate.Theta
      (Predicate.Eq, Predicate.Const (Etuple.Definite v), Predicate.Field a)
    when String.equal a t.indexed_attr ->
      Some v
  | Predicate.Is (a, set)
    when String.equal a t.indexed_attr && Dst.Vset.cardinal set = 1 ->
      Some (Dst.Vset.choose set)
  | _ -> None
