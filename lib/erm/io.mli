(** Text serialization of extended relations (the [.erd] format).

    {v
    # comment
    relation ra
    key  rname : string
    attr street : string
    attr bldg-no : int
    attr speciality : evidence {am, ca, hu, it, mu, si, ta}
    tuple garden | univ.ave. | 2011 | [si^0.5; hu^0.25; ~^0.25] | (1, 1)
    v}

    A file holds one or more [relation] blocks. Tuple rows list the key
    values, then the non-key cells, then the membership pair, separated
    by [|]. Evidence cells use the paper notation of
    {!Dst.Evidence.of_string}; definite cells are literals parsed
    according to the attribute's declared kind. *)

exception Io_error of { line : int; col : int; message : string }
(** [line] is 1-based; [col] is the 1-based column of the offending
    token, or [0] when no finer position than the line is known. *)

val relations_of_string : string -> Relation.t list
(** @raise Io_error with a 1-based line/column position on malformed
    input. *)

val relation_of_string : string -> Relation.t
(** Expects exactly one relation block. @raise Io_error otherwise. *)

val to_string : Relation.t -> string
(** Round-trips through {!relation_of_string} (modulo float
    formatting). *)

val load : string -> Relation.t list
(** Reads a [.erd] file. Both failure channels name the file:
    @raise Sys_error on IO failures (message includes the path);
    @raise Io_error on parse failures, with the message prefixed by the
    path. *)

val save : string -> Relation.t list -> unit

val relation_of_csv : Schema.t -> string -> Relation.t
(** Parse a CSV document (RFC 4180 quoting) against a known schema: the
    header row must name the schema's attributes in order followed by
    ["(sn,sp)"]; each record supplies the key values, the cells (evidence
    cells in the paper notation) and the membership pair. Inverse of
    {!Render.to_csv} up to float display precision.
    @raise Io_error with the 1-based record number on malformed input. *)
