(** Text serialization of extended relations (the [.erd] format).

    {v
    # comment
    relation ra
    key  rname : string
    attr street : string
    attr bldg-no : int
    attr speciality : evidence {am, ca, hu, it, mu, si, ta}
    tuple garden | univ.ave. | 2011 | [si^0.5; hu^0.25; ~^0.25] | (1, 1)
    v}

    A file holds one or more [relation] blocks. Tuple rows list the key
    values, then the non-key cells, then the membership pair, separated
    by [|]. Evidence cells use the paper notation of
    {!Dst.Evidence.of_string}; definite cells are literals parsed
    according to the attribute's declared kind. *)

exception Io_error of { line : int; col : int; message : string }
(** [line] is 1-based; [col] is the 1-based column of the offending
    token, or [0] when no finer position than the line is known. *)

val relations_of_string : string -> Relation.t list
(** @raise Io_error with a 1-based line/column position on malformed
    input. *)

val relation_of_string : string -> Relation.t
(** Expects exactly one relation block. @raise Io_error otherwise. *)

val to_string : Relation.t -> string
(** Round-trips through {!relation_of_string} (modulo float
    formatting). *)

(** {2 Record-level pieces}

    The persistent store frames individual tuples inside checksummed
    segment records, so it needs the schema header and single tuple rows
    as separate round-trippable strings. [to_string] is exactly
    [schema_to_string] followed by one [tuple_to_string] row per tuple. *)

val schema_to_string : Schema.t -> string
(** The [relation]/[key]/[attr] header lines of {!to_string}, without
    any tuple rows. *)

val schema_of_string : string -> Schema.t
(** Inverse of {!schema_to_string}. Tuple rows, if present, are parsed
    and discarded. @raise Io_error on malformed input or when the text
    declares more than one relation. *)

val tuple_to_string : Etuple.t -> string
(** One tuple row body ([k | cell | … | (sn, sp)], no [tuple] keyword).
    Floats print via the exact round-trip encoding of {!to_string}, so
    [tuple_of_string] returns a bit-identical tuple. *)

val tuple_of_string : Schema.t -> string -> Etuple.t
(** Inverse of {!tuple_to_string} under the same schema.
    @raise Io_error on malformed input. *)

val load : string -> Relation.t list
(** Reads a [.erd] file. Both failure channels name the file:
    @raise Sys_error on IO failures (message includes the path);
    @raise Io_error on parse failures, with the message prefixed by the
    path. *)

val save : string -> Relation.t list -> unit

val relation_of_csv : Schema.t -> string -> Relation.t
(** Parse a CSV document (RFC 4180 quoting) against a known schema: the
    header row must name the schema's attributes in order followed by
    ["(sn,sp)"]; each record supplies the key values, the cells (evidence
    cells in the paper notation) and the membership pair. Inverse of
    {!Render.to_csv} up to float display precision.
    @raise Io_error with the 1-based record number on malformed input. *)
