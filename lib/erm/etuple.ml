type cell = Definite of Dst.Value.t | Evidence of Dst.Evidence.t

type t = {
  key : Dst.Value.t array;
  cells : cell array;
  tm : Dst.Support.t;
}

exception Tuple_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Tuple_error s)) fmt

let check_cell attr cell =
  match (Attr.kind attr, cell) with
  | Attr.Definite _, Definite v ->
      if not (Attr.value_kind_ok attr v) then
        fail "attribute %s expects a %s value, got %s" (Attr.name attr)
          (match Attr.kind attr with Attr.Definite k -> k | _ -> assert false)
          (Dst.Value.kind_name v)
  | Attr.Definite _, Evidence _ ->
      fail "attribute %s is definite but was given an evidence set"
        (Attr.name attr)
  | Attr.Evidential d, Evidence e ->
      if not (Dst.Domain.equal d (Dst.Mass.F.frame e)) then
        fail "evidence for %s is over the wrong frame" (Attr.name attr)
  | Attr.Evidential _, Definite _ ->
      fail
        "attribute %s is evidential; wrap the value with Evidence (definite …)"
        (Attr.name attr)

let make schema ~key ~cells ~tm =
  let key_attrs = Schema.key schema and nonkey = Schema.nonkey schema in
  if List.length key <> List.length key_attrs then
    fail "relation %s expects %d key values, got %d" (Schema.name schema)
      (List.length key_attrs) (List.length key);
  List.iter2
    (fun attr v ->
      if not (Attr.value_kind_ok attr v) then
        fail "key attribute %s expects a %s value" (Attr.name attr)
          (Dst.Value.kind_name v))
    key_attrs key;
  if List.length cells <> List.length nonkey then
    fail "relation %s expects %d non-key cells, got %d" (Schema.name schema)
      (List.length nonkey) (List.length cells);
  List.iter2 check_cell nonkey cells;
  { key = Array.of_list key; cells = Array.of_list cells; tm }

let of_assoc schema ~key ~cells ~tm =
  let lookup attr =
    match List.assoc_opt (Attr.name attr) cells with
    | Some c -> c
    | None -> fail "missing cell for attribute %s" (Attr.name attr)
  in
  List.iter
    (fun (n, _) ->
      match Schema.find_opt schema n with
      | None -> fail "unknown attribute %s" n
      | Some a ->
          if List.exists (fun k -> Attr.equal k a) (Schema.key schema) then
            fail "key attribute %s must be passed in ~key" n)
    cells;
  make schema ~key ~cells:(List.map lookup (Schema.nonkey schema)) ~tm

let key t = Array.to_list t.key
let cells t = Array.to_list t.cells
let tm t = t.tm
let with_tm tm t = { t with tm }

let cell schema t name =
  match Schema.find_opt schema name with
  | None -> raise Not_found
  | Some attr ->
      if Schema.is_key schema (Attr.name attr) then
        Definite t.key.(Schema.key_index schema name)
      else t.cells.(Schema.nonkey_index schema name)

let evidence schema t name =
  match cell schema t name with
  | Evidence e -> e
  | Definite _ -> fail "attribute %s holds a definite value, not evidence" name

let definite_value schema t name =
  match cell schema t name with
  | Definite v -> v
  | Evidence _ -> fail "attribute %s holds evidence, not a definite value" name

let cell_equal a b =
  match (a, b) with
  | Definite x, Definite y -> Dst.Value.equal x y
  | Evidence x, Evidence y -> Dst.Mass.F.equal x y
  | Definite _, Evidence _ | Evidence _, Definite _ -> false

let key_equal a b =
  Array.length a.key = Array.length b.key
  && Array.for_all2 Dst.Value.equal a.key b.key

let equal a b =
  key_equal a b
  && Array.length a.cells = Array.length b.cells
  && Array.for_all2 cell_equal a.cells b.cells
  && Dst.Support.equal a.tm b.tm

let combine_with ~combine_evidence schema a b =
  if not (key_equal a b) then fail "combine: keys differ";
  let merge_cell attr x y =
    match (x, y) with
    | Definite v, Definite w ->
        if Dst.Value.equal v w then Definite v
        else
          fail "definite attribute %s disagrees: %s vs %s" (Attr.name attr)
            (Dst.Value.to_string v) (Dst.Value.to_string w)
    | Evidence e, Evidence f -> Evidence (combine_evidence e f)
    | Definite _, Evidence _ | Evidence _, Definite _ ->
        fail "attribute %s mixes definite and evidential cells"
          (Attr.name attr)
  in
  let nonkey = Array.of_list (Schema.nonkey schema) in
  let cells =
    Array.init (Array.length a.cells) (fun i ->
        merge_cell nonkey.(i) a.cells.(i) b.cells.(i))
  in
  { key = a.key; cells; tm = Dst.Support.combine a.tm b.tm }

let combine schema a b =
  combine_with ~combine_evidence:Dst.Mass.F.combine schema a b

let project schema t names =
  let cells =
    List.filter_map
      (fun n ->
        if Schema.is_key schema n then None
        else Some t.cells.(Schema.nonkey_index schema n))
      names
  in
  { t with cells = Array.of_list cells }

let concat a b =
  { key = Array.append a.key b.key;
    cells = Array.append a.cells b.cells;
    tm = Dst.Support.f_tm a.tm b.tm }

let pp_cell ppf = function
  | Definite v -> Dst.Value.pp ppf v
  | Evidence e -> Dst.Evidence.pp ppf e

let pp schema ppf t =
  ignore schema;
  Format.fprintf ppf "@[<h>%a | %a | %a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Dst.Value.pp)
    (key t)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ")
       pp_cell)
    (cells t) Dst.Support.pp t.tm
