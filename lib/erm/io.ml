exception Io_error of { line : int; message : string }

let fail line fmt =
  Format.kasprintf (fun message -> raise (Io_error { line; message })) fmt

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let string_mentions haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n > 0 && go 0

(* "name : string" or "name : evidence {a, b, c}" *)
let parse_attr_decl line body =
  match String.index_opt body ':' with
  | None -> fail line "expected `name : kind` in attribute declaration"
  | Some i ->
      let name = String.trim (String.sub body 0 i) in
      let kind =
        String.trim (String.sub body (i + 1) (String.length body - i - 1))
      in
      if name = "" then fail line "empty attribute name"
      else if String.length kind >= 8 && String.sub kind 0 8 = "evidence" then
        let spec = String.trim (String.sub kind 8 (String.length kind - 8)) in
        let inner =
          if String.length spec >= 2 && spec.[0] = '{'
             && spec.[String.length spec - 1] = '}'
          then String.sub spec 1 (String.length spec - 2)
          else fail line "expected evidence {v1, v2, …}"
        in
        let values =
          String.split_on_char ',' inner
          |> List.map String.trim
          |> List.filter (fun v -> v <> "")
          |> List.map Dst.Value.of_literal
        in
        if values = [] then fail line "empty evidence domain"
        else Attr.evidential name (Dst.Domain.of_values name values)
      else
        try Attr.definite name kind
        with Invalid_argument _ -> fail line "unknown attribute kind %s" kind

let parse_definite line kind raw =
  let raw = String.trim raw in
  match kind with
  | "string" ->
      if String.length raw >= 2 && raw.[0] = '"' then
        (try Dst.Value.of_literal raw
         with Invalid_argument m -> fail line "%s" m)
      else Dst.Value.string raw
  | "int" -> (
      match int_of_string_opt raw with
      | Some n -> Dst.Value.int n
      | None -> fail line "expected an int, got %s" raw)
  | "float" -> (
      match float_of_string_opt raw with
      | Some f -> Dst.Value.float f
      | None -> fail line "expected a float, got %s" raw)
  | "bool" -> (
      match bool_of_string_opt raw with
      | Some b -> Dst.Value.bool b
      | None -> fail line "expected a bool, got %s" raw)
  | _ -> fail line "unknown value kind %s" kind

let parse_cell line attr raw =
  match Attr.kind attr with
  | Attr.Definite kind -> Etuple.Definite (parse_definite line kind raw)
  | Attr.Evidential domain -> (
      try Etuple.Evidence (Dst.Evidence.of_string domain (String.trim raw))
      with
      | Dst.Evidence.Parse_error (_, m) ->
          fail line "bad evidence for %s: %s" (Attr.name attr) m
      | Dst.Mass.F.Invalid_mass m ->
          fail line "bad evidence for %s: %s" (Attr.name attr) m)

let parse_tuple line schema body =
  let fields = String.split_on_char '|' body |> List.map String.trim in
  let expected = Schema.arity schema + 1 in
  if List.length fields <> expected then
    fail line "expected %d |-separated fields, got %d" expected
      (List.length fields);
  let key_attrs = Schema.key schema in
  let rec split n l =
    if n = 0 then ([], l)
    else
      match l with
      | x :: rest ->
          let a, b = split (n - 1) rest in
          (x :: a, b)
      | [] -> assert false
  in
  let key_raw, rest = split (List.length key_attrs) fields in
  let cell_raw, tm_raw = split (List.length (Schema.nonkey schema)) rest in
  let key =
    List.map2
      (fun attr raw ->
        match Attr.kind attr with
        | Attr.Definite kind -> parse_definite line kind raw
        | Attr.Evidential _ -> fail line "evidential key attribute")
      key_attrs key_raw
  in
  let cells = List.map2 (parse_cell line) (Schema.nonkey schema) cell_raw in
  let tm =
    match tm_raw with
    | [ raw ] -> (
        try Dst.Support.of_string raw
        with Invalid_argument _ | Dst.Support.Invalid_support _ ->
          fail line "bad membership pair %s" raw)
    | _ -> assert false
  in
  try Etuple.make schema ~key ~cells ~tm
  with Etuple.Tuple_error m -> fail line "%s" m

type block = {
  mutable rname : string;
  mutable keys : Attr.t list;
  mutable attrs : Attr.t list;
  mutable rows : (int * string) list;
}

let relations_of_string input =
  let lines = String.split_on_char '\n' input in
  let blocks = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | Some b ->
        blocks := b :: !blocks;
        current := None
    | None -> ()
  in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line = String.trim raw in
      if line = "" || line.[0] = '#' then ()
      else
        match split_words line with
        | "relation" :: rest ->
            flush ();
            let name = String.concat " " rest in
            if name = "" then fail lineno "relation needs a name"
            else
              current :=
                Some { rname = name; keys = []; attrs = []; rows = [] }
        | word :: _ -> (
            let body () =
              String.trim
                (String.sub line (String.length word)
                   (String.length line - String.length word))
            in
            match (!current, word) with
            | None, _ -> fail lineno "expected `relation <name>` first"
            | Some b, "key" -> b.keys <- b.keys @ [ parse_attr_decl lineno (body ()) ]
            | Some b, "attr" ->
                b.attrs <- b.attrs @ [ parse_attr_decl lineno (body ()) ]
            | Some b, "tuple" -> b.rows <- b.rows @ [ (lineno, body ()) ]
            | Some _, other -> fail lineno "unknown directive %s" other)
        | [] -> ())
    lines;
  flush ();
  List.rev_map
    (fun b ->
      let schema =
        try Schema.make ~name:b.rname ~key:b.keys ~nonkey:b.attrs
        with Schema.Schema_error m -> fail 0 "relation %s: %s" b.rname m
      in
      List.fold_left
        (fun r (lineno, body) ->
          let tuple = parse_tuple lineno schema body in
          try Relation.add r tuple
          with
          | Relation.Duplicate_key _ -> fail lineno "duplicate key"
          | Relation.Relation_error m -> fail lineno "%s" m)
        (Relation.empty schema) b.rows)
    !blocks

let relation_of_string input =
  match relations_of_string input with
  | [ r ] -> r
  | l -> fail 0 "expected exactly one relation, found %d" (List.length l)

(* Serialization prints masses losslessly but readably: the shortest of
   %.15g/%.16g/%.17g that parses back to the same double (%.17g is always
   exact; most masses round-trip at 15 digits already). *)
let exact_float x =
  let try_digits d =
    let s = Printf.sprintf "%.*g" d x in
    match float_of_string_opt s with
    | Some y when Float.equal y x -> Some s
    | Some _ | None -> None
  in
  match (try_digits 15, try_digits 16) with
  | Some s, _ -> s
  | None, Some s -> s
  | None, None -> Printf.sprintf "%.17g" x

let exact_evidence e =
  let omega = Dst.Domain.values (Dst.Mass.F.frame e) in
  let focal (set, x) =
    let member =
      if Dst.Vset.equal set omega then "~"
      else Format.asprintf "%a" Dst.Vset.pp_compact set
    in
    member ^ "^" ^ exact_float x
  in
  "[" ^ String.concat "; " (List.map focal (Dst.Mass.F.focals e)) ^ "]"

let exact_support s =
  Printf.sprintf "(%s, %s)"
    (exact_float (Dst.Support.sn s))
    (exact_float (Dst.Support.sp s))

let to_string r =
  let schema = Relation.schema r in
  let buf = Buffer.create 256 in
  let add fmt = Format.kasprintf (Buffer.add_string buf) fmt in
  add "relation %s\n" (Schema.name schema);
  let attr_decl a =
    match Attr.kind a with
    | Attr.Definite k -> Format.asprintf "%s : %s" (Attr.name a) k
    | Attr.Evidential d ->
        Format.asprintf "%s : evidence {%s}" (Attr.name a)
          (String.concat ", "
             (List.map Dst.Value.to_string
                (Dst.Vset.to_list (Dst.Domain.values d))))
  in
  List.iter (fun a -> add "key %s\n" (attr_decl a)) (Schema.key schema);
  List.iter (fun a -> add "attr %s\n" (attr_decl a)) (Schema.nonkey schema);
  Relation.iter
    (fun t ->
      let fields =
        List.map Dst.Value.to_string (Etuple.key t)
        @ List.map
            (function
              | Etuple.Definite v -> Dst.Value.to_string v
              | Etuple.Evidence e -> exact_evidence e)
            (Etuple.cells t)
        @ [ exact_support (Etuple.tm t) ]
      in
      add "tuple %s\n" (String.concat " | " fields))
    r;
  Buffer.contents buf

(* Both failure channels carry the file path: open_in's Sys_error
   already does, parse errors get it prefixed — a federation of dozens
   of .erd files is undebuggable from "line 3: bad membership pair"
   alone. *)
let load path =
  let ic =
    try open_in path
    with Sys_error m ->
      raise (Sys_error (if string_mentions m path then m else path ^ ": " ^ m))
  in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  try relations_of_string content
  with Io_error { line; message } ->
    raise (Io_error { line; message = path ^ ": " ^ message })

let save path rels =
  let oc = open_out path in
  List.iter (fun r -> output_string oc (to_string r ^ "\n")) rels;
  close_out oc

(* RFC 4180: fields separated by commas, quoted fields may contain
   commas/newlines, doubled quotes escape a quote. Returns records of
   fields; empty trailing line ignored. *)
let csv_records input =
  let records = ref [] and fields = ref [] and buf = Buffer.create 32 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_record () =
    flush_field ();
    records := List.rev !fields :: !records;
    fields := []
  in
  let n = String.length input in
  let rec plain i =
    if i >= n then (if Buffer.length buf > 0 || !fields <> [] then flush_record ())
    else
      match input.[i] with
      | ',' ->
          flush_field ();
          plain (i + 1)
      | '\n' ->
          flush_record ();
          plain (i + 1)
      | '\r' -> plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
          Buffer.add_char buf c;
          plain (i + 1)
  and quoted i =
    if i >= n then fail 0 "unterminated quoted CSV field"
    else
      match input.[i] with
      | '"' when i + 1 < n && input.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
          Buffer.add_char buf c;
          quoted (i + 1)
  in
  plain 0;
  List.rev !records

let relation_of_csv schema input =
  match csv_records input with
  | [] -> fail 0 "empty CSV document"
  | header :: rows ->
      let expected_header =
        List.map Attr.name (Schema.attrs schema) @ [ "(sn,sp)" ]
      in
      if header <> expected_header then
        fail 1 "CSV header does not match the schema (expected %s)"
          (String.concat "," expected_header);
      List.fold_left
        (fun (r, lineno) fields ->
          let expected = Schema.arity schema + 1 in
          if List.length fields <> expected then
            fail lineno "expected %d fields, got %d" expected
              (List.length fields);
          List.iter
            (fun f ->
              if String.contains f '|' then
                fail lineno "CSV field contains '|', which the cell syntax reserves")
            fields;
          let tuple = parse_tuple lineno schema (String.concat "|" fields) in
          match Relation.add r tuple with
          | r -> (r, lineno + 1)
          | exception Relation.Duplicate_key _ -> fail lineno "duplicate key"
          | exception Relation.Relation_error m -> fail lineno "%s" m)
        (Relation.empty schema, 2)
        rows
      |> fst
