exception Io_error of { line : int; col : int; message : string }

let fail ?(col = 0) line fmt =
  Format.kasprintf (fun message -> raise (Io_error { line; col; message })) fmt

(* Offset of the first character of [s] that is not a blank, or
   [String.length s] when all are. *)
let lead s =
  let n = String.length s in
  let rec go i =
    if i < n && (s.[i] = ' ' || s.[i] = '\t') then go (i + 1) else i
  in
  go 0

let string_mentions haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n > 0 && go 0

(* "name : string" or "name : evidence {a, b, c}". [col] is the 1-based
   column of the declaration body in its source line. *)
let parse_attr_decl ?(col = 0) line body =
  match String.index_opt body ':' with
  | None -> fail ~col line "expected `name : kind` in attribute declaration"
  | Some i ->
      let name = String.trim (String.sub body 0 i) in
      let kind_raw = String.sub body (i + 1) (String.length body - i - 1) in
      let kcol = if col = 0 then 0 else col + i + 1 + lead kind_raw in
      let kind = String.trim kind_raw in
      if name = "" then fail ~col line "empty attribute name"
      else if String.length kind >= 8 && String.sub kind 0 8 = "evidence" then
        let spec = String.trim (String.sub kind 8 (String.length kind - 8)) in
        let inner =
          if String.length spec >= 2 && spec.[0] = '{'
             && spec.[String.length spec - 1] = '}'
          then String.sub spec 1 (String.length spec - 2)
          else fail ~col:kcol line "expected evidence {v1, v2, …}"
        in
        let values =
          String.split_on_char ',' inner
          |> List.map String.trim
          |> List.filter (fun v -> v <> "")
          |> List.map Dst.Value.of_literal
        in
        if values = [] then fail ~col:kcol line "empty evidence domain"
        else Attr.evidential name (Dst.Domain.of_values name values)
      else
        try Attr.definite name kind
        with Invalid_argument _ ->
          fail ~col:kcol line "unknown attribute kind %s" kind

let parse_definite ?(col = 0) line kind raw =
  let raw = String.trim raw in
  match kind with
  | "string" ->
      if String.length raw >= 2 && raw.[0] = '"' then
        (try Dst.Value.of_literal raw
         with Invalid_argument m -> fail ~col line "%s" m)
      else Dst.Value.string raw
  | "int" -> (
      match int_of_string_opt raw with
      | Some n -> Dst.Value.int n
      | None -> fail ~col line "expected an int, got %s" raw)
  | "float" -> (
      match float_of_string_opt raw with
      | Some f -> Dst.Value.float f
      | None -> fail ~col line "expected a float, got %s" raw)
  | "bool" -> (
      match bool_of_string_opt raw with
      | Some b -> Dst.Value.bool b
      | None -> fail ~col line "expected a bool, got %s" raw)
  | _ -> fail ~col line "unknown value kind %s" kind

let parse_cell ?(col = 0) line attr raw =
  match Attr.kind attr with
  | Attr.Definite kind -> Etuple.Definite (parse_definite ~col line kind raw)
  | Attr.Evidential domain -> (
      try Etuple.Evidence (Dst.Evidence.of_string domain (String.trim raw))
      with
      | Dst.Evidence.Parse_error (_, m) ->
          fail ~col line "bad evidence for %s: %s" (Attr.name attr) m
      | Dst.Mass.F.Invalid_mass m ->
          fail ~col line "bad evidence for %s: %s" (Attr.name attr) m)

(* [base_col] is the 1-based column of [body]'s first character, so each
   field's own column can be derived from the positions of the '|'
   separators. *)
let parse_tuple ?(base_col = 0) line schema body =
  let fields =
    let n = String.length body in
    let pieces = ref [] and start = ref 0 in
    String.iteri
      (fun i c ->
        if c = '|' then begin
          pieces := (!start, String.sub body !start (i - !start)) :: !pieces;
          start := i + 1
        end)
      body;
    pieces := (!start, String.sub body !start (n - !start)) :: !pieces;
    List.rev_map
      (fun (off, f) ->
        let col = if base_col = 0 then 0 else base_col + off + lead f in
        (col, String.trim f))
      !pieces
  in
  let expected = Schema.arity schema + 1 in
  if List.length fields <> expected then
    fail ~col:base_col line "expected %d |-separated fields, got %d" expected
      (List.length fields);
  let key_attrs = Schema.key schema in
  let rec split n l =
    if n = 0 then ([], l)
    else
      match l with
      | x :: rest ->
          let a, b = split (n - 1) rest in
          (x :: a, b)
      | [] -> assert false
  in
  let key_raw, rest = split (List.length key_attrs) fields in
  let cell_raw, tm_raw = split (List.length (Schema.nonkey schema)) rest in
  let key =
    List.map2
      (fun attr (col, raw) ->
        match Attr.kind attr with
        | Attr.Definite kind -> parse_definite ~col line kind raw
        | Attr.Evidential _ -> fail ~col line "evidential key attribute")
      key_attrs key_raw
  in
  let cells =
    List.map2
      (fun attr (col, raw) -> parse_cell ~col line attr raw)
      (Schema.nonkey schema) cell_raw
  in
  let tm =
    match tm_raw with
    | [ (col, raw) ] -> (
        try Dst.Support.of_string raw
        with Invalid_argument _ | Dst.Support.Invalid_support _ ->
          fail ~col line "bad membership pair %s" raw)
    | _ -> assert false
  in
  try Etuple.make schema ~key ~cells ~tm
  with Etuple.Tuple_error m -> fail ~col:base_col line "%s" m

type block = {
  rname : string;
  rline : int;
  mutable keys : Attr.t list;
  mutable attrs : Attr.t list;
  mutable rows : (int * int * string) list;  (* line, column, body *)
}

let relations_of_string input =
  let lines = String.split_on_char '\n' input in
  Obs.Metrics.incr ~by:(List.length lines) "io.parse.lines";
  let blocks = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | Some b ->
        blocks := b :: !blocks;
        current := None
    | None -> ()
  in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let indent = lead raw in
      let line = String.trim raw in
      if line = "" || line.[0] = '#' then ()
      else begin
        let word, word_len =
          match String.index_opt line ' ' with
          | None -> (line, String.length line)
          | Some k -> (String.sub line 0 k, k)
        in
        let rest = String.sub line word_len (String.length line - word_len) in
        let body = String.trim rest in
        (* 1-based column of the body's first character in the raw line. *)
        let body_col = indent + word_len + lead rest + 1 in
        match word with
        | "relation" ->
            flush ();
            if body = "" then
              fail ~col:(indent + 1) lineno "relation needs a name"
            else
              current :=
                Some
                  { rname = body;
                    rline = lineno;
                    keys = [];
                    attrs = [];
                    rows = [] }
        | _ -> (
            match (!current, word) with
            | None, _ ->
                fail ~col:(indent + 1) lineno "expected `relation <name>` first"
            | Some b, "key" ->
                b.keys <- b.keys @ [ parse_attr_decl ~col:body_col lineno body ]
            | Some b, "attr" ->
                b.attrs <- b.attrs @ [ parse_attr_decl ~col:body_col lineno body ]
            | Some b, "tuple" -> b.rows <- b.rows @ [ (lineno, body_col, body) ]
            | Some _, other ->
                fail ~col:(indent + 1) lineno "unknown directive %s" other)
      end)
    lines;
  flush ();
  List.rev_map
    (fun b ->
      let schema =
        try Schema.make ~name:b.rname ~key:b.keys ~nonkey:b.attrs
        with Schema.Schema_error m ->
          fail b.rline "relation %s: %s" b.rname m
      in
      List.fold_left
        (fun r (lineno, col, body) ->
          let tuple = parse_tuple ~base_col:col lineno schema body in
          try Relation.add r tuple
          with
          | Relation.Duplicate_key _ -> fail ~col lineno "duplicate key"
          | Relation.Relation_error m -> fail ~col lineno "%s" m)
        (Relation.empty schema) b.rows)
    !blocks

let relation_of_string input =
  match relations_of_string input with
  | [ r ] -> r
  | l -> fail 0 "expected exactly one relation, found %d" (List.length l)

(* Serialization prints masses losslessly but readably: the shortest of
   %.15g/%.16g/%.17g that parses back to the same double (%.17g is always
   exact; most masses round-trip at 15 digits already). *)
let exact_float x =
  let try_digits d =
    let s = Printf.sprintf "%.*g" d x in
    match float_of_string_opt s with
    | Some y when Float.equal y x -> Some s
    | Some _ | None -> None
  in
  match (try_digits 15, try_digits 16) with
  | Some s, _ -> s
  | None, Some s -> s
  | None, None -> Printf.sprintf "%.17g" x

let exact_evidence e =
  let omega = Dst.Domain.values (Dst.Mass.F.frame e) in
  let focal (set, x) =
    let member =
      if Dst.Vset.equal set omega then "~"
      else Format.asprintf "%a" Dst.Vset.pp_compact set
    in
    member ^ "^" ^ exact_float x
  in
  "[" ^ String.concat "; " (List.map focal (Dst.Mass.F.focals e)) ^ "]"

let exact_support s =
  Printf.sprintf "(%s, %s)"
    (exact_float (Dst.Support.sn s))
    (exact_float (Dst.Support.sp s))

let attr_decl a =
  match Attr.kind a with
  | Attr.Definite k -> Format.asprintf "%s : %s" (Attr.name a) k
  | Attr.Evidential d ->
      Format.asprintf "%s : evidence {%s}" (Attr.name a)
        (String.concat ", "
           (List.map Dst.Value.to_string
              (Dst.Vset.to_list (Dst.Domain.values d))))

let schema_to_string schema =
  let buf = Buffer.create 128 in
  let add fmt = Format.kasprintf (Buffer.add_string buf) fmt in
  add "relation %s\n" (Schema.name schema);
  List.iter (fun a -> add "key %s\n" (attr_decl a)) (Schema.key schema);
  List.iter (fun a -> add "attr %s\n" (attr_decl a)) (Schema.nonkey schema);
  Buffer.contents buf

let schema_of_string s =
  match relations_of_string s with
  | [ r ] -> Relation.schema r
  | l -> fail 0 "expected exactly one relation header, found %d" (List.length l)

let tuple_to_string t =
  let fields =
    List.map Dst.Value.to_string (Etuple.key t)
    @ List.map
        (function
          | Etuple.Definite v -> Dst.Value.to_string v
          | Etuple.Evidence e -> exact_evidence e)
        (Etuple.cells t)
    @ [ exact_support (Etuple.tm t) ]
  in
  String.concat " | " fields

let tuple_of_string schema s = parse_tuple 0 schema s

let to_string r =
  let schema = Relation.schema r in
  let buf = Buffer.create 256 in
  let add fmt = Format.kasprintf (Buffer.add_string buf) fmt in
  Buffer.add_string buf (schema_to_string schema);
  Relation.iter (fun t -> add "tuple %s\n" (tuple_to_string t)) r;
  Buffer.contents buf

(* Both failure channels carry the file path: open_in's Sys_error
   already does, parse errors get it prefixed — a federation of dozens
   of .erd files is undebuggable from "line 3: bad membership pair"
   alone. *)
let load path =
  let body () =
    let ic =
      try open_in path
      with Sys_error m ->
        raise (Sys_error (if string_mentions m path then m else path ^ ": " ^ m))
    in
    let n = in_channel_length ic in
    let content = really_input_string ic n in
    close_in ic;
    let rels =
      try relations_of_string content
      with Io_error { line; col; message } ->
        raise (Io_error { line; col; message = path ^ ": " ^ message })
    in
    Obs.Metrics.incr "io.load.files";
    Obs.Metrics.incr ~by:(List.length rels) "io.load.relations";
    rels
  in
  if Obs.Trace.on () then
    Obs.Trace.with_span ~cat:"io" ~args:[ ("detail", path) ] "io.load" body
  else body ()

let save path rels =
  let oc = open_out path in
  List.iter (fun r -> output_string oc (to_string r ^ "\n")) rels;
  close_out oc

(* RFC 4180: fields separated by commas, quoted fields may contain
   commas/newlines, doubled quotes escape a quote. Returns records of
   fields; empty trailing line ignored. *)
let csv_records input =
  let records = ref [] and fields = ref [] and buf = Buffer.create 32 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_record () =
    flush_field ();
    records := List.rev !fields :: !records;
    fields := []
  in
  let n = String.length input in
  let rec plain i =
    if i >= n then (if Buffer.length buf > 0 || !fields <> [] then flush_record ())
    else
      match input.[i] with
      | ',' ->
          flush_field ();
          plain (i + 1)
      | '\n' ->
          flush_record ();
          plain (i + 1)
      | '\r' -> plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
          Buffer.add_char buf c;
          plain (i + 1)
  and quoted i =
    if i >= n then fail 0 "unterminated quoted CSV field"
    else
      match input.[i] with
      | '"' when i + 1 < n && input.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
          Buffer.add_char buf c;
          quoted (i + 1)
  in
  plain 0;
  List.rev !records

let relation_of_csv schema input =
  match csv_records input with
  | [] -> fail 0 "empty CSV document"
  | header :: rows ->
      let expected_header =
        List.map Attr.name (Schema.attrs schema) @ [ "(sn,sp)" ]
      in
      if header <> expected_header then
        fail 1 "CSV header does not match the schema (expected %s)"
          (String.concat "," expected_header);
      List.fold_left
        (fun (r, lineno) fields ->
          let expected = Schema.arity schema + 1 in
          if List.length fields <> expected then
            fail lineno "expected %d fields, got %d" expected
              (List.length fields);
          List.iter
            (fun f ->
              if String.contains f '|' then
                fail lineno "CSV field contains '|', which the cell syntax reserves")
            fields;
          let tuple = parse_tuple lineno schema (String.concat "|" fields) in
          match Relation.add r tuple with
          | r -> (r, lineno + 1)
          | exception Relation.Duplicate_key _ -> fail lineno "duplicate key"
          | exception Relation.Relation_error m -> fail lineno "%s" m)
        (Relation.empty schema, 2)
        rows
      |> fst
