module P = Obs.Provenance

let key_string t =
  String.concat "," (List.map Dst.Value.to_string (Etuple.key t))

let tm_digest t =
  let tm = Etuple.tm t in
  Printf.sprintf "tm|%s|%h|%h" (key_string t) (Dst.Support.sn tm)
    (Dst.Support.sp tm)

let tm_label t =
  Printf.sprintf "tm(%s) = %s" (key_string t)
    (Dst.Support.to_string (Etuple.tm t))

let tm_node t = P.find_or_leaf (tm_digest t) ~label:(tm_label t)

let evidence_node e =
  P.find_or_leaf (Dst.Mass.F.digest e) ~label:(Dst.Mass.F.to_string e)

let register_relation ~name r =
  let nonkey = Schema.nonkey (Relation.schema r) in
  Relation.fold
    (fun t () ->
      let key = key_string t in
      List.iter2
        (fun attr cell ->
          match cell with
          | Etuple.Evidence e ->
              let d = Dst.Mass.F.digest e in
              if P.find d = None then
                P.register d
                  (P.add P.Source
                     (Printf.sprintf "%s(%s).%s = %s" name key
                        (Attr.name attr) (Dst.Mass.F.to_string e)))
          | Etuple.Definite _ -> ())
        nonkey (Etuple.cells t);
      let d = tm_digest t in
      if P.find d = None then
        P.register d
          (P.add P.Source
             (Printf.sprintf "%s(%s).tm = %s" name key
                (Dst.Support.to_string (Etuple.tm t)))))
    r ()

let cell_nodes t =
  List.filter_map
    (function
      | Etuple.Evidence e -> Some (evidence_node e)
      | Etuple.Definite _ -> None)
    (Etuple.cells t)

let record_merge x y merged =
  let ev_inputs = cell_nodes merged in
  let tm_id =
    match P.find (tm_digest merged) with
    | Some id -> id (* bit-identical membership already derived *)
    | None ->
        let km = Dst.Support.conflict (Etuple.tm x) (Etuple.tm y) in
        let ix = tm_node x in
        let iy = tm_node y in
        let id =
          P.add P.Combine (tm_label merged) ~kappa:km ~norm:(1.0 -. km)
            ~args:[ ("rule", "support") ]
            ~inputs:[ ix; iy ]
        in
        P.register (tm_digest merged) id;
        id
  in
  ignore
    (P.add P.Merge
       ("merge " ^ key_string merged)
       ~inputs:(ev_inputs @ [ tm_id ]))

let record_support ~label ~support ~inputs out =
  if P.find (tm_digest out) = None then begin
    let input_ids =
      List.concat_map (fun t -> tm_node t :: cell_nodes t) inputs
    in
    let id =
      P.add P.Support
        (Printf.sprintf "%s %s" label (tm_label out))
        ~args:
          [ ("sn", Printf.sprintf "%.6g" (Dst.Support.sn support));
            ("sp", Printf.sprintf "%.6g" (Dst.Support.sp support)) ]
        ~inputs:input_ids
    in
    P.register (tm_digest out) id
  end

let record_discount ~alpha original discounted =
  Relation.fold
    (fun t () ->
      match Relation.find_opt original (Etuple.key t) with
      | None -> ()
      | Some orig ->
          if
            (not (Dst.Support.equal (Etuple.tm orig) (Etuple.tm t)))
            && P.find (tm_digest t) = None
          then begin
            let src = tm_node orig in
            let id = P.add P.Discount (tm_label t) ~alpha ~inputs:[ src ] in
            P.register (tm_digest t) id
          end)
    discounted ()
