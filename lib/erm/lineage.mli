(** Provenance recording for extended-relation operators.

    Thin glue between the tuple layer and [Obs.Provenance]: computes
    value digests for membership supports and evidence cells, and
    records the lineage of the three derivation shapes the algebra
    performs — source registration, key-matched merges (∪̂) and
    selection/join support evaluations.

    Everything here assumes the caller already checked
    [Obs.Provenance.on ()]; none of these functions are compiled into
    a hot path unguarded. Identity is value-level: bit-identical
    values (same digest) share one node, first derivation wins. *)

val key_string : Etuple.t -> string
(** Comma-joined key values — the string [.why] accepts. *)

val tm_digest : Etuple.t -> string
(** Digest of a tuple's membership support: key plus hex-float
    [(sn, sp)]. *)

val register_relation : name:string -> Relation.t -> unit
(** Bind every evidence cell and membership support of a stored
    relation to a [Source] leaf (skipping digests already bound), so
    later combination hooks resolve their operands to source tuples
    instead of anonymous leaves. *)

val record_merge : Etuple.t -> Etuple.t -> Etuple.t -> unit
(** [record_merge x y merged]: one membership combination node
    (κ from [Dst.Support.conflict], rule [support]) plus a [Merge]
    node grouping it with the merged tuple's per-attribute evidence
    nodes (which the [Dst.Mass] hook already derived). *)

val record_support :
  label:string ->
  support:Dst.Support.t ->
  inputs:Etuple.t list ->
  Etuple.t ->
  unit
(** [record_support ~label ~support ~inputs out]: a [Support] node for
    the F_TM step that produced [out]'s membership from the input
    tuples and the predicate support [(sn, sp)]. The inputs are each
    tuple's membership node plus all its evidence cells — deliberately
    {e not} the predicate text, so a physical plan's rewritten
    predicate (e.g. an index residual) records the same lineage as
    naive evaluation. *)

val record_discount : alpha:float -> Relation.t -> Relation.t -> unit
(** [record_discount ~alpha original discounted]: one [Discount] node
    per tuple whose membership support changed (evidence cells are
    covered by the [Dst.Mass.discount] hook). *)
