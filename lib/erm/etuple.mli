(** Extended tuples.

    A tuple of an extended relation has definite key values, a cell per
    non-key attribute — either a definite value or an evidence set — and
    a tuple-membership support pair [(sn, sp)] (§2.3). Cells are stored
    positionally against the schema's attribute order; the schema is
    passed to the operations that need it rather than duplicated in every
    tuple. *)

type cell =
  | Definite of Dst.Value.t
      (** An exact value (keys, and descriptive columns such as the
          paper's [street] or [phone]). *)
  | Evidence of Dst.Evidence.t
      (** An evidence set (the paper's [†]-prefixed columns). *)

type t

exception Tuple_error of string

val make :
  Schema.t -> key:Dst.Value.t list -> cells:cell list -> tm:Dst.Support.t -> t
(** Validates arity, key value kinds, definite cell kinds, and evidence
    frames against the schema. @raise Tuple_error on any mismatch. *)

val of_assoc :
  Schema.t ->
  key:Dst.Value.t list ->
  cells:(string * cell) list ->
  tm:Dst.Support.t ->
  t
(** Like {!make} with cells given by attribute name, in any order.
    @raise Tuple_error if a non-key attribute is missing or unknown. *)

val key : t -> Dst.Value.t list
val cells : t -> cell list
val tm : t -> Dst.Support.t
val with_tm : Dst.Support.t -> t -> t

val cell : Schema.t -> t -> string -> cell
(** Cell of a non-key attribute, or the key value as a [Definite] cell
    for a key attribute. @raise Not_found on unknown names. *)

val evidence : Schema.t -> t -> string -> Dst.Evidence.t
(** The evidence set in the named evidential attribute.
    @raise Tuple_error if the attribute is definite.
    @raise Not_found on unknown names. *)

val definite_value : Schema.t -> t -> string -> Dst.Value.t
(** The exact value in the named definite attribute (key or non-key).
    @raise Tuple_error if the attribute is evidential. *)

val cell_equal : cell -> cell -> bool

val equal : t -> t -> bool
(** Key, cells and membership all equal (evidence compared with the float
    tolerance). *)

val key_equal : t -> t -> bool

val combine : Schema.t -> t -> t -> t
(** Attribute-wise Dempster combination of two key-matched tuples — the
    merge step of extended union (§3.2). Evidential cells are combined
    with Dempster's rule; definite cells must agree (the paper assumes
    consistent sources); membership pairs are combined on the boolean
    frame ({!Dst.Support.combine}).
    @raise Tuple_error if the keys differ or definite cells disagree.
    @raise Dst.Mass.F.Total_conflict if any attribute's evidence is in
    total conflict (κ = 1). *)

val combine_with :
  combine_evidence:(Dst.Evidence.t -> Dst.Evidence.t -> Dst.Evidence.t) ->
  Schema.t ->
  t ->
  t ->
  t
(** {!combine} with the per-cell evidence combination supplied by the
    caller — the hook the memoized union uses to route cell merges
    through a {!Dst.Combine_cache.t}. The membership frame is always
    combined directly (boolean-frame Dempster is too cheap to cache).
    Raises as the supplied function does. *)

val project : Schema.t -> t -> string list -> t
(** Cells for [Schema.project]'s attribute list, membership retained. *)

val concat : t -> t -> t
(** Key and cell concatenation with [F_TM] membership product — the tuple
    part of extended cartesian product (§3.4). *)

val pp_cell : Format.formatter -> cell -> unit
val pp : Schema.t -> Format.formatter -> t -> unit
