exception Incompatible_schemas of string

type conflict = {
  conflict_key : Dst.Value.t list;
  conflict_attr : string option;
  conflict_detail : string;
}

(* Results of extended operators store only sn > 0 tuples (closure,
   §3.6); complement tuples flowing through are silently dropped, which
   is what makes the boundedness property hold. *)
let add_if_positive acc t =
  if Dst.Support.positive (Etuple.tm t) then Relation.add acc t else acc

let select ?(threshold = Threshold.always) pred r =
  let schema = Relation.schema r in
  let step tuple =
    let support = Predicate.eval schema tuple pred in
    let tm = Dst.Support.f_tm (Etuple.tm tuple) support in
    if Threshold.satisfies threshold tm then begin
      let out = Etuple.with_tm tm tuple in
      (* A crisp-true support leaves the membership bit-identical: no
         new value is derived, so nothing is recorded — which is also
         what makes lineage plan-invariant when a physical plan inserts
         no-op selections (e.g. scan wrappers) naive evaluation lacks. *)
      if
        Obs.Provenance.on ()
        && not
             (Float.equal (Dst.Support.sn tm)
                (Dst.Support.sn (Etuple.tm tuple))
             && Float.equal (Dst.Support.sp tm)
                  (Dst.Support.sp (Etuple.tm tuple)))
      then
        Lineage.record_support ~label:"select" ~support ~inputs:[ tuple ] out;
      Some out
    end
    else None
  in
  (* map_tuples drops any surviving tuple with sn = 0 (closure). *)
  Relation.map_tuples step schema r

let project names r =
  let schema = Schema.project (Relation.schema r) names in
  Relation.map_tuples
    (fun t -> Some (Etuple.project (Relation.schema r) t names))
    schema r

let check_union_compatible a b =
  if not (Schema.union_compatible (Relation.schema a) (Relation.schema b))
  then
    raise
      (Incompatible_schemas
         (Format.asprintf "%s and %s are not union-compatible"
            (Schema.name (Relation.schema a))
            (Schema.name (Relation.schema b))))

(* Shared union skeleton: [merge] decides what happens to key-matched
   pairs (raise, or record a conflict and drop). *)
let union_with merge a b =
  check_union_compatible a b;
  let only_a =
    Relation.fold
      (fun t acc ->
        if Relation.mem b (Etuple.key t) then acc else t :: acc)
      a []
  in
  let rest =
    Relation.fold
      (fun t acc ->
        match Relation.find_opt a (Etuple.key t) with
        | None -> t :: acc
        | Some ta -> (
            match merge ta t with Some m -> m :: acc | None -> acc))
      b []
  in
  List.fold_left add_if_positive (Relation.empty (Relation.schema a))
    (only_a @ rest)

let merged_with_lineage x y m =
  if Obs.Provenance.on () then Lineage.record_merge x y m;
  Some m

(* A quarantined cell (κ-escalation with a Quarantine fallback) drops
   the matched pair, exactly as a total conflict does on the reporting
   paths — the non-reporting operators stay deterministic and agree
   with union_report's kept set, which the conformance harness
   compares bit for bit across surfaces. *)
let union ?policy a b =
  let schema = Relation.schema a in
  union_with
    (fun x y ->
      match
        Etuple.combine_with
          ~combine_evidence:(Dst.Mass.F.combine_policy_exn ?policy)
          schema x y
      with
      | m -> merged_with_lineage x y m
      | exception Dst.Mass.F.Quarantined_cell _ -> None)
    a b

let union_cached ~cache ?policy a b =
  let schema = Relation.schema a in
  union_with
    (fun x y ->
      match
        Etuple.combine_with
          ~combine_evidence:(Dst.Combine_cache.combine_policy_exn ?policy cache)
          schema x y
      with
      | m -> merged_with_lineage x y m
      | exception Dst.Mass.F.Quarantined_cell _ -> None)
    a b

(* Attribute-by-attribute merge so a conflict can name its column. The
   incremental store's delta fold shares this function so its per-key
   outcome (merged tuple, or conflict recorded and pair dropped) is
   bit-identical to union_report's. *)
let merge_report ?policy schema ~record x y =
  let policy =
    match policy with Some p -> p | None -> Dst.Rule.current ()
  in
  let key = Etuple.key x in
  let exception Bail in
  try
    let cells =
      List.map2
        (fun attr (cx, cy) ->
          match (cx, cy) with
          | Etuple.Definite v, Etuple.Definite w ->
              if Dst.Value.equal v w then Etuple.Definite v
              else begin
                record key
                  (Some (Attr.name attr))
                  (Format.asprintf "definite values disagree: %a vs %a"
                     Dst.Value.pp v Dst.Value.pp w);
                raise Bail
              end
          | Etuple.Evidence e, Etuple.Evidence f -> (
              match Dst.Mass.F.combine_policy ~policy e f with
              | Dst.Mass.F.Combined { result = m; _ } -> Etuple.Evidence m
              | Dst.Mass.F.Conflicted ->
                  record key
                    (Some (Attr.name attr))
                    "total conflict (kappa = 1) between evidence sets";
                  raise Bail
              | Dst.Mass.F.Quarantined { kappa } ->
                  record key
                    (Some (Attr.name attr))
                    (Format.asprintf
                       "quarantined: kappa = %g at or above rule threshold"
                       kappa);
                  raise Bail)
          | Etuple.Definite _, Etuple.Evidence _
          | Etuple.Evidence _, Etuple.Definite _ ->
              record key (Some (Attr.name attr)) "cell kinds disagree";
              raise Bail)
        (Schema.nonkey schema)
        (List.combine (Etuple.cells x) (Etuple.cells y))
    in
    let tm =
      try Dst.Support.combine (Etuple.tm x) (Etuple.tm y)
      with Dst.Mass.F.Total_conflict ->
        record key None "membership evidence in total conflict";
        raise Bail
    in
    let m = Etuple.make schema ~key ~cells ~tm in
    if Obs.Provenance.on () then Lineage.record_merge x y m;
    Some m
  with Bail -> None

let union_report ?policy a b =
  let schema = Relation.schema a in
  let conflicts = ref [] in
  let record key attr detail =
    conflicts :=
      { conflict_key = key; conflict_attr = attr; conflict_detail = detail }
      :: !conflicts
  in
  let result = union_with (merge_report ?policy schema ~record) a b in
  (result, List.rev !conflicts)

let is_quarantine c =
  String.length c.conflict_detail >= 12
  && String.sub c.conflict_detail 0 12 = "quarantined:"

let product a b =
  let schema = Schema.product (Relation.schema a) (Relation.schema b) in
  Relation.fold
    (fun ta acc ->
      Relation.fold
        (fun tb acc -> add_if_positive acc (Etuple.concat ta tb))
        b acc)
    a (Relation.empty schema)

let join ?(threshold = Threshold.always) pred a b =
  let sa = Relation.schema a and sb = Relation.schema b in
  let schema = Schema.product sa sb in
  Relation.fold
    (fun ta acc ->
      Relation.fold
        (fun tb acc ->
          let support = Predicate.eval_product sa sb ta tb pred in
          let paired = Etuple.concat ta tb in
          let tm = Dst.Support.f_tm (Etuple.tm paired) support in
          if Threshold.satisfies threshold tm && Dst.Support.positive tm then begin
            let out = Etuple.with_tm tm paired in
            if Obs.Provenance.on () then
              Lineage.record_support ~label:"join" ~support
                ~inputs:[ ta; tb ] out;
            Relation.add acc out
          end
          else acc)
        b acc)
    a (Relation.empty schema)

module Vmap = Map.Make (Dst.Value)

let check_definite schema attr_name =
  match Attr.kind (Schema.find schema attr_name) with
  | Attr.Definite _ -> ()
  | Attr.Evidential _ -> raise (Index.Not_definite attr_name)

let join_indexed ?(threshold = Threshold.always)
    ?(residual = Predicate.Const_true) ?tally ~left_attr ~right_attr a b =
  let sa = Relation.schema a and sb = Relation.schema b in
  check_definite sa left_attr;
  check_definite sb right_attr;
  let schema = Schema.product sa sb in
  (* Build side: bucket the right operand by its (definite) join value. *)
  let buckets =
    Relation.fold
      (fun tb acc ->
        let v = Etuple.definite_value sb tb right_attr in
        Vmap.update v
          (function None -> Some [ tb ] | Some ts -> Some (tb :: ts))
          acc)
      b Vmap.empty
  in
  (* Probe side: a definite-equality conjunct holds with crisp support
     (1,1) inside a bucket and (0,0) outside, so only bucketed pairs can
     survive closure and their membership reduces to
     F_TM(tm, F_SS(residual)) — exactly the nested loop's arithmetic on
     the surviving pairs, pair-for-pair. *)
  Relation.fold
    (fun ta acc ->
      let v = Etuple.definite_value sa ta left_attr in
      match Vmap.find_opt v buckets with
      | None ->
          (match tally with
          | Some f -> f ~hit:false ~matched:0 ~kept:0
          | None -> ());
          acc
      | Some matches ->
          let kept = ref 0 in
          let acc =
            List.fold_left
              (fun acc tb ->
                let support = Predicate.eval_product sa sb ta tb residual in
                let paired = Etuple.concat ta tb in
                let tm = Dst.Support.f_tm (Etuple.tm paired) support in
                if Threshold.satisfies threshold tm && Dst.Support.positive tm
                then begin
                  incr kept;
                  let out = Etuple.with_tm tm paired in
                  (* The crisp equality conjunct contributes (1,1) on
                     every bucketed pair, so [support] here equals the
                     nested loop's full-predicate support pair-for-pair
                     — the recorded lineage is plan-invariant. *)
                  if Obs.Provenance.on () then
                    Lineage.record_support ~label:"join" ~support
                      ~inputs:[ ta; tb ] out;
                  Relation.add acc out
                end
                else acc)
              acc matches
          in
          (match tally with
          | Some f -> f ~hit:true ~matched:(List.length matches) ~kept:!kept
          | None -> ());
          acc)
    a (Relation.empty schema)

let rename_attrs f r =
  let schema = Schema.rename_attrs f (Relation.schema r) in
  Relation.map_tuples (fun t -> Some t) schema r

let intersect_keys a b =
  Relation.fold
    (fun t acc ->
      let key = Etuple.key t in
      if Relation.mem b key then key :: acc else acc)
    a []
  |> List.rev

let pp_conflict ppf c =
  Format.fprintf ppf "key (%a)%s: %s"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Dst.Value.pp)
    c.conflict_key
    (match c.conflict_attr with
    | Some a -> " attribute " ^ a
    | None -> " membership")
    c.conflict_detail

let difference a b =
  check_union_compatible a b;
  (* The positivity filter only matters for relations materialized with
     the _unchecked constructors: it extends Theorem-1 boundedness to
     difference (complement tuples in [a] never surface). *)
  Relation.filter
    (fun t ->
      Dst.Support.positive (Etuple.tm t)
      && not (Relation.mem b (Etuple.key t)))
    a

let intersection ?policy a b =
  check_union_compatible a b;
  let schema = Relation.schema a in
  Relation.fold
    (fun t acc ->
      match Relation.find_opt b (Etuple.key t) with
      | Some u -> (
          match
            Etuple.combine_with
              ~combine_evidence:(Dst.Mass.F.combine_policy_exn ?policy)
              schema t u
          with
          | m ->
              if Obs.Provenance.on () then Lineage.record_merge t u m;
              add_if_positive acc m
          | exception Dst.Mass.F.Quarantined_cell _ -> acc)
      | None -> acc)
    a (Relation.empty schema)
