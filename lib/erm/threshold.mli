(** Membership threshold conditions Q (§3.1.3).

    A constraint on the revised membership [(sn, sp)] of a result tuple.
    The extended operators additionally enforce [sn > 0] on every result
    regardless of the threshold, keeping results consistent with CWA_ER
    — so [Q = always] yields exactly the paper's default behaviour. *)

type field = Sn | Sp
type op = Gt | Ge | Lt | Le | Eq

type t =
  | Always  (** No extra constraint beyond the implicit [sn > 0]. *)
  | Cmp of field * op * float
  | Both of t * t  (** Conjunction. *)

val always : t

val sn_gt : float -> t
val sn_ge : float -> t
val sp_gt : float -> t
val sp_ge : float -> t

val certain_only : t
(** [sn = 1]: only tuples that definitely qualify (the paper's example of
    a stricter Q). *)

val ( &&& ) : t -> t -> t

val satisfies : t -> Dst.Support.t -> bool
(** Comparisons are tolerance-aware, so [sn_ge 1.0] accepts a support of
    [1.0] computed through float products. *)

val pp : Format.formatter -> t -> unit

val field_to_string : field -> string
(** ["sn"] or ["sp"] — the surface syntax used by the query language. *)

val op_to_string : op -> string
