(** The extended relational operations of §3.

    Every operator preserves the closure property of §3.6: result tuples
    always have [sn > 0] (tuples whose derived membership loses all
    necessary support are dropped, which is exactly the CWA_ER reading of
    "not in the relation"). Boundedness follows from the membership
    derivations being monotone in [sn] — both are exercised by property
    tests in [test/test_properties.ml]. *)

exception Incompatible_schemas of string

val select :
  ?threshold:Threshold.t -> Predicate.t -> Relation.t -> Relation.t
(** Extended selection [σ̂^Q_P] (§3.1). For each tuple: evaluates the
    selection support [F_SS(r, P)], derives the new membership
    [F_TM(r.(sn,sp), F_SS(r,P))] — the original attribute values are
    retained (the paper departs from DeMichiel here, footnote 4) — and
    keeps the tuple iff the threshold [Q] holds and [sn > 0]. *)

val project : string list -> Relation.t -> Relation.t
(** Extended projection [π̂_Ã] (§3.3). The attribute list must include the
    key; membership is always retained.
    @raise Schema.Schema_error on invalid attribute lists. *)

val union :
  ?policy:Dst.Rule.policy -> Relation.t -> Relation.t -> Relation.t
(** Extended union [R ∪̂_K̃ S] (§3.2): tuples whose key appears in only
    one operand are retained unchanged (the other source is treated as
    wholly ignorant about them); key-matched tuples are merged by the
    combination rule of [policy] (default {!Dst.Rule.current}, itself
    Dempster unless the session says otherwise) applied to every
    non-key evidence attribute. Membership pairs always combine by
    boolean-frame Dempster ({!Dst.Support.combine}) — the rule policy
    governs attribute evidence, not tuple membership. Commutative; and
    associative for every rule except averaging (see {!Dst.Rule}).
    A pair whose combination is {e quarantined} by the policy's
    κ-escalation is silently dropped — use {!union_report} to observe
    which pairs and why.
    @raise Incompatible_schemas unless the operands are union-compatible.
    @raise Dst.Mass.F.Total_conflict when matched evidence is completely
    contradictory (κ = 1) under a rule that is undefined there — see
    {!union_report} for the non-raising variant used by the integration
    pipeline.
    @raise Etuple.Tuple_error when matched definite attributes disagree
    (the paper's consistent-sources assumption). *)

val union_cached :
  cache:Dst.Combine_cache.t ->
  ?policy:Dst.Rule.policy ->
  Relation.t ->
  Relation.t ->
  Relation.t
(** {!union} with every per-cell combination routed through the given
    memo-cache. Bit-identical to {!union} under the same policy (the
    cache replays outcomes verbatim, and its keys include the policy);
    repeated merges of the same evidence pairs — the dominant cost of
    the Figure-1 pipeline — become map lookups. Raises exactly as
    {!union} does. *)

type conflict = {
  conflict_key : Dst.Value.t list;
  conflict_attr : string option;
      (** The attribute in total conflict; [None] when the membership
          evidence itself conflicts. *)
  conflict_detail : string;
}

val union_report :
  ?policy:Dst.Rule.policy ->
  Relation.t ->
  Relation.t ->
  Relation.t * conflict list
(** {!union} that, instead of raising on total conflict or definite
    disagreement, omits the offending pair from the result and reports it
    — the paper's "inform the data administrators" action (§2.2).
    κ-escalation quarantines are reported the same way, with a
    [conflict_detail] starting with ["quarantined:"] (test with
    {!is_quarantine}). *)

val is_quarantine : conflict -> bool
(** Did this conflict come from the policy's κ-escalation quarantining
    the cell (as opposed to total conflict or definite disagreement)? *)

val merge_report :
  ?policy:Dst.Rule.policy ->
  Schema.t ->
  record:(Dst.Value.t list -> string option -> string -> unit) ->
  Etuple.t ->
  Etuple.t ->
  Etuple.t option
(** The per-pair merge {!union_report} applies to key-matched tuples:
    combine every non-key cell under [policy] (default
    {!Dst.Rule.current}) and the membership frame by boolean Dempster;
    on total conflict, quarantine, or definite disagreement call
    [record key attr detail] and return [None] (the pair is dropped).
    Records lineage exactly as {!union_report} does. Exposed so the
    incremental store's O(changed entities) delta fold is bit-identical
    to a full {!union_report} rebuild. *)

val product : Relation.t -> Relation.t -> Relation.t
(** Extended cartesian product [R ×̂ S] (§3.4): tuple concatenation with
    membership combined by [F_TM].
    @raise Schema.Schema_error on attribute-name collisions. *)

val join :
  ?threshold:Threshold.t ->
  Predicate.t ->
  Relation.t ->
  Relation.t ->
  Relation.t
(** Extended join [R ⋈̂^Q_P S ≡ σ̂^Q_P (R ×̂ S)] (§3.5). Implemented
    without materializing the full product: the predicate and threshold
    are evaluated per tuple pair. *)

val join_indexed :
  ?threshold:Threshold.t ->
  ?residual:Predicate.t ->
  ?tally:(hit:bool -> matched:int -> kept:int -> unit) ->
  left_attr:string ->
  right_attr:string ->
  Relation.t ->
  Relation.t ->
  Relation.t
(** Hash equi-join on a pair of {e definite} attributes:
    [join_indexed ~left_attr:l ~right_attr:r ~residual:P a b] equals
    [join (Theta (Eq, Field l, Field r) ∧ P) a b] tuple-for-tuple,
    including the derived [(sn, sp)] pairs (property-tested in
    [test/test_plan_equiv.ml]). The right operand is bucketed by its
    join value — O(|A|·log|B| + matches) instead of O(|A|·|B|) — which
    is sound because a definite equality contributes crisp support:
    (1,1) inside a bucket, (0,0) (closure-dropped) outside. [residual]
    carries any remaining θ/IS conjuncts and is evaluated per surviving
    pair. [tally] is invoked once per probe (per left tuple) with
    whether the bucket existed, its size, and how many joined tuples
    passed the threshold — the planner's statistics hook.
    @raise Index.Not_definite if either join attribute is evidential.
    @raise Schema.Schema_error on attribute-name collisions. *)

val rename_attrs : (string -> string) -> Relation.t -> Relation.t
(** Attribute renaming (utility; the paper leaves product collisions to
    the reader). *)

val intersect_keys : Relation.t -> Relation.t -> Dst.Value.t list list
(** Keys present in both operands — the tuple-matching information of
    Figure 1 under the common-key assumption. *)

val pp_conflict : Format.formatter -> conflict -> unit

(** {1 Extensions beyond the paper}

    The paper defines σ̂, π̂, ∪̂, ×̂ and ⋈̂. Difference and intersection
    complete the set algebra under the same key-matching discipline and
    preserve closure/boundedness (property-tested alongside Theorem 1). *)

val difference : Relation.t -> Relation.t -> Relation.t
(** [difference r s]: tuples of [r] whose key does not appear in [s],
    unchanged. Membership evidence from [s] is not subtracted — under
    CWA_ER [s] carries no negative evidence about its absent keys, so
    removal by key is the only sound reading. Like every other operator
    it emits only [sn > 0] tuples, so closure and boundedness extend to
    it even over [_unchecked]-materialized inputs.
    @raise Incompatible_schemas unless union-compatible. *)

val intersection :
  ?policy:Dst.Rule.policy -> Relation.t -> Relation.t -> Relation.t
(** [intersection r s]: exactly the key-matched pairs of extended union,
    merged under [policy] (default {!Dst.Rule.current}); tuples present
    in only one source are dropped, as are quarantined pairs. The
    "both sources corroborate" reading of integration.
    @raise Incompatible_schemas / @raise Dst.Mass.F.Total_conflict /
    @raise Etuple.Tuple_error as for {!union}. *)
