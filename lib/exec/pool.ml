(* Results are published through per-slot writes (each slot has exactly
   one writer) and read only after Domain.join of every worker, which
   establishes the necessary happens-before edges. *)

let run_parallel ~domains ~tasks f =
  (* Telemetry fork: one buffer triple per task, created on the
     coordinating domain (so trace forks capture the enclosing span)
     before any worker starts. Each buffer is written by exactly one
     task and merged only after every join, like the result slots. All
     three fork to [None] when the corresponding recorder is off, so an
     unobserved run allocates three arrays of [None] and nothing else. *)
  let m_bufs = Array.init tasks (fun _ -> Obs.Metrics.fork ()) in
  let t_bufs = Array.init tasks (fun _ -> Obs.Trace.fork ()) in
  let l_bufs = Array.init tasks (fun _ -> Obs.Log.fork ()) in
  let instrumented i =
    Obs.Metrics.with_buffer m_bufs.(i) (fun () ->
        Obs.Trace.with_buffer t_bufs.(i) (fun () ->
            Obs.Log.with_buffer l_bufs.(i) (fun () -> f i)))
  in
  let results = Array.make tasks None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < tasks then begin
        (results.(i) <-
           (match instrumented i with
           | v -> Some (Ok v)
           | exception e -> Some (Error e)));
        loop ()
      end
    in
    loop ()
  in
  let helpers =
    List.init
      (min (domains - 1) (tasks - 1))
      (fun _ -> Stdlib.Domain.spawn worker)
  in
  worker ();
  List.iter Stdlib.Domain.join helpers;
  (* Merge buffers for tasks 0..k in index order, where k is the
     lowest-numbered failing task (or the last task when none failed).
     An inline run would have recorded exactly tasks 0..k-1 in full
     plus task k's partial telemetry before the exception escaped;
     replaying in that order — and dropping whatever tasks > k did —
     reproduces it byte for byte. *)
  let merge_through k =
    for i = 0 to k do
      Obs.Metrics.merge m_bufs.(i);
      Obs.Trace.merge t_bufs.(i);
      Obs.Log.merge l_bufs.(i)
    done
  in
  (* Ascending scan, not Array.map, so the lowest-numbered failure wins
     regardless of which worker hit it (or of map's visit order). *)
  for i = 0 to tasks - 1 do
    match results.(i) with
    | Some (Error e) ->
        merge_through i;
        raise e
    | _ -> ()
  done;
  merge_through (tasks - 1);
  Array.map
    (function
      | Some (Ok v) -> v
      | _ -> assert false (* every index < tasks was claimed *))
    results

let run ~domains ~tasks f =
  if tasks < 0 then invalid_arg "Pool.run: negative task count"
  else if tasks = 0 then [||]
  else if domains <= 1 || tasks = 1 then begin
    (* Explicit ascending loop: Array.init's evaluation order is
       unspecified, and the inline path must visit tasks in index order
       so that exceptions and any caller-shared state (the single-worker
       mode exists precisely to permit it) behave deterministically. *)
    let first = f 0 in
    let out = Array.make tasks first in
    for i = 1 to tasks - 1 do
      out.(i) <- f i
    done;
    out
  end
  else run_parallel ~domains ~tasks f
