(* Results are published through per-slot writes (each slot has exactly
   one writer) and read only after Domain.join of every worker, which
   establishes the necessary happens-before edges. *)

let run_parallel ~domains ~tasks f =
  let results = Array.make tasks None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < tasks then begin
        (results.(i) <-
           (match f i with
           | v -> Some (Ok v)
           | exception e -> Some (Error e)));
        loop ()
      end
    in
    loop ()
  in
  let helpers =
    List.init
      (min (domains - 1) (tasks - 1))
      (fun _ -> Stdlib.Domain.spawn worker)
  in
  worker ();
  List.iter Stdlib.Domain.join helpers;
  (* Ascending scan, not Array.map, so the lowest-numbered failure wins
     regardless of which worker hit it (or of map's visit order). *)
  for i = 0 to tasks - 1 do
    match results.(i) with Some (Error e) -> raise e | _ -> ()
  done;
  Array.map
    (function
      | Some (Ok v) -> v
      | _ -> assert false (* every index < tasks was claimed *))
    results

let run ~domains ~tasks f =
  if tasks < 0 then invalid_arg "Pool.run: negative task count"
  else if tasks = 0 then [||]
  else if domains <= 1 || tasks = 1 then begin
    (* Explicit ascending loop: Array.init's evaluation order is
       unspecified, and the inline path must visit tasks in index order
       so that exceptions and any caller-shared state (the single-worker
       mode exists precisely to permit it) behave deterministically. *)
    let first = f 0 in
    let out = Array.make tasks first in
    for i = 1 to tasks - 1 do
      out.(i) <- f i
    done;
    out
  end
  else run_parallel ~domains ~tasks f
