let index ~shards s =
  if shards <= 1 then 0
  else
    let d = Digest.string s in
    let b i = Char.code d.[i] in
    ((b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3) mod shards

let partition ~shards key r =
  if shards <= 1 then [| r |]
  else begin
    let schema = Erm.Relation.schema r in
    let buckets = Array.make shards [] in
    Erm.Relation.iter
      (fun t ->
        let i = index ~shards (key t) in
        buckets.(i) <- t :: buckets.(i))
      r;
    Array.map (fun ts -> Erm.Relation.of_tuples schema (List.rev ts)) buckets
  end

let by_key ~shards r = partition ~shards Erm.Lineage.key_string r

let by_value ~shards ~attr r =
  let schema = Erm.Relation.schema r in
  partition ~shards
    (fun t -> Dst.Value.to_string (Erm.Etuple.definite_value schema t attr))
    r
