module P = Query.Physical

let fail fmt = Format.kasprintf (fun s -> raise (Query.Eval.Eval_error s)) fmt

let now_ns () =
  (Obs.Trace.clock Obs.Trace.default).Obs.Clock.now_ms () *. 1e6

(* --- per-shard pieces the inline executor keeps private ------------- *)

let rel_of env name =
  match List.assoc_opt name env with
  | Some r -> r
  | None -> fail "unknown relation %s" name

(* The Select arm of Eval.eval, verbatim (same as Physical's private
   copy): bind, select, project. *)
let select_project input where threshold cols =
  let schema = Erm.Relation.schema input in
  let pred = Query.Eval.bind_pred (Erm.Schema.find_opt schema) where in
  let selected = Erm.Ops.select ~threshold pred input in
  match cols with
  | None -> selected
  | Some names -> (
      try Erm.Ops.project names selected
      with Erm.Schema.Schema_error m -> fail "projection: %s" m)

let lookup_two sa sb a =
  match Erm.Schema.find_opt sa a with
  | Some attr -> Some attr
  | None -> Erm.Schema.find_opt sb a

(* A per-shard Dempster cache backed by the flat-representation kernel,
   with its own interner table per frame (interners are
   single-threaded). *)
let flat_cache () =
  let tables = ref [] in
  let resolve frame =
    match
      List.find_opt (fun (f, _) -> Dst.Domain.equal f frame) !tables
    with
    | Some (_, it) -> it
    | None ->
        let it = Dst.Interner.create frame in
        tables := (frame, it) :: !tables;
        it
  in
  Dst.Combine_cache.create ~kernel:(Dst.Flat_mass.kernel resolve) ()

(* --- canonical merge ------------------------------------------------ *)

(* Fold the shards back together in ascending shard order; Relation.add
   inserts into a key-ordered map, so the merged value is independent of
   that order anyway, and a Duplicate_key escape means the partition
   invariant broke — fail loudly rather than mask it. *)
let merge parts =
  let t0 = now_ns () in
  let out =
    Array.fold_left
      (fun acc part ->
        Erm.Relation.fold (fun t acc -> Erm.Relation.add acc t) part acc)
      (Erm.Relation.empty (Erm.Relation.schema parts.(0)))
      parts
  in
  Obs.Metrics.observe "exec.merge.ns" (now_ns () -. t0);
  out

let note_shard_rows parts =
  if Obs.Metrics.on () then
    Array.iter
      (fun r ->
        Obs.Metrics.observe "exec.shard.rows"
          (float_of_int (Erm.Relation.cardinal r)))
      parts

(* --- stored-relation scan cache ------------------------------------- *)

(* Base-relation partitions and their per-shard indexes survive across
   queries: a hit requires the physically identical relation value
   (same [==] pointer, so a rebound environment name misses) *and* an
   unchanged store generation — Store.Delta.apply bumps the generation,
   invalidating every entry the moment stored data moves. Populated and
   read only from [parts_of] closures, which run on the main domain, so
   no worker ever touches the table. *)

type scan_entry = {
  c_rel : Erm.Relation.t;
  c_gen : int;
  c_parts : Erm.Relation.t array;
  mutable c_indexes : (string * Erm.Index.t array) list;
}

let scan_cache : (string * int, scan_entry) Hashtbl.t = Hashtbl.create 8
let reset_scan_cache () = Hashtbl.reset scan_cache

let cached_parts ~shards name base =
  let gen = Store.Estore.generation () in
  match Hashtbl.find_opt scan_cache (name, shards) with
  | Some e when e.c_rel == base && e.c_gen = gen -> e
  | _ ->
      let e =
        {
          c_rel = base;
          c_gen = gen;
          c_parts = Shard.by_key ~shards base;
          c_indexes = [];
        }
      in
      Hashtbl.replace scan_cache (name, shards) e;
      e

let cached_indexes e attr =
  match List.assoc_opt attr e.c_indexes with
  | Some idxs ->
      Obs.Metrics.incr "exec.index.reuse";
      idxs
  | None ->
      let idxs = Array.map (fun p -> Erm.Index.build p attr) e.c_parts in
      e.c_indexes <- (attr, idxs) :: e.c_indexes;
      Obs.Metrics.incr "exec.index.build";
      idxs

(* --- the sharded executor ------------------------------------------- *)

let execute_plan cfg env plan =
  let shards = cfg.P.shards in
  (* Metrics, tracing and the flight recorder are safe at any worker
     count: the pool forks a telemetry buffer per shard and merges at
     the barrier in task-index order, so dumps are byte-identical
     whatever [domains] is. Only provenance (allocation-ordered lineage
     ids) still bypasses the engine — see [execute]. *)
  let workers = max 1 cfg.P.domains in
  Obs.Metrics.gauge "exec.shards" (float_of_int shards);
  Obs.Metrics.gauge "exec.workers" (float_of_int workers);
  (* One flat-kernel cache per shard, at every worker count: giving
     the single-worker run the same cold per-shard caches a parallel
     run gets is what makes combine_cache.* counters — and therefore
     whole metric dumps — worker-count-invariant. *)
  let shard_caches = Array.init shards (fun _ -> flat_cache ()) in
  let run_shards f = Pool.run ~domains:workers ~tasks:shards f in
  let in_span op f =
    if Obs.Trace.on () then
      Obs.Trace.with_span ~cat:"exec"
        ~args:[ ("shards", string_of_int shards) ]
        ("exec." ^ op) f
    else f ()
  in
  let sharded op parts_of body =
    in_span op (fun () ->
        let inputs = parts_of () in
        if Obs.Log.on () then
          Obs.Log.record ~severity:Obs.Log.Debug
            ~fields:
              [ ("op", "exec." ^ op);
                ("shards", string_of_int shards);
                ("workers", string_of_int workers) ]
            Obs.Log.Shard_spawn
            ("fan out exec." ^ op);
        let outs = run_shards (fun i -> body i inputs) in
        note_shard_rows outs;
        let out = merge outs in
        if Obs.Log.on () then
          Obs.Log.record ~severity:Obs.Log.Debug
            ~fields:
              [ ("op", "exec." ^ op);
                ("rows", string_of_int (Erm.Relation.cardinal out)) ]
            Obs.Log.Shard_merge
            ("merged exec." ^ op);
        out)
  in
  let rec eval p =
    match p with
    | P.Scan { rel; access; residual; threshold; cols } -> (
        let base = rel_of env rel in
        match access with
        | P.Seq_scan ->
            sharded "scan"
              (fun () -> (cached_parts ~shards rel base).c_parts)
              (fun i parts -> select_project parts.(i) residual threshold cols)
        | P.Index_eq { attr; value } ->
            (* A per-shard index probe is exact: the bucket union over
               shards is the whole-relation bucket, and the residual
               runs per tuple. Partitions and indexes come from the
               scan cache (built on the main domain, reused while the
               store generation holds); the context's whole-relation
               index cache is left alone. *)
            sharded "scan"
              (fun () ->
                let e = cached_parts ~shards rel base in
                (e.c_parts, cached_indexes e attr))
              (fun i (parts, idxs) ->
                let bucket = Erm.Index.select_eq idxs.(i) parts.(i) value in
                select_project bucket residual threshold cols))
    | P.Filter { input; where; threshold; cols } ->
        let child = eval input in
        sharded "filter"
          (fun () -> Shard.by_key ~shards child)
          (fun i parts -> select_project parts.(i) where threshold cols)
    | P.Hash_join { left; right; left_attr; right_attr; residual; threshold }
      ->
        let ra = eval left in
        let rb = eval right in
        let sa = Erm.Relation.schema ra and sb = Erm.Relation.schema rb in
        let pred = Query.Eval.bind_pred (lookup_two sa sb) residual in
        sharded "hash-join"
          (fun () ->
            (* Partition both sides by the join value: equal values — the
               only pairs the equi-join keeps — land in the same shard. *)
            ( Shard.by_value ~shards ~attr:left_attr ra,
              Shard.by_value ~shards ~attr:right_attr rb ))
          (fun i (pa, pb) ->
            try
              Erm.Ops.join_indexed ~threshold ~residual:pred ~left_attr
                ~right_attr pa.(i) pb.(i)
            with Erm.Schema.Schema_error m -> fail "join: %s" m)
    | P.Loop_join { left; right; on; threshold } ->
        let ra = eval left in
        let rb = eval right in
        let sa = Erm.Relation.schema ra and sb = Erm.Relation.schema rb in
        let pred = Query.Eval.bind_pred (lookup_two sa sb) on in
        sharded "loop-join"
          (fun () -> Shard.by_key ~shards ra)
          (fun i parts ->
            (* Left-only partition, right replicated: each output tuple's
               key embeds its left tuple's key, so outputs stay
               disjoint. *)
            try Erm.Ops.join ~threshold pred parts.(i) rb
            with Erm.Schema.Schema_error m -> fail "join: %s" m)
    | P.Product (a, b) ->
        let ra = eval a in
        let rb = eval b in
        sharded "product"
          (fun () -> Shard.by_key ~shards ra)
          (fun i parts ->
            try Erm.Ops.product parts.(i) rb
            with Erm.Schema.Schema_error m -> fail "product: %s" m)
    | P.Union (a, b) ->
        let ra = eval a in
        let rb = eval b in
        sharded "union"
          (fun () -> (Shard.by_key ~shards ra, Shard.by_key ~shards rb))
          (fun i (pa, pb) ->
            try
              Erm.Ops.union_cached ~cache:shard_caches.(i) pa.(i) pb.(i)
            with Erm.Ops.Incompatible_schemas m -> fail "union: %s" m)
    | P.Intersect (a, b) ->
        let ra = eval a in
        let rb = eval b in
        sharded "intersect"
          (fun () -> (Shard.by_key ~shards ra, Shard.by_key ~shards rb))
          (fun i (pa, pb) ->
            try Erm.Ops.intersection pa.(i) pb.(i)
            with Erm.Ops.Incompatible_schemas m -> fail "intersect: %s" m)
    | P.Except (a, b) ->
        let ra = eval a in
        let rb = eval b in
        sharded "except"
          (fun () -> (Shard.by_key ~shards ra, Shard.by_key ~shards rb))
          (fun i (pa, pb) ->
            try Erm.Ops.difference pa.(i) pb.(i)
            with Erm.Ops.Incompatible_schemas m -> fail "except: %s" m)
    | P.Rank { input; by; ascending; limit } ->
        (* A LIMIT cuts globally: rank runs sequentially on the merged
           child (same as inline). *)
        let child = eval input in
        let order =
          match by with
          | Erm.Threshold.Sn -> Erm.Rank.By_sn
          | Erm.Threshold.Sp -> Erm.Rank.By_sp
        in
        in_span "rank" (fun () ->
            match limit with
            | None -> child
            | Some k ->
                if ascending then Erm.Rank.bottom ~order k child
                else Erm.Rank.top ~order k child)
    | P.Prefix { input; prefix } ->
        let child = eval input in
        in_span "prefix" (fun () ->
            try Erm.Ops.rename_attrs (fun n -> prefix ^ n) child
            with Erm.Schema.Schema_error m -> fail "prefix: %s" m)
  in
  eval plan

let execute cfg ?ctx env plan =
  let ctx = match ctx with Some c -> c | None -> P.create_ctx () in
  (* Lineage ids are allocation-ordered, so a shard-partitioned
     evaluation cannot reproduce the inline arena byte for byte; with
     recording on the engine therefore stands aside. A single shard is
     the inline evaluation anyway. *)
  if cfg.P.shards <= 1 || Obs.Provenance.on () then
    P.execute ~ctx env plan
  else execute_plan cfg env plan

let install () = P.set_sharded_runner (fun cfg ctx env plan ->
    execute cfg ~ctx env plan)

(* --- sharded integration -------------------------------------------- *)

module M = Integration.Multi

let integrate cfg ?policy ?discount ?alpha_floor ?prior sources =
  if cfg.P.shards <= 1 || Obs.Provenance.on () then
    M.integrate ?policy ?discount ?alpha_floor ?prior sources
  else
    match sources with
    | [] ->
        ignore (M.reliabilities ?discount ?alpha_floor ?prior [] []);
        raise M.No_sources
    | first :: rest ->
        ignore (M.reliabilities ?discount ?alpha_floor ?prior [] []);
        let shards = cfg.P.shards in
        let workers = max 1 cfg.P.domains in
        (* Reliabilities come from the global conflict matrix — a
           per-shard matrix would change the discount rates — and
           sources are discounted whole (a per-tuple operation, so
           partitioning after discounting is exact). *)
        let matrix = M.conflict_matrix sources in
        let reliabilities =
          M.reliabilities ?discount ?alpha_floor ?prior matrix sources
        in
        let prepared s =
          let alpha = List.assoc s.M.source_name reliabilities in
          if alpha >= 1.0 then s.M.source_relation
          else Integration.Reliability.discount_relation alpha s.M.source_relation
        in
        let first_parts = Shard.by_key ~shards (prepared first) in
        let rest_parts =
          List.map
            (fun s -> (s.M.source_name, Shard.by_key ~shards (prepared s)))
            rest
        in
        if Obs.Log.on () then
          Obs.Log.record ~severity:Obs.Log.Debug
            ~fields:
              [ ("op", "exec.integrate");
                ("shards", string_of_int shards);
                ("workers", string_of_int workers) ]
            Obs.Log.Shard_spawn "fan out exec.integrate";
        let shard_results =
          Pool.run ~domains:workers ~tasks:shards (fun i ->
              List.fold_left
                (fun (acc, confs) (name, parts) ->
                  let merged, cs = Erm.Ops.union_report ?policy acc parts.(i) in
                  (merged, confs @ List.map (fun c -> (name, c)) cs))
                (first_parts.(i), [])
                rest_parts)
        in
        let integrated = merge (Array.map fst shard_results) in
        if Obs.Log.on () then
          Obs.Log.record ~severity:Obs.Log.Debug
            ~fields:
              [ ("op", "exec.integrate");
                ("rows", string_of_int (Erm.Relation.cardinal integrated)) ]
            Obs.Log.Shard_merge "merged exec.integrate";
        (* Canonical conflict order: grouped by source in absorption
           order (as the unsharded fold reports), ascending key within a
           source (the per-shard lists are already ascending, and all
           conflicts of one key live in one shard, so a stable sort by
           key reproduces the unsharded order exactly). *)
        let all_confs =
          List.concat_map (fun (_, confs) -> confs)
            (Array.to_list shard_results)
        in
        let conflicts =
          List.concat_map
            (fun (name, _) ->
              List.stable_sort
                (fun (_, c1) (_, c2) ->
                  List.compare Dst.Value.compare c1.Erm.Ops.conflict_key
                    c2.Erm.Ops.conflict_key)
                (List.filter (fun (n, _) -> String.equal n name) all_confs))
            rest_parts
        in
        if Obs.Metrics.on () then begin
          Obs.Metrics.incr ~by:(List.length sources) "integration.sources";
          Obs.Metrics.incr ~by:(List.length conflicts) "integration.conflicts";
          List.iter
            (fun (_, _, k) -> Obs.Metrics.observe "integration.mean_kappa" k)
            matrix
        end;
        { M.integrated; conflicts; conflict_matrix = matrix; reliabilities }
