(** The sharded evaluation engine behind
    [Query.Physical.Sharded].

    Each physical operator is evaluated as [shards] independent
    sub-evaluations over a content-addressed partition of its inputs
    ({!Shard}), run through the deterministic task {!Pool}, and folded
    back together by a canonical ordered merge — so the result is
    bit-identical to the inline executor's for {e any} shard count and
    {e any} worker count (the 5th conformance leg in
    test/test_conformance.ml). Per-shard Dempster combination runs on
    the packed {!Dst.Flat_mass} representation through a per-shard
    {!Dst.Combine_cache} when workers are parallel, and through the
    context's shared cache when sequential.

    {b Determinism contract} (see DESIGN.md §7 for the full argument):

    - provenance recording on, or [shards ≤ 1] → the engine stands
      aside entirely and runs [Query.Physical.execute], so lineage is
      plan- and shard-invariant by construction;
    - tracing or metrics on → the partition still applies but exactly
      one worker runs (the observability stores are process-global and
      unsynchronized), shards evaluate in ascending order against the
      shared context cache, so counter rollups are shard-count-invariant
      for the [dst.*], [combine_cache.*] and [integration.*] families
      ([exec.*] diagnostics describe the configuration itself and are
      excluded);
    - everything off → up to [domains] workers, per-shard caches,
      flat-representation kernels.

    The engine emits [exec.shards], [exec.shard.rows] and
    [exec.merge.ns] metrics and [exec.*] spans through the default
    tracer's clock, so a virtual clock keeps them deterministic. *)

val install : unit -> unit
(** Register {!execute} as [Query.Physical]'s sharded runner. Idempotent;
    call once at program start (the binaries and test harnesses do). *)

val reset_scan_cache : unit -> unit
(** Drop every cached per-shard partition and index. The cache already
    self-invalidates — entries are keyed on the physical relation and
    the process-wide store generation ({!Store.Estore.generation}) —
    so this is for harnesses that compare cold-start metric rollups
    ([exec.index.build] vs [exec.index.reuse]) across repeated runs. *)

val execute :
  Query.Physical.sharded ->
  ?ctx:Query.Physical.ctx ->
  Query.Eval.env ->
  Query.Physical.t ->
  Erm.Relation.t
(** Evaluate a physical plan shard-wise. Raises exactly the inline
    executor's exceptions ({!Query.Eval.Eval_error}, evidence
    conflicts); when several shards fail, the lowest-numbered shard's
    exception wins deterministically. *)

val integrate :
  Query.Physical.sharded ->
  ?policy:Dst.Rule.policy ->
  ?discount:bool ->
  ?alpha_floor:float ->
  ?prior:(string * float) list ->
  Integration.Multi.source list ->
  Integration.Multi.report
(** Sharded {!Integration.Multi.integrate}: the conflict matrix and
    per-source reliabilities are computed {e globally} (a per-shard
    matrix would change discount rates), sources are discounted whole,
    and only the per-key absorption folds are partitioned. The report —
    integrated relation, conflict list order, matrix, reliabilities —
    is identical to the unsharded one — for any combination rule:
    evidence cells combine under [?policy] (default {!Dst.Rule.current},
    which worker domains read but never write — set the session rule
    before integrating). Delegates to the unsharded path when tracing
    or provenance recording is on or [shards ≤ 1]. *)
