(** The sharded evaluation engine behind
    [Query.Physical.Sharded].

    Each physical operator is evaluated as [shards] independent
    sub-evaluations over a content-addressed partition of its inputs
    ({!Shard}), run through the deterministic task {!Pool}, and folded
    back together by a canonical ordered merge — so the result is
    bit-identical to the inline executor's for {e any} shard count and
    {e any} worker count (the 5th conformance leg in
    test/test_conformance.ml). Per-shard Dempster combination always
    runs on the packed {!Dst.Flat_mass} representation through a fresh
    per-shard {!Dst.Combine_cache} — at every worker count, so cache
    hit/miss counters cannot depend on [domains].

    {b Determinism contract} (see DESIGN.md §6–7 for the full
    argument):

    - provenance recording on, or [shards ≤ 1] → the engine stands
      aside entirely and runs [Query.Physical.execute], so lineage is
      plan- and shard-invariant by construction (lineage ids are
      allocation-ordered and have no buffered mode);
    - metrics, tracing and the flight recorder run at {e full}
      parallelism: the {!Pool} forks a per-task telemetry buffer
      triple and merges at the barrier in task-index order, so metric
      dumps, span forests and the event journal are byte-identical to
      a single-worker run ([dst.*], [combine_cache.*],
      [integration.*], [exec.*] — everything);
    - counter rollups are worker-count-invariant at a fixed shard
      count; across {e shard} counts the [exec.*] diagnostics and the
      per-shard cache hit/miss split legitimately differ (the
      partition itself changes).

    The engine emits [exec.shards], [exec.shard.rows] and
    [exec.merge.ns] metrics, [exec.*] spans, and [Shard_spawn] /
    [Shard_merge] flight-recorder events through the default tracer's
    clock, so a virtual clock keeps them deterministic. *)

val install : unit -> unit
(** Register {!execute} as [Query.Physical]'s sharded runner. Idempotent;
    call once at program start (the binaries and test harnesses do). *)

val reset_scan_cache : unit -> unit
(** Drop every cached per-shard partition and index. The cache already
    self-invalidates — entries are keyed on the physical relation and
    the process-wide store generation ({!Store.Estore.generation}) —
    so this is for harnesses that compare cold-start metric rollups
    ([exec.index.build] vs [exec.index.reuse]) across repeated runs. *)

val execute :
  Query.Physical.sharded ->
  ?ctx:Query.Physical.ctx ->
  Query.Eval.env ->
  Query.Physical.t ->
  Erm.Relation.t
(** Evaluate a physical plan shard-wise. Raises exactly the inline
    executor's exceptions ({!Query.Eval.Eval_error}, evidence
    conflicts); when several shards fail, the lowest-numbered shard's
    exception wins deterministically. *)

val integrate :
  Query.Physical.sharded ->
  ?policy:Dst.Rule.policy ->
  ?discount:bool ->
  ?alpha_floor:float ->
  ?prior:(string * float) list ->
  Integration.Multi.source list ->
  Integration.Multi.report
(** Sharded {!Integration.Multi.integrate}: the conflict matrix and
    per-source reliabilities are computed {e globally} (a per-shard
    matrix would change discount rates), sources are discounted whole,
    and only the per-key absorption folds are partitioned. The report —
    integrated relation, conflict list order, matrix, reliabilities —
    is identical to the unsharded one — for any combination rule:
    evidence cells combine under [?policy] (default {!Dst.Rule.current},
    which worker domains read but never write — set the session rule
    before integrating). Delegates to the unsharded path only when
    provenance recording is on or [shards ≤ 1]; metrics and tracing
    ride the pool's per-task buffers at full parallelism. *)
