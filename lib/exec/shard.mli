(** Deterministic relation partitioning for the sharded engine.

    Tuples route to shards by an MD5 digest of a canonical string — the
    same [Digest.string] the provenance arena already uses for value
    identity — so a partition depends only on tuple {e content}, never
    on insertion order, worker count or hash-table seeds. Two
    partitioning keys cover every operator:

    - {!by_key}: the tuple's primary-key rendering
      ({!Erm.Lineage.key_string}) — scans, selections, set operations
      and the left side of non-equi joins;
    - {!by_value}: the rendering of one definite attribute's value —
      both sides of an equi-join, so matching tuples land in the same
      shard.

    Every partition is a disjoint cover: each input tuple appears in
    exactly one output shard, and each shard is a valid relation under
    the input's schema. *)

val index : shards:int -> string -> int
(** The shard of a canonical string: the first four digest bytes as a
    big-endian int, mod [shards]. Total on any string; 0 when
    [shards ≤ 1]. *)

val by_key : shards:int -> Erm.Relation.t -> Erm.Relation.t array
(** Partition by primary key into [shards] relations. *)

val by_value :
  shards:int -> attr:string -> Erm.Relation.t -> Erm.Relation.t array
(** Partition by the definite value of [attr].
    @raise Invalid_argument via {!Erm.Etuple.definite_value} if [attr]
    is missing or evidential. *)
