(** A deterministic fixed-size task pool over OCaml 5 domains.

    [run ~domains ~tasks f] evaluates [f 0 … f (tasks - 1)] and returns
    the results indexed by task. With [domains ≤ 1] (or a single task)
    everything runs inline, in ascending task order, on the calling
    domain. Otherwise up to [domains - 1] helper domains are spawned and
    tasks are claimed from a shared atomic counter; the caller works
    too, so [~domains:n] never uses more than [n] domains in total.

    Determinism contract: the {e result} is the indexed array, so it
    cannot depend on which worker ran which task or in what order they
    finished — provided [f] itself touches no shared mutable state.
    That proviso is why the engine only enables multiple workers when
    tracing, metrics and provenance recording are all off (their stores
    are process-global and unsynchronized) and gives each task its own
    interner, scratch and cache.

    Worker counts larger than the machine's core count are valid (the
    extra domains just time-share); CI runs this on one core.

    If any task raises, the exception of the {e lowest-numbered} failing
    task is re-raised after all workers have been joined — again
    independent of scheduling. *)

val run : domains:int -> tasks:int -> (int -> 'a) -> 'a array
