(** A deterministic fixed-size task pool over OCaml 5 domains.

    [run ~domains ~tasks f] evaluates [f 0 … f (tasks - 1)] and returns
    the results indexed by task. With [domains ≤ 1] (or a single task)
    everything runs inline, in ascending task order, on the calling
    domain. Otherwise up to [domains - 1] helper domains are spawned and
    tasks are claimed from a shared atomic counter; the caller works
    too, so [~domains:n] never uses more than [n] domains in total.

    Determinism contract: the {e result} is the indexed array, so it
    cannot depend on which worker ran which task or in what order they
    finished — provided [f] itself touches no shared mutable state.
    The engine honours that proviso by giving each task its own
    interner, scratch and cache; the process-global telemetry stores
    are handled by the pool itself. Before spawning, the parallel path
    forks one [Obs.Metrics] / [Obs.Trace] / [Obs.Log] buffer per task
    (on the calling domain, so trace forks hang off the enclosing
    span); each task records into its own buffers via domain-local
    sinks, and after every worker is joined the buffers are merged
    back in task-index order. Merging replays the recorded operations,
    so counters, histogram state, span forests and the event journal
    are byte-identical to an inline single-worker run — whatever the
    worker count. Provenance recording has no buffered mode; the
    engine routes provenance-recording runs through its inline path.

    Worker counts larger than the machine's core count are valid (the
    extra domains just time-share); CI runs this on one core.

    If any task raises, the exception of the {e lowest-numbered} failing
    task is re-raised after all workers have been joined — again
    independent of scheduling. Telemetry buffers for tasks up to and
    including the failing one are merged first (the failing task's
    partial records included), and later tasks' buffers are dropped —
    exactly what an inline run would have recorded when the exception
    escaped. *)

val run : domains:int -> tasks:int -> (int -> 'a) -> 'a array
