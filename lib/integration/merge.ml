type report = {
  integrated : Erm.Relation.t;
  conflicts : Erm.Ops.conflict list;
  merged_count : int;
  left_only : int;
  right_only : int;
}

let by_key ?policy left right =
  let integrated, conflicts = Erm.Ops.union_report ?policy left right in
  let shared = List.length (Erm.Ops.intersect_keys left right) in
  { integrated;
    conflicts;
    merged_count = shared - List.length conflicts;
    left_only = Erm.Relation.cardinal left - shared;
    right_only = Erm.Relation.cardinal right - shared }

let rekey schema key t =
  Erm.Etuple.make schema ~key ~cells:(Erm.Etuple.cells t)
    ~tm:(Erm.Etuple.tm t)

let of_matching ?policy schema (m : Entity_id.matching) =
  let conflicts = ref [] in
  let merged = ref 0 in
  let combine_pair acc (a, b) =
    let key = Erm.Etuple.key a in
    let b = if Erm.Etuple.key_equal a b then b else rekey schema key b in
    match
      Erm.Etuple.combine_with
        ~combine_evidence:(Dst.Mass.F.combine_policy_exn ?policy)
        schema a b
    with
    | t ->
        incr merged;
        if Obs.Provenance.on () then Erm.Lineage.record_merge a b t;
        Erm.Relation.replace acc t
    | exception Dst.Mass.F.Total_conflict ->
        conflicts :=
          { Erm.Ops.conflict_key = key;
            conflict_attr = None;
            conflict_detail = "total conflict while merging matched pair" }
          :: !conflicts;
        acc
    | exception Dst.Mass.F.Quarantined_cell kappa ->
        conflicts :=
          { Erm.Ops.conflict_key = key;
            conflict_attr = None;
            conflict_detail =
              Format.asprintf
                "quarantined: kappa = %g at or above rule threshold" kappa }
          :: !conflicts;
        acc
    | exception Erm.Etuple.Tuple_error detail ->
        conflicts :=
          { Erm.Ops.conflict_key = key;
            conflict_attr = None;
            conflict_detail = detail }
          :: !conflicts;
        acc
  in
  let base =
    List.fold_left
      (fun acc t -> Erm.Relation.replace acc t)
      (Erm.Relation.empty schema)
      (m.only_left @ m.only_right)
  in
  let integrated = List.fold_left combine_pair base m.matched in
  { integrated;
    conflicts = List.rev !conflicts;
    merged_count = !merged;
    left_only = List.length m.only_left;
    right_only = List.length m.only_right }

let pp ppf r =
  Format.fprintf ppf
    "@[<v>integrated %d tuples (%d merged, %d left-only, %d right-only, %d \
     conflicts)"
    (Erm.Relation.cardinal r.integrated)
    r.merged_count r.left_only r.right_only
    (List.length r.conflicts);
  List.iter
    (fun c -> Format.fprintf ppf "@,  conflict: %a" Erm.Ops.pp_conflict c)
    r.conflicts;
  Format.fprintf ppf "@]"
