(** N-source integration (extension).

    The paper integrates two databases; Dempster's rule is associative
    and commutative, so any number of sources fold into one integrated
    relation with an order-independent result. This module also computes
    the pairwise conflict matrix — which sources disagree with which —
    and can discount each source by its own estimated reliability (mean
    conflict against all peers) before merging, generalizing
    {!Reliability.merge_discounted}. *)

type source = { source_name : string; source_relation : Erm.Relation.t }

type report = {
  integrated : Erm.Relation.t;
  conflicts : (string * Erm.Ops.conflict) list;
      (** Conflicts with the name of the source whose absorption raised
          them. *)
  conflict_matrix : (string * string * float) list;
      (** Mean pairwise κ for every unordered source pair, from
          {!Reliability.assess}. *)
  reliabilities : (string * float) list;
      (** Per-source discount rate (1 when merging undiscounted). *)
}

exception No_sources

val conflict_matrix : source list -> (string * string * float) list
(** Mean pairwise κ for every unordered source pair, in the order
    {!integrate} reports it. Exposed for the sharded execution engine,
    which must compute reliabilities {e globally} before partitioning —
    a per-shard matrix would change the discount rates. *)

val reliabilities :
  ?discount:bool ->
  ?alpha_floor:float ->
  ?prior:(string * float) list ->
  (string * string * float) list ->
  source list ->
  (string * float) list
(** The per-source discount rates {!integrate} derives from a conflict
    matrix: [max alpha_floor (prior · conflict_rate)]. Same knobs, same
    validation, same arithmetic — {!integrate} itself calls this.
    @raise Invalid_argument if a prior or the floor is outside [0,1]. *)

val integrate :
  ?policy:Dst.Rule.policy ->
  ?discount:bool ->
  ?alpha_floor:float ->
  ?prior:(string * float) list ->
  source list ->
  report
(** Fold all sources into one relation (left to right; with the default
    Dempster rule the result is order-independent up to float rounding
    because ⊕ is associative — averaging is {e not} associative, so
    under [--rule averaging] the fold order is part of the semantics).
    Evidence cells combine under [?policy] (default
    {!Dst.Rule.current}); κ-escalation quarantines surface in
    [conflicts] like total conflicts do.
    With [~discount:true] (default false), each source is first
    α-discounted by [1 − (mean κ against the other sources)].

    [?prior] (default all 1) supplies an external per-source discount —
    the federation runtime passes the reliability it inferred from
    delivery behaviour (retries, staleness) — which multiplies into the
    conflict-based rate. [?alpha_floor] (default 0) clamps every final α
    from below; any floor > 0 preserves Theorem-1 closure even for
    totally conflicting sources, where the conflict-based rate alone
    would reach α = 0 and discount every tuple to [sn = 0]. The
    defaults leave historical behaviour bit-for-bit unchanged.
    @raise No_sources on the empty list.
    @raise Invalid_argument if a prior or the floor is outside [0,1].
    @raise Erm.Ops.Incompatible_schemas if any source's schema differs. *)

type change =
  | Changed of Erm.Etuple.t
      (** New key, or a key-matched pair whose Dempster merge survives. *)
  | Dropped of Erm.Etuple.t
      (** The previously stored tuple of a pair {!integrate} would omit:
          total conflict, definite disagreement, or a merged membership
          with [sn = 0]. *)

val absorb_delta :
  ?policy:Dst.Rule.policy ->
  into:Erm.Relation.t ->
  source ->
  Erm.Relation.t * Erm.Ops.conflict list * change list
(** [absorb_delta ~into s] folds one (undiscounted) source into an
    existing merged relation in O(changed entities): only the keys of
    [s] are visited. Because the per-key merge is
    {!Erm.Ops.merge_report} — exactly what {!integrate}'s absorption
    step applies — the result is bit-identical
    ([Float.equal] supports) to
    [integrate ~discount:false (sources @ [s])] when [into] was built
    by [integrate ~discount:false sources]. Registers [s] as a
    provenance source, records one [Step] node and the per-source κ
    histogram exactly as {!integrate} does. The change list (in
    ascending key order of [s]) is the persistent store's write set.
    @raise Erm.Ops.Incompatible_schemas when the schemas differ. *)

val pp : Format.formatter -> report -> unit
