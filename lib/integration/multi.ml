type source = { source_name : string; source_relation : Erm.Relation.t }

type report = {
  integrated : Erm.Relation.t;
  conflicts : (string * Erm.Ops.conflict) list;
  conflict_matrix : (string * string * float) list;
  reliabilities : (string * float) list;
}

exception No_sources

let conflict_matrix sources =
  let rec pairs = function
    | a :: rest ->
        List.map
          (fun b ->
            let assessment =
              Reliability.assess a.source_relation b.source_relation
            in
            (a.source_name, b.source_name, assessment.Reliability.mean_conflict))
          rest
        @ pairs rest
    | [] -> []
  in
  pairs sources

let reliability_from_matrix matrix name =
  let kappas =
    List.filter_map
      (fun (a, b, k) ->
        if String.equal a name || String.equal b name then Some k else None)
      matrix
  in
  match kappas with
  | [] -> 1.0
  | _ ->
      let mean =
        List.fold_left ( +. ) 0.0 kappas /. float_of_int (List.length kappas)
      in
      Float.max 0.0 (Float.min 1.0 (1.0 -. mean))

let reliabilities ?(discount = false) ?(alpha_floor = 0.0) ?(prior = [])
    matrix sources =
  if alpha_floor < 0.0 || alpha_floor > 1.0 then
    invalid_arg "Multi.integrate: alpha_floor outside [0,1]";
  List.iter
    (fun (name, a) ->
      if a < 0.0 || a > 1.0 then
        invalid_arg
          (Printf.sprintf "Multi.integrate: prior for %s outside [0,1]" name))
    prior;
  List.map
    (fun s ->
      let conflict_alpha =
        if discount then reliability_from_matrix matrix s.source_name
        else 1.0
      in
      let prior_alpha =
        match List.assoc_opt s.source_name prior with
        | Some a -> a
        | None -> 1.0
      in
      (s.source_name, Float.max alpha_floor (prior_alpha *. conflict_alpha)))
    sources

let integrate_inner ?policy ?discount ?alpha_floor ?prior sources =
  match sources with
  | [] ->
      (* Validate the knobs even when there is nothing to fold, keeping
         the historical error precedence (Invalid_argument before
         No_sources is not observable: both were raised before any
         work). *)
      ignore (reliabilities ?discount ?alpha_floor ?prior [] []);
      raise No_sources
  | first :: rest ->
      (* Knob validation precedes any observable work (provenance
         registration included), as it always has. *)
      ignore (reliabilities ?discount ?alpha_floor ?prior [] []);
      (* Sources register before any discounting or merging so that
         discount and combination hooks resolve their operands to
         Source leaves instead of anonymous operands. *)
      if Obs.Provenance.on () then
        List.iter
          (fun s ->
            Erm.Lineage.register_relation ~name:s.source_name
              s.source_relation)
          sources;
      let matrix = conflict_matrix sources in
      let reliabilities =
        reliabilities ?discount ?alpha_floor ?prior matrix sources
      in
      let prepared s =
        let alpha = List.assoc s.source_name reliabilities in
        if alpha >= 1.0 then s.source_relation
        else begin
          let d = Reliability.discount_relation alpha s.source_relation in
          (* Evidence cells get Discount nodes from the Mass hook; the
             membership support is discounted arithmetically, so its
             lineage is recorded here. *)
          if Obs.Provenance.on () then
            Erm.Lineage.record_discount ~alpha s.source_relation d;
          d
        end
      in
      let conflicts = ref [] in
      (* One absorption step per source: the [from, to) node range lets
         the audit attribute every combination's κ to the source whose
         absorption produced it. *)
      let absorb acc s =
        let mark =
          if Obs.Provenance.on () then Obs.Provenance.count () else 0
        in
        let merged, cs = Erm.Ops.union_report ?policy acc (prepared s) in
        conflicts := !conflicts @ List.map (fun c -> (s.source_name, c)) cs;
        if Obs.Provenance.on () then begin
          let upto = Obs.Provenance.count () in
          ignore
            (Obs.Provenance.add Obs.Provenance.Step
               ("absorb " ^ s.source_name)
               ~args:
                 [ ("source", s.source_name);
                   ("from", string_of_int mark);
                   ("to", string_of_int upto) ]);
          if Obs.Metrics.on () then
            for i = mark to upto - 1 do
              let n = Obs.Provenance.node i in
              match (n.Obs.Provenance.kind, n.Obs.Provenance.kappa) with
              | Obs.Provenance.Combine, Some k ->
                  Obs.Metrics.observe
                    ("dst.combine.kappa_by_source." ^ s.source_name)
                    k
              | _ -> ()
            done
        end;
        merged
      in
      let integrated = List.fold_left absorb (prepared first) rest in
      let report =
        { integrated; conflicts = !conflicts; conflict_matrix = matrix;
          reliabilities }
      in
      if Obs.Metrics.on () then begin
        Obs.Metrics.incr ~by:(List.length sources) "integration.sources";
        Obs.Metrics.incr ~by:(List.length !conflicts) "integration.conflicts";
        List.iter
          (fun (_, _, k) -> Obs.Metrics.observe "integration.mean_kappa" k)
          matrix
      end;
      report

type change = Changed of Erm.Etuple.t | Dropped of Erm.Etuple.t

(* One absorption step in O(changed entities): only the delta's keys are
   visited, every untouched tuple of [into] rides along structurally.
   Per-key outcomes go through Erm.Ops.merge_report — the exact function
   union_report applies — so folding a delta into a stored merge is
   bit-identical to re-integrating all sources from scratch (Dempster's
   rule is associative and integrate folds left-to-right). *)
let absorb_delta ?policy ~into s =
  let schema = Erm.Relation.schema into in
  if not (Erm.Schema.union_compatible schema (Erm.Relation.schema s.source_relation))
  then
    raise
      (Erm.Ops.Incompatible_schemas
         (Format.asprintf "%s and %s are not union-compatible"
            (Erm.Schema.name schema)
            (Erm.Schema.name (Erm.Relation.schema s.source_relation))));
  if Obs.Provenance.on () then
    Erm.Lineage.register_relation ~name:s.source_name s.source_relation;
  let mark = if Obs.Provenance.on () then Obs.Provenance.count () else 0 in
  let conflicts = ref [] in
  let record key attr detail =
    conflicts :=
      { Erm.Ops.conflict_key = key;
        conflict_attr = attr;
        conflict_detail = detail }
      :: !conflicts
  in
  let changes = ref [] in
  let merged =
    Erm.Relation.fold
      (fun t acc ->
        match Erm.Relation.find_opt into (Erm.Etuple.key t) with
        | None ->
            changes := Changed t :: !changes;
            Erm.Relation.replace acc t
        | Some old -> (
            match Erm.Ops.merge_report ?policy schema ~record old t with
            | Some m when Dst.Support.positive (Erm.Etuple.tm m) ->
                changes := Changed m :: !changes;
                Erm.Relation.replace acc m
            | Some _ | None ->
                (* union_report omits the pair (conflict, or the merged
                   membership lost all necessary support). *)
                changes := Dropped old :: !changes;
                Erm.Relation.remove acc (Erm.Etuple.key old)))
      s.source_relation into
  in
  if Obs.Provenance.on () then begin
    let upto = Obs.Provenance.count () in
    ignore
      (Obs.Provenance.add Obs.Provenance.Step
         ("absorb " ^ s.source_name)
         ~args:
           [ ("source", s.source_name);
             ("from", string_of_int mark);
             ("to", string_of_int upto) ]);
    if Obs.Metrics.on () then
      for i = mark to upto - 1 do
        let n = Obs.Provenance.node i in
        match (n.Obs.Provenance.kind, n.Obs.Provenance.kappa) with
        | Obs.Provenance.Combine, Some k ->
            Obs.Metrics.observe
              ("dst.combine.kappa_by_source." ^ s.source_name)
              k
        | _ -> ()
      done
  end;
  (merged, List.rev !conflicts, List.rev !changes)

let integrate ?policy ?discount ?alpha_floor ?prior sources =
  let body () =
    integrate_inner ?policy ?discount ?alpha_floor ?prior sources
  in
  if Obs.Trace.on () then
    Obs.Trace.with_span ~cat:"integration"
      ~args:
        [ ("detail", Printf.sprintf "%d sources" (List.length sources)) ]
      "integration.multi" body
  else body ()

let pp ppf r =
  Format.fprintf ppf "@[<v>integrated %d tuples from %d sources"
    (Erm.Relation.cardinal r.integrated)
    (List.length r.reliabilities);
  List.iter
    (fun (name, alpha) ->
      Format.fprintf ppf "@,  %s: reliability %.3f" name alpha)
    r.reliabilities;
  List.iter
    (fun (a, b, k) ->
      Format.fprintf ppf "@,  mean kappa(%s, %s) = %.3f" a b k)
    r.conflict_matrix;
  List.iter
    (fun (name, c) ->
      Format.fprintf ppf "@,  conflict absorbing %s: %a" name
        Erm.Ops.pp_conflict c)
    r.conflicts;
  Format.fprintf ppf "@]"
