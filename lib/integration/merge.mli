(** Tuple merging (Figure 1): combine matched tuples into the integrated
    relation, with conflict reporting.

    Thin orchestration over {!Erm.Ops.union_report} when matching is by
    key, and over {!Erm.Etuple.combine} for an explicit {!Entity_id.matching}.
    Total conflict (κ = 1) or definite-attribute disagreement does not
    abort the integration: the offending pair is excluded and reported,
    per §2.2's "some actions may be necessary to inform the data
    administrators or integrators about the conflict". *)

type report = {
  integrated : Erm.Relation.t;
  conflicts : Erm.Ops.conflict list;
  merged_count : int;  (** Key-matched pairs successfully combined. *)
  left_only : int;
  right_only : int;
}

val by_key :
  ?policy:Dst.Rule.policy -> Erm.Relation.t -> Erm.Relation.t -> report
(** Extended union with reporting; the paper's integration step.
    Evidence cells combine under [policy] (default {!Dst.Rule.current});
    κ-escalation quarantines surface as conflicts whose detail starts
    with ["quarantined:"] ({!Erm.Ops.is_quarantine}). *)

val of_matching :
  ?policy:Dst.Rule.policy -> Erm.Schema.t -> Entity_id.matching -> report
(** Merge an explicit matching (e.g. from {!Entity_id.by_similarity}).
    Matched pairs are combined under [policy] (default
    {!Dst.Rule.current}); unmatched tuples pass through. When a
    similarity matching pairs tuples with different keys, the left
    tuple's key names the merged tuple. *)

val pp : Format.formatter -> report -> unit
(** Summary line plus one line per conflict. *)
