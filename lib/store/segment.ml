(* Append-only segment files.

   Layout:
     "ERSEG1\n"                                      file header (7 bytes)
     repeated records:
       0xE5                                          record magic
       kind        'S' | 'T' | 'D'                   1 byte
       length      payload bytes, uint32 LE          4 bytes
       crc32       over kind byte + payload, LE      4 bytes
       payload

   'S' carries the .erd schema header text, 'T' (upsert) a 32-hex key
   digest, '\n', and one tuple row in the exact-float .erd row syntax,
   'D' (delete) just the digest. The digest is MD5 of the tuple's
   provenance key string (Erm.Lineage.key_string) — the same value
   identity .why resolves. *)

let header = "ERSEG1\n"
let record_magic = '\xE5'
let overhead = 10 (* magic + kind + length + crc *)

type record =
  | Schema_rec of string
  | Upsert of { digest : string; row : string }
  | Delete of { digest : string }

type tail = Clean | Torn of int | Bad_magic_at of int | Bad_crc_at of int

let digest_of_tuple t = Digest.to_hex (Digest.string (Erm.Lineage.key_string t))

let kind_of = function
  | Schema_rec _ -> 'S'
  | Upsert _ -> 'T'
  | Delete _ -> 'D'

let payload_of = function
  | Schema_rec text -> text
  | Upsert { digest; row } -> digest ^ "\n" ^ row
  | Delete { digest } -> digest

let encode_into buf r =
  let kind = kind_of r and payload = payload_of r in
  let crc = Crc32.digest (String.make 1 kind ^ payload) in
  Buffer.add_char buf record_magic;
  Buffer.add_char buf kind;
  let b = Bytes.create 8 in
  Bytes.set_int32_le b 0 (Int32.of_int (String.length payload));
  Bytes.set_int32_le b 4 crc;
  Buffer.add_bytes buf b;
  Buffer.add_string buf payload

let encode records =
  let buf = Buffer.create 1024 in
  List.iter (encode_into buf) records;
  Buffer.contents buf

let encode_file records = header ^ encode records

let decode_payload kind payload =
  match kind with
  | 'S' -> Some (Schema_rec payload)
  | 'T' -> (
      match String.index_opt payload '\n' with
      | Some i when i = 32 ->
          Some
            (Upsert
               {
                 digest = String.sub payload 0 i;
                 row =
                   String.sub payload (i + 1) (String.length payload - i - 1);
               })
      | Some _ | None -> None)
  | 'D' -> if String.length payload = 32 then Some (Delete { digest = payload }) else None
  | _ -> None

let scan ?(verify = true) content =
  let len = String.length content in
  let hlen = String.length header in
  if len < hlen then
    if String.sub content 0 len = String.sub header 0 len then ([], 0, Torn 0)
    else ([], 0, Bad_magic_at 0)
  else if String.sub content 0 hlen <> header then ([], 0, Bad_magic_at 0)
  else begin
    let records = ref [] in
    let rec go off =
      if off = len then (List.rev !records, off, Clean)
      else if len - off < overhead then (List.rev !records, off, Torn off)
      else if content.[off] <> record_magic then
        (List.rev !records, off, Bad_magic_at off)
      else begin
        let kind = content.[off + 1] in
        let plen = Int32.to_int (String.get_int32_le content (off + 2)) in
        if plen < 0 then (List.rev !records, off, Bad_magic_at off)
        else if off + overhead + plen > len then
          (List.rev !records, off, Torn off)
        else begin
          let payload = String.sub content (off + overhead) plen in
          let crc = String.get_int32_le content (off + 6) in
          if
            verify
            && not (Int32.equal crc (Crc32.digest (String.make 1 kind ^ payload)))
          then (List.rev !records, off, Bad_crc_at off)
          else
            match decode_payload kind payload with
            | None -> (List.rev !records, off, Bad_magic_at off)
            | Some r ->
                records := r :: !records;
                go (off + overhead + plen)
        end
      end
    in
    go hlen
  end
