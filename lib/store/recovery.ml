type error =
  | Torn_tail of { path : string; offset : int }
  | Bad_checksum of { path : string; offset : int }
  | Bad_magic of { path : string; offset : int }
  | Version_skew of { path : string; found : int; supported : int }
  | No_store of { dir : string }
  | Bad_manifest of { path : string; detail : string }
  | Bad_record of { path : string; detail : string }

exception Store_error of error

let error_to_string = function
  | Torn_tail { path; offset } ->
      Printf.sprintf "torn tail: %s loses committed bytes at offset %d" path
        offset
  | Bad_checksum { path; offset } ->
      Printf.sprintf "bad checksum: %s record at offset %d" path offset
  | Bad_magic { path; offset } ->
      Printf.sprintf "bad magic: %s framing violated at offset %d" path offset
  | Version_skew { path; found; supported } ->
      Printf.sprintf "version skew: %s is format %d, this build supports %d"
        path found supported
  | No_store { dir } -> Printf.sprintf "no store at %s" dir
  | Bad_manifest { path; detail } ->
      Printf.sprintf "bad manifest: %s: %s" path detail
  | Bad_record { path; detail } ->
      Printf.sprintf "bad record: %s: %s" path detail

let () =
  Printexc.register_printer (function
    | Store_error e -> Some ("Store_error: " ^ error_to_string e)
    | _ -> None)

type event =
  | Truncated_tail of { segment : string; dropped : int }
  | Manifest_fallback
  | Removed_stray of string

let event_to_string = function
  | Truncated_tail { segment; dropped } ->
      Printf.sprintf "truncated %d uncommitted byte%s from %s" dropped
        (if dropped = 1 then "" else "s")
        segment
  | Manifest_fallback -> "fell back to MANIFEST.bak"
  | Removed_stray f -> Printf.sprintf "removed stray file %s" f

type report = {
  version : int;
  store_name : string;
  segments : int;
  records : int;
  events : event list;
}

let fail e =
  if Obs.Metrics.on () then Obs.Metrics.incr "store.recovery.errors";
  if Obs.Log.on () then
    Obs.Log.record ~severity:Obs.Log.Error Obs.Log.Recovery_error
      (error_to_string e);
  raise (Store_error e)

let in_span phase f =
  if Obs.Trace.on () then
    Obs.Trace.with_span ~cat:"store" ("store.recovery." ^ phase) f
  else f ()

(* Phase 1 — establish the commit point. The current manifest wins; a
   missing or corrupted one falls back to MANIFEST.bak (segments are
   append-only, so the previous manifest's committed lengths are still a
   consistent — merely older — version). A format from another build
   never falls back: that is version skew, not corruption. *)
let read_manifest (io : Io.t) dir events =
  let parse path =
    match Manifest.of_string (io.read_file path) with
    | Ok m -> Ok m
    | Error (Manifest.Skew found) ->
        Error
          (`Skew
            (Version_skew { path; found; supported = Manifest.current_format }))
    | Error (Manifest.Malformed detail) ->
        Error (`Corrupt (Bad_manifest { path; detail }))
  in
  let fallback on_missing =
    let bak = Manifest.bak_file dir in
    if not (io.exists bak) then fail on_missing
    else
      match parse bak with
      | Ok m ->
          events := Manifest_fallback :: !events;
          if Obs.Metrics.on () then
            Obs.Metrics.incr "store.recovery.manifest_fallback";
          m
      | Error (`Skew e) | Error (`Corrupt e) -> fail e
  in
  let current = Manifest.file dir in
  if not (io.exists current) then
    fallback (No_store { dir })
  else
    match parse current with
    | Ok m -> m
    | Error (`Skew e) -> fail e
    | Error (`Corrupt e) -> fallback e

(* Phase 2 — scan every committed segment. Bytes beyond the committed
   length are an interrupted append: truncated away (recoverable).
   Damage *within* the committed prefix lost acknowledged data: a typed
   error, never a silent repair. *)
let scan_segment ~verify (io : Io.t) dir events (seg, committed) =
  let path = Filename.concat dir seg in
  if not (io.exists path) then
    fail (Bad_manifest { path; detail = "committed segment missing" });
  let size = io.file_size path in
  if size < committed then fail (Torn_tail { path; offset = size });
  let content = io.read_file path in
  let records, consumed, tail =
    Segment.scan ~verify (String.sub content 0 committed)
  in
  (match tail with
  | Segment.Clean when consumed = committed -> ()
  | Segment.Clean | Segment.Torn _ ->
      fail (Torn_tail { path; offset = consumed })
  | Segment.Bad_magic_at off -> fail (Bad_magic { path; offset = off })
  | Segment.Bad_crc_at off -> fail (Bad_checksum { path; offset = off }));
  if size > committed then begin
    io.truncate_file path committed;
    events := Truncated_tail { segment = seg; dropped = size - committed }
              :: !events;
    if Obs.Metrics.on () then begin
      Obs.Metrics.incr "store.recovery.truncated_tails";
      Obs.Metrics.incr ~by:(size - committed) "store.recovery.truncated_bytes"
    end
  end;
  records

(* Files an interrupted commit left behind but the manifest never
   acknowledged: segments outside the list and a stale MANIFEST.tmp.
   Removing them keeps the directory equal to the committed state. *)
let remove_strays (io : Io.t) dir manifest events =
  let committed = List.map fst manifest.Manifest.segments in
  List.iter
    (fun f ->
      let stray_segment =
        Filename.check_suffix f ".seg" && not (List.mem f committed)
      in
      let stray_tmp = String.equal f "MANIFEST.tmp" in
      if stray_segment || stray_tmp then begin
        io.remove (Filename.concat dir f);
        events := Removed_stray f :: !events;
        if Obs.Metrics.on () then Obs.Metrics.incr "store.recovery.stray_removed"
      end)
    (io.list_dir dir)

(* Phase 3 — replay the clean records into the relation. *)
let replay ~verify dir per_segment =
  let bad path detail = fail (Bad_record { path; detail }) in
  let digests : (string, Dst.Value.t list) Hashtbl.t = Hashtbl.create 64 in
  let state = ref None in
  let count = ref 0 in
  let replay_one path record =
    incr count;
    match (record, !state) with
    | Segment.Schema_rec text, None -> (
        match Erm.Io.schema_of_string text with
        | s -> state := Some (Erm.Relation.empty s)
        | exception Erm.Io.Io_error { message; _ } ->
            bad path ("unreadable schema record: " ^ message))
    | Segment.Schema_rec _, Some _ -> bad path "duplicate schema record"
    | (Segment.Upsert _ | Segment.Delete _), None ->
        bad path "tuple record before any schema record"
    | Segment.Upsert { digest; row }, Some rel -> (
        match Erm.Io.tuple_of_string (Erm.Relation.schema rel) row with
        | t ->
            if verify && not (String.equal digest (Segment.digest_of_tuple t))
            then bad path ("digest mismatch for key " ^ digest)
            else begin
              Hashtbl.replace digests digest (Erm.Etuple.key t);
              state := Some (Erm.Relation.replace rel t)
            end
        | exception Erm.Io.Io_error { message; _ } ->
            bad path ("unreadable tuple row: " ^ message)
        | exception Erm.Relation.Relation_error m ->
            bad path ("tuple violates CWA_ER: " ^ m))
    | Segment.Delete { digest }, Some rel -> (
        match Hashtbl.find_opt digests digest with
        | Some key -> state := Some (Erm.Relation.remove rel key)
        | None -> bad path ("delete for unknown digest " ^ digest))
  in
  List.iter
    (fun (seg, records) ->
      let path = Filename.concat dir seg in
      List.iter (replay_one path) records)
    per_segment;
  match !state with
  | None ->
      fail
        (Bad_record
           { path = Manifest.file dir; detail = "store holds no schema record" })
  | Some rel -> (rel, !count)

let recover ?(verify = true) (io : Io.t) dir =
  if Obs.Metrics.on () then Obs.Metrics.incr "store.recovery.opens";
  let events = ref [] in
  let manifest = in_span "manifest" (fun () -> read_manifest io dir events) in
  let per_segment =
    in_span "scan" (fun () ->
        remove_strays io dir manifest events;
        List.map
          (fun seg -> (fst seg, scan_segment ~verify io dir events seg))
          manifest.Manifest.segments)
  in
  let rel, records =
    in_span "replay" (fun () -> replay ~verify dir per_segment)
  in
  if Obs.Metrics.on () then begin
    Obs.Metrics.incr ~by:(List.length manifest.Manifest.segments)
      "store.recovery.segments";
    Obs.Metrics.incr ~by:records "store.recovery.records"
  end;
  if Obs.Log.on () then
    List.iter
      (fun e ->
        Obs.Log.record ~severity:Obs.Log.Warn
          ~fields:[ ("dir", dir) ]
          Obs.Log.Recovery_error (event_to_string e))
      (List.rev !events);
  ( manifest,
    rel,
    {
      version = manifest.Manifest.version;
      store_name = manifest.Manifest.name;
      segments = List.length manifest.Manifest.segments;
      records;
      events = List.rev !events;
    } )
