(** The store's recovery state machine.

    Opening a store runs three phases, each under a [store.recovery.*]
    span and metrics when observability is enabled:

    {v
        manifest ──► scan ──► replay
    v}

    - {b manifest}: read [MANIFEST]; if missing or corrupt, fall back
      to [MANIFEST.bak] (a consistent, merely older, commit point —
      segments are append-only so its committed lengths are still
      valid). A foreign format version is {!Version_skew}, never a
      fallback.
    - {b scan}: per committed segment, verify the framing and CRC of
      every record inside the committed prefix; truncate any bytes
      beyond it (an interrupted append) and remove files no manifest
      acknowledges. Damage {e within} the committed prefix lost
      acknowledged data and is a typed error — recovery never silently
      repairs it.
    - {b replay}: fold the clean records into the extended relation.

    The contract the crash-recovery fuzz suite pins down: for any write
    history cut or corrupted at any byte offset, [recover] either
    returns a prefix-consistent store or raises {!Store_error} — it
    never crashes and never returns silently wrong masses. *)

type error =
  | Torn_tail of { path : string; offset : int }
      (** Committed bytes are missing or incomplete at [offset]. *)
  | Bad_checksum of { path : string; offset : int }
      (** A committed record fails its CRC. *)
  | Bad_magic of { path : string; offset : int }
      (** File header or record framing violated. *)
  | Version_skew of { path : string; found : int; supported : int }
      (** The store was written by a different format version. *)
  | No_store of { dir : string }
      (** No manifest (nor backup) at [dir]. *)
  | Bad_manifest of { path : string; detail : string }
      (** Manifest unreadable and no usable backup, or a committed
          segment is missing outright. *)
  | Bad_record of { path : string; detail : string }
      (** A record passed its CRC but does not replay (impossible
          without a writer bug or a checksum collision). *)

exception Store_error of error

val error_to_string : error -> string

type event =
  | Truncated_tail of { segment : string; dropped : int }
  | Manifest_fallback
  | Removed_stray of string

val event_to_string : event -> string

type report = {
  version : int;
  store_name : string;
  segments : int;
  records : int;
  events : event list;  (** in occurrence order *)
}

val recover :
  ?verify:bool -> Io.t -> string -> Manifest.t * Erm.Relation.t * report
(** Run the state machine over the store at [dir]. [~verify:false]
    skips record CRC and digest checks (the recovery benchmark's
    baseline, never the durability path).
    @raise Store_error as described per phase. *)
