(** Append-only segment files of extended tuples.

    A segment is a 7-byte file header followed by length-prefixed,
    CRC-32-checksummed records:

    {v
    "ERSEG1\n"
    ┌──────┬──────┬─────────────┬────────────┬─────────┐
    │ 0xE5 │ kind │ length (LE) │ crc32 (LE) │ payload │
    │ 1 B  │ 1 B  │ 4 B         │ 4 B        │ … bytes │
    └──────┴──────┴─────────────┴────────────┴─────────┘
    v}

    Kinds: ['S'] schema header text, ['T'] upsert
    ([digest '\n' tuple-row]), ['D'] delete ([digest]). The digest keys
    a record by the tuple's provenance key string
    ([Erm.Lineage.key_string]) — the identity [.why] resolves. The crc
    covers the kind byte and the payload, so a record cannot be
    reinterpreted under another kind. *)

val header : string
val overhead : int
(** Framing bytes per record (magic + kind + length + crc). *)

type record =
  | Schema_rec of string
  | Upsert of { digest : string; row : string }
  | Delete of { digest : string }

type tail =
  | Clean  (** every byte consumed *)
  | Torn of int  (** incomplete record starting at this offset *)
  | Bad_magic_at of int  (** framing violated at this offset *)
  | Bad_crc_at of int  (** record checksum mismatch at this offset *)

val digest_of_tuple : Erm.Etuple.t -> string

val encode : record list -> string
(** Record bytes only (appendable to an existing segment). *)

val encode_file : record list -> string
(** A whole segment: {!header} + {!encode}. *)

val scan : ?verify:bool -> string -> record list * int * tail
(** Parse segment bytes: the records of the longest clean prefix, its
    byte length, and how (or whether) parsing stopped. [~verify:false]
    skips the per-record CRC check — the recovery benchmark's baseline,
    never the durability path. Never raises. *)
