type t = {
  dir : string;
  io : Io.t;
  mutable manifest : Manifest.t;
  mutable relation : Erm.Relation.t;
}

(* Process-global store generation: bumped whenever any store commits,
   so caches keyed on stored relations (the execution engine's
   per-shard indexes) can invalidate without holding a store handle. *)
let generation_counter = Atomic.make 0
let generation () = Atomic.get generation_counter
let segment_name version = Printf.sprintf "%06d.seg" version

let fail e =
  if Obs.Metrics.on () then Obs.Metrics.incr "store.recovery.errors";
  if Obs.Log.on () then
    Obs.Log.record ~severity:Obs.Log.Error Obs.Log.Recovery_error
      (Recovery.error_to_string e);
  raise (Recovery.Store_error e)

(* The commit protocol's cheap self-check: after writing (and fsyncing)
   a segment, ask the filesystem how long the file really is. A short
   or torn write that raised nothing — exactly what a full disk or an
   interrupted kernel buffer leaves behind — is caught here, before the
   manifest ever acknowledges the bytes. *)
let verify_size (io : Io.t) path expected =
  let actual = io.file_size path in
  if actual <> expected then fail (Recovery.Torn_tail { path; offset = actual })

let in_span op f =
  if Obs.Trace.on () then Obs.Trace.with_span ~cat:"store" op f else f ()

let create ?(io = Io.real) ~dir ~name relation =
  in_span "store.create" (fun () ->
      io.mkdir_p dir;
      if io.exists (Manifest.file dir) then
        fail
          (Recovery.Bad_manifest
             { path = Manifest.file dir; detail = "store already exists" });
      let records =
        Segment.Schema_rec
          (Erm.Io.schema_to_string (Erm.Relation.schema relation))
        :: List.map
             (fun t ->
               Segment.Upsert
                 {
                   digest = Segment.digest_of_tuple t;
                   row = Erm.Io.tuple_to_string t;
                 })
             (Erm.Relation.tuples relation)
      in
      let content = Segment.encode_file records in
      let seg = segment_name 1 in
      let path = Filename.concat dir seg in
      io.write_file path content;
      verify_size io path (String.length content);
      let manifest =
        {
          Manifest.format = Manifest.current_format;
          name;
          version = 1;
          segments = [ (seg, String.length content) ];
        }
      in
      Manifest.write io dir manifest;
      Atomic.incr generation_counter;
      if Obs.Metrics.on () then begin
        Obs.Metrics.incr "store.commit.count";
        Obs.Metrics.incr ~by:(List.length records) "store.commit.records"
      end;
      if Obs.Log.on () then
        Obs.Log.record
          ~fields:
            [ ("dir", dir);
              ("segment", seg);
              ("records", string_of_int (List.length records)) ]
          Obs.Log.Store_commit "created store";
      { dir; io; manifest; relation })

let open_store ?(io = Io.real) ?(verify = true) dir =
  in_span "store.open" (fun () ->
      let manifest, relation, report = Recovery.recover ~verify io dir in
      ({ dir; io; manifest; relation }, report))

let relation t = t.relation
let version t = t.manifest.Manifest.version
let name t = t.manifest.Manifest.name
let dir t = t.dir
let segments t = t.manifest.Manifest.segments

(* Read-only re-scan of one committed segment, for batch auditors
   (Analysis.Sweep) that want the record history rather than the
   replayed relation. Recovery already certified these bytes when the
   store opened, so anything but a clean scan of exactly the committed
   prefix means the file changed underneath the live handle. *)
let segment_records t seg =
  match List.assoc_opt seg t.manifest.Manifest.segments with
  | None ->
      fail
        (Recovery.Bad_manifest
           { path = Filename.concat t.dir seg;
             detail = "not a committed segment" })
  | Some committed ->
      let path = Filename.concat t.dir seg in
      if not (t.io.exists path) then
        fail
          (Recovery.Bad_manifest { path; detail = "committed segment missing" });
      let content = t.io.read_file path in
      if String.length content < committed then
        fail (Recovery.Torn_tail { path; offset = String.length content });
      let records, consumed, tail =
        Segment.scan ~verify:true (String.sub content 0 committed)
      in
      (match tail with
      | Segment.Clean when consumed = committed -> ()
      | Segment.Clean | Segment.Torn _ ->
          fail (Recovery.Torn_tail { path; offset = consumed })
      | Segment.Bad_magic_at off ->
          fail (Recovery.Bad_magic { path; offset = off })
      | Segment.Bad_crc_at off ->
          fail (Recovery.Bad_checksum { path; offset = off }));
      records

let fold_segments t ~init ~f =
  List.fold_left
    (fun acc (seg, _) -> f acc seg (segment_records t seg))
    init t.manifest.Manifest.segments

(* One segment per commit: write it whole, verify its real size, then
   move the manifest — the single atomic commit point — over. Nothing
   in the store mutates until every byte is acknowledged, so a fault
   anywhere in here leaves the previous version intact on disk and in
   memory. *)
let append_commit t records new_relation =
  let next = t.manifest.Manifest.version + 1 in
  let seg = segment_name next in
  let path = Filename.concat t.dir seg in
  let content = Segment.encode_file records in
  t.io.write_file path content;
  verify_size t.io path (String.length content);
  let manifest =
    {
      t.manifest with
      Manifest.version = next;
      segments = t.manifest.Manifest.segments @ [ (seg, String.length content) ];
    }
  in
  Manifest.write t.io t.dir manifest;
  t.manifest <- manifest;
  t.relation <- new_relation;
  Atomic.incr generation_counter;
  if Obs.Metrics.on () then begin
    Obs.Metrics.incr "store.commit.count";
    Obs.Metrics.incr ~by:(List.length records) "store.commit.records";
    Obs.Metrics.incr ~by:(String.length content) "store.commit.bytes"
  end;
  if Obs.Log.on () then
    Obs.Log.record
      ~fields:
        [ ("dir", t.dir);
          ("segment", seg);
          ("records", string_of_int (List.length records)) ]
      Obs.Log.Store_commit "committed segment"
