(** CRC-32 (IEEE, reflected) — the per-record checksum of segment
    framing and the manifest trailer. Self-contained table-driven
    implementation; matches the polynomial used by zlib/gzip, so
    externally generated fixtures can be checked with standard tools. *)

val digest : string -> int32

val digest_sub : string -> pos:int -> len:int -> int32
(** Checksum of the byte range [\[pos, pos+len)]. *)

val to_hex : int32 -> string
(** Fixed-width 8-digit lower-case hex. *)

val of_hex : string -> int32 option
(** Inverse of {!to_hex}; [None] unless the input is exactly 8 hex
    digits. *)
