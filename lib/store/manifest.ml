(* The store's commit point: a small text file naming the format
   version, the relation, the logical store version, and every segment
   with its committed byte length, sealed by a trailing CRC line.

     eridb-store 1
     name merged
     version 3
     segment 000001.seg 412
     segment 000003.seg 97
     crc 1a2b3c4d

   Written bak → temp → fsync → atomic rename: the previous manifest
   survives as MANIFEST.bak, so a corrupted current manifest falls back
   to the last consistent version (segment committed lengths only ever
   grow stale, never wrong, because segments are append-only and
   truncated back to their committed length on recovery). *)

type t = {
  format : int;
  name : string;
  version : int;
  segments : (string * int) list;
}

type error = Skew of int | Malformed of string

let current_format = 1
let file dir = Filename.concat dir "MANIFEST"
let bak_file dir = Filename.concat dir "MANIFEST.bak"
let tmp_file dir = Filename.concat dir "MANIFEST.tmp"

let body_to_string t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "eridb-store %d\n" t.format);
  Buffer.add_string buf (Printf.sprintf "name %s\n" t.name);
  Buffer.add_string buf (Printf.sprintf "version %d\n" t.version);
  List.iter
    (fun (seg, len) ->
      Buffer.add_string buf (Printf.sprintf "segment %s %d\n" seg len))
    t.segments;
  Buffer.contents buf

let to_string t =
  let body = body_to_string t in
  body ^ "crc " ^ Crc32.to_hex (Crc32.digest body) ^ "\n"

let of_string s =
  let lines = String.split_on_char '\n' s in
  (* Split off the sealing crc line; everything before it, verbatim, is
     what the crc covers. *)
  let rec split_crc acc = function
    | [ crc; "" ] | [ crc ] -> Some (List.rev acc, crc)
    | l :: rest -> split_crc (l :: acc) rest
    | [] -> None
  in
  match split_crc [] lines with
  | None -> Error (Malformed "empty manifest")
  | Some (body_lines, crc_line) -> (
      let body = String.concat "\n" body_lines ^ "\n" in
      let check_crc () =
        match String.split_on_char ' ' crc_line with
        | [ "crc"; hex ] -> (
            match Crc32.of_hex hex with
            | Some c when Int32.equal c (Crc32.digest body) -> Ok ()
            | Some _ -> Error (Malformed "manifest crc mismatch")
            | None -> Error (Malformed "unreadable manifest crc"))
        | _ -> Error (Malformed "missing manifest crc line")
      in
      match check_crc () with
      | Error _ as e -> e
      | Ok () -> (
          let parse_line acc line =
            match acc with
            | Error _ -> acc
            | Ok m -> (
                match String.split_on_char ' ' line with
                | [ "eridb-store"; v ] -> (
                    match int_of_string_opt v with
                    | Some f -> Ok { m with format = f }
                    | None -> Error (Malformed "unreadable format version"))
                | "name" :: rest ->
                    Ok { m with name = String.concat " " rest }
                | [ "version"; v ] -> (
                    match int_of_string_opt v with
                    | Some n -> Ok { m with version = n }
                    | None -> Error (Malformed "unreadable store version"))
                | [ "segment"; seg; len ] -> (
                    match int_of_string_opt len with
                    | Some n when n >= String.length Segment.header ->
                        Ok { m with segments = m.segments @ [ (seg, n) ] }
                    | Some _ | None ->
                        Error (Malformed ("bad segment length for " ^ seg)))
                | [ "" ] -> Ok m
                | _ -> Error (Malformed ("unknown manifest line: " ^ line)))
          in
          match
            List.fold_left parse_line
              (Ok { format = 0; name = ""; version = 0; segments = [] })
              body_lines
          with
          | Error _ as e -> e
          | Ok m ->
              if m.format <> current_format then Error (Skew m.format)
              else if m.version < 1 || m.name = "" then
                Error (Malformed "incomplete manifest")
              else Ok m))

(* bak → temp → atomic rename. The bak copy is made from the manifest
   being replaced, so after a torn or bit-flipped manifest write the
   previous version is still recoverable byte-for-byte. *)
let write (io : Io.t) dir t =
  if io.exists (file dir) then
    io.write_file (bak_file dir) (io.read_file (file dir));
  io.write_file (tmp_file dir) (to_string t);
  io.rename (tmp_file dir) (file dir)
