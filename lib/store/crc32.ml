(* Table-driven CRC-32 (IEEE 802.3 polynomial, reflected), the checksum
   framing every segment record carries. Pure OCaml — the store must not
   pull in external dependencies for 30 lines of arithmetic. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let digest_sub s ~pos ~len =
  let t = Lazy.force table in
  let crc = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int
        (Int32.logand
           (Int32.logxor !crc (Int32.of_int (Char.code s.[i])))
           0xFFl)
    in
    crc := Int32.logxor t.(idx) (Int32.shift_right_logical !crc 8)
  done;
  Int32.logxor !crc 0xFFFFFFFFl

let digest s = digest_sub s ~pos:0 ~len:(String.length s)
let to_hex c = Printf.sprintf "%08lx" c

let of_hex s =
  if String.length s <> 8 then None
  else
    match Int64.of_string_opt ("0x" ^ s) with
    | Some v when Int64.unsigned_compare v 0xFFFFFFFFL <= 0 ->
        Some (Int64.to_int32 v)
    | Some _ | None -> None
