(** The store's commit point: format version, relation name, logical
    version, and each segment's committed byte length, sealed with a
    CRC trailer and replaced via bak → temp → fsync → atomic rename. *)

type t = {
  format : int;
  name : string;
  version : int;
  segments : (string * int) list;  (** (file name, committed bytes) *)
}

type error =
  | Skew of int  (** the on-disk format version, ≠ {!current_format} *)
  | Malformed of string

val current_format : int
val file : string -> string
val bak_file : string -> string
val tmp_file : string -> string
val to_string : t -> string
val of_string : string -> (t, error) result

val write : Io.t -> string -> t -> unit
(** Preserve the current manifest as [MANIFEST.bak], then write
    [MANIFEST.tmp] and atomically rename it over [MANIFEST]. Durable
    once it returns (file and directory fsyncs via {!Io.t}). *)
