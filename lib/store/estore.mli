(** The crash-safe, versioned evidence store.

    A store directory holds append-only segment files ({!Segment}) and
    a manifest ({!Manifest}) that is the single atomic commit point.
    Every commit writes one new segment, verifies its on-disk size
    (catching silent short/torn writes before anything is
    acknowledged), and then renames a fresh manifest into place; a
    fault at any point leaves the previous version intact. Opening
    always runs the {!Recovery} state machine. *)

type t

val generation : unit -> int
(** Process-global commit counter: bumped whenever {e any} store
    commits. Caches derived from stored relations (e.g. the execution
    engine's per-shard indexes) key on this to invalidate on delta
    application. *)

val create : ?io:Io.t -> dir:string -> name:string -> Erm.Relation.t -> t
(** Materialize a relation as version 1 of a new store.
    @raise Recovery.Store_error if a store already exists at [dir] or
    the initial segment cannot be verified; @raise Io.Fault on injected
    or real I/O failure. *)

val open_store : ?io:Io.t -> ?verify:bool -> string -> t * Recovery.report
(** Open via {!Recovery.recover}. [~verify:false] skips CRC/digest
    verification (benchmark baseline only). *)

val relation : t -> Erm.Relation.t
(** The current merged relation (replayed at open, maintained
    incrementally by {!Delta.apply}). *)

val version : t -> int
val name : t -> string
val dir : t -> string

val segments : t -> (string * int) list
(** The committed segments in manifest (= commit) order, as
    [(file, bytes)] pairs — the read-only view batch auditors iterate.
    Never touches the disk; this is the manifest's own list. *)

val segment_records : t -> string -> Segment.record list
(** Re-read one committed segment through the store's I/O seam and
    return its verified records. The segment was CRC-checked when the
    manifest acknowledged it, so a dirty tail here means the file
    changed underneath a live store.
    @raise Recovery.Store_error on a missing or corrupt segment;
    @raise Io.Fault on injected or real I/O failure. *)

val fold_segments :
  t -> init:'a -> f:('a -> string -> Segment.record list -> 'a) -> 'a
(** Fold {!segment_records} over {!segments} in commit order. *)

val append_commit : t -> Segment.record list -> Erm.Relation.t -> unit
(** Commit one delta's write set as a new segment + manifest version
    and install [new_relation] as the current relation. Exposed for
    {!Delta}; not a general mutation API.
    @raise Recovery.Store_error / @raise Io.Fault as {!create}. *)
