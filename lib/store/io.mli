(** The store's I/O seam.

    Every byte the persistent store reads or writes goes through a
    record of closures, so tests and the [federate --store-fault-plan]
    chaos flag can interpose a {e deterministic} disk-fault injector —
    the I/O counterpart of [Federation.Fault]'s seeded source chaos.
    The real implementation carries the store's durability discipline:
    data writes are [fsync]ed before close, and renames/creates are
    followed by a directory fsync so the entry itself survives a
    crash. *)

type fault_code = Eio | Enospc

exception Fault of { op : string; path : string; code : fault_code }
(** The typed error an injected (or, for the real backend, translated)
    I/O failure raises. [op] is ["write"], ["append"], ["rename"] or an
    ["…fsync"] suffix thereof. *)

val code_to_string : fault_code -> string

val fault_message : exn -> string option
(** Render {!Fault} for CLI error reporting; [None] for other
    exceptions. *)

type t = {
  read_file : string -> string;
  write_file : string -> string -> unit;
      (** Create/truncate, write all, fsync file and directory. *)
  append_file : string -> string -> unit;  (** Append all, fsync. *)
  rename : string -> string -> unit;  (** Atomic; fsyncs the directory. *)
  remove : string -> unit;
  mkdir_p : string -> unit;
  exists : string -> bool;
  file_size : string -> int;
  truncate_file : string -> int -> unit;
  list_dir : string -> string list;
}

val real : t

(** {2 Deterministic fault injection} *)

type spec = {
  eio_rate : float;  (** fail before a single byte is written *)
  enospc_rate : float;  (** write a random prefix, then fail *)
  short_rate : float;  (** silently write a random prefix *)
  torn_at : int option;  (** deterministically cut every write at byte k *)
  flip_rate : float;  (** flip one random bit of the written content *)
  fsync_eio_rate : float;  (** data written, the flush fails *)
  rename_fail_rate : float;  (** rename fails, target untouched *)
}

val spec_default : spec
(** All rates zero, no torn point — a transparent wrapper. *)

type plan = (string option * spec) list
(** Per-file-class specs; [None] is the [*] default entry. *)

val classify : string -> string
(** File class of a path: ["manifest"] ([MANIFEST*]), ["segment"]
    ([*.seg]) or ["other"]. *)

val plan_of_string : string -> (plan, string) result
(** Same surface syntax as [Federation.Fault.plan_of_string]:
    [class:key=value,…;class:…] with [*] as the default class. Keys:
    [eio], [enospc], [short], [flip], [fsync_eio], [rename] (rates in
    [0,1]) and [torn_at] (byte offset). Example:
    [segment:torn_at=64;manifest:rename=1]. *)

val spec_for : plan -> string -> spec
(** Spec for a file class: exact entry, else the [*] entry, else
    {!spec_default}. *)

val faulty : seed:int -> plan:plan -> t -> t
(** Wrap a backend with seeded fault injection. One splitmix64 stream
    per file class (seeded [seed lxor hash class]), so the decision
    sequence for segment writes is independent of manifest traffic —
    the same per-name stream discipline as [Federation.Fault.wrap].
    Short and torn writes return {e silently} (a crashed process never
    observes its own torn write); EIO/ENOSPC/fsync/rename failures
    raise {!Fault}. *)
