type fault_code = Eio | Enospc

exception Fault of { op : string; path : string; code : fault_code }

let code_to_string = function Eio -> "EIO" | Enospc -> "ENOSPC"

let fault_message = function
  | Fault { op; path; code } ->
      Some (Printf.sprintf "store i/o fault: %s(%s): %s" op path
              (code_to_string code))
  | _ -> None

type t = {
  read_file : string -> string;
  write_file : string -> string -> unit;
  append_file : string -> string -> unit;
  rename : string -> string -> unit;
  remove : string -> unit;
  mkdir_p : string -> unit;
  exists : string -> bool;
  file_size : string -> int;
  truncate_file : string -> int -> unit;
  list_dir : string -> string list;
}

(* --- the real thing ------------------------------------------------- *)

let really_read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Durability on a POSIX filesystem needs the directory entry synced as
   well as the file contents; a missing directory fsync is exactly the
   window where a crash loses a freshly renamed manifest. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let write_fd path flags content =
  let fd = Unix.openfile path flags 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let n = String.length content in
      let written = ref 0 in
      while !written < n do
        written :=
          !written + Unix.write_substring fd content !written (n - !written)
      done;
      Unix.fsync fd)

let real =
  {
    read_file = really_read;
    write_file =
      (fun path content ->
        write_fd path Unix.[ O_WRONLY; O_CREAT; O_TRUNC ] content;
        fsync_dir (Filename.dirname path));
    append_file =
      (fun path content ->
        write_fd path Unix.[ O_WRONLY; O_CREAT; O_APPEND ] content);
    rename =
      (fun src dst ->
        Sys.rename src dst;
        fsync_dir (Filename.dirname dst));
    remove = Sys.remove;
    mkdir_p =
      (fun dir ->
        let rec mk d =
          if not (Sys.file_exists d) then begin
            mk (Filename.dirname d);
            try Unix.mkdir d 0o755
            with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
          end
        in
        mk dir);
    exists = Sys.file_exists;
    file_size =
      (fun path ->
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> in_channel_length ic));
    truncate_file = (fun path len -> Unix.truncate path len);
    list_dir = (fun dir -> Array.to_list (Sys.readdir dir));
  }

(* --- deterministic fault injection ---------------------------------- *)

type spec = {
  eio_rate : float;  (** fail before a single byte is written *)
  enospc_rate : float;  (** write a random prefix, then fail *)
  short_rate : float;  (** silently write a random prefix *)
  torn_at : int option;  (** deterministically cut every write at byte k *)
  flip_rate : float;  (** flip one random bit of the written content *)
  fsync_eio_rate : float;  (** data written, the flush fails *)
  rename_fail_rate : float;  (** rename fails, target untouched *)
}

let spec_default =
  {
    eio_rate = 0.0;
    enospc_rate = 0.0;
    short_rate = 0.0;
    torn_at = None;
    flip_rate = 0.0;
    fsync_eio_rate = 0.0;
    rename_fail_rate = 0.0;
  }

type plan = (string option * spec) list

let classify path =
  let base = Filename.basename path in
  if String.length base >= 8 && String.sub base 0 8 = "MANIFEST" then
    "manifest"
  else if Filename.check_suffix base ".seg" then "segment"
  else "other"

(* Same surface syntax as Federation.Fault.plan_of_string:
   [class:key=value,key=value;class:…], where the class is [segment],
   [manifest], [other] or [*] (the default entry). *)
let plan_of_string s =
  let ( let* ) = Result.bind in
  let parse_rate key v =
    match float_of_string_opt v with
    | Some f when f >= 0.0 && f <= 1.0 -> Ok f
    | Some _ | None ->
        Error (Printf.sprintf "%s needs a rate in [0,1], got %s" key v)
  in
  let parse_entry entry =
    match String.index_opt entry ':' with
    | None -> Error (Printf.sprintf "missing ':' in %S" entry)
    | Some i ->
        let name = String.trim (String.sub entry 0 i) in
        let name = if name = "*" then None else Some name in
        let body =
          String.sub entry (i + 1) (String.length entry - i - 1)
        in
        let* spec =
          List.fold_left
            (fun acc kv ->
              let* spec = acc in
              let kv = String.trim kv in
              if kv = "" then Ok spec
              else
                match String.index_opt kv '=' with
                | None -> Error (Printf.sprintf "missing '=' in %S" kv)
                | Some j -> (
                    let key = String.sub kv 0 j in
                    let v =
                      String.sub kv (j + 1) (String.length kv - j - 1)
                    in
                    match key with
                    | "eio" ->
                        let* r = parse_rate key v in
                        Ok { spec with eio_rate = r }
                    | "enospc" ->
                        let* r = parse_rate key v in
                        Ok { spec with enospc_rate = r }
                    | "short" ->
                        let* r = parse_rate key v in
                        Ok { spec with short_rate = r }
                    | "flip" ->
                        let* r = parse_rate key v in
                        Ok { spec with flip_rate = r }
                    | "fsync_eio" ->
                        let* r = parse_rate key v in
                        Ok { spec with fsync_eio_rate = r }
                    | "rename" ->
                        let* r = parse_rate key v in
                        Ok { spec with rename_fail_rate = r }
                    | "torn_at" -> (
                        match int_of_string_opt v with
                        | Some k when k >= 0 ->
                            Ok { spec with torn_at = Some k }
                        | Some _ | None ->
                            Error
                              (Printf.sprintf
                                 "torn_at needs a byte offset, got %s" v))
                    | _ -> Error (Printf.sprintf "unknown fault key %S" key)))
            (Ok spec_default)
            (String.split_on_char ',' body)
        in
        Ok (name, spec)
  in
  List.fold_left
    (fun acc entry ->
      let* plan = acc in
      let entry = String.trim entry in
      if entry = "" then Ok plan
      else
        let* e = parse_entry entry in
        Ok (plan @ [ e ]))
    (Ok [])
    (String.split_on_char ';' s)

(* Exact class entries win over the [*] default regardless of order. *)
let spec_for plan cls =
  match
    List.find_opt
      (function Some n, _ -> String.equal n cls | None, _ -> false)
      plan
  with
  | Some (_, s) -> s
  | None -> (
      match List.find_opt (fun (n, _) -> n = None) plan with
      | Some (_, s) -> s
      | None -> spec_default)

(* Self-contained splitmix64 (same generator family as Workload.Rng) so
   the store does not depend on the workload library. One stream per
   file class, seeded [seed lxor hash class] in the style of
   Federation.Fault's per-source streams: the fault sequence hitting
   segments is independent of how often the manifest is written. *)
let rng_float state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  Int64.to_float (shift_right_logical z 11) /. 9007199254740992.0

let rng_int state bound =
  if bound <= 0 then 0 else int_of_float (rng_float state *. float bound)

let faulty ~seed ~plan io =
  let streams : (string, int64 ref) Hashtbl.t = Hashtbl.create 4 in
  let stream cls =
    match Hashtbl.find_opt streams cls with
    | Some s -> s
    | None ->
        let s = ref (Int64.of_int (seed lxor Hashtbl.hash cls)) in
        Hashtbl.add streams cls s;
        s
  in
  let roll rng rate = rate > 0.0 && rng_float rng < rate in
  let flip_one rng content =
    if String.length content = 0 then content
    else begin
      let b = Bytes.of_string content in
      let i = rng_int rng (Bytes.length b) in
      let bit = rng_int rng 8 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      Bytes.to_string b
    end
  in
  (* One decision procedure for both write paths: which prefix lands on
     disk, whether it is mangled, and which typed fault (if any) the
     caller sees. Short and torn writes are silent — a crashed process
     does not get to observe its own torn write; the commit protocol's
     size verification and the recovery scan are what must catch it. *)
  let inject op path content write =
    let spec = spec_for plan (classify path) in
    let rng = stream (classify path) in
    if roll rng spec.eio_rate then
      raise (Fault { op; path; code = Eio });
    let cut =
      match spec.torn_at with
      | Some k -> Some (min k (String.length content))
      | None ->
          if roll rng spec.short_rate then
            Some (rng_int rng (String.length content))
          else None
    in
    let enospc = roll rng spec.enospc_rate in
    let cut =
      if enospc && cut = None then Some (rng_int rng (String.length content))
      else cut
    in
    let payload =
      match cut with
      | Some k -> String.sub content 0 k
      | None -> content
    in
    let payload =
      if roll rng spec.flip_rate then flip_one rng payload else payload
    in
    write path payload;
    if enospc then raise (Fault { op; path; code = Enospc });
    if roll rng spec.fsync_eio_rate then
      raise (Fault { op = op ^ ".fsync"; path; code = Eio })
  in
  {
    io with
    write_file = (fun path c -> inject "write" path c io.write_file);
    append_file = (fun path c -> inject "append" path c io.append_file);
    rename =
      (fun src dst ->
        let spec = spec_for plan (classify dst) in
        let rng = stream (classify dst) in
        if roll rng spec.rename_fail_rate then
          raise (Fault { op = "rename"; path = dst; code = Eio });
        io.rename src dst);
  }
