module M = Integration.Multi

type outcome = {
  relation : Erm.Relation.t;
  conflicts : Erm.Ops.conflict list;
  upserts : int;
  deletes : int;
  version : int;
}

(* Fold one source update into the stored merged relation in O(changed
   entities) — Dempster's rule is associative, so absorbing the delta
   into the stored merge equals re-integrating every source from
   scratch with the delta appended (bit-exact; the conformance suite's
   sixth leg). The stored relation registers as a provenance source
   under the store's name so .why resolves delta derivations to it. *)
let apply t ~name delta =
  let body () =
    if Obs.Provenance.on () then
      Erm.Lineage.register_relation ~name:(Estore.name t) (Estore.relation t);
    let merged, conflicts, changes =
      M.absorb_delta ~into:(Estore.relation t)
        { M.source_name = name; source_relation = delta }
    in
    let records =
      List.map
        (function
          | M.Changed tu ->
              Segment.Upsert
                {
                  digest = Segment.digest_of_tuple tu;
                  row = Erm.Io.tuple_to_string tu;
                }
          | M.Dropped old ->
              Segment.Delete { digest = Segment.digest_of_tuple old })
        changes
    in
    let upserts =
      List.length (List.filter (function M.Changed _ -> true | _ -> false) changes)
    in
    let deletes = List.length changes - upserts in
    if records <> [] then Estore.append_commit t records merged;
    if Obs.Metrics.on () then begin
      Obs.Metrics.incr ~by:upserts "store.delta.upserts";
      Obs.Metrics.incr ~by:deletes "store.delta.deletes";
      Obs.Metrics.incr ~by:(List.length conflicts) "store.delta.conflicts"
    end;
    { relation = merged; conflicts; upserts; deletes;
      version = Estore.version t }
  in
  if Obs.Trace.on () then
    Obs.Trace.with_span ~cat:"store"
      ~args:[ ("source", name) ]
      "store.delta" body
  else body ()
