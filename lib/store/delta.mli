(** Incremental integration: fold a source update into a stored merged
    relation in O(changed entities).

    Because Dempster's rule is commutative and associative,
    [apply store ~name delta] produces the same merged relation —
    bit-exact, [Float.equal] supports — as re-running
    [Integration.Multi.integrate] from scratch over the original
    sources with [delta] appended (proved by the sixth conformance
    leg). Only the delta's keys are visited; the write set (upserts for
    new/merged tuples, deletes for conflict-dropped ones) commits as
    one new segment via {!Estore.append_commit}. Provenance Step nodes
    record the absorption exactly as a full integration would, so
    [.why] explains delta-derived entities identically. *)

type outcome = {
  relation : Erm.Relation.t;  (** the merged relation after the fold *)
  conflicts : Erm.Ops.conflict list;
  upserts : int;  (** tuples added or re-merged *)
  deletes : int;  (** stored tuples dropped by total conflict / sn = 0 *)
  version : int;  (** store version after the commit *)
}

val apply : Estore.t -> name:string -> Erm.Relation.t -> outcome
(** No-change deltas (empty write set) do not bump the store version.
    @raise Erm.Ops.Incompatible_schemas when the delta's schema is not
    union-compatible with the stored relation;
    @raise Recovery.Store_error / @raise Io.Fault on commit failure —
    the store (on disk and in memory) is left at its previous
    version. *)
