(** Memoized evidence combination, keyed by rule policy (extension).

    Integration workloads combine the same evidence pairs over and over:
    the Figure-1 pipeline re-merges identical survey-derived mass
    functions for every query over the integrated view, and repeated
    extended unions of the same sources recompute every cell merge. This
    cache keys on the {e pair} of operand mass functions (canonically
    ordered — every supported rule is commutative) {e together with} the
    {!Rule.policy} in force, and stores the full {!Mass.S.outcome}
    (combined result, quarantine, or total conflict), so a cached replay
    is indistinguishable from a fresh combination.

    Because {!Rule.policy_key} is part of the key, entries computed
    under one rule or κ-threshold are never served to a request made
    under another — switching the session rule mid-run is always safe
    with a warm cache.

    Lookups use {!Mass.S.compare}'s structural order: operands within
    float tolerance of each other but not bit-equal occupy separate
    entries — a duplicate entry costs memory, never correctness.

    The cache is mutable and unsynchronized; share one per evaluation
    context, not across domains. *)

type t

val create : ?kernel:Mass.F.kernel -> unit -> t
(** [kernel] is the per-rule combination run on a miss (default
    {!Mass.F.combine_rule_opt}). The sharded engine passes
    {!Flat_mass.kernel} here; because the flat kernels are bit-exact
    against the map kernels, the choice is unobservable in results and
    in hit/miss behavior — only in speed. *)

val combine_policy :
  ?policy:Rule.policy -> t -> Mass.F.t -> Mass.F.t -> Mass.F.outcome
(** Memoized {!Mass.F.combine_policy} under [policy] (default
    {!Rule.current}). On a hit with provenance recording on, the stored
    outcome's lineage is re-registered via {!Mass.F.relink} so a warm
    replay yields the same derivation a cold run would — no rule is
    ever re-executed. *)

val combine_policy_exn :
  ?policy:Rule.policy -> t -> Mass.F.t -> Mass.F.t -> Mass.F.t
(** Like {!combine_policy} but unwrapped.
    @raise Mass.F.Total_conflict on a [Conflicted] outcome.
    @raise Mass.F.Quarantined_cell on a [Quarantined] outcome. *)

val combine_opt : t -> Mass.F.t -> Mass.F.t -> (Mass.F.t * float) option
(** Memoized {!Mass.F.combine_opt} — plain Dempster, regardless of the
    session rule: [Some (m, kappa)] or [None] on total conflict. *)

val combine : t -> Mass.F.t -> Mass.F.t -> Mass.F.t
(** Memoized {!Mass.F.combine}. @raise Mass.F.Total_conflict as the
    uncached rule does (the verdict itself is cached). *)

val hits : t -> int
val misses : t -> int

val size : t -> int
(** Number of distinct (policy, operand pair) entries stored. *)

val reset : t -> unit
