(** Memoized Dempster combination (extension).

    Integration workloads combine the same evidence pairs over and over:
    the Figure-1 pipeline re-merges identical survey-derived mass
    functions for every query over the integrated view, and repeated
    extended unions of the same sources recompute every cell merge. This
    cache keys on the {e pair} of operand mass functions (canonically
    ordered — Dempster's rule is commutative) and stores the full
    [combine_opt] outcome, including total conflict, so a cached replay
    is indistinguishable from a fresh combination.

    Lookups use {!Mass.S.compare}'s structural order: operands within
    float tolerance of each other but not bit-equal occupy separate
    entries — a duplicate entry costs memory, never correctness.

    The cache is mutable and unsynchronized; share one per evaluation
    context, not across domains. *)

type t

val create :
  ?kernel:(Mass.F.t -> Mass.F.t -> (Mass.F.t * float) option) -> unit -> t
(** [kernel] is the combination run on a miss (default
    {!Mass.F.combine_opt}). The sharded engine passes
    {!Flat_mass.kernel} here; because the flat kernel is bit-exact
    against the map kernel, the choice is unobservable in results and
    in hit/miss behavior — only in speed. *)

val combine_opt : t -> Mass.F.t -> Mass.F.t -> (Mass.F.t * float) option
(** Memoized {!Mass.F.combine_opt}: [Some (m, kappa)] or [None] on total
    conflict. *)

val combine : t -> Mass.F.t -> Mass.F.t -> Mass.F.t
(** Memoized {!Mass.F.combine}. @raise Mass.F.Total_conflict as the
    uncached rule does (the verdict itself is cached). *)

val hits : t -> int
val misses : t -> int

val size : t -> int
(** Number of distinct operand pairs stored. *)

val reset : t -> unit
