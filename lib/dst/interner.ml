module Vm = Map.Make (Vset)
module Em = Map.Make (Value)

type t = {
  frame : Domain.t;
  small : bool; (* |Ω| ≤ 62: sets carry int bitmasks *)
  elem_bit : int Em.t; (* value → bit position, small frames only *)
  mutable sets : Vset.t array; (* id → set *)
  mutable masks : int array; (* id → bitmask, small frames only *)
  mutable count : int;
  mutable by_set : int Vm.t; (* set → id *)
  by_mask : (int, int) Hashtbl.t; (* mask → id, small frames only *)
  inter_memo : (int, int) Hashtbl.t; (* packed id pair → id, -1 = ∅ *)
  union_memo : (int, int) Hashtbl.t; (* packed id pair → id, never ∅ *)
  mutable acc : float array; (* combine scratch, owned by Flat_mass *)
  mutable touched : int array; (* combine scratch, owned by Flat_mass *)
  mutable mark : int array; (* generation stamps over acc entries *)
  mutable gen : int;
}

let create frame =
  let n = Domain.size frame in
  let small = n <= 62 in
  let elem_bit =
    if not small then Em.empty
    else
      let next = ref 0 in
      Vset.fold
        (fun v m ->
          let b = !next in
          incr next;
          Em.add v b m)
        (Domain.values frame) Em.empty
  in
  { frame;
    small;
    elem_bit;
    sets = Array.make 16 Vset.empty;
    masks = Array.make 16 0;
    count = 0;
    by_set = Vm.empty;
    by_mask = Hashtbl.create 64;
    inter_memo = Hashtbl.create 256;
    union_memo = Hashtbl.create 256;
    acc = Array.make 16 0.0;
    touched = Array.make 16 0;
    mark = Array.make 16 0;
    gen = 0 }

let frame t = t.frame
let size t = t.count

let mask_of_set t s =
  Vset.fold (fun v m -> m lor (1 lsl Em.find v t.elem_bit)) s 0

let grow t =
  let cap = Array.length t.sets in
  if t.count >= cap then begin
    let cap' = cap * 2 in
    let sets = Array.make cap' Vset.empty in
    Array.blit t.sets 0 sets 0 cap;
    t.sets <- sets;
    let masks = Array.make cap' 0 in
    Array.blit t.masks 0 masks 0 cap;
    t.masks <- masks
  end

let alloc t s mask =
  grow t;
  let id = t.count in
  t.sets.(id) <- s;
  t.masks.(id) <- mask;
  t.count <- id + 1;
  t.by_set <- Vm.add s id t.by_set;
  if t.small then Hashtbl.replace t.by_mask mask id;
  id

let intern t s =
  match Vm.find s t.by_set with
  | id -> id
  | exception Not_found ->
      if Vset.is_empty s then
        invalid_arg "Interner.intern: empty focal set";
      if not (Domain.subset s t.frame) then
        invalid_arg
          (Printf.sprintf "Interner.intern: set outside frame %s"
             (Domain.name t.frame));
      alloc t s (if t.small then mask_of_set t s else 0)

let set_of t id =
  if id < 0 || id >= t.count then invalid_arg "Interner.set_of: bad id";
  t.sets.(id)

(* Intern a set already known well-formed (an intersection of two interned
   sets), with its mask precomputed on small frames. *)
let intern_known t s mask =
  match Vm.find s t.by_set with
  | id -> id
  | exception Not_found -> alloc t s mask

let intern_mask t mask =
  match Hashtbl.find t.by_mask mask with
  | id -> id
  | exception Not_found ->
      let s =
        Vset.filter
          (fun v -> mask land (1 lsl Em.find v t.elem_bit) <> 0)
          (Domain.values t.frame)
      in
      intern_known t s mask

let pack i j = if i <= j then (i lsl 31) lor j else (j lsl 31) lor i

let inter t i j =
  if i = j then i
  else
    let key = pack i j in
    match Hashtbl.find t.inter_memo key with
    | id -> id
    | exception Not_found ->
        let id =
          if t.small then
            let m = t.masks.(i) land t.masks.(j) in
            if m = 0 then -1 else intern_mask t m
          else
            let s = Vset.inter t.sets.(i) t.sets.(j) in
            if Vset.is_empty s then -1 else intern_known t s 0
        in
        Hashtbl.add t.inter_memo key id;
        id

(* Unions of interned sets are never empty, so there is no -1 case. The
   Dubois-Prade and disjunctive flat kernels accumulate on unions the
   way Dempster's accumulates on intersections. *)
let union t i j =
  if i = j then i
  else
    let key = pack i j in
    match Hashtbl.find t.union_memo key with
    | id -> id
    | exception Not_found ->
        let id =
          if t.small then intern_mask t (t.masks.(i) lor t.masks.(j))
          else intern_known t (Vset.union t.sets.(i) t.sets.(j)) 0
        in
        Hashtbl.add t.union_memo key id;
        id

let subset t i a =
  if Vset.is_empty a then false (* interned sets are never empty *)
  else if t.small then
    let ma = t.masks.(intern t a) in
    t.masks.(i) land lnot ma = 0
  else Vset.subset t.sets.(i) a

let disjoint t i a =
  if Vset.is_empty a then true
  else if t.small then t.masks.(i) land t.masks.(intern t a) = 0
  else Vset.disjoint t.sets.(i) a

(* --- combine scratch (used by Flat_mass, see its .ml) ----------------- *)

let grown arr n zero =
  let cap = Array.length arr in
  if n <= cap then arr
  else
    let arr' = Array.make (max (cap * 2) n) zero in
    Array.blit arr 0 arr' 0 cap;
    arr'

let scratch_acc t =
  t.acc <- grown t.acc t.count 0.0;
  t.acc

let scratch_touched t =
  t.touched <- grown t.touched t.count 0;
  t.touched

let scratch_mark t =
  t.mark <- grown t.mark t.count 0;
  t.mark

(* Fresh marks are 0 and generations start at 1, so a grown (zeroed)
   mark entry can never collide with a live generation. *)
let next_gen t =
  t.gen <- t.gen + 1;
  t.gen
