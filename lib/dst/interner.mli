(** Dense interning of focal sets over one frame of discernment.

    The paper's model guarantees small finite frames per attribute, so
    every focal set a computation can ever touch lives in the powerset
    of one known Ω. Interning gives each distinct {!Vset.t} a dense
    integer id, which is what lets {!Flat_mass} store a mass function
    as a pair of packed arrays and run Dempster's rule without building
    sets in the inner loop.

    Ids are allocated first-come-first-served and are {e stable}:
    interning the same set again always returns the same id for the
    lifetime of the table. Pairwise intersections are memoized by id
    pair; for frames with at most 62 values each set also carries an
    int bitmask, so a missed intersection costs one [land] instead of a
    tree walk.

    A table is {e mutable and unsynchronized} — share one per
    evaluation context (e.g. per execution shard), never across
    domains. *)

type t

val create : Domain.t -> t
(** A fresh table for the given frame with no interned sets. *)

val frame : t -> Domain.t

val size : t -> int
(** Number of sets interned so far (also the next id). *)

val intern : t -> Vset.t -> int
(** The id for a set, allocating one on first sight. Re-interning is
    the identity: [intern t s = intern t s] for the table's lifetime.
    @raise Invalid_argument if the set is empty or outside the frame. *)

val set_of : t -> int -> Vset.t
(** The set behind an id. @raise Invalid_argument if out of range. *)

val inter : t -> int -> int -> int
(** [inter t i j] is the id of [set_of t i ∩ set_of t j], interning the
    intersection on first sight, or [-1] when it is empty. Memoized per
    (unordered) id pair: the steady state is one hash probe, no
    allocation. *)

val union : t -> int -> int -> int
(** [union t i j] is the id of [set_of t i ∪ set_of t j], interning the
    union on first sight (never empty, so always a real id). Memoized
    per (unordered) id pair like {!inter}. *)

val subset : t -> int -> Vset.t -> bool
(** [subset t i a]: is [set_of t i ⊆ a]? One mask test on small
    frames. The query set is interned on first use. *)

val disjoint : t -> int -> Vset.t -> bool
(** [disjoint t i a]: is [set_of t i ∩ a = ∅]? *)

(**/**)

(* Scratch buffers for {!Flat_mass}'s combine kernel — persistent,
   at least [size t] long on return, contents preserved across growth.
   Part of what makes a table single-threaded. *)

val scratch_acc : t -> float array
val scratch_touched : t -> int array
val scratch_mark : t -> int array

val next_gen : t -> int
(* A fresh positive generation stamp; mark entries from prior combines
   (or freshly grown, zeroed ones) never equal it. *)
