let log2 x = Float.log x /. Float.log 2.0

let nonspecificity m =
  List.fold_left
    (fun acc (set, x) -> acc +. (x *. log2 (float_of_int (Vset.cardinal set))))
    0.0 (Mass.F.focals m)

let dissonance m =
  List.fold_left
    (fun acc (set, x) ->
      let pls = Mass.F.pls m set in
      (* Pls of a focal element is at least its own mass, hence > 0. *)
      acc -. (x *. log2 pls))
    0.0 (Mass.F.focals m)

let pignistic_entropy m =
  List.fold_left
    (fun acc (_, p) -> if p <= 0.0 then acc else acc -. (p *. log2 p))
    0.0 (Mass.F.pignistic m)

let pignistic_distance m1 m2 =
  if not (Domain.equal (Mass.F.frame m1) (Mass.F.frame m2)) then
    raise (Mass.F.Frame_mismatch (Mass.F.frame m1, Mass.F.frame m2))
  else
    let p1 = Mass.F.pignistic m1 and p2 = Mass.F.pignistic m2 in
    let prob dist v =
      match List.find_opt (fun (w, _) -> Value.equal v w) dist with
      | Some (_, p) -> p
      | None -> 0.0
    in
    Vset.fold
      (fun v acc -> acc +. Float.abs (prob p1 v -. prob p2 v))
      (Domain.values (Mass.F.frame m1))
      0.0
    /. 2.0

let total_uncertainty m = nonspecificity m +. dissonance m

let conflict = Mass.F.conflict
