module Pair = struct
  type t = Mass.F.t * Mass.F.t

  let compare (a1, b1) (a2, b2) =
    let c = Mass.F.compare a1 a2 in
    if c <> 0 then c else Mass.F.compare b1 b2
end

module Pmap = Map.Make (Pair)

type t = {
  mutable table : (Mass.F.t * float) option Pmap.t;
  mutable hits : int;
  mutable misses : int;
}

let create () = { table = Pmap.empty; hits = 0; misses = 0 }
let hits c = c.hits
let misses c = c.misses
let size c = Pmap.cardinal c.table

let reset c =
  c.table <- Pmap.empty;
  c.hits <- 0;
  c.misses <- 0

(* Dempster's rule is commutative, so (m1, m2) and (m2, m1) share one
   entry under a canonical ordering of the pair. *)
let canonical m1 m2 = if Mass.F.compare m1 m2 <= 0 then (m1, m2) else (m2, m1)

let combine_opt c m1 m2 =
  let key = canonical m1 m2 in
  match Pmap.find_opt key c.table with
  | Some result ->
      c.hits <- c.hits + 1;
      Obs.Metrics.incr "combine_cache.hit";
      result
  | None ->
      c.misses <- c.misses + 1;
      Obs.Metrics.incr "combine_cache.miss";
      let result = Mass.F.combine_opt m1 m2 in
      c.table <- Pmap.add key result c.table;
      result

let combine c m1 m2 =
  match combine_opt c m1 m2 with
  | Some (m, _) -> m
  | None -> raise Mass.F.Total_conflict
