module Pair = struct
  type t = Mass.F.t * Mass.F.t

  let compare (a1, b1) (a2, b2) =
    let c = Mass.F.compare a1 a2 in
    if c <> 0 then c else Mass.F.compare b1 b2
end

module Pmap = Map.Make (Pair)

type t = {
  mutable table : (Mass.F.t * float) option Pmap.t;
  mutable hits : int;
  mutable misses : int;
  kernel : Mass.F.t -> Mass.F.t -> (Mass.F.t * float) option;
}

let create ?(kernel = Mass.F.combine_opt) () =
  { table = Pmap.empty; hits = 0; misses = 0; kernel }
let hits c = c.hits
let misses c = c.misses
let size c = Pmap.cardinal c.table

let reset c =
  c.table <- Pmap.empty;
  c.hits <- 0;
  c.misses <- 0

(* Dempster's rule is commutative, so (m1, m2) and (m2, m1) share one
   entry under a canonical ordering of the pair. *)
let canonical m1 m2 = if Mass.F.compare m1 m2 <= 0 then (m1, m2) else (m2, m1)

(* A cache hit must surface the original derivation, not re-derive.
   Within one arena lifetime the result's digest is already bound (the
   miss that populated the entry registered it), so this finds the
   existing node and adds nothing. Only when the cache outlives the
   arena (fresh store, warm cache) is a combination node reconstructed
   from the memoized κ — Dempster's rule is never re-run. *)
let link_hit m1 m2 result =
  match result with
  | Some (res, kappa) ->
      let dres = Mass.F.digest res in
      (match Obs.Provenance.find dres with
      | Some _ -> ()
      | None ->
          let operand m =
            Obs.Provenance.find_or_leaf (Mass.F.digest m)
              ~label:(Mass.F.to_string m)
          in
          let i1 = operand m1 in
          let i2 = operand m2 in
          (* Same shape as the miss path's node — a warm-cache lineage
             must be indistinguishable from the cold derivation. *)
          let id =
            Obs.Provenance.add Obs.Provenance.Combine (Mass.F.to_string res)
              ~kappa ~norm:(1.0 -. kappa)
              ~args:[ ("rule", "dempster") ]
              ~inputs:[ i1; i2 ]
          in
          Obs.Provenance.register dres id)
  | None -> ()

let combine_opt c m1 m2 =
  let key = canonical m1 m2 in
  match Pmap.find_opt key c.table with
  | Some result ->
      c.hits <- c.hits + 1;
      Obs.Metrics.incr "combine_cache.hit";
      if Obs.Provenance.on () then link_hit m1 m2 result;
      result
  | None ->
      c.misses <- c.misses + 1;
      Obs.Metrics.incr "combine_cache.miss";
      let result = c.kernel m1 m2 in
      c.table <- Pmap.add key result c.table;
      result

let combine c m1 m2 =
  match combine_opt c m1 m2 with
  | Some (m, _) -> m
  | None -> raise Mass.F.Total_conflict
