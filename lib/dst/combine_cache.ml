module Key = struct
  (* The policy key comes first: entries computed under different rules
     or κ-thresholds can never alias, however equal their operands. *)
  type t = string * Mass.F.t * Mass.F.t

  let compare (p1, a1, b1) (p2, a2, b2) =
    let c = String.compare p1 p2 in
    if c <> 0 then c
    else
      let c = Mass.F.compare a1 a2 in
      if c <> 0 then c else Mass.F.compare b1 b2
end

module Pmap = Map.Make (Key)

type t = {
  mutable table : Mass.F.outcome Pmap.t;
  mutable hits : int;
  mutable misses : int;
  kernel : Mass.F.kernel;
}

let default_kernel ~rule ~prov m1 m2 =
  Mass.F.combine_rule_opt ~rule ~prov m1 m2

let create ?(kernel = default_kernel) () =
  { table = Pmap.empty; hits = 0; misses = 0; kernel }

let hits c = c.hits
let misses c = c.misses
let size c = Pmap.cardinal c.table

let reset c =
  if Obs.Log.on () then
    Obs.Log.record ~severity:Obs.Log.Debug
      ~fields:
        [ ("entries", string_of_int (Pmap.cardinal c.table));
          ("hits", string_of_int c.hits);
          ("misses", string_of_int c.misses) ]
      Obs.Log.Cache_evict "combine cache dropped";
  c.table <- Pmap.empty;
  c.hits <- 0;
  c.misses <- 0

(* Every rule here is commutative, so (m1, m2) and (m2, m1) share one
   entry under a canonical ordering of the pair. *)
let canonical m1 m2 = if Mass.F.compare m1 m2 <= 0 then (m1, m2) else (m2, m1)

let combine_policy ?policy c m1 m2 =
  let policy = match policy with Some p -> p | None -> Rule.current () in
  let a, b = canonical m1 m2 in
  let key = (Rule.policy_key policy, a, b) in
  match Pmap.find_opt key c.table with
  | Some outcome ->
      c.hits <- c.hits + 1;
      Obs.Metrics.incr "combine_cache.hit";
      (* A cache hit must surface the original derivation, not
         re-derive. Within one arena lifetime the result's digest is
         already bound (the miss that populated the entry registered
         it) and relink adds nothing. Only when the cache outlives the
         arena (fresh store, warm cache) is the combination node
         reconstructed from the memoized outcome — no rule is ever
         re-run. *)
      if Obs.Provenance.on () then Mass.F.relink ~policy m1 m2 outcome;
      outcome
  | None ->
      c.misses <- c.misses + 1;
      Obs.Metrics.incr "combine_cache.miss";
      let outcome =
        Mass.F.combine_policy_with ~kernel:c.kernel ~policy m1 m2
      in
      c.table <- Pmap.add key outcome c.table;
      outcome

let combine_policy_exn ?policy c m1 m2 =
  match combine_policy ?policy c m1 m2 with
  | Mass.F.Combined { result; _ } -> result
  | Mass.F.Conflicted -> raise Mass.F.Total_conflict
  | Mass.F.Quarantined { kappa } -> raise (Mass.F.Quarantined_cell kappa)

let combine_opt c m1 m2 =
  match combine_policy ~policy:Rule.dempster c m1 m2 with
  | Mass.F.Combined { result; kappa; _ } -> Some (result, kappa)
  | Mass.F.Conflicted -> None
  | Mass.F.Quarantined _ -> assert false (* dempster never quarantines *)

let combine c m1 m2 =
  match combine_opt c m1 m2 with
  | Some (m, _) -> m
  | None -> raise Mass.F.Total_conflict
