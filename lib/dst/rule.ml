type t =
  | Dempster
  | Yager
  | Dubois_prade
  | Averaging
  | Discount_then_combine of float

type fallback = Fallback of t | Quarantine
type escalation = { kappa0 : float; fallback : fallback }
type policy = { primary : t; escalation : escalation option }

let default_discount_alpha = 0.9

let discount_then_combine alpha =
  if alpha < 0.0 || alpha > 1.0 then
    invalid_arg "Rule.discount_then_combine: alpha outside [0,1]";
  Discount_then_combine alpha

let escalate ~kappa0 fallback =
  if kappa0 < 0.0 || kappa0 > 1.0 then
    invalid_arg "Rule.escalate: kappa0 outside [0,1]";
  { kappa0; fallback }

let make ?escalation primary = { primary; escalation }
let dempster = { primary = Dempster; escalation = None }

let name = function
  | Dempster -> "dempster"
  | Yager -> "yager"
  | Dubois_prade -> "dubois-prade"
  | Averaging -> "averaging"
  | Discount_then_combine _ -> "discount"

let to_string = function
  | Discount_then_combine a -> Printf.sprintf "discount:%g" a
  | r -> name r

(* Counter families are per rule constructor, not per parameterization:
   discount:0.8 and discount:0.9 share one counter. *)
let metric = function
  | Dempster -> "dst.combine.rule.dempster"
  | Yager -> "dst.combine.rule.yager"
  | Dubois_prade -> "dst.combine.rule.dubois-prade"
  | Averaging -> "dst.combine.rule.averaging"
  | Discount_then_combine _ -> "dst.combine.rule.discount"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "dempster" -> Ok Dempster
  | "yager" -> Ok Yager
  | "dubois-prade" | "dubois_prade" | "dp" -> Ok Dubois_prade
  | "averaging" | "average" | "mixing" -> Ok Averaging
  | "discount" -> Ok (Discount_then_combine default_discount_alpha)
  | s when String.length s > 9 && String.sub s 0 9 = "discount:" -> (
      let arg = String.sub s 9 (String.length s - 9) in
      match float_of_string_opt arg with
      | Some a when a >= 0.0 && a <= 1.0 -> Ok (Discount_then_combine a)
      | Some _ -> Error (Printf.sprintf "discount alpha %s outside [0,1]" arg)
      | None -> Error (Printf.sprintf "bad discount alpha %S" arg))
  | other ->
      Error
        (Printf.sprintf
           "unknown rule %S (expected dempster, yager, dubois-prade, \
            averaging or discount[:ALPHA])"
           other)

let fallback_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "quarantine" -> Ok Quarantine
  | other -> Result.map (fun r -> Fallback r) (of_string other)

let fallback_to_string = function
  | Quarantine -> "quarantine"
  | Fallback r -> to_string r

let policy_to_string p =
  match p.escalation with
  | None -> to_string p.primary
  | Some { kappa0; fallback } ->
      Printf.sprintf "%s [kappa0 %g -> %s]" (to_string p.primary) kappa0
        (fallback_to_string fallback)

(* Canonical cache-key fragment. Float parameters print with %h so two
   policies differing only by bits never alias one cache entry. *)
let policy_key p =
  let rule_key = function
    | Discount_then_combine a -> Printf.sprintf "discount:%h" a
    | r -> name r
  in
  match p.escalation with
  | None -> rule_key p.primary
  | Some { kappa0; fallback } ->
      Printf.sprintf "%s@%h>%s" (rule_key p.primary) kappa0
        (match fallback with
        | Quarantine -> "quarantine"
        | Fallback r -> rule_key r)

let equal a b =
  match (a, b) with
  | Discount_then_combine x, Discount_then_combine y -> Float.equal x y
  | Dempster, Dempster | Yager, Yager -> true
  | Dubois_prade, Dubois_prade | Averaging, Averaging -> true
  | _ -> false

let equal_policy a b = String.equal (policy_key a) (policy_key b)

let pp ppf r = Format.pp_print_string ppf (to_string r)
let pp_policy ppf p = Format.pp_print_string ppf (policy_to_string p)

let all = [ Dempster; Yager; Dubois_prade; Averaging ]

(* The session-wide policy every combination site defaults to. Read-only
   during evaluation: surfaces (CLI flags, REPL .rule) set it once before
   running, and worker domains only ever read it. *)
let current_policy = ref dempster
let current () = !current_policy
let set_current p = current_policy := p

let with_policy p f =
  let saved = !current_policy in
  current_policy := p;
  Fun.protect ~finally:(fun () -> current_policy := saved) f
