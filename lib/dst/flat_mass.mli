(** Packed flat representation of float mass functions.

    A mass function over an interned frame is two parallel arrays: the
    dense {!Interner} ids of its focal sets and their masses, ordered by
    ascending {!Vset.compare} of the underlying sets — the same order
    {!Mass.F.focals} reports. Dempster combination then runs as a double
    loop over the arrays with a scratch accumulator indexed by focal-set
    id: no maps, no set construction, no allocation in the inner loop
    (intersections resolve through the interner's memo table).

    {b Bit-exactness contract.} Every kernel here visits products and
    accumulates partial sums in {e exactly} the order the map kernels in
    {!Mass.F} do (outer operand ascending, inner operand ascending,
    new-product-plus-running-sum operand order), so results agree with
    the map representation bit for bit — [Mass.F.compare] returns 0, not
    merely [Mass.F.equal]. The differential conformance harness relies
    on this; see test/test_flat_mass.ml.

    {b Observability contract.} [combine_opt] emits the same
    [dst.combine.*] metrics as {!Mass.F.combine_opt}. When provenance
    recording is on it {e delegates} to the map kernel so lineage nodes
    are recorded identically — flat execution is never observable in an
    audit trail.

    Values are only meaningful relative to their interner, which is
    single-threaded; see {!Interner}. *)

type t

val interner : t -> Interner.t
val frame : t -> Domain.t

val of_mass : Interner.t -> Mass.F.t -> t
(** Intern a map-form mass function. @raise Invalid_argument if the
    frames of the interner and the mass function differ. *)

val to_mass : t -> Mass.F.t
(** The map form; [to_mass (of_mass it m)] compares equal to [m] under
    {!Mass.F.compare}. *)

val focals : t -> (Vset.t * float) list
(** Focal sets with masses, ascending {!Vset.compare} — same as
    {!Mass.F.focals} of {!to_mass}. *)

val focal_count : t -> int

val combine_opt : t -> t -> (t * float) option
(** Dempster's rule on the packed form: [Some (m, κ)], or [None] on
    total conflict. Bit-exact against {!Mass.F.combine_opt}.
    @raise Mass.F.Frame_mismatch if the operands' frames differ.
    @raise Invalid_argument if frames agree but interners differ. *)

val combine : t -> t -> t
(** @raise Mass.F.Total_conflict on κ = 1, like {!Mass.F.combine}. *)

val conflict : t -> t -> float
(** κ, bit-exact against {!Mass.F.conflict}. *)

val bel : t -> Vset.t -> float
val pls : t -> Vset.t -> float

(** {1 Per-rule kernels}

    Each mirrors its map counterpart in {!Mass.F} move for move (same
    product visit order, same accumulate operand order), so results are
    bit-exact against [combine_yager]/[combine_dubois_prade]/
    [combine_average] paired with the κ those rules measure. *)

val yager_flat : t -> t -> t * float
val dubois_prade_flat : t -> t -> t * float
val average_flat : t -> t -> t * float

val kernel : (Domain.t -> Interner.t) -> Mass.F.kernel
(** [kernel resolve] is a drop-in replacement for
    {!Mass.F.combine_rule_opt} that routes through the flat
    representation, using [resolve] to pick (or create) the interner
    for each frame — the hook {!Combine_cache.create}'s [?kernel]
    expects. Emits the same metrics as the map kernel; when provenance
    recording is on it delegates to {!Mass.F.combine_rule_opt} so
    lineage is recorded identically. *)
