type t = {
  it : Interner.t;
  ids : int array; (* focal-set ids, ascending Vset.compare of sets *)
  masses : float array; (* parallel to [ids]; positive, sums to ~1 *)
}

let interner m = m.it
let frame m = Interner.frame m.it

let of_mass it m =
  if not (Domain.equal (Interner.frame it) (Mass.F.frame m)) then
    invalid_arg "Flat_mass.of_mass: frame mismatch";
  (* Mass.F.focals is already in ascending Vset.compare order, which is
     exactly the order the packed arrays maintain. *)
  let fs = Mass.F.focals m in
  let n = List.length fs in
  let ids = Array.make n 0 and masses = Array.make n 0.0 in
  List.iteri
    (fun i (set, x) ->
      ids.(i) <- Interner.intern it set;
      masses.(i) <- x)
    fs;
  { it; ids; masses }

let focals m =
  Array.to_list
    (Array.mapi (fun i id -> (Interner.set_of m.it id, m.masses.(i))) m.ids)

let focal_count m = Array.length m.ids
let to_mass m = Mass.F.make (Interner.frame m.it) (focals m)

let check_operands a b =
  if not (a.it == b.it) then
    if not (Domain.equal (frame a) (frame b)) then
      raise (Mass.F.Frame_mismatch (frame a, frame b))
    else invalid_arg "Flat_mass: operands interned in different tables"

let conflict a b =
  check_operands a b;
  let it = a.it in
  let kappa = ref 0.0 in
  for i = 0 to Array.length a.ids - 1 do
    let x = a.ids.(i) and mx = a.masses.(i) in
    for j = 0 to Array.length b.ids - 1 do
      let p = mx *. b.masses.(j) in
      if Interner.inter it x b.ids.(j) < 0 then kappa := !kappa +. p
    done
  done;
  !kappa

(* The flat Dempster kernel. Mirrors Mass.F.combine_opt move for move:
   the double loop is [cross]'s iteration order (both Vmaps ascending,
   and the packed arrays are sorted the same way), first touch of a
   target id stores the product exactly as Vmap.update's None branch
   does, later touches compute new-product +. running-sum like its Some
   branch, and κ accumulates left to right. Generation marks make the
   scratch accumulator self-cleaning, so repeated combines never pay an
   O(|table|) reset. *)
let combine_flat a b =
  let it = a.it in
  let acc = ref (Interner.scratch_acc it) in
  let mark = ref (Interner.scratch_mark it) in
  let touched = ref (Interner.scratch_touched it) in
  let gen = Interner.next_gen it in
  let ntouched = ref 0 in
  let kappa = ref 0.0 in
  let n1 = Array.length a.ids and n2 = Array.length b.ids in
  for i = 0 to n1 - 1 do
    let x = a.ids.(i) and mx = a.masses.(i) in
    for j = 0 to n2 - 1 do
      let p = mx *. b.masses.(j) in
      let z = Interner.inter it x b.ids.(j) in
      if z < 0 then kappa := !kappa +. p
      else begin
        (* [inter] may have interned a brand-new set: refresh the
           scratch views so [z] is in range (growth preserves
           prefixes, so live marks and sums survive). *)
        if z >= Array.length !acc then begin
          acc := Interner.scratch_acc it;
          mark := Interner.scratch_mark it;
          touched := Interner.scratch_touched it
        end;
        if !mark.(z) = gen then !acc.(z) <- p +. !acc.(z)
        else begin
          !mark.(z) <- gen;
          !acc.(z) <- p;
          !touched.(!ntouched) <- z;
          incr ntouched
        end
      end
    done
  done;
  let acc = !acc and touched = !touched in
  if Obs.Metrics.on () then begin
    Obs.Metrics.incr "dst.combine.calls";
    Obs.Metrics.observe "dst.combine.conflict_kappa" !kappa
  end;
  if !ntouched = 0 then begin
    Obs.Metrics.incr "dst.combine.total_conflict";
    None
  end
  else
    let norm = 1.0 -. !kappa in
    (* Same float-drift guard as the map kernel. *)
    if Float.compare norm 0.0 <= 0 then begin
      Obs.Metrics.incr "dst.combine.total_conflict";
      None
    end
    else begin
      let ids = Array.sub touched 0 !ntouched in
      Array.sort
        (fun i j ->
          Vset.compare (Interner.set_of it i) (Interner.set_of it j))
        ids;
      let masses = Array.map (fun id -> acc.(id) /. norm) ids in
      Some ({ it; ids; masses }, !kappa)
    end

(* --- per-rule flat kernels ------------------------------------------- *)

(* Shared conjunctive sweep for the non-normalizing rules: mirror
   combine_flat's loop exactly, letting [on_conflict] decide where a
   disjoint pair's product lands (Yager: nowhere yet, κ only;
   Dubois-Prade: the union id). State lives in refs because [inter] and
   [union] can intern new sets mid-loop, invalidating scratch views. *)
type sweep = {
  mutable s_acc : float array;
  mutable s_mark : int array;
  mutable s_touched : int array;
  mutable s_ntouched : int;
  s_gen : int;
  s_it : Interner.t;
}

let sweep_start it =
  {
    s_acc = Interner.scratch_acc it;
    s_mark = Interner.scratch_mark it;
    s_touched = Interner.scratch_touched it;
    s_ntouched = 0;
    s_gen = Interner.next_gen it;
    s_it = it;
  }

let sweep_add s z p =
  if z >= Array.length s.s_acc then begin
    s.s_acc <- Interner.scratch_acc s.s_it;
    s.s_mark <- Interner.scratch_mark s.s_it;
    s.s_touched <- Interner.scratch_touched s.s_it
  end;
  if s.s_mark.(z) = s.s_gen then s.s_acc.(z) <- p +. s.s_acc.(z)
  else begin
    s.s_mark.(z) <- s.s_gen;
    s.s_acc.(z) <- p;
    s.s_touched.(s.s_ntouched) <- z;
    s.s_ntouched <- s.s_ntouched + 1
  end

let sweep_finish s it =
  let ids = Array.sub s.s_touched 0 s.s_ntouched in
  Array.sort
    (fun i j -> Vset.compare (Interner.set_of it i) (Interner.set_of it j))
    ids;
  let masses = Array.map (fun id -> s.s_acc.(id)) ids in
  { it; ids; masses }

let note_call kappa =
  if Obs.Metrics.on () then begin
    Obs.Metrics.incr "dst.combine.calls";
    Obs.Metrics.observe "dst.combine.conflict_kappa" kappa
  end

(* Yager: the conjunctive table with κ added to Ω last — the same
   accumulate order as the map kernel's final [accumulate table Ω κ]. *)
let yager_flat a b =
  check_operands a b;
  let it = a.it in
  let s = sweep_start it in
  let kappa = ref 0.0 in
  for i = 0 to Array.length a.ids - 1 do
    let x = a.ids.(i) and mx = a.masses.(i) in
    for j = 0 to Array.length b.ids - 1 do
      let p = mx *. b.masses.(j) in
      let z = Interner.inter it x b.ids.(j) in
      if z < 0 then kappa := !kappa +. p else sweep_add s z p
    done
  done;
  note_call !kappa;
  if !kappa <> 0.0 then begin
    let omega = Interner.intern it (Domain.values (frame a)) in
    sweep_add s omega !kappa
  end;
  (sweep_finish s it, !kappa)

(* Dubois-Prade: disjoint pairs accumulate on their union, in the same
   left-to-right cross order the map kernel's emit_conflict runs. *)
let dubois_prade_flat a b =
  check_operands a b;
  let it = a.it in
  let s = sweep_start it in
  let kappa = ref 0.0 in
  for i = 0 to Array.length a.ids - 1 do
    let x = a.ids.(i) and mx = a.masses.(i) in
    for j = 0 to Array.length b.ids - 1 do
      let y = b.ids.(j) in
      let p = mx *. b.masses.(j) in
      let z = Interner.inter it x y in
      if z < 0 then begin
        kappa := !kappa +. p;
        sweep_add s (Interner.union it x y) p
      end
      else sweep_add s z p
    done
  done;
  note_call !kappa;
  (sweep_finish s it, !kappa)

(* Averaging: a sorted merge-walk over the two packed arrays (both
   ascending by focal-set order, like Vmap.union's traversal); masses
   halve exactly as the map kernel's [N.mul half x] does, first operand
   first. κ is the plain conflict, same as the map side reports. *)
let average_flat a b =
  check_operands a b;
  let kappa = conflict a b in
  note_call kappa;
  let it = a.it in
  let na = Array.length a.ids and nb = Array.length b.ids in
  let ids = Array.make (na + nb) 0 and masses = Array.make (na + nb) 0.0 in
  let half = 0.5 in
  let k = ref 0 and i = ref 0 and j = ref 0 in
  let put id m =
    ids.(!k) <- id;
    masses.(!k) <- m;
    incr k
  in
  while !i < na && !j < nb do
    let c =
      Vset.compare
        (Interner.set_of it a.ids.(!i))
        (Interner.set_of it b.ids.(!j))
    in
    if c < 0 then begin
      put a.ids.(!i) (half *. a.masses.(!i));
      incr i
    end
    else if c > 0 then begin
      put b.ids.(!j) (half *. b.masses.(!j));
      incr j
    end
    else begin
      put a.ids.(!i) ((half *. a.masses.(!i)) +. (half *. b.masses.(!j)));
      incr i;
      incr j
    end
  done;
  while !i < na do
    put a.ids.(!i) (half *. a.masses.(!i));
    incr i
  done;
  while !j < nb do
    put b.ids.(!j) (half *. b.masses.(!j));
    incr j
  done;
  ({ it; ids = Array.sub ids 0 !k; masses = Array.sub masses 0 !k }, kappa)

let combine_opt a b =
  check_operands a b;
  if Obs.Provenance.on () then
    (* Lineage must look identical whichever representation executed:
       delegate to the map kernel, which records the Combine node (and
       emits the same metrics the flat path would). *)
    match Mass.F.combine_opt (to_mass a) (to_mass b) with
    | None -> None
    | Some (m, kappa) -> Some (of_mass a.it m, kappa)
  else combine_flat a b

let combine a b =
  match combine_opt a b with
  | Some (m, _) -> m
  | None -> raise Mass.F.Total_conflict

let sum_where p m =
  let acc = ref 0.0 in
  for i = 0 to Array.length m.ids - 1 do
    if p m.ids.(i) then acc := m.masses.(i) +. !acc
  done;
  !acc

let bel m a = sum_where (fun id -> Interner.subset m.it id a) m
let pls m a = sum_where (fun id -> not (Interner.disjoint m.it id a)) m

let kernel resolve ~rule ~prov m1 m2 =
  if Obs.Provenance.on () then Mass.F.combine_rule_opt ~rule ~prov m1 m2
  else begin
    (* Frame mismatches must surface as the map kernel's exception, not
       as an interner error. *)
    if not (Domain.equal (Mass.F.frame m1) (Mass.F.frame m2)) then
      raise (Mass.F.Frame_mismatch (Mass.F.frame m1, Mass.F.frame m2));
    if Obs.Metrics.on () then Obs.Metrics.incr (Rule.metric rule);
    let it = resolve (Mass.F.frame m1) in
    let dempster d1 d2 =
      match combine_flat (of_mass it d1) (of_mass it d2) with
      | None -> None
      | Some (m, kappa) -> Some (to_mass m, kappa)
    in
    match rule with
    | Rule.Dempster -> dempster m1 m2
    | Rule.Yager ->
        let m, kappa = yager_flat (of_mass it m1) (of_mass it m2) in
        Some (to_mass m, kappa)
    | Rule.Dubois_prade ->
        let m, kappa = dubois_prade_flat (of_mass it m1) (of_mass it m2) in
        Some (to_mass m, kappa)
    | Rule.Averaging ->
        let m, kappa = average_flat (of_mass it m1) (of_mass it m2) in
        Some (to_mass m, kappa)
    | Rule.Discount_then_combine alpha ->
        (* Discounting is O(focals) per operand on the map form;
           provenance is off on this path, so no Discount nodes are
           recorded — exactly like the map kernel with provenance
           off. *)
        dempster (Mass.F.discount alpha m1) (Mass.F.discount alpha m2)
  end
