(** Combination-rule strategy (extension beyond the paper).

    The paper's integration semantics use Dempster's rule exclusively,
    but Zadeh's classic example shows normalization dominating the
    outcome under high conflict: two sources at 0.99/0.01 on disjoint
    hypotheses agree only on a third they both barely believe, and
    Dempster's rule makes that third {e certain}. This module names the
    alternatives {!Mass} already implements, plus a κ-threshold
    {e escalation policy} that turns the static S005 high-conflict
    diagnostic into a runtime decision: combine with the primary rule
    while conflict stays below κ₀, and at or above it either switch to a
    fallback rule or quarantine the merge with a typed outcome.

    A policy is honored end-to-end: {!Mass.S.combine_policy},
    {!Combine_cache} (the policy is part of the cache key),
    {!Flat_mass} (per-rule flat kernels, bit-exact against the map
    kernels), the merge paths of [Erm.Ops] and [Integration], the
    sharded execution engine, and the CLI/REPL surfaces. *)

type t =
  | Dempster  (** Conjunctive consensus, conflict normalized away. *)
  | Yager  (** Conflict mass moves to Ω — ignorance, not renormalization. *)
  | Dubois_prade  (** Conflicting pairs keep their mass on [X ∪ Y]. *)
  | Averaging  (** Pointwise mixing; idempotent, retains conflict. *)
  | Discount_then_combine of float
      (** Discount both operands by α, then Dempster-combine. Softens
          extreme masses before normalization (Shafer's prescription for
          unreliable sources). α must be in [0,1]; α = 1 is Dempster. *)

type fallback =
  | Fallback of t  (** Re-combine with this rule instead. *)
  | Quarantine
      (** Do not combine at all: drop the merge with a typed outcome the
          caller can report ([Quarantined] cells, federate exit 3). *)

type escalation = { kappa0 : float; fallback : fallback }
(** Escalate whenever the operands' conjunctive conflict κ satisfies
    [κ >= kappa0]. [kappa0 = 0] escalates every combination;
    [kappa0 = 1] escalates only κ = 1 — exactly the inputs Dempster's
    rule is undefined on, so the policy degenerates to pure Dempster
    everywhere Dempster is defined. *)

type policy = { primary : t; escalation : escalation option }

val dempster : policy
(** The default: Dempster's rule, no escalation — the paper's
    semantics. *)

val make : ?escalation:escalation -> t -> policy

val escalate : kappa0:float -> fallback -> escalation
(** @raise Invalid_argument if [kappa0] is outside [0,1]. *)

val discount_then_combine : float -> t
(** @raise Invalid_argument if the alpha is outside [0,1]. *)

val default_discount_alpha : float
(** The α used when a surface selects [discount] without a parameter
    (0.9). *)

val name : t -> string
(** The rule family name without parameters: ["discount"], not
    ["discount:0.9"] — used for metric families. *)

val to_string : t -> string
(** Parseable form, parameters included (["discount:0.9"]). *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}; also accepts ["dubois_prade"], ["dp"],
    ["average"], ["mixing"] and bare ["discount"]
    (= {!default_discount_alpha}). *)

val fallback_of_string : string -> (fallback, string) result
(** A rule name or ["quarantine"]. *)

val fallback_to_string : fallback -> string

val policy_to_string : policy -> string
(** Human form, e.g. ["dempster [kappa0 0.9 -> yager]"]. *)

val policy_key : policy -> string
(** Canonical key fragment for the combine cache: policies that could
    ever produce different outcomes have different keys (float
    parameters are rendered losslessly with [%h]). *)

val metric : t -> string
(** The [dst.combine.rule.*] counter for this rule family. *)

val equal : t -> t -> bool
val equal_policy : policy -> policy -> bool
val pp : Format.formatter -> t -> unit
val pp_policy : Format.formatter -> policy -> unit

val all : t list
(** The parameterless rules — [Discount_then_combine] is excluded
    because it needs an α; use {!discount_then_combine} to add one. *)

(** {1 The session policy}

    Every combination seam ([Erm.Ops] merges, the combine cache, the
    integration folds) defaults to this process-global policy, so a
    surface sets it once and naive, physical, sharded and flat
    execution all honor it. Set it before evaluation starts; worker
    domains only read it. *)

val current : unit -> policy
val set_current : policy -> unit

val with_policy : policy -> (unit -> 'a) -> 'a
(** Run with the session policy temporarily replaced (restored on exit
    or exception) — the test harness's seam. *)
