(** Scalar uncertainty measures over mass functions (extension).

    Integration claims to {e reduce} uncertainty; these classical
    measures make the claim quantitative (EXPERIMENTS.md cites them for
    the Table 4 merge):

    - {!nonspecificity} (Dubois & Prade's generalized Hartley measure)
      captures {e imprecision}: how large the focal elements are;
    - {!dissonance} (Yager's E) captures {e conflict within} the
      evidence: mass on hypotheses the rest of the evidence refutes;
    - {!pignistic_entropy} is the Shannon entropy of the pignistic
      transform — the residual decision uncertainty.

    All use log base 2 ("bits"). *)

val nonspecificity : Mass.F.t -> float
(** [N(m) = Σ_A m(A)·log₂|A|]. 0 for Bayesian assignments; [log₂|Ω|]
    for the vacuous one (maximal imprecision). Dempster combination
    intersects focal elements, so it tends to drive N down — the
    "combination reduces uncertainty" trend the paper notes in §2.2. *)

val dissonance : Mass.F.t -> float
(** [E(m) = −Σ_A m(A)·log₂ Pls(A)]. 0 whenever the focal elements share
    a common element (in particular for consonant and for definite
    evidence); grows as the evidence pulls against itself. *)

val pignistic_entropy : Mass.F.t -> float
(** [H(BetP) = −Σ_v BetP(v)·log₂ BetP(v)]. *)

val pignistic_distance : Mass.F.t -> Mass.F.t -> float
(** Total-variation distance between the two pignistic transforms:
    [½·Σ_v |BetP₁(v) − BetP₂(v)|], in [\[0,1\]]. A cheap, frame-agnostic
    dissimilarity for comparing evidence versions (κ measures
    {e incompatibility}; this measures {e difference of opinion} even
    when compatible). @raise Mass.F.Frame_mismatch. *)

val total_uncertainty : Mass.F.t -> float
(** [nonspecificity + dissonance] — an aggregate measure in the spirit
    of Klir's total uncertainty. *)

val conflict : Mass.F.t -> Mass.F.t -> float
(** The conflict mass κ of Dempster combination — [Mass.F.conflict]
    under the measures namespace, so audit code can recompute the κ a
    provenance node recorded without touching the combination rule
    itself. @raise Mass.F.Frame_mismatch. *)
