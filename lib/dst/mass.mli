(** Mass functions (basic probability assignments) over a finite frame.

    A mass function [m] assigns belief mass to subsets of a frame of
    discernment Ω such that [m(∅) = 0] and [Σ m(A) = 1] (§2.1 of the
    paper). Subsets with positive mass are the {e focal elements}.

    The module is a functor over the numeric representation: instantiate
    with {!Num.Float} for the runtime library (see {!F}) or with
    {!Num.Rational} for exact verification of combination results. *)

module type S = sig
  type num
  (** The numeric type masses are expressed in. *)

  type t
  (** A validated mass function. Immutable. *)

  exception Invalid_mass of string
  (** Raised by constructors when focal elements are empty, outside the
      frame, negative, or do not sum to one. *)

  exception Total_conflict
  (** Raised by {!combine} when the two operands are completely
      contradictory (κ = 1): Dempster's rule is undefined. The paper (§2.2)
      prescribes alerting the integrator in this case. *)

  exception Quarantined_cell of float
  (** Raised by {!combine_policy_exn} (carrying κ) when the active
      {!Rule.policy} quarantines the combination instead of running a
      rule — the merge paths catch it and drop or report the pair. *)

  exception Frame_mismatch of Domain.t * Domain.t
  (** Raised when combining mass functions over different frames. *)

  type outcome =
    | Combined of { result : t; kappa : num; rule : Rule.t; escalated : bool }
        (** [rule] is the rule that actually ran (the fallback when
            [escalated]); [kappa] is the conflict it measured. *)
    | Quarantined of { kappa : num }
        (** The policy refused the merge: κ reached κ₀ and the fallback
            is {!Rule.Quarantine}. *)
    | Conflicted
        (** Total conflict under a normalizing rule with no escalation
            configured — the typed form of {!Total_conflict}. *)
  (** The typed result of a policy-driven combination. *)

  type kernel =
    rule:Rule.t -> prov:(string * string) list -> t -> t -> (t * num) option
  (** A rule-parameterized combination primitive: [prov] carries extra
      provenance annotations (escalation tags) for the recorded Combine
      node. {!combine_rule_opt} is the map implementation;
      [Flat_mass.kernel] the packed one. *)

  val make : Domain.t -> (Vset.t * num) list -> t
  (** [make frame focals] validates and builds a mass function. Zero-mass
      entries are dropped; duplicate focal elements are summed.
      @raise Invalid_mass per the conditions above. *)

  val make_normalized : Domain.t -> (Vset.t * num) list -> t
  (** Like {!make} but rescales the masses to sum to one (they must be
      non-negative with a positive total). Useful for building evidence
      from raw counts, e.g. the paper's reviewer votes. *)

  val vacuous : Domain.t -> t
  (** Total ignorance: [m(Ω) = 1]. *)

  val certain : Domain.t -> Value.t -> t
  (** A definite value: [m({v}) = 1]. @raise Invalid_mass if [v ∉ Ω]. *)

  val certain_set : Domain.t -> Vset.t -> t
  (** Categorical evidence: [m(A) = 1]. *)

  val simple_support : Domain.t -> Vset.t -> num -> t
  (** Shafer's simple support function: [m(A) = w], [m(Ω) = 1 - w]. *)

  val bayesian : Domain.t -> (Value.t * num) list -> t
  (** All focal elements are singletons — an ordinary discrete
      distribution. *)

  (** {1 Accessors} *)

  val frame : t -> Domain.t

  val focals : t -> (Vset.t * num) list
  (** Focal elements with their masses, in increasing {!Vset.compare}
      order. All masses are positive and sum to one. *)

  val focal_count : t -> int

  val mass : t -> Vset.t -> num
  (** [mass m a] is [m(A)], zero when [A] is not focal. *)

  (** {1 Belief measures} *)

  val bel : t -> Vset.t -> num
  (** Belief: [Bel(A) = Σ_{X ⊆ A} m(X)] — minimum committed support. *)

  val pls : t -> Vset.t -> num
  (** Plausibility: [Pls(A) = Σ_{X ∩ A ≠ ∅} m(X) = 1 - Bel(Ā)] — the degree
      to which the evidence fails to refute [A]. *)

  val doubt : t -> Vset.t -> num
  (** [doubt m a = bel m (Ω \ a)]. *)

  val commonality : t -> Vset.t -> num
  (** [Q(A) = Σ_{X ⊇ A} m(X)]. *)

  val interval : t -> Vset.t -> num * num
  (** [(bel, pls)]; the belief interval. Invariant: [bel ≤ pls]. *)

  val ignorance : t -> Vset.t -> num
  (** [pls - bel]: how undecided the evidence is about [A]. *)

  (** {1 Classification} *)

  val is_vacuous : t -> bool
  val is_bayesian : t -> bool

  val is_definite : t -> bool
  (** True iff a single singleton focal element carries mass one. *)

  val definite_value : t -> Value.t option
  (** [Some v] iff {!is_definite} with focal [{v}]. *)

  val is_consonant : t -> bool
  (** True iff the focal elements are totally ordered by inclusion. *)

  (** {1 Combination} *)

  val conflict : t -> t -> num
  (** κ: the total mass assigned by the two operands to disjoint pairs of
      focal elements. [κ = 1] means total contradiction.
      @raise Frame_mismatch if the frames differ. *)

  val combine : t -> t -> t
  (** Dempster's rule of combination: conjunctive consensus followed by
      normalization by [1 - κ]. Commutative and associative.
      @raise Total_conflict when κ = 1.
      @raise Frame_mismatch if the frames differ. *)

  val combine_opt : t -> t -> (t * num) option
  (** [Some (m, κ)] or [None] on total conflict — the non-raising form,
      reporting the amount of conflict that was normalized away.
      Equivalent to [combine_rule_opt ~rule:Rule.Dempster]. *)

  val combine_rule_opt :
    ?rule:Rule.t -> ?prov:(string * string) list -> t -> t -> (t * num) option
  (** One combination under the given rule (default {!Rule.Dempster}).
      [Some (m, κ)] where κ is the conjunctive conflict the rule
      measured between its operands; [None] only when the (possibly
      discounted) Dempster leg hits total conflict — Yager,
      Dubois-Prade and averaging are total. Emits [dst.combine.calls],
      [dst.combine.conflict_kappa] and the per-rule
      [dst.combine.rule.*] counter; when provenance is on, records a
      Combine node tagged with the rule (and any [prov] annotations).
      @raise Frame_mismatch if the frames differ. *)

  val combine_policy_with :
    kernel:kernel -> ?policy:Rule.policy -> t -> t -> outcome
  (** The escalation engine, parameterized by the combination kernel so
      the memo-cache can route misses through the flat representation.
      Below κ₀ (or with no escalation configured) the primary rule
      runs; at or exactly on κ₀ the policy escalates — incrementing
      [dst.combine.escalations] and either running the fallback rule
      (its Combine node carries [escalated_from]/[kappa0] annotations)
      or quarantining (recording a ["(quarantined)"] node). [policy]
      defaults to {!Rule.current}. The threshold κ is always the
      operands' raw conjunctive conflict ({!conflict}), independent of
      the primary rule. *)

  val combine_policy : ?policy:Rule.policy -> t -> t -> outcome
  (** [combine_policy_with] over {!combine_rule_opt} — the uncached
      policy-honoring entry point every merge path uses. *)

  val combine_policy_exn : ?policy:Rule.policy -> t -> t -> t
  (** Like {!combine_policy} but raising: {!Total_conflict} on
      [Conflicted], {!Quarantined_cell} on [Quarantined]. *)

  val relink : ?policy:Rule.policy -> t -> t -> outcome -> unit
  (** Cache-hit lineage reconstruction: if the outcome's result digest
      is not yet bound in the live arena, record the same Combine node
      (rule, κ, norm, escalation annotations — and for the discount
      rule, the same discounted operands) the cold miss recorded. The
      memo-cache calls this so warm-hit lineage is indistinguishable
      from the cold derivation for every rule. *)

  val combine_yager : t -> t -> t
  (** Yager's rule (extension beyond the paper): conflict mass is moved to
      Ω instead of being normalized away. Total conflict yields the
      vacuous mass function. Commutative but not associative. *)

  val combine_dubois_prade : t -> t -> t
  (** Dubois-Prade's rule (extension): disjoint pairs contribute to the
      union [X ∪ Y] instead of being discarded. *)

  val combine_average : t -> t -> t
  (** Mixing (extension): the pointwise average of the two assignments.
      Idempotent; retains conflict rather than resolving it. *)

  val combine_disjunctive : t -> t -> t
  (** Disjunctive consensus (extension): products accumulate on [X ∪ Y].
      Appropriate when only one of the two sources is known reliable. *)

  val combine_many : ?rule:Rule.t -> t list -> t
  (** N-ary combination under [rule] (default {!Rule.Dempster}). For
      every rule but averaging this is the left fold of the pairwise
      rule — associative for Dempster, order-sensitive (documented, not
      hidden) for Yager and Dubois-Prade. For {!Rule.Averaging} it is
      the uniform n-ary mixture (each source weighted 1/n), {e not} the
      pairwise fold, which would weight source i by 2^-(n-i) because
      averaging is not associative. @raise Invalid_mass on the empty
      list (no frame to build a result on, whatever the rule).
      @raise Total_conflict if a Dempster (or discount-at-α=1) step
      hits κ = 1; the non-normalizing rules never raise it. *)

  (** {1 Transformations} *)

  val discount : float -> t -> t
  (** [discount alpha m]: Shafer's discounting by source reliability
      [alpha ∈ \[0,1\]]: masses are scaled by [alpha] and the remainder
      moves to Ω. [discount 1.0] is the identity; [discount 0.0] is
      vacuous. @raise Invalid_argument if [alpha] is outside [0,1]. *)

  val condition : t -> Vset.t -> t
  (** Dempster conditioning: combination with the categorical mass on the
      given set. @raise Total_conflict if the set is implausible. *)

  val pignistic : t -> (Value.t * num) list
  (** Smets' pignistic transform BetP: each focal's mass is split equally
      among its elements. Sums to one; suitable for decision making. *)

  val approximate : max_focals:int -> t -> t
  (** Focal-set summarization in the spirit of Tessem's k-l-x: keep the
      [max_focals - 1] heaviest focal elements and move the remaining
      mass to Ω. A {e conservative} approximation — belief can only
      shrink and plausibility only grow ([Bel' ≤ Bel ≤ Pls ≤ Pls'] on
      every set), so thresholded query answers can gain may-be tuples
      but never lose definite ones. Bounds the O(|F₁|·|F₂|) cost of
      chained combinations. Identity when the function already has at
      most [max_focals] focal elements.
      @raise Invalid_argument if [max_focals < 1]. *)

  val max_bel : t -> Value.t
  (** The singleton hypothesis with maximal belief (ties broken by value
      order) — a simple decision rule over the evidence. *)

  val max_pls : t -> Value.t
  (** The singleton hypothesis with maximal plausibility. *)

  (** {1 Comparison and printing} *)

  val equal : t -> t -> bool
  (** Same frame and same assignment, masses compared with [num]
      equality. *)

  val compare : t -> t -> int
  (** A structural total order (frame, then focal assignment with exact
      [num] comparison) suitable for [Map.Make]. Finer than {!equal} for
      the float instance: two functions within tolerance but not
      bit-equal compare as different, which only costs a duplicate cache
      entry, never a wrong result. *)

  val pp : Format.formatter -> t -> unit
  (** Paper notation: [[si^0.5; {hu, si}^0.33; ~^0.17]] where [~]
      denotes Ω. *)

  val to_string : t -> string

  val digest : t -> string
  (** A canonical value digest (MD5 hex over the frame name and the
      ordered focal assignment with hex-float masses): bit-identical
      mass functions digest equally, so the provenance arena can give
      every distinct evidence value one lineage identity. Exact for
      the float instance; instances whose [num] loses precision under
      [to_float] may alias distinct values (the rational instance is
      test-only and runs with provenance off). *)
end

module Make (N : Num.S) : S with type num = N.t

module F : S with type num = float
(** The float instance used throughout the library. *)
