module type S = sig
  type num
  type t

  exception Invalid_mass of string
  exception Total_conflict
  exception Quarantined_cell of float
  exception Frame_mismatch of Domain.t * Domain.t

  type outcome =
    | Combined of { result : t; kappa : num; rule : Rule.t; escalated : bool }
    | Quarantined of { kappa : num }
    | Conflicted

  type kernel = rule:Rule.t -> prov:(string * string) list -> t -> t -> (t * num) option

  val make : Domain.t -> (Vset.t * num) list -> t
  val make_normalized : Domain.t -> (Vset.t * num) list -> t
  val vacuous : Domain.t -> t
  val certain : Domain.t -> Value.t -> t
  val certain_set : Domain.t -> Vset.t -> t
  val simple_support : Domain.t -> Vset.t -> num -> t
  val bayesian : Domain.t -> (Value.t * num) list -> t
  val frame : t -> Domain.t
  val focals : t -> (Vset.t * num) list
  val focal_count : t -> int
  val mass : t -> Vset.t -> num
  val bel : t -> Vset.t -> num
  val pls : t -> Vset.t -> num
  val doubt : t -> Vset.t -> num
  val commonality : t -> Vset.t -> num
  val interval : t -> Vset.t -> num * num
  val ignorance : t -> Vset.t -> num
  val is_vacuous : t -> bool
  val is_bayesian : t -> bool
  val is_definite : t -> bool
  val definite_value : t -> Value.t option
  val is_consonant : t -> bool
  val conflict : t -> t -> num
  val combine : t -> t -> t
  val combine_opt : t -> t -> (t * num) option
  val combine_rule_opt :
    ?rule:Rule.t -> ?prov:(string * string) list -> t -> t -> (t * num) option
  val combine_policy_with :
    kernel:kernel -> ?policy:Rule.policy -> t -> t -> outcome
  val combine_policy : ?policy:Rule.policy -> t -> t -> outcome
  val combine_policy_exn : ?policy:Rule.policy -> t -> t -> t
  val relink : ?policy:Rule.policy -> t -> t -> outcome -> unit
  val combine_yager : t -> t -> t
  val combine_dubois_prade : t -> t -> t
  val combine_average : t -> t -> t
  val combine_disjunctive : t -> t -> t
  val combine_many : ?rule:Rule.t -> t list -> t
  val discount : float -> t -> t
  val condition : t -> Vset.t -> t
  val pignistic : t -> (Value.t * num) list
  val approximate : max_focals:int -> t -> t
  val max_bel : t -> Value.t
  val max_pls : t -> Value.t
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
  val digest : t -> string
end

module Vmap = Map.Make (Vset)

module Make (N : Num.S) : S with type num = N.t = struct
  type num = N.t
  type t = { frame : Domain.t; focals : num Vmap.t }

  exception Invalid_mass of string
  exception Total_conflict
  exception Quarantined_cell of float
  exception Frame_mismatch of Domain.t * Domain.t

  type outcome =
    | Combined of { result : t; kappa : num; rule : Rule.t; escalated : bool }
    | Quarantined of { kappa : num }
    | Conflicted

  type kernel =
    rule:Rule.t -> prov:(string * string) list -> t -> t -> (t * num) option

  let num_lt a b = N.compare a b < 0
  let num_gt a b = N.compare a b > 0
  let is_zero x = N.equal x N.zero

  let sum_masses m = Vmap.fold (fun _ x acc -> N.add x acc) m N.zero

  (* Shared validation: merge duplicates, drop zeros, check range. *)
  let collect frame entries =
    List.fold_left
      (fun acc (set, x) ->
        if num_lt x N.zero then
          raise
            (Invalid_mass
               (Format.asprintf "negative mass %a on %a" N.pp x Vset.pp set))
        else if is_zero x then acc
        else if Vset.is_empty set then
          raise (Invalid_mass "positive mass on the empty set")
        else if not (Domain.subset set frame) then
          raise
            (Invalid_mass
               (Format.asprintf "focal element %a outside frame %s" Vset.pp
                  set (Domain.name frame)))
        else
          Vmap.update set
            (function None -> Some x | Some y -> Some (N.add x y))
            acc)
      Vmap.empty entries

  let make frame entries =
    let focals = collect frame entries in
    let total = sum_masses focals in
    if not (N.equal total N.one) then
      raise
        (Invalid_mass (Format.asprintf "masses sum to %a, not 1" N.pp total))
    else { frame; focals }

  let make_normalized frame entries =
    let focals = collect frame entries in
    let total = sum_masses focals in
    if not (num_gt total N.zero) then
      raise (Invalid_mass "cannot normalize: total mass is zero")
    else { frame; focals = Vmap.map (fun x -> N.div x total) focals }

  let vacuous frame =
    { frame; focals = Vmap.singleton (Domain.values frame) N.one }

  let certain_set frame set = make frame [ (set, N.one) ]
  let certain frame v = certain_set frame (Vset.singleton v)

  let simple_support frame set w =
    make frame [ (set, w); (Domain.values frame, N.sub N.one w) ]

  let bayesian frame pairs =
    make frame (List.map (fun (v, x) -> (Vset.singleton v, x)) pairs)

  let frame m = m.frame
  let focals m = Vmap.bindings m.focals
  let focal_count m = Vmap.cardinal m.focals
  let mass m set = match Vmap.find_opt set m.focals with
    | Some x -> x
    | None -> N.zero

  let sum_where p m =
    Vmap.fold
      (fun set x acc -> if p set then N.add x acc else acc)
      m.focals N.zero

  let bel m a = sum_where (fun x -> Vset.subset x a) m
  let pls m a = sum_where (fun x -> not (Vset.disjoint x a)) m
  let doubt m a = bel m (Vset.diff (Domain.values m.frame) a)
  let commonality m a = sum_where (fun x -> Vset.subset a x) m
  let interval m a = (bel m a, pls m a)
  let ignorance m a = N.sub (pls m a) (bel m a)

  let is_vacuous m =
    Vmap.cardinal m.focals = 1
    && Vmap.mem (Domain.values m.frame) m.focals

  let is_bayesian m =
    Vmap.for_all (fun set _ -> Vset.cardinal set = 1) m.focals

  let is_definite m =
    Vmap.cardinal m.focals = 1 && is_bayesian m

  let definite_value m =
    if is_definite m then
      match Vmap.min_binding_opt m.focals with
      | Some (set, _) -> Some (Vset.choose set)
      | None -> None
    else None

  let is_consonant m =
    let sets = List.map fst (Vmap.bindings m.focals) in
    let by_size =
      List.sort (fun a b -> compare (Vset.cardinal a) (Vset.cardinal b)) sets
    in
    let rec chained = function
      | a :: (b :: _ as rest) -> Vset.subset a b && chained rest
      | [ _ ] | [] -> true
    in
    chained by_size

  let pp ppf m =
    let omega = Domain.values m.frame in
    let pp_focal ppf (set, x) =
      if Vset.equal set omega then Format.fprintf ppf "~^%a" N.pp x
      else Format.fprintf ppf "%a^%a" Vset.pp_compact set N.pp x
    in
    Format.fprintf ppf "[@[%a@]]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
         pp_focal)
      (Vmap.bindings m.focals)

  let to_string m = Format.asprintf "%a" pp m

  (* Canonical digest: frame name, then the ordered focal assignment
     with hex-float masses ([%h] is lossless for the float instance).
     Bit-identical values digest equally, which is what gives every
     distinct evidence value a single provenance identity. *)
  let digest m =
    let buf = Buffer.create 64 in
    Buffer.add_string buf (Domain.name m.frame);
    Buffer.add_char buf '#';
    Buffer.add_string buf (string_of_int (Vset.cardinal (Domain.values m.frame)));
    Vmap.iter
      (fun set x ->
        Buffer.add_char buf '|';
        Buffer.add_string buf (Format.asprintf "%a" Vset.pp_compact set);
        Buffer.add_char buf '^';
        Buffer.add_string buf (Printf.sprintf "%h" (N.to_float x)))
      m.focals;
    Digest.to_hex (Digest.string (Buffer.contents buf))

  (* Provenance hook shared by direct combination and the cache's miss
     path: operands resolve to their registered derivations (or fresh
     leaves when their history predates provenance being enabled), the
     step records κ, the normalization factor and the rule that ran
     (plus any escalation annotations in [prov]), and the result's
     digest is bound to the new node. Only Dempster (and the Dempster
     leg of discount-then-combine) normalizes, so [norm] is 1 - κ for
     it and 1 for every other rule. *)
  let record_combine ?(rule = "dempster") ?(prov = [])
      ?(norm = fun k -> 1.0 -. k) m1 m2 result =
    let operand m =
      Obs.Provenance.find_or_leaf (digest m) ~label:(to_string m)
    in
    let i1 = operand m1 in
    let i2 = operand m2 in
    match result with
    | Some (res, kappa) ->
        let k = N.to_float kappa in
        let id =
          Obs.Provenance.add Obs.Provenance.Combine (to_string res) ~kappa:k
            ~norm:(norm k)
            ~args:(("rule", rule) :: prov)
            ~inputs:[ i1; i2 ]
        in
        Obs.Provenance.register (digest res) id
    | None ->
        ignore
          (Obs.Provenance.add Obs.Provenance.Combine "(total conflict)"
             ~kappa:1.0 ~norm:0.0
             ~args:(("rule", rule) :: prov)
             ~inputs:[ i1; i2 ])

  let check_frames m1 m2 =
    if not (Domain.equal m1.frame m2.frame) then
      raise (Frame_mismatch (m1.frame, m2.frame))

  (* Conjunctive cross product: feed every pair (X ∩ Y, m1(X)·m2(Y)) to
     [emit]; pairs with empty intersection go to [emit_conflict]. *)
  let cross m1 m2 ~emit ~emit_conflict =
    Vmap.iter
      (fun x mx ->
        Vmap.iter
          (fun y my ->
            let product = N.mul mx my in
            let z = Vset.inter x y in
            if Vset.is_empty z then emit_conflict x y product
            else emit z product)
          m2.focals)
      m1.focals

  let conflict m1 m2 =
    check_frames m1 m2;
    let kappa = ref N.zero in
    cross m1 m2
      ~emit:(fun _ _ -> ())
      ~emit_conflict:(fun _ _ p -> kappa := N.add !kappa p);
    !kappa

  let accumulate table set p =
    table :=
      Vmap.update set
        (function None -> Some p | Some q -> Some (N.add p q))
        !table

  (* Every kernel below emits the shared dst.combine.calls /
     conflict_kappa metrics itself; rule-counter bumps and provenance
     happen once, in [combine_rule_opt]. *)
  let note_call kappa =
    if Obs.Metrics.on () then begin
      Obs.Metrics.incr "dst.combine.calls";
      Obs.Metrics.observe "dst.combine.conflict_kappa" (N.to_float kappa)
    end

  let dempster_raw m1 m2 =
    check_frames m1 m2;
    let table = ref Vmap.empty in
    let kappa = ref N.zero in
    cross m1 m2
      ~emit:(fun set p -> accumulate table set p)
      ~emit_conflict:(fun _ _ p -> kappa := N.add !kappa p);
    note_call !kappa;
    if Vmap.is_empty !table then begin
      Obs.Metrics.incr "dst.combine.total_conflict";
      None
    end
    else
      let norm = N.sub N.one !kappa in
      (* Guard against float drift making norm ≤ 0 while some non-empty
         product survived (cannot happen with exact arithmetic). *)
      if N.compare norm N.zero <= 0 then begin
        Obs.Metrics.incr "dst.combine.total_conflict";
        None
      end
      else
        Some
          ( { frame = m1.frame;
              focals = Vmap.map (fun x -> N.div x norm) !table },
            !kappa )

  let yager_raw m1 m2 =
    check_frames m1 m2;
    let table = ref Vmap.empty in
    let kappa = ref N.zero in
    cross m1 m2
      ~emit:(fun set p -> accumulate table set p)
      ~emit_conflict:(fun _ _ p -> kappa := N.add !kappa p);
    note_call !kappa;
    (* Exact zero test, not the tolerance of [N.equal]: any conflict
       mass at all moves to Ω (keeping Σm = 1 exactly), and the flat
       kernel's [κ <> 0.0] test agrees bit for bit. *)
    if N.compare !kappa N.zero <> 0 then
      accumulate table (Domain.values m1.frame) !kappa;
    ({ frame = m1.frame; focals = !table }, !kappa)

  let dubois_prade_raw m1 m2 =
    check_frames m1 m2;
    let table = ref Vmap.empty in
    let kappa = ref N.zero in
    cross m1 m2
      ~emit:(fun set p -> accumulate table set p)
      ~emit_conflict:(fun x y p ->
        kappa := N.add !kappa p;
        accumulate table (Vset.union x y) p);
    note_call !kappa;
    ({ frame = m1.frame; focals = !table }, !kappa)

  let average_raw m1 m2 =
    check_frames m1 m2;
    (* κ is reported for observability (the escalation policy measures
       it independently); averaging itself neither resolves nor
       redistributes it. *)
    let kappa = conflict m1 m2 in
    note_call kappa;
    let half = N.div N.one (N.add N.one N.one) in
    let halved m = Vmap.map (fun x -> N.mul half x) m.focals in
    let merged =
      Vmap.union (fun _ a b -> Some (N.add a b)) (halved m1) (halved m2)
    in
    ({ frame = m1.frame; focals = merged }, kappa)

  let combine_yager m1 m2 = fst (yager_raw m1 m2)
  let combine_dubois_prade m1 m2 = fst (dubois_prade_raw m1 m2)
  let combine_average m1 m2 = fst (average_raw m1 m2)

  let combine_disjunctive m1 m2 =
    check_frames m1 m2;
    let table = ref Vmap.empty in
    Vmap.iter
      (fun x mx ->
        Vmap.iter
          (fun y my -> accumulate table (Vset.union x y) (N.mul mx my))
          m2.focals)
      m1.focals;
    { frame = m1.frame; focals = !table }

  let discount alpha m =
    if alpha < 0.0 || alpha > 1.0 then
      invalid_arg "Mass.discount: reliability outside [0,1]"
    else begin
      let a = N.of_float alpha in
      let omega = Domain.values m.frame in
      let scaled =
        Vmap.fold
          (fun set x acc -> (set, N.mul a x) :: acc)
          m.focals
          [ (omega, N.sub N.one a) ]
      in
      (* [make] merges the Ω entries and drops zeros. *)
      let result = make m.frame scaled in
      if Obs.Provenance.on () && alpha < 1.0 then begin
        let src =
          Obs.Provenance.find_or_leaf (digest m) ~label:(to_string m)
        in
        let id =
          Obs.Provenance.add Obs.Provenance.Discount (to_string result)
            ~alpha ~inputs:[ src ]
        in
        Obs.Provenance.register (digest result) id
      end;
      result
    end

  (* --- rule dispatch and the escalation policy ----------------------- *)

  let combine_rule_opt ?(rule = Rule.Dempster) ?(prov = []) m1 m2 =
    if Obs.Metrics.on () then Obs.Metrics.incr (Rule.metric rule);
    match rule with
    | Rule.Dempster ->
        let r = dempster_raw m1 m2 in
        if Obs.Provenance.on () then record_combine ~prov m1 m2 r;
        r
    | Rule.Yager ->
        let res, kappa = yager_raw m1 m2 in
        let r = Some (res, kappa) in
        if Obs.Provenance.on () then
          record_combine ~rule:"yager" ~prov ~norm:(fun _ -> 1.0) m1 m2 r;
        r
    | Rule.Dubois_prade ->
        let res, kappa = dubois_prade_raw m1 m2 in
        let r = Some (res, kappa) in
        if Obs.Provenance.on () then
          record_combine ~rule:"dubois-prade" ~prov
            ~norm:(fun _ -> 1.0)
            m1 m2 r;
        r
    | Rule.Averaging ->
        let res, kappa = average_raw m1 m2 in
        let r = Some (res, kappa) in
        if Obs.Provenance.on () then
          record_combine ~rule:"averaging" ~prov ~norm:(fun _ -> 1.0) m1 m2 r;
        r
    | Rule.Discount_then_combine alpha ->
        (* Discounting both operands puts at least (1-α)² of joint mass
           on Ω ∩ Ω, so for α < 1 the Dempster leg cannot totally
           conflict. The Discount provenance nodes record themselves;
           the Combine node names the composite rule and takes the
           discounted operands as inputs, so `.why` shows the full
           derivation. *)
        let d1 = discount alpha m1 and d2 = discount alpha m2 in
        let r = dempster_raw d1 d2 in
        if Obs.Provenance.on () then
          record_combine ~rule:(Rule.to_string rule) ~prov d1 d2 r;
        r

  let combine_opt m1 m2 = combine_rule_opt m1 m2

  let combine m1 m2 =
    match combine_opt m1 m2 with
    | Some (m, _) -> m
    | None -> raise Total_conflict

  let escalation_prov primary (e : Rule.escalation) =
    [ ("escalated_from", Rule.to_string primary);
      ("kappa0", Printf.sprintf "%g" e.Rule.kappa0) ]

  let record_quarantine ~primary ~(e : Rule.escalation) ~kappa m1 m2 =
    let operand m =
      Obs.Provenance.find_or_leaf (digest m) ~label:(to_string m)
    in
    let i1 = operand m1 in
    let i2 = operand m2 in
    ignore
      (Obs.Provenance.add Obs.Provenance.Combine "(quarantined)"
         ~kappa:(N.to_float kappa) ~norm:0.0
         ~args:
           (("rule", Rule.to_string primary)
           :: ("escalation", "quarantine")
           :: [ ("kappa0", Printf.sprintf "%g" e.Rule.kappa0) ])
         ~inputs:[ i1; i2 ])

  let combine_policy_with ~(kernel : kernel) ?policy m1 m2 =
    let policy =
      match policy with Some p -> p | None -> Rule.current ()
    in
    let primary = policy.Rule.primary in
    let finish ~escalated rule = function
      | Some (result, kappa) -> Combined { result; kappa; rule; escalated }
      | None -> Conflicted
    in
    match policy.Rule.escalation with
    | None -> finish ~escalated:false primary (kernel ~rule:primary ~prov:[] m1 m2)
    | Some e ->
        (* The threshold tests the operands' conjunctive conflict — the
           same κ Dempster would normalize away — regardless of which
           primary rule is configured, so switching primaries never
           moves the escalation boundary. Fires at κ = κ₀ exactly. *)
        let kappa = conflict m1 m2 in
        if N.to_float kappa < e.Rule.kappa0 then
          finish ~escalated:false primary
            (kernel ~rule:primary ~prov:[] m1 m2)
        else begin
          if Obs.Metrics.on () then
            Obs.Metrics.incr "dst.combine.escalations";
          if Obs.Log.on () then
            Obs.Log.record ~severity:Obs.Log.Warn
              ~fields:
                [ ("rule", Rule.to_string primary);
                  ("kappa", Printf.sprintf "%g" (N.to_float kappa));
                  ("kappa0", Printf.sprintf "%g" e.Rule.kappa0) ]
              Obs.Log.Escalation "combination kappa crossed the threshold";
          match e.Rule.fallback with
          | Rule.Quarantine ->
              if Obs.Provenance.on () then
                record_quarantine ~primary ~e ~kappa m1 m2;
              if Obs.Log.on () then
                Obs.Log.record ~severity:Obs.Log.Error
                  ~fields:
                    [ ("rule", Rule.to_string primary);
                      ("kappa", Printf.sprintf "%g" (N.to_float kappa)) ]
                  Obs.Log.Quarantine "escalated combination quarantined";
              Quarantined { kappa }
          | Rule.Fallback fb ->
              finish ~escalated:true fb
                (kernel ~rule:fb ~prov:(escalation_prov primary e) m1 m2)
        end

  let default_kernel ~rule ~prov m1 m2 = combine_rule_opt ~rule ~prov m1 m2
  let combine_policy ?policy m1 m2 =
    combine_policy_with ~kernel:default_kernel ?policy m1 m2

  let combine_policy_exn ?policy m1 m2 =
    match combine_policy ?policy m1 m2 with
    | Combined { result; _ } -> result
    | Conflicted -> raise Total_conflict
    | Quarantined { kappa } -> raise (Quarantined_cell (N.to_float kappa))

  (* Cache-hit lineage reconstruction: rebuild exactly the node the
     cold miss recorded, but only when the cache outlived the arena
     (within one arena the digest is already bound and this adds
     nothing). Quarantined and Conflicted outcomes bind no digest, so
     there is nothing to relink. *)
  let relink ?policy m1 m2 outcome =
    let policy =
      match policy with Some p -> p | None -> Rule.current ()
    in
    match outcome with
    | Quarantined _ | Conflicted -> ()
    | Combined { result; kappa; rule; escalated } -> (
        match Obs.Provenance.find (digest result) with
        | Some _ -> ()
        | None ->
            let prov =
              if escalated then
                match policy.Rule.escalation with
                | Some e -> escalation_prov policy.Rule.primary e
                | None -> []
              else []
            in
            let record ~norm a b =
              record_combine ~rule:(Rule.to_string rule) ~prov ~norm a b
                (Some (result, kappa))
            in
            (match rule with
            | Rule.Dempster -> record ~norm:(fun k -> 1.0 -. k) m1 m2
            | Rule.Discount_then_combine alpha ->
                (* The cold path combined the discounted operands (their
                   Discount nodes re-record here), so the rebuilt node
                   has the same inputs move for move. *)
                let d1 = discount alpha m1 and d2 = discount alpha m2 in
                record ~norm:(fun k -> 1.0 -. k) d1 d2
            | Rule.Yager | Rule.Dubois_prade | Rule.Averaging ->
                record ~norm:(fun _ -> 1.0) m1 m2))

  let combine_many ?(rule = Rule.Dempster) ms =
    match ms with
    | [] -> raise (Invalid_mass "combine_many: empty list")
    | m :: rest -> (
        match rule with
        | Rule.Averaging ->
            (* The n-ary mixture (weight 1/n each), NOT the left fold of
               pairwise averaging — that fold would weight source i by
               2^-(n-i) because averaging is not associative. *)
            List.iter (check_frames m) rest;
            let n = N.of_float (float_of_int (List.length ms)) in
            let entries =
              List.concat_map
                (fun m ->
                  List.map (fun (s, x) -> (s, N.div x n)) (focals m))
                ms
            in
            make m.frame entries
        | _ ->
            List.fold_left
              (fun acc m ->
                match combine_rule_opt ~rule acc m with
                | Some (r, _) -> r
                | None -> raise Total_conflict)
              m rest)

  let condition m set = combine m (certain_set m.frame set)

  let pignistic m =
    let table = Hashtbl.create 16 in
    Vmap.iter
      (fun set x ->
        let share = N.div x (N.of_float (float_of_int (Vset.cardinal set))) in
        Vset.iter
          (fun v ->
            let cur =
              match Hashtbl.find_opt table v with Some c -> c | None -> N.zero
            in
            Hashtbl.replace table v (N.add cur share))
          set)
      m.focals;
    Hashtbl.fold (fun v x acc -> (v, x) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> Value.compare a b)

  let approximate ~max_focals m =
    if max_focals < 1 then invalid_arg "Mass.approximate: max_focals < 1"
    else if Vmap.cardinal m.focals <= max_focals then m
    else begin
      let omega = Domain.values m.frame in
      (* Ω never counts against the budget: dropped mass lands there. *)
      let by_mass =
        Vmap.bindings m.focals
        |> List.filter (fun (set, _) -> not (Vset.equal set omega))
        |> List.sort (fun (_, a) (_, b) -> N.compare b a)
      in
      let keep_count = max_focals - 1 in
      let rec split i kept = function
        | [] -> (kept, N.zero)
        | (set, x) :: rest ->
            if i < keep_count then split (i + 1) ((set, x) :: kept) rest
            else
              ( kept,
                List.fold_left (fun acc (_, y) -> N.add acc y) x rest )
      in
      let kept, dropped = split 0 [] by_mass in
      let omega_mass = N.add (mass m omega) dropped in
      make m.frame ((omega, omega_mass) :: kept)
    end

  let best_by measure m =
    let omega = Domain.values m.frame in
    let best =
      Vset.fold
        (fun v acc ->
          let score = measure m (Vset.singleton v) in
          match acc with
          | Some (_, s) when N.compare s score >= 0 -> acc
          | _ -> Some (v, score))
        omega None
    in
    match best with
    | Some (v, _) -> v
    | None -> raise (Invalid_mass "empty frame")

  let max_bel m = best_by bel m
  let max_pls m = best_by pls m

  let equal m1 m2 =
    Domain.equal m1.frame m2.frame
    && Vmap.cardinal m1.focals = Vmap.cardinal m2.focals
    && Vmap.for_all
         (fun set x -> N.equal x (mass m2 set))
         m1.focals

  (* A total order consistent with structural identity (exact masses, not
     the tolerance of [equal]) so mass functions can key maps — the
     combination memo-cache relies on it. *)
  let compare m1 m2 =
    let c = Domain.compare m1.frame m2.frame in
    if c <> 0 then c else Vmap.compare N.compare m1.focals m2.focals

end

module F = Make (Num.Float)
