module R = Rng

let schema = Gen.schema "q"

let env rng ?(size = 10) ?(overlap = 0.5) () =
  let ra, rb = Gen.source_pair rng ~size ~overlap schema in
  [ ("ra", ra); ("rb", rb) ]

(* The a0 value of a random stored tuple — so definite-equality probes
   actually hit (Gen's a0 cells are drawn from a 1000-value space, a
   fresh random value would nearly always miss). *)
let some_a0 rng r =
  let ts = Erm.Relation.tuples r in
  let t = List.nth ts (R.int rng (List.length ts)) in
  match Erm.Etuple.cells t with
  | Erm.Etuple.Definite v :: _ -> v
  | _ -> Dst.Value.string "a0-0"

let gen_vset rng =
  List.init
    (1 + R.int rng 3)
    (fun _ -> Dst.Value.string (Printf.sprintf "v%d" (R.int rng 8)))

let gen_cmp rng =
  match R.int rng 4 with
  | 0 -> Erm.Predicate.Eq
  | 1 -> Erm.Predicate.Ne
  | 2 -> Erm.Predicate.Le
  | _ -> Erm.Predicate.Gt

let pred rng env =
  let ra = List.assoc "ra" env in
  let atom () =
    match R.int rng 6 with
    | 0 -> Query.Ast.Is ("a0", [ some_a0 rng ra ])
    | 1 ->
        Query.Ast.Cmp
          ( Erm.Predicate.Eq,
            Query.Ast.Attr "k",
            Query.Ast.Scalar
              (Dst.Value.string (Printf.sprintf "key%d" (R.int rng 15))) )
    | 2 -> Query.Ast.Is ("e0", gen_vset rng)
    | 3 -> Query.Ast.Is ("e1", gen_vset rng)
    | 4 ->
        Query.Ast.Cmp
          (gen_cmp rng, Query.Ast.Attr "e0", Query.Ast.Set_lit (gen_vset rng))
    | _ ->
        Query.Ast.Cmp
          ( Erm.Predicate.Eq,
            Query.Ast.Attr "a0",
            Query.Ast.Scalar (some_a0 rng ra) )
  in
  match R.int rng 5 with
  | 0 -> atom ()
  | 1 | 2 -> Query.Ast.And (atom (), atom ())
  | 3 -> Query.Ast.And (atom (), Query.Ast.And (atom (), atom ()))
  | _ -> (
      match R.int rng 3 with
      | 0 -> Query.Ast.Or (atom (), atom ())
      | 1 -> Query.Ast.Not (atom ())
      | _ -> Query.Ast.True)

(* Definite-only predicates carry crisp (1,1)/(0,0) supports, and
   multiplying a support by exactly 1.0 or 0.0 is order-independent in
   float arithmetic. The planner may push such a conjunct below a join
   (reassociating the F_TM product); with crisp factors the
   reassociation is bit-exact, so these are the only extra conjuncts a
   generated ON clause may carry. *)
let crisp_pred rng env =
  let ra = List.assoc "ra" env in
  let atom () =
    match R.int rng 3 with
    | 0 -> Query.Ast.Is ("a0", [ some_a0 rng ra ])
    | 1 ->
        Query.Ast.Cmp
          ( Erm.Predicate.Eq,
            Query.Ast.Attr "k",
            Query.Ast.Scalar
              (Dst.Value.string (Printf.sprintf "key%d" (R.int rng 15))) )
    | _ ->
        Query.Ast.Cmp
          ( Erm.Predicate.Eq,
            Query.Ast.Attr "a0",
            Query.Ast.Scalar (some_a0 rng ra) )
  in
  match R.int rng 4 with
  | 0 -> atom ()
  | 1 -> Query.Ast.And (atom (), atom ())
  | 2 -> Query.Ast.Not (atom ())
  | _ -> Query.Ast.True

let threshold rng =
  match R.int rng 4 with
  | 0 -> Erm.Threshold.always
  | 1 -> Erm.Threshold.sn_gt (R.float rng 0.8)
  | 2 -> Erm.Threshold.sp_ge (R.float rng 0.8)
  | _ -> Erm.Threshold.(sn_gt 0.1 &&& sp_ge 0.3)

let query rng env =
  let base () = Query.Ast.Rel (if R.bool rng then "ra" else "rb") in
  let cols () =
    match R.int rng 3 with
    | 0 -> None
    | 1 -> Some [ "k"; "e0" ]
    | _ -> Some [ "k"; "a0"; "e1" ]
  in
  let select from =
    Query.Ast.Select
      { cols = cols (); from; where = pred rng env;
        threshold = threshold rng }
  in
  let setop a b =
    match R.int rng 3 with
    | 0 -> Query.Ast.Union (a, b)
    | 1 -> Query.Ast.Intersect (a, b)
    | _ -> Query.Ast.Except (a, b)
  in
  let join () =
    let right = Query.Ast.Prefixed { from = base (); prefix = "r_" } in
    let eq =
      match R.int rng 3 with
      | 0 ->
          (* definite key equality — hash-join eligible *)
          Query.Ast.Cmp
            (Erm.Predicate.Eq, Query.Ast.Attr "k", Query.Ast.Attr "r_k")
      | 1 ->
          Query.Ast.Cmp
            (Erm.Predicate.Eq, Query.Ast.Attr "a0", Query.Ast.Attr "r_a0")
      | _ ->
          (* evidential equality — must stay a nested loop *)
          Query.Ast.Cmp
            (Erm.Predicate.Eq, Query.Ast.Attr "e0", Query.Ast.Attr "r_e0")
    in
    let on =
      if R.bool rng then eq else Query.Ast.And (eq, crisp_pred rng env)
    in
    Query.Ast.Join { left = base (); right; on; threshold = threshold rng }
  in
  match R.int rng 8 with
  | 0 -> base ()
  | 1 | 2 -> select (base ())
  | 3 -> select (setop (base ()) (base ()))
  | 4 -> setop (base ()) (base ())
  | 5 -> join ()
  | 6 ->
      Query.Ast.Product
        (base (), Query.Ast.Prefixed { from = base (); prefix = "p_" })
  | _ ->
      (* ranked only over set operations of stored relations: those are
         bit-identical between the two pipelines, so LIMIT can never cut
         at a value that differs in the last ulp between them. *)
      Query.Ast.Ranked
        { from = setop (base ()) (base ());
          by = (if R.bool rng then Erm.Threshold.Sn else Erm.Threshold.Sp);
          ascending = R.bool rng;
          limit = Some (1 + R.int rng 8) }
