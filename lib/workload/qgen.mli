(** Random query generation over {!Gen}'s synthetic schema.

    Produces ASTs spanning every operator the planner knows — scans,
    selections (probe-eligible definite equalities next to evidential
    residuals), set operations, hash- and loop-joins, products, ranking —
    over a two-relation environment named [ra]/[rb]. Deterministic given
    the {!Rng.t}, so a failing case is reproducible from its seed.

    This is the workload for the differential conformance harness
    (test/test_conformance.ml): the same generated query is executed on
    the naive evaluator, the physical planner and the single-source
    integration surface, and the results must agree exactly. *)

val schema : Erm.Schema.t
(** [Gen.schema "q"]: key [k], definite [a0], evidential [e0]/[e1] over
    8-value frames. *)

val env : Rng.t -> ?size:int -> ?overlap:float -> unit ->
  (string * Erm.Relation.t) list
(** Two relations [ra]/[rb] over {!schema} with [size] tuples each
    (default 10) sharing [overlap·size] keys (default 0.5). *)

val pred : Rng.t -> (string * Erm.Relation.t) list -> Query.Ast.pred
(** A random predicate over {!schema}, biased toward conjunctions that
    hold an index-probe-eligible definite equality next to evidential
    residuals. Values are drawn from the stored relations so equality
    probes actually hit. *)

val threshold : Rng.t -> Erm.Threshold.t
(** Always / SN / SP / conjunction, with random cutoffs. *)

val query : Rng.t -> (string * Erm.Relation.t) list -> Query.Ast.query
(** A random query over [ra]/[rb], confined to the bit-exact-conformant
    fragment: Ranked-with-limit only appears above set operations of
    stored relations (a LIMIT can then never cut at a value that
    differs in the last ulp between evaluation orders), and extra ON
    conjuncts are definite-only — their crisp (1,1)/(0,0) supports make
    the planner's join pushdown an exact reassociation, so pushdown is
    still exercised without breaking Float.equal conformance. *)
