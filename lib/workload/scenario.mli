(** Adversarial high-conflict evidence scenarios (extension).

    The combination-rule literature is driven by a handful of
    pathological cases where Dempster's rule behaves counterintuitively;
    this module generates them as a seeded fixture corpus so every rule
    ({!Dst.Rule}) can be exercised — and compared — on exactly the
    inputs it was designed to disagree on:

    - {b Zadeh}: Zadeh's classic paradox. Two sources each give 0.99 to
      a different singleton and 0.01 to a shared third; κ = 0.9999 and
      Dempster concludes the shared hypothesis with certainty, while
      Yager moves the conflict to Ω and averaging keeps the two
      majorities visible.
    - {b Near_total}: both sources nearly certain of disjoint
      singletons, with an ε of ignorance keeping κ strictly below 1 —
      the region where Dempster's normalization amplifies ε-sized
      remainders.
    - {b One_against_many}: several moderately-confident agreeing
      sources and one concentrated opposer — the n-ary shape where
      rule choice decides whether the majority or the loudest source
      wins.
    - {b Dissenter}: near-unanimity with a single dissenter spreading
      its mass over alternatives — low pairwise κ within the majority,
      high κ against the dissenter.

    All draws go through {!Rng}, so a seed pins the whole corpus. *)

type kind = Zadeh | Near_total | One_against_many | Dissenter

val all_kinds : kind list
(** In the order above. *)

val kind_name : kind -> string
(** Lower-kebab name ("zadeh", "near-total", …) for fixtures, bench
    labels and CLI selection. *)

val kind_of_string : string -> (kind, string) result

val pair : Rng.t -> kind -> Dst.Domain.t -> Dst.Mass.F.t * Dst.Mass.F.t
(** The scenario reduced to one adversarial operand pair — for
    [One_against_many]/[Dissenter] that is (a majority source, the
    opposer). The domain needs at least 3 values.
    @raise Invalid_argument on a smaller domain. *)

val group : Rng.t -> kind -> Dst.Domain.t -> Dst.Mass.F.t list
(** The full n-ary scenario, in combination order: for [Zadeh] and
    [Near_total] the two operands; for [One_against_many] and
    [Dissenter] the majority sources followed by the opposer (3–5
    masses). Feed to {!Dst.Mass.S.combine_many}.
    @raise Invalid_argument if the domain has fewer than 3 values. *)

val corpus :
  seed:int ->
  ?per_kind:int ->
  Dst.Domain.t ->
  (kind * Dst.Mass.F.t list) list
(** [per_kind] (default 5) independently seeded groups of every kind,
    grouped by kind in {!all_kinds} order. Equal seeds give equal
    corpora. *)

val schema : Dst.Domain.t -> Erm.Schema.t
(** The one-evidential-attribute schema ([k : string] key, [e] over the
    domain) that {!source_pair} builds relations over. *)

val source_pair :
  Rng.t -> rows:int -> kind -> Dst.Domain.t -> Erm.Relation.t * Erm.Relation.t
(** Two union-compatible single-attribute relations whose key-matched
    rows each realize an independent draw of the scenario: row [i] of
    the left relation carries the pair's first mass, row [i] of the
    right its second; membership is crisp (1,1) so rule behavior on the
    {e attribute} evidence is the only variable. Integrating them
    (e.g. {!Integration.Merge.by_key}) exercises the rule once per
    row. *)
