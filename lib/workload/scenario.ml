type kind = Zadeh | Near_total | One_against_many | Dissenter

let all_kinds = [ Zadeh; Near_total; One_against_many; Dissenter ]

let kind_name = function
  | Zadeh -> "zadeh"
  | Near_total -> "near-total"
  | One_against_many -> "one-against-many"
  | Dissenter -> "dissenter"

let kind_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "zadeh" -> Ok Zadeh
  | "near-total" | "near_total" -> Ok Near_total
  | "one-against-many" | "one_against_many" -> Ok One_against_many
  | "dissenter" -> Ok Dissenter
  | other ->
      Error
        (Printf.sprintf
           "unknown scenario \"%s\" (expected zadeh, near-total, \
            one-against-many or dissenter)"
           other)

(* Three distinct hypotheses: every scenario opposes concentrations on
   [a] and [b], with [c] as the marginal shared (or alternative)
   hypothesis. Drawn, not fixed, so different seeds stress different
   corners of the frame. *)
let distinct3 rng dom =
  let values = Dst.Vset.to_list (Dst.Domain.values dom) in
  if List.length values < 3 then
    invalid_arg "Scenario: domain needs at least 3 values";
  match Rng.sample rng 3 values with
  | [ a; b; c ] -> (a, b, c)
  | _ -> assert false

let mass dom entries =
  Dst.Mass.F.make dom
    (List.map (fun (vs, w) -> (Dst.Vset.of_list vs, w)) entries)

let omega dom = Dst.Vset.to_list (Dst.Domain.values dom)

(* Zadeh (1984): the two experts' only common ground carries 0.01 from
   each, yet Dempster concludes it with certainty (κ = 0.9999). *)
let zadeh_pair rng dom =
  let a, b, c = distinct3 rng dom in
  ( mass dom [ ([ a ], 0.99); ([ c ], 0.01) ],
    mass dom [ ([ b ], 0.99); ([ c ], 0.01) ] )

(* Disjoint near-certainties with an ε of declared ignorance: κ stays
   strictly below 1, so Dempster is defined but rests everything on
   ε-sized products. *)
let near_total_pair rng dom =
  let a, b, _ = distinct3 rng dom in
  let eps = 0.001 +. Rng.float rng 0.019 in
  ( mass dom [ ([ a ], 1.0 -. eps); (omega dom, eps) ],
    mass dom [ ([ b ], 1.0 -. eps); (omega dom, eps) ] )

let majority_size rng = 2 + Rng.int rng 3 (* 2..4 majority sources *)

(* Several moderately-confident sources agreeing on [a] against one
   source concentrated on [b]. *)
let one_against_many_group rng dom =
  let a, b, _ = distinct3 rng dom in
  let n = majority_size rng in
  let consensus () =
    let w = 0.7 +. Rng.float rng 0.25 in
    mass dom [ ([ a ], w); (omega dom, 1.0 -. w) ]
  in
  let majority = List.init n (fun _ -> consensus ()) in
  majority @ [ mass dom [ ([ b ], 0.9); (omega dom, 0.1) ] ]

(* Near-unanimity with one dissenter hedging across alternatives. *)
let dissenter_group rng dom =
  let a, b, c = distinct3 rng dom in
  let n = majority_size rng in
  let unanimous () = mass dom [ ([ a ], 0.95); (omega dom, 0.05) ] in
  let majority = List.init n (fun _ -> unanimous ()) in
  majority
  @ [ mass dom [ ([ b ], 0.6); ([ b; c ], 0.3); (omega dom, 0.1) ] ]

let group rng kind dom =
  match kind with
  | Zadeh ->
      let m1, m2 = zadeh_pair rng dom in
      [ m1; m2 ]
  | Near_total ->
      let m1, m2 = near_total_pair rng dom in
      [ m1; m2 ]
  | One_against_many -> one_against_many_group rng dom
  | Dissenter -> dissenter_group rng dom

let pair rng kind dom =
  match kind with
  | Zadeh -> zadeh_pair rng dom
  | Near_total -> near_total_pair rng dom
  | One_against_many | Dissenter -> (
      match group rng kind dom with
      | first :: rest -> (first, List.nth rest (List.length rest - 1))
      | [] -> assert false)

let corpus ~seed ?(per_kind = 5) dom =
  List.concat_map
    (fun kind ->
      List.init per_kind (fun i ->
          let rng =
            Rng.create (seed lxor Hashtbl.hash (kind_name kind, i))
          in
          (kind, group rng kind dom)))
    all_kinds

let schema dom =
  Erm.Schema.make ~name:"scenario"
    ~key:[ Erm.Attr.definite "k" "string" ]
    ~nonkey:[ Erm.Attr.evidential "e" dom ]

let source_pair rng ~rows kind dom =
  let s = schema dom in
  let crisp = Dst.Support.make ~sn:1.0 ~sp:1.0 in
  let lefts = ref [] and rights = ref [] in
  for i = rows - 1 downto 0 do
    let m1, m2 = pair rng kind dom in
    let key = [ Dst.Value.string (Printf.sprintf "k%03d" i) ] in
    let row m =
      Erm.Etuple.make s ~key ~cells:[ Erm.Etuple.Evidence m ] ~tm:crisp
    in
    lefts := row m1 :: !lefts;
    rights := row m2 :: !rights
  done;
  ( Erm.Relation.of_tuples s !lefts,
    Erm.Relation.of_tuples s !rights )
