type t = {
  mutable rows_in : int;
  mutable rows_out : int;
  mutable pruned : int;
  mutable index_hits : int;
  mutable index_misses : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable wall_ns : float;
}

let create () =
  { rows_in = 0;
    rows_out = 0;
    pruned = 0;
    index_hits = 0;
    index_misses = 0;
    cache_hits = 0;
    cache_misses = 0;
    wall_ns = 0.0 }

(* Fold one operator's counters into the process-wide registry, keyed by
   operator name. No-ops (inside each call) when metrics are disabled. *)
let publish ~op s =
  if Obs.Metrics.on () then begin
    let key suffix = "physical." ^ op ^ suffix in
    Obs.Metrics.incr (key ".calls");
    Obs.Metrics.incr ~by:s.rows_in (key ".rows_in");
    Obs.Metrics.incr ~by:s.rows_out (key ".rows_out");
    Obs.Metrics.incr ~by:s.pruned (key ".pruned");
    Obs.Metrics.observe (key ".wall_ns") s.wall_ns
  end

let pp ppf s =
  Format.fprintf ppf "rows=%d/%d" s.rows_in s.rows_out;
  if s.pruned > 0 then Format.fprintf ppf " pruned=%d" s.pruned;
  if s.index_hits > 0 || s.index_misses > 0 then
    Format.fprintf ppf " idx=%d/%d" s.index_hits
      (s.index_hits + s.index_misses);
  if s.cache_hits > 0 || s.cache_misses > 0 then
    Format.fprintf ppf " memo=%d/%d" s.cache_hits
      (s.cache_hits + s.cache_misses);
  Format.fprintf ppf " t=%s"
    (if s.wall_ns >= 1e6 then Printf.sprintf "%.1fms" (s.wall_ns /. 1e6)
     else Printf.sprintf "%.1fus" (s.wall_ns /. 1e3))

let to_string s = Format.asprintf "%a" pp s
