(** Query plans as printable trees with cardinality estimates.

    Estimation is structural and conservative — it never evaluates the
    query. A scan's bounds are the stored tuple count; a selection can
    keep anything from nothing to everything; union bounds add, product
    bounds multiply; [LIMIT k] caps both ends. The point is to show
    {e shape} (what the optimizer moved where) and {e blow-up risk}
    (products), not precise selectivities — evidential selectivity would
    need the very Bel/Pls evaluation the explainer avoids. *)

type node = {
  op : string;  (** e.g. ["scan"], ["select"], ["join"]. *)
  detail : string;  (** Relation name, predicate text, threshold, … *)
  rows_min : float;
  rows_max : float;
  children : node list;
}

val explain : Eval.env -> Ast.query -> node
(** @raise Eval.Eval_error on unknown relations (schemas must
    resolve). *)

val explain_optimized : Eval.env -> Ast.query -> node
(** {!explain} of [Plan.optimize]'s output — what will actually run. *)

val pp : Format.formatter -> node -> unit
(** An indented tree, one node per line:
    {v
    select [rating IS {ex}] rows=[0, 6]
      union rows=[6, 11]
        scan ra rows=[6, 6]
        scan rb rows=[5, 5]
    v} *)

val to_string : node -> string

(** {1 EXPLAIN ANALYZE}

    Unlike {!explain}, [analyze] {e does} evaluate: it plans the query
    with {!Physical.plan_optimized}, executes it, and returns the result
    together with the measured per-operator tree — actual cardinalities,
    closure/threshold pruning, index and memo-cache traffic, and
    per-operator wall time (see {!Stats} for field semantics). *)

val analyze :
  ?ctx:Physical.ctx -> Eval.env -> Ast.query -> Erm.Relation.t * Physical.report
(** Raises as {!Eval.eval} does. *)

val pp_report : Format.formatter -> Physical.report -> unit
(** An indented tree mirroring {!pp}, one measured operator per line:
    {v
    hash-join [rname = r_rname] rows=6/4 pruned=2 idx=3/6 t=0.2ms
      index-scan [ra.city = sf] rows=3/3 idx=1/1 t=40.0us
      seq-scan [rb] rows=5/5 t=12.0us
    v} *)

val report_to_string : Physical.report -> string
