let fail fmt = Format.kasprintf (fun s -> raise (Eval.Eval_error s)) fmt

let src =
  Logs.Src.create "eridb.query" ~doc:"physical query plan execution"

module Log = (val Logs.src_log src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* Plan representation                                                 *)

type access = Seq_scan | Index_eq of { attr : string; value : Dst.Value.t }

type t =
  | Scan of {
      rel : string;
      access : access;
      residual : Ast.pred;
      threshold : Erm.Threshold.t;
      cols : string list option;
    }
  | Filter of {
      input : t;
      where : Ast.pred;
      threshold : Erm.Threshold.t;
      cols : string list option;
    }
  | Hash_join of {
      left : t;
      right : t;
      left_attr : string;
      right_attr : string;
      residual : Ast.pred;
      threshold : Erm.Threshold.t;
    }
  | Loop_join of {
      left : t;
      right : t;
      on : Ast.pred;
      threshold : Erm.Threshold.t;
    }
  | Product of t * t
  | Union of t * t
  | Intersect of t * t
  | Except of t * t
  | Rank of {
      input : t;
      by : Erm.Threshold.field;
      ascending : bool;
      limit : int option;
    }
  | Prefix of { input : t; prefix : string }

(* ------------------------------------------------------------------ *)
(* Planner                                                             *)

let is_definite schema a =
  match Erm.Schema.find_opt schema a with
  | Some attr -> (
      match Erm.Attr.kind attr with
      | Erm.Attr.Definite _ -> true
      | Erm.Attr.Evidential _ -> false)
  | None -> false

(* An equality between a definite attribute and a constant value. Its
   selection support is crisp — (1,1) on the matching tuples, (0,0)
   elsewhere — so probing an index for the value and filtering by the
   residual is arithmetic-identical to the full scan. *)
let probe_of_conjunct schema = function
  | Ast.Is (a, [ v ]) when is_definite schema a -> Some (a, v)
  | Ast.Cmp (Erm.Predicate.Eq, Ast.Attr a, Ast.Scalar v)
    when is_definite schema a ->
      Some (a, v)
  | Ast.Cmp (Erm.Predicate.Eq, Ast.Scalar v, Ast.Attr a)
    when is_definite schema a ->
      Some (a, v)
  | _ -> None

(* An equality between a definite attribute of each operand — the
   hash-join key. Operands referencing the right schema first are
   swapped into (left, right) order. *)
let equi_of_conjunct sl sr = function
  | Ast.Cmp (Erm.Predicate.Eq, Ast.Attr a, Ast.Attr b) ->
      if is_definite sl a && is_definite sr b then Some (a, b)
      else if is_definite sl b && is_definite sr a then Some (b, a)
      else None
  | _ -> None

(* First conjunct accepted by [pick], with the remaining conjuncts in
   their original order. *)
let extract pick conjs =
  let rec go seen = function
    | [] -> None
    | c :: rest -> (
        match pick c with
        | Some x -> Some (x, List.rev_append seen rest)
        | None -> go (c :: seen) rest)
  in
  go [] conjs

let rec plan env q =
  match q with
  | Ast.Rel name ->
      Scan
        { rel = name;
          access = Seq_scan;
          residual = Ast.True;
          threshold = Erm.Threshold.Always;
          cols = None }
  | Ast.Select { cols; from = Ast.Rel name; where; threshold } -> (
      let schema =
        match List.assoc_opt name env with
        | Some r -> Erm.Relation.schema r
        | None -> fail "unknown relation %s" name
      in
      match extract (probe_of_conjunct schema) (Plan.conjuncts where) with
      | Some ((attr, value), rest) ->
          Scan
            { rel = name;
              access = Index_eq { attr; value };
              residual = Plan.conjoin rest;
              threshold;
              cols }
      | None ->
          Scan { rel = name; access = Seq_scan; residual = where; threshold; cols })
  | Ast.Select { cols; from; where; threshold } ->
      Filter { input = plan env from; where; threshold; cols }
  | Ast.Join { left; right; on; threshold } -> (
      let pl = plan env left and pr = plan env right in
      let sl = Plan.infer_schema env left
      and sr = Plan.infer_schema env right in
      match extract (equi_of_conjunct sl sr) (Plan.conjuncts on) with
      | Some ((left_attr, right_attr), rest) ->
          Hash_join
            { left = pl;
              right = pr;
              left_attr;
              right_attr;
              residual = Plan.conjoin rest;
              threshold }
      | None -> Loop_join { left = pl; right = pr; on; threshold })
  | Ast.Product (a, b) -> Product (plan env a, plan env b)
  | Ast.Union (a, b) -> Union (plan env a, plan env b)
  | Ast.Intersect (a, b) -> Intersect (plan env a, plan env b)
  | Ast.Except (a, b) -> Except (plan env a, plan env b)
  | Ast.Ranked { from; by; ascending; limit } ->
      Rank { input = plan env from; by; ascending; limit }
  | Ast.Prefixed { from; prefix } -> Prefix { input = plan env from; prefix }

let plan_optimized env q = plan env (Plan.optimize env q)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let string_of_pred = function
  | Ast.True -> ""
  | p -> Format.asprintf " [%a]" Ast.pp_pred p

let string_of_threshold = function
  | Erm.Threshold.Always -> ""
  | t -> Format.asprintf " WITH %a" Erm.Threshold.pp t

let string_of_cols = function
  | None -> ""
  | Some cs -> " -> " ^ String.concat ", " cs

let label = function
  | Scan { rel; access = Seq_scan; residual; threshold; cols } ->
      ( "seq-scan",
        rel ^ string_of_pred residual ^ string_of_threshold threshold
        ^ string_of_cols cols )
  | Scan { rel; access = Index_eq { attr; value }; residual; threshold; cols }
    ->
      ( "index-scan",
        Format.asprintf "%s.%s = %a%s%s%s" rel attr Dst.Value.pp value
          (string_of_pred residual)
          (string_of_threshold threshold)
          (string_of_cols cols) )
  | Filter { where; threshold; cols; _ } ->
      ( "filter",
        (match where with
        | Ast.True -> "all"
        | p -> Format.asprintf "%a" Ast.pp_pred p)
        ^ string_of_threshold threshold ^ string_of_cols cols )
  | Hash_join { left_attr; right_attr; residual; threshold; _ } ->
      ( "hash-join",
        Format.asprintf "%s = %s%s%s" left_attr right_attr
          (string_of_pred residual)
          (string_of_threshold threshold) )
  | Loop_join { on; threshold; _ } ->
      ( "loop-join",
        Format.asprintf "%a%s" Ast.pp_pred on (string_of_threshold threshold)
      )
  | Product _ -> ("product", "")
  | Union _ -> ("union", "dempster merge, memoized")
  | Intersect _ -> ("intersect", "key-matched dempster merge")
  | Except _ -> ("except", "key difference")
  | Rank { by; ascending; limit; _ } ->
      ( "rank",
        Format.asprintf "by %s %s%s"
          (match by with Erm.Threshold.Sn -> "sn" | Erm.Threshold.Sp -> "sp")
          (if ascending then "asc" else "desc")
          (match limit with
          | Some k -> Printf.sprintf " limit %d" k
          | None -> "") )
  | Prefix { prefix; _ } -> ("prefix", prefix)

let children = function
  | Scan _ -> []
  | Filter { input; _ } | Rank { input; _ } | Prefix { input; _ } -> [ input ]
  | Hash_join { left; right; _ } | Loop_join { left; right; _ } ->
      [ left; right ]
  | Product (a, b) | Union (a, b) | Intersect (a, b) | Except (a, b) ->
      [ a; b ]

let rec pp_indented indent ppf p =
  let op, detail = label p in
  Format.fprintf ppf "%s%s%s" indent op
    (if detail = "" then "" else " [" ^ detail ^ "]");
  List.iter
    (fun child ->
      Format.pp_print_newline ppf ();
      pp_indented (indent ^ "  ") ppf child)
    (children p)

let pp ppf p = pp_indented "" ppf p
let to_string p = Format.asprintf "%a" pp p

(* ------------------------------------------------------------------ *)
(* Execution context                                                   *)

type ctx = {
  indexes : (string * string, Erm.Relation.t * Erm.Index.t) Hashtbl.t;
  cache : Dst.Combine_cache.t;
}

let create_ctx () =
  { indexes = Hashtbl.create 16; cache = Dst.Combine_cache.create () }

let cache ctx = ctx.cache

(* Indexes are immutable snapshots; reuse one only while the relation
   bound to the name is physically the same value. A rebound or updated
   relation misses the [==] test and the index is rebuilt — staleness by
   construction cannot be observed through the context. *)
let index_for ctx name r attr =
  match Hashtbl.find_opt ctx.indexes (name, attr) with
  | Some (r0, idx) when r0 == r -> idx
  | _ ->
      let idx = Erm.Index.build r attr in
      Hashtbl.replace ctx.indexes (name, attr) (r, idx);
      idx

(* ------------------------------------------------------------------ *)
(* Executor                                                            *)

type report = {
  r_op : string;
  r_detail : string;
  r_stats : Stats.t;
  r_children : report list;
}

(* Timing flows through the default tracer's clock so a simulated clock
   (ERIDB_CLOCK=virtual) makes per-operator wall times deterministic. *)
let now_ns () = (Obs.Trace.clock Obs.Trace.default).Obs.Clock.now_ms () *. 1e6

let rel_of env name =
  match List.assoc_opt name env with
  | Some r -> r
  | None -> fail "unknown relation %s" name

(* The Select arm of Eval.eval, verbatim: bind, select, project. *)
let select_project input where threshold cols =
  let schema = Erm.Relation.schema input in
  let pred = Eval.bind_pred (Erm.Schema.find_opt schema) where in
  let selected = Erm.Ops.select ~threshold pred input in
  match cols with
  | None -> selected
  | Some names -> (
      try Erm.Ops.project names selected
      with Erm.Schema.Schema_error m -> fail "projection: %s" m)

let lookup_two sa sb a =
  match Erm.Schema.find_opt sa a with
  | Some attr -> Some attr
  | None -> Erm.Schema.find_opt sb a

let execute_measured ?ctx env p =
  let ctx = match ctx with Some c -> c | None -> create_ctx () in
  let rec exec p =
    if Obs.Trace.on () then
      let op, detail = label p in
      Obs.Trace.with_span ~cat:"query.physical"
        ~args:[ ("detail", detail) ]
        op
        (fun () -> exec_node p)
    else exec_node p
  and exec_node p =
    let stats = Stats.create () in
    let finish ~children out =
      stats.Stats.rows_out <- Erm.Relation.cardinal out;
      let op, detail = label p in
      Stats.publish ~op stats;
      Log.debug (fun m -> m "%s [%s] %s" op detail (Stats.to_string stats));
      (out, { r_op = op; r_detail = detail; r_stats = stats; r_children = children })
    in
    match p with
    | Scan { rel; access; residual; threshold; cols } -> (
        let base = rel_of env rel in
        match access with
        | Seq_scan ->
            let t0 = now_ns () in
            let out = select_project base residual threshold cols in
            stats.Stats.wall_ns <- now_ns () -. t0;
            stats.Stats.rows_in <- Erm.Relation.cardinal base;
            stats.Stats.pruned <-
              stats.Stats.rows_in - Erm.Relation.cardinal out;
            finish ~children:[] out
        | Index_eq { attr; value } ->
            let t0 = now_ns () in
            let idx = index_for ctx rel base attr in
            let bucket = Erm.Index.select_eq idx base value in
            let candidates = Erm.Relation.cardinal bucket in
            Obs.Metrics.observe "physical.index_probe.rows"
              (float_of_int candidates);
            if candidates > 0 then stats.Stats.index_hits <- 1
            else stats.Stats.index_misses <- 1;
            let out = select_project bucket residual threshold cols in
            stats.Stats.wall_ns <- now_ns () -. t0;
            stats.Stats.rows_in <- candidates;
            stats.Stats.pruned <- candidates - Erm.Relation.cardinal out;
            finish ~children:[] out)
    | Filter { input; where; threshold; cols } ->
        let child, crep = exec input in
        let t0 = now_ns () in
        let out = select_project child where threshold cols in
        stats.Stats.wall_ns <- now_ns () -. t0;
        stats.Stats.rows_in <- Erm.Relation.cardinal child;
        stats.Stats.pruned <- stats.Stats.rows_in - Erm.Relation.cardinal out;
        finish ~children:[ crep ] out
    | Hash_join { left; right; left_attr; right_attr; residual; threshold } ->
        let ra, arep = exec left in
        let rb, brep = exec right in
        let sa = Erm.Relation.schema ra and sb = Erm.Relation.schema rb in
        let pred = Eval.bind_pred (lookup_two sa sb) residual in
        let matched = ref 0 and kept = ref 0 in
        let tally ~hit ~matched:m ~kept:k =
          if hit then stats.Stats.index_hits <- stats.Stats.index_hits + 1
          else stats.Stats.index_misses <- stats.Stats.index_misses + 1;
          matched := !matched + m;
          kept := !kept + k
        in
        let t0 = now_ns () in
        let out =
          try
            Erm.Ops.join_indexed ~threshold ~residual:pred ~tally ~left_attr
              ~right_attr ra rb
          with Erm.Schema.Schema_error m -> fail "join: %s" m
        in
        stats.Stats.wall_ns <- now_ns () -. t0;
        stats.Stats.rows_in <-
          Erm.Relation.cardinal ra + Erm.Relation.cardinal rb;
        stats.Stats.pruned <- !matched - !kept;
        finish ~children:[ arep; brep ] out
    | Loop_join { left; right; on; threshold } ->
        let ra, arep = exec left in
        let rb, brep = exec right in
        let sa = Erm.Relation.schema ra and sb = Erm.Relation.schema rb in
        let pred = Eval.bind_pred (lookup_two sa sb) on in
        let t0 = now_ns () in
        let out =
          try Erm.Ops.join ~threshold pred ra rb
          with Erm.Schema.Schema_error m -> fail "join: %s" m
        in
        stats.Stats.wall_ns <- now_ns () -. t0;
        stats.Stats.rows_in <-
          Erm.Relation.cardinal ra + Erm.Relation.cardinal rb;
        stats.Stats.pruned <-
          (Erm.Relation.cardinal ra * Erm.Relation.cardinal rb)
          - Erm.Relation.cardinal out;
        finish ~children:[ arep; brep ] out
    | Product (a, b) ->
        let ra, arep = exec a in
        let rb, brep = exec b in
        let t0 = now_ns () in
        let out =
          try Erm.Ops.product ra rb
          with Erm.Schema.Schema_error m -> fail "product: %s" m
        in
        stats.Stats.wall_ns <- now_ns () -. t0;
        stats.Stats.rows_in <-
          Erm.Relation.cardinal ra + Erm.Relation.cardinal rb;
        stats.Stats.pruned <-
          (Erm.Relation.cardinal ra * Erm.Relation.cardinal rb)
          - Erm.Relation.cardinal out;
        finish ~children:[ arep; brep ] out
    | Union (a, b) ->
        let ra, arep = exec a in
        let rb, brep = exec b in
        let h0 = Dst.Combine_cache.hits ctx.cache
        and m0 = Dst.Combine_cache.misses ctx.cache in
        let t0 = now_ns () in
        let out =
          try Erm.Ops.union_cached ~cache:ctx.cache ra rb
          with Erm.Ops.Incompatible_schemas m -> fail "union: %s" m
        in
        stats.Stats.wall_ns <- now_ns () -. t0;
        stats.Stats.cache_hits <- Dst.Combine_cache.hits ctx.cache - h0;
        stats.Stats.cache_misses <- Dst.Combine_cache.misses ctx.cache - m0;
        stats.Stats.rows_in <-
          Erm.Relation.cardinal ra + Erm.Relation.cardinal rb;
        stats.Stats.pruned <-
          stats.Stats.rows_in - Erm.Relation.cardinal out;
        finish ~children:[ arep; brep ] out
    | Intersect (a, b) ->
        let ra, arep = exec a in
        let rb, brep = exec b in
        let t0 = now_ns () in
        let out =
          try Erm.Ops.intersection ra rb
          with Erm.Ops.Incompatible_schemas m -> fail "intersect: %s" m
        in
        stats.Stats.wall_ns <- now_ns () -. t0;
        stats.Stats.rows_in <-
          Erm.Relation.cardinal ra + Erm.Relation.cardinal rb;
        stats.Stats.pruned <-
          stats.Stats.rows_in - Erm.Relation.cardinal out;
        finish ~children:[ arep; brep ] out
    | Except (a, b) ->
        let ra, arep = exec a in
        let rb, brep = exec b in
        let t0 = now_ns () in
        let out =
          try Erm.Ops.difference ra rb
          with Erm.Ops.Incompatible_schemas m -> fail "except: %s" m
        in
        stats.Stats.wall_ns <- now_ns () -. t0;
        stats.Stats.rows_in <- Erm.Relation.cardinal ra;
        stats.Stats.pruned <-
          stats.Stats.rows_in - Erm.Relation.cardinal out;
        finish ~children:[ arep; brep ] out
    | Rank { input; by; ascending; limit } ->
        let child, crep = exec input in
        let order =
          match by with
          | Erm.Threshold.Sn -> Erm.Rank.By_sn
          | Erm.Threshold.Sp -> Erm.Rank.By_sp
        in
        let t0 = now_ns () in
        let out =
          match limit with
          | None -> child
          | Some k ->
              if ascending then Erm.Rank.bottom ~order k child
              else Erm.Rank.top ~order k child
        in
        stats.Stats.wall_ns <- now_ns () -. t0;
        stats.Stats.rows_in <- Erm.Relation.cardinal child;
        finish ~children:[ crep ] out
    | Prefix { input; prefix } ->
        let child, crep = exec input in
        let t0 = now_ns () in
        let out =
          try Erm.Ops.rename_attrs (fun n -> prefix ^ n) child
          with Erm.Schema.Schema_error m -> fail "prefix: %s" m
        in
        stats.Stats.wall_ns <- now_ns () -. t0;
        stats.Stats.rows_in <- Erm.Relation.cardinal child;
        finish ~children:[ crep ] out
  in
  exec p

let execute ?ctx env p = fst (execute_measured ?ctx env p)
exception Rejected of string list

let apply_guard guard env q =
  match guard with
  | None -> ()
  | Some g -> ( match g env q with [] -> () | findings -> raise (Rejected findings))

(* ------------------------------------------------------------------ *)
(* Execution strategy                                                  *)

type sharded = { shards : int; domains : int }
type strategy = Inline | Sharded of sharded

(* The sharded engine lives in lib/exec, which depends on this module
   (it reuses the plan type and the per-operator semantics). Dispatch
   therefore goes through an installed hook rather than a direct call:
   Exec.Engine.install sets it at program start. *)
let sharded_runner :
    (sharded -> ctx -> Eval.env -> t -> Erm.Relation.t) option ref =
  ref None

let set_sharded_runner f = sharded_runner := Some f

let eval_fast ?ctx ?guard ?(strategy = Inline) env q =
  apply_guard guard env q;
  match strategy with
  | Inline -> execute ?ctx env (plan_optimized env q)
  | Sharded cfg -> (
      match !sharded_runner with
      | Some runner ->
          let ctx = match ctx with Some c -> c | None -> create_ctx () in
          runner cfg ctx env (plan_optimized env q)
      | None -> fail "sharded execution engine not installed")

let run ?ctx ?guard ?strategy env input =
  eval_fast ?ctx ?guard ?strategy env (Parser.parse input)
