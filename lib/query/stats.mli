(** Per-operator execution statistics.

    Every physical operator ({!Physical}) fills one of these while it
    runs; {!Explain.analyze} surfaces the tree. Field meanings:

    - [rows_in] — tuples the operator actually examined: full input
      cardinality for scans and set operators, the probed bucket size
      for an index probe, build + probe cardinalities for a hash join.
    - [rows_out] — result cardinality.
    - [pruned] — candidate tuples dropped by the closure rule ([sn = 0])
      or the membership threshold. [rows_in − rows_out] for unary
      operators; for joins it counts {e matched pairs} that failed, so
      pairs never formed by the hash path are invisible here (that is
      the point of the fast path).
    - [index_hits]/[index_misses] — probes that found / did not find a
      bucket, for index scans (one probe per query) and hash joins (one
      probe per left tuple).
    - [cache_hits]/[cache_misses] — Dempster memo-cache traffic
      ({!Dst.Combine_cache}) attributable to this operator (union and
      intersection only).
    - [wall_ns] — wall-clock time spent in this operator, {e excluding}
      its children. *)

type t = {
  mutable rows_in : int;
  mutable rows_out : int;
  mutable pruned : int;
  mutable index_hits : int;
  mutable index_misses : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable wall_ns : float;
}

val create : unit -> t

val publish : op:string -> t -> unit
(** Fold the counters into {!Obs.Metrics.default} under
    [physical.<op>.calls/.rows_in/.rows_out/.pruned] counters and a
    [physical.<op>.wall_ns] histogram. A no-op while the default
    registry is disabled. *)

val pp : Format.formatter -> t -> unit
(** Compact one-line form, e.g.
    [rows=60/25 pruned=35 idx=8/10 memo=12/14 t=0.3ms]. Zero-valued
    index/cache counters are omitted. *)

val to_string : t -> string
