type env = (string * Erm.Relation.t) list

exception Eval_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

let peer_attr lookup = function
  | Ast.Attr a -> lookup a
  | Ast.Scalar _ | Ast.Set_lit _ | Ast.Evidence_lit _ -> None

let bind_operand lookup ~peer op =
  match op with
  | Ast.Attr a -> (
      match lookup a with
      | Some _ -> Erm.Predicate.Field a
      | None -> fail "unknown attribute %s" a)
  | Ast.Scalar v -> Erm.Predicate.Const (Erm.Etuple.Definite v)
  | Ast.Set_lit vs ->
      (* A set literal is categorical evidence; its own values serve as
         the frame (θ-evaluation never needs a wider Ω). *)
      let set = Dst.Vset.of_list vs in
      let frame = Dst.Domain.make "literal" set in
      Erm.Predicate.Const (Erm.Etuple.Evidence (Dst.Mass.F.certain_set frame set))
  | Ast.Evidence_lit raw -> (
      match peer_attr lookup peer with
      | Some attr -> (
          match Erm.Attr.domain attr with
          | Some dom -> (
              try
                Erm.Predicate.Const
                  (Erm.Etuple.Evidence (Dst.Evidence.of_string dom raw))
              with
              | Dst.Evidence.Parse_error (_, m) ->
                  fail "bad evidence literal %s: %s" raw m
              | Dst.Mass.F.Invalid_mass m ->
                  fail "bad evidence literal %s: %s" raw m)
          | None ->
              fail
                "evidence literal %s compared against definite attribute %s"
                raw (Erm.Attr.name attr))
      | None ->
          fail "evidence literal %s needs an attribute on the other side" raw)

let rec bind_pred lookup = function
  | Ast.True -> Erm.Predicate.Const_true
  | Ast.Is (a, vs) -> (
      match lookup a with
      | Some _ -> Erm.Predicate.Is (a, Dst.Vset.of_list vs)
      | None -> fail "unknown attribute %s" a)
  | Ast.Cmp (cmp, x, y) ->
      Erm.Predicate.Theta
        (cmp, bind_operand lookup ~peer:y x, bind_operand lookup ~peer:x y)
  | Ast.And (a, b) -> Erm.Predicate.And (bind_pred lookup a, bind_pred lookup b)
  | Ast.Or (a, b) -> Erm.Predicate.Or (bind_pred lookup a, bind_pred lookup b)
  | Ast.Not a -> Erm.Predicate.Not (bind_pred lookup a)

let lookup_of_schema schema a = Erm.Schema.find_opt schema a

let lookup_of_schemas sa sb a =
  match Erm.Schema.find_opt sa a with
  | Some attr -> Some attr
  | None -> Erm.Schema.find_opt sb a

let op_name = function
  | Ast.Rel _ -> "rel"
  | Ast.Select _ -> "select"
  | Ast.Union _ -> "union"
  | Ast.Intersect _ -> "intersect"
  | Ast.Except _ -> "except"
  | Ast.Product _ -> "product"
  | Ast.Join _ -> "join"
  | Ast.Ranked _ -> "rank"
  | Ast.Prefixed _ -> "prefix"

let rec eval env q =
  if Obs.Trace.on () then
    Obs.Trace.with_span ~cat:"query.eval" (op_name q) (fun () -> step env q)
  else step env q

and step env = function
  | Ast.Rel name -> (
      match List.assoc_opt name env with
      | Some r -> r
      | None -> fail "unknown relation %s" name)
  | Ast.Select { cols; from; where; threshold } -> (
      let input = eval env from in
      let schema = Erm.Relation.schema input in
      let pred = bind_pred (lookup_of_schema schema) where in
      let selected = Erm.Ops.select ~threshold pred input in
      match cols with
      | None -> selected
      | Some names -> (
          try Erm.Ops.project names selected
          with Erm.Schema.Schema_error m -> fail "projection: %s" m))
  | Ast.Union (a, b) -> (
      let ra = eval env a and rb = eval env b in
      try Erm.Ops.union ra rb
      with Erm.Ops.Incompatible_schemas m -> fail "union: %s" m)
  | Ast.Intersect (a, b) -> (
      let ra = eval env a and rb = eval env b in
      try Erm.Ops.intersection ra rb
      with Erm.Ops.Incompatible_schemas m -> fail "intersect: %s" m)
  | Ast.Except (a, b) -> (
      let ra = eval env a and rb = eval env b in
      try Erm.Ops.difference ra rb
      with Erm.Ops.Incompatible_schemas m -> fail "except: %s" m)
  | Ast.Product (a, b) -> (
      let ra = eval env a and rb = eval env b in
      try Erm.Ops.product ra rb
      with Erm.Schema.Schema_error m -> fail "product: %s" m)
  | Ast.Join { left; right; on; threshold } -> (
      let ra = eval env left and rb = eval env right in
      let sa = Erm.Relation.schema ra and sb = Erm.Relation.schema rb in
      let pred = bind_pred (lookup_of_schemas sa sb) on in
      try Erm.Ops.join ~threshold pred ra rb
      with Erm.Schema.Schema_error m -> fail "join: %s" m)
  | Ast.Ranked { from; by; ascending; limit } -> (
      let input = eval env from in
      let order =
        match by with
        | Erm.Threshold.Sn -> Erm.Rank.By_sn
        | Erm.Threshold.Sp -> Erm.Rank.By_sp
      in
      match limit with
      | None -> input
      | Some k ->
          if ascending then Erm.Rank.bottom ~order k input
          else Erm.Rank.top ~order k input)
  | Ast.Prefixed { from; prefix } -> (
      let input = eval env from in
      try Erm.Ops.rename_attrs (fun n -> prefix ^ n) input
      with Erm.Schema.Schema_error m -> fail "prefix: %s" m)

let run env input = eval env (Parser.parse input)
