(** Physical query plans: the executable counterpart of {!Ast.query}.

    {!Plan} rewrites the logical tree algebraically; this module picks
    {e access paths} and {e join algorithms} for the rewritten tree and
    executes it with per-operator statistics ({!Stats}):

    - a [SELECT] directly over a stored relation whose predicate contains
      a definite-attribute equality conjunct ([a IS {v}] or [a = v])
      becomes an {e index probe} ({!Erm.Index}) followed by a residual
      selection — sound because a definite equality contributes crisp
      [(1,1)]/[(0,0)] support, so restricting the scan to the matching
      bucket is arithmetic-identical to the full scan;
    - a [JOIN] whose [ON] contains an equality between definite
      attributes of the two operands becomes a {e hash join}
      ({!Erm.Ops.join_indexed}) with the remaining conjuncts as a
      residual; θ-predicates over evidence sets keep the nested loop;
    - extended unions route their Dempster combinations through a
      {e memo-cache} ({!Dst.Combine_cache}) shared across the context.

    Both fast paths are property-tested tuple-for-tuple — including the
    derived [(sn, sp)] memberships — against the naive {!Eval} pipeline
    in [test/test_plan_equiv.ml]. *)

type access =
  | Seq_scan
  | Index_eq of { attr : string; value : Dst.Value.t }
      (** Probe an equality index on a definite attribute, then apply the
          residual predicate to the bucket. *)

type t =
  | Scan of {
      rel : string;
      access : access;
      residual : Ast.pred;
      threshold : Erm.Threshold.t;
      cols : string list option;
    }
  | Filter of {
      input : t;
      where : Ast.pred;
      threshold : Erm.Threshold.t;
      cols : string list option;
    }  (** Selection over a derived input (no index available). *)
  | Hash_join of {
      left : t;
      right : t;
      left_attr : string;
      right_attr : string;
      residual : Ast.pred;
      threshold : Erm.Threshold.t;
    }
  | Loop_join of {
      left : t;
      right : t;
      on : Ast.pred;
      threshold : Erm.Threshold.t;
    }
  | Product of t * t
  | Union of t * t
  | Intersect of t * t
  | Except of t * t
  | Rank of {
      input : t;
      by : Erm.Threshold.field;
      ascending : bool;
      limit : int option;
    }
  | Prefix of { input : t; prefix : string }

val plan : Eval.env -> Ast.query -> t
(** Pick access paths and join algorithms for the query as written (no
    algebraic rewriting). Probe/hash eligibility needs the relevant
    attribute to be {e definite} in the operand's schema.
    @raise Eval.Eval_error on unknown relations or invalid queries. *)

val plan_optimized : Eval.env -> Ast.query -> t
(** [plan env (Plan.optimize env q)] — the planner as run by the REPL. *)

val pp : Format.formatter -> t -> unit
(** Indented physical-plan tree, e.g.
    {v
    hash-join [rname = r_rname]
      index-scan [ra.city = sf]
      seq-scan [rb]
    v} *)

val to_string : t -> string

(** {1 Execution} *)

type ctx
(** Execution context: an index cache keyed by [(relation name,
    attribute)] and the shared Dempster memo-cache. Reusing a context
    across queries (as the REPL does) reuses indexes and memoized
    combinations. An index is reused only while the environment still
    binds the {e physically identical} relation value, so
    {!Erm.Relation.replace}-style updates can never be served stale
    results (exercised in [test/test_index.ml]). *)

val create_ctx : unit -> ctx

val cache : ctx -> Dst.Combine_cache.t
(** The context's Dempster memo-cache (for lifetime statistics). *)

type report = {
  r_op : string;  (** Operator name as printed by {!pp}. *)
  r_detail : string;
  r_stats : Stats.t;
  r_children : report list;
}
(** Measured execution tree — one node per physical operator. *)

val execute_measured : ?ctx:ctx -> Eval.env -> t -> Erm.Relation.t * report
(** Run the plan, collecting per-operator statistics. Wall times exclude
    children; input cardinalities are measured, not estimated. Raises as
    {!Eval.eval} does ({!Eval.Eval_error}, evidence conflicts). *)

val execute : ?ctx:ctx -> Eval.env -> t -> Erm.Relation.t

exception Rejected of string list
(** Raised before execution when a [guard] reports findings. *)

(** {1 Execution strategy} *)

type sharded = {
  shards : int;  (** Partitions per operator (≥ 1). *)
  domains : int;  (** Worker budget for {!Exec.Pool} (≥ 1). *)
}

type strategy =
  | Inline  (** Today's single-threaded executor — the default. *)
  | Sharded of sharded
      (** Partitioned evaluation through [Exec.Engine]. Bit-exact
          against [Inline] for every plan (differentially tested in
          test/test_conformance.ml); [{shards = 1; _}] collapses to
          [Inline] outright. *)

val set_sharded_runner :
  (sharded -> ctx -> Eval.env -> t -> Erm.Relation.t) -> unit
(** Install the sharded engine. [Exec.Engine.install] calls this at
    program start; the indirection exists because lib/exec depends on
    this module for the plan type. Evaluating with [Sharded _] before
    installation raises {!Eval.Eval_error}. *)

val eval_fast :
  ?ctx:ctx ->
  ?guard:(Eval.env -> Ast.query -> string list) ->
  ?strategy:strategy ->
  Eval.env ->
  Ast.query ->
  Erm.Relation.t
(** [execute ctx env (plan_optimized env q)]. Relation-equal to
    {!Eval.eval} on every valid query (property-tested).

    [guard] runs a pre-execution admission check on the {e logical}
    query; a non-empty result aborts with {!Rejected} before planning.
    The static analyzer's [Analysis.Check.errors] is the intended guard
    (the dependency points analyzer → query, hence the callback). *)

val run :
  ?ctx:ctx ->
  ?guard:(Eval.env -> Ast.query -> string list) ->
  ?strategy:strategy ->
  Eval.env ->
  string ->
  Erm.Relation.t
(** Parse, plan, execute. The physical counterpart of {!Eval.run}.
    @raise Rejected when [guard] reports findings. *)
