type node = {
  op : string;
  detail : string;
  rows_min : float;
  rows_max : float;
  children : node list;
}

let fail fmt = Format.kasprintf (fun s -> raise (Eval.Eval_error s)) fmt

let rec explain env = function
  | Ast.Rel name -> (
      match List.assoc_opt name env with
      | Some r ->
          let n = float_of_int (Erm.Relation.cardinal r) in
          { op = "scan"; detail = name; rows_min = n; rows_max = n;
            children = [] }
      | None -> fail "unknown relation %s" name)
  | Ast.Select { cols; from; where; threshold } ->
      let child = explain env from in
      let detail =
        String.concat ""
          [ (match where with
            | Ast.True -> "all"
            | p -> Format.asprintf "%a" Ast.pp_pred p);
            (match threshold with
            | Erm.Threshold.Always -> ""
            | t -> Format.asprintf " WITH %a" Erm.Threshold.pp t);
            (match cols with
            | None -> ""
            | Some cs -> " -> " ^ String.concat ", " cs) ]
      in
      (* Evidential selectivity is unknowable without evaluating; a
         selection keeps between none and all of its input. *)
      { op = "select"; detail; rows_min = 0.0; rows_max = child.rows_max;
        children = [ child ] }
  | Ast.Union (a, b) ->
      let ca = explain env a and cb = explain env b in
      { op = "union";
        detail = "dempster merge on key overlap";
        rows_min = Float.max ca.rows_min cb.rows_min;
        rows_max = ca.rows_max +. cb.rows_max;
        children = [ ca; cb ] }
  | Ast.Intersect (a, b) ->
      let ca = explain env a and cb = explain env b in
      { op = "intersect";
        detail = "key-matched dempster merge";
        rows_min = 0.0;
        rows_max = Float.min ca.rows_max cb.rows_max;
        children = [ ca; cb ] }
  | Ast.Except (a, b) ->
      let ca = explain env a and cb = explain env b in
      { op = "except"; detail = "key difference";
        rows_min = Float.max 0.0 (ca.rows_min -. cb.rows_max);
        rows_max = ca.rows_max;
        children = [ ca; cb ] }
  | Ast.Product (a, b) ->
      let ca = explain env a and cb = explain env b in
      { op = "product"; detail = "";
        rows_min = ca.rows_min *. cb.rows_min;
        rows_max = ca.rows_max *. cb.rows_max;
        children = [ ca; cb ] }
  | Ast.Join { left; right; on; threshold } ->
      let ca = explain env left and cb = explain env right in
      let detail =
        Format.asprintf "%a%s" Ast.pp_pred on
          (match threshold with
          | Erm.Threshold.Always -> ""
          | t -> Format.asprintf " WITH %a" Erm.Threshold.pp t)
      in
      { op = "join"; detail; rows_min = 0.0;
        rows_max = ca.rows_max *. cb.rows_max;
        children = [ ca; cb ] }
  | Ast.Prefixed { from; prefix } ->
      let child = explain env from in
      { op = "prefix"; detail = prefix; rows_min = child.rows_min;
        rows_max = child.rows_max; children = [ child ] }
  | Ast.Ranked { from; by; ascending; limit } ->
      let child = explain env from in
      let cap x =
        match limit with Some k -> Float.min x (float_of_int k) | None -> x
      in
      { op = "rank";
        detail =
          Format.asprintf "by %s %s%s"
            (match by with Erm.Threshold.Sn -> "sn" | Erm.Threshold.Sp -> "sp")
            (if ascending then "asc" else "desc")
            (match limit with
            | Some k -> Printf.sprintf " limit %d" k
            | None -> "");
        rows_min = cap child.rows_min;
        rows_max = cap child.rows_max;
        children = [ child ] }

let explain_optimized env q = explain env (Plan.optimize env q)

let rec pp_indented indent ppf n =
  Format.fprintf ppf "%s%s%s rows=[%g, %g]" indent n.op
    (if n.detail = "" then "" else " [" ^ n.detail ^ "]")
    n.rows_min n.rows_max;
  List.iter
    (fun child ->
      Format.pp_print_newline ppf ();
      pp_indented (indent ^ "  ") ppf child)
    n.children

let pp ppf n = pp_indented "" ppf n
let to_string n = Format.asprintf "%a" pp n

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE: run the physical plan, report measured stats.      *)

let analyze ?ctx env q =
  let p = Physical.plan_optimized env q in
  Physical.execute_measured ?ctx env p

let rec pp_report_indented indent ppf (r : Physical.report) =
  Format.fprintf ppf "%s%s%s %s" indent r.Physical.r_op
    (if r.Physical.r_detail = "" then ""
     else " [" ^ r.Physical.r_detail ^ "]")
    (Stats.to_string r.Physical.r_stats);
  List.iter
    (fun child ->
      Format.pp_print_newline ppf ();
      pp_report_indented (indent ^ "  ") ppf child)
    r.Physical.r_children

let pp_report ppf r = pp_report_indented "" ppf r
let report_to_string r = Format.asprintf "%a" pp_report r
