(** Algebraic query rewrites.

    Only rewrites that are {e sound in the extended algebra} are applied.
    Because selection multiplies support pairs into the membership
    ([F_TM]), and products are commutative and associative, the classic
    pushdowns through product/join hold. Two classical rewrites are
    {e unsound} here and deliberately absent:

    - σ does {b not} distribute over extended union: union combines
      matched tuples with Dempster's rule, and
      [F_TM(tm_r ⊕ tm_s, s) ≠ F_TM(tm_r, s) ⊕ F_TM(tm_s, s)] in general;
    - membership thresholds cannot be pushed below an operator: they
      constrain the {e final} membership, so pushed selections always
      carry threshold [Always] while the original threshold stays at the
      top.

    Applied rewrites (to fixpoint):
    + selection cascade: [σ_P[Q](σ_P'[Always](R)) → σ_(P∧P')[Q](R)];
    + select-over-product fusion into join;
    + predicate pushdown through product and join: conjuncts of the
      selection (and of a join's [ON]) that reference only one operand's
      attributes move to that operand as a threshold-free selection. *)

val conjuncts : Ast.pred -> Ast.pred list
(** Top-level conjuncts of a predicate ([True] contributes none). *)

val conjoin : Ast.pred list -> Ast.pred
(** Left-nested conjunction; [conjoin [] = True]. Support of a
    conjunction is a float product, so re-association changes results
    only within float tolerance. *)

val infer_schema : Eval.env -> Ast.query -> Erm.Schema.t
(** The output schema of a query without evaluating it.
    @raise Eval.Eval_error on unknown relations or invalid column
    lists. *)

val optimize : Eval.env -> Ast.query -> Ast.query
(** Rewrite to fixpoint. The result always evaluates to a relation equal
    to the original's (property-tested in [test/test_query.ml]). *)

val eval_optimized : Eval.env -> Ast.query -> Erm.Relation.t
(** [Eval.eval env (optimize env q)]. *)
