(* Cross-granularity integration with frame refinements.

   A city guide classifies restaurants coarsely ({chinese, indian,
   western}); a food blog uses the paper's fine speciality frame. Their
   evidence lives on different frames of discernment, so Dempster's rule
   cannot combine it directly. A refining (Dst.Refinement) maps the
   coarse frame onto the fine one; the guide's evidence is vacuously
   extended — no information invented — and then combined per key. *)

let coarse = Dst.Domain.of_strings "cuisine" [ "chinese"; "indian"; "western" ]

let fine =
  Dst.Domain.of_strings "speciality" [ "hu"; "si"; "ca"; "mu"; "am"; "it" ]

let refining =
  Dst.Refinement.of_assoc ~coarse ~fine
    [ ("chinese", [ "hu"; "si"; "ca" ]);
      ("indian", [ "mu" ]);
      ("western", [ "am"; "it" ]) ]

let schema_over domain name =
  Erm.Schema.make ~name
    ~key:[ Erm.Attr.definite "rname" "string" ]
    ~nonkey:[ Erm.Attr.evidential "speciality" domain ]

let tuple schema domain (rname, ev, tm) =
  Erm.Etuple.make schema
    ~key:[ Dst.Value.string rname ]
    ~cells:[ Erm.Etuple.Evidence (Dst.Evidence.of_string domain ev) ]
    ~tm

let relation domain name rows =
  let schema = schema_over domain name in
  Erm.Relation.of_tuples schema (List.map (tuple schema domain) rows)

(* The guide only knows broad categories — and is quite sure. *)
let guide =
  relation coarse "guide"
    [ ("garden", "[chinese^0.9; ~^0.1]", Dst.Support.certain);
      ("ashiana", "[indian^0.8; ~^0.2]", Dst.Support.certain);
      ("olive", "[western^1]", Dst.Support.make ~sn:0.9 ~sp:1.0) ]

(* The blog distinguishes individual specialities but hedges more. *)
let blog =
  relation fine "blog"
    [ ("garden", "[si^0.5; {hu,si}^0.3; ~^0.2]", Dst.Support.certain);
      ("ashiana", "[mu^0.6; am^0.2; ~^0.2]", Dst.Support.certain);
      ("pho-hut", "[am^0.5; ~^0.5]", Dst.Support.make ~sn:0.7 ~sp:1.0) ]

(* Lift the guide onto the fine frame: each tuple's evidence is refined;
   the schema's attribute domain changes accordingly. *)
let lifted_guide =
  let target = schema_over fine "guide_fine" in
  Erm.Relation.map_tuples
    (fun t ->
      let e = Erm.Etuple.evidence (Erm.Relation.schema guide) t "speciality" in
      Some
        (Erm.Etuple.make target ~key:(Erm.Etuple.key t)
           ~cells:[ Erm.Etuple.Evidence (Dst.Refinement.refine refining e) ]
           ~tm:(Erm.Etuple.tm t)))
    target guide

let () =
  Erm.Render.print ~title:"guide (coarse frame)" guide;
  Erm.Render.print ~title:"blog (fine frame)" blog;
  Erm.Render.print ~title:"guide lifted onto the fine frame" lifted_guide;

  let report = Integration.Merge.by_key lifted_guide blog in
  Format.printf "%a@." Integration.Merge.pp report;
  Erm.Render.print ~title:"integrated" report.integrated;

  (* The coarse "chinese^0.9" sharpens the blog's sichuan lead: the
     combined garden row concentrates nearly all mass inside the chinese
     image set. *)
  let garden =
    Erm.Relation.find report.integrated [ Dst.Value.string "garden" ]
  in
  let garden_ev =
    Erm.Etuple.evidence (Erm.Relation.schema report.integrated) garden
      "speciality"
  in
  Format.printf "garden: Bel(chinese image) = %.3f, decision = %a@."
    (Dst.Mass.F.bel garden_ev
       (Dst.Refinement.image refining (Dst.Vset.of_strings [ "chinese" ])))
    Dst.Value.pp (Dst.Mass.F.max_bel garden_ev);

  (* Ashiana shows disagreement damping: the guide said indian (-> mu),
     the blog hedged towards american; kappa is visible but partial. *)
  let ashiana =
    Erm.Etuple.evidence (Erm.Relation.schema report.integrated)
      (Erm.Relation.find report.integrated [ Dst.Value.string "ashiana" ])
      "speciality"
  in
  Format.printf "ashiana: %a@." Dst.Evidence.pp ashiana;

  (* Queries work on the common frame afterwards. *)
  let answers =
    Query.Eval.run
      [ ("db", report.integrated) ]
      "SELECT rname FROM db WHERE speciality IS {hu, si, ca} WITH SN > 0.5"
  in
  Erm.Render.print ~title:"likely chinese (fine frame query)" answers;

  (* And results can be reported back at guide granularity. *)
  let coarse_garden = Dst.Refinement.coarsen refining garden_ev in
  Format.printf "garden, coarsened back for the guide: %a@." Dst.Evidence.pp
    coarse_garden
