(* Quickstart: evidence sets, combination, and a first extended relation.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A frame of discernment and two evidence sets over it. *)
  let cuisine = Dst.Domain.of_strings "cuisine" [ "thai"; "lao"; "viet" ] in
  let from_menu = Dst.Evidence.of_string cuisine "[thai^0.6; {thai,lao}^0.3; ~^0.1]" in
  let from_reviews = Dst.Evidence.of_string cuisine "[thai^0.5; lao^0.3; ~^0.2]" in
  Format.printf "menu evidence:    %a@." Dst.Evidence.pp from_menu;
  Format.printf "review evidence:  %a@." Dst.Evidence.pp from_reviews;

  (* 2. Belief and plausibility bound how much each hypothesis is
        supported. *)
  let thai = Dst.Vset.of_strings [ "thai" ] in
  let bel, pls = Dst.Mass.F.interval from_menu thai in
  Format.printf "menu says thai:   Bel = %.3f, Pls = %.3f@." bel pls;

  (* 3. Dempster's rule fuses the two sources (and reports conflict). *)
  let fused = Dst.Mass.F.combine from_menu from_reviews in
  Format.printf "fused:            %a (kappa = %.3f)@." Dst.Evidence.pp fused
    (Dst.Mass.F.conflict from_menu from_reviews);

  (* 4. An extended relation: definite key, evidential attribute, and a
        tuple-membership support pair. *)
  let schema =
    Erm.Schema.make ~name:"stalls"
      ~key:[ Erm.Attr.definite "name" "string" ]
      ~nonkey:
        [ Erm.Attr.definite "city" "string";
          Erm.Attr.evidential "cuisine" cuisine ]
  in
  let stall name city ev tm =
    Erm.Etuple.make schema
      ~key:[ Dst.Value.string name ]
      ~cells:
        [ Erm.Etuple.Definite (Dst.Value.string city);
          Erm.Etuple.Evidence (Dst.Evidence.of_string cuisine ev) ]
      ~tm
  in
  let stalls =
    Erm.Relation.of_tuples schema
      [ stall "khao-san" "mpls" "[thai^0.8; ~^0.2]" Dst.Support.certain;
        stall "mekong" "st-paul" "[lao^0.6; {lao,viet}^0.4]"
          (Dst.Support.make ~sn:0.7 ~sp:1.0);
        stall "pho-good" "mpls" "[viet^1]" Dst.Support.certain ]
  in
  Erm.Render.print ~title:"stalls" stalls;

  (* 5. Extended selection grades every answer by (sn, sp). *)
  let lao_ish =
    Erm.Ops.select
      ~threshold:(Erm.Threshold.sn_gt 0.0)
      (Erm.Predicate.is_values "cuisine" [ "lao"; "viet" ])
      stalls
  in
  Erm.Render.print ~title:"cuisine is {lao, viet}, sn > 0" lao_ish;

  (* 6. The same through the query language. *)
  let result =
    Query.Eval.run
      [ ("stalls", stalls) ]
      "SELECT name, cuisine FROM stalls WHERE cuisine IS {thai} WITH SP >= 0.9"
  in
  Erm.Render.print ~title:"query result" result
