examples/quickstart.ml: Dst Erm Format Query
