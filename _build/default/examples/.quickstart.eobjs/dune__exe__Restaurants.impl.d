examples/restaurants.ml: Dst Erm Format Integration List Paperdata Printf Query
