examples/restaurants.mli:
