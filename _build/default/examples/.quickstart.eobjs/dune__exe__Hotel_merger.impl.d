examples/hotel_merger.ml: Baselines Dst Erm Format Integration List Printf Query
