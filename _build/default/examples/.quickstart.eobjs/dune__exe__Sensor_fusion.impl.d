examples/sensor_fusion.ml: Dst Erm Format List Query
