examples/quickstart.mli:
