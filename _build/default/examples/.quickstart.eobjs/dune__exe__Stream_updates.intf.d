examples/stream_updates.mli:
