examples/granularity.ml: Dst Erm Format Integration List Query
