examples/granularity.mli:
