examples/stream_updates.ml: Dst Erm Format Integration List Printf Query
