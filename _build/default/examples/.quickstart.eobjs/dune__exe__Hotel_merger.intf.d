examples/hotel_merger.mli:
