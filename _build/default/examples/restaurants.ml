(* The paper's running example, end to end through Figure 1's pipeline:

   raw survey data --preprocess--> R'_A, R'_B --entity id + merge-->
   integrated relation --query processing--> answers.

   Unlike bin/repro.exe (which starts from the already-preprocessed
   Table 1), this example starts one step earlier: from definite raw
   relations plus per-restaurant reviewer votes, exactly the §1.2 story
   ("a panel of six food reviewers ... each reviewer casts one vote"). *)

let spec_domain = Paperdata.speciality
let dish_domain = Paperdata.dish
let rating_domain = Paperdata.rating

(* Raw relations: what each news agency actually stores — definite
   descriptive columns only. *)
let raw_schema name =
  Erm.Schema.make ~name
    ~key:[ Erm.Attr.definite "rname" "string" ]
    ~nonkey:
      [ Erm.Attr.definite "street" "string";
        Erm.Attr.definite "bldg-no" "int";
        Erm.Attr.definite "phone" "string" ]

let raw_tuple schema (rname, street, bldg, phone) =
  Erm.Etuple.make schema
    ~key:[ Dst.Value.string rname ]
    ~cells:
      [ Erm.Etuple.Definite (Dst.Value.string street);
        Erm.Etuple.Definite (Dst.Value.int bldg);
        Erm.Etuple.Definite (Dst.Value.string phone) ]
    ~tm:Dst.Support.certain

let directory =
  [ ("garden", "univ.ave.", 2011, "371-2155");
    ("wok", "wash.ave.", 600, "382-4165");
    ("country", "plato.blvd", 12, "293-9111");
    ("olive", "nic.ave.", 514, "338-0355");
    ("mehl", "9th-street", 820, "333-4035");
    ("ashiana", "univ.ave.", 353, "371-0824") ]

let raw_a =
  let schema = raw_schema "raw_a" in
  Erm.Relation.of_tuples schema (List.map (raw_tuple schema) directory)

let raw_b =
  let schema = raw_schema "raw_b" in
  let no_ashiana = List.filter (fun (n, _, _, _) -> n <> "ashiana") directory in
  Erm.Relation.of_tuples schema (List.map (raw_tuple schema) no_ashiana)

(* Survey data for agency A: six reviewers per restaurant. The tallies
   below consolidate to exactly Table 1's R_A evidence, e.g. garden's
   best dish — 3 votes for d31 and 3 undecided between d35/d36 — becomes
   [d31^0.5; {d35,d36}^0.5]. *)
let v value = Integration.Survey.For (Dst.Value.string value)
let v_any values = Integration.Survey.For_any (Dst.Vset.of_strings values)
let abstain = Integration.Survey.Abstain

let lookup_votes table domain key =
  match key with
  | [ Dst.Value.String rname ] -> (
      match List.assoc_opt rname table with
      | Some votes -> Integration.Survey.of_votes domain votes
      | None -> Integration.Survey.create domain)
  | _ -> Integration.Survey.create domain

let speciality_votes_a =
  [ ("garden", [ v "si"; v "si"; v "hu"; abstain ]);
    ("wok", [ v "si"; v "si"; v "si" ]);
    ("country", [ v "am"; v "am" ]);
    ("olive", [ v "it" ]);
    ("mehl", [ v "mu"; v "mu"; v "mu"; v "mu"; v "ta" ]);
    ("ashiana", List.init 9 (fun _ -> v "mu") @ [ abstain ]) ]

let dish_votes_a =
  [ ("garden", [ v "d31"; v "d31"; v "d31";
                 v_any [ "d35"; "d36" ]; v_any [ "d35"; "d36" ];
                 v_any [ "d35"; "d36" ] ]);
    ("wok", [ v "d6"; v "d6"; v "d7"; v "d7"; v "d25"; v "d25" ]);
    ("country", [ v "d1"; v "d1"; v "d1"; v "d2"; v "d2"; abstain ]);
    ("olive", [ v "d1" ]);
    ("mehl", [ v "d24"; v "d24"; v "d31"; v "d31"; v "d31" ]);
    ("ashiana", [ v "d34"; v "d34"; v "d34"; v "d34"; v "d25" ]) ]

let rating_votes_a =
  [ ("garden", [ v "ex"; v "ex"; v "gd"; v "gd"; v "gd"; v "avg" ]);
    ("wok", [ v "gd"; v "avg"; v "avg"; v "avg" ]);
    ("country", [ v "ex" ]);
    ("olive", [ v "gd"; v "avg" ]);
    ("mehl", [ v "ex"; v "ex"; v "ex"; v "ex"; v "gd" ]);
    ("ashiana", [ v "ex" ]) ]

(* Agency B's summaries, similarly. *)
let speciality_votes_b =
  [ ("garden", [ v "si"; v "si"; v "si"; v "si"; v "si";
                 v "hu"; v "hu"; v "hu"; abstain; abstain ]);
    ("wok", [ v "ca"; v "ca"; v "si"; v "si"; v "si"; v "si"; v "si";
              v "si"; v "si"; abstain ]);
    ("country", [ v "am" ]);
    ("olive", [ v "it" ]);
    ("mehl", [ v "mu" ]) ]

let dish_votes_b =
  [ ("garden", [ v "d31"; v "d31"; v "d31"; v "d31"; v "d31"; v "d31";
                 v "d31"; v "d35"; v "d35"; v "d35" ]);
    ("wok", [ v "d6"; v "d6"; v "d7"; v "d25" ]);
    ("country", [ v "d1"; v "d2"; v "d2"; v "d2"; v "d2" ]);
    ("olive", [ v "d1"; v "d1"; v "d1"; v "d1"; v "d2" ]);
    ("mehl", [ v "d24"; v "d31"; v "d31"; v "d31"; v "d31"; v "d31";
               v "d31"; v "d31"; v "d31"; v "d31" ]) ]

let rating_votes_b =
  [ ("garden", [ v "ex"; v "gd"; v "gd"; v "gd"; v "gd" ]);
    ("wok", [ v "gd" ]);
    ("country", [ v "ex"; v "ex"; v "ex"; v "ex"; v "ex"; v "ex"; v "ex";
                  v "gd"; v "gd"; v "gd" ]);
    ("olive", [ v "gd"; v "gd"; v "gd"; v "gd"; v "avg" ]);
    ("mehl", [ v "ex" ]) ]

(* Preprocessing specs: descriptive columns copy through; the uncertain
   columns are consolidated from the surveys. Agency A's mehl entry is a
   stale listing, so its membership is only half supported; agency B is
   not sure mehl is still open either, (0.8, 1). *)
let spec_of source speciality_votes dish_votes rating_votes membership =
  { Integration.Pipeline.relation = source;
    spec =
      { Integration.Preprocess.target = Paperdata.schema;
        rules =
          [ ("street", Integration.Preprocess.Copy "street");
            ("bldg-no", Integration.Preprocess.Copy "bldg-no");
            ("phone", Integration.Preprocess.Copy "phone");
            ( "speciality",
              Integration.Preprocess.From_survey
                (lookup_votes speciality_votes spec_domain) );
            ( "best-dish",
              Integration.Preprocess.From_survey
                (lookup_votes dish_votes dish_domain) );
            ( "rating",
              Integration.Preprocess.From_survey
                (lookup_votes rating_votes rating_domain) ) ];
        membership } }

let membership_a = function
  | [ Dst.Value.String "mehl" ] -> Dst.Support.make ~sn:0.5 ~sp:0.5
  | _ -> Dst.Support.certain

let membership_b = function
  | [ Dst.Value.String "mehl" ] -> Dst.Support.make ~sn:0.8 ~sp:1.0
  | _ -> Dst.Support.certain

let () =
  let source_a =
    spec_of raw_a speciality_votes_a dish_votes_a rating_votes_a membership_a
  in
  let source_b =
    spec_of raw_b speciality_votes_b dish_votes_b rating_votes_b membership_b
  in

  print_endline "Step 1 — attribute preprocessing (surveys -> evidence):";
  let r_a = Integration.Pipeline.preprocessed source_a in
  let r_b = Integration.Pipeline.preprocessed source_b in
  Erm.Render.print ~title:"R'_A" r_a;
  Erm.Render.print ~title:"R'_B" r_b;
  assert (Erm.Relation.equal r_a Paperdata.r_a);
  assert (Erm.Relation.equal r_b Paperdata.r_b);
  print_endline "(matches Table 1 exactly)";

  print_endline "\nStep 2+3 — entity identification and tuple merging:";
  let report = Integration.Pipeline.integrate source_a source_b in
  Format.printf "%a@." Integration.Merge.pp report;
  Erm.Render.print ~title:"integrated" report.integrated;

  print_endline "\nStep 4 — query processing over the integrated relation:";
  let queries =
    [ "SELECT rname, rating FROM db WHERE speciality IS {si} WITH SN > 0.5";
      "SELECT rname, best-dish FROM db WHERE rating IS {ex} WITH SN >= 0.8";
      "SELECT * FROM db WHERE speciality IS {mu} AND rating IS {ex}" ]
  in
  let env = [ ("db", report.integrated) ] in
  List.iter
    (fun q ->
      Printf.printf "\n> %s\n" q;
      Erm.Render.print (Query.Eval.run env q))
    queries;

  (* Persist the integrated database for the eridb shell. *)
  let out = "integrated_restaurants.erd" in
  Erm.Io.save out
    [ Erm.Relation.map_tuples
        (fun t -> Some t)
        (Erm.Schema.rename_relation "db" (Erm.Relation.schema report.integrated))
        report.integrated ];
  Printf.printf "\nwrote %s (try: dune exec bin/eridb.exe %s)\n" out out
