(* Multi-sensor target classification: evidence fusion beyond two
   sources.

   Three sensors of different reliability observe aircraft. Each report
   is an evidence set over {friend, hostile, neutral}; reliability is
   handled by Shafer discounting, and the combination rules exposed by
   the library (Dempster, Yager, Dubois-Prade, averaging) are compared on
   the same inputs — including a high-conflict case where their
   behaviours differ sharply. *)

let frame = Dst.Domain.of_strings "class" [ "friend"; "hostile"; "neutral" ]
let ev s = Dst.Evidence.of_string frame s

type sensor = { sensor_name : string; reliability : float }

let radar = { sensor_name = "radar"; reliability = 0.9 }
let infrared = { sensor_name = "infrared"; reliability = 0.7 }
let acoustic = { sensor_name = "acoustic"; reliability = 0.5 }

let fuse reports =
  let discounted =
    List.map
      (fun (sensor, report) -> Dst.Mass.F.discount sensor.reliability report)
      reports
  in
  Dst.Mass.F.combine_many discounted

let describe label m =
  let bel set = Dst.Mass.F.bel m (Dst.Vset.of_strings set) in
  Format.printf "%-14s %a@." label Dst.Evidence.pp m;
  Format.printf "%-14s Bel(friend)=%.3f Bel(hostile)=%.3f decision=%a@."
    "" (bel [ "friend" ]) (bel [ "hostile" ]) Dst.Value.pp
    (Dst.Mass.F.max_bel m)

let () =
  print_endline "-- Track 1: consistent reports --";
  let track1 =
    [ (radar, ev "[hostile^0.8; ~^0.2]");
      (infrared, ev "[hostile^0.6; {hostile,neutral}^0.2; ~^0.2]");
      (acoustic, ev "[{friend,hostile}^0.5; ~^0.5]") ]
  in
  List.iter
    (fun (s, m) ->
      Format.printf "%-14s %a (reliability %.1f)@." s.sensor_name
        Dst.Evidence.pp m s.reliability)
    track1;
  describe "fused:" (fuse track1);

  print_endline "\n-- Track 2: radar and infrared disagree --";
  let r2 = ev "[friend^0.9; ~^0.1]" in
  let i2 = ev "[hostile^0.85; ~^0.15]" in
  Format.printf "radar:        %a@." Dst.Evidence.pp r2;
  Format.printf "infrared:     %a@." Dst.Evidence.pp i2;
  Format.printf "kappa = %.3f@." (Dst.Mass.F.conflict r2 i2);
  describe "dempster:" (Dst.Mass.F.combine r2 i2);
  describe "yager:" (Dst.Mass.F.combine_yager r2 i2);
  describe "dubois-prade:" (Dst.Mass.F.combine_dubois_prade r2 i2);
  describe "average:" (Dst.Mass.F.combine_average r2 i2);
  print_endline
    "(Dempster renormalizes the conflict away; Yager turns it into\n\
    \ ignorance; Dubois-Prade keeps it as the disjunction; averaging\n\
    \ just mixes. Discounting unreliable sources keeps kappa < 1.)";

  print_endline "\n-- Track 2 with reliability discounting --";
  describe "fused:" (fuse [ (radar, r2); (infrared, i2) ]);

  (* The same data as an extended relation, queried for action. *)
  print_endline "\n-- Tracks as an extended relation --";
  let schema =
    Erm.Schema.make ~name:"tracks"
      ~key:[ Erm.Attr.definite "track" "int" ]
      ~nonkey:
        [ Erm.Attr.definite "sector" "string";
          Erm.Attr.evidential "class" frame ]
  in
  let tuple track sector m tm =
    Erm.Etuple.make schema
      ~key:[ Dst.Value.int track ]
      ~cells:
        [ Erm.Etuple.Definite (Dst.Value.string sector);
          Erm.Etuple.Evidence m ]
      ~tm
  in
  let tracks =
    Erm.Relation.of_tuples schema
      [ tuple 1 "north" (fuse track1) Dst.Support.certain;
        tuple 2 "north" (fuse [ (radar, r2); (infrared, i2) ])
          (Dst.Support.make ~sn:0.9 ~sp:1.0);
        tuple 3 "south" (ev "[neutral^0.7; ~^0.3]") Dst.Support.certain ]
  in
  Erm.Render.print ~title:"tracks" tracks;
  let alerts =
    Query.Eval.run
      [ ("tracks", tracks) ]
      "SELECT track, sector FROM tracks WHERE class IS {hostile} WITH SN > 0.5"
  in
  Erm.Render.print ~title:"alert: likely hostile (sn > 0.5)" alerts
