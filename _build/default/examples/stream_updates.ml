(* Streaming integration: observations arrive over time instead of as a
   one-shot merge.

   A monitoring station keeps an evidential store of network hosts. Each
   "day", a batch of scanner observations arrives and is absorbed with
   Integration.Incremental; the example tracks how the store's evidence
   sharpens, logs the one poisoned observation as a conflict, and diffs
   consecutive versions with Erm.Delta so an operator can review what a
   day's intake actually changed. *)

let status = Dst.Domain.of_strings "status" [ "up"; "degraded"; "down" ]
let role = Dst.Domain.of_strings "role" [ "web"; "db"; "cache" ]

let schema =
  Erm.Schema.make ~name:"hosts"
    ~key:[ Erm.Attr.definite "host" "string" ]
    ~nonkey:
      [ Erm.Attr.evidential "status" status;
        Erm.Attr.evidential "role" role ]

let obs ?(tm = Dst.Support.make ~sn:0.8 ~sp:1.0) host status_ev role_ev =
  Erm.Etuple.make schema
    ~key:[ Dst.Value.string host ]
    ~cells:
      [ Erm.Etuple.Evidence (Dst.Evidence.of_string status status_ev);
        Erm.Etuple.Evidence (Dst.Evidence.of_string role role_ev) ]
    ~tm

(* Day 1: first sighting of three hosts — everything is hazy. *)
let day1 =
  [ obs "alpha" "[up^0.6; ~^0.4]" "[web^0.5; {web,cache}^0.3; ~^0.2]";
    obs "bravo" "[up^0.5; degraded^0.3; ~^0.2]" "[db^0.7; {db,cache}^0.3]";
    obs "carol" "[~^1]" "[cache^0.4; ~^0.6]" ]

(* Day 2: corroborating scans sharpen the picture; a new host appears. *)
let day2 =
  [ obs "alpha" "[up^0.8; ~^0.2]" "[web^0.7; ~^0.3]";
    obs "bravo" "[up^0.7; ~^0.3]" "[db^0.9; {db,cache}^0.1]";
    obs "delta" "[up^0.9; ~^0.1]" "[cache^1]" ]

(* Day 3: one sensor insists bravo is a web host with certainty — in
   total conflict with the accumulated db-or-cache evidence (κ = 1).
   The store must keep its state and log the conflict, not corrupt
   itself. Had the stored evidence kept even a sliver of Ω, Dempster's
   rule would instead have flipped the whole mass onto "web" — Zadeh's
   classic overconfidence paradox; the discounted re-run below shows the
   robust way to take such a sensor in. *)
let day3 =
  [ obs "bravo" "[up^0.9; ~^0.1]" "[web^1]";
    obs "carol" "[degraded^0.6; ~^0.4]" "[cache^0.8; ~^0.2]" ]

let day3_role_fixed =
  (* The same intake after the operator discounts the suspect sensor. *)
  [ obs "bravo" "[up^0.9; ~^0.1]" "[web^0.6; ~^0.4]";
    obs "carol" "[degraded^0.6; ~^0.4]" "[cache^0.8; ~^0.2]" ]

let show day store =
  Printf.printf "\n== after day %d ==\n" day;
  Format.printf "%a@." Integration.Incremental.pp store;
  Erm.Render.print ~title:"store" (Integration.Incremental.relation store)

let () =
  let store = Integration.Incremental.init schema in
  let store1 = Integration.Incremental.observe_all store day1 in
  show 1 store1;

  let store2 = Integration.Incremental.observe_all store1 day2 in
  show 2 store2;
  print_endline "what day 2 changed:";
  Format.printf "%a@." Erm.Delta.pp
    (Erm.Delta.diff
       (Integration.Incremental.relation store1)
       (Integration.Incremental.relation store2));

  let store3 = Integration.Incremental.observe_all store2 day3 in
  show 3 store3;
  print_endline "conflict log:";
  List.iter
    (fun c -> Format.printf "  %a@." Erm.Ops.pp_conflict c)
    (Integration.Incremental.conflicts store3);
  print_endline
    "(bravo kept its accumulated db role: a totally conflicting\n\
    \ observation is quarantined, not merged)";

  (* Re-running the day with the suspect sensor softened absorbs fine. *)
  let store3' = Integration.Incremental.observe_all store2 day3_role_fixed in
  print_endline "\nthe same intake with the suspect sensor discounted:";
  Format.printf "%a@." Erm.Delta.pp
    (Erm.Delta.diff
       (Integration.Incremental.relation store2)
       (Integration.Incremental.relation store3'));

  (* Operational queries over the live store. *)
  let env = [ ("hosts", Integration.Incremental.relation store3') ] in
  print_endline "\n> hosts that are likely up (SN > 0.6):";
  Erm.Render.print
    (Query.Eval.run env
       "SELECT host, status FROM hosts WHERE status IS {up} WITH SN > 0.6");
  print_endline "> most certain db host:";
  Erm.Render.print
    (Query.Eval.run env
       "SELECT host, role FROM hosts WHERE role IS {db} ORDER BY SN DESC \
        LIMIT 1")
