(* Merging two hotel catalogs: the evidential model side by side with
   the related-work baselines the paper discusses (§1.3).

   Two booking sites rate the same hotels. The DS merge resolves the
   conflicts with Dempster's rule and grades answers by (sn, sp); the
   same data pushed through DeMichiel partial values and Tseng
   probabilistic partial values shows what each representation keeps and
   loses. Dayal's aggregate handles the one numeric column. *)

let stars = Dst.Domain.of_strings "stars" [ "s1"; "s2"; "s3"; "s4"; "s5" ]
let wifi = Dst.Domain.of_strings "wifi" [ "free"; "paid"; "none" ]

let schema name =
  Erm.Schema.make ~name
    ~key:[ Erm.Attr.definite "hotel" "string" ]
    ~nonkey:
      [ Erm.Attr.definite "city" "string";
        Erm.Attr.evidential "stars" stars;
        Erm.Attr.evidential "wifi" wifi ]

let tuple schema (hotel, city, stars_ev, wifi_ev, tm) =
  Erm.Etuple.make schema
    ~key:[ Dst.Value.string hotel ]
    ~cells:
      [ Erm.Etuple.Definite (Dst.Value.string city);
        Erm.Etuple.Evidence (Dst.Evidence.of_string stars stars_ev);
        Erm.Etuple.Evidence (Dst.Evidence.of_string wifi wifi_ev) ]
    ~tm

let relation name rows =
  let s = schema name in
  Erm.Relation.of_tuples s (List.map (tuple s) rows)

let site_a =
  relation "site_a"
    [ ("grand", "oslo", "[s4^0.7; s5^0.3]", "[free^0.8; ~^0.2]",
       Dst.Support.certain);
      ("plaza", "oslo", "[s3^0.6; {s3,s4}^0.4]", "[paid^1]",
       Dst.Support.certain);
      ("fjord", "bergen", "[s2^0.5; s3^0.5]", "[none^0.6; ~^0.4]",
       Dst.Support.make ~sn:0.6 ~sp:1.0);
      ("anker", "oslo", "[s1^1]", "[free^1]", Dst.Support.certain) ]

let site_b =
  relation "site_b"
    [ ("grand", "oslo", "[s4^0.6; ~^0.4]", "[free^1]", Dst.Support.certain);
      ("plaza", "oslo", "[s4^0.5; s3^0.4; ~^0.1]", "[free^0.3; paid^0.7]",
       Dst.Support.certain);
      ("fjord", "bergen", "[s3^0.9; ~^0.1]", "[paid^0.5; none^0.5]",
       Dst.Support.certain);
      (* Total conflict on wifi: site A is certain it's free, site B is
         certain it isn't even offered. *)
      ("bryggen", "bergen", "[s3^1]", "[none^1]", Dst.Support.certain) ]

let site_a_conflicting =
  relation "site_a2"
    [ ("bryggen", "bergen", "[s3^1]", "[free^1]", Dst.Support.certain) ]

let () =
  Erm.Render.print ~title:"site A" site_a;
  Erm.Render.print ~title:"site B" site_b;

  print_endline "\n== Evidential merge (this paper) ==";
  let report = Integration.Merge.by_key site_a site_b in
  Format.printf "%a@." Integration.Merge.pp report;
  Erm.Render.print ~title:"integrated" report.integrated;

  print_endline "A conflicting source is reported, not silently dropped:";
  let report2 =
    Integration.Merge.by_key report.integrated site_a_conflicting
  in
  Format.printf "%a@." Integration.Merge.pp report2;

  print_endline "\nGraded queries over the merge:";
  let env = [ ("hotels", report.integrated) ] in
  List.iter
    (fun q ->
      Printf.printf "\n> %s\n" q;
      Erm.Render.print (Query.Eval.run env q))
    [ "SELECT hotel, stars FROM hotels WHERE stars IS {s4, s5} WITH SN >= 0.5";
      "SELECT hotel, wifi FROM hotels WHERE wifi IS {free} WITH SP >= 0.5" ];

  print_endline "\n== Baseline 1: DeMichiel partial values ==";
  let pv_a = Baselines.Partial_value.relation_of_extended site_a in
  let pv_b = Baselines.Partial_value.relation_of_extended site_b in
  let merged_pv, inconsistencies = Baselines.Partial_value.union pv_a pv_b in
  List.iter
    (fun (t : Baselines.Partial_value.tuple) ->
      Format.printf "%a: stars=%a wifi=%a@." Dst.Value.pp t.key
        Baselines.Partial_value.pp_pv
        (List.assoc "stars" t.cells)
        Baselines.Partial_value.pp_pv
        (List.assoc "wifi" t.cells))
    merged_pv;
  List.iter
    (fun (key, attr) ->
      Format.printf "inconsistent: %a.%s@." Dst.Value.pp key attr)
    inconsistencies;
  let true_t, maybe_t =
    Baselines.Partial_value.select_is merged_pv "stars"
      (Dst.Vset.of_strings [ "s4"; "s5" ])
  in
  Printf.printf
    "stars is {s4,s5}: %d true tuple(s), %d may-be tuple(s)\n\
     (two coarse buckets; the DS answer above grades each tuple by (sn, sp))\n"
    (List.length true_t) (List.length maybe_t);

  print_endline "\n== Baseline 2: Tseng probabilistic partial values ==";
  let ppv_a = Baselines.Prob_partial.relation_of_extended site_a in
  let ppv_b = Baselines.Prob_partial.relation_of_extended site_b in
  let merged_ppv = Baselines.Prob_partial.union ppv_a ppv_b in
  List.iter
    (fun ((t : Baselines.Prob_partial.tuple), p) ->
      Format.printf "%a qualifies with P=%.2f@." Dst.Value.pp t.key p)
    (Baselines.Prob_partial.select_is ~certainty:0.4 merged_ppv "stars"
       (Dst.Vset.of_strings [ "s4"; "s5" ]));
  print_endline
    "(mixture merge keeps both sources' alternatives; subset-level\n\
    \ ignorance like [~^0.4] was already flattened by the pignistic\n\
    \ projection)";

  print_endline "\n== Baseline 3: Dayal aggregates (numeric columns only) ==";
  let prices = [ Dst.Value.int 120; Dst.Value.int 140 ] in
  List.iter
    (fun fn ->
      Format.printf "%s(120, 140) = %a@."
        (Baselines.Aggregate.fn_to_string fn)
        Dst.Value.pp
        (Baselines.Aggregate.resolve fn prices))
    [ Baselines.Aggregate.Average; Baselines.Aggregate.Minimum;
      Baselines.Aggregate.Maximum ];
  (match
     Baselines.Aggregate.resolve_cells Baselines.Aggregate.Average
       [ Erm.Etuple.Evidence
           (Dst.Evidence.of_string stars "[s4^0.5; s5^0.5]") ]
   with
  | _ -> assert false
  | exception Baselines.Aggregate.Not_numeric _ ->
      print_endline
        "average over evidence: rejected (aggregates need definite numeric\n\
        \ values — the paper's argument for evidential resolution)")
