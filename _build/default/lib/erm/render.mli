(** ASCII rendering of extended relations, in the style of the paper's
    tables: one column per attribute plus the trailing [(sn, sp)]
    membership column. *)

val cell_to_string : Etuple.cell -> string
(** Definite values print bare; evidence sets print in the paper
    notation with a configurable number of significant digits. *)

val evidence_to_string : ?digits:int -> Dst.Evidence.t -> string
(** Paper notation with masses rounded to [digits] (default 3)
    significant decimals — e.g. [[si^0.655; hu^0.276; ~^0.069]]. *)

val support_to_string : ?digits:int -> Dst.Support.t -> string

val to_string : ?title:string -> Relation.t -> string
(** A bordered table, tuples in key order. [title] defaults to the
    relation's schema name. *)

val print : ?title:string -> Relation.t -> unit
(** [to_string] to stdout. *)

val row_strings : ?digits:int -> Relation.t -> string list list
(** Header row followed by one row of rendered cells per tuple — the raw
    material for diffing reproduced tables against the paper. [digits]
    (default 3) controls mass rounding. *)

val to_csv : ?digits:int -> Relation.t -> string
(** Comma-separated rendering: a header line, then one line per tuple in
    key order. Fields containing commas, quotes or newlines are quoted
    per RFC 4180. Evidence and membership cells use the same notation as
    the ASCII table; pass [~digits:12] or more when the output must
    re-import through {!Io.relation_of_csv} losslessly enough for mass
    validation. *)

val to_markdown : ?title:string -> Relation.t -> string
(** A GitHub-flavored markdown table, for dropping reproduced tables
    into reports like EXPERIMENTS.md. *)
