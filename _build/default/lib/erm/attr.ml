type kind = Definite of string | Evidential of Dst.Domain.t
type t = { name : string; kind : kind }

let known_value_kinds = [ "string"; "int"; "float"; "bool" ]

let definite name value_kind =
  if not (List.mem value_kind known_value_kinds) then
    invalid_arg ("Attr.definite: unknown value kind " ^ value_kind)
  else { name; kind = Definite value_kind }

let evidential name domain = { name; kind = Evidential domain }
let name a = a.name
let kind a = a.kind
let is_evidential a = match a.kind with Evidential _ -> true | Definite _ -> false

let domain a =
  match a.kind with Evidential d -> Some d | Definite _ -> None

let value_kind_ok a v =
  match a.kind with
  | Evidential _ -> true
  | Definite k -> String.equal (Dst.Value.kind_name v) k

let equal a b =
  String.equal a.name b.name
  &&
  match (a.kind, b.kind) with
  | Definite x, Definite y -> String.equal x y
  | Evidential x, Evidential y -> Dst.Domain.equal x y
  | Definite _, Evidential _ | Evidential _, Definite _ -> false

let rename name a = { a with name }

let pp ppf a =
  match a.kind with
  | Definite k -> Format.fprintf ppf "%s : %s" a.name k
  | Evidential d ->
      Format.fprintf ppf "%s : evidence %a" a.name Dst.Vset.pp
        (Dst.Domain.values d)
