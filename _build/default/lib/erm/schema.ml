type t = { name : string; key : Attr.t list; nonkey : Attr.t list }

exception Schema_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Schema_error s)) fmt

let check_distinct_names attrs =
  let sorted = List.sort String.compare (List.map Attr.name attrs) in
  let rec dup = function
    | a :: b :: _ when String.equal a b -> Some a
    | _ :: rest -> dup rest
    | [] -> None
  in
  match dup sorted with
  | Some a -> fail "duplicate attribute name %s" a
  | None -> ()

let make ~name ~key ~nonkey =
  if key = [] then fail "relation %s has an empty key" name;
  List.iter
    (fun a ->
      if Attr.is_evidential a then
        fail "key attribute %s must be definite" (Attr.name a))
    key;
  check_distinct_names (key @ nonkey);
  { name; key; nonkey }

let name s = s.name
let key s = s.key
let nonkey s = s.nonkey
let attrs s = s.key @ s.nonkey
let arity s = List.length s.key + List.length s.nonkey
let key_arity s = List.length s.key

let find s n =
  match List.find_opt (fun a -> String.equal (Attr.name a) n) (attrs s) with
  | Some a -> a
  | None -> raise Not_found

let find_opt s n =
  List.find_opt (fun a -> String.equal (Attr.name a) n) (attrs s)

let index_in attrs n =
  let rec go i = function
    | [] -> raise Not_found
    | a :: rest ->
        if String.equal (Attr.name a) n then i else go (i + 1) rest
  in
  go 0 attrs

let nonkey_index s n = index_in s.nonkey n
let key_index s n = index_in s.key n
let mem s n = find_opt s n <> None

let is_key s n =
  List.exists (fun a -> String.equal (Attr.name a) n) s.key

let union_compatible a b =
  List.length a.key = List.length b.key
  && List.length a.nonkey = List.length b.nonkey
  && List.for_all2 Attr.equal a.key b.key
  && List.for_all2 Attr.equal a.nonkey b.nonkey

let equal a b = String.equal a.name b.name && union_compatible a b

let project s names =
  List.iter
    (fun n -> if not (mem s n) then fail "unknown attribute %s" n)
    names;
  List.iter
    (fun a ->
      if not (List.mem (Attr.name a) names) then
        fail "projection must retain key attribute %s" (Attr.name a))
    s.key;
  let nonkey =
    List.filter_map
      (fun n -> if is_key s n then None else Some (find s n))
      names
  in
  { s with nonkey }

let product a b =
  let schema =
    { name = a.name ^ "_x_" ^ b.name;
      key = a.key @ b.key;
      nonkey = a.nonkey @ b.nonkey }
  in
  check_distinct_names (attrs schema);
  schema

let rename_relation name s = { s with name }

let rename_attrs f s =
  let schema =
    { s with
      key = List.map (fun a -> Attr.rename (f (Attr.name a)) a) s.key;
      nonkey = List.map (fun a -> Attr.rename (f (Attr.name a)) a) s.nonkey }
  in
  check_distinct_names (attrs schema);
  schema

let pp ppf s =
  Format.fprintf ppf "@[<v 2>relation %s" s.name;
  List.iter (fun a -> Format.fprintf ppf "@,key %a" Attr.pp a) s.key;
  List.iter (fun a -> Format.fprintf ppf "@,attr %a" Attr.pp a) s.nonkey;
  Format.fprintf ppf "@]"
