type cmp = Eq | Ne | Lt | Le | Gt | Ge
type operand = Field of string | Const of Etuple.cell

type t =
  | Is of string * Dst.Vset.t
  | Theta of cmp * operand * operand
  | Theta_fe of cmp * operand * operand
  | And of t * t
  | Or of t * t
  | Not of t
  | Const_true

exception Predicate_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Predicate_error s)) fmt
let is_ a set = Is (a, set)
let is_values a atoms = Is (a, Dst.Vset.of_strings atoms)
let theta cmp x y = Theta (cmp, x, y)
let theta_fe cmp x y = Theta_fe (cmp, x, y)
let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)
let not_ a = Not a

let rec paper_fragment = function
  | Is _ -> true
  | Theta (Ne, _, _) -> false
  | Theta _ -> true
  | Theta_fe _ -> false
  | And (a, b) -> paper_fragment a && paper_fragment b
  | Or _ | Not _ -> false
  | Const_true -> true

(* θ on individual values. Equality across kinds is simply false;
   ordered comparisons across kinds are type errors. *)
let holds cmp x y =
  match cmp with
  | Eq -> Dst.Value.equal x y
  | Ne -> not (Dst.Value.equal x y)
  | Lt -> Dst.Value.compare_ordered x y < 0
  | Le -> Dst.Value.compare_ordered x y <= 0
  | Gt -> Dst.Value.compare_ordered x y > 0
  | Ge -> Dst.Value.compare_ordered x y >= 0

(* Focal decomposition of an operand: a definite value is a certain
   singleton; an evidence set contributes its focal elements. *)
let focals_of_cell = function
  | Etuple.Definite v -> [ (Dst.Vset.singleton v, 1.0) ]
  | Etuple.Evidence e -> Dst.Mass.F.focals e

(* [necessarily] decides whether a focal pair contributes to sn:
   ∀∀ for the paper's formal definition, ∀∃ for the variant its worked
   example uses. The sp side is ∃∃ in both. *)
let theta_support_with ~necessarily cmp a_focals b_focals =
  let sn = ref 0.0 and sp = ref 0.0 in
  List.iter
    (fun (x, mx) ->
      List.iter
        (fun (y, my) ->
          let p = mx *. my in
          if necessarily (holds cmp) x y then sn := !sn +. p;
          if Dst.Vset.exists_pair (holds cmp) x y then sp := !sp +. p)
        b_focals)
    a_focals;
  Dst.Support.make ~sn:!sn ~sp:!sp

let theta_support cmp a b =
  theta_support_with ~necessarily:Dst.Vset.forall_pairs cmp a b

let forall_exists p x y =
  Dst.Vset.for_all (fun a -> Dst.Vset.exists (fun b -> p a b) y) x

let theta_fe_support cmp a b =
  theta_support_with ~necessarily:forall_exists cmp a b

let is_support cell set =
  match cell with
  | Etuple.Definite v ->
      Dst.Support.of_bool (Dst.Vset.mem v set)
  | Etuple.Evidence e ->
      let bel, pls = Dst.Mass.F.interval e set in
      Dst.Support.make ~sn:bel ~sp:pls

let rec eval_with resolve pred =
  match pred with
  | Const_true -> Dst.Support.certain
  | Is (a, set) -> is_support (resolve a) set
  | Theta (cmp, x, y) ->
      let cell_of = function Field a -> resolve a | Const c -> c in
      theta_support cmp
        (focals_of_cell (cell_of x))
        (focals_of_cell (cell_of y))
  | Theta_fe (cmp, x, y) ->
      let cell_of = function Field a -> resolve a | Const c -> c in
      theta_fe_support cmp
        (focals_of_cell (cell_of x))
        (focals_of_cell (cell_of y))
  | And (a, b) ->
      Dst.Support.conjunction (eval_with resolve a) (eval_with resolve b)
  | Or (a, b) ->
      Dst.Support.disjunction (eval_with resolve a) (eval_with resolve b)
  | Not a -> Dst.Support.negation (eval_with resolve a)

let eval schema tuple pred =
  let resolve a =
    match Schema.find_opt schema a with
    | None -> fail "unknown attribute %s" a
    | Some _ -> Etuple.cell schema tuple a
  in
  eval_with resolve pred

let eval_product left_schema right_schema left right pred =
  let resolve a =
    if Schema.mem left_schema a then Etuple.cell left_schema left a
    else if Schema.mem right_schema a then Etuple.cell right_schema right a
    else fail "unknown attribute %s" a
  in
  eval_with resolve pred

let attrs_used pred =
  let rec go acc = function
    | Const_true -> acc
    | Is (a, _) -> a :: acc
    | Theta (_, x, y) | Theta_fe (_, x, y) ->
        let add acc = function Field a -> a :: acc | Const _ -> acc in
        add (add acc x) y
    | And (a, b) | Or (a, b) -> go (go acc a) b
    | Not a -> go acc a
  in
  List.sort_uniq String.compare (go [] pred)

let cmp_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp ppf = function
  | Const_true -> Format.fprintf ppf "true"
  | Is (a, set) -> Format.fprintf ppf "%s is %a" a Dst.Vset.pp set
  | Theta (cmp, x, y) ->
      Format.fprintf ppf "%a %s %a" pp_operand x (cmp_to_string cmp)
        pp_operand y
  | Theta_fe (cmp, x, y) ->
      Format.fprintf ppf "%a ~%s %a" pp_operand x (cmp_to_string cmp)
        pp_operand y
  | And (a, b) -> Format.fprintf ppf "(%a and %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a or %a)" pp a pp b
  | Not a -> Format.fprintf ppf "(not %a)" pp a

and pp_operand ppf = function
  | Field a -> Format.pp_print_string ppf a
  | Const c -> Etuple.pp_cell ppf c
