type field = Sn | Sp
type op = Gt | Ge | Lt | Le | Eq

type t = Always | Cmp of field * op * float | Both of t * t

let always = Always
let sn_gt x = Cmp (Sn, Gt, x)
let sn_ge x = Cmp (Sn, Ge, x)
let sp_gt x = Cmp (Sp, Gt, x)
let sp_ge x = Cmp (Sp, Ge, x)
let certain_only = Cmp (Sn, Eq, 1.0)
let ( &&& ) a b = Both (a, b)

let tol = Dst.Num.float_tolerance

let rec satisfies q support =
  match q with
  | Always -> true
  | Both (a, b) -> satisfies a support && satisfies b support
  | Cmp (field, op, bound) -> (
      let v =
        match field with
        | Sn -> Dst.Support.sn support
        | Sp -> Dst.Support.sp support
      in
      match op with
      | Gt -> v > bound +. tol
      | Ge -> v >= bound -. tol
      | Lt -> v < bound -. tol
      | Le -> v <= bound +. tol
      | Eq -> Float.abs (v -. bound) <= tol)

let field_to_string = function Sn -> "sn" | Sp -> "sp"

let op_to_string = function
  | Gt -> ">"
  | Ge -> ">="
  | Lt -> "<"
  | Le -> "<="
  | Eq -> "="

let rec pp ppf = function
  | Always -> Format.fprintf ppf "always"
  | Cmp (f, op, b) ->
      Format.fprintf ppf "%s %s %g" (field_to_string f) (op_to_string op) b
  | Both (a, b) -> Format.fprintf ppf "%a and %a" pp a pp b
