(** Selection and join conditions over extended tuples, and their support
    evaluation F_SS (§3.1.1).

    Atomic predicates are the paper's two forms:
    - {e is-predicates} [A is {c1, …, cn}]: support is the belief interval
      [(Bel({c1…cn}), Pls({c1…cn}))] of the attribute's evidence set;
    - {e θ-predicates} [X θ Y] with [θ ∈ {=, ≠, <, ≤, >, ≥}] over evidence
      sets: [sn] sums the mass products of focal pairs for which θ holds
      for {e all} element pairs, [sp] those for which θ holds for {e some}
      element pair. ([≠] is an extension; the paper lists the other five.)

    Compound predicates combine atoms with [∧] using the multiplicative
    rule [(sn_S·sn_T, sp_S·sp_T)] under the paper's independence
    assumption. [∨] and [¬] are extensions with the support-logic
    semantics of {!Dst.Support.disjunction} / {!Dst.Support.negation}. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type operand =
  | Field of string  (** An attribute of the tuple (key or non-key). *)
  | Const of Etuple.cell  (** A literal value or evidence set. *)

type t =
  | Is of string * Dst.Vset.t
  | Theta of cmp * operand * operand
  | Theta_fe of cmp * operand * operand
      (** θ with ∀∃ "necessity" semantics: a focal pair counts toward
          [sn] when every element of the left set has {e some} compatible
          element on the right. The paper's formal definition is ∀∀ (the
          {!Theta} constructor), but its §3.1.1 worked example —
          [(\[{1,4}^0.6; {2,6}^0.4\] ≤ \[{2,4}^0.8; 5^0.2\]) = (0.6, 1)] —
          only follows under this ∀∃ reading (∀∀ yields [(0.12, 1)]).
          Both are provided; see EXPERIMENTS.md E11. *)
  | And of t * t
  | Or of t * t  (** Extension. *)
  | Not of t  (** Extension. *)
  | Const_true  (** Support [(1,1)]; identity of [∧]. *)

exception Predicate_error of string

val is_ : string -> Dst.Vset.t -> t
val is_values : string -> string list -> t
(** [is_values a atoms] is [Is (a, {atoms as string values})]. *)

val theta : cmp -> operand -> operand -> t
val theta_fe : cmp -> operand -> operand -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val not_ : t -> t

val paper_fragment : t -> bool
(** True iff the predicate uses only the constructs defined in the paper
    (is/θ atoms except [Ne], and conjunction). *)

val eval : Schema.t -> Etuple.t -> t -> Dst.Support.t
(** The selection support function F_SS: the degree to which the tuple
    satisfies the predicate, as a support pair.
    @raise Predicate_error on unknown attributes or kind mismatches.
    @raise Dst.Value.Type_mismatch when an ordered θ compares values of
    different kinds. *)

val eval_product : Schema.t -> Schema.t -> Etuple.t -> Etuple.t -> t -> Dst.Support.t
(** F_SS for join conditions: evaluates over the concatenation of a tuple
    from each operand without materializing the product tuple. Attribute
    names are resolved in the left schema first. *)

val attrs_used : t -> string list
(** Attribute names referenced, without duplicates. *)

val cmp_to_string : cmp -> string

val pp : Format.formatter -> t -> unit
