(** Secondary indexes on definite attributes (extension).

    Extended selection scans every tuple; an equality predicate on a
    definite attribute (including key attributes) can instead probe a
    hash-consed value → keys map. Because definite attributes have crisp
    support — (1,1) on match, (0,0) otherwise — index-backed equality
    selection returns {e exactly} the tuples of
    [σ̂(A = v)] with their membership unchanged (property-tested in
    [test/test_extensions.ml] and measured in the [ablation:index-*]
    benches). Indexes are immutable snapshots: rebuild after updating
    the relation. *)

type t

exception Not_definite of string
(** Raised by {!build} when the attribute is evidential — evidence
    cells have no single value to index; select on Bel/Pls instead. *)

val build : Relation.t -> string -> t
(** [build r attr] indexes a definite (key or non-key) attribute.
    @raise Not_definite as above. @raise Not_found on unknown names. *)

val attr : t -> string
val distinct_values : t -> int

val lookup : t -> Dst.Value.t -> Dst.Value.t list list
(** Keys of the tuples whose indexed attribute equals the value, in key
    order. *)

val select_eq : t -> Relation.t -> Dst.Value.t -> Relation.t
(** Index-backed [σ̂(attr = v)] over the {e same} relation the index was
    built from (checked by cardinality; using a different relation
    returns whatever matches the stored keys). Equivalent to
    [Ops.select (Theta (Eq, Field attr, Const v))] with threshold
    [always]. *)

val usable_for : t -> Predicate.t -> Dst.Value.t option
(** [Some v] when the predicate is exactly an equality between the
    indexed attribute and a definite constant — the planner-facing
    test. *)
