type order = By_sn | By_sp

let key_compare a b =
  List.compare Dst.Value.compare (Etuple.key a) (Etuple.key b)

let membership_compare order a b =
  let sa = Etuple.tm a and sb = Etuple.tm b in
  match order with
  | By_sn -> Dst.Support.compare sa sb
  | By_sp -> (
      match Float.compare (Dst.Support.sp sa) (Dst.Support.sp sb) with
      | 0 -> Float.compare (Dst.Support.sn sa) (Dst.Support.sn sb)
      | c -> c)

let sorted ?(order = By_sn) ?(ascending = false) r =
  let cmp a b =
    let c = membership_compare order a b in
    let c = if ascending then c else -c in
    if c <> 0 then c else key_compare a b
  in
  List.sort cmp (Relation.tuples r)

let take k l =
  let rec go k l acc =
    if k <= 0 then List.rev acc
    else match l with [] -> List.rev acc | x :: rest -> go (k - 1) rest (x :: acc)
  in
  go k l []

let rebuild schema tuples =
  List.fold_left Relation.add (Relation.empty schema) tuples

let top ?order k r =
  rebuild (Relation.schema r) (take k (sorted ?order ~ascending:false r))

let bottom ?order k r =
  rebuild (Relation.schema r) (take k (sorted ?order ~ascending:true r))

let best r =
  match sorted r with t :: _ -> Some t | [] -> None

let membership_range r =
  match sorted ~ascending:true r with
  | [] -> None
  | weakest :: _ as l ->
      let strongest = List.nth l (List.length l - 1) in
      Some (Etuple.tm weakest, Etuple.tm strongest)
