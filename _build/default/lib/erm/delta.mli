(** Differences between two versions of a relation (extension).

    Re-running an integration after sources change produces a new
    relation; the integrator wants to know {e what moved}: which entities
    appeared or disappeared, whose membership strengthened or weakened,
    and where the new evidence actually contradicts the old (as opposed
    to merely sharpening it). Conflict between the old and new evidence
    for the same cell is measured by Dempster's κ — high κ means the
    revision disagrees with what was stored, not that it refines it. *)

type cell_change = {
  changed_attr : string;
  revision_conflict : float;
      (** κ between the old and new evidence: 0 = pure refinement,
          towards 1 = contradiction. Definite-cell disagreements report
          κ = 1. *)
}

type tuple_change = {
  changed_key : Dst.Value.t list;
  cell_changes : cell_change list;  (** Only the attributes that moved. *)
  old_tm : Dst.Support.t;
  new_tm : Dst.Support.t;
}

type t = {
  added : Dst.Value.t list list;  (** Keys only in the new version. *)
  removed : Dst.Value.t list list;  (** Keys only in the old version. *)
  changed : tuple_change list;
      (** Key-matched tuples whose cells or membership moved. *)
  unchanged : int;
}

val diff : Relation.t -> Relation.t -> t
(** [diff old_version new_version].
    @raise Ops.Incompatible_schemas unless union-compatible. *)

val is_empty : t -> bool

val max_revision_conflict : t -> float
(** The largest κ across all changed cells; 0 when nothing changed. *)

val pp : Format.formatter -> t -> unit
(** A per-key change log:
    {v
    + (ashiana)
    - (closed-door)
    ~ (mehl): best-dish kappa 0.42; membership (0.5, 0.5) -> (0.83, 0.83)
    v} *)
