let round_to digits x =
  let scale = Float.of_int (int_of_float (10.0 ** float_of_int digits)) in
  Float.round (x *. scale) /. scale

(* Precision tracks the rounding: digits 3 prints like %g (6 significant
   digits); digits 12+ prints enough to re-import losslessly. *)
let mass_to_string digits x =
  Printf.sprintf "%.*g" (digits + 3) (round_to digits x)

let evidence_to_string ?(digits = 3) e =
  let omega = Dst.Domain.values (Dst.Mass.F.frame e) in
  let focal_to_string (set, x) =
    let member =
      if Dst.Vset.equal set omega then "~"
      else Format.asprintf "%a" Dst.Vset.pp_compact set
    in
    member ^ "^" ^ mass_to_string digits x
  in
  "[" ^ String.concat "; " (List.map focal_to_string (Dst.Mass.F.focals e)) ^ "]"

let support_to_string ?(digits = 3) s =
  Format.asprintf "(%s, %s)"
    (mass_to_string digits (Dst.Support.sn s))
    (mass_to_string digits (Dst.Support.sp s))

let cell_to_string = function
  | Etuple.Definite v -> Dst.Value.to_string v
  | Etuple.Evidence e -> evidence_to_string e

let row_strings ?(digits = 3) r =
  let schema = Relation.schema r in
  let header =
    List.map Attr.name (Schema.attrs schema) @ [ "(sn,sp)" ]
  in
  let cell = function
    | Etuple.Definite v -> Dst.Value.to_string v
    | Etuple.Evidence e -> evidence_to_string ~digits e
  in
  let row t =
    List.map Dst.Value.to_string (Etuple.key t)
    @ List.map cell (Etuple.cells t)
    @ [ support_to_string ~digits (Etuple.tm t) ]
  in
  header :: List.map row (Relation.tuples r)

let to_string ?title r =
  let title =
    match title with Some t -> t | None -> Schema.name (Relation.schema r)
  in
  let rows = row_strings r in
  let columns =
    match rows with header :: _ -> List.length header | [] -> 0
  in
  let width i =
    List.fold_left (fun w row -> max w (String.length (List.nth row i))) 0 rows
  in
  let widths = List.init columns width in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let render_row row =
    "| " ^ String.concat " | " (List.map2 pad row widths) ^ " |"
  in
  let rule =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  let body =
    match List.map render_row rows with
    | header :: rest ->
        [ rule; header; rule ] @ rest @ [ rule ]
    | [] -> [ rule ]
  in
  String.concat "\n" ((title ^ ":") :: body) ^ "\n"

let print ?title r = print_string (to_string ?title r)

let csv_field s =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quoting then s
  else
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf

let to_csv ?digits r =
  row_strings ?digits r
  |> List.map (fun row -> String.concat "," (List.map csv_field row))
  |> String.concat "\n"
  |> fun body -> body ^ "\n"

let to_markdown ?title r =
  let rows = row_strings r in
  let escape s =
    String.concat "\\|" (String.split_on_char '|' s)
  in
  let line row = "| " ^ String.concat " | " (List.map escape row) ^ " |" in
  match rows with
  | [] -> ""
  | header :: body ->
      let rule =
        "|" ^ String.concat "|" (List.map (fun _ -> " --- ") header) ^ "|"
      in
      let prefix =
        match title with Some t -> [ "**" ^ t ^ "**"; "" ] | None -> []
      in
      String.concat "\n" (prefix @ (line header :: rule :: List.map line body))
      ^ "\n"
