module Key = struct
  type t = Dst.Value.t list

  let compare = List.compare Dst.Value.compare
end

module Kmap = Map.Make (Key)

type t = { schema : Schema.t; tuples : Etuple.t Kmap.t }

exception Relation_error of string
exception Duplicate_key of Dst.Value.t list

let empty schema = { schema; tuples = Kmap.empty }

let add_unchecked r tuple =
  let key = Etuple.key tuple in
  if Kmap.mem key r.tuples then raise (Duplicate_key key)
  else { r with tuples = Kmap.add key tuple r.tuples }

let add r tuple =
  if not (Dst.Support.positive (Etuple.tm tuple)) then
    raise
      (Relation_error
         (Format.asprintf
            "CWA_ER violation: tuple %a has sn = 0 and cannot be stored"
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
               Dst.Value.pp)
            (Etuple.key tuple)))
  else add_unchecked r tuple

let of_tuples schema ts = List.fold_left add (empty schema) ts
let of_tuples_unchecked schema ts =
  List.fold_left add_unchecked (empty schema) ts

let replace r tuple =
  let r = { r with tuples = Kmap.remove (Etuple.key tuple) r.tuples } in
  add r tuple

let remove r key = { r with tuples = Kmap.remove key r.tuples }
let schema r = r.schema
let cardinal r = Kmap.cardinal r.tuples
let is_empty r = Kmap.is_empty r.tuples

let find r key =
  match Kmap.find_opt key r.tuples with
  | Some t -> t
  | None -> raise Not_found

let find_opt r key = Kmap.find_opt key r.tuples
let mem r key = Kmap.mem key r.tuples
let tuples r = List.map snd (Kmap.bindings r.tuples)
let fold f r acc = Kmap.fold (fun _ t acc -> f t acc) r.tuples acc
let iter f r = Kmap.iter (fun _ t -> f t) r.tuples
let filter p r = { r with tuples = Kmap.filter (fun _ t -> p t) r.tuples }
let for_all p r = Kmap.for_all (fun _ t -> p t) r.tuples
let exists p r = Kmap.exists (fun _ t -> p t) r.tuples

let map_tuples f schema r =
  fold
    (fun t acc ->
      match f t with
      | Some t' when Dst.Support.positive (Etuple.tm t') ->
          (* Results of the extended operators keep only sn > 0 tuples:
             the closure property of §3.6. *)
          add acc t'
      | Some _ | None -> acc)
    r (empty schema)

let equal a b =
  Schema.union_compatible a.schema b.schema
  && Kmap.equal Etuple.equal a.tuples b.tuples

let satisfies_cwa r = for_all (fun t -> Dst.Support.positive (Etuple.tm t)) r

let pp ppf r =
  Format.fprintf ppf "@[<v>%a@,%a@]" Schema.pp r.schema
    (Format.pp_print_list
       ~pp_sep:Format.pp_print_cut
       (fun ppf t -> Etuple.pp r.schema ppf t))
    (tuples r)
