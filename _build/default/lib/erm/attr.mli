(** Attribute descriptors of extended relation schemas.

    Keys and plain descriptive columns are {e definite} (exact values of a
    declared kind); columns derived from summaries or conflicting sources
    are {e evidential} (evidence sets over a declared finite domain) —
    the paper prefixes these with [†]. *)

type kind =
  | Definite of string
      (** Exact values; the payload names the value kind expected
          (["string"], ["int"], ["float"], ["bool"]). *)
  | Evidential of Dst.Domain.t
      (** Evidence sets over the given frame of discernment. *)

type t = { name : string; kind : kind }

val definite : string -> string -> t
(** [definite name value_kind]. @raise Invalid_argument on an unknown
    value kind. *)

val evidential : string -> Dst.Domain.t -> t
(** [evidential name domain]. *)

val name : t -> string
val kind : t -> kind
val is_evidential : t -> bool

val domain : t -> Dst.Domain.t option
(** The frame of an evidential attribute; [None] for definite ones. *)

val value_kind_ok : t -> Dst.Value.t -> bool
(** For a definite attribute, whether the value has the declared kind;
    always true for evidential attributes (cells are checked against the
    domain instead). *)

val equal : t -> t -> bool
(** Same name and same kind (domains compared by value set). *)

val rename : string -> t -> t

val pp : Format.formatter -> t -> unit
(** [street : string] or [speciality : evidence {am, ca, hu, it, mu, si}]. *)
