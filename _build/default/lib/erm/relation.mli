(** Extended relations.

    A set of extended tuples with definite, unique keys, under the
    generalized closed world assumption CWA_ER (§2.3): every stored tuple
    has positive necessary support ([sn > 0]); tuples not stored are
    interpreted as having [sn = 0]. {!add} enforces the invariant; the
    [_unchecked] variants exist solely for the Theorem-1 boundedness
    experiments, which must materialize complement tuples. *)

type t

exception Relation_error of string

exception Duplicate_key of Dst.Value.t list
(** Raised when inserting a tuple whose key is already present. *)

val empty : Schema.t -> t

val add : t -> Etuple.t -> t
(** @raise Relation_error when the tuple violates CWA_ER ([sn = 0]).
    @raise Duplicate_key when the key is already bound. *)

val add_unchecked : t -> Etuple.t -> t
(** {!add} without the CWA_ER check — test instrumentation only. *)

val of_tuples : Schema.t -> Etuple.t list -> t
val of_tuples_unchecked : Schema.t -> Etuple.t list -> t

val replace : t -> Etuple.t -> t
(** Insert-or-overwrite by key (still CWA_ER-checked). *)

val remove : t -> Dst.Value.t list -> t

val schema : t -> Schema.t
val cardinal : t -> int
val is_empty : t -> bool

val find : t -> Dst.Value.t list -> Etuple.t
(** @raise Not_found. *)

val find_opt : t -> Dst.Value.t list -> Etuple.t option
val mem : t -> Dst.Value.t list -> bool

val tuples : t -> Etuple.t list
(** In increasing key order — a deterministic iteration order makes the
    reproduced tables stable. *)

val fold : (Etuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Etuple.t -> unit) -> t -> unit
val filter : (Etuple.t -> bool) -> t -> t
val for_all : (Etuple.t -> bool) -> t -> bool
val exists : (Etuple.t -> bool) -> t -> bool

val map_tuples : (Etuple.t -> Etuple.t option) -> Schema.t -> t -> t
(** Rebuilds a relation under a (possibly different) schema from the
    mapped tuples; [None] drops the tuple. Tuples with [sn = 0] after the
    map are dropped too, preserving CWA_ER — this is how the operators
    guarantee the closure property. *)

val equal : t -> t -> bool
(** Same schema (union-compatible, names ignored) and equal tuple sets. *)

val satisfies_cwa : t -> bool
(** True iff every stored tuple has [sn > 0]. Always true for relations
    built without the [_unchecked] constructors. *)

val pp : Format.formatter -> t -> unit
