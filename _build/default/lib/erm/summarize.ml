let cardinality_interval r =
  Relation.fold
    (fun t (sn, sp) ->
      let m = Etuple.tm t in
      (sn +. Dst.Support.sn m, sp +. Dst.Support.sp m))
    r (0.0, 0.0)

let count_where ?threshold pred r =
  cardinality_interval (Ops.select ?threshold pred r)

let pool_evidence r attr =
  let schema = Relation.schema r in
  let weighted =
    Relation.fold
      (fun t acc ->
        let e = Etuple.evidence schema t attr in
        let w = Dst.Support.sn (Etuple.tm t) in
        List.map (fun (set, x) -> (set, w *. x)) (Dst.Mass.F.focals e) @ acc)
      r []
  in
  match weighted with
  | [] -> raise (Dst.Mass.F.Invalid_mass "pool_evidence: empty relation")
  | (set0, _) :: _ ->
      ignore set0;
      let frame =
        match Attr.domain (Schema.find schema attr) with
        | Some d -> d
        | None ->
            raise
              (Etuple.Tuple_error
                 (attr ^ " holds definite values; pool evidential attributes"))
      in
      Dst.Mass.F.make_normalized frame weighted

let pignistic_histogram r attr = Dst.Mass.F.pignistic (pool_evidence r attr)

let group_count_by_definite r attr =
  let schema = Relation.schema r in
  let table = Hashtbl.create 16 in
  Relation.iter
    (fun t ->
      let v = Etuple.definite_value schema t attr in
      let m = Etuple.tm t in
      let sn0, sp0 =
        match Hashtbl.find_opt table v with
        | Some bounds -> bounds
        | None -> (0.0, 0.0)
      in
      Hashtbl.replace table v
        (sn0 +. Dst.Support.sn m, sp0 +. Dst.Support.sp m))
    r;
  Hashtbl.fold (fun v bounds acc -> (v, bounds) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> Dst.Value.compare a b)
