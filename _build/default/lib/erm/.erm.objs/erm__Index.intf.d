lib/erm/index.mli: Dst Predicate Relation
