lib/erm/attr.mli: Dst Format
