lib/erm/render.mli: Dst Etuple Relation
