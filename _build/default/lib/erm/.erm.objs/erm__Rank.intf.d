lib/erm/rank.mli: Dst Etuple Relation
