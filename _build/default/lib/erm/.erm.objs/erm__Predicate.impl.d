lib/erm/predicate.ml: Dst Etuple Format List Schema String
