lib/erm/threshold.mli: Dst Format
