lib/erm/threshold.ml: Dst Float Format
