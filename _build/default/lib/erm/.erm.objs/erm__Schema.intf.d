lib/erm/schema.mli: Attr Format
