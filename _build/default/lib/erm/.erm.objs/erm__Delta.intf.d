lib/erm/delta.mli: Dst Format Relation
