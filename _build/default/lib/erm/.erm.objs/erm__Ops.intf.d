lib/erm/ops.mli: Dst Format Predicate Relation Threshold
