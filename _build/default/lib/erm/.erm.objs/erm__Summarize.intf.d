lib/erm/summarize.mli: Dst Predicate Relation Threshold
