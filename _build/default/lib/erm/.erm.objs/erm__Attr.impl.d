lib/erm/attr.ml: Dst Format List String
