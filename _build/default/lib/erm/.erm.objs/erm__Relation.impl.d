lib/erm/relation.ml: Dst Etuple Format List Map Schema
