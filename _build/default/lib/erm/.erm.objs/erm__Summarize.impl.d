lib/erm/summarize.ml: Attr Dst Etuple Hashtbl List Ops Relation Schema
