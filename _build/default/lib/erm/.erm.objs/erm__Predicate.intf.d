lib/erm/predicate.mli: Dst Etuple Format Schema
