lib/erm/etuple.ml: Array Attr Dst Format List Schema
