lib/erm/ops.ml: Attr Dst Etuple Format List Predicate Relation Schema Threshold
