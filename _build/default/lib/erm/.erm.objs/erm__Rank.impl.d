lib/erm/rank.ml: Dst Etuple Float List Relation
