lib/erm/io.mli: Relation Schema
