lib/erm/relation.mli: Dst Etuple Format Schema
