lib/erm/delta.ml: Attr Dst Etuple Float Format Fun List Ops Relation Schema
