lib/erm/etuple.mli: Dst Format Schema
