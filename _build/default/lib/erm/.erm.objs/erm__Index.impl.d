lib/erm/index.ml: Attr Dst Etuple List Map Predicate Relation Schema String
