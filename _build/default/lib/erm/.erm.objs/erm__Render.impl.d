lib/erm/render.ml: Attr Buffer Dst Etuple Float Format List Printf Relation Schema String
