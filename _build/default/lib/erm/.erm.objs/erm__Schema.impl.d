lib/erm/schema.ml: Attr Format List String
