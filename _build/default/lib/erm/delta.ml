type cell_change = { changed_attr : string; revision_conflict : float }

type tuple_change = {
  changed_key : Dst.Value.t list;
  cell_changes : cell_change list;
  old_tm : Dst.Support.t;
  new_tm : Dst.Support.t;
}

type t = {
  added : Dst.Value.t list list;
  removed : Dst.Value.t list list;
  changed : tuple_change list;
  unchanged : int;
}

let cell_diffs schema old_t new_t =
  List.map2
    (fun attr (old_cell, new_cell) ->
      if Etuple.cell_equal old_cell new_cell then None
      else
        let kappa =
          match (old_cell, new_cell) with
          | Etuple.Evidence a, Etuple.Evidence b -> Dst.Mass.F.conflict a b
          | Etuple.Definite _, Etuple.Definite _
          | Etuple.Definite _, Etuple.Evidence _
          | Etuple.Evidence _, Etuple.Definite _ ->
              1.0
        in
        Some { changed_attr = Attr.name attr; revision_conflict = kappa })
    (Schema.nonkey schema)
    (List.combine (Etuple.cells old_t) (Etuple.cells new_t))
  |> List.filter_map Fun.id

let diff old_r new_r =
  if
    not
      (Schema.union_compatible (Relation.schema old_r) (Relation.schema new_r))
  then
    raise (Ops.Incompatible_schemas "delta needs union-compatible relations")
  else begin
    let schema = Relation.schema old_r in
    let removed =
      Relation.fold
        (fun t acc ->
          if Relation.mem new_r (Etuple.key t) then acc
          else Etuple.key t :: acc)
        old_r []
      |> List.rev
    in
    let added, changed, unchanged =
      Relation.fold
        (fun new_t (added, changed, unchanged) ->
          let key = Etuple.key new_t in
          match Relation.find_opt old_r key with
          | None -> (key :: added, changed, unchanged)
          | Some old_t ->
              let cells = cell_diffs schema old_t new_t in
              let tm_moved =
                not (Dst.Support.equal (Etuple.tm old_t) (Etuple.tm new_t))
              in
              if cells = [] && not tm_moved then
                (added, changed, unchanged + 1)
              else
                ( added,
                  { changed_key = key;
                    cell_changes = cells;
                    old_tm = Etuple.tm old_t;
                    new_tm = Etuple.tm new_t }
                  :: changed,
                  unchanged ))
        new_r ([], [], 0)
    in
    { added = List.rev added;
      removed;
      changed = List.rev changed;
      unchanged }
  end

let is_empty d = d.added = [] && d.removed = [] && d.changed = []

let max_revision_conflict d =
  List.fold_left
    (fun acc c ->
      List.fold_left
        (fun acc cc -> Float.max acc cc.revision_conflict)
        acc c.cell_changes)
    0.0 d.changed

let pp_key ppf key =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Dst.Value.pp)
    key

let pp ppf d =
  let sep = ref false in
  let line fmt =
    if !sep then Format.pp_print_cut ppf ();
    sep := true;
    Format.fprintf ppf fmt
  in
  Format.pp_open_vbox ppf 0;
  List.iter (fun k -> line "+ %a" pp_key k) d.added;
  List.iter (fun k -> line "- %a" pp_key k) d.removed;
  List.iter
    (fun c ->
      line "~ %a:" pp_key c.changed_key;
      List.iter
        (fun cc ->
          Format.fprintf ppf " %s kappa %.3f;" cc.changed_attr
            cc.revision_conflict)
        c.cell_changes;
      if not (Dst.Support.equal c.old_tm c.new_tm) then
        Format.fprintf ppf " membership %a -> %a" Dst.Support.pp c.old_tm
          Dst.Support.pp c.new_tm)
    d.changed;
  if is_empty d then line "(no changes; %d tuples identical)" d.unchanged;
  Format.pp_close_box ppf ()
