(** Ranking query results by membership certainty (extension).

    The paper's model returns "tuples with a full range of certainty" in
    a single result set; this module orders that set. Tuples are ranked
    by their support pair — [sn] first, [sp] as tie-breaker (the
    lexicographic order of {!Dst.Support.compare}) — which backs the
    query language's [ORDER BY SN/SP] and [LIMIT]. *)

type order = By_sn | By_sp

val sorted : ?order:order -> ?ascending:bool -> Relation.t -> Etuple.t list
(** Tuples sorted by membership (default: [By_sn], descending — most
    certain first). Ties beyond the support pair fall back to key order,
    keeping results deterministic. *)

val top : ?order:order -> int -> Relation.t -> Relation.t
(** The [k] most-supported tuples, as a relation. [k] larger than the
    relation is not an error. *)

val bottom : ?order:order -> int -> Relation.t -> Relation.t
(** The [k] least-supported tuples. *)

val best : Relation.t -> Etuple.t option
(** The single most-supported tuple, [None] on the empty relation. *)

val membership_range : Relation.t -> (Dst.Support.t * Dst.Support.t) option
(** [(weakest, strongest)] membership over the relation, [None] when
    empty. *)
