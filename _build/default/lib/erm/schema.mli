(** Extended relation schemas.

    A schema names the relation, its key attributes (always definite —
    the paper assumes definite keys, §2.3 footnote 3) and its non-key
    attributes (definite or evidential). The implicit tuple-membership
    attribute [(sn, sp)] is not listed; every extended tuple carries it. *)

type t

exception Schema_error of string

val make : name:string -> key:Attr.t list -> nonkey:Attr.t list -> t
(** @raise Schema_error if the key is empty, a key attribute is
    evidential, or attribute names collide. *)

val name : t -> string
val key : t -> Attr.t list
val nonkey : t -> Attr.t list

val attrs : t -> Attr.t list
(** Key attributes followed by non-key attributes. *)

val arity : t -> int
(** Number of attributes, key and non-key, excluding membership. *)

val key_arity : t -> int

val find : t -> string -> Attr.t
(** @raise Not_found when no attribute has that name. *)

val find_opt : t -> string -> Attr.t option

val nonkey_index : t -> string -> int
(** Position of a non-key attribute within the non-key list.
    @raise Not_found for key attributes or unknown names. *)

val key_index : t -> string -> int
(** Position of a key attribute within the key list. @raise Not_found. *)

val mem : t -> string -> bool
val is_key : t -> string -> bool

val union_compatible : t -> t -> bool
(** Per §3.2 (footnote 5): same attributes — names, kinds and domains —
    including the key attributes. Relation names may differ. *)

val equal : t -> t -> bool
(** {!union_compatible} and same relation name. *)

val project : t -> string list -> t
(** Schema of [π̂] onto the named attributes. Per §3.3 the projection list
    must contain every key attribute (membership is always kept).
    @raise Schema_error if a name is unknown or a key attribute is
    missing. *)

val product : t -> t -> t
(** Schema of [×̂]: concatenated keys and non-keys.
    @raise Schema_error if attribute names collide; rename first. *)

val rename_relation : string -> t -> t

val rename_attrs : (string -> string) -> t -> t
(** Applies the function to every attribute name.
    @raise Schema_error if the renaming introduces a collision. *)

val pp : Format.formatter -> t -> unit
