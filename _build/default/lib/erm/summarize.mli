(** Aggregate summaries of extended relations (extension).

    Under uncertain membership a relation has no single cardinality and
    an evidential column has no single histogram; summaries come out as
    intervals (from [sn]/[sp]) or membership-weighted pools. These power
    the integrator-facing reports and the benchmark statistics. *)

val cardinality_interval : Relation.t -> float * float
(** [(Σ sn, Σ sp)] over all tuples: the expected number of tuples that
    really belong, bounded below by necessary and above by possible
    support. A classical relation returns [(n, n)]. *)

val count_where :
  ?threshold:Threshold.t -> Predicate.t -> Relation.t -> float * float
(** Expected-count interval of tuples satisfying a predicate:
    [(Σ sn', Σ sp')] of the would-be selection result (threshold applied
    as in σ̂). *)

val pool_evidence : Relation.t -> string -> Dst.Evidence.t
(** Membership-weighted mixture of an evidential column: each tuple's
    evidence weighted by its [sn] and normalized — "what does the
    relation as a whole say this attribute looks like". Mixing (not
    Dempster) is deliberate: tuples describe {e different} entities, so
    their evidence must be averaged, not conjunctively combined.
    @raise Etuple.Tuple_error if the attribute is definite.
    @raise Dst.Mass.F.Invalid_mass on an empty or zero-support
    relation. *)

val pignistic_histogram : Relation.t -> string -> (Dst.Value.t * float) list
(** The pignistic transform of {!pool_evidence}: a probability
    distribution over the attribute's domain, suitable for display. *)

val group_count_by_definite :
  Relation.t -> string -> (Dst.Value.t * (float * float)) list
(** Cardinality intervals grouped by a definite attribute's value —
    e.g. expected restaurants per street. Sorted by value. *)
