let domain ~size name =
  Dst.Domain.of_strings name (List.init size (fun i -> "v" ^ string_of_int i))

let vset rng dom ~max_size =
  let values = Dst.Vset.to_list (Dst.Domain.values dom) in
  let n = min max_size (List.length values) in
  let size = 1 + Rng.int rng n in
  Dst.Vset.of_list (Rng.sample rng size values)

(* A focal set drawn by Zipf rank: popular (low-rank) values co-occur
   across sources, lowering conflict. Duplicated ranks collapse, so the
   set can come out smaller than the uniform version's. *)
let vset_zipf rng dom ~max_size ~s =
  let values = Array.of_list (Dst.Vset.to_list (Dst.Domain.values dom)) in
  let n = Array.length values in
  let size = 1 + Rng.int rng (min max_size n) in
  List.init size (fun _ -> values.(Rng.zipf rng ~s ~n - 1))
  |> Dst.Vset.of_list

let evidence rng ?(focals = 3) ?(max_focal_size = 2) ?(omega_floor = 0.05)
    ?(zipf_skew = 0.0) dom =
  let draw () =
    if zipf_skew > 0.0 then
      vset_zipf rng dom ~max_size:max_focal_size ~s:zipf_skew
    else vset rng dom ~max_size:max_focal_size
  in
  (* Draw distinct focal sets; duplicates collapse, so the result has at
     most [focals] focal elements. *)
  let sets = List.init focals (fun _ -> draw ()) in
  let weighted =
    List.map (fun s -> (s, 0.1 +. Rng.float rng 1.0)) sets
  in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 weighted in
  let scale = (1.0 -. omega_floor) /. total in
  let entries = List.map (fun (s, w) -> (s, w *. scale)) weighted in
  let entries =
    if omega_floor > 0.0 then
      (Dst.Domain.values dom, omega_floor) :: entries
    else entries
  in
  Dst.Mass.F.make dom entries

let conflicting_pair rng ~conflict dom =
  let values = Dst.Vset.to_list (Dst.Domain.values dom) in
  let n = List.length values in
  if n < 4 then invalid_arg "Gen.conflicting_pair: domain too small"
  else
    let rec split i l (left, right) =
      match l with
      | [] -> (left, right)
      | v :: rest ->
          if i < n / 2 then split (i + 1) rest (v :: left, right)
          else split (i + 1) rest (left, v :: right)
    in
    let left, right = split 0 values ([], []) in
    (* m1 concentrates on the left half; m2 puts ~[conflict] of its mass
       on the right half (disjoint from every m1 focal). *)
    let m1 =
      Dst.Mass.F.make dom
        [ (Dst.Vset.of_list (Rng.sample rng 2 left), 0.7);
          (Dst.Vset.singleton (Rng.pick rng left), 0.3) ]
    in
    let agree = Dst.Vset.of_list left in
    let disagree = Dst.Vset.of_list (Rng.sample rng 2 right) in
    let m2 =
      if conflict <= 0.0 then Dst.Mass.F.certain_set dom agree
      else if conflict >= 1.0 then Dst.Mass.F.certain_set dom disagree
      else
        Dst.Mass.F.make dom [ (agree, 1.0 -. conflict); (disagree, conflict) ]
    in
    (m1, m2)

let support rng =
  let sn = 0.05 +. Rng.float rng 0.95 in
  let sp = sn +. Rng.float rng (1.0 -. sn) in
  Dst.Support.make ~sn ~sp

let schema ?(definite = 1) ?(evidential = 2) ?(domain_size = 8) name =
  let key = [ Erm.Attr.definite "k" "string" ] in
  let defs =
    List.init definite (fun i ->
        Erm.Attr.definite ("a" ^ string_of_int i) "string")
  in
  let evs =
    List.init evidential (fun i ->
        let attr_name = "e" ^ string_of_int i in
        Erm.Attr.evidential attr_name (domain ~size:domain_size attr_name))
  in
  Erm.Schema.make ~name ~key ~nonkey:(defs @ evs)

let tuple rng ?focals schema key_name =
  let cells =
    List.map
      (fun attr ->
        match Erm.Attr.kind attr with
        | Erm.Attr.Definite _ ->
            Erm.Etuple.Definite
              (Dst.Value.string
                 (Printf.sprintf "%s-%d" (Erm.Attr.name attr)
                    (Rng.int rng 1000)))
        | Erm.Attr.Evidential dom ->
            Erm.Etuple.Evidence (evidence rng ?focals dom))
      (Erm.Schema.nonkey schema)
  in
  Erm.Etuple.make schema
    ~key:[ Dst.Value.string key_name ]
    ~cells ~tm:(support rng)

let relation rng ?focals ~size schema =
  let tuples =
    List.init size (fun i -> tuple rng ?focals schema ("key" ^ string_of_int i))
  in
  Erm.Relation.of_tuples schema tuples

(* Another observation of the same tuple: definite cells agree (the
   paper's consistent-sources assumption), evidential cells are fresh
   evidence from this source, membership is re-assessed. *)
let reobserve_tuple rng ?focals schema base =
  let cells =
    List.map2
      (fun attr cell ->
        match (Erm.Attr.kind attr, cell) with
        | Erm.Attr.Evidential dom, Erm.Etuple.Evidence _ ->
            Erm.Etuple.Evidence (evidence rng ?focals dom)
        | (Erm.Attr.Definite _ | Erm.Attr.Evidential _), cell -> cell)
      (Erm.Schema.nonkey schema) (Erm.Etuple.cells base)
  in
  Erm.Etuple.make schema ~key:(Erm.Etuple.key base) ~cells ~tm:(support rng)

let reobserve rng ?focals r =
  let schema = Erm.Relation.schema r in
  Erm.Relation.fold
    (fun t acc -> Erm.Relation.add acc (reobserve_tuple rng ?focals schema t))
    r (Erm.Relation.empty schema)

let source_pair rng ?focals ~size ~overlap schema =
  let shared = int_of_float (float_of_int size *. overlap) in
  let a =
    Erm.Relation.of_tuples schema
      (List.init size (fun i ->
           tuple rng ?focals schema ("key" ^ string_of_int i)))
  in
  let second_observation key =
    reobserve_tuple rng ?focals schema (Erm.Relation.find a key)
  in
  let b_tuples =
    List.init size (fun i ->
        if i < shared then
          second_observation [ Dst.Value.string ("key" ^ string_of_int i) ]
        else tuple rng ?focals schema ("key" ^ string_of_int (size + i)))
  in
  (a, Erm.Relation.of_tuples schema b_tuples)
