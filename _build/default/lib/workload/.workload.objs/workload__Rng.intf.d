lib/workload/rng.mli:
