lib/workload/gen.mli: Dst Erm Rng
