lib/workload/gen.ml: Array Dst Erm List Printf Rng
