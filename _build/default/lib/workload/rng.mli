(** Deterministic pseudo-random numbers (splitmix64).

    Benchmarks and property tests need reproducible workloads independent
    of the stdlib [Random] state; this is a self-contained splitmix64
    with convenience draws. *)

type t

val create : int -> t
(** [create seed]. Equal seeds produce equal streams. *)

val split : t -> t
(** An independent generator derived from the current state — lets
    sub-workloads draw without perturbing their parent's stream. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0 .. bound-1].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** Uniform choice. @raise Invalid_argument on the empty list. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k l] draws [k] distinct elements (in stream order).
    @raise Invalid_argument if [k] exceeds the list length. *)

val shuffle : t -> 'a list -> 'a list

val zipf : t -> s:float -> n:int -> int
(** A draw from a Zipf distribution with exponent [s] over ranks
    [1 .. n] (via inverse-CDF on precomputable weights; O(n) per call,
    fine for workload generation). *)
