(* splitmix64: Steele, Lea & Flood (2014). State is a single 64-bit
   counter; each draw mixes the incremented state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive"
  else
    (* Mask to 62 bits: OCaml's native int is 63-bit, so a 63-bit draw
       would wrap negative through Int64.to_int. *)
    let raw = Int64.to_int (Int64.logand (next t) 0x3FFFFFFFFFFFFFFFL) in
    raw mod bound

let float t bound =
  let raw = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. raw /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next t) 1L = 1L

let pick t l =
  match l with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth l (int t (List.length l))

let sample t k l =
  let n = List.length l in
  if k > n then invalid_arg "Rng.sample: k exceeds list length"
  else
    (* Reservoir-free: walk the list keeping each element with the
       probability of filling the remaining quota. *)
    let rec go need left l acc =
      if need = 0 then List.rev acc
      else
        match l with
        | [] -> List.rev acc
        | x :: rest ->
            if int t left < need then go (need - 1) (left - 1) rest (x :: acc)
            else go need (left - 1) rest acc
    in
    go k n l []

let shuffle t l =
  let arr = Array.of_list l in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let zipf t ~s ~n =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive"
  else
    let weight k = 1.0 /. (float_of_int k ** s) in
    let total = ref 0.0 in
    for k = 1 to n do
      total := !total +. weight k
    done;
    let target = float t !total in
    let rec find k acc =
      if k >= n then n
      else
        let acc = acc +. weight k in
        if target < acc then k else find (k + 1) acc
    in
    find 1 0.0
