(** Synthetic workload generation for benchmarks and property tests.

    The paper's own tables have six rows; scaling behaviour is
    characterized on synthetic extended relations with controlled size,
    key overlap between sources, focal-set counts and conflict level. All
    generation is deterministic given the {!Rng.t}. *)

val domain : size:int -> string -> Dst.Domain.t
(** [domain ~size name]: values [v0 … v(size-1)]. *)

val vset : Rng.t -> Dst.Domain.t -> max_size:int -> Dst.Vset.t
(** A random non-empty subset with 1 to [max_size] elements. *)

val evidence :
  Rng.t ->
  ?focals:int ->
  ?max_focal_size:int ->
  ?omega_floor:float ->
  ?zipf_skew:float ->
  Dst.Domain.t ->
  Dst.Evidence.t
(** A random evidence set with (up to) [focals] distinct focal elements
    (default 3) of at most [max_focal_size] values (default 2) and random
    normalized masses. [omega_floor] (default 0.05) reserves that much
    mass for Ω, which guarantees κ < 1 when combining any two generated
    evidence sets — benchmarks can then exercise Dempster's rule without
    total-conflict exceptions. Pass [~omega_floor:0.0] to allow total
    conflict. [zipf_skew] (default 0: uniform) draws focal-element values
    by Zipf rank over the domain's value order instead of uniformly —
    skewed workloads make sources {e agree} more often (popular values
    co-occur), which lowers κ; the [sweep:union-*-skew] benches measure
    the effect. *)

val conflicting_pair :
  Rng.t ->
  conflict:float ->
  Dst.Domain.t ->
  Dst.Evidence.t * Dst.Evidence.t
(** A pair of evidence sets whose Dempster conflict κ is approximately
    [conflict] (the second source places that fraction of its mass on
    values disjoint from the first source's focals). Requires a domain of
    at least 4 values. *)

val support : Rng.t -> Dst.Support.t
(** A random support pair with [sn > 0] (CWA_ER-admissible). *)

val schema :
  ?definite:int -> ?evidential:int -> ?domain_size:int -> string -> Erm.Schema.t
(** A schema with one string key [k], [definite] string attributes
    [a0 …] (default 1) and [evidential] attributes [e0 …] (default 2)
    over fresh domains of [domain_size] values (default 8). *)

val relation :
  Rng.t -> ?focals:int -> size:int -> Erm.Schema.t -> Erm.Relation.t
(** [size] tuples with keys [key0 … key(size-1)], random definite cells,
    random evidence and random admissible membership. *)

val reobserve : Rng.t -> ?focals:int -> Erm.Relation.t -> Erm.Relation.t
(** Another source's observation of the same entities: same keys and
    definite cells, fresh evidence and membership. Union-safe with the
    input (and with anything the input is union-safe with). *)

val source_pair :
  Rng.t ->
  ?focals:int ->
  size:int ->
  overlap:float ->
  Erm.Schema.t ->
  Erm.Relation.t * Erm.Relation.t
(** Two relations of [size] tuples each sharing [overlap·size] keys —
    the two-database integration workload. Evidence cells keep the
    default Ω floor, so extended union never hits total conflict. *)
