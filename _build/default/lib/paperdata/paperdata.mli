(** The paper's running example: source relations, worked combination
    example, and expected results for every table.

    Where the paper prints rounded masses (e.g. [0.33]/[0.17] for a
    six-reviewer panel), the underlying exact fractions ([1/3], [1/6])
    are used — they are the only values that reproduce the paper's
    combined results such as [ex^0.143; gd^0.857] in Table 4. *)

val speciality : Dst.Domain.t
(** Ω_speciality = {am, ca, hu, it, mu, si, ta} (§2.1's six cuisines plus
    [ta], which appears in Table 1's mehl row). *)

val dish : Dst.Domain.t
(** Dish names d1 … d36. *)

val rating : Dst.Domain.t
(** {ex, gd, avg}. *)

val schema : Erm.Schema.t
(** rname (key), street, bldg-no, phone, †speciality, †best-dish,
    †rating. *)

val r_a : Erm.Relation.t
(** Table 1, R_A — Minnesota Daily. *)

val r_b : Erm.Relation.t
(** Table 1, R_B — Star Tribute. *)

val table2 : Erm.Relation.t
(** Expected [σ̂\[sn>0; speciality is {si}\] R_A]. *)

val table3 : Erm.Relation.t
(** Expected [σ̂\[sn>0; (speciality is {mu}) ∧ (rating is {ex})\] R_A]. *)

val table4 : Erm.Relation.t
(** Expected [R_A ∪̂_(rname) R_B] — exact fractions, e.g. garden's
    speciality is [\[si^19/29; hu^8/29; ~^2/29\]] where the paper prints
    [0.655/0.276/0.069]. *)

val table5 : Erm.Relation.t
(** Expected [π̂\[rname, phone, speciality, rating\] R_A]. *)

val table5_attrs : string list
(** The projection list of Table 5. *)

(** {1 The §2.1 / §2.2 worked example} *)

val wok_m1 : Dst.Evidence.t
(** §2.1: [\[ca^1/2; {hu,si}^1/3; ~^1/6\]] from DB_1. *)

val wok_m2 : Dst.Evidence.t
(** §2.2: [\[{ca,hu}^1/2; hu^1/4; ~^1/4\]] from DB_2. *)

val wok_combined : Dst.Evidence.t
(** §2.2's result: [\[ca^3/7; hu^1/3; {ca,hu}^2/21; {hu,si}^2/21;
    ~^1/21\]]. *)

val wok_conflict : float
(** §2.2's κ = 1/8. *)

val sec22_m1_exact : (Dst.Vset.t * Qarith.Q.t) list
val sec22_m2_exact : (Dst.Vset.t * Qarith.Q.t) list
val sec22_expected_exact : (Dst.Vset.t * Qarith.Q.t) list
(** The same three assignments as exact rationals, for instantiating
    {!Dst.Mass.Make}[(Num.Rational)] and checking §2.2 with zero
    tolerance. *)

(** {1 The rest of the Figure 2 global schema}

    The paper's global schema also has a Manager entity set [M] and a
    Manages/Managed-by relationship set [RM]; §4 claims "relations
    modeling both entity and relationship types can be integrated in a
    uniform manner". These relations exercise that claim: [RM] has a
    composite key and carries its uncertainty purely in the tuple
    membership. The data is constructed (the paper prints none for M/RM);
    expected values below are hand-computed. *)

val position : Dst.Domain.t
(** {head-chef, manager, owner}. *)

val m_schema : Erm.Schema.t
(** mname (key), phone, †position. *)

val rm_schema : Erm.Schema.t
(** (rname, manager) composite key, no non-key attributes: membership
    support is the only uncertain component. *)

val m_a : Erm.Relation.t
val m_b : Erm.Relation.t
val rm_a : Erm.Relation.t
val rm_b : Erm.Relation.t

val chen_position_expected : Dst.Evidence.t
(** [M_A ∪̂ M_B]'s chen row: [\[head-chef^0.8; ~^0.2\] ⊕ \[head-chef^0.5;
    manager^0.5\] = \[head-chef^5/6; manager^1/6\]]. *)
