let speciality =
  Dst.Domain.of_strings "speciality"
    [ "am"; "ca"; "hu"; "it"; "mu"; "si"; "ta" ]

let dish =
  Dst.Domain.of_strings "best-dish"
    (List.init 36 (fun i -> "d" ^ string_of_int (i + 1)))

let rating = Dst.Domain.of_strings "rating" [ "ex"; "gd"; "avg" ]

let domain_decl d =
  String.concat ", "
    (List.map Dst.Value.to_string (Dst.Vset.to_list (Dst.Domain.values d)))

let header name =
  Printf.sprintf
    {|relation %s
key rname : string
attr street : string
attr bldg-no : int
attr phone : string
attr speciality : evidence {%s}
attr best-dish : evidence {%s}
attr rating : evidence {%s}
|}
    name (domain_decl speciality) (domain_decl dish) (domain_decl rating)

(* Table 1, R_A. The paper's 0.33/0.17/0.34 columns are six-reviewer vote
   shares; the exact fractions below are what make Table 4 come out as
   printed (e.g. garden's rating 1/3,1/2,1/6 combines to 1/7, 6/7 =
   0.143, 0.857). *)
let r_a_text =
  header "r_a"
  ^ {|tuple garden  | univ.ave.  | 2011 | 371-2155 | [si^0.5; hu^0.25; ~^0.25]  | [d31^0.5; {d35,d36}^0.5]  | [ex^1/3; gd^1/2; avg^1/6] | (1, 1)
tuple wok     | wash.ave.  | 600  | 382-4165 | [si^1]                     | [d6^1/3; d7^1/3; d25^1/3] | [gd^0.25; avg^0.75]       | (1, 1)
tuple country | plato.blvd | 12   | 293-9111 | [am^1]                     | [d1^1/2; d2^1/3; ~^1/6]   | [ex^1]                    | (1, 1)
tuple olive   | nic.ave.   | 514  | 338-0355 | [it^1]                     | [d1^1]                    | [gd^0.5; avg^0.5]         | (1, 1)
tuple mehl    | 9th-street | 820  | 333-4035 | [mu^0.8; ta^0.2]           | [d24^0.4; d31^0.6]        | [ex^0.8; gd^0.2]          | (0.5, 0.5)
tuple ashiana | univ.ave.  | 353  | 371-0824 | [mu^0.9; ~^0.1]            | [d34^0.8; d25^0.2]        | [ex^1]                    | (1, 1)
|}

let r_b_text =
  header "r_b"
  ^ {|tuple garden  | univ.ave.  | 2011 | 371-2155 | [si^0.5; hu^0.3; ~^0.2]  | [d31^0.7; d35^0.3]          | [ex^0.2; gd^0.8] | (1, 1)
tuple wok     | wash.ave.  | 600  | 382-4165 | [ca^0.2; si^0.7; ~^0.1]  | [d6^0.5; d7^0.25; d25^0.25] | [gd^1]           | (1, 1)
tuple country | plato.blvd | 12   | 293-9111 | [am^1]                   | [d1^0.2; d2^0.8]            | [ex^0.7; gd^0.3] | (1, 1)
tuple olive   | nic.ave.   | 514  | 338-0355 | [it^1]                   | [d1^0.8; d2^0.2]            | [gd^0.8; avg^0.2]| (1, 1)
tuple mehl    | 9th-street | 820  | 333-4035 | [mu^1]                   | [d24^0.1; d31^0.9]          | [ex^1]           | (0.8, 1)
|}

let r_a = Erm.Io.relation_of_string r_a_text
let r_b = Erm.Io.relation_of_string r_b_text
let schema = Erm.Relation.schema r_a

(* Table 2: original R_A cells, revised membership. *)
let table2 =
  Erm.Io.relation_of_string
    (header "table2"
    ^ {|tuple garden | univ.ave. | 2011 | 371-2155 | [si^0.5; hu^0.25; ~^0.25] | [d31^0.5; {d35,d36}^0.5]  | [ex^1/3; gd^1/2; avg^1/6] | (0.5, 0.75)
tuple wok    | wash.ave. | 600  | 382-4165 | [si^1]                    | [d6^1/3; d7^1/3; d25^1/3] | [gd^0.25; avg^0.75]       | (1, 1)
|})

let table3 =
  Erm.Io.relation_of_string
    (header "table3"
    ^ {|tuple mehl    | 9th-street | 820 | 333-4035 | [mu^0.8; ta^0.2] | [d24^0.4; d31^0.6] | [ex^0.8; gd^0.2] | (0.32, 0.32)
tuple ashiana | univ.ave.  | 353 | 371-0824 | [mu^0.9; ~^0.1]  | [d34^0.8; d25^0.2] | [ex^1]           | (0.9, 1)
|})

(* Table 4 with exact fractions (the paper prints 3-decimal roundings). *)
let table4 =
  Erm.Io.relation_of_string
    (header "table4"
    ^ {|tuple garden  | univ.ave.  | 2011 | 371-2155 | [si^19/29; hu^8/29; ~^2/29] | [d31^0.7; d35^0.3]          | [ex^1/7; gd^6/7] | (1, 1)
tuple wok     | wash.ave.  | 600  | 382-4165 | [si^1]                      | [d6^0.5; d7^0.25; d25^0.25] | [gd^1]           | (1, 1)
tuple country | plato.blvd | 12   | 293-9111 | [am^1]                      | [d1^0.25; d2^0.75]          | [ex^1]           | (1, 1)
tuple olive   | nic.ave.   | 514  | 338-0355 | [it^1]                      | [d1^1]                      | [gd^0.8; avg^0.2]| (1, 1)
tuple mehl    | 9th-street | 820  | 333-4035 | [mu^1]                      | [d24^2/29; d31^27/29]       | [ex^1]           | (5/6, 5/6)
tuple ashiana | univ.ave.  | 353  | 371-0824 | [mu^0.9; ~^0.1]             | [d34^0.8; d25^0.2]          | [ex^1]           | (1, 1)
|})

let table5_attrs = [ "rname"; "phone"; "speciality"; "rating" ]

let table5 =
  Erm.Io.relation_of_string
    (Printf.sprintf
       {|relation table5
key rname : string
attr phone : string
attr speciality : evidence {%s}
attr rating : evidence {%s}
|}
       (domain_decl speciality) (domain_decl rating)
    ^ {|tuple garden  | 371-2155 | [si^0.5; hu^0.25; ~^0.25] | [ex^1/3; gd^1/2; avg^1/6] | (1, 1)
tuple wok     | 382-4165 | [si^1]                    | [gd^0.25; avg^0.75]       | (1, 1)
tuple country | 293-9111 | [am^1]                    | [ex^1]                    | (1, 1)
tuple olive   | 338-0355 | [it^1]                    | [gd^0.5; avg^0.5]         | (1, 1)
tuple mehl    | 333-4035 | [mu^0.8; ta^0.2]          | [ex^0.8; gd^0.2]          | (0.5, 0.5)
tuple ashiana | 371-0824 | [mu^0.9; ~^0.1]           | [ex^1]                    | (1, 1)
|})

(* §2.1 / §2.2 worked example. The §2.1 frame lists six cuisines (no ta);
   frames must match for combination, so both assignments use it. *)
let sec21_frame =
  Dst.Domain.of_strings "speciality" [ "am"; "ca"; "hu"; "it"; "mu"; "si" ]

let wok_m1 =
  Dst.Evidence.of_string sec21_frame "[ca^1/2; {hu,si}^1/3; ~^1/6]"

let wok_m2 = Dst.Evidence.of_string sec21_frame "[{ca,hu}^1/2; hu^1/4; ~^1/4]"

let wok_combined =
  Dst.Evidence.of_string sec21_frame
    "[ca^3/7; hu^1/3; {ca,hu}^2/21; {hu,si}^2/21; ~^1/21]"

let wok_conflict = 1.0 /. 8.0

let q = Qarith.Q.make
let vs = Dst.Vset.of_strings
let omega21 = Dst.Domain.values sec21_frame

let sec22_m1_exact =
  [ (vs [ "ca" ], q 1 2); (vs [ "hu"; "si" ], q 1 3); (omega21, q 1 6) ]

let sec22_m2_exact =
  [ (vs [ "ca"; "hu" ], q 1 2); (vs [ "hu" ], q 1 4); (omega21, q 1 4) ]

let sec22_expected_exact =
  [ (vs [ "ca" ], q 3 7);
    (vs [ "hu" ], q 1 3);
    (vs [ "ca"; "hu" ], q 2 21);
    (vs [ "hu"; "si" ], q 2 21);
    (omega21, q 1 21) ]

(* ------------------------------------------------------------------ *)
(* Figure 2: Manager entities and the Manages relationship.            *)

let position = Dst.Domain.of_strings "position" [ "head-chef"; "manager"; "owner" ]

let m_header name =
  Printf.sprintf
    {|relation %s
key mname : string
attr phone : string
attr position : evidence {%s}
|}
    name (domain_decl position)

let m_a =
  Erm.Io.relation_of_string
    (m_header "m_a"
    ^ {|tuple chen  | 555-1111 | [head-chef^0.8; ~^0.2] | (1, 1)
tuple anand | 555-2222 | [owner^1]              | (1, 1)
|})

let m_b =
  Erm.Io.relation_of_string
    (m_header "m_b"
    ^ {|tuple chen | 555-1111 | [head-chef^0.5; manager^0.5] | (1, 1)
|})

let m_schema = Erm.Relation.schema m_a

let rm_header name =
  Printf.sprintf {|relation %s
key rname : string
key manager : string
|} name

let rm_a =
  Erm.Io.relation_of_string
    (rm_header "rm_a"
    ^ {|tuple garden | chen  | (1, 1)
tuple mehl   | anand | (0.7, 1)
|})

let rm_b =
  Erm.Io.relation_of_string
    (rm_header "rm_b"
    ^ {|tuple garden | chen | (0.9, 1)
tuple wok    | chen | (0.8, 0.9)
|})

let rm_schema = Erm.Relation.schema rm_a

let chen_position_expected =
  Dst.Evidence.of_string position "[head-chef^5/6; manager^1/6]"
