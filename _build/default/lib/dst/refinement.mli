(** Frame refinements and coarsenings (Shafer 1976, ch. 6).

    Two databases rarely discern the world at the same granularity: one
    catalogs cuisine as [{chinese, indian}], the other as [{hunan,
    sichuan, cantonese, mughalai}]. A {e refining} maps each value of the
    coarse frame to the non-empty, pairwise-disjoint set of fine values
    it subsumes. Evidence moves along it in both directions:

    - {!refine} (vacuous extension): coarse evidence becomes fine
      evidence with no information invented — each focal element maps to
      the union of its values' images;
    - {!coarsen} (outer reduction): fine evidence maps back, each focal
      element to the set of coarse values whose images it intersects.

    This is the principled version of attribute-domain mapping: it lets
    the integration layer combine evidence collected over different
    attribute granularities on a common frame. *)

type t

exception Refinement_error of string

val make : coarse:Domain.t -> fine:Domain.t -> (Value.t -> Vset.t) -> t
(** [make ~coarse ~fine images] validates that every coarse value has a
    non-empty image inside [fine], that images are pairwise disjoint,
    and that they cover [fine] exactly (a partition).
    @raise Refinement_error otherwise. *)

val of_assoc : coarse:Domain.t -> fine:Domain.t -> (string * string list) list -> t
(** Convenience over string values: [of_assoc ~coarse ~fine
    [("chinese", ["hu"; "si"; "ca"]); …]].
    @raise Refinement_error also when a coarse value is missing from the
    list. *)

val coarse : t -> Domain.t
val fine : t -> Domain.t

val image : t -> Vset.t -> Vset.t
(** The fine image of a coarse set: the union of its values' images. *)

val inner_reduction : t -> Vset.t -> Vset.t
(** The coarse values whose images are {e contained} in the fine set. *)

val outer_reduction : t -> Vset.t -> Vset.t
(** The coarse values whose images {e intersect} the fine set. *)

val refine : t -> Mass.F.t -> Mass.F.t
(** Vacuous extension of a mass function from the coarse to the fine
    frame. Preserves Bel/Pls: [Bel_fine (image A) = Bel_coarse A].
    @raise Refinement_error if the mass function is not over the coarse
    frame. *)

val coarsen : t -> Mass.F.t -> Mass.F.t
(** Restriction of a fine mass function to the coarse frame via the
    outer reduction. Loses detail but never support:
    [Pls_coarse A ≥ Pls_fine (image A)] with equality when every focal
    element is a union of images.
    @raise Refinement_error if the mass function is not over the fine
    frame. *)

val compose : t -> t -> t
(** [compose f g]: if [g] refines A into B and [f] refines B into C,
    the composite refines A into C. *)
