(** Support pairs [(sn, sp)] — tuple membership and predicate support.

    A support pair is the compact form of a mass function over the boolean
    frame Ψ = [{true, false}] (§2.3 of the paper):
    [sn = m({true})] and [sp = m({true}) + m(Ψ) = 1 − m({false})],
    with invariant [0 ≤ sn ≤ sp ≤ 1]. [sn] is the {e necessary} and [sp]
    the {e possible} degree of support. *)

type t = private { sn : float; sp : float }

exception Invalid_support of float * float
(** Raised by {!make} when the invariant [0 ≤ sn ≤ sp ≤ 1] fails. *)

val make : sn:float -> sp:float -> t
(** @raise Invalid_support on out-of-range pairs (beyond the float
    tolerance; values within tolerance are clamped). *)

val sn : t -> float
val sp : t -> float

val certain : t
(** [(1, 1)]: membership with full certainty. *)

val impossible : t
(** [(0, 0)]: believed not to exist with full certainty. *)

val unknown : t
(** [(0, 1)]: complete ignorance about membership. *)

val of_bool : bool -> t
(** [true ↦ (1,1)], [false ↦ (0,0)] — classical logic embedding. *)

val f_tm : t -> t -> t
(** The tuple-membership derivation function F_TM of §3.1.2: treats the
    two supports as independent events and multiplies componentwise,
    [(sn1·sn2, sp1·sp2)]. Used by extended selection, cartesian product
    and join. *)

val combine : t -> t -> t
(** Dempster combination on the boolean frame — the function [F] of §3.2
    used by extended union to merge the membership evidence of matched
    tuples. E.g. [(0.5,0.5) ⊕ (0.8,1) = (0.833…, 0.833…)] (Table 4's
    [mehl] row).
    @raise Mass.F.Total_conflict when one operand is {!certain} and the
    other {!impossible} (κ = 1). *)

val conflict : t -> t -> float
(** κ of {!combine}: [sn1·(1−sp2) + (1−sp1)·sn2]. *)

val conjunction : t -> t -> t
(** Multiplicative support of a conjunction of independent predicates
    (§3.1.1): identical to {!f_tm}; provided under the predicate-algebra
    name for call-site clarity. *)

val disjunction : t -> t -> t
(** Extension beyond the paper: support of an independent disjunction,
    [(sn1 + sn2 − sn1·sn2, sp1 + sp2 − sp1·sp2)]. *)

val negation : t -> t
(** Extension: support-logic negation [(1 − sp, 1 − sn)]. Involutive. *)

val to_mass : t -> Mass.F.t
(** The underlying mass function over {!Domain.boolean}. *)

val of_mass : Mass.F.t -> t
(** Inverse of {!to_mass}. @raise Invalid_argument if the mass function's
    frame is not {!Domain.boolean}. *)

val ignorance : t -> float
(** [sp − sn]. *)

val positive : t -> bool
(** [sn > 0]: the CWA_ER storage criterion for extended relations. *)

val is_certain : t -> bool
val equal : t -> t -> bool
(** Tolerance-based componentwise equality. *)

val compare : t -> t -> int
(** Lexicographic on [(sn, sp)] — a total order for sorting query
    results by certainty. *)

val pp : Format.formatter -> t -> unit
(** Paper notation: [(0.5, 0.75)]. *)

val to_string : t -> string

val of_string : string -> t
(** Parses ["(sn, sp)"]. @raise Invalid_argument on malformed input. *)
