(** Frames of discernment.

    A domain is the finite set Ω of values an attribute can take, plus a
    human-readable name. Mass functions carry their domain, so Ω is an
    ordinary focal element (the full value set) and combination can verify
    that both operands discern the same frame. *)

type t

exception Empty_domain of string
(** Raised by {!make} when the value set is empty: a frame of discernment
    must contain at least one world. *)

val make : string -> Vset.t -> t
(** [make name values]. @raise Empty_domain if [values] is empty. *)

val of_strings : string -> string list -> t
(** [of_strings name atoms] builds a domain of string values. *)

val of_values : string -> Value.t list -> t

val name : t -> string
val values : t -> Vset.t
val size : t -> int
val mem : Value.t -> t -> bool

val subset : Vset.t -> t -> bool
(** [subset s d] is true iff every value of [s] belongs to [d]. *)

val equal : t -> t -> bool
(** Equality of the underlying value sets; names are documentation only. *)

val compare : t -> t -> int

val boolean : t
(** The membership frame Ψ = [{true, false}] used for tuple membership
    support pairs (§2.3 of the paper). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
