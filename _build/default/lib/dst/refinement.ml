type t = {
  coarse : Domain.t;
  fine : Domain.t;
  images : (Value.t * Vset.t) list;  (** one entry per coarse value *)
}

exception Refinement_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Refinement_error s)) fmt

let make ~coarse ~fine f =
  let images =
    List.map (fun v -> (v, f v)) (Vset.to_list (Domain.values coarse))
  in
  List.iter
    (fun (v, img) ->
      if Vset.is_empty img then
        fail "coarse value %a has an empty image" Value.pp v;
      if not (Domain.subset img fine) then
        fail "image of %a escapes the fine frame" Value.pp v)
    images;
  let rec check_disjoint = function
    | (v, img) :: rest ->
        List.iter
          (fun (w, img') ->
            if not (Vset.disjoint img img') then
              fail "images of %a and %a overlap" Value.pp v Value.pp w)
          rest;
        check_disjoint rest
    | [] -> ()
  in
  check_disjoint images;
  let covered =
    List.fold_left (fun acc (_, img) -> Vset.union acc img) Vset.empty images
  in
  if not (Vset.equal covered (Domain.values fine)) then
    fail "images do not cover the fine frame (missing %a)" Vset.pp
      (Vset.diff (Domain.values fine) covered);
  { coarse; fine; images }

let of_assoc ~coarse ~fine assoc =
  make ~coarse ~fine (fun v ->
      match v with
      | Value.String s -> (
          match List.assoc_opt s assoc with
          | Some img -> Vset.of_strings img
          | None -> fail "no image listed for %s" s)
      | _ -> fail "of_assoc expects string-valued coarse frames")

let coarse t = t.coarse
let fine t = t.fine

let image_of_value t v =
  match List.find_opt (fun (w, _) -> Value.equal v w) t.images with
  | Some (_, img) -> img
  | None -> fail "%a is not a coarse value" Value.pp v

let image t set =
  Vset.fold (fun v acc -> Vset.union (image_of_value t v) acc) set Vset.empty

let inner_reduction t set =
  List.filter_map
    (fun (v, img) -> if Vset.subset img set then Some v else None)
    t.images
  |> Vset.of_list

let outer_reduction t set =
  List.filter_map
    (fun (v, img) -> if Vset.disjoint img set then None else Some v)
    t.images
  |> Vset.of_list

let refine t m =
  if not (Domain.equal (Mass.F.frame m) t.coarse) then
    fail "refine: mass function is not over the coarse frame"
  else
    Mass.F.make t.fine
      (List.map (fun (set, x) -> (image t set, x)) (Mass.F.focals m))

let coarsen t m =
  if not (Domain.equal (Mass.F.frame m) t.fine) then
    fail "coarsen: mass function is not over the fine frame"
  else
    Mass.F.make t.coarse
      (List.map (fun (set, x) -> (outer_reduction t set, x)) (Mass.F.focals m))

let compose f g =
  if not (Domain.equal g.fine f.coarse) then
    fail "compose: the frames do not chain"
  else
    { coarse = g.coarse;
      fine = f.fine;
      images = List.map (fun (v, img) -> (v, image f img)) g.images }
