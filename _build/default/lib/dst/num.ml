(* Numeric abstraction for mass arithmetic.

   Dempster-Shafer combination is a pipeline of products, sums and one
   division (normalization). The {!Mass.Make} functor is parameterized over
   this signature so the same combination code runs both on floats (the
   runtime representation) and on exact rationals (used by the test suite
   to check the paper's fractions such as 3/7 and 2/21 exactly). *)

module type S = sig
  type t

  val zero : t
  val one : t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val compare : t -> t -> int

  val equal : t -> t -> bool
  (** Equality used for invariant checks ("masses sum to 1"). The float
      instance is tolerance-based; the rational instance is exact. *)

  val of_float : float -> t
  val to_float : t -> float
  val pp : Format.formatter -> t -> unit
end

(** Tolerance used by the float instance for sum-to-one checks and mass
    equality. Combination chains multiply rounding errors, hence a looser
    bound than machine epsilon. *)
let float_tolerance = 1e-9

module Float : S with type t = float = struct
  type t = float

  let zero = 0.0
  let one = 1.0
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let compare = Float.compare
  let equal a b = Float.abs (a -. b) <= float_tolerance
  let of_float f = f
  let to_float f = f
  let pp ppf f = Format.fprintf ppf "%g" f
end

module Rational : S with type t = Qarith.Q.t = struct
  type t = Qarith.Q.t

  let zero = Qarith.Q.zero
  let one = Qarith.Q.one
  let add = Qarith.Q.add
  let sub = Qarith.Q.sub
  let mul = Qarith.Q.mul
  let div = Qarith.Q.div
  let compare = Qarith.Q.compare
  let equal = Qarith.Q.equal
  let of_float = Qarith.Q.of_float_dyadic
  let to_float = Qarith.Q.to_float
  let pp = Qarith.Q.pp
end
