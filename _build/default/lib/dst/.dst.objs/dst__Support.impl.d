lib/dst/support.ml: Domain Float Format Mass Num String Value Vset
