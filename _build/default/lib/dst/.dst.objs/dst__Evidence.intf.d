lib/dst/evidence.mli: Domain Format Mass Value Vset
