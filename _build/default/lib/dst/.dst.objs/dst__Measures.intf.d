lib/dst/measures.mli: Mass
