lib/dst/value.mli: Format
