lib/dst/vset.mli: Format Value
