lib/dst/evidence.ml: Domain List Mass String Value Vset
