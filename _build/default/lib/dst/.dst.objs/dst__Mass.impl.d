lib/dst/mass.ml: Domain Format Hashtbl List Map Num Value Vset
