lib/dst/value.ml: Float Format Scanf Stdlib String
