lib/dst/refinement.ml: Domain Format List Mass Value Vset
