lib/dst/measures.ml: Domain Float List Mass Value Vset
