lib/dst/possibility.ml: Domain Float Format List Mass Num Support Value Vset
