lib/dst/num.ml: Float Format Qarith
