lib/dst/possibility.mli: Domain Format Mass Support Value Vset
