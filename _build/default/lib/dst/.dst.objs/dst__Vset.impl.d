lib/dst/vset.ml: Format List Set Value
