lib/dst/domain.mli: Format Value Vset
