lib/dst/refinement.mli: Domain Mass Value Vset
