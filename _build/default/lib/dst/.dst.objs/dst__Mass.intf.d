lib/dst/mass.mli: Domain Format Num Value Vset
