lib/dst/support.mli: Format Mass
