lib/dst/domain.ml: Format Value Vset
