(** Atomic domain values.

    Attribute domains (frames of discernment) are finite sets of these
    values. Values of different runtime kinds never compare as "less" or
    "greater" in the ordered sense used by θ-predicates; doing so raises
    {!Type_mismatch}. A separate total order ({!compare}) exists solely so
    values can key sets and maps. *)

type t =
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

exception Type_mismatch of t * t
(** Raised when two values of different kinds are compared with an ordered
    comparison ({!compare_ordered}). *)

val bool : bool -> t
val int : int -> t
val float : float -> t
val string : string -> t

val compare : t -> t -> int
(** Structural total order (kind rank, then natural order within a kind).
    Suitable for [Set.Make] / [Map.Make]; never raises. *)

val equal : t -> t -> bool

val compare_ordered : t -> t -> int
(** Semantic comparison for θ-predicates.
    @raise Type_mismatch if the two values are of different kinds. *)

val kind_name : t -> string
(** ["bool"], ["int"], ["float"] or ["string"]. *)

val same_kind : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints in re-parsable literal syntax: bare ints/floats/bools, strings
    bare when they are simple identifiers and quoted otherwise. *)

val to_string : t -> string

val of_literal : string -> t
(** Parses a literal token: [true]/[false], integer, float, quoted string,
    or a bare identifier (interpreted as a string). Inverse of {!pp} for
    all values produced by this library.
    @raise Invalid_argument on malformed quoted strings. *)
