type t = { sn : float; sp : float }

exception Invalid_support of float * float

let tol = Num.float_tolerance
let clamp01 x = if x < 0.0 then 0.0 else if x > 1.0 then 1.0 else x

let make ~sn ~sp =
  if sn < -.tol || sp > 1.0 +. tol || sn > sp +. tol then
    raise (Invalid_support (sn, sp))
  else
    let sn = clamp01 sn and sp = clamp01 sp in
    { sn; sp = Float.max sn sp }

let sn t = t.sn
let sp t = t.sp
let certain = { sn = 1.0; sp = 1.0 }
let impossible = { sn = 0.0; sp = 0.0 }
let unknown = { sn = 0.0; sp = 1.0 }
let of_bool b = if b then certain else impossible
let f_tm a b = make ~sn:(a.sn *. b.sn) ~sp:(a.sp *. b.sp)

(* Dempster's rule specialized to Ψ = {true, false}. With
   t_i = sn_i, f_i = 1 − sp_i, u_i = sp_i − sn_i:
     κ = t1·f2 + f1·t2
     m({true})  = (t1·t2 + t1·u2 + u1·t2) / (1 − κ)
     m({false}) = (f1·f2 + f1·u2 + u1·f2) / (1 − κ)  *)
let conflict a b = (a.sn *. (1.0 -. b.sp)) +. ((1.0 -. a.sp) *. b.sn)

let combine a b =
  let t1 = a.sn and f1 = 1.0 -. a.sp and u1 = a.sp -. a.sn in
  let t2 = b.sn and f2 = 1.0 -. b.sp and u2 = b.sp -. b.sn in
  let kappa = (t1 *. f2) +. (f1 *. t2) in
  let norm = 1.0 -. kappa in
  if norm <= tol then raise Mass.F.Total_conflict
  else
    let tt = ((t1 *. t2) +. (t1 *. u2) +. (u1 *. t2)) /. norm in
    let ff = ((f1 *. f2) +. (f1 *. u2) +. (u1 *. f2)) /. norm in
    make ~sn:tt ~sp:(1.0 -. ff)

let conjunction = f_tm

let disjunction a b =
  make
    ~sn:(a.sn +. b.sn -. (a.sn *. b.sn))
    ~sp:(a.sp +. b.sp -. (a.sp *. b.sp))

let negation a = make ~sn:(1.0 -. a.sp) ~sp:(1.0 -. a.sn)

let vtrue = Value.bool true
let vfalse = Value.bool false

let to_mass t =
  let entries =
    [ (Vset.singleton vtrue, t.sn);
      (Vset.singleton vfalse, 1.0 -. t.sp);
      (Domain.values Domain.boolean, t.sp -. t.sn) ]
  in
  Mass.F.make Domain.boolean entries

let of_mass m =
  if not (Domain.equal (Mass.F.frame m) Domain.boolean) then
    invalid_arg "Support.of_mass: frame is not the boolean frame"
  else
    let sn = Mass.F.mass m (Vset.singleton vtrue) in
    let sp = 1.0 -. Mass.F.mass m (Vset.singleton vfalse) in
    make ~sn ~sp

let ignorance t = t.sp -. t.sn
let positive t = t.sn > 0.0
let is_certain t = t.sn >= 1.0 -. tol

let equal a b =
  Float.abs (a.sn -. b.sn) <= tol && Float.abs (a.sp -. b.sp) <= tol

let compare a b =
  match Float.compare a.sn b.sn with
  | 0 -> Float.compare a.sp b.sp
  | c -> c

let pp ppf t = Format.fprintf ppf "(%g, %g)" t.sn t.sp
let to_string t = Format.asprintf "%a" pp t

let of_string s =
  let malformed () =
    invalid_arg ("Support.of_string: malformed support pair " ^ s)
  in
  (* Components are floats or exact fractions like 5/6 — the same numeric
     literals the evidence-set parser accepts. *)
  let component c =
    let c = String.trim c in
    match String.index_opt c '/' with
    | Some k -> (
        let a = String.sub c 0 k
        and b = String.sub c (k + 1) (String.length c - k - 1) in
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some a, Some b when b <> 0 -> float_of_int a /. float_of_int b
        | _ -> malformed ())
    | None -> (
        match float_of_string_opt c with
        | Some f -> f
        | None -> malformed ())
  in
  let s' = String.trim s in
  let n = String.length s' in
  if n < 2 || s'.[0] <> '(' || s'.[n - 1] <> ')' then malformed ()
  else
    match String.split_on_char ',' (String.sub s' 1 (n - 2)) with
    | [ a; b ] -> make ~sn:(component a) ~sp:(component b)
    | _ -> malformed ()
