type t = { name : string; values : Vset.t }

exception Empty_domain of string

let make name values =
  if Vset.is_empty values then raise (Empty_domain name)
  else { name; values }

let of_strings name atoms = make name (Vset.of_strings atoms)
let of_values name vs = make name (Vset.of_list vs)
let name d = d.name
let values d = d.values
let size d = Vset.cardinal d.values
let mem v d = Vset.mem v d.values
let subset s d = Vset.subset s d.values
let equal a b = Vset.equal a.values b.values
let compare a b = Vset.compare a.values b.values

let boolean =
  make "membership" (Vset.of_list [ Value.bool true; Value.bool false ])

let pp ppf d = Format.fprintf ppf "%s = %a" d.name Vset.pp d.values
let to_string d = Format.asprintf "%a" pp d
