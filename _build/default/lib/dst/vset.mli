(** Finite sets of domain values — the focal elements of mass functions.

    A thin wrapper over [Set.Make (Value)] with printing in the paper's
    brace notation ([{hu, si}], braces dropped for singletons in evidence
    sets) and the handful of extra operations mass arithmetic needs. *)

type t

val empty : t
val is_empty : t -> bool
val singleton : Value.t -> t
val of_list : Value.t list -> t
val of_strings : string list -> t
(** Convenience: [of_strings l] is [of_list (List.map Value.string l)]. *)

val to_list : t -> Value.t list
(** Elements in increasing {!Value.compare} order. *)

val cardinal : t -> int
val mem : Value.t -> t -> bool
val add : Value.t -> t -> t
val remove : Value.t -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
(** [subset a b] is true iff [a ⊆ b]. *)

val disjoint : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val choose : t -> Value.t
(** @raise Not_found on the empty set. *)

val for_all : (Value.t -> bool) -> t -> bool
val exists : (Value.t -> bool) -> t -> bool
val fold : (Value.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Value.t -> unit) -> t -> unit
val filter : (Value.t -> bool) -> t -> t
val map : (Value.t -> Value.t) -> t -> t

val forall_pairs : (Value.t -> Value.t -> bool) -> t -> t -> bool
(** [forall_pairs p a b] is true iff [p x y] holds for every [x ∈ a],
    [y ∈ b]. Used for the "is TRUE" side of θ-predicates. Vacuously true
    when either set is empty. *)

val exists_pair : (Value.t -> Value.t -> bool) -> t -> t -> bool
(** [exists_pair p a b] is true iff [p x y] holds for some [x ∈ a],
    [y ∈ b]. Used for the "may be TRUE" side of θ-predicates. *)

val pp : Format.formatter -> t -> unit
(** Always-braced form: [{hu, si}], [{si}], [{}]. *)

val pp_compact : Format.formatter -> t -> unit
(** Paper notation: braces dropped for singletons ([si]), kept
    otherwise. *)

val to_string : t -> string
