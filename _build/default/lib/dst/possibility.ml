type t = {
  frame : Domain.t;
  contour : (Value.t * float) list;  (** decreasing possibility, no zeros *)
}

exception Not_normalized

let tol = Num.float_tolerance

let make frame entries =
  List.iter
    (fun (v, p) ->
      if not (Domain.mem v frame) then
        invalid_arg
          (Format.asprintf "Possibility.make: %a outside the frame" Value.pp v);
      if p < -.tol || p > 1.0 +. tol then
        invalid_arg "Possibility.make: degree outside [0,1]")
    entries;
  let contour =
    entries
    |> List.filter (fun (_, p) -> p > tol)
    |> List.sort (fun (va, pa) (vb, pb) ->
           match Float.compare pb pa with
           | 0 -> Value.compare va vb
           | c -> c)
  in
  match contour with
  | (_, top) :: _ when top >= 1.0 -. tol -> { frame; contour }
  | _ -> raise Not_normalized

let frame t = t.frame

let possibility_of t v =
  match List.find_opt (fun (w, _) -> Value.equal v w) t.contour with
  | Some (_, p) -> p
  | None -> 0.0

let possibility t set =
  List.fold_left
    (fun acc (v, p) -> if Vset.mem v set then Float.max acc p else acc)
    0.0 t.contour

let necessity t set =
  1.0 -. possibility t (Vset.diff (Domain.values t.frame) set)

let support t set = Support.make ~sn:(necessity t set) ~sp:(possibility t set)

let of_consonant m =
  if not (Mass.F.is_consonant m) then
    invalid_arg "Possibility.of_consonant: focal elements are not nested"
  else
    make (Mass.F.frame m)
      (List.map
         (fun v -> (v, Mass.F.pls m (Vset.singleton v)))
         (Vset.to_list (Domain.values (Mass.F.frame m))))

let to_mass t =
  (* Cut the contour at each distinct level: the set of values at or
     above level λᵢ gets mass λᵢ − λᵢ₊₁. *)
  let levels =
    List.sort_uniq (fun a b -> Float.compare b a) (List.map snd t.contour)
  in
  let cut level =
    t.contour
    |> List.filter (fun (_, p) -> p >= level -. tol)
    |> List.map fst |> Vset.of_list
  in
  let rec focals = function
    | level :: (next :: _ as rest) ->
        (cut level, level -. next) :: focals rest
    | [ level ] -> [ (cut level, level) ]
    | [] -> []
  in
  Mass.F.make t.frame (focals levels)

let consonant_approximation m =
  let values = Vset.to_list (Domain.values (Mass.F.frame m)) in
  let raw = List.map (fun v -> (v, Mass.F.pls m (Vset.singleton v))) values in
  let top = List.fold_left (fun acc (_, p) -> Float.max acc p) 0.0 raw in
  make (Mass.F.frame m) (List.map (fun (v, p) -> (v, p /. top)) raw)

let pp ppf t =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf (v, p) -> Format.fprintf ppf "%a:%g" Value.pp v p))
    t.contour
