(** Evidence sets: the uncertain attribute values of the extended
    relational model.

    An evidence set (§2.1, Def.) is a mass function over an attribute's
    domain. This module fixes the float instance {!Mass.F} and adds the
    paper's concrete syntax — [[si^0.5; {hu, si}^0.33; ~^0.17]] with [~]
    denoting Ω — as a parser/printer pair, plus constructors from raw
    counts (the group-voting model of §1.2). *)

type t = Mass.F.t
(** An evidence set is exactly a float mass function. All of {!Mass.F}'s
    operations apply. *)

exception Parse_error of string * string
(** [Parse_error (input, message)]. *)

val of_string : Domain.t -> string -> t
(** Parses the paper notation. Grammar (whitespace-insensitive):
    {v
      evidence ::= '[' focal (';' focal)* ']'
      focal    ::= member '^' mass
      member   ::= '~'                      (Ω, the whole domain)
                 | literal                  (singleton)
                 | '{' literal (',' literal)* '}'
      mass     ::= float | int '/' int      (e.g. 0.25 or 1/3)
    v}
    Masses must sum to 1 (within the float tolerance).
    @raise Parse_error on syntax errors.
    @raise Mass.F.Invalid_mass on semantic errors (bad masses, values
    outside the domain). *)

val to_string : t -> string
(** Inverse of {!of_string} (modulo float formatting). *)

val pp : Format.formatter -> t -> unit

val of_counts : Domain.t -> (Vset.t * int) list -> t
(** [of_counts frame tallies] normalizes integer tallies into masses:
    the paper's vote-statistics consolidation ([d1 ↦ 3 votes, d2 ↦ 2,
    d3 ↦ 1] becomes [[d1^0.5; d2^0.33; d3^0.17]]). Entries with an empty
    set denote abstentions and contribute mass to Ω.
    @raise Mass.F.Invalid_mass if counts are negative or all zero. *)

val of_value_counts : Domain.t -> (Value.t * int) list -> t
(** {!of_counts} restricted to singleton votes. *)

val definite : Domain.t -> Value.t -> t
(** Alias of {!Mass.F.certain}: a certain value as an evidence set. *)
