type t =
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

exception Type_mismatch of t * t

let bool b = Bool b
let int n = Int n
let float f = Float f
let string s = String s

let kind_rank = function
  | Bool _ -> 0
  | Int _ -> 1
  | Float _ -> 2
  | String _ -> 3

let kind_name = function
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"

let same_kind a b = kind_rank a = kind_rank b

let compare a b =
  match (a, b) with
  | Bool x, Bool y -> Stdlib.compare x y
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Float.compare x y
  | String x, String y -> String.compare x y
  | _ -> Stdlib.compare (kind_rank a) (kind_rank b)

let equal a b = compare a b = 0

let compare_ordered a b =
  if same_kind a b then compare a b else raise (Type_mismatch (a, b))

(* A string prints bare iff it re-parses as itself: an identifier-like
   token that is not a number or boolean literal. *)
let is_bare_string s =
  let ident_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '-' || c = '.' || c = '/' || c = '@'
  in
  s <> ""
  && (let c = s.[0] in
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_')
  && String.for_all ident_char s
  && s <> "true" && s <> "false"

let pp ppf = function
  | Bool b -> Format.pp_print_bool ppf b
  | Int n -> Format.pp_print_int ppf n
  | Float f ->
      (* Keep a trailing ".": distinguishes Float 2. from Int 2 on reparse. *)
      if Float.is_integer f && Float.abs f < 1e15 then
        Format.fprintf ppf "%.1f" f
      else Format.fprintf ppf "%g" f
  | String s ->
      if is_bare_string s then Format.pp_print_string ppf s
      else Format.fprintf ppf "%S" s

let to_string v = Format.asprintf "%a" pp v

let of_literal raw =
  let s = String.trim raw in
  if s = "" then invalid_arg "Value.of_literal: empty literal"
  else if s = "true" then Bool true
  else if s = "false" then Bool false
  else if s.[0] = '"' then
    try Scanf.sscanf s "%S%!" (fun u -> String u)
    with Scanf.Scan_failure _ | Failure _ | End_of_file ->
      invalid_arg ("Value.of_literal: malformed string literal " ^ s)
  else
    match int_of_string_opt s with
    | Some n -> Int n
    | None -> (
        (* Only treat as float when it looks numeric: avoids capturing
           identifiers like "infinity-grill" or "nan". *)
        let numericish =
          s.[0] = '-' || s.[0] = '+' || (s.[0] >= '0' && s.[0] <= '9')
        in
        match (numericish, float_of_string_opt s) with
        | true, Some f -> Float f
        | _ -> String s)
