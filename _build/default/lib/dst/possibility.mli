(** The possibilistic view of evidence (extension).

    A mass function whose focal elements are nested (a {e consonant}
    assignment) is equivalent to a possibility distribution: for such
    [m], plausibility restricted to singletons determines everything —
    [Π(A) = max_{v ∈ A} π(v)] and [N(A) = 1 − Π(Ā)] coincide with
    [Pls]/[Bel]. This bridges the paper's evidential model to the fuzzy/
    possibilistic tradition it cites (Baldwin's support-logic
    programming): a support pair over a consonant body of evidence {e is}
    a necessity/possibility pair.

    For non-consonant evidence, {!consonant_approximation} produces the
    standard outer consonant approximation, ordering candidates by
    plausibility and nesting the focal elements accordingly. It is
    conservative in the same direction as {!Mass.S.approximate}:
    possibility never drops below the original plausibility on
    singletons. *)

type t
(** A possibility distribution over a frame: [π : Ω → \[0,1\]] with
    [max π = 1]. *)

exception Not_normalized
(** Raised by {!make} when no value reaches possibility 1 — the
    distribution would encode contradiction. *)

val make : Domain.t -> (Value.t * float) list -> t
(** Missing values get possibility 0.
    @raise Not_normalized unless some value has possibility 1 (within
    the float tolerance).
    @raise Invalid_argument on values outside the frame or degrees
    outside [0,1]. *)

val frame : t -> Domain.t

val possibility_of : t -> Value.t -> float
(** π(v); 0 for values outside the frame. *)

val possibility : t -> Vset.t -> float
(** Π(A) = max over the set; 0 on the empty set. *)

val necessity : t -> Vset.t -> float
(** N(A) = 1 − Π(Ā). *)

val support : t -> Vset.t -> Support.t
(** [(N(A), Π(A))] — a support pair, connecting to the paper's
    selection machinery. *)

val of_consonant : Mass.F.t -> t
(** The exact translation: [π(v) = Pls({v})].
    @raise Invalid_argument if the mass function is not consonant
    ({!Mass.S.is_consonant}). *)

val to_mass : t -> Mass.F.t
(** The consonant mass function with this contour: nested focal elements
    cut at each distinct possibility level. [of_consonant (to_mass p) =
    p] and, for consonant [m], [to_mass (of_consonant m) = m]
    (property-tested). *)

val consonant_approximation : Mass.F.t -> t
(** The outer consonant approximation of arbitrary evidence:
    [π(v) = Pls({v})], renormalized so the top candidate reaches 1.
    Exact on consonant inputs. *)

val pp : Format.formatter -> t -> unit
(** [{v1:1; v2:0.4; …}] in decreasing possibility order, zeros
    omitted. *)
