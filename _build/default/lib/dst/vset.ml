module S = Set.Make (Value)

type t = S.t

let empty = S.empty
let is_empty = S.is_empty
let singleton = S.singleton
let of_list = S.of_list
let of_strings l = of_list (List.map Value.string l)
let to_list = S.elements
let cardinal = S.cardinal
let mem = S.mem
let add = S.add
let remove = S.remove
let union = S.union
let inter = S.inter
let diff = S.diff
let subset = S.subset
let disjoint = S.disjoint
let equal = S.equal
let compare = S.compare
let choose s = match S.choose_opt s with Some v -> v | None -> raise Not_found
let for_all = S.for_all
let exists = S.exists
let fold = S.fold
let iter = S.iter
let filter = S.filter
let map = S.map
let forall_pairs p a b = S.for_all (fun x -> S.for_all (fun y -> p x y) b) a
let exists_pair p a b = S.exists (fun x -> S.exists (fun y -> p x y) b) a

let pp ppf s =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Value.pp)
    (to_list s)

let pp_compact ppf s =
  match to_list s with [ v ] -> Value.pp ppf v | _ -> pp ppf s

let to_string s = Format.asprintf "%a" pp s
