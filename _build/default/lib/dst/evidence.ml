type t = Mass.F.t

exception Parse_error of string * string

(* ------------------------------------------------------------------ *)
(* Lexer for the paper's evidence-set notation.                        *)

type token =
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Semi
  | Comma
  | Caret
  | Omega
  | Lit of string

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let lex input =
  let n = String.length input in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let c = input.[i] in
      if is_space c then go (i + 1) acc
      else
        match c with
        | '[' -> go (i + 1) (Lbracket :: acc)
        | ']' -> go (i + 1) (Rbracket :: acc)
        | '{' -> go (i + 1) (Lbrace :: acc)
        | '}' -> go (i + 1) (Rbrace :: acc)
        | ';' -> go (i + 1) (Semi :: acc)
        | ',' -> go (i + 1) (Comma :: acc)
        | '^' -> go (i + 1) (Caret :: acc)
        | '~' -> go (i + 1) (Omega :: acc)
        | '"' ->
            (* Quoted string literal: scan to the closing quote, honouring
               backslash escapes. *)
            let rec close j =
              if j >= n then
                raise (Parse_error (input, "unterminated string literal"))
              else if input.[j] = '\\' then close (j + 2)
              else if input.[j] = '"' then j
              else close (j + 1)
            in
            let j = close (i + 1) in
            go (j + 1) (Lit (String.sub input i (j - i + 1)) :: acc)
        | _ ->
            let stop_char c =
              is_space c || String.contains "[]{};,^" c
            in
            let j = ref i in
            while !j < n && not (stop_char input.[!j]) do
              incr j
            done;
            go !j (Lit (String.sub input i (!j - i)) :: acc)
  in
  go 0 []

(* ------------------------------------------------------------------ *)
(* Recursive-descent parser.                                           *)

let parse_mass input tok =
  match tok with
  | Lit s -> (
      match String.index_opt s '/' with
      | Some k -> (
          let a = String.sub s 0 k
          and b = String.sub s (k + 1) (String.length s - k - 1) in
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some a, Some b when b <> 0 -> float_of_int a /. float_of_int b
          | _ -> raise (Parse_error (input, "malformed fraction " ^ s)))
      | None -> (
          match float_of_string_opt s with
          | Some f -> f
          | None -> raise (Parse_error (input, "expected a mass, got " ^ s))))
  | _ -> raise (Parse_error (input, "expected a mass value"))

let of_string frame input =
  let fail msg = raise (Parse_error (input, msg)) in
  let toks = lex input in
  let parse_member toks =
    match toks with
    | Omega :: rest -> (Domain.values frame, rest)
    | Lit s :: rest -> (Vset.singleton (Value.of_literal s), rest)
    | Lbrace :: rest ->
        let rec elems acc toks =
          match toks with
          | Lit s :: Comma :: rest -> elems (Value.of_literal s :: acc) rest
          | Lit s :: Rbrace :: rest ->
              (Vset.of_list (Value.of_literal s :: acc), rest)
          | Rbrace :: rest when acc <> [] -> (Vset.of_list acc, rest)
          | _ -> fail "malformed set {…}"
        in
        elems [] rest
    | _ -> fail "expected a focal element"
  in
  let parse_focal toks =
    let set, rest = parse_member toks in
    match rest with
    | Caret :: m :: rest -> ((set, parse_mass input m), rest)
    | _ -> fail "expected ^mass after focal element"
  in
  let rec parse_focals acc toks =
    let focal, rest = parse_focal toks in
    match rest with
    | Semi :: rest -> parse_focals (focal :: acc) rest
    | Rbracket :: [] -> List.rev (focal :: acc)
    | Rbracket :: _ -> fail "trailing input after ]"
    | _ -> fail "expected ; or ]"
  in
  match toks with
  | Lbracket :: rest -> Mass.F.make frame (parse_focals [] rest)
  | _ -> fail "expected ["

let to_string = Mass.F.to_string
let pp = Mass.F.pp

let of_counts frame tallies =
  let omega = Domain.values frame in
  let entries =
    List.map
      (fun (set, count) ->
        if count < 0 then
          raise (Mass.F.Invalid_mass "negative vote count")
        else if Vset.is_empty set then (omega, float_of_int count)
        else (set, float_of_int count))
      tallies
  in
  Mass.F.make_normalized frame entries

let of_value_counts frame tallies =
  of_counts frame
    (List.map (fun (v, c) -> (Vset.singleton v, c)) tallies)

let definite = Mass.F.certain
