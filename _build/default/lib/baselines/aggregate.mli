(** Dayal's aggregate resolution (VLDB 1983) — the numeric baseline.

    Conflicting numeric attribute values are resolved by an aggregate
    function (average, min, max, …) over the conflicting observations.
    The paper positions this as complementary: appropriate for numeric
    attributes, inapplicable to categorical or uncertain ones — which is
    exactly what {!applicable} captures. *)

type fn = Average | Minimum | Maximum | Sum | First | Last

exception Not_numeric of Dst.Value.t

val resolve : fn -> Dst.Value.t list -> Dst.Value.t
(** Resolve conflicting observations of one attribute.
    Numeric results follow the inputs' kind (ints stay ints for
    min/max/first/last/sum; [Average] always yields a float).
    @raise Not_numeric when [Average]/[Minimum]/[Maximum]/[Sum] meets a
    non-numeric value.
    @raise Invalid_argument on the empty list. *)

val resolve_cells : fn -> Erm.Etuple.cell list -> Erm.Etuple.cell
(** {!resolve} over definite cells.
    @raise Not_numeric if any cell holds evidence — aggregates are not
    defined over uncertain values (the paper's §1.3 observation). *)

val applicable : Erm.Etuple.cell list -> bool
(** True iff every cell is a definite numeric value. *)

val fn_to_string : fn -> string
