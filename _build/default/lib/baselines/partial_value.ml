type pv = Dst.Vset.t

exception Inconsistent of pv * pv

let of_evidence e =
  List.fold_left
    (fun acc (set, _) -> Dst.Vset.union acc set)
    Dst.Vset.empty (Dst.Mass.F.focals e)

let definite v = Dst.Vset.singleton v
let is_definite pv = Dst.Vset.cardinal pv = 1

let combine a b =
  let i = Dst.Vset.inter a b in
  if Dst.Vset.is_empty i then raise (Inconsistent (a, b)) else i

type answer = True | Maybe | False

let satisfies_is pv set =
  if Dst.Vset.subset pv set then True
  else if Dst.Vset.disjoint pv set then False
  else Maybe

let answer_of_support s =
  if Dst.Support.is_certain s then True
  else if Dst.Support.sp s <= Dst.Num.float_tolerance then False
  else Maybe

type tuple = { key : Dst.Value.t; cells : (string * pv) list }
type relation = tuple list

exception Pv_error of string

let relation_of_extended r =
  let schema = Erm.Relation.schema r in
  if Erm.Schema.key_arity schema <> 1 then
    raise (Pv_error "partial-value relations support single-attribute keys")
  else
    Erm.Relation.fold
      (fun t acc ->
        let key =
          match Erm.Etuple.key t with [ k ] -> k | _ -> assert false
        in
        let cells =
          List.map2
            (fun attr cell ->
              let pv =
                match cell with
                | Erm.Etuple.Definite v -> definite v
                | Erm.Etuple.Evidence e -> of_evidence e
              in
              (Erm.Attr.name attr, pv))
            (Erm.Schema.nonkey schema)
            (Erm.Etuple.cells t)
        in
        { key; cells } :: acc)
      r []
    |> List.rev

let union a b =
  let inconsistencies = ref [] in
  let find_in rel key =
    List.find_opt (fun t -> Dst.Value.equal t.key key) rel
  in
  let merge ta tb =
    let exception Bail in
    try
      let cells =
        List.map
          (fun (name, pa) ->
            match List.assoc_opt name tb.cells with
            | None -> raise (Pv_error ("attribute mismatch: " ^ name))
            | Some pb -> (
                try (name, combine pa pb)
                with Inconsistent _ ->
                  inconsistencies := (ta.key, name) :: !inconsistencies;
                  raise Bail))
          ta.cells
      in
      Some { ta with cells }
    with Bail -> None
  in
  let from_a =
    List.filter_map
      (fun ta ->
        match find_in b ta.key with
        | None -> Some ta
        | Some tb -> merge ta tb)
      a
  in
  let from_b = List.filter (fun tb -> find_in a tb.key = None) b in
  (from_a @ from_b, List.rev !inconsistencies)

let select_is rel attr set =
  let answer t =
    match List.assoc_opt attr t.cells with
    | None -> raise (Pv_error ("unknown attribute " ^ attr))
    | Some pv -> satisfies_is pv set
  in
  let true_tuples = List.filter (fun t -> answer t = True) rel in
  let maybe_tuples = List.filter (fun t -> answer t = Maybe) rel in
  (true_tuples, maybe_tuples)

let pp_pv = Dst.Vset.pp
