type tuple = { key : Dst.Value.t; cells : (string * Dst.Evidence.t) list }
type relation = { attr_names : string list; tuples : tuple list }

exception Lee_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Lee_error s)) fmt

let check_tuple attr_names t =
  let bound = List.map fst t.cells in
  if List.sort String.compare bound <> List.sort String.compare attr_names
  then
    fail "tuple %a binds [%s], expected [%s]" Dst.Value.pp t.key
      (String.concat "; " bound)
      (String.concat "; " attr_names)

let make attr_names tuples =
  List.iter (check_tuple attr_names) tuples;
  let keys = List.map (fun t -> t.key) tuples in
  if List.length (List.sort_uniq Dst.Value.compare keys) <> List.length keys
  then fail "duplicate keys"
  else { attr_names; tuples }

let of_extended r =
  let schema = Erm.Relation.schema r in
  if Erm.Schema.key_arity schema <> 1 then
    fail "Lee projection supports single-attribute keys"
  else
    let evidential =
      List.filter Erm.Attr.is_evidential (Erm.Schema.nonkey schema)
    in
    let attr_names = List.map Erm.Attr.name evidential in
    let tuples =
      Erm.Relation.fold
        (fun t acc ->
          let key =
            match Erm.Etuple.key t with [ k ] -> k | _ -> assert false
          in
          let cells =
            List.map
              (fun a ->
                (Erm.Attr.name a, Erm.Etuple.evidence schema t (Erm.Attr.name a)))
              evidential
          in
          { key; cells } :: acc)
        r []
      |> List.rev
    in
    make attr_names tuples

let cardinal r = List.length r.tuples
let attrs r = r.attr_names

let find_opt r key =
  List.find_opt (fun t -> Dst.Value.equal t.key key) r.tuples

let union a b =
  if a.attr_names <> b.attr_names then fail "attribute lists differ"
  else begin
    let conflicts = ref [] in
    let merge ta tb =
      let exception Bail in
      try
        Some
          { ta with
            cells =
              List.map
                (fun (name, ea) ->
                  let eb = List.assoc name tb.cells in
                  match Dst.Mass.F.combine_opt ea eb with
                  | Some (m, _) -> (name, m)
                  | None ->
                      conflicts := (ta.key, name) :: !conflicts;
                      raise Bail)
                ta.cells }
      with Bail -> None
    in
    let from_a =
      List.filter_map
        (fun ta ->
          match find_opt b ta.key with
          | None -> Some ta
          | Some tb -> merge ta tb)
        a.tuples
    in
    let from_b =
      List.filter (fun tb -> find_opt a tb.key = None) b.tuples
    in
    ( { a with tuples = from_a @ from_b },
      List.rev !conflicts )
  end

let select r attr set =
  List.filter_map
    (fun t ->
      match List.assoc_opt attr t.cells with
      | None -> fail "unknown attribute %s" attr
      | Some e ->
          let bel, pls = Dst.Mass.F.interval e set in
          if pls <= Dst.Num.float_tolerance then None
          else Some (t, (bel, pls)))
    r.tuples
