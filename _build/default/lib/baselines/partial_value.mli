(** DeMichiel's partial values (IEEE TKDE 1989) — the baseline the paper
    generalizes.

    A partial value is a set of candidate values of which {e exactly one}
    is correct, with no belief distribution over the candidates. Combining
    two partial values for the same entity is set intersection (both
    sources are assumed consistent); an empty intersection is an
    integration inconsistency. Queries return {e true} tuples (definitely
    qualify) and {e may-be} tuples (possibly qualify) as two separate
    sets — contrast with the paper's single result set graded by
    [(sn, sp)]. *)

type pv = Dst.Vset.t
(** Invariant: non-empty. *)

exception Inconsistent of pv * pv
(** Raised by {!combine} when the intersection is empty. *)

val of_evidence : Dst.Evidence.t -> pv
(** Forgetful projection of an evidence set: the union of its focal
    elements (every value with positive plausibility). This is what the
    DS model degrades to when belief is discarded. *)

val definite : Dst.Value.t -> pv
val is_definite : pv -> bool

val combine : pv -> pv -> pv
(** Set intersection. @raise Inconsistent when empty. *)

type answer = True | Maybe | False

val satisfies_is : pv -> Dst.Vset.t -> answer
(** [A is S]: [True] iff the partial value is contained in [S]; [Maybe]
    iff it merely intersects [S]. *)

val answer_of_support : Dst.Support.t -> answer
(** How a DS support pair coarsens to the three-valued answer: [(1,·)]
    is [True], [(·,0)] is [False], anything else [Maybe] — used by tests
    to check that the DS model refines partial values. *)

(** {1 A miniature partial-value relation} *)

type tuple = { key : Dst.Value.t; cells : (string * pv) list }
type relation = tuple list

exception Pv_error of string

val relation_of_extended : Erm.Relation.t -> relation
(** Project an extended relation (single-attribute key) onto partial
    values: evidential cells via {!of_evidence}, definite cells as
    singletons; membership is discarded (partial-value relations cannot
    express it). @raise Pv_error on multi-attribute keys. *)

val union : relation -> relation -> relation * (Dst.Value.t * string) list
(** Key-matched intersection merge. Inconsistent cells are reported as
    [(key, attribute)] pairs and the pair's tuple is dropped, mirroring
    {!Erm.Ops.union_report}. *)

val select_is : relation -> string -> Dst.Vset.t -> relation * relation
(** [(true_tuples, maybe_tuples)] — DeMichiel's two result sets. *)

val pp_pv : Format.formatter -> pv -> unit
