lib/baselines/lee.mli: Dst Erm
