lib/baselines/prob_partial.ml: Dst Erm Format List
