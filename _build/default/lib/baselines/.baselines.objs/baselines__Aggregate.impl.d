lib/baselines/aggregate.ml: Dst Erm List
