lib/baselines/partial_value.mli: Dst Erm Format
