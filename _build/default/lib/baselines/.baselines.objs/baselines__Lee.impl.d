lib/baselines/lee.ml: Dst Erm Format List String
