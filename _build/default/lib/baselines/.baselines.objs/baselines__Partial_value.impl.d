lib/baselines/partial_value.ml: Dst Erm List
