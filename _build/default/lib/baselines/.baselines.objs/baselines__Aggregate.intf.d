lib/baselines/aggregate.mli: Dst Erm
