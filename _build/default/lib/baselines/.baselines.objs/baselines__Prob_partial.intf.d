lib/baselines/prob_partial.mli: Dst Erm Format
