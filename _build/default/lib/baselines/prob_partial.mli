(** Tseng, Chen & Yang's probabilistic partial values (1992) — the
    probabilistic baseline the paper contrasts with.

    An attribute value is a discrete probability distribution over
    candidate values. Unlike the paper's model, (1) probabilities attach
    only to individual values, never to subsets — ignorance cannot be
    represented apart from a uniform spread — and (2) sources are not
    assumed consistent: merging {e retains} inconsistent alternatives (a
    normalized mixture) instead of renormalizing them away as Dempster's
    rule does. Queries filter on the probability that the condition
    holds and annotate results with it. *)

type ppv = (Dst.Value.t * float) list
(** A distribution: positive probabilities summing to 1. *)

exception Invalid_ppv of string

val make : (Dst.Value.t * float) list -> ppv
(** Validates and normalizes: drops non-positive entries, merges
    duplicates. @raise Invalid_ppv if nothing positive remains or the
    mass does not normalize. *)

val definite : Dst.Value.t -> ppv

val of_evidence : Dst.Evidence.t -> ppv
(** Pignistic projection: a focal element's mass splits equally among its
    values — the standard way to read a DS assignment as probabilities
    (and exactly where subset-level information is lost). *)

val prob_in : ppv -> Dst.Vset.t -> float
(** P(A ∈ S). *)

val merge : ppv -> ppv -> ppv
(** Equal-weight mixture of the two distributions: alternatives from both
    sources survive (inconsistency is retained, per Tseng et al.),
    contrasting with {!Dst.Mass.F.combine}'s conflict renormalization. *)

val merge_weighted : float -> ppv -> ppv -> ppv
(** [merge_weighted w a b] mixes with weight [w] on [a]. *)

val expected_value : ppv -> float
(** For numeric distributions. @raise Invalid_ppv on non-numeric
    values. *)

(** {1 A miniature probabilistic relation} *)

type tuple = { key : Dst.Value.t; cells : (string * ppv) list }
type relation = tuple list

val relation_of_extended : Erm.Relation.t -> relation
(** Pignistic projection of an extended relation (single-attribute key);
    membership is discarded. @raise Invalid_ppv on multi-attribute
    keys. *)

val union : relation -> relation -> relation
(** Key-matched mixture merge; never fails (inconsistency is kept). *)

val select_is :
  certainty:float -> relation -> string -> Dst.Vset.t -> (tuple * float) list
(** Tuples whose P(A ∈ S) reaches [certainty], with that probability —
    Tseng et al.'s thresholded selection. *)

val pp_ppv : Format.formatter -> ppv -> unit
