type fn = Average | Minimum | Maximum | Sum | First | Last

exception Not_numeric of Dst.Value.t

let as_float v =
  match v with
  | Dst.Value.Int n -> float_of_int n
  | Dst.Value.Float f -> f
  | Dst.Value.Bool _ | Dst.Value.String _ -> raise (Not_numeric v)

let all_ints vs =
  List.for_all (function Dst.Value.Int _ -> true | _ -> false) vs

let resolve fn vs =
  match vs with
  | [] -> invalid_arg "Aggregate.resolve: no observations"
  | first :: _ -> (
      match fn with
      | First -> first
      | Last -> List.nth vs (List.length vs - 1)
      | Average ->
          let total = List.fold_left (fun acc v -> acc +. as_float v) 0.0 vs in
          Dst.Value.float (total /. float_of_int (List.length vs))
      | Sum ->
          if all_ints vs then
            Dst.Value.int
              (List.fold_left
                 (fun acc v ->
                   match v with Dst.Value.Int n -> acc + n | _ -> acc)
                 0 vs)
          else
            Dst.Value.float
              (List.fold_left (fun acc v -> acc +. as_float v) 0.0 vs)
      | Minimum | Maximum ->
          let better a b =
            let fa = as_float a and fb = as_float b in
            match fn with
            | Minimum -> if fb < fa then b else a
            | Maximum -> if fb > fa then b else a
            | Average | Sum | First | Last -> assert false
          in
          List.fold_left better first (List.tl vs))

let cell_value = function
  | Erm.Etuple.Definite v -> v
  | Erm.Etuple.Evidence e -> (
      (* Aggregates are undefined over uncertain values; surface the
         offending candidate for the error message. *)
      match Dst.Mass.F.focals e with
      | (set, _) :: _ -> raise (Not_numeric (Dst.Vset.choose set))
      | [] -> assert false)

let resolve_cells fn cells =
  Erm.Etuple.Definite (resolve fn (List.map cell_value cells))

let applicable cells =
  List.for_all
    (function
      | Erm.Etuple.Definite (Dst.Value.Int _ | Dst.Value.Float _) -> true
      | Erm.Etuple.Definite (Dst.Value.Bool _ | Dst.Value.String _)
      | Erm.Etuple.Evidence _ -> false)
    cells

let fn_to_string = function
  | Average -> "average"
  | Minimum -> "minimum"
  | Maximum -> "maximum"
  | Sum -> "sum"
  | First -> "first"
  | Last -> "last"
