type ppv = (Dst.Value.t * float) list

exception Invalid_ppv of string

let tol = Dst.Num.float_tolerance

let make entries =
  let positive = List.filter (fun (_, p) -> p > 0.0) entries in
  if positive = [] then raise (Invalid_ppv "no positive probabilities")
  else
    let merged =
      List.fold_left
        (fun acc (v, p) ->
          match List.partition (fun (w, _) -> Dst.Value.equal v w) acc with
          | [ (_, q) ], rest -> (v, p +. q) :: rest
          | [], rest -> (v, p) :: rest
          | _ -> assert false)
        [] positive
    in
    let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 merged in
    if total <= tol then raise (Invalid_ppv "zero total probability")
    else
      List.map (fun (v, p) -> (v, p /. total)) merged
      |> List.sort (fun (a, _) (b, _) -> Dst.Value.compare a b)

let definite v = [ (v, 1.0) ]
let of_evidence e = make (Dst.Mass.F.pignistic e)

let prob_in ppv set =
  List.fold_left
    (fun acc (v, p) -> if Dst.Vset.mem v set then acc +. p else acc)
    0.0 ppv

let merge_weighted w a b =
  if w < 0.0 || w > 1.0 then raise (Invalid_ppv "mixture weight outside [0,1]")
  else
    make
      (List.map (fun (v, p) -> (v, w *. p)) a
      @ List.map (fun (v, p) -> (v, (1.0 -. w) *. p)) b)

let merge a b = merge_weighted 0.5 a b

let expected_value ppv =
  List.fold_left
    (fun acc (v, p) ->
      match v with
      | Dst.Value.Int n -> acc +. (float_of_int n *. p)
      | Dst.Value.Float f -> acc +. (f *. p)
      | Dst.Value.Bool _ | Dst.Value.String _ ->
          raise (Invalid_ppv "expected_value over non-numeric values"))
    0.0 ppv

type tuple = { key : Dst.Value.t; cells : (string * ppv) list }
type relation = tuple list

let relation_of_extended r =
  let schema = Erm.Relation.schema r in
  if Erm.Schema.key_arity schema <> 1 then
    raise (Invalid_ppv "probabilistic relations support single-attribute keys")
  else
    Erm.Relation.fold
      (fun t acc ->
        let key =
          match Erm.Etuple.key t with [ k ] -> k | _ -> assert false
        in
        let cells =
          List.map2
            (fun attr cell ->
              let ppv =
                match cell with
                | Erm.Etuple.Definite v -> definite v
                | Erm.Etuple.Evidence e -> of_evidence e
              in
              (Erm.Attr.name attr, ppv))
            (Erm.Schema.nonkey schema)
            (Erm.Etuple.cells t)
        in
        { key; cells } :: acc)
      r []
    |> List.rev

let union a b =
  let find_in rel key =
    List.find_opt (fun t -> Dst.Value.equal t.key key) rel
  in
  let merge_tuples ta tb =
    { ta with
      cells =
        List.map
          (fun (name, pa) ->
            match List.assoc_opt name tb.cells with
            | None -> raise (Invalid_ppv ("attribute mismatch: " ^ name))
            | Some pb -> (name, merge pa pb))
          ta.cells }
  in
  let from_a =
    List.map
      (fun ta ->
        match find_in b ta.key with
        | None -> ta
        | Some tb -> merge_tuples ta tb)
      a
  in
  let from_b = List.filter (fun tb -> find_in a tb.key = None) b in
  from_a @ from_b

let select_is ~certainty rel attr set =
  List.filter_map
    (fun t ->
      match List.assoc_opt attr t.cells with
      | None -> raise (Invalid_ppv ("unknown attribute " ^ attr))
      | Some ppv ->
          let p = prob_in ppv set in
          if p >= certainty then Some (t, p) else None)
    rel

let pp_ppv ppf ppv =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (v, p) -> Format.fprintf ppf "%a:%g" Dst.Value.pp v p))
    ppv
