(** A simplified rendition of S.K. Lee's evidential relational model
    (ICDE 1992) — the fourth related-work system of §1.3.

    The paper builds on Lee's model and names its own differences: Lim et
    al. add the {e tuple membership attribute}, the generalized closed
    world assumption CWA_ER, and the closure/boundedness guarantees that
    make query processing finite. This module renders the contrast
    executable: evidential attribute values exactly like the main model,
    but {e no membership pair on tuples} and no CWA_ER invariant.
    Consequences, each asserted in [test/test_baselines.ml]:

    - a query cannot return "a full range of certainty" per tuple; the
      best it can do is annotate each tuple with the predicate's belief
      interval;
    - integration cannot weigh how much each source believed the tuple
      {e existed} — the paper's Table 4 mehl row (membership
      (0.5,0.5) ⊕ (0.8,1) = (0.83,0.83)) has no counterpart;
    - there is no [sn > 0] storage criterion, so "tuple known not to
      exist" and "tuple fully believed" are indistinguishable at the
      relation level.

    Only evidential attributes are modeled (single-attribute string-ish
    keys; definite descriptive columns are outside this comparison's
    scope). This is deliberately a {e faithful-to-the-contrast}
    simplification, not a complete reconstruction of Lee's paper. *)

type tuple = { key : Dst.Value.t; cells : (string * Dst.Evidence.t) list }
type relation

exception Lee_error of string

val make : string list -> tuple list -> relation
(** [make attr_names tuples] validates that every tuple binds exactly
    the listed attributes (frames are per-attribute consistent).
    @raise Lee_error on shape mismatches or duplicate keys. *)

val of_extended : Erm.Relation.t -> relation
(** Project an extended relation onto Lee's model: evidential cells are
    kept, the membership pair is {e dropped} (this is the lossy step the
    paper's extension repairs), definite non-key attributes are ignored.
    @raise Lee_error on multi-attribute keys. *)

val cardinal : relation -> int
val attrs : relation -> string list
val find_opt : relation -> Dst.Value.t -> tuple option

val union : relation -> relation -> relation * (Dst.Value.t * string) list
(** Key-matched Dempster merge of every attribute, unmatched tuples pass
    through — the part of the integration story Lee's model and the
    paper share. Total conflict drops the pair and reports
    [(key, attr)]. *)

val select :
  relation -> string -> Dst.Vset.t -> (tuple * (float * float)) list
(** [select r a set]: tuples annotated with [(Bel, Pls)] of [a ∈ set].
    Without a membership attribute there is nothing to multiply the
    interval into — the caller gets the predicate support only, and
    tuples the evidence cannot support at all ([Pls = 0]) are omitted. *)
