(** Attribute domain mappings: actual attributes → virtual attributes.

    Attribute preprocessing (Figure 1) rewrites each source relation over
    the global schema's domains. When a source value maps to more than
    one possible target value — DeMichiel's motivating case — the image
    is an evidence set: mass 1 on the image set for a plain ambiguous
    mapping, or a weighted split when finer domain knowledge exists. *)

type t
(** A mapping from one source domain's values into a target domain. *)

exception Unmapped of Dst.Value.t
(** Raised by {!apply} when the source value has no image and the mapping
    was built without [~default_to_omega]. *)

val exact : Dst.Domain.t -> (Dst.Value.t -> Dst.Value.t) -> t
(** One-to-one: each source value has a single certain image. *)

val ambiguous : Dst.Domain.t -> (Dst.Value.t -> Dst.Vset.t) -> t
(** One-to-many: the image is a set of candidates, exactly one of which
    is correct (a DeMichiel partial value, embedded as categorical
    evidence). An empty image set raises {!Unmapped} at {!apply} time. *)

val weighted :
  Dst.Domain.t -> (Dst.Value.t -> (Dst.Vset.t * float) list) -> t
(** Many-to-many with belief: the image is an evidence set built from the
    returned (set, weight) list, normalized. An empty list raises
    {!Unmapped} at {!apply} time. *)

val table :
  ?default_to_omega:bool ->
  Dst.Domain.t ->
  (Dst.Value.t * (Dst.Vset.t * float) list) list ->
  t
(** An explicit finite mapping. Lookups miss either raise {!Unmapped}
    (default) or map to total ignorance — mass 1 on Ω — when
    [~default_to_omega:true]. *)

val identity : Dst.Domain.t -> t
(** Values already in the target domain pass through as certain
    evidence; values outside it raise {!Unmapped}. *)

val target : t -> Dst.Domain.t

val apply : t -> Dst.Value.t -> Dst.Evidence.t
(** @raise Unmapped as described above.
    @raise Dst.Mass.F.Invalid_mass if an image references values outside
    the target domain or has non-positive total weight. *)

val compose : t -> t -> t
(** [compose f g] applies [g] to each value, then maps every value in
    [g]'s image sets through [f], combining weights multiplicatively.
    Only meaningful when [f] is built over [g]'s target domain. *)
