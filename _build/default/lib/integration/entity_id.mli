(** Entity identification (Figure 1): which tuples of the two
    preprocessed relations model the same real-world entity.

    The paper assumes a common definite key ("rname is the key used to
    match tuples in R_A and R_B") and defers the general problem to its
    companion work [10]; {!by_key} implements that assumption. As a
    documented extension, {!by_similarity} produces match {e evidence}
    from definite attribute agreement — each compared attribute acts as
    an independent witness, discounted by its reliability, and the
    combined support decides the match. *)

type matching = {
  matched : (Erm.Etuple.t * Erm.Etuple.t) list;
      (** Pairs believed to model the same entity. *)
  only_left : Erm.Etuple.t list;
  only_right : Erm.Etuple.t list;
}

val by_key : Erm.Relation.t -> Erm.Relation.t -> matching
(** Common-key matching: tuples match iff their key values are equal.
    @raise Erm.Ops.Incompatible_schemas unless the relations are
    union-compatible. *)

(** Similarity-based matching (extension). *)

type similarity =
  | Exact  (** Agreement iff the values are equal. *)
  | Edit_distance of float
      (** String values compared by normalized Levenshtein distance:
          agreement degree [1 − dist/max_len], and the witness's support
          scales with it — ["371-2155"] vs ["371-2156"] still supports a
          match strongly. The payload is the minimum degree treated as
          any agreement at all (below it the witness speaks against the
          match). Non-string values fall back to {!Exact}. *)

type witness = {
  witness_attr : string;  (** A definite attribute to compare. *)
  reliability : float;
      (** How strongly agreement on this attribute supports a match
          (Shafer discount rate), in [\[0,1\]]. *)
  similarity : similarity;
}

val exact_witness : ?reliability:float -> string -> witness
(** [exact_witness attr] with default reliability 0.9. *)

val fuzzy_witness : ?reliability:float -> ?floor:float -> string -> witness
(** Edit-distance witness (default reliability 0.9, agreement floor
    0.7). *)

val levenshtein : string -> string -> int
(** Classic edit distance (insert/delete/substitute, unit costs) —
    exposed for tests and custom matchers. *)

val match_support :
  Erm.Schema.t -> witness list -> Erm.Etuple.t -> Erm.Etuple.t -> Dst.Support.t
(** The combined match evidence for one tuple pair: each witness
    contributes a simple support function on the boolean "same entity"
    frame — agreement supports [true] at its reliability, disagreement
    supports [false] — and the witnesses are Dempster-combined. *)

val by_similarity :
  threshold:float ->
  witnesses:witness list ->
  Erm.Relation.t ->
  Erm.Relation.t ->
  matching
(** Greedy matching: every cross pair with match belief [sn ≥ threshold]
    is matched best-first; remaining tuples are unmatched. Intended for
    sources whose keys do not align. *)
