let merge_first ?threshold pred a b =
  let merged, _conflicts = Erm.Ops.union_report a b in
  Erm.Ops.select ?threshold pred merged

let select_first ?threshold pred a b =
  let pa = Erm.Ops.select pred a and pb = Erm.Ops.select pred b in
  let merged, _conflicts = Erm.Ops.union_report pa pb in
  match threshold with
  | None -> merged
  | Some q ->
      Erm.Relation.filter
        (fun t -> Erm.Threshold.satisfies q (Erm.Etuple.tm t))
        merged

type comparison = {
  reference : Erm.Relation.t;
  approximate : Erm.Relation.t;
  missing : Dst.Value.t list list;
  spurious : Dst.Value.t list list;
  max_sn_gap : float;
}

let compare ?threshold pred a b =
  let reference = merge_first ?threshold pred a b in
  let approximate = select_first ?threshold pred a b in
  let keys_not_in other r =
    Erm.Relation.fold
      (fun t acc ->
        if Erm.Relation.mem other (Erm.Etuple.key t) then acc
        else Erm.Etuple.key t :: acc)
      r []
    |> List.rev
  in
  let max_sn_gap =
    Erm.Relation.fold
      (fun t acc ->
        match Erm.Relation.find_opt approximate (Erm.Etuple.key t) with
        | None -> acc
        | Some t' ->
            Float.max acc
              (Float.abs
                 (Dst.Support.sn (Erm.Etuple.tm t)
                 -. Dst.Support.sn (Erm.Etuple.tm t'))))
      reference 0.0
  in
  { reference;
    approximate;
    missing = keys_not_in approximate reference;
    spurious = keys_not_in reference approximate;
    max_sn_gap }

let pp_key ppf key =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Dst.Value.pp)
    key

let pp_comparison ppf c =
  Format.fprintf ppf
    "@[<v>reference %d tuples, approximation %d; max sn gap %.4f"
    (Erm.Relation.cardinal c.reference)
    (Erm.Relation.cardinal c.approximate)
    c.max_sn_gap;
  List.iter (fun k -> Format.fprintf ppf "@,missing %a" pp_key k) c.missing;
  List.iter (fun k -> Format.fprintf ppf "@,spurious %a" pp_key k) c.spurious;
  Format.fprintf ppf "@]"
