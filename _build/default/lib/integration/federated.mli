(** Federated query-processing strategies — the paper's §4 "ongoing
    research" ("how query processing can be combined with different
    approaches of resolving attribute conflicts"), made executable.

    A federated query over unmerged sources can be evaluated two ways:

    - {!merge_first}: integrate with extended union, then select — the
      reference semantics (what the paper's integrated relation gives);
    - {!select_first}: select at each source, ship only the candidates,
      merge those, then apply the membership threshold. Cheaper — the
      expensive Dempster merge runs on the selected fraction only — but
      {e not equivalent}: selection multiplies the predicate support
      into each source's membership {e before} Dempster combines them,
      so the support is counted once per source:
      [F(F_TM(tm_r, s) , F_TM(tm_s, s)) ≠ F_TM(F(tm_r, tm_s), s)].
      Attribute evidence itself is unaffected (σ̂ retains cells), so the
      deviation is confined to membership values and to which borderline
      tuples clear the threshold.

    {!compare} quantifies the deviation on concrete data;
    [bench/main.ml]'s [federated:*] group measures the cost side. The
    non-equivalence is the same algebraic fact that stops the optimizer
    from pushing σ̂ through ∪̂ ({!Query.Plan}). *)

val merge_first :
  ?threshold:Erm.Threshold.t ->
  Erm.Predicate.t ->
  Erm.Relation.t ->
  Erm.Relation.t ->
  Erm.Relation.t
(** [σ̂^Q_P (A ∪̂ B)] — the reference. Conflicting pairs are dropped and
    not reported here (use {!Merge.by_key} for reports). *)

val select_first :
  ?threshold:Erm.Threshold.t ->
  Erm.Predicate.t ->
  Erm.Relation.t ->
  Erm.Relation.t ->
  Erm.Relation.t
(** [Q-filter (σ̂_P A ∪̂ σ̂_P B)] — the shipped-candidates approximation.
    The per-source selections run threshold-free; [Q] applies to the
    merged memberships at the end. *)

type comparison = {
  reference : Erm.Relation.t;
  approximate : Erm.Relation.t;
  missing : Dst.Value.t list list;
      (** Keys the approximation loses (supports double-counted {e
          downwards} past the threshold, or a source-local sn of 0
          dropping a tuple the merged evidence would have supported). *)
  spurious : Dst.Value.t list list;
      (** Keys the approximation adds. *)
  max_sn_gap : float;
      (** Largest |sn_ref − sn_approx| over the common keys. *)
}

val compare :
  ?threshold:Erm.Threshold.t ->
  Erm.Predicate.t ->
  Erm.Relation.t ->
  Erm.Relation.t ->
  comparison

val pp_comparison : Format.formatter -> comparison -> unit
