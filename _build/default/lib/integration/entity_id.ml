type matching = {
  matched : (Erm.Etuple.t * Erm.Etuple.t) list;
  only_left : Erm.Etuple.t list;
  only_right : Erm.Etuple.t list;
}

let by_key left right =
  if
    not
      (Erm.Schema.union_compatible
         (Erm.Relation.schema left)
         (Erm.Relation.schema right))
  then
    raise
      (Erm.Ops.Incompatible_schemas
         "entity identification by key needs union-compatible relations")
  else
    let matched, only_left =
      Erm.Relation.fold
        (fun t (matched, only) ->
          match Erm.Relation.find_opt right (Erm.Etuple.key t) with
          | Some u -> ((t, u) :: matched, only)
          | None -> (matched, t :: only))
        left ([], [])
    in
    let only_right =
      Erm.Relation.fold
        (fun u acc ->
          if Erm.Relation.mem left (Erm.Etuple.key u) then acc else u :: acc)
        right []
    in
    { matched = List.rev matched;
      only_left = List.rev only_left;
      only_right = List.rev only_right }

type similarity = Exact | Edit_distance of float

type witness = {
  witness_attr : string;
  reliability : float;
  similarity : similarity;
}

let exact_witness ?(reliability = 0.9) witness_attr =
  { witness_attr; reliability; similarity = Exact }

let fuzzy_witness ?(reliability = 0.9) ?(floor = 0.7) witness_attr =
  { witness_attr; reliability; similarity = Edit_distance floor }

(* Classic O(|a|·|b|) dynamic program, two rows. *)
let levenshtein a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let prev = Array.init (lb + 1) (fun j -> j) in
    let cur = Array.make (lb + 1) 0 in
    for i = 1 to la do
      cur.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        cur.(j) <-
          min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

(* Degree of agreement in [0,1] between two definite values under the
   witness's similarity notion. *)
let agreement w va vb =
  match (w.similarity, va, vb) with
  | Edit_distance _, Dst.Value.String sa, Dst.Value.String sb ->
      let longest = max (String.length sa) (String.length sb) in
      if longest = 0 then 1.0
      else 1.0 -. (float_of_int (levenshtein sa sb) /. float_of_int longest)
  | (Exact | Edit_distance _), _, _ ->
      if Dst.Value.equal va vb then 1.0 else 0.0

let match_support schema witnesses a b =
  (* Each witness is a simple support function on the boolean frame:
     agreement puts (scaled) reliability on {true}, disagreement on
     {false}, the rest on Ψ. Witnesses combine by Dempster's rule. *)
  let witness_support w =
    let va = Erm.Etuple.definite_value schema a w.witness_attr in
    let vb = Erm.Etuple.definite_value schema b w.witness_attr in
    let degree = agreement w va vb in
    let agrees =
      match w.similarity with
      | Exact -> degree >= 1.0
      | Edit_distance floor -> degree >= floor
    in
    if agrees then Dst.Support.make ~sn:(w.reliability *. degree) ~sp:1.0
    else Dst.Support.make ~sn:0.0 ~sp:(1.0 -. w.reliability)
  in
  List.fold_left
    (fun acc w -> Dst.Support.combine acc (witness_support w))
    Dst.Support.unknown witnesses

let by_similarity ~threshold ~witnesses left right =
  let schema = Erm.Relation.schema left in
  let scored =
    Erm.Relation.fold
      (fun a acc ->
        Erm.Relation.fold
          (fun b acc ->
            let support =
              try match_support schema witnesses a b
              with Dst.Mass.F.Total_conflict ->
                (* Perfectly contradictory witnesses: not a match. *)
                Dst.Support.impossible
            in
            if Dst.Support.sn support >= threshold then
              (support, a, b) :: acc
            else acc)
          right acc)
      left []
    |> List.sort (fun (s1, _, _) (s2, _, _) -> Dst.Support.compare s2 s1)
  in
  (* Greedy best-first assignment; each tuple participates in at most
     one match. *)
  let module Keys = Set.Make (struct
    type t = Dst.Value.t list

    let compare = List.compare Dst.Value.compare
  end) in
  let taken_l = ref Keys.empty and taken_r = ref Keys.empty in
  let matched =
    List.filter_map
      (fun (_, a, b) ->
        let ka = Erm.Etuple.key a and kb = Erm.Etuple.key b in
        if Keys.mem ka !taken_l || Keys.mem kb !taken_r then None
        else begin
          taken_l := Keys.add ka !taken_l;
          taken_r := Keys.add kb !taken_r;
          Some (a, b)
        end)
      scored
  in
  let unmatched taken r =
    Erm.Relation.fold
      (fun t acc ->
        if Keys.mem (Erm.Etuple.key t) taken then acc else t :: acc)
      r []
    |> List.rev
  in
  { matched;
    only_left = unmatched !taken_l left;
    only_right = unmatched !taken_r right }
