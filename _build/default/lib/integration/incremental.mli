(** Incremental integration: fold a stream of observations into an
    integrated relation (extension — the paper's §4 names combining
    query processing with ongoing conflict resolution as future work).

    Each observation is an extended tuple from some source. A new key
    inserts; a known key Dempster-combines into the stored tuple,
    sharpening it. Total conflict is logged and the stored tuple kept
    (first-writer-wins under contradiction), so a stream can never
    corrupt the store. *)

type t

val init : Erm.Schema.t -> t
val of_relation : Erm.Relation.t -> t
(** Seed the store with an existing integrated relation. *)

val observe : t -> Erm.Etuple.t -> t
(** One observation. Tuples with [sn = 0] are ignored (CWA_ER: nothing
    to assert). @raise Erm.Etuple.Tuple_error if the tuple does not fit
    the store's schema. *)

val observe_all : t -> Erm.Etuple.t list -> t

val absorb : t -> Erm.Relation.t -> t
(** Observe every tuple of a whole source relation.
    @raise Erm.Ops.Incompatible_schemas unless union-compatible with the
    store. *)

val relation : t -> Erm.Relation.t
(** The current integrated relation. *)

val conflicts : t -> Erm.Ops.conflict list
(** Conflicts logged so far, oldest first. *)

val observations : t -> int
(** Observations processed (including ignored and conflicting ones). *)

val pp : Format.formatter -> t -> unit
