type derivation =
  | Copy of string
  | Mapped of string * Mapping.t
  | From_survey of (Dst.Value.t list -> Survey.t)
  | Computed of (Dst.Value.t list -> Erm.Etuple.cell)

type spec = {
  target : Erm.Schema.t;
  rules : (string * derivation) list;
  membership : Dst.Value.t list -> Dst.Support.t;
}

exception Preprocess_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Preprocess_error s)) fmt

let check_keys spec source_schema =
  let target_keys = Erm.Schema.key spec.target in
  let source_keys = Erm.Schema.key source_schema in
  if
    List.length target_keys <> List.length source_keys
    || not (List.for_all2 Erm.Attr.equal target_keys source_keys)
  then fail "source and target key attributes differ"

let source_value source_schema tuple attr_name =
  match Erm.Schema.find_opt source_schema attr_name with
  | None -> fail "unknown source attribute %s" attr_name
  | Some _ -> (
      try Erm.Etuple.definite_value source_schema tuple attr_name
      with Erm.Etuple.Tuple_error _ ->
        fail "source attribute %s is not definite" attr_name)

let derive spec source_schema tuple target_attr =
  let name = Erm.Attr.name target_attr in
  let derivation =
    match List.assoc_opt name spec.rules with
    | Some d -> d
    | None -> fail "no derivation rule for target attribute %s" name
  in
  let key = Erm.Etuple.key tuple in
  match derivation with
  | Copy src -> Erm.Etuple.Definite (source_value source_schema tuple src)
  | Mapped (src, mapping) -> (
      let v = source_value source_schema tuple src in
      try Erm.Etuple.Evidence (Mapping.apply mapping v)
      with Mapping.Unmapped v ->
        fail "attribute %s: no mapping for value %a" name Dst.Value.pp v)
  | From_survey lookup -> (
      try Erm.Etuple.Evidence (Survey.to_evidence (lookup key))
      with Survey.Survey_error m -> fail "attribute %s: %s" name m)
  | Computed f -> f key

let run spec source =
  let source_schema = Erm.Relation.schema source in
  check_keys spec source_schema;
  List.iter
    (fun (name, _) ->
      if not (Erm.Schema.mem spec.target name) then
        fail "rule for %s, which is not a target attribute" name)
    spec.rules;
  Erm.Relation.fold
    (fun tuple acc ->
      let key = Erm.Etuple.key tuple in
      let cells =
        List.map (derive spec source_schema tuple) (Erm.Schema.nonkey spec.target)
      in
      let built =
        try
          Erm.Etuple.make spec.target ~key ~cells ~tm:(spec.membership key)
        with Erm.Etuple.Tuple_error m -> fail "%s" m
      in
      Erm.Relation.add acc built)
    source
    (Erm.Relation.empty spec.target)
