(** Source reliability estimation and discounted merging (extension).

    Dempster's rule assumes both sources are fully reliable; when one
    systematically disagrees with its peers, its evidence should be
    discounted (Shafer's α-discounting) before combination. This module
    estimates per-source reliability from the observed pairwise conflict
    on key-matched tuples — high average κ against the peer means low
    reliability — and offers a merge that applies the discounts first.
    The [ablation:discounted-merge] benchmark quantifies the effect. *)

type assessment = {
  pairs_compared : int;  (** Key-matched evidential cell pairs examined. *)
  mean_conflict : float;  (** Average κ across those pairs. *)
  max_conflict : float;
  total_conflicts : int;  (** Pairs with κ = 1. *)
}

val assess : Erm.Relation.t -> Erm.Relation.t -> assessment
(** Pairwise conflict profile of two union-compatible relations: every
    evidential attribute of every key-matched tuple pair contributes one
    κ. Definite attributes contribute κ = 1 when unequal, κ = 0
    otherwise.
    @raise Erm.Ops.Incompatible_schemas unless union-compatible. *)

val reliability_of_assessment : assessment -> float
(** A discount rate from a conflict profile: [1 − mean κ], clamped to
    [\[0,1\]]. No comparisons means no ground to distrust: reliability
    1. *)

val discount_relation : float -> Erm.Relation.t -> Erm.Relation.t
(** α-discount every evidential cell and the membership pair of every
    tuple. Membership discounting moves belief from both [{true}] and
    [{false}] toward ignorance: [(sn, sp) ↦ (α·sn, 1 − α·(1 − sp))].
    @raise Invalid_argument if α is outside [0,1]. *)

val merge_discounted :
  ?alpha_left:float -> ?alpha_right:float -> Erm.Relation.t -> Erm.Relation.t
  -> Merge.report
(** Discount both sides (defaults: estimated symmetrically via {!assess}
    — each side gets the same [reliability_of_assessment], since pairwise
    conflict alone cannot attribute blame) and then merge by key.
    Because discounting leaves no cell without Ω mass when α < 1, total
    conflict cannot occur and no tuples are lost to conflict reports. *)

val pp_assessment : Format.formatter -> assessment -> unit
