exception Unmapped of Dst.Value.t

type t = {
  target : Dst.Domain.t;
  image : Dst.Value.t -> (Dst.Vset.t * float) list;
      (** Raises {!Unmapped} for values with no image. *)
}

let weighted target image =
  { target;
    image =
      (fun v -> match image v with [] -> raise (Unmapped v) | l -> l) }

let ambiguous target f =
  weighted target (fun v ->
      let s = f v in
      if Dst.Vset.is_empty s then raise (Unmapped v) else [ (s, 1.0) ])

let exact target f = ambiguous target (fun v -> Dst.Vset.singleton (f v))

let table ?(default_to_omega = false) target entries =
  weighted target (fun v ->
      match
        List.find_opt (fun (key, _) -> Dst.Value.equal key v) entries
      with
      | Some (_, image) -> image
      | None ->
          if default_to_omega then [ (Dst.Domain.values target, 1.0) ]
          else raise (Unmapped v))

let identity target =
  ambiguous target (fun v ->
      if Dst.Domain.mem v target then Dst.Vset.singleton v
      else raise (Unmapped v))

let target t = t.target
let apply t v = Dst.Mass.F.make_normalized t.target (t.image v)

let compose f g =
  (* Possibility semantics: a focal set of [g]'s image maps to the union
     of [f]'s candidate values for each of its members; weights multiply
     through. *)
  let image_of_set s =
    Dst.Vset.fold
      (fun b acc ->
        List.fold_left
          (fun acc (img, _) -> Dst.Vset.union img acc)
          acc (f.image b))
      s Dst.Vset.empty
  in
  weighted f.target (fun v ->
      List.map (fun (s, w) -> (image_of_set s, w)) (g.image v))
