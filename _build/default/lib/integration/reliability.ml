type assessment = {
  pairs_compared : int;
  mean_conflict : float;
  max_conflict : float;
  total_conflicts : int;
}

let assess left right =
  if
    not
      (Erm.Schema.union_compatible
         (Erm.Relation.schema left)
         (Erm.Relation.schema right))
  then
    raise
      (Erm.Ops.Incompatible_schemas "reliability assessment needs compatible relations")
  else begin
    let count = ref 0 and sum = ref 0.0 and worst = ref 0.0 in
    let totals = ref 0 in
    let record kappa =
      incr count;
      sum := !sum +. kappa;
      if kappa > !worst then worst := kappa;
      if kappa >= 1.0 -. Dst.Num.float_tolerance then incr totals
    in
    Erm.Relation.iter
      (fun t ->
        match Erm.Relation.find_opt right (Erm.Etuple.key t) with
        | None -> ()
        | Some u ->
            List.iter2
              (fun ct cu ->
                match (ct, cu) with
                | Erm.Etuple.Evidence e, Erm.Etuple.Evidence f ->
                    record (Dst.Mass.F.conflict e f)
                | Erm.Etuple.Definite v, Erm.Etuple.Definite w ->
                    record (if Dst.Value.equal v w then 0.0 else 1.0)
                | Erm.Etuple.Definite _, Erm.Etuple.Evidence _
                | Erm.Etuple.Evidence _, Erm.Etuple.Definite _ ->
                    record 1.0)
              (Erm.Etuple.cells t) (Erm.Etuple.cells u))
      left;
    { pairs_compared = !count;
      mean_conflict = (if !count = 0 then 0.0 else !sum /. float_of_int !count);
      max_conflict = !worst;
      total_conflicts = !totals }
  end

let reliability_of_assessment a =
  if a.pairs_compared = 0 then 1.0
  else Float.max 0.0 (Float.min 1.0 (1.0 -. a.mean_conflict))

let discount_support alpha s =
  Dst.Support.make
    ~sn:(alpha *. Dst.Support.sn s)
    ~sp:(1.0 -. (alpha *. (1.0 -. Dst.Support.sp s)))

let discount_relation alpha r =
  if alpha < 0.0 || alpha > 1.0 then
    invalid_arg "Reliability.discount_relation: alpha outside [0,1]"
  else
    let schema = Erm.Relation.schema r in
    Erm.Relation.map_tuples
      (fun t ->
        let cells =
          List.map
            (function
              | Erm.Etuple.Evidence e ->
                  Erm.Etuple.Evidence (Dst.Mass.F.discount alpha e)
              | Erm.Etuple.Definite _ as c -> c)
            (Erm.Etuple.cells t)
        in
        Some
          (Erm.Etuple.make schema ~key:(Erm.Etuple.key t) ~cells
             ~tm:(discount_support alpha (Erm.Etuple.tm t))))
      schema r

let merge_discounted ?alpha_left ?alpha_right left right =
  let estimated =
    lazy (reliability_of_assessment (assess left right))
  in
  let al = match alpha_left with Some a -> a | None -> Lazy.force estimated in
  let ar = match alpha_right with Some a -> a | None -> Lazy.force estimated in
  Merge.by_key (discount_relation al left) (discount_relation ar right)

let pp_assessment ppf a =
  Format.fprintf ppf
    "%d cell pairs compared: mean kappa %.3f, max %.3f, %d total conflicts"
    a.pairs_compared a.mean_conflict a.max_conflict a.total_conflicts
