(** The group-voting model of §1.2 and §2.1.

    The paper derives its uncertain attribute values from panels: each
    reviewer casts a vote for a value (or, when undecided, a {e set} of
    values — the §2.1 menu items that "cannot be classified as pure Hunan
    or pure Sichuan"), or abstains. Consolidating a tally into masses is
    exactly the vote share: the abstaining fraction becomes nonbelief,
    i.e. mass on Ω. *)

type vote =
  | For of Dst.Value.t  (** A vote for a single value. *)
  | For_any of Dst.Vset.t
      (** An undecided vote for a set of values (e.g. "hunan or
          sichuan"). *)
  | Abstain  (** No classification information: contributes to Ω. *)

type t
(** A tally of votes over a fixed domain. *)

exception Survey_error of string

val create : Dst.Domain.t -> t
(** An empty tally. *)

val cast : t -> vote -> t
(** @raise Survey_error if a vote names values outside the domain or an
    empty set. *)

val cast_many : t -> vote list -> t

val of_votes : Dst.Domain.t -> vote list -> t

val total : t -> int
(** Number of votes cast, abstentions included. *)

val count : t -> vote -> int

val to_evidence : t -> Dst.Evidence.t
(** Vote shares as masses; abstentions accrue to Ω. The paper's example —
    votes d1:3, d2:2, d3:1 — yields [[d1^0.5; d2^0.33; d3^0.17]].
    @raise Survey_error on an empty tally. *)

val consensus : t -> Dst.Value.t option
(** The single value every non-abstaining vote supports, if any. *)

val pp : Format.formatter -> t -> unit
