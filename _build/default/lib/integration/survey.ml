type vote = For of Dst.Value.t | For_any of Dst.Vset.t | Abstain

exception Survey_error of string

module Vmap = Map.Make (Dst.Vset)

type t = {
  domain : Dst.Domain.t;
  tallies : int Vmap.t;  (** keyed by the voted set; Ω keys abstentions *)
}

let fail fmt = Format.kasprintf (fun s -> raise (Survey_error s)) fmt
let create domain = { domain; tallies = Vmap.empty }

let set_of_vote t = function
  | For v ->
      if not (Dst.Domain.mem v t.domain) then
        fail "vote for %a outside domain %s" Dst.Value.pp v
          (Dst.Domain.name t.domain)
      else Dst.Vset.singleton v
  | For_any s ->
      if Dst.Vset.is_empty s then fail "vote for an empty set"
      else if not (Dst.Domain.subset s t.domain) then
        fail "vote for %a outside domain %s" Dst.Vset.pp s
          (Dst.Domain.name t.domain)
      else s
  | Abstain -> Dst.Domain.values t.domain

let cast t vote =
  let set = set_of_vote t vote in
  { t with
    tallies =
      Vmap.update set
        (function None -> Some 1 | Some n -> Some (n + 1))
        t.tallies }

let cast_many t votes = List.fold_left cast t votes
let of_votes domain votes = cast_many (create domain) votes
let total t = Vmap.fold (fun _ n acc -> n + acc) t.tallies 0

let count t vote =
  match Vmap.find_opt (set_of_vote t vote) t.tallies with
  | Some n -> n
  | None -> 0

let to_evidence t =
  if total t = 0 then fail "empty tally for domain %s" (Dst.Domain.name t.domain)
  else Dst.Evidence.of_counts t.domain (Vmap.bindings t.tallies)

let consensus t =
  let omega = Dst.Domain.values t.domain in
  let committed =
    Vmap.filter (fun set _ -> not (Dst.Vset.equal set omega)) t.tallies
  in
  match Vmap.bindings committed with
  | [ (set, _) ] when Dst.Vset.cardinal set = 1 -> Some (Dst.Vset.choose set)
  | _ -> None

let pp ppf t =
  Format.fprintf ppf "@[<v>survey over %s (%d votes)" (Dst.Domain.name t.domain)
    (total t);
  Vmap.iter
    (fun set n -> Format.fprintf ppf "@,  %a: %d" Dst.Vset.pp set n)
    t.tallies;
  Format.fprintf ppf "@]"
