lib/integration/federated.ml: Dst Erm Float Format List
