lib/integration/survey.mli: Dst Format
