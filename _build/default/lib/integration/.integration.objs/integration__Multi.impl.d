lib/integration/multi.ml: Erm Float Format List Reliability String
