lib/integration/preprocess.mli: Dst Erm Mapping Survey
