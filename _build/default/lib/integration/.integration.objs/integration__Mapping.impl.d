lib/integration/mapping.ml: Dst List
