lib/integration/multi.mli: Erm Format
