lib/integration/pipeline.mli: Erm Merge Preprocess
