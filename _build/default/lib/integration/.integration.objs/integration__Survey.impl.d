lib/integration/survey.ml: Dst Format List Map
