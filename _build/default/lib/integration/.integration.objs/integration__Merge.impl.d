lib/integration/merge.ml: Dst Entity_id Erm Format List
