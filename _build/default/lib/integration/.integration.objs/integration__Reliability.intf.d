lib/integration/reliability.mli: Erm Format Merge
