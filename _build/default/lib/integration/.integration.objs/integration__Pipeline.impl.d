lib/integration/pipeline.ml: Erm Merge Preprocess
