lib/integration/preprocess.ml: Dst Erm Format List Mapping Survey
