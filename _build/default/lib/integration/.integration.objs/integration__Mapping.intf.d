lib/integration/mapping.mli: Dst
