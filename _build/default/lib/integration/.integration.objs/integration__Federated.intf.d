lib/integration/federated.mli: Dst Erm Format
