lib/integration/entity_id.ml: Array Dst Erm List Set String
