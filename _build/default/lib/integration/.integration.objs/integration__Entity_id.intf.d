lib/integration/entity_id.mli: Dst Erm
