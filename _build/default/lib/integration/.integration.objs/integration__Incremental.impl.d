lib/integration/incremental.ml: Dst Erm Format List
