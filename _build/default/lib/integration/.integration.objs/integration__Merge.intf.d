lib/integration/merge.mli: Entity_id Erm Format
