lib/integration/incremental.mli: Erm Format
