lib/integration/reliability.ml: Dst Erm Float Format Lazy List Merge
