(** The full integration pipeline of Figure 1, end to end:

    {v
    raw source A --preprocess--> R'_A \
                                       entity id --> tuple merging --> integrated
    raw source B --preprocess--> R'_B /                                relation
    v}

    Each source pairs a raw relation with its preprocessing spec; the
    integrated relation is produced by key-based entity identification
    and Dempster merging, with conflicts reported rather than raised. *)

type source = {
  relation : Erm.Relation.t;  (** Raw, definite-valued source relation. *)
  spec : Preprocess.spec;
}

val preprocessed : source -> Erm.Relation.t
(** Just the attribute-preprocessing stage. *)

val integrate : source -> source -> Merge.report
(** Preprocess both sources, match by common key, merge.
    @raise Preprocess.Preprocess_error on preprocessing failures.
    @raise Erm.Ops.Incompatible_schemas if the specs disagree on the
    global schema. *)

val integrate_preprocessed : Erm.Relation.t -> Erm.Relation.t -> Merge.report
(** Skip preprocessing (sources already over the global schema) — the
    paper's §2/§3 setting. *)

val query :
  Merge.report ->
  ?threshold:Erm.Threshold.t ->
  Erm.Predicate.t ->
  Erm.Relation.t
(** Query processing over the integrated relation — extended selection
    with a membership threshold. *)
