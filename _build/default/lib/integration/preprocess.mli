(** Attribute preprocessing (Figure 1): rewrite a source relation over
    the global schema, introducing evidence where derivation is
    uncertain.

    Each target attribute is produced by a {!derivation}: copied verbatim,
    mapped through a {!Mapping.t} (possibly one-to-many, yielding
    evidence), or consolidated from external summary data such as the
    paper's reviewer surveys. This is where the paper's "uncertain
    information arising from summaries of data" enters the model. *)

type derivation =
  | Copy of string
      (** Target definite attribute copied from the named source
          attribute. *)
  | Mapped of string * Mapping.t
      (** Target evidential attribute: the named source attribute's
          definite value pushed through the mapping. *)
  | From_survey of (Dst.Value.t list -> Survey.t)
      (** Target evidential attribute consolidated from a per-entity
          tally, looked up by key (e.g. the restaurant's review votes). *)
  | Computed of (Dst.Value.t list -> Erm.Etuple.cell)
      (** Escape hatch: arbitrary per-key cell computation. *)

type spec = {
  target : Erm.Schema.t;
  rules : (string * derivation) list;
      (** One rule per non-key target attribute, keyed by its name. *)
  membership : Dst.Value.t list -> Dst.Support.t;
      (** Membership assigned to each produced tuple (by key); use
          [fun _ -> Dst.Support.certain] when the source relation is
          fully trusted. *)
}

exception Preprocess_error of string

val run : spec -> Erm.Relation.t -> Erm.Relation.t
(** Applies the spec to every tuple. The source relation's key attributes
    must be a prefix-compatible match of the target's (same names and
    kinds).
    @raise Preprocess_error on missing rules, unknown source attributes,
    kind mismatches, or {!Mapping.Unmapped} values. *)
