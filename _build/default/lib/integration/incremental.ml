type t = {
  store : Erm.Relation.t;
  conflict_log : Erm.Ops.conflict list;  (** newest first *)
  seen : int;
}

let init schema = { store = Erm.Relation.empty schema; conflict_log = []; seen = 0 }
let of_relation r = { store = r; conflict_log = []; seen = 0 }

let log t key detail =
  { t with
    conflict_log =
      { Erm.Ops.conflict_key = key; conflict_attr = None;
        conflict_detail = detail }
      :: t.conflict_log }

let observe t tuple =
  let t = { t with seen = t.seen + 1 } in
  if not (Dst.Support.positive (Erm.Etuple.tm tuple)) then t
  else
    let schema = Erm.Relation.schema t.store in
    let key = Erm.Etuple.key tuple in
    match Erm.Relation.find_opt t.store key with
    | None -> { t with store = Erm.Relation.add t.store tuple }
    | Some stored -> (
        match Erm.Etuple.combine schema stored tuple with
        | merged -> { t with store = Erm.Relation.replace t.store merged }
        | exception Dst.Mass.F.Total_conflict ->
            log t key "observation in total conflict with the store; kept stored tuple"
        | exception Erm.Etuple.Tuple_error detail ->
            log t key ("inconsistent observation dropped: " ^ detail))

let observe_all t tuples = List.fold_left observe t tuples

let absorb t source =
  if
    not
      (Erm.Schema.union_compatible
         (Erm.Relation.schema t.store)
         (Erm.Relation.schema source))
  then
    raise (Erm.Ops.Incompatible_schemas "absorb: source does not fit the store")
  else Erm.Relation.fold (fun tuple t -> observe t tuple) source t

let relation t = t.store
let conflicts t = List.rev t.conflict_log
let observations t = t.seen

let pp ppf t =
  Format.fprintf ppf "store of %d tuples after %d observations (%d conflicts)"
    (Erm.Relation.cardinal t.store)
    t.seen
    (List.length t.conflict_log)
