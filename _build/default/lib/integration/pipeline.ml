type source = { relation : Erm.Relation.t; spec : Preprocess.spec }

let preprocessed s = Preprocess.run s.spec s.relation

let integrate_preprocessed a b = Merge.by_key a b

let integrate a b =
  integrate_preprocessed (preprocessed a) (preprocessed b)

let query (report : Merge.report) ?threshold predicate =
  Erm.Ops.select ?threshold predicate report.integrated
