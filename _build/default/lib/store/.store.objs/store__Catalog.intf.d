lib/store/catalog.mli: Erm
