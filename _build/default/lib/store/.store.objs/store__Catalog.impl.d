lib/store/catalog.ml: Array Erm Filename Format Fun List String Sys
