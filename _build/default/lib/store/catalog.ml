type t = {
  dir : string;
  relations : (string * Erm.Relation.t) list;  (** manifest order *)
}

exception Catalog_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Catalog_error s)) fmt
let manifest_file dir = Filename.concat dir "CATALOG"
let relation_file dir name = Filename.concat dir (name ^ ".erd")

let check_name name =
  if
    name = ""
    || String.exists (fun c -> c = '/' || c = '\\' || c = '\000') name
  then fail "relation name %S is not usable as a filename" name

let create dir =
  if Sys.file_exists dir && not (Sys.is_directory dir) then
    fail "%s exists and is not a directory" dir
  else { dir; relations = [] }

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load dir =
  let manifest = manifest_file dir in
  if not (Sys.file_exists manifest) then
    fail "no catalog at %s (missing %s)" dir manifest
  else
    let names =
      read_file manifest
      |> String.split_on_char '\n'
      |> List.map String.trim
      |> List.filter (fun l -> l <> "" && l.[0] <> '#')
    in
    let relations =
      List.map
        (fun name ->
          let path = relation_file dir name in
          if not (Sys.file_exists path) then
            fail "manifest lists %s but %s is missing" name path
          else (name, Erm.Io.relation_of_string (read_file path)))
        names
    in
    { dir; relations }

let dir t = t.dir
let names t = List.map fst t.relations
let mem t name = List.mem_assoc name t.relations

let get t name =
  match List.assoc_opt name t.relations with
  | Some r -> r
  | None -> raise Not_found

let get_opt t name = List.assoc_opt name t.relations

let put t name r =
  check_name name;
  let renamed =
    Erm.Relation.map_tuples
      (fun tuple -> Some tuple)
      (Erm.Schema.rename_relation name (Erm.Relation.schema r))
      r
  in
  if mem t name then
    { t with
      relations =
        List.map
          (fun (n, old) -> if String.equal n name then (n, renamed) else (n, old))
          t.relations }
  else { t with relations = t.relations @ [ (name, renamed) ] }

let drop t name =
  { t with
    relations = List.filter (fun (n, _) -> not (String.equal n name)) t.relations }

let env t = t.relations

let write_atomically path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content);
  Sys.rename tmp path

let commit t =
  if not (Sys.file_exists t.dir) then Sys.mkdir t.dir 0o755;
  List.iter
    (fun (name, r) ->
      write_atomically (relation_file t.dir name) (Erm.Io.to_string r))
    t.relations;
  write_atomically (manifest_file t.dir)
    (String.concat "\n" (names t) ^ "\n");
  (* Garbage-collect files for relations no longer in the manifest. *)
  Array.iter
    (fun file ->
      if Filename.check_suffix file ".erd" then begin
        let name = Filename.chop_suffix file ".erd" in
        if not (mem t name) then Sys.remove (Filename.concat t.dir file)
      end)
    (Sys.readdir t.dir)
