(** A persistent catalog: a directory of [.erd] files with a manifest.

    The on-disk layout is deliberately boring —

    {v
    mydb/
      CATALOG            # one relation name per line, in commit order
      ra.erd             # one relation per file, Erm.Io format
      rb.erd
    v}

    — so databases are diffable and editable by hand. {!commit} is
    crash-safe in the write-temp-then-rename sense: every file is
    written to [<name>.tmp] and renamed into place, the manifest last,
    so an interrupted commit leaves the previous state readable. The
    in-memory catalog is immutable; {!put}/{!drop} return new values and
    nothing touches the disk until {!commit}. *)

type t

exception Catalog_error of string

val create : string -> t
(** [create dir] starts an empty catalog rooted at [dir] (created on
    {!commit} if missing). @raise Catalog_error if [dir] exists and is
    not a directory. *)

val load : string -> t
(** Read a committed catalog back from disk.
    @raise Catalog_error on a missing/corrupt manifest.
    @raise Erm.Io.Io_error on malformed relation files. *)

val dir : t -> string

val names : t -> string list
(** Relation names, in manifest order. *)

val mem : t -> string -> bool

val get : t -> string -> Erm.Relation.t
(** @raise Not_found. *)

val get_opt : t -> string -> Erm.Relation.t option

val put : t -> string -> Erm.Relation.t -> t
(** Bind (or replace) a relation under the given name. The stored
    relation is renamed to match, so {!get} and the query environment
    agree with the catalog name.
    @raise Catalog_error on names unfit for filenames (empty, or
    containing [/], [\\] or NUL). *)

val drop : t -> string -> t
(** Forget a relation (removes its file on the next {!commit}). Unknown
    names are a no-op. *)

val env : t -> (string * Erm.Relation.t) list
(** The catalog as a query-evaluation environment. *)

val commit : t -> unit
(** Persist atomically-per-file as described above. Files for dropped
    relations are deleted after the manifest no longer mentions them.
    @raise Sys_error on IO failures. *)
