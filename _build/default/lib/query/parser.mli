(** Recursive-descent parser for the ERIDB query language.

    Grammar (keywords case-insensitive):
    {v
    query    := term (UNION term)*
    term     := SELECT cols FROM joinable [WHERE pred] [WITH thresh]
              | joinable
    joinable := atom ( JOIN atom ON pred [WITH thresh] | TIMES atom )*
    atom     := ident | '(' query ')'
    cols     := '*' | ident (',' ident)*
    pred     := orp ; orp := andp (OR andp)* ; andp := unary (AND unary)*
    unary    := NOT unary | '(' pred ')' | TRUE | atom_pred
    atom_pred:= ident IS set | operand cmp operand
    operand  := ident | literal | set | evidence-literal
    set      := '{' literal (',' literal)* '}'
    cmp      := = | <> | < | <= | > | >=
    thresh   := (SN|SP) cmp number (AND (SN|SP) cmp number)*
    v} *)

exception Parse_error of string

val parse : string -> Ast.query
(** @raise Parse_error (also wraps {!Lexer.Lex_error}) with a readable
    message. *)

val parse_pred : string -> Ast.pred
(** Parses a bare predicate — handy for tests and the REPL. *)
